package workload

import (
	"fmt"

	"repro/internal/isa/verify"
	"repro/internal/prog"
)

// FromEncoded admits an encoded TVPB binary into the simulator: it
// decodes the container and gates the program behind the static
// verifier. The verify.Result is returned alongside the error so
// callers (tvpsim -load) can print the structured diagnostics of a
// rejection; on success it carries the lint-grade findings (Warn/Info)
// and the proven memory windows.
//
// A program is admitted only with zero Error-severity findings — the
// soundness contract is that an admitted binary cannot address memory
// outside the verifier-reported windows, cannot overwrite text, and
// always reaches HALT.
func FromEncoded(data []byte) (*prog.Program, *verify.Result, error) {
	p, res := verify.Binary(data, verify.Options{})
	if errs := res.Errors(); len(errs) > 0 {
		return p, res, fmt.Errorf("workload: binary rejected by verifier (%d error finding(s))", len(errs))
	}
	return p, res, nil
}
