package verify

import (
	"encoding/binary"
	"sort"

	"repro/internal/prog"
)

const (
	// stackWindow bounds how far below StackTop the verifier allows
	// stack-relative addressing; stackSlack allows reads at or just
	// above the initial frame pointer.
	stackWindow = 1 << 16
	stackSlack  = 64

	// dataSlack extends the data window past the last segment so the
	// unrolled streaming kernels, whose post-indexed cursors overrun a
	// segment end by a few iterations' worth of bytes, stay in bounds.
	dataSlack = 4096

	// scanWork caps the number of addresses one summary scan may touch
	// (the mcf pointer ring scans 6 MiB / 64 B ≈ 98k slots).
	scanWork = 1 << 21
)

type span struct{ lo, hi uint64 } // half-open [lo, hi)

func (s span) overlaps(lo, hi uint64) bool { return lo < s.hi && s.lo < hi }

// memModel is the abstract memory: the program's initial segment bytes
// (read-only ground truth) plus a store summary computed to a fixpoint
// by the outer assume-guarantee loop in Verify. Loads read against the
// *assumed* summary from the previous outer iteration while stores
// accumulate into the *observed* one; Verify re-runs the dataflow until
// observed == assumed, at which point every load soundly accounts for
// every store that can reach it.
type memModel struct {
	segs  []prog.Segment // data segments, sorted by base
	text  span
	data  span // coalesced data window (+slack)
	stack span

	// Assumed summary (stable input for this iteration).
	smashed   []span             // canonical: sorted, disjoint, merged
	cells     map[uint64]AbsVal  // exact 8-byte store targets → joined value
	cellAddrs []uint64           // sorted keys of cells

	// Observed summary (accumulates this iteration's stores).
	obsSmashed []span
	obsCells   map[uint64]AbsVal

	scans map[scanKey]AbsVal // memo for aligned segment scans
}

type scanKey struct {
	first uint64
	last  uint64
	step  uint64
	size  uint8
}

func newMemModel(p *prog.Program) *memModel {
	m := &memModel{
		cells:    map[uint64]AbsVal{},
		obsCells: map[uint64]AbsVal{},
		scans:    map[scanKey]AbsVal{},
	}
	m.segs = append(m.segs, p.Data...)
	sort.Slice(m.segs, func(i, j int) bool { return m.segs[i].Base < m.segs[j].Base })
	m.text = span{prog.TextBase, prog.TextBase + 4*uint64(len(p.Code))}
	if len(m.segs) > 0 {
		first := m.segs[0].Base
		last := first
		for _, s := range m.segs {
			if end := s.Base + uint64(len(s.Bytes)); end > last {
				last = end
			}
		}
		m.data = span{first, last + dataSlack}
	} else {
		m.data = span{prog.DataBase, prog.DataBase + dataSlack}
	}
	m.stack = span{prog.StackTop - stackWindow, prog.StackTop + stackSlack}
	return m
}

// beginIter promotes last iteration's observations to this iteration's
// assumptions and restarts observation from them (so the summary only
// grows, guaranteeing the outer loop terminates).
func (m *memModel) beginIter() {
	m.smashed = canonicalSpans(m.obsSmashed)
	m.obsSmashed = append([]span(nil), m.smashed...)
	for k, v := range m.obsCells {
		m.cells[k] = v
	}
	m.cellAddrs = m.cellAddrs[:0]
	for k := range m.cells {
		m.cellAddrs = append(m.cellAddrs, k)
	}
	sortU64(m.cellAddrs)
	m.obsCells = map[uint64]AbsVal{}
	for k, v := range m.cells {
		m.obsCells[k] = v
	}
}

// stable reports whether the last iteration observed nothing beyond
// what it assumed.
func (m *memModel) stable() bool {
	obs := canonicalSpans(m.obsSmashed)
	if len(obs) != len(m.smashed) {
		return false
	}
	for i := range obs {
		if obs[i] != m.smashed[i] {
			return false
		}
	}
	if len(m.obsCells) != len(m.cells) {
		return false
	}
	for k, v := range m.obsCells {
		old, ok := m.cells[k]
		if !ok || !v.eq(old) {
			return false
		}
	}
	return true
}

func canonicalSpans(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	s := append([]span(nil), in...)
	sort.Slice(s, func(i, j int) bool { return s[i].lo < s[j].lo })
	out := s[:1]
	for _, sp := range s[1:] {
		last := &out[len(out)-1]
		if sp.lo <= last.hi {
			if sp.hi > last.hi {
				last.hi = sp.hi
			}
		} else {
			out = append(out, sp)
		}
	}
	return out
}

func (m *memModel) smashOverlaps(lo, hi uint64) bool {
	i := sort.Search(len(m.smashed), func(i int) bool { return m.smashed[i].hi > lo })
	return i < len(m.smashed) && m.smashed[i].lo < hi
}

// cellsIn returns the assumed cell addresses intersecting [lo, hi).
func (m *memModel) cellsIn(lo, hi uint64) []uint64 {
	if len(m.cellAddrs) == 0 {
		return nil
	}
	start := lo
	if start >= 8 {
		start -= 8 // an 8-byte cell starting up to 7 bytes below lo overlaps
	} else {
		start = 0
	}
	i, _ := searchU64(m.cellAddrs, start)
	j := i
	for j < len(m.cellAddrs) && m.cellAddrs[j] < hi {
		j++
	}
	// Filter to true overlap.
	out := m.cellAddrs[i:j]
	for len(out) > 0 && out[0]+8 <= lo {
		out = out[1:]
	}
	return out
}

// initRead reads size initial bytes at addr (little-endian), with
// unmapped bytes reading as zero like emu.Memory.
func (m *memModel) initRead(addr uint64, size uint8) uint64 {
	// Fast path: whole read inside one segment.
	if seg := m.findSeg(addr); seg >= 0 {
		s := &m.segs[seg]
		off := addr - s.Base
		if off+uint64(size) <= uint64(len(s.Bytes)) {
			switch size {
			case 8:
				return binary.LittleEndian.Uint64(s.Bytes[off:])
			case 4:
				return uint64(binary.LittleEndian.Uint32(s.Bytes[off:]))
			case 2:
				return uint64(binary.LittleEndian.Uint16(s.Bytes[off:]))
			case 1:
				return uint64(s.Bytes[off])
			}
		}
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.initByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

func (m *memModel) initByte(addr uint64) byte {
	if seg := m.findSeg(addr); seg >= 0 {
		s := &m.segs[seg]
		return s.Bytes[addr-s.Base]
	}
	return 0
}

func (m *memModel) findSeg(addr uint64) int {
	lo, hi := 0, len(m.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		s := &m.segs[mid]
		if addr < s.Base {
			hi = mid
		} else if addr >= s.Base+uint64(len(s.Bytes)) {
			lo = mid + 1
		} else {
			return mid
		}
	}
	return -1
}

// load computes the abstract value a load of the given size may observe
// at the abstract effective address. It is only called after the bounds
// check passed, so the footprint is inside the data/stack windows.
func (m *memModel) load(ea AbsVal, size uint8) AbsVal {
	if cands, ok := ea.candidates(pairCap); ok {
		var out AbsVal
		out.lo, out.hi = 1, 0 // empty; joins replace it
		for _, a := range cands {
			out = out.join(m.readOne(a, size))
		}
		if out.isEmpty() {
			return sizeTop(size)
		}
		return out
	}
	// Too many candidates: summarize the whole span.
	lo, hi := ea.lo, ea.hi+uint64(size)
	if hi < ea.hi {
		return sizeTop(size)
	}
	if m.smashOverlaps(lo, hi) || len(m.cellsIn(lo, hi)) > 0 {
		return sizeTop(size)
	}
	return m.scanSummary(ea, size)
}

// readOne reads one concrete address against initial bytes + assumed
// store summary.
func (m *memModel) readOne(addr uint64, size uint8) AbsVal {
	end := addr + uint64(size)
	if m.smashOverlaps(addr, end) {
		return sizeTop(size)
	}
	cells := m.cellsIn(addr, end)
	switch {
	case len(cells) == 0:
		return exact(m.initRead(addr, size))
	case len(cells) == 1 && cells[0] == addr && size == 8:
		// The only overlapping store is an exact 8-byte cell at this
		// address: the load sees either the initial word or one of the
		// stored values.
		return exact(m.initRead(addr, 8)).join(m.cells[addr])
	default:
		return sizeTop(size) // partially-overlapping store; give up on the value
	}
}

// scanSummary joins the initial words an unenumerably-wide but clean
// (unstored-to) load may observe: it walks the EA's address stride
// across the whole interval, reading each footprint through initRead
// so unmapped bytes contribute zero exactly like the emulator. Only
// addresses actually on the stride matter — a footprint that merely
// straddles a segment end reads the mapped bytes plus trailing zeros,
// not a phantom all-zero word.
func (m *memModel) scanSummary(ea AbsVal, size uint8) AbsVal {
	step, residue := ea.stride()
	if (ea.hi-ea.lo)/step >= scanWork {
		return sizeTop(size)
	}
	first := ea.lo
	if rem := first & (step - 1); rem != residue {
		first += (residue - rem) & (step - 1)
	}
	if first < ea.lo || first > ea.hi {
		return sizeTop(size) // alignment overflowed past the interval
	}
	return m.scanRange(first, ea.hi, step, size)
	// The scan ignores the non-contiguous known bits of ea; values at
	// filtered-out addresses only widen the result, so this stays sound.
}

func (m *memModel) scanRange(first, last, step uint64, size uint8) AbsVal {
	key := scanKey{first: first, last: last, step: step, size: size}
	if v, ok := m.scans[key]; ok {
		return v
	}
	var minv, maxv, diff, base uint64
	minv = ^uint64(0)
	n := 0
	for a := first; a <= last; a += step {
		v := m.initRead(a, size)
		if n == 0 {
			base = v
		}
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
		diff |= v ^ base
		n++
		if a > ^uint64(0)-step {
			break
		}
	}
	var out AbsVal
	if n == 0 {
		out.lo, out.hi = 1, 0
	} else {
		out = AbsVal{lo: minv, hi: maxv, known: ^diff, bits: base & ^diff}.tighten()
	}
	m.scans[key] = out
	return out
}

// store records a store's footprint and value into the observed
// summary. Exact 8-byte stores become cells (so a reloaded pointer
// keeps its value); everything else smears its whole address span.
func (m *memModel) store(ea AbsVal, size uint8, val AbsVal) {
	if a, ok := ea.isExact(); ok && size == 8 {
		if old, ok := m.obsCells[a]; ok {
			m.obsCells[a] = old.join(val)
		} else {
			m.obsCells[a] = val
		}
		return
	}
	lo, hi := ea.lo, ea.hi+uint64(size)
	if hi < ea.hi { // wrapped; smear everything addressable
		lo, hi = 0, ^uint64(0)
	}
	m.obsSmashed = append(m.obsSmashed, span{lo, hi})
}
