package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runGolden is a miniature analysistest: it loads the given packages
// from testdata/src (GOPATH-style, import paths relative to that root),
// runs the analyzers, and compares the surviving diagnostics against
// `// want "regexp"` comments in the sources — the same expectation
// format golang.org/x/tools/go/analysis/analysistest uses, so the
// goldens port unchanged if the suite ever moves onto x/tools.
// Suppression comments are honored before matching, which is how the
// suppression-handling cases are expressed.
func runGolden(t *testing.T, pkgs []string, analyzers []*Analyzer) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, "")
	for _, p := range pkgs {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	diags, err := RunAnalyzers(loader, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, loader)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic %s", Format(loader.Fset, d))
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, loader *Loader) []want {
	t.Helper()
	var wants []want
	for _, pkg := range loader.Packages() {
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, loader.Fset, c)...)
				}
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []want {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	var wants []want
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
		}
		end := 1
		for end < len(rest) && (rest[end] != quote || (quote == '"' && rest[end-1] == '\\')) {
			end++
		}
		if end == len(rest) {
			t.Fatalf("%s:%d: unterminated want pattern %q", pos.Filename, pos.Line, rest)
		}
		lit := rest[:end+1]
		rest = strings.TrimSpace(rest[end+1:])
		pat, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
		}
		wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
	}
	return wants
}

// TestWantSelfCheck guards the harness itself: a want comment must parse
// into the expected number of patterns.
func TestWantSelfCheck(t *testing.T) {
	fset := token.NewFileSet()
	fset.AddFile("x.go", -1, 100)
	c := &ast.Comment{Slash: token.Pos(1), Text: `// want "foo" "bar.*baz"`}
	ws := parseWant(t, fset, c)
	if len(ws) != 2 {
		t.Fatalf("parsed %d wants, expected 2", len(ws))
	}
	if !ws[1].re.MatchString("bar quux baz") {
		t.Fatalf("second pattern did not match: %v", ws[1].re)
	}
	if fmt.Sprint(ws[0].re) != "foo" {
		t.Fatalf("first pattern = %v", ws[0].re)
	}
}
