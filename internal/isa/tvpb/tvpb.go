// Package tvpb implements the TVPB binary program container. The PR-4
// instruction codec made single instructions an interchange format;
// this package wraps a whole prog.Program — name, text, data segments —
// into one self-describing byte stream so encoded programs can be
// stored on disk, shipped between tools and re-ingested behind the
// static verifier (internal/isa/verify).
//
// Layout (all integers little-endian):
//
//	offset 0   magic "TVPB"
//	        4  u32 version (currently 1)
//	        8  u32 name length, then that many bytes of name
//	        .. u32 instruction count, then count × isa.EncodedSize bytes
//	        .. u32 segment count, then per segment:
//	               u64 base, u64 length, u8 kind, [length bytes if raw]
//
// Segment kind 0 is raw (length bytes of payload follow); kind 1 is
// zero-fill (no payload). Zero-fill keeps containers for workloads with
// multi-megabyte arenas small enough to commit as test corpora: the
// decoder rebuilds the segment as length zero bytes, which is exactly
// what prog.Builder.Alloc produced.
package tvpb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

const (
	containerMagic   = "TVPB"
	containerVersion = 1

	segKindRaw  = 0
	segKindZero = 1

	maxNameLen  = 256
	maxInsts    = 1 << 20
	maxSegments = 1 << 12
	maxSegBytes = 1 << 28 // 256 MiB across all segments
)

// EncodeProgram serializes a whole program (name, text, data segments)
// into the TVPB container format. All-zero segments are stored as
// zero-fill records with no payload.
func EncodeProgram(p *prog.Program) []byte {
	size := 4 + 4 + 4 + len(p.Name) + 4 + len(p.Code)*isa.EncodedSize + 4
	for _, s := range p.Data {
		size += 8 + 8 + 1
		if !allZero(s.Bytes) {
			size += len(s.Bytes)
		}
	}
	out := make([]byte, 0, size)
	out = append(out, containerMagic...)
	out = binary.LittleEndian.AppendUint32(out, containerVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Name)))
	out = append(out, p.Name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Code)))
	for i := range p.Code {
		buf := isa.Encode(&p.Code[i])
		out = append(out, buf[:]...)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
	for _, s := range p.Data {
		out = binary.LittleEndian.AppendUint64(out, s.Base)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.Bytes)))
		if allZero(s.Bytes) {
			out = append(out, segKindZero)
		} else {
			out = append(out, segKindRaw)
			out = append(out, s.Bytes...)
		}
	}
	return out
}

// DecodeProgram parses a TVPB container back into a program. Every
// field is validated — magic, version, bounded lengths, and each
// instruction through the strict Decode codec — so arbitrary bytes
// fail with a positioned error instead of producing a malformed
// program.
func DecodeProgram(data []byte) (*prog.Program, error) {
	r := reader{buf: data}
	magic := r.take(4)
	if r.err != nil || string(magic) != containerMagic {
		return nil, fmt.Errorf("tvpb: not a TVPB container (bad magic)")
	}
	if v := r.u32("version"); v != containerVersion {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("tvpb: unsupported container version %d (want %d)", v, containerVersion)
	}
	nameLen := r.u32("name length")
	if r.err == nil && nameLen > maxNameLen {
		return nil, fmt.Errorf("tvpb: name length %d exceeds limit %d", nameLen, maxNameLen)
	}
	name := r.take(int(nameLen))
	ninst := r.u32("instruction count")
	if r.err == nil && ninst > maxInsts {
		return nil, fmt.Errorf("tvpb: instruction count %d exceeds limit %d", ninst, maxInsts)
	}
	if r.err != nil {
		return nil, r.err
	}
	code := make([]isa.Inst, ninst)
	for i := range code {
		raw := r.take(isa.EncodedSize)
		if r.err != nil {
			return nil, fmt.Errorf("tvpb: inst %d: %w", i, r.err)
		}
		var enc [isa.EncodedSize]byte
		copy(enc[:], raw)
		in, err := isa.Decode(enc)
		if err != nil {
			return nil, fmt.Errorf("tvpb: inst %d: %w", i, err)
		}
		code[i] = in
	}
	nseg := r.u32("segment count")
	if r.err == nil && nseg > maxSegments {
		return nil, fmt.Errorf("tvpb: segment count %d exceeds limit %d", nseg, maxSegments)
	}
	if r.err != nil {
		return nil, r.err
	}
	segs := make([]prog.Segment, 0, nseg)
	var total uint64
	for i := 0; i < int(nseg); i++ {
		base := r.u64("segment base")
		length := r.u64("segment length")
		kind := r.u8("segment kind")
		if r.err != nil {
			return nil, fmt.Errorf("tvpb: segment %d: %w", i, r.err)
		}
		total += length
		if length > maxSegBytes || total > maxSegBytes {
			return nil, fmt.Errorf("tvpb: segment %d: total segment bytes exceed limit %d", i, maxSegBytes)
		}
		if base+length < base {
			return nil, fmt.Errorf("tvpb: segment %d: address range [%#x, %#x+%d) wraps", i, base, base, length)
		}
		var bytes []byte
		switch kind {
		case segKindRaw:
			raw := r.take(int(length))
			if r.err != nil {
				return nil, fmt.Errorf("tvpb: segment %d: %w", i, r.err)
			}
			bytes = append([]byte(nil), raw...)
		case segKindZero:
			bytes = make([]byte, length)
		default:
			return nil, fmt.Errorf("tvpb: segment %d: unknown kind %d", i, kind)
		}
		segs = append(segs, prog.Segment{Base: base, Bytes: bytes})
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("tvpb: %d trailing bytes after container", len(r.buf)-r.off)
	}
	return &prog.Program{Name: string(name), Code: code, Data: segs}, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// reader is a bounds-checked cursor over the container bytes; the first
// short read poisons it so callers can check err once per record.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated container (need %d bytes at offset %d, have %d)", n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8(what string) byte {
	b := r.take(1)
	if r.err != nil {
		r.err = fmt.Errorf("%s: %w", what, r.err)
		return 0
	}
	return b[0]
}

func (r *reader) u32(what string) uint32 {
	b := r.take(4)
	if r.err != nil {
		r.err = fmt.Errorf("%s: %w", what, r.err)
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64(what string) uint64 {
	b := r.take(8)
	if r.err != nil {
		r.err = fmt.Errorf("%s: %w", what, r.err)
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
