package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// neverConfidentTVP builds a TVP machine whose predictor trains but can
// never gain confidence. NineBitIdiom is deliberately left at the baseline
// value (false): the equivalence below is about the prediction datapath,
// so the rename-side idiom hardware must match the VP-off machine.
func neverConfidentTVP() *config.Machine {
	cfg := config.Default()
	cfg.VP.Mode = config.TVP
	cfg.VP.NeverConfident = true
	return cfg
}

// TestNeverConfidentEquivalentToVPOff: a value predictor that never
// reaches confidence must be timing-invisible — every statistic except the
// train-only counter is bit-identical to a machine with VP disabled. This
// is the property that pins "VP with confidence forced to zero ≡ VP off".
func TestNeverConfidentEquivalentToVPOff(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			off := New(config.Default(), spec.Build()).Run(0, 10000)
			nc := New(neverConfidentTVP(), spec.Build()).Run(0, 10000)
			if nc.Cycles != off.Cycles || nc.Committed != off.Committed {
				t.Fatalf("cycles/committed (%d, %d) != VP-off (%d, %d)",
					nc.Cycles, nc.Committed, off.Cycles, off.Committed)
			}
			ns := nc.Stats
			if ns.VPEligible > 0 && ns.VPTrainOnly == 0 {
				t.Error("never-confident predictor recorded no train-only lookups")
			}
			if ns.VPCorrectUsed+ns.VPIncorrectUsed+ns.VPSilenced+ns.VPFlushes != 0 {
				t.Errorf("never-confident predictor used/silenced predictions: %+v", ns)
			}
			ns.VPTrainOnly = 0
			if ns != off.Stats {
				t.Errorf("stats differ beyond the train-only counter:\n nc: %+v\noff: %+v", ns, off.Stats)
			}
		})
	}
}

// TestSilencingIrrelevantWhenNeverConfident: the post-misprediction
// silencing machinery can only trigger on a used prediction, so under
// NeverConfident every silencing policy (short window, long window,
// dynamic) must be bit-identical — including the train-only counter.
func TestSilencingIrrelevantWhenNeverConfident(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			base := neverConfidentTVP() // SilenceCycles 250, static
			short := neverConfidentTVP()
			short.VP.SilenceCycles = 0
			dyn := neverConfidentTVP()
			dyn.VP.SilenceCycles = 15
			dyn.VP.DynamicSilence = true

			want := New(base, spec.Build()).Run(0, 10000)
			for label, cfg := range map[string]*config.Machine{"zero-window": short, "dynamic": dyn} {
				got := New(cfg, spec.Build()).Run(0, 10000)
				if got.Stats != want.Stats || got.Cycles != want.Cycles {
					t.Errorf("%s: silencing policy leaked into a never-confident run", label)
				}
			}
		})
	}
}
