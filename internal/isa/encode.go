package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodedSize is the fixed width, in bytes, of one encoded instruction.
//
// The micro-ISA is structural — the pipeline operates on decoded structs —
// so this codec is not an architectural encoding. It exists for program
// interchange and for differential testing: a fixed-width, fully validated
// binary form makes encode→decode→disassemble round-trips checkable for
// every operation, and gives fuzzers a canonical byte representation.
const EncodedSize = 33

// Encoded-form layout (little-endian for multi-byte fields):
//
//	off 0  Op      off 4  Ra    off  8 Imm (8B)    off 32 flags:
//	off 1  Rd      off 5  Cond  off 16 Imm2 (8B)     bit 0 W
//	off 2  Rn      off 6  Size  off 24 Target (8B)   bit 1 UseImm
//	off 3  Rm      off 7  Mode
const (
	encFlagW      = 1 << 0
	encFlagUseImm = 1 << 1
)

// Encode serializes the instruction into its fixed-width binary form.
// Every well-formed Inst round-trips: Decode(Encode(in)) == *in.
func Encode(in *Inst) [EncodedSize]byte {
	var b [EncodedSize]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rn)
	b[3] = byte(in.Rm)
	b[4] = byte(in.Ra)
	b[5] = byte(in.Cond)
	b[6] = in.Size
	b[7] = byte(in.Mode)
	binary.LittleEndian.PutUint64(b[8:], uint64(in.Imm))
	binary.LittleEndian.PutUint64(b[16:], uint64(in.Imm2))
	binary.LittleEndian.PutUint64(b[24:], uint64(in.Target))
	if in.W {
		b[32] |= encFlagW
	}
	if in.UseImm {
		b[32] |= encFlagUseImm
	}
	return b
}

// Decode deserializes an instruction, validating every enumerated field so
// arbitrary bytes can never produce an Inst outside the ISA's value space.
func Decode(b [EncodedSize]byte) (Inst, error) {
	var in Inst
	if Op(b[0]) >= numOps {
		return in, fmt.Errorf("isa: decode: bad op %d", b[0])
	}
	for i, r := range b[1:5] {
		if Reg(r) >= NumRegs {
			return in, fmt.Errorf("isa: decode: bad register operand %d at field %d", r, i)
		}
	}
	if Cond(b[5]) > AL {
		return in, fmt.Errorf("isa: decode: bad condition %d", b[5])
	}
	switch b[6] {
	case 0, 1, 2, 4, 8:
	default:
		return in, fmt.Errorf("isa: decode: bad memory size %d", b[6])
	}
	if AddrMode(b[7]) > AddrPost {
		return in, fmt.Errorf("isa: decode: bad addressing mode %d", b[7])
	}
	if b[32]&^(encFlagW|encFlagUseImm) != 0 {
		return in, fmt.Errorf("isa: decode: bad flag bits %#x", b[32])
	}
	in = Inst{
		Op:     Op(b[0]),
		Rd:     Reg(b[1]),
		Rn:     Reg(b[2]),
		Rm:     Reg(b[3]),
		Ra:     Reg(b[4]),
		Cond:   Cond(b[5]),
		Size:   b[6],
		Mode:   AddrMode(b[7]),
		Imm:    int64(binary.LittleEndian.Uint64(b[8:])),
		Imm2:   int64(binary.LittleEndian.Uint64(b[16:])),
		Target: int(int64(binary.LittleEndian.Uint64(b[24:]))),
		W:      b[32]&encFlagW != 0,
		UseImm: b[32]&encFlagUseImm != 0,
	}
	return in, nil
}
