package emu

import "fmt"

// Stream adapts a dynamic instruction source into a rewindable stream
// for the timing model. The timing model's fetch stage pulls records with
// Next; a pipeline flush rewinds the cursor to the squashed instruction's
// sequence number so it is delivered again (re-fetched), which is exactly
// the semantics §3.4 of the paper requires for MVP/TVP value
// mispredictions (the mispredicted instruction itself must be refetched
// and renamed again).
//
// A stream runs in one of two modes behind the same branchless indexing
// (recs/base/mask):
//
//   - Ring mode (NewStream): records are generated on demand by an
//     attached emulator and retained in a power-of-two ring (base 0,
//     mask len-1). A rewind must not go further back than the ring
//     capacity, which the pipeline guarantees because it never rewinds
//     past the oldest non-committed instruction and the ring is sized
//     well above the instruction window.
//   - Trace mode (NewTraceStream): records were pre-recorded by
//     RecordTrace and the stream replays them (base Start, mask ^0 so
//     the same masked index is a plain offset). No emulator runs; N
//     machine configurations can replay one shared trace concurrently.
type Stream struct {
	emu    *Emulator // nil in trace mode
	recs   []DynInst
	mask   uint64 // ring: len(recs)-1 (power of two); trace: ^uint64(0)
	base   uint64 // ring: 0; trace: sequence number of recs[0]
	head   uint64 // sequence number of the next record to generate
	cursor uint64 // sequence number of the next record to deliver
	done   bool   // emulator has halted; head is the final count
}

// DefaultStreamCapacity comfortably exceeds the maximum number of
// instructions that can be in flight (ROB + fetch/decode buffers).
const DefaultStreamCapacity = 4096

// NewStream returns a ring-mode stream over the emulator with the given
// ring capacity (DefaultStreamCapacity if cap <= 0). The stream numbering
// starts at the emulator's current position, so a stream over an emulator
// restored from a warmup checkpoint delivers records whose sequence
// numbers continue the pre-checkpoint count — Cursor, Rewind and the
// records' Seq fields all agree.
func NewStream(e *Emulator, capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	// Round up to a power of two so ring indexing is a mask, not a
	// division — Peek runs once per fetched µop.
	for capacity&(capacity-1) != 0 {
		capacity += capacity & -capacity
	}
	start := e.Executed()
	return &Stream{emu: e, recs: make([]DynInst, capacity), mask: uint64(capacity - 1), head: start, cursor: start}
}

// NewTraceStream returns a trace-mode stream replaying a recorded trace
// from its start. Each call returns an independent cursor over the shared
// (read-only) records, so several timing configurations can consume one
// trace — concurrently or in sequence — without re-running the emulator.
func NewTraceStream(t *Trace) *Stream {
	return &Stream{
		recs:   t.recs,
		mask:   ^uint64(0),
		base:   t.start,
		head:   t.start + uint64(len(t.recs)),
		cursor: t.start,
		done:   t.halted,
	}
}

// Cursor returns the sequence number of the next record Next will deliver.
func (s *Stream) Cursor() uint64 { return s.cursor }

// At returns the retained record with the given sequence number. The seq
// must be within the retained window: in ring mode at most ring-capacity
// behind the generation head (the pipeline's in-flight window is far
// smaller), in trace mode within the recording. No bounds are re-checked
// beyond the slice access itself — At sits on the per-µop hot path.
//
//tvp:hotpath
func (s *Stream) At(seq uint64) *DynInst {
	return &s.recs[(seq-s.base)&s.mask]
}

// Next returns the record at the cursor and advances it, or nil when the
// program has ended. The returned pointer is valid until the record falls
// out of the ring (i.e. at least ring-capacity deliveries); trace-mode
// records never expire.
func (s *Stream) Next() *DynInst {
	d := s.Peek()
	if d != nil {
		s.cursor++
	}
	return d
}

// Advance moves the cursor past the current record. The caller must hold
// a non-nil Peek result for the current cursor position — Advance is
// Peek's consuming half, letting the fetch hot path skip Next's repeated
// generation check when it has already peeked the record this cycle.
//
//tvp:hotpath
func (s *Stream) Advance() { s.cursor++ }

// Peek returns the record at the cursor without advancing, or nil at end
// of program. In trace mode, running off the end of a recording that did
// not reach HALT is a programming error (the recording was too short for
// the run length) and panics rather than silently mis-simulating.
func (s *Stream) Peek() *DynInst {
	for s.cursor >= s.head {
		if s.done {
			return nil
		}
		if s.emu == nil {
			panic(fmt.Sprintf("emu: trace exhausted at seq %d before HALT (recording too short)", s.cursor))
		}
		slot := &s.recs[s.head&s.mask]
		if !s.emu.Step(slot) {
			s.done = true
			return nil
		}
		s.head++
	}
	return &s.recs[(s.cursor-s.base)&s.mask]
}

// Rewind moves the cursor back to seq, so the instruction with that
// sequence number is the next one delivered. It panics if seq has fallen
// out of the ring or lies in the future.
func (s *Stream) Rewind(seq uint64) {
	if seq > s.cursor {
		panic(fmt.Sprintf("emu: rewind forward (seq %d > cursor %d)", seq, s.cursor))
	}
	if seq < s.base {
		panic(fmt.Sprintf("emu: rewind before trace start (seq %d, start %d)", seq, s.base))
	}
	if s.emu != nil && s.head > uint64(len(s.recs)) && seq < s.head-uint64(len(s.recs)) {
		panic(fmt.Sprintf("emu: rewind past ring capacity (seq %d, oldest %d)", seq, s.head-uint64(len(s.recs))))
	}
	s.cursor = seq
}

// Done reports whether the underlying program has halted and all records
// have been generated.
func (s *Stream) Done() bool { return s.done && s.cursor >= s.head }
