package verify

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// edge is one feasible CFG successor discovered by the transfer
// function, with the (possibly branch-refined) state flowing along it
// and the call-string context it flows in.
type edge struct {
	to  int
	ctx int
	st  *state
}

// transfer interprets instruction i over st, mutating st in place and
// returning the feasible out-edges. It mirrors emu.Step exactly: every
// abstract operation over-approximates the corresponding concrete one.
func (v *verifier) transfer(i int, st *state) []edge {
	in := &v.p.Code[i]
	w := in.W

	switch in.Op {
	case isa.NOP:

	case isa.HALT:
		v.haltSeen = true
		return nil

	case isa.ADD, isa.SUB, isa.AND, isa.ANDS, isa.ORR, isa.EOR, isa.BIC,
		isa.LSL, isa.LSR, isa.ASR:
		a := v.readReg(i, st, in.Rn, w)
		b := v.op2(i, st, in)
		var r AbsVal
		switch in.Op {
		case isa.ADD:
			r = absAdd(a, b)
		case isa.SUB:
			r = absSub(a, b)
		case isa.AND, isa.ANDS:
			r = absAnd(a, b)
		case isa.ORR:
			r = absOr(a, b)
		case isa.EOR:
			r = absXor(a, b)
		case isa.BIC:
			r = absBic(a, b)
		case isa.LSL:
			r = absShift(a, b, func(x uint64, s uint) uint64 { return x << s }, absLslBy)
		case isa.LSR:
			r = absShift(a, b, func(x uint64, s uint) uint64 { return x >> s }, absLsrBy)
		case isa.ASR:
			if w {
				r = absShift(a, b, func(x uint64, s uint) uint64 {
					return uint64(int32(uint32(x)) >> s)
				}, func(a AbsVal, s uint) AbsVal {
					// W-form ASR sign-extends from bit 31 into the low
					// 32-bit result; the final trunc32 keeps it exact
					// only via the pairwise path, so stay conservative.
					if r, ok := mapSet(a, func(x uint64) uint64 { return uint64(int32(uint32(x)) >> s) }); ok {
						return r
					}
					return top()
				})
			} else {
				r = absShift(a, b, func(x uint64, s uint) uint64 { return uint64(int64(x) >> s) }, absAsrBy)
			}
		}
		if in.Op == isa.ANDS {
			st.cmp.valid = false
		}
		v.writeReg(st, in.Rd, r, w)

	case isa.ADDS:
		a := v.readReg(i, st, in.Rn, w)
		b := v.op2(i, st, in)
		st.cmp.valid = false
		v.writeReg(st, in.Rd, absAdd(a, b), w)

	case isa.SUBS:
		a := v.readReg(i, st, in.Rn, w)
		b := v.op2(i, st, in)
		st.cmp = cmpTag{valid: true, w: w, inst: i, reg: in.Rn, rhs: b}
		// writeReg invalidates the tag again if Rd aliases Rn, in which
		// case the compared value no longer lives in any register.
		v.writeReg(st, in.Rd, absSub(a, b), w)
		if in.Rd == in.Rn && in.Rd != isa.XZR {
			// The compared value was overwritten by the result, but the
			// flags still describe it through rd = rn - rhs: Z is set iff
			// rd == 0, so EQ/NE branches can refine the result register.
			// (Only EQ/NE: carry/borrow conditions speak about rn vs rhs,
			// not about the result vs zero.)
			st.cmp = cmpTag{valid: true, w: w, inst: i, reg: in.Rd, rhs: exact(0), eqOnly: true}
		}

	case isa.UBFM:
		a := v.readReg(i, st, in.Rn, w)
		r := absLsrBy(a, uint(in.Imm&63))
		if width := uint(in.Imm2 + 1); width < 64 {
			r = absAnd(r, exact(onesLow(width)))
		}
		v.writeReg(st, in.Rd, r, w)

	case isa.RBIT:
		a := v.readReg(i, st, in.Rn, w)
		v.writeReg(st, in.Rd, absRbit(a, w), w)

	case isa.MUL:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		v.writeReg(st, in.Rd, absMul(a, b), w)

	case isa.SDIV:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		if w {
			// 32-bit sdiv cannot overflow in 64-bit arithmetic; model
			// it pairwise over the sign-extended operands.
			r, ok := pairwise(a, b, func(x, y uint64) uint64 {
				nv, dv := int64(int32(uint32(x))), int64(int32(uint32(y)))
				if dv == 0 {
					return 0
				}
				return uint64(nv / dv)
			})
			if !ok {
				r = top()
			}
			v.writeReg(st, in.Rd, r, w)
		} else {
			v.writeReg(st, in.Rd, absSdiv(a, b), w)
		}

	case isa.UDIV:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		v.writeReg(st, in.Rd, absUdiv(a, b), w)

	case isa.MOVZ:
		v.writeReg(st, in.Rd, exact(uint64(uint16(in.Imm))<<(16*uint(in.Imm2))), w)
	case isa.MOVN:
		v.writeReg(st, in.Rd, exact(^(uint64(uint16(in.Imm)) << (16 * uint(in.Imm2)))), w)
	case isa.MOVK:
		old := v.readReg(i, st, in.Rd, false) // MOVK reads Rd at full width
		sh := 16 * uint(in.Imm2)
		var mask, chunk uint64
		if sh < 64 {
			mask = uint64(0xffff) << sh
			chunk = uint64(uint16(in.Imm)) << sh
		}
		v.writeReg(st, in.Rd, absOr(absBic(old, exact(mask)), exact(chunk)), w)

	case isa.CSEL:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		v.writeReg(st, in.Rd, a.join(b), w)
	case isa.CSINC:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		v.writeReg(st, in.Rd, a.join(absAdd(b, exact(1))), w)
	case isa.CSNEG:
		a := v.readReg(i, st, in.Rn, w)
		b := v.readReg(i, st, in.Rm, w)
		v.writeReg(st, in.Rd, a.join(absSub(exact(0), b)), w)

	case isa.LDR:
		ea, wb, hasWB := v.absEA(i, st, in)
		size := in.Size
		val := sizeTop(size)
		if v.checkMem(i, in, ea, size, false) {
			val = v.mem.load(ea, size)
		}
		v.writeReg(st, in.Rd, val, w)
		if hasWB {
			st.set(in.Rn, wb)
		}

	case isa.STR:
		data := v.readReg(i, st, in.Rd, w)
		ea, wb, hasWB := v.absEA(i, st, in)
		if v.checkMem(i, in, ea, in.Size, true) {
			v.mem.store(ea, in.Size, data)
		} else {
			// Unprovable store: smear so no later load under-reads.
			v.mem.store(top(), in.Size, top())
		}
		if hasWB {
			st.set(in.Rn, wb)
		}

	case isa.FLDR:
		ea, wb, hasWB := v.absEA(i, st, in)
		v.checkMem(i, in, ea, 8, false) // FLDR always reads 8 bytes
		st.fdef |= 1 << uint(in.Rd)
		if hasWB {
			st.set(in.Rn, wb)
		}

	case isa.FSTR:
		v.useFP(i, st, in.Rd)
		ea, wb, hasWB := v.absEA(i, st, in)
		if v.checkMem(i, in, ea, 8, true) { // FSTR always writes 8 bytes
			v.mem.store(ea, 8, top())
		} else {
			v.mem.store(top(), 8, top())
		}
		if hasWB {
			st.set(in.Rn, wb)
		}

	case isa.B:
		return v.directEdge(i, st, in.Target)

	case isa.BCOND:
		if in.Cond == isa.AL {
			return v.directEdge(i, st, in.Target)
		}
		var out []edge
		taken := st.clone()
		if refineCmp(taken, in.Cond) {
			out = append(out, v.direct(i, taken, in.Target)...)
		}
		fall := st
		if refineCmp(fall, in.Cond.Invert()) {
			out = append(out, v.fallthroughEdge(i, fall)...)
		}
		return out

	case isa.CBZ, isa.CBNZ:
		cur := v.readReg(i, st, in.Rn, false)
		zero, nonzero, ok := splitZero(cur, w)
		var out []edge
		takenVal, fallVal := zero, nonzero
		if in.Op == isa.CBNZ {
			takenVal, fallVal = nonzero, zero
		}
		if ok && takenVal.isEmpty() {
			// branch provably not taken
		} else {
			taken := st.clone()
			if ok {
				taken.setRefined(in.Rn, takenVal)
			}
			out = append(out, v.direct(i, taken, in.Target)...)
		}
		if ok && fallVal.isEmpty() {
			// fallthrough provably impossible
		} else {
			if ok {
				st.setRefined(in.Rn, fallVal)
			}
			out = append(out, v.fallthroughEdge(i, st)...)
		}
		return out

	case isa.TBZ, isa.TBNZ:
		cur := v.readReg(i, st, in.Rn, false)
		bit := uint(in.Imm) & 63
		clear, set, ok := splitBit(cur, bit)
		takenVal, fallVal := clear, set
		if in.Op == isa.TBNZ {
			takenVal, fallVal = set, clear
		}
		var out []edge
		if !(ok && takenVal.isEmpty()) {
			taken := st.clone()
			if ok {
				taken.setRefined(in.Rn, takenVal)
			}
			out = append(out, v.direct(i, taken, in.Target)...)
		}
		if !(ok && fallVal.isEmpty()) {
			if ok {
				st.setRefined(in.Rn, fallVal)
			}
			out = append(out, v.fallthroughEdge(i, st)...)
		}
		return out

	case isa.BL:
		st.set(isa.LR, exact(prog.PC(i+1)))
		if in.Target < 0 || in.Target >= v.n {
			return nil // structural pre-pass already reported it
		}
		// Push the call site: the callee is analyzed in its own context,
		// so states from distinct call sites never merge inside it.
		return []edge{{to: in.Target, ctx: v.pushCtx(v.curCtx, i), st: st}}

	case isa.RET, isa.BR:
		target := v.readReg(i, st, in.Rn, false)
		cands, ok := target.candidates(pairCap)
		if !ok {
			v.addDiag("indirect", Error, i,
				fmt.Sprintf("cannot resolve indirect branch through %s (abstract target [%#x, %#x], %d known bits)",
					in.Rn, target.lo, target.hi, popcount(target.known)))
			return nil
		}
		var out []edge
		for _, pc := range cands {
			idx := prog.Index(pc, v.n)
			if idx < 0 {
				v.addDiag("indirect", Error, i,
					fmt.Sprintf("indirect branch may target %#x, outside the text section", pc))
				continue
			}
			ctx := v.curCtx
			if in.Op == isa.RET {
				ctx = v.retCtx(ctx, idx)
			}
			out = append(out, edge{to: idx, ctx: ctx, st: st})
		}
		return out

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		v.useFP(i, st, in.Rn)
		v.useFP(i, st, in.Rm)
		st.fdef |= 1 << uint(in.Rd)
	case isa.FMADD:
		v.useFP(i, st, in.Rn)
		v.useFP(i, st, in.Rm)
		v.useFP(i, st, in.Ra)
		st.fdef |= 1 << uint(in.Rd)
	case isa.FNEG, isa.FABS, isa.FMOV:
		v.useFP(i, st, in.Rn)
		st.fdef |= 1 << uint(in.Rd)
	case isa.SCVTF:
		v.readReg(i, st, in.Rn, false)
		st.fdef |= 1 << uint(in.Rd)
	case isa.FCVTZS:
		v.useFP(i, st, in.Rn)
		v.writeReg(st, in.Rd, top(), w)
	case isa.FCMP:
		v.useFP(i, st, in.Rn)
		v.useFP(i, st, in.Rm)
		st.cmp.valid = false

	default:
		v.addDiag("struct", Error, i, fmt.Sprintf("unknown opcode %d", uint8(in.Op)))
		return nil
	}

	return v.fallthroughEdge(i, st)
}

// readReg reads a register value with emulator W semantics, recording a
// def-before-use diagnostic if no path has written it yet.
func (v *verifier) readReg(i int, st *state, r isa.Reg, w bool) AbsVal {
	if r != isa.XZR && !st.defined(r) {
		v.addDefUse(i, fmt.Sprintf("%s read before any definition (reads as zero at reset)", r))
	}
	val := st.get(r)
	if w {
		val = val.trunc32()
	}
	return val
}

func (v *verifier) useFP(i int, st *state, r isa.Reg) {
	if !st.fdefined(r) {
		v.addDefUse(i, fmt.Sprintf("d%d read before any definition (reads as zero at reset)", int(r)))
	}
}

// writeReg stores a result with emulator W semantics (zero-extended
// 32-bit truncation).
func (v *verifier) writeReg(st *state, r isa.Reg, val AbsVal, w bool) {
	if w {
		val = val.trunc32()
	}
	st.set(r, val)
}

// setRefined narrows a register on a branch edge without touching the
// def bitmap or compare tag (the value is the same object, just better
// known).
func (s *state) setRefined(r isa.Reg, val AbsVal) {
	if r == isa.XZR {
		return
	}
	s.regs[r] = val
}

func (v *verifier) op2(i int, st *state, in *isa.Inst) AbsVal {
	if in.UseImm {
		val := exact(uint64(in.Imm))
		if in.W {
			val = val.trunc32()
		}
		return val
	}
	return v.readReg(i, st, in.Rm, in.W)
}

// absEA mirrors emu.ea: effective address plus the base writeback value
// for pre/post-indexed modes.
func (v *verifier) absEA(i int, st *state, in *isa.Inst) (ea, wb AbsVal, hasWB bool) {
	base := v.readReg(i, st, in.Rn, false)
	switch in.Mode {
	case isa.AddrOff:
		return absAdd(base, exact(uint64(in.Imm))), AbsVal{}, false
	case isa.AddrReg:
		idx := v.readReg(i, st, in.Rm, false)
		return absAdd(base, absLslBy(idx, uint(in.Imm2))), AbsVal{}, false
	case isa.AddrPre:
		nb := absAdd(base, exact(uint64(in.Imm)))
		return nb, nb, true
	case isa.AddrPost:
		return base, absAdd(base, exact(uint64(in.Imm))), true
	}
	v.addDiag("struct", Error, i, fmt.Sprintf("bad addressing mode %d", in.Mode))
	return top(), AbsVal{}, false
}

// checkMem verifies the memory-safety obligations of one access: the
// whole footprint [lo, hi+size) provably inside the data window or the
// stack window, and for stores additionally disjoint from text (no
// self-modifying code). Returns false when the access is unprovable, in
// which case the caller treats the result/summary conservatively.
func (v *verifier) checkMem(i int, in *isa.Inst, ea AbsVal, size uint8, isStore bool) bool {
	if size != 1 && size != 2 && size != 4 && size != 8 {
		v.addDiag("struct", Error, i, fmt.Sprintf("memory access size %d (want 1/2/4/8)", size))
		return false
	}
	lo := ea.lo
	hi := ea.hi + uint64(size)
	if hi < ea.hi { // footprint wraps the address space
		v.addDiag("bounds", Error, i, "cannot bound effective address (wraps the address space)")
		return false
	}
	if isStore && v.mem.text.overlaps(lo, hi) {
		v.addDiag("selfmod", Error, i,
			fmt.Sprintf("store may target the text section (EA in [%#x, %#x))", lo, hi))
		return false
	}
	inData := lo >= v.mem.data.lo && hi <= v.mem.data.hi
	inStack := lo >= v.mem.stack.lo && hi <= v.mem.stack.hi
	if !inData && !inStack {
		what := "load"
		if isStore {
			what = "store"
		}
		v.addDiag("bounds", Error, i,
			fmt.Sprintf("%s EA not provably in data [%#x, %#x) or stack [%#x, %#x) windows: abstract EA [%#x, %#x)",
				what, v.mem.data.lo, v.mem.data.hi, v.mem.stack.lo, v.mem.stack.hi, lo, hi))
		return false
	}
	return true
}

// direct returns the edge to a direct branch target, dropping it (the
// structural pre-pass already reported it) when out of range.
func (v *verifier) direct(i int, st *state, target int) []edge {
	if target < 0 || target >= v.n {
		return nil
	}
	return []edge{{to: target, ctx: v.curCtx, st: st}}
}

func (v *verifier) directEdge(i int, st *state, target int) []edge {
	return v.direct(i, st, target)
}

// fallthroughEdge returns the implicit successor i+1, reporting a
// fall-off-the-end when there is none.
func (v *verifier) fallthroughEdge(i int, st *state) []edge {
	if i+1 >= v.n {
		v.addDiag("fallthrough", Error, i, "control can fall through past the last instruction")
		return nil
	}
	return []edge{{to: i + 1, ctx: v.curCtx, st: st}}
}

// refineCmp narrows the register compared by the live SUBS tag along a
// BCOND edge. Returns false when the edge is infeasible. Only the
// unsigned conditions refine; signed/overflow conditions pass through.
func refineCmp(st *state, c isa.Cond) bool {
	if !st.cmp.valid || st.cmp.w {
		return true
	}
	if st.cmp.eqOnly && c != isa.EQ && c != isa.NE {
		return true // the tag only knows result-vs-zero equality
	}
	reg := st.cmp.reg
	cur := st.get(reg)
	rhs := st.cmp.rhs
	var refined AbsVal
	switch c {
	case isa.EQ:
		refined = intersect(cur, rhs)
	case isa.NE:
		val, ok := rhs.isExact()
		if !ok {
			return true
		}
		refined = removeVal(cur, val)
	case isa.CS: // lhs >= rhs for some rhs value
		refined = clampLo(cur, rhs.lo)
	case isa.CC: // lhs < rhs
		if rhs.hi == 0 {
			return false
		}
		refined = clampHi(cur, rhs.hi-1)
	case isa.HI: // lhs > rhs
		if rhs.lo == ^uint64(0) {
			return false
		}
		refined = clampLo(cur, rhs.lo+1)
	case isa.LS: // lhs <= rhs
		refined = clampHi(cur, rhs.hi)
	default:
		return true
	}
	if refined.isEmpty() {
		return false
	}
	st.setRefined(reg, refined)
	return true
}

// splitZero partitions a value into its zero and nonzero projections
// under CBZ/CBNZ comparison width. ok is false when the split cannot
// be represented (W-form with unconstrained low bits).
func splitZero(cur AbsVal, w bool) (zero, nonzero AbsVal, ok bool) {
	if !w {
		return intersect(cur, exact(0)), removeVal(cur, 0), true
	}
	// W form compares the low 32 bits only.
	low32Zero := AbsVal{lo: 0, hi: hi32Mask, known: onesLow(32), bits: 0}.tighten()
	zero = intersect(cur, low32Zero)
	// "low 32 bits nonzero" is not representable in the domain; leave
	// the fallthrough value unrefined.
	return zero, cur, true
}

// splitBit partitions a value by one bit's concrete value.
func splitBit(cur AbsVal, bit uint) (clear, set AbsVal, ok bool) {
	mask := uint64(1) << bit
	clearPat := AbsVal{lo: 0, hi: ^uint64(0) &^ mask, known: mask, bits: 0}
	setPat := AbsVal{lo: mask, hi: ^uint64(0), known: mask, bits: mask}
	return intersect(cur, clearPat), intersect(cur, setPat), true
}

// intersect meets two abstractions; result may be empty (infeasible).
func intersect(a, b AbsVal) AbsVal {
	if a.set != nil {
		out := make([]uint64, 0, len(a.set))
		for _, v := range a.set {
			if b.contains(v) {
				out = append(out, v)
			}
		}
		return fromSet(out)
	}
	if b.set != nil {
		out := make([]uint64, 0, len(b.set))
		for _, v := range b.set {
			if a.contains(v) {
				out = append(out, v)
			}
		}
		return fromSet(out)
	}
	if (a.known&b.known)&(a.bits^b.bits) != 0 {
		return fromSet(nil) // commonly-known bits disagree
	}
	out := AbsVal{
		lo:    maxU64(a.lo, b.lo),
		hi:    minU64(a.hi, b.hi),
		known: a.known | b.known,
	}
	out.bits = (a.bits | b.bits) & out.known
	if out.lo > out.hi {
		return fromSet(nil)
	}
	return out.tighten()
}

func removeVal(a AbsVal, v uint64) AbsVal {
	if a.set != nil {
		out := make([]uint64, 0, len(a.set))
		for _, x := range a.set {
			if x != v {
				out = append(out, x)
			}
		}
		return fromSet(out)
	}
	if a.lo == a.hi && a.lo == v {
		return fromSet(nil)
	}
	if a.lo == v {
		a.lo++
	} else if a.hi == v {
		a.hi--
	}
	return a.tighten()
}

func clampLo(a AbsVal, m uint64) AbsVal {
	if a.set != nil {
		out := make([]uint64, 0, len(a.set))
		for _, x := range a.set {
			if x >= m {
				out = append(out, x)
			}
		}
		return fromSet(out)
	}
	if m > a.lo {
		a.lo = m
	}
	if a.lo > a.hi {
		return fromSet(nil)
	}
	return a.tighten()
}

func clampHi(a AbsVal, m uint64) AbsVal {
	if a.set != nil {
		out := make([]uint64, 0, len(a.set))
		for _, x := range a.set {
			if x <= m {
				out = append(out, x)
			}
		}
		return fromSet(out)
	}
	if m < a.hi {
		a.hi = m
	}
	if a.lo > a.hi {
		return fromSet(nil)
	}
	return a.tighten()
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
