package pipeline

import "math/bits"

// Event-driven cycle skipping.
//
// The simulator spends a large fraction of its wall time ticking cycles
// in which no pipeline stage does anything: the frontend is stalled on a
// long L1I/L2/L3 miss or a mispredicted branch, every in-flight µop is
// waiting on an in-flight memory access or a multi-cycle unit, and
// nothing can commit. trySkip detects those spans at the top of step()
// and advances the cycle counter (and the Cycles statistic) over them in
// one jump.
//
// Correctness argument (the invariant TestCycleSkipEquivalence asserts):
// a cycle may be skipped only if no stage would mutate state *or
// counters* during it. All stage activity is gated on cycle comparisons
// against state that only stages themselves mutate, so during a provably
// idle span nothing changes and idleness persists until the first
// computed wake event:
//
//   - fetch acts whenever it is not stalled (fetchStallUntil), not
//     waiting on a mispredicted branch, and the program has not halted.
//     Its only autonomous wake event is fetchStallUntil.
//   - decode/rename/dispatch act when their input queue is non-empty and
//     the stage delay has elapsed — except when rename is blocked on a
//     full ROB / empty PRF or dispatch on a full IQ/LQ/SQ. Those blocked
//     cycles increment exactly one stall counter each and change nothing
//     else; the blocking condition is constant across an idle span
//     (queues only drain via issue/commit, which are idle), so the
//     counter is credited delta at the jump instead of 1 per tick.
//   - issue acts when some IQ entry's sources are all ready. Source
//     ready-times (intReadyAt/fpReadyAt, flag-producer readyCycle) only
//     change when stages run, so each entry's earliest-possible issue
//     cycle is computable. Entries whose producers have not issued yet
//     (ready-time neverReady) or which wait on an unexecuted store are
//     unreachable before that producer acts, and the producer's own wake
//     event keeps the chain anchored: the core never skips past a cycle
//     in which any µop could issue.
//   - writeback/commit act when an issued µop's readyCycle arrives or
//     the ROB head is completed; both are explicit wake events.
//
// Every wake event is thus an underestimate of the next active cycle at
// worst (waking early costs one idle pass and skips again), never an
// overestimate — and all skipped cycles are credited to both c.cycle and
// c.st.Cycles, so every mutation in the run happens at exactly the same
// cycle number as in a tick-by-tick simulation.

// trySkip advances over a provably idle span. Called at the top of
// step(), so between-step observation points (warmup snapshot, probe
// samples, the Run loop) see exactly the cycle values of a tick-by-tick
// run.
//tvp:hotpath
func (c *Core) trySkip() {
	n := c.cycle
	// Hot early-out: fetch works this cycle unless stalled or its output
	// queue is full (a full fetch queue makes fetch a pure no-op — no
	// state, no counters — and it can only drain through decode, whose
	// own wake event anchors the span). This check is the whole cost of
	// the feature on fetch-active cycles.
	fetchIdle := c.haltSeen || c.waitBranchSeq != 0 || c.fetchStallUntil > n ||
		c.fetchQ.len() >= c.cfg.FetchQueue
	if !fetchIdle {
		return
	}

	w := neverReady // earliest cycle any stage can act

	// Decode: acts once the fetch-queue head clears its stage delay AND
	// the µop queue has room for the head's crack count. With the µop
	// queue full, decode is a pure no-op; it drains only through rename,
	// whose clause below anchors the wake.
	if c.fetchQ.len() > 0 {
		f := c.fetchQ.front()
		e := f.fetchCycle + uint64(c.cfg.FetchToDecode)
		if e <= n {
			cnt := 1
			if c.crack[f.sIdx].two {
				cnt = 2
			}
			if c.decodeQ.len()+cnt <= dqCap {
				return
			}
		} else if e < w {
			w = e
		}
	}

	// Rename: acts (or counts a stall) once the µop-queue head clears its
	// delay. A blocked rename increments exactly one stall counter per
	// cycle; the block cannot clear during an idle span.
	renROB, renPRF := false, false
	if c.decodeQ.len() > 0 {
		e := c.decodeQ.front().decodeCycle + uint64(c.cfg.DecodeToRename)
		if e <= n {
			switch {
			case c.robCnt >= c.cfg.ROBSize:
				renROB = true
			case c.ren.FreeInt() < 1 || c.ren.FreeFP() < 1:
				renPRF = true
			default:
				return
			}
		} else if e < w {
			w = e
		}
	}

	// Dispatch: same structure as rename for the IQ/LQ/SQ-full stalls.
	const (
		dispNone = iota
		dispIQ
		dispLQ
		dispSQ
	)
	dispBlock := dispNone
	if c.dispCnt > 0 {
		u := &c.rob[c.dispPtr]
		e := u.renameCycle + uint64(c.cfg.RenameToDispatch)
		if e <= n {
			switch {
			case u.state == stDone:
				return // eliminated µop: dispatch advances past it
			case c.iqCount() >= c.cfg.IQSize:
				dispBlock = dispIQ
			case u.isLoad && c.lq.len() >= c.cfg.LQSize:
				dispBlock = dispLQ
			case u.isStore && c.sq.len() >= c.cfg.SQSize:
				dispBlock = dispSQ
			default:
				return
			}
		} else if e < w {
			w = e
		}
	}

	// Commit: acts when the ROB head has completed.
	if c.robCnt > 0 {
		if h := &c.rob[c.robHead]; h.state == stDone {
			hr := c.robReady[c.robHead]
			if hr <= n {
				return
			}
			if hr < w {
				w = hr
			}
		}
	}

	// Writeback: acts when any issued µop's result arrives.
	for _, i := range c.execL {
		r := c.robReady[i]
		if r <= n {
			return
		}
		if r < w {
			w = r
		}
	}

	// Issue: earliest cycle any IQ entry's sources can all be ready
	// under current state. neverReady sources and unexecuted-store
	// dependences resolve only through another µop's wake event.
	//
	// Under the wakeup scoreboard the sWaiting entries are exactly the
	// no-contribution cases of the polling walk below (an unbounded
	// obstacle anchors them to a producer's own wake event), so only the
	// readyMask bits are inspected — against the cached schedWake bounds
	// (order is irrelevant for a minimum, so this walks the words flat).
	// A cached bound is a lower bound on the fresh recomputation (ready
	// times only increase), so the scoreboard can only under-skip, never
	// over-skip: a cycle it declines to skip is ticked idly, with
	// identical state mutations and identical delta-vs-tick stall/CPI
	// crediting.
	if c.useSB {
		for wi, bm := range c.readyMask {
			for bm != 0 {
				i := int32(wi<<6 + bits.TrailingZeros64(bm))
				bm &= bm - 1
				e := c.schedWake[i]
				if e <= n {
					return
				}
				if e < w {
					w = e
				}
			}
		}
		// Entries maturing inside the wake wheel anchor the jump to the
		// earliest non-empty slot (always strictly future: the current
		// cycle's slot was drained by wheelAdvance before trySkip ran).
		if e := c.wheelNext(); e < w {
			w = e
		}
	}
	for _, i := range c.iq {
		u := &c.rob[i]
		if u.memDepSeq != 0 && c.storePending(u.memDepSeq-1) {
			continue
		}
		var e uint64
		for k := 0; k < int(u.nsrc); k++ {
			s := u.srcs[k]
			var v uint64
			if s.fp {
				v = c.fpReadyAt[s.name]
			} else {
				v = c.intReadyAt[s.name]
			}
			if v > e {
				e = v
			}
		}
		if u.flagR && u.flagSrcIdx != noIdx {
			if fr := c.robReady[u.flagSrcIdx]; fr > e && c.rob[u.flagSrcIdx].uSeq == u.flagSrcUSeq {
				e = fr
			}
		}
		if e <= n {
			return
		}
		if e < w {
			w = e
		}
	}

	// Fetch resumes at fetchStallUntil when that is still in the future
	// (halt and branch waits resolve only through other stages' wake
	// events, and a fetch blocked purely on a full fetch queue wakes via
	// decode's pop, which the clauses above already anchor — a stale past
	// fetchStallUntil must not clamp the jump).
	if !c.haltSeen && c.waitBranchSeq == 0 && c.fetchStallUntil > n && c.fetchStallUntil < w {
		w = c.fetchStallUntil
	}

	// Never skip past the deadlock watchdog: a genuinely wedged machine
	// must panic at the identical cycle either way.
	if limit := c.lastCommitC + deadlockWindow; w > limit {
		w = limit
	}
	if w <= n {
		return
	}

	delta := w - n
	// CPI stack: the whole span is idle, so its delta × CommitWidth
	// commit slots all classify as cycle n would have (every classifier
	// input is frozen across the span — see cpistack.go). Credited before
	// the state mutations below so classifyIdle(n, …) sees span state.
	if c.acct != nil {
		c.cpiSkip(n, delta, renROB || renPRF || dispBlock != dispNone)
	}
	c.cycle = w
	c.st.Cycles += delta
	c.skipped += delta
	if renROB {
		c.st.ROBFullStalls += delta
	}
	if renPRF {
		c.st.PRFEmptyStalls += delta
	}
	switch dispBlock {
	case dispIQ:
		c.st.IQFullStalls += delta
	case dispLQ:
		c.st.LQFullStalls += delta
	case dispSQ:
		c.st.SQFullStalls += delta
	}
}

// wheelNext returns the earliest cycle any wake-wheel entry matures, or
// neverReady when the wheel is empty. Every parked bound lies strictly
// within (cycle, cycle+wheelSpan) — the insert condition, plus the
// current slot being drained before trySkip runs — so the first set
// slot bit at or after the next cycle's position maps back to a unique
// absolute cycle.
func (c *Core) wheelNext() uint64 {
	start := (c.cycle + 1) & (wheelSpan - 1)
	nw := len(c.wheelBits)
	hw := int(start >> 6)
	hb := uint(start & 63)
	for k := 0; k <= nw; k++ {
		w := hw + k
		if w >= nw {
			w -= nw
		}
		bm := c.wheelBits[w]
		if k == 0 {
			bm &= ^uint64(0) << hb
		} else if k == nw {
			bm &= 1<<hb - 1
		}
		if bm != 0 {
			s := uint64(w<<6 + bits.TrailingZeros64(bm))
			return c.cycle + 1 + ((s - start) & (wheelSpan - 1))
		}
	}
	return neverReady
}
