package report

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/vp"
)

// StorageKB returns the value predictor storage footprint for the machine
// geometry under the given targeting mode (§3.3's 55.2/13.9/7.9 KB).
func StorageKB(m *config.Machine, mode config.VPMode) float64 {
	cfg := m.VP
	cfg.Mode = mode
	return vp.New(cfg).StorageKB()
}

// WriteFig1 renders the value-distribution bars.
func WriteFig1(w io.Writer, vs []ValueCount) {
	fmt.Fprintln(w, "Fig. 1 — Dynamic value distribution (GPR-writing instructions), suite mean")
	fmt.Fprintf(w, "%-20s %8s\n", "value", "%dyn")
	for _, v := range vs {
		fmt.Fprintf(w, "%#-20x %8.3f\n", v.Value, v.Percent)
	}
}

// WriteFig2 renders µops/inst and baseline IPC per workload.
func WriteFig2(w io.Writer, rows []Fig2Row, meanUops, hmeanIPC float64) {
	fmt.Fprintln(w, "Fig. 2 — µops per architectural instruction (bars) and baseline IPC (line)")
	fmt.Fprintf(w, "%-22s %10s %8s\n", "workload", "uops/inst", "IPC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.3f %8.3f\n", r.Workload, r.UopsPerInst, r.IPC)
	}
	fmt.Fprintf(w, "%-22s %10.3f %8.3f  (amean / hmean)\n", "mean", meanUops, hmeanIPC)
}

// WriteFig3 renders the VP speedup figure with coverage/accuracy columns.
func WriteFig3(w io.Writer, rows []Fig3Row, sum Fig3Summary) {
	fmt.Fprintln(w, "Fig. 3 — Speedup of MVP/TVP/GVP over baseline (move + 0/1-idiom elimination)")
	fmt.Fprintf(w, "%-22s %8s | %8s %7s %7s | %8s %7s %7s | %8s %7s %7s\n",
		"workload", "baseIPC", "MVP%", "cov%", "acc%", "TVP%", "cov%", "acc%", "GVP%", "cov%", "acc%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8.3f |", r.Workload, r.BaseIPC)
		for m := 0; m < 3; m++ {
			fmt.Fprintf(w, " %+8.2f %7.2f %7.2f |", r.Speedup[m], r.Coverage[m], r.Accuracy[m])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s %8s |", "geomean / mean cov", "")
	for m := 0; m < 3; m++ {
		fmt.Fprintf(w, " %+8.2f %7.2f %7s |", sum.GeomeanSpeedup[m], sum.MeanCoverage[m], "")
	}
	fmt.Fprintln(w)
}

// WriteTable3 renders the budget sensitivity study.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3 — Geomean speedup vs. predictor storage budget")
	fmt.Fprintf(w, "%-14s | %10s %8s | %10s %8s | %10s %8s\n",
		"scale", "MVP KB", "MVP%", "TVP KB", "TVP%", "GVP KB", "GVP%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s |", r.Label)
		for m := 0; m < 3; m++ {
			fmt.Fprintf(w, " %10.1f %+8.2f |", r.StorageKB[m], r.Geomean[m])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig4 renders the elimination breakdown.
func WriteFig4(w io.Writer, title string, rows []Fig4Row, mean Fig4Row) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-22s %8s %8s %8s %8s %8s %8s\n",
		"workload", "0-idiom", "1-idiom", "move", "9-bit", "SpSR", "nonME-mv")
	pr := func(r Fig4Row) {
		fmt.Fprintf(w, "%-22s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.Workload, r.ZeroIdiom, r.OneIdiom, r.Move, r.NineBit, r.SpSR, r.NonMEMove)
	}
	for _, r := range rows {
		pr(r)
	}
	pr(mean)
}

// WriteFig5 renders the SpSR speedup comparison.
func WriteFig5(w io.Writer, rows []Fig5Row, geo [4]float64) {
	fmt.Fprintln(w, "Fig. 5 — Speedup of MVP/TVP with and without SpSR over baseline")
	fmt.Fprintf(w, "%-22s %9s %12s %9s %12s\n", "workload", "MVP%", "MVP+SpSR%", "TVP%", "TVP+SpSR%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %+9.2f %+12.2f %+9.2f %+12.2f\n",
			r.Workload, r.Speedup[0], r.Speedup[1], r.Speedup[2], r.Speedup[3])
	}
	fmt.Fprintf(w, "%-22s %+9.2f %+12.2f %+9.2f %+12.2f  (geomean)\n", "geomean", geo[0], geo[1], geo[2], geo[3])
}

// WriteFig6 renders the activity proxies.
func WriteFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Fig. 6 — Mean INT PRF and IQ activity normalized to baseline (percent)")
	fmt.Fprintf(w, "%-16s %12s %13s %10s %10s\n", "config", "INTPRFReads", "INTPRFWrites", "IQAdded", "IQIssued")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.2f %13.2f %10.2f %10.2f\n",
			r.Config, r.IntPRFReads, r.IntPRFWrites, r.IQAdded, r.IQIssued)
	}
}

// WriteStorage renders the §3.3 predictor storage model.
func WriteStorage(w io.Writer, m *config.Machine) {
	fmt.Fprintln(w, "§3.3 — Value predictor storage (Table 2 VTAGE geometry)")
	for _, mode := range []config.VPMode{config.GVP, config.TVP, config.MVP} {
		fmt.Fprintf(w, "  %-8s %6.1f KB (paper: %s)\n", mode, StorageKB(m, mode),
			map[config.VPMode]string{config.GVP: "55.2 KB", config.TVP: "13.9 KB", config.MVP: "7.9 KB"}[mode])
	}
}

// WriteTable2 renders the machine configuration.
func WriteTable2(w io.Writer, m *config.Machine) {
	fmt.Fprintln(w, "Table 2 — Simulated machine")
	fmt.Fprintf(w, "  Fetch     %d-wide, %d-entry FQ, %dc fetch→decode, %dc taken-branch bubble\n",
		m.FetchWidth, m.FetchQueue, m.FetchToDecode, m.TakenBranchPenalty)
	fmt.Fprintf(w, "  Decode    %d-wide (+%dc), mistarget redirect %dc\n", m.DecodeWidth, m.DecodeToRename, m.DecodeMistarget)
	fmt.Fprintf(w, "  Rename    %d-wide (+%dc), ME=%v, 0/1-idiom=%v, 9-bit=%v, SpSR=%v\n",
		m.RenameWidth, m.RenameToDispatch, m.MoveElim, m.ZeroOneIdiom, m.NineBitIdiom, m.SpSR)
	fmt.Fprintf(w, "  Window    ROB %d, IQ %d, LQ %d, SQ %d, INT PRF %d, FP PRF %d\n",
		m.ROBSize, m.IQSize, m.LQSize, m.SQSize, m.IntPRF, m.FPPRF)
	fmt.Fprintf(w, "  Issue     %d-wide over %d pipes; IntMul %dc, IntDiv %dc (unpiped), FP %d/%d/%dc, FPDiv %dc\n",
		m.IssueWidth, len(m.FUs), m.IntMulLat, m.IntDivLat, m.FPALULat, m.FPMulLat, m.FPMacLat, m.FPDivLat)
	fmt.Fprintf(w, "  Branch    TAGE 1+%d tables (hist %d..%d), %d-entry BTB, %d-entry indirect, %d-entry RAS\n",
		m.BPTables, m.BPMinHist, m.BPMaxHist, m.BTBEntries, m.IndirectEntries, m.RASEntries)
	fmt.Fprintf(w, "  VP        VTAGE 1+%d tables (hist %d..%d), FPC %d-bit (1/%d), silence %dc, mode %v\n",
		len(m.VP.TableLog2)-1, m.VP.MinHist, m.VP.MaxHist, m.VP.FPCBits, m.VP.FPCInvProb, m.VP.SilenceCycles, m.VP.Mode)
	fmt.Fprintf(w, "  Caches    L1I %dKB/%d, L1D %dKB/%d (%dc), L2 %dKB/%d (%dc), L3 %dMB/%d (%dc), DRAM %dc\n",
		m.L1I.SizeBytes>>10, m.L1I.Assoc, m.L1D.SizeBytes>>10, m.L1D.Assoc, m.L1D.LoadToUse,
		m.L2.SizeBytes>>10, m.L2.Assoc, m.L2.LoadToUse,
		m.L3.SizeBytes>>20, m.L3.Assoc, m.L3.LoadToUse, m.MemLat)
	fmt.Fprintf(w, "  TLBs      L1 %d+%d (0c), L2 %d (%dc), walk %dc\n",
		m.L1ITLB.Entries, m.L1DTLB.Entries, m.L2TLB.Entries, m.L2TLB.Latency, m.PageWalkLat)
	fmt.Fprintf(w, "  Prefetch  L1D stride (degree %d) = %v, L2 AMPM = %v\n", m.StrideDegree, m.StridePrefetch, m.AMPMPrefetch)
	fmt.Fprintf(w, "  MemDep    Store Sets: %d-entry SSIT, %d-entry LFST\n", m.SSITEntries, m.LFSTEntries)
}

// Table1Case is one demonstrated idiom row of Table 1.
type Table1Case struct {
	Instruction string
	Operand     string
	Reduction   string
}

// Table1 exercises the SpSR decision engine on every idiom row of the
// paper's Table 1 and reports the reduction each produces.
func Table1() []Table1Case {
	e := rename.Engine{SpSR: true, Inline: true}
	known := func(v int64) rename.Operand {
		return rename.Operand{Name: rename.ValueName(v), Known: true, Value: v, Spec: true}
	}
	phys := rename.Operand{Name: 40, Wide: true}
	type tc struct {
		name, op string
		in       isa.Inst
		srcN     rename.Operand
		srcM     rename.Operand
		nzKnown  bool
		nz       isa.Flags
	}
	cases := []tc{
		{"sub dst, src0, #1", "src0=1", isa.Inst{Op: isa.SUB, Rd: 0, Rn: 1, Imm: 1, UseImm: true}, known(1), phys, false, 0},
		{"sub dst, src0, src1", "src1=0", isa.Inst{Op: isa.SUB, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"sub dst, src0, src1", "src0=src1=1", isa.Inst{Op: isa.SUB, Rd: 0, Rn: 1, Rm: 2}, known(1), known(1), false, 0},
		{"add dst, src0, #1", "src0=0", isa.Inst{Op: isa.ADD, Rd: 0, Rn: 1, Imm: 1, UseImm: true}, known(0), phys, false, 0},
		{"add dst, src0, src1", "src1=0", isa.Inst{Op: isa.ADD, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"orr dst, src0, src1", "src0=0", isa.Inst{Op: isa.ORR, Rd: 0, Rn: 1, Rm: 2}, known(0), phys, false, 0},
		{"eor dst, src0, src1", "src1=0", isa.Inst{Op: isa.EOR, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"and dst, src0, #1", "src0=0", isa.Inst{Op: isa.AND, Rd: 0, Rn: 1, Imm: 1, UseImm: true}, known(0), phys, false, 0},
		{"and dst, src0, #1", "src0=1", isa.Inst{Op: isa.AND, Rd: 0, Rn: 1, Imm: 1, UseImm: true}, known(1), phys, false, 0},
		{"and dst, src0, src1", "src1=0", isa.Inst{Op: isa.AND, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"lsr dst, src0, #3", "src0=0", isa.Inst{Op: isa.LSR, Rd: 0, Rn: 1, Imm: 3, UseImm: true}, known(0), phys, false, 0},
		{"lsl dst, src0, src1", "src1=0", isa.Inst{Op: isa.LSL, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"ubfm dst, src0, #0, #7", "src0=0", isa.Inst{Op: isa.UBFM, Rd: 0, Rn: 1, Imm: 0, Imm2: 7}, known(0), phys, false, 0},
		{"bic dst, src0, src1", "src0=0", isa.Inst{Op: isa.BIC, Rd: 0, Rn: 1, Rm: 2}, known(0), phys, false, 0},
		{"bic dst, src0, src1", "src1=0", isa.Inst{Op: isa.BIC, Rd: 0, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"rbit dst, src0", "src0=0", isa.Inst{Op: isa.RBIT, Rd: 0, Rn: 1}, known(0), phys, false, 0},
		{"ands dst, src0, src1", "src0=0", isa.Inst{Op: isa.ANDS, Rd: 0, Rn: 1, Rm: 2}, known(0), phys, false, 0},
		{"ands xzr, src0, src1", "src1=0", isa.Inst{Op: isa.ANDS, Rd: isa.XZR, Rn: 1, Rm: 2}, phys, known(0), false, 0},
		{"subs xzr, src0, src1", "src0=1 src1=1", isa.Inst{Op: isa.SUBS, Rd: isa.XZR, Rn: 1, Rm: 2}, known(1), known(1), false, 0},
		{"adds dst, src0, #1", "src0=0", isa.Inst{Op: isa.ADDS, Rd: 0, Rn: 1, Imm: 1, UseImm: true}, known(0), phys, false, 0},
		{"cbz src0", "src0=0", isa.Inst{Op: isa.CBZ, Rn: 1}, known(0), phys, false, 0},
		{"tbz src0, #0", "src0=0", isa.Inst{Op: isa.TBZ, Rn: 1, Imm: 0}, known(0), phys, false, 0},
		{"b.eq", "NZCV known (Z=1)", isa.Inst{Op: isa.BCOND, Cond: isa.EQ}, phys, phys, true, isa.FlagZ},
		{"csel dst, a, b, eq", "NZCV known (Z=1)", isa.Inst{Op: isa.CSEL, Rd: 0, Rn: 1, Rm: 2, Cond: isa.EQ}, phys, phys, true, isa.FlagZ},
		{"csinc dst, a, b, eq", "NZCV known (Z=1, cond true)", isa.Inst{Op: isa.CSINC, Rd: 0, Rn: 1, Rm: 2, Cond: isa.EQ}, phys, phys, true, isa.FlagZ},
		{"csinc dst, a, xzr, ne", "NZCV known (Z=1, cond false)", isa.Inst{Op: isa.CSINC, Rd: 0, Rn: 1, Rm: isa.XZR, Cond: isa.NE}, phys, rename.Operand{Name: rename.HardZero, Known: true}, true, isa.FlagZ},
		{"csneg dst, a, b, eq", "NZCV known (Z=1, cond true)", isa.Inst{Op: isa.CSNEG, Rd: 0, Rn: 1, Rm: 2, Cond: isa.EQ}, phys, phys, true, isa.FlagZ},
	}
	out := make([]Table1Case, 0, len(cases))
	for _, t := range cases {
		d, _ := e.Decide(&t.in, &t.srcN, &t.srcM, t.nz, true, t.nzKnown)
		red := d.Kind.String()
		if d.SetsNZCV {
			red += "+NZCV"
		}
		if d.Kind == rename.KindBranch {
			red = "nop (resolved, taken=" + fmt.Sprint(d.Taken) + ")"
		}
		out = append(out, Table1Case{Instruction: t.name, Operand: t.op, Reduction: red})
	}
	return out
}

// WriteTable1 renders the SpSR idiom demonstrations.
func WriteTable1(w io.Writer, cases []Table1Case) {
	fmt.Fprintln(w, "Table 1 — SpSR idioms as implemented (decision engine output)")
	fmt.Fprintf(w, "%-28s %-28s %s\n", "instruction", "known operand(s)", "reduction")
	for _, c := range cases {
		fmt.Fprintf(w, "%-28s %-28s %s\n", c.Instruction, c.Operand, c.Reduction)
	}
}

// WriteSilencing renders the silencing ablation.
func WriteSilencing(w io.Writer, rows []SilencingRow) {
	fmt.Fprintln(w, "§3.4.1 — Silencing window ablation (geomean speedups)")
	fmt.Fprintf(w, "%8s %9s %9s %9s\n", "cycles", "MVP%", "TVP%", "GVP%")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %+9.2f %+9.2f %+9.2f\n", r.Cycles, r.Geomean[0], r.Geomean[1], r.Geomean[2])
	}
}

// WriteDynamicSilence renders the adaptive-silencing extension study.
func WriteDynamicSilence(w io.Writer, fixed, dynamic [3]float64) {
	fmt.Fprintln(w, "§3.4.1 extension — fixed 250-cycle vs. adaptive silencing (geomean speedups)")
	fmt.Fprintf(w, "%-10s %9s %9s %9s\n", "scheme", "MVP%", "TVP%", "GVP%")
	fmt.Fprintf(w, "%-10s %+9.2f %+9.2f %+9.2f\n", "fixed", fixed[0], fixed[1], fixed[2])
	fmt.Fprintf(w, "%-10s %+9.2f %+9.2f %+9.2f\n", "dynamic", dynamic[0], dynamic[1], dynamic[2])
}

// WriteValidation renders the validation-scheme ablation.
func WriteValidation(w io.Writer, speedup, prfReads [2]float64) {
	fmt.Fprintln(w, "§2.2/§3.3 — GVP validation at execute vs. at retire")
	fmt.Fprintf(w, "%-12s %9s %14s\n", "scheme", "geomean%", "PRF reads %")
	fmt.Fprintf(w, "%-12s %+9.2f %14.2f\n", "execute", speedup[0], prfReads[0])
	fmt.Fprintf(w, "%-12s %+9.2f %14.2f\n", "retire", speedup[1], prfReads[1])
}

// WriteCPIStacks renders the top-down cycle accounting breakdown: for
// each workload, the percent of post-warmup commit slots per bucket
// under the baseline and under TVP+SpSR. Each row sums to 100% by the
// exact-decomposition invariant.
func WriteCPIStacks(w io.Writer, rows []CPIRow) {
	fmt.Fprintln(w, "CPI stack — % of commit slots by top-down bucket (base vs TVP+SpSR)")
	fmt.Fprintf(w, "%-22s %-5s", "workload", "cfg")
	for _, b := range (&stats.CPIStack{}).Buckets() {
		fmt.Fprintf(w, " %8s", b.Name)
	}
	fmt.Fprintln(w)
	// Three decimals: rare-event buckets (bad-vp under a warmed-up
	// confident predictor) are real at the 0.005% scale and must not
	// render as 0.00.
	pr := func(name, cfg string, s *stats.CPIStack) {
		fmt.Fprintf(w, "%-22s %-5s", name, cfg)
		total := float64(s.Total())
		for _, b := range s.Buckets() {
			p := 0.0
			if total > 0 {
				p = 100 * float64(b.Slots) / total
			}
			fmt.Fprintf(w, " %8.3f", p)
		}
		fmt.Fprintln(w)
	}
	for _, r := range rows {
		pr(r.Workload, "base", &r.Base)
		pr("", "tvp", &r.TVP)
	}
}

// WritePrefetch renders the §6.2 stride-prefetcher interaction study.
func WritePrefetch(w io.Writer, rows []PrefetchRow) {
	fmt.Fprintln(w, "§6.2 — TVP+SpSR speedup with and without the L1D stride prefetcher")
	fmt.Fprintf(w, "%-22s %12s %14s\n", "workload", "with stride%", "without stride%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %+12.2f %+14.2f\n", r.Workload, r.WithStride, r.WithoutStride)
	}
}
