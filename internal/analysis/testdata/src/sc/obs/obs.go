// Package obs is the statscomplete golden obs side: record types that
// drop or truncate the counter block.
package obs

import "sc/stats"

// SimSubset hand-enumerates counters — the failure mode the analyzer
// exists to reject.
type SimSubset struct{ Cycles uint64 }

// RunRecord carries a subset instead of the whole block.
type RunRecord struct {
	Schema string
	Totals SimSubset // want "RunRecord.Totals must carry the whole sc/stats.Sim counter block"
}

// Sample carries the right type but hides it from JSON.
type Sample struct {
	StartInst uint64
	Delta     stats.Sim `json:"-"` // want `Sample.Delta carries json tag "-"`
}
