package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/isa/tvpb"
)

// TestEncodedSuiteVerifies is the `make verify-suite` gate: every
// built-in workload must round-trip through the TVPB container and be
// admitted by the static verifier with zero Error-severity findings —
// otherwise the -load path would reject a binary the suite itself
// produced.
func TestEncodedSuiteVerifies(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := Program(name)
			if err != nil {
				t.Fatal(err)
			}
			q, res, err := FromEncoded(tvpb.EncodeProgram(p))
			if err != nil {
				for _, d := range res.Errors() {
					t.Errorf("%s", d)
				}
				t.Fatal(err)
			}
			if len(q.Code) != len(p.Code) || len(q.Data) != len(p.Data) {
				t.Fatalf("round trip changed shape: %d/%d insts, %d/%d segments",
					len(q.Code), len(p.Code), len(q.Data), len(p.Data))
			}
		})
	}
}

// TestPromotedCorpusBitExact pins the promoted 9xx members to their
// committed containers: testdata/corpus must match the generator
// bit-for-bit (the corpus IS the program source the suite embeds, so
// drift from the generator would silently fork the workload) and every
// container must be admitted through FromEncoded. Regenerate after an
// intentional generator change with
// UPDATE_CORPUS=1 go test ./internal/workload -run PromotedCorpus.
func TestPromotedCorpusBitExact(t *testing.T) {
	for _, pm := range promotedSpecs() {
		pm := pm
		t.Run(pm.name, func(t *testing.T) {
			p := fuzzgen.GenerateIters(pm.seed, promotedIters)
			p.Name = pm.name
			want := tvpb.EncodeProgram(p)
			path := filepath.Join("testdata", "corpus", pm.name+".tvpb")
			//tvplint:ignore nondet UPDATE_CORPUS is an explicit opt-in regeneration knob; a normal run only compares committed bytes
			if os.Getenv("UPDATE_CORPUS") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with UPDATE_CORPUS=1)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("committed container differs from GenerateIters(%d) output (%d vs %d bytes)",
					pm.seed, len(got), len(want))
			}
			if _, _, err := FromEncoded(got); err != nil {
				t.Fatalf("committed container rejected: %v", err)
			}
		})
	}
}
