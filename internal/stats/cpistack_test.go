package stats

import (
	"reflect"
	"testing"
)

// fillCPIStack sets every bucket to a distinct nonzero value derived from
// offset, via reflection so new buckets are covered automatically.
func fillCPIStack(offset uint64) CPIStack {
	var s CPIStack
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(offset + uint64(i)*17)
	}
	return s
}

func TestSubCPICoversEveryBucket(t *testing.T) {
	a := fillCPIStack(2000)
	b := fillCPIStack(1000)
	d := SubCPI(&a, &b)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		if got := dv.Field(i).Uint(); got != 1000 {
			t.Errorf("bucket %s: delta %d, want 1000", dv.Type().Field(i).Name, got)
		}
	}
}

func TestAddCPICoversEveryBucket(t *testing.T) {
	a := fillCPIStack(1000)
	b := fillCPIStack(5)
	a.AddCPI(&b)
	av := reflect.ValueOf(a)
	for i := 0; i < av.NumField(); i++ {
		if got, want := av.Field(i).Uint(), 1005+uint64(i)*34; got != want {
			t.Errorf("bucket %s: sum %d, want %d", av.Type().Field(i).Name, got, want)
		}
	}
}

func TestCPIStackTotal(t *testing.T) {
	s := fillCPIStack(10)
	var want uint64
	v := reflect.ValueOf(s)
	for i := 0; i < v.NumField(); i++ {
		want += v.Field(i).Uint()
	}
	if got := s.Total(); got != want {
		t.Errorf("Total() = %d, want %d", got, want)
	}
}

// TestCPIStackBucketsComplete pins Buckets() to the struct: every field
// appears exactly once with a unique name, and the values line up. A new
// field added without a render entry fails here.
func TestCPIStackBucketsComplete(t *testing.T) {
	s := fillCPIStack(100)
	bs := s.Buckets()
	v := reflect.ValueOf(s)
	if len(bs) != v.NumField() {
		t.Fatalf("Buckets() has %d entries, struct has %d fields", len(bs), v.NumField())
	}
	var sum uint64
	seen := map[string]bool{}
	for _, b := range bs {
		if b.Name == "" || seen[b.Name] {
			t.Errorf("bucket name %q empty or duplicated", b.Name)
		}
		seen[b.Name] = true
		sum += b.Slots
	}
	if sum != s.Total() {
		t.Errorf("Buckets() sum %d != Total() %d", sum, s.Total())
	}
}

func TestCPIStackTop(t *testing.T) {
	var s CPIStack
	if top := s.Top(); top.Slots != 0 {
		t.Errorf("zero stack Top() = %+v, want zero slots", top)
	}
	s.BackendMemory = 50
	s.Retiring = 49
	if top := s.Top(); top.Name != "be-mem" || top.Slots != 50 {
		t.Errorf("Top() = %+v, want be-mem/50", top)
	}
	s.Retiring = 50 // tie: canonical order wins
	if top := s.Top(); top.Name != "retire" {
		t.Errorf("tie Top() = %+v, want retire", top)
	}
}
