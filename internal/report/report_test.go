package report

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/config"
)

// tiny restricts experiments to a 3-benchmark sample at short length so
// the whole report layer is exercised in seconds.
func tiny() Config {
	c := Quick()
	c.Workloads = []string{"600_perlbench_s_1", "623_xalancbmk_s", "654_roms_s"}
	return c
}

func TestFig1(t *testing.T) {
	c := tiny()
	c.Insts = 30000
	vs, err := Fig1(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("no values collected")
	}
	if vs[0].Value != 0 {
		t.Errorf("most frequent value = %#x, Fig. 1 wants 0x0", vs[0].Value)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].Percent > vs[i-1].Percent {
			t.Fatal("values not sorted by frequency")
		}
	}
	var buf bytes.Buffer
	WriteFig1(&buf, vs)
	if !strings.Contains(buf.String(), "0x0") {
		t.Error("rendering missing 0x0 row")
	}
}

func TestFig2(t *testing.T) {
	rows, mu, hi, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if mu < 1 || hi <= 0 {
		t.Errorf("means implausible: uops %.3f, IPC %.3f", mu, hi)
	}
	var buf bytes.Buffer
	WriteFig2(&buf, rows, mu, hi)
	if !strings.Contains(buf.String(), "xalancbmk") {
		t.Error("rendering missing workload")
	}
}

func TestFig3(t *testing.T) {
	rows, sum, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering invariant on this sample: GVP geomean >= MVP geomean.
	if sum.GeomeanSpeedup[2] < sum.GeomeanSpeedup[0]-0.5 {
		t.Errorf("GVP %.2f should dominate MVP %.2f", sum.GeomeanSpeedup[2], sum.GeomeanSpeedup[0])
	}
	if sum.MeanCoverage[0] > sum.MeanCoverage[2] {
		t.Error("MVP coverage cannot exceed GVP coverage")
	}
	for _, r := range rows {
		for m := 0; m < 3; m++ {
			if r.Accuracy[m] < 99 {
				t.Errorf("%s accuracy[%d] = %.2f%%; FPC confidence should keep it ≈100%%", r.Workload, m, r.Accuracy[m])
			}
		}
	}
	var buf bytes.Buffer
	WriteFig3(&buf, rows, sum)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("rendering missing summary")
	}
}

func TestFig4(t *testing.T) {
	rows, mean, err := Fig4(tiny(), config.TVP)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	if mean.SpSR <= 0 {
		t.Error("TVP+SpSR must eliminate some instructions")
	}
	if mean.Move <= 0 || mean.ZeroIdiom <= 0 {
		t.Error("baseline DSR categories empty")
	}
	// MVP variant has no 9-bit idiom elimination.
	_, meanMVP, err := Fig4(tiny(), config.MVP)
	if err != nil {
		t.Fatal(err)
	}
	if meanMVP.NineBit != 0 {
		t.Errorf("MVP cannot 9-bit-eliminate (got %.3f%%)", meanMVP.NineBit)
	}
	var buf bytes.Buffer
	WriteFig4(&buf, "Fig 4 test", rows, mean)
	if !strings.Contains(buf.String(), "SpSR") {
		t.Error("rendering missing SpSR column")
	}
}

func TestFig5(t *testing.T) {
	rows, geo, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("rows")
	}
	// SpSR must not change speedups catastrophically (paper: ±small).
	for k := 0; k < 4; k++ {
		if geo[k] < -20 || geo[k] > 80 {
			t.Errorf("geo[%d] = %.2f implausible", k, geo[k])
		}
	}
	var buf bytes.Buffer
	WriteFig5(&buf, rows, geo)
	if !strings.Contains(buf.String(), "SpSR") {
		t.Error("rendering")
	}
}

func TestFig6(t *testing.T) {
	rows, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 configurations", len(rows))
	}
	for _, r := range rows {
		if r.IntPRFReads > 105 {
			t.Errorf("%s: PRF reads %.1f%% — VP flavors must reduce PRF read traffic", r.Config, r.IntPRFReads)
		}
	}
	// SpSR reduces IQ dispatch relative to its plain-VP sibling.
	if rows[1].IQAdded >= rows[0].IQAdded {
		t.Errorf("MVP+SpSR IQAdded %.2f not below MVP %.2f", rows[1].IQAdded, rows[0].IQAdded)
	}
	if rows[3].IQAdded >= rows[2].IQAdded {
		t.Errorf("TVP+SpSR IQAdded %.2f not below TVP %.2f", rows[3].IQAdded, rows[2].IQAdded)
	}
	var buf bytes.Buffer
	WriteFig6(&buf, rows)
	if !strings.Contains(buf.String(), "INTPRFWrites") {
		t.Error("rendering")
	}
}

func TestTable1AllRowsReduce(t *testing.T) {
	cases := Table1()
	if len(cases) < 25 {
		t.Fatalf("Table 1 demonstrates only %d idioms", len(cases))
	}
	for _, c := range cases {
		if c.Reduction == "none" || c.Reduction == "" {
			t.Errorf("%s [%s] did not reduce", c.Instruction, c.Operand)
		}
	}
}

func TestStorageModel(t *testing.T) {
	m := config.Default()
	for _, tc := range []struct {
		mode config.VPMode
		want float64
	}{
		{config.GVP, 55.2}, {config.TVP, 13.9}, {config.MVP, 7.9},
	} {
		got := StorageKB(m, tc.mode)
		if got < tc.want-0.2 || got > tc.want+0.2 {
			t.Errorf("%v storage %.2f KB, want ≈ %.1f", tc.mode, got, tc.want)
		}
	}
}

func TestAblationSilencing(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"600_perlbench_s_1"}
	rows, err := AblationSilencing(c, []int{15, 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	var buf bytes.Buffer
	WriteSilencing(&buf, rows)
	if !strings.Contains(buf.String(), "250") {
		t.Error("rendering")
	}
}

func TestAblationPrefetch(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"654_roms_s"}
	rows, err := AblationPrefetch(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("rows")
	}
	var buf bytes.Buffer
	WritePrefetch(&buf, rows)
	if !strings.Contains(buf.String(), "roms") {
		t.Error("rendering")
	}
}

// TestCacheEquivalence is the memoization soundness check: a cached sweep
// must produce bit-identical results to one that re-simulates every
// point. Fig3 is used because it shares baseline runs across workloads
// and flavors, so hits actually occur.
func TestCacheEquivalence(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"600_perlbench_s_1", "623_xalancbmk_s"}

	ResetRunCache()
	rows1, sum1, err := Fig3(c)
	if err != nil {
		t.Fatal(err)
	}
	// Second pass is served from cache (same process-wide cache).
	h0, _ := RunCacheCounters()
	rows2, sum2, err := Fig3(c)
	if err != nil {
		t.Fatal(err)
	}
	if h1, _ := RunCacheCounters(); h1 <= h0 {
		t.Fatalf("second Fig3 pass produced no cache hits (%d -> %d)", h0, h1)
	}

	uncached := c
	uncached.NoCache = true
	rows3, sum3, err := Fig3(uncached)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rows1 {
		if rows1[i] != rows2[i] || rows1[i] != rows3[i] {
			t.Errorf("row %d differs across cached/recached/uncached:\n%+v\n%+v\n%+v",
				i, rows1[i], rows2[i], rows3[i])
		}
	}
	if sum1 != sum2 || sum1 != sum3 {
		t.Errorf("summaries differ: %+v / %+v / %+v", sum1, sum2, sum3)
	}
}

// TestFastWarmup checks the checkpoint-resumed warmup path end to end: it
// must run every workload without error and report plausible IPCs. (Its
// numbers legitimately differ from the timed-warmup discipline, so no
// equality is asserted — see Config.FastWarmup.)
func TestFastWarmup(t *testing.T) {
	c := tiny()
	c.FastWarmup = true
	rows, _, err := Fig3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaseIPC <= 0 || r.BaseIPC > 8 {
			t.Errorf("%s fast-warmup IPC %.3f implausible", r.Workload, r.BaseIPC)
		}
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"600_perlbench_s_1", "no_such_workload"}
	_, _, _, err := Fig2(c)
	if err == nil {
		t.Fatal("Fig2 accepted an unknown workload")
	}
	if !strings.Contains(err.Error(), "no_such_workload") {
		t.Errorf("error does not name the failing workload: %v", err)
	}
	if _, err := Fig1(c, 5); err == nil {
		t.Fatal("Fig1 swallowed the unknown-workload error")
	}
}

func TestTable3Smoke(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"623_xalancbmk_s"}
	rows, err := Table3(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatal("rows")
	}
	for _, r := range rows {
		if !(r.StorageKB[0] < r.StorageKB[1] && r.StorageKB[1] < r.StorageKB[2]) {
			t.Errorf("storage ordering wrong at scale %s: %v", r.Label, r.StorageKB)
		}
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("rendering")
	}
}

// TestSweepParallelismInvariance: the sweep worker pool (Config.Workers,
// tvpreport -j) must not change results — rendered output is byte-equal
// between a serial sweep (-j 1) and a wide pool, with the memoization
// cache bypassed so every point actually simulates on the pool.
func TestSweepParallelismInvariance(t *testing.T) {
	render := func(workers int) string {
		c := tiny()
		c.Insts = 30000
		c.NoCache = true
		c.Workers = workers
		var buf bytes.Buffer
		rows, sum, err := Fig3(c)
		if err != nil {
			t.Fatal(err)
		}
		WriteFig3(&buf, rows, sum)
		rows5, geo, err := Fig5(c)
		if err != nil {
			t.Fatal(err)
		}
		WriteFig5(&buf, rows5, geo)
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("sweep output differs between -j 1 and -j 8:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestWorkersDefault: Workers<=0 falls back to NumCPU and explicit
// bounds are honored (exposed to callers via EffectiveWorkers).
func TestWorkersDefault(t *testing.T) {
	if got := (Config{}).workers(); got != runtime.NumCPU() {
		t.Errorf("workers() = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := (Config{Workers: -1}).EffectiveWorkers(); got != runtime.NumCPU() {
		t.Errorf("EffectiveWorkers(-1) = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := (Config{Workers: 3}).EffectiveWorkers(); got != 3 {
		t.Errorf("EffectiveWorkers() = %d, want 3", got)
	}
}

// TestPaperAggregateFilter: promoted 9xx members print as rows but stay
// out of the paper-figure aggregates, and a promoted-only list falls
// back to aggregating everything rather than averaging zero points.
func TestPaperAggregateFilter(t *testing.T) {
	mixed := []string{"600_perlbench_s_1", "901_fuzz_dispatch_s", "654_roms_s"}
	if got := paperSubset(mixed); len(got) != 2 || got[0] != "600_perlbench_s_1" || got[1] != "654_roms_s" {
		t.Fatalf("paperSubset(%v) = %v", mixed, got)
	}
	only9 := []string{"901_fuzz_dispatch_s"}
	if got := paperSubset(only9); len(got) != 1 || got[0] != "901_fuzz_dispatch_s" {
		t.Fatalf("paperSubset must back off on a promoted-only list, got %v", got)
	}

	// Fig. 2 over the mixed list must report the same means as over the
	// paper members alone, while still carrying the promoted row.
	c := Quick()
	c.Workloads = []string{"600_perlbench_s_1", "654_roms_s"}
	_, mu, hi, err := Fig2(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Workloads = mixed
	rows, mu2, hi2, err := Fig2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1].Workload != "901_fuzz_dispatch_s" {
		t.Fatalf("promoted member missing from rows: %+v", rows)
	}
	if mu2 != mu || hi2 != hi {
		t.Errorf("aggregates moved when a promoted member joined the list: uops %.6f vs %.6f, IPC %.6f vs %.6f", mu2, mu, hi2, hi)
	}
}
