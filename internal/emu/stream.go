package emu

import "fmt"

// Stream adapts an Emulator into a rewindable dynamic instruction stream
// for the timing model. The timing model's fetch stage pulls records with
// Next; a pipeline flush rewinds the cursor to the squashed instruction's
// sequence number so it is delivered again (re-fetched), which is exactly
// the semantics §3.4 of the paper requires for MVP/TVP value
// mispredictions (the mispredicted instruction itself must be refetched
// and renamed again).
//
// Generated records are retained in a ring buffer; a rewind must not go
// further back than the ring capacity, which the pipeline guarantees
// because it never rewinds past the oldest non-committed instruction and
// the ring is sized well above the instruction window.
type Stream struct {
	emu    *Emulator
	ring   []DynInst
	mask   uint64 // len(ring)-1; capacity is forced to a power of two
	head   uint64 // sequence number of the next record to generate
	cursor uint64 // sequence number of the next record to deliver
	done   bool   // emulator has halted; head is the final count
}

// DefaultStreamCapacity comfortably exceeds the maximum number of
// instructions that can be in flight (ROB + fetch/decode buffers).
const DefaultStreamCapacity = 4096

// NewStream returns a stream over the emulator with the given ring
// capacity (DefaultStreamCapacity if cap <= 0). The stream numbering
// starts at the emulator's current position, so a stream over an emulator
// restored from a warmup checkpoint delivers records whose sequence
// numbers continue the pre-checkpoint count — Cursor, Rewind and the
// records' Seq fields all agree.
func NewStream(e *Emulator, capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	// Round up to a power of two so ring indexing is a mask, not a
	// division — Peek runs once per fetched µop.
	for capacity&(capacity-1) != 0 {
		capacity += capacity & -capacity
	}
	start := e.Executed()
	return &Stream{emu: e, ring: make([]DynInst, capacity), mask: uint64(capacity - 1), head: start, cursor: start}
}

// Cursor returns the sequence number of the next record Next will deliver.
func (s *Stream) Cursor() uint64 { return s.cursor }

// Next returns the record at the cursor and advances it, or nil when the
// program has ended. The returned pointer is valid until the record falls
// out of the ring (i.e. at least ring-capacity deliveries).
func (s *Stream) Next() *DynInst {
	d := s.Peek()
	if d != nil {
		s.cursor++
	}
	return d
}

// Peek returns the record at the cursor without advancing, or nil at end
// of program.
func (s *Stream) Peek() *DynInst {
	for s.cursor >= s.head {
		if s.done {
			return nil
		}
		slot := &s.ring[s.head&s.mask]
		if !s.emu.Step(slot) {
			s.done = true
			return nil
		}
		s.head++
	}
	return &s.ring[s.cursor&s.mask]
}

// Rewind moves the cursor back to seq, so the instruction with that
// sequence number is the next one delivered. It panics if seq has fallen
// out of the ring or lies in the future.
func (s *Stream) Rewind(seq uint64) {
	if seq > s.cursor {
		panic(fmt.Sprintf("emu: rewind forward (seq %d > cursor %d)", seq, s.cursor))
	}
	if s.head > uint64(len(s.ring)) && seq < s.head-uint64(len(s.ring)) {
		panic(fmt.Sprintf("emu: rewind past ring capacity (seq %d, oldest %d)", seq, s.head-uint64(len(s.ring))))
	}
	s.cursor = seq
}

// Done reports whether the underlying program has halted and all records
// have been generated.
func (s *Stream) Done() bool { return s.done && s.cursor >= s.head }
