// Quickstart: simulate one workload on the paper's Table 2 machine with
// Targeted Value Prediction and Speculative Strength Reduction enabled,
// and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tvp "repro"
)

func main() {
	base, err := tvp.Run(tvp.Options{
		Workload: "602_gcc_s_2",
		Warmup:   20_000,
		MaxInsts: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tvp.Run(tvp.Options{
		Workload: "602_gcc_s_2",
		VP:       tvp.TVP, // 9-bit targeted value prediction (§3.2)
		SpSR:     true,    // speculative strength reduction (§4)
		Warmup:   20_000,
		MaxInsts: 150_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	st := &res.Stats
	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("baseline IPC        %.3f\n", base.Stats.IPC())
	fmt.Printf("TVP+SpSR IPC        %.3f  (%+.2f%%)\n",
		st.IPC(), (st.IPC()/base.Stats.IPC()-1)*100)
	fmt.Printf("VP coverage         %.1f%% of eligible instructions\n", 100*st.VPCoverage())
	fmt.Printf("VP accuracy         %.2f%% of used predictions\n", 100*st.VPAccuracy())
	fmt.Printf("eliminated @ rename %.2f%% (moves %.2f%%, 0-idiom %.2f%%, 9-bit %.2f%%, SpSR %.2f%%)\n",
		100*st.ElimFraction(st.MoveElim+st.ZeroIdiomElim+st.OneIdiomElim+st.NineBitElim+st.SpSRElim),
		100*st.ElimFraction(st.MoveElim), 100*st.ElimFraction(st.ZeroIdiomElim),
		100*st.ElimFraction(st.NineBitElim), 100*st.ElimFraction(st.SpSRElim))
	fmt.Printf("value mispredicts   %d (each flushed and re-fetched the predicted instruction, §3.4)\n",
		st.VPIncorrectUsed)
}
