// Package free is allowlisted as a whole (the xrand role): math/rand is
// fine here, no findings.
package free

import "math/rand"

// Roll may use math/rand: this package wraps randomness for the rest of
// the tree.
func Roll() int { return rand.Intn(6) }
