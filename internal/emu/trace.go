package emu

import "repro/internal/prog"

// Trace is a pre-recorded span of the functional dynamic instruction
// stream: the correct-path records an emulator produced from some
// starting position, plus the program they came from. The functional
// stream is configuration-invariant — it depends only on the program and
// the starting architectural state — so one recording can feed any number
// of timing configurations (report.runAll batches a sweep's points per
// workload on exactly this seam). Records are immutable after recording;
// every consumer replays them through its own NewTraceStream cursor.
type Trace struct {
	// Prog is the program the trace was recorded from; trace-fed cores
	// take their static text (cracking, PCs) from it.
	Prog *prog.Program

	start  uint64 // sequence number of recs[0] (emulator position at recording)
	recs   []DynInst
	halted bool // the recording reached HALT (recs ends with the HALT record)
}

// RecordTrace runs the emulator forward up to n instructions (or to HALT)
// and returns the recording. The emulator is consumed: it ends positioned
// after the last recorded instruction. Sequence numbering continues from
// the emulator's position, so a trace over an emulator restored from a
// warmup checkpoint composes with Rewind/At exactly like a live stream.
func RecordTrace(e *Emulator, n uint64) *Trace {
	t := &Trace{Prog: e.Prog, start: e.Executed()}
	recs := make([]DynInst, n)
	var m uint64
	for m < n {
		if !e.Step(&recs[m]) {
			break
		}
		m++
	}
	// Halted covers both exits: Step returned false, or the n-th record
	// was HALT itself (Step reports the halt on the following call).
	t.halted = e.Halted()
	t.recs = recs[:m]
	return t
}

// Start returns the sequence number of the first recorded instruction.
func (t *Trace) Start() uint64 { return t.start }

// Len returns the number of recorded instructions.
func (t *Trace) Len() int { return len(t.recs) }

// Halted reports whether the recording reached HALT (its final record is
// the HALT instruction). A non-halted trace panics in Stream.Peek if a
// consumer runs off its end.
func (t *Trace) Halted() bool { return t.halted }
