// Package report regenerates every table and figure of the paper's
// evaluation (the experiment index of DESIGN.md): the dynamic value
// distribution (Fig. 1), µop expansion and baseline IPC (Fig. 2), the
// MVP/TVP/GVP speedups with coverage and accuracy (Fig. 3), the predictor
// budget sensitivity study (Table 3), the rename-elimination breakdown
// with SpSR (Fig. 4a/4b), the SpSR speedups (Fig. 5), the PRF/IQ activity
// proxies (Fig. 6), the SpSR idiom table (Table 1), the machine
// configuration (Table 2), the predictor storage model (§3.3), and the
// silencing and prefetcher ablations (§3.4.1, §6.2).
//
// Each experiment has a data-collection function returning plain structs
// (so tests can assert on shapes) and a Write* function rendering the
// paper-style rows.
package report

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// Warmup instructions before measurement (per run).
	Warmup uint64
	// Insts measured per run.
	Insts uint64
	// Workloads restricts the suite (nil = all 28 points).
	Workloads []string
	// Base overrides the machine configuration (nil = Table 2).
	Base *config.Machine
	// NoCache bypasses the process-wide run memoization, forcing every
	// simulation to execute. Results are bit-identical either way (the
	// simulator is deterministic); this exists for benchmarking the
	// uncached path and for the cache-equivalence tests.
	NoCache bool
	// FastWarmup replaces the timed warmup with a functional fast-forward
	// resumed from a shared per-workload architectural checkpoint
	// (workload.Checkpoint): the N timing configurations over one
	// workload warm up once instead of N times. Measurement then starts
	// with cold microarchitectural state (caches, predictors), so
	// absolute numbers differ slightly from the paper's timed-warmup
	// discipline — use it for quick sweeps, not for EXPERIMENTS.md.
	FastWarmup bool
	// Workers bounds the number of concurrently executing simulations in
	// a sweep (tvpreport -j). <= 0 means runtime.NumCPU() — the sweeps are
	// CPU-bound, so the machine's core count is the right default even
	// when GOMAXPROCS has been lowered. The worker count only
	// changes wall time, never results: every sweep writes its stats into
	// a per-spec slot and renders in spec order, so output is
	// byte-identical from -j 1 to full parallelism
	// (TestSweepParallelismInvariance).
	Workers int
	// Heartbeat, when non-nil, receives live sweep progress (runs
	// done/planned, cache recalls, realized MIPS). Observation only; it
	// never changes results.
	Heartbeat *obs.Heartbeat
	// Obs, when non-nil, collects one machine-readable obs.RunRecord per
	// unique simulation point touched by the sweep. Observation only.
	Obs *obs.SweepLog
}

// Default returns the configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{Warmup: 50_000, Insts: 250_000}
}

// Quick returns a fast configuration for tests.
func Quick() Config {
	return Config{Warmup: 10_000, Insts: 60_000}
}

func (c Config) names() []string {
	if c.Workloads != nil {
		return c.Workloads
	}
	return workload.Names()
}

// paperNames returns the names whose results feed suite-level
// aggregates: promoted fuzzgen members (9xx) are excluded so the
// headline means and geomeans stay over the paper's 28 points.
// Aggregate-only figures (Fig. 1, Table 3, Fig. 6, the ablations)
// sweep this subset directly; row-producing figures keep every member
// as a row and filter at accumulation time via aggregates. If the
// configured list holds no paper member at all (an explicit
// -w 901_... run), the filter backs off and every name aggregates.
func (c Config) paperNames() []string { return paperSubset(c.names()) }

func paperSubset(names []string) []string {
	kept := make([]string, 0, len(names))
	for _, n := range names {
		if workload.PaperMember(n) {
			kept = append(kept, n)
		}
	}
	if len(kept) == 0 {
		return names
	}
	return kept
}

// aggregates returns the membership test row-producing figures apply
// when folding per-workload rows into the suite aggregate (see
// paperSubset), plus the size of that aggregate set for mean divisors.
func aggregates(names []string) (func(string) bool, int) {
	sub := paperSubset(names)
	in := make(map[string]bool, len(sub))
	for _, n := range sub {
		in[n] = true
	}
	return func(n string) bool { return in[n] }, len(sub)
}

func (c Config) base() *config.Machine {
	if c.Base != nil {
		return c.Base
	}
	return config.Default()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// EffectiveWorkers reports the sweep pool width Config will actually use
// (Workers, or runtime.NumCPU() when Workers <= 0) — for progress lines
// and -j help text.
func (c Config) EffectiveWorkers() int { return c.workers() }

// runSpec names one timing run.
type runSpec struct {
	workload string
	cfg      *config.Machine
}

// runCache memoizes timing runs process-wide, keyed by (workload, machine
// fingerprint, run length). The paper's figures re-simulate the same
// points over and over — every figure re-runs the baseline, Fig. 5
// re-runs Fig. 3's MVP/TVP points, Table 3's 1× row is Fig. 3 again — so
// across a full E1–E14 sweep most runs are cache hits, and singleflight
// deduplication lets concurrent experiments share an in-flight execution.
var runCache = simcache.New[simcache.RunKey, stats.Sim]()

// RunCacheCounters exposes the run cache's cumulative hits and misses
// (for diagnostics and the cmd/tvpreport summary line).
func RunCacheCounters() (hits, misses uint64) { return runCache.Counters() }

// ResetRunCache clears the process-wide run memoization (tests).
func ResetRunCache() { runCache.Reset() }

// traceShare carries one workload group's lazily recorded functional
// instruction trace across the group's sequential runs: the functional
// stream depends only on the program and starting state — never on the
// machine configuration — so the N configurations a sweep schedules over
// one workload replay a single recording instead of re-running the
// emulator N times (the config-batched sweep seam). Access is sequential
// within a group goroutine, so no locking is needed; the recording
// happens lazily, on the first cache miss that actually simulates.
type traceShare struct {
	tr   *emu.Trace
	err  error
	done bool
}

// traceSlack is the extra record headroom beyond the committed
// instruction budget: fetch runs ahead of commit by at most the in-flight
// window (fetch/decode queues + ROB), far below the stream ring capacity,
// so recording one ring's worth past the budget guarantees the replay
// never runs off the end of a non-halted trace.
const traceSlack = emu.DefaultStreamCapacity + 64

// sharedTrace returns the group's recording, making it on first use.
func (c Config) sharedTrace(w string, sh *traceShare) (*emu.Trace, error) {
	if sh.done {
		return sh.tr, sh.err
	}
	sh.done = true
	if c.FastWarmup {
		snap, err := workload.Checkpoint(w, c.Warmup)
		if err != nil {
			sh.err = err
			return nil, err
		}
		sh.tr = emu.RecordTrace(snap.Restore(), c.Insts+traceSlack)
		return sh.tr, nil
	}
	p, err := workload.Program(w)
	if err != nil {
		sh.err = err
		return nil, err
	}
	sh.tr = emu.RecordTrace(emu.New(p), c.Warmup+c.Insts+traceSlack)
	return sh.tr, nil
}

// simulate executes one timing run, uncached. With a trace share (the
// batched sweep path) the core replays the group's shared functional
// recording — bit-identical results to a live-emulator run
// (TestBatchedSweepMatchesSerial), one functional execution per workload
// instead of one per configuration. CrossCheck runs keep the live
// emulator (the shadow oracle requires it).
func (c Config) simulate(s runSpec, share *traceShare) (stats.Sim, error) {
	if share != nil && !s.cfg.CrossCheck {
		tr, err := c.sharedTrace(s.workload, share)
		if err != nil {
			return stats.Sim{}, err
		}
		warm := c.Warmup
		if c.FastWarmup {
			warm = 0
		}
		return pipeline.NewFromTrace(s.cfg, tr).Run(warm, c.Insts).Stats, nil
	}
	if c.FastWarmup {
		snap, err := workload.Checkpoint(s.workload, c.Warmup)
		if err != nil {
			return stats.Sim{}, err
		}
		return pipeline.NewFromEmulator(s.cfg, snap.Restore()).Run(0, c.Insts).Stats, nil
	}
	p, err := workload.Program(s.workload)
	if err != nil {
		return stats.Sim{}, err
	}
	return pipeline.New(s.cfg, p).Run(c.Warmup, c.Insts).Stats, nil
}

// runOne executes (or recalls) one timing run through the memoization
// layer, reporting to the optional telemetry sinks.
func (c Config) runOne(s runSpec, share *traceShare) (stats.Sim, error) {
	observed := c.Heartbeat != nil || c.Obs != nil
	var st stats.Sim
	var err error
	cached := false
	if c.NoCache {
		st, err = c.simulate(s, share)
	} else {
		key := simcache.RunKey{
			Workload:   s.workload,
			ConfigFP:   s.cfg.Fingerprint(),
			Warmup:     c.Warmup,
			Insts:      c.Insts,
			FastWarmup: c.FastWarmup,
		}
		if observed {
			// Peek so the sinks can distinguish recalls from fresh
			// simulations; Do below still owns the singleflight semantics.
			_, cached = runCache.Get(key)
		}
		st, err = runCache.Do(key, func() (stats.Sim, error) { return c.simulate(s, share) })
	}
	if !observed || err != nil {
		return st, err
	}
	var simulated uint64
	if !cached {
		simulated = c.Insts
		if !c.FastWarmup {
			simulated += c.Warmup
		}
	}
	if c.Heartbeat != nil {
		c.Heartbeat.RunDone(simulated, cached)
	}
	if c.Obs != nil {
		c.Obs.Add(obs.RunMeta{
			Workload:   s.workload,
			Cfg:        s.cfg,
			Warmup:     c.Warmup,
			Insts:      c.Insts,
			FastWarmup: c.FastWarmup,
			Cached:     cached,
		}, st)
	}
	return st, err
}

// runAll executes the specs on a sweep worker Pool (Config.Workers
// wide) and returns stats in spec order — slot-indexed writes keep the
// output independent of completion order and byte-identical to the
// serial path. Specs are grouped by workload (order-preserving): each
// group runs sequentially on one worker slot over a shared functional
// trace recorded at most once (lazily, on the first cache miss), so a
// sweep of N configurations over one workload pays for one emulator run
// instead of N. Holding the slot for the whole group bounds live trace
// memory to one recording per worker. Failures are collected (not
// panicked) and reported together, each wrapped with its workload name.
func (c Config) runAll(specs []runSpec) ([]stats.Sim, error) {
	if c.Heartbeat != nil {
		c.Heartbeat.AddPlanned(len(specs))
	}
	out := make([]stats.Sim, len(specs))
	errs := make([]error, len(specs))
	var order []string
	groups := make(map[string][]int)
	for i, s := range specs {
		if _, ok := groups[s.workload]; !ok {
			order = append(order, s.workload)
		}
		groups[s.workload] = append(groups[s.workload], i)
	}
	pool := NewPool(c.workers(), 0)
	defer pool.Close()
	var wg sync.WaitGroup
	for _, w := range order {
		idxs := groups[w]
		wg.Add(1)
		err := pool.Submit(context.Background(), func() {
			defer wg.Done()
			var share traceShare
			for _, i := range idxs {
				st, err := c.runOne(specs[i], &share)
				if err != nil {
					errs[i] = fmt.Errorf("workload %s: %w", specs[i].workload, err)
					continue
				}
				out[i] = st
			}
		})
		if err != nil { // unreachable with a private pool; belt and braces
			wg.Done()
			for _, i := range idxs {
				errs[i] = err
			}
		}
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// ---- Fig. 1: dynamic value distribution ----

// ValueCount is one bar of Fig. 1.
type ValueCount struct {
	Value uint64
	// Percent of dynamic GPR-writing instructions producing Value.
	Percent float64
}

// valueHist is one workload's dynamic GPR-result value histogram. Once
// cached it is immutable (aggregation only reads the counts).
type valueHist struct {
	counts map[uint64]uint64
	total  uint64
}

type histKey struct {
	workload string
	insts    uint64
}

// histCache memoizes the functional value histograms: Fig. 1 depends only
// on (workload, instruction budget), so repeated report generations reuse
// the functional runs.
var histCache = simcache.New[histKey, valueHist]()

// valueHistogram functionally executes the named workload for up to insts
// instructions, counting produced GPR values.
func valueHistogram(name string, insts uint64) (valueHist, error) {
	return histCache.Do(histKey{name, insts}, func() (valueHist, error) {
		p, err := workload.Program(name)
		if err != nil {
			return valueHist{}, err
		}
		e := emu.New(p)
		h := valueHist{counts: make(map[uint64]uint64)}
		var d emu.DynInst
		for j := uint64(0); j < insts; j++ {
			if !e.Step(&d) {
				break
			}
			if d.WritesGPRResult() {
				h.counts[d.Result]++
				h.total++
			}
		}
		return h, nil
	})
}

// Fig1 runs the whole suite functionally (no timing) and returns the topN
// most frequently produced GPR values, mirroring Fig. 1's distribution.
func Fig1(c Config, topN int) ([]ValueCount, error) {
	names := c.paperNames()
	hs := make([]valueHist, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, c.workers())
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h, err := valueHistogram(n, c.Insts)
			if err != nil {
				errs[i] = fmt.Errorf("workload %s: %w", n, err)
				return
			}
			hs[i] = h
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	// Average the per-benchmark percentages (Fig. 1 is a mean over the
	// suite, so huge benchmarks don't drown the rest).
	agg := map[uint64]float64{}
	for _, h := range hs {
		if h.total == 0 {
			continue
		}
		for v, k := range h.counts {
			agg[v] += 100 * float64(k) / float64(h.total) / float64(len(hs))
		}
	}
	out := make([]ValueCount, 0, len(agg))
	for v, p := range agg {
		out = append(out, ValueCount{Value: v, Percent: p})
	}
	// Descending by frequency, value as the tie-break so the ordering is
	// deterministic across map-iteration orders.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Percent != out[j].Percent {
			return out[i].Percent > out[j].Percent
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out, nil
}

// ---- Fig. 2: µops per instruction and baseline IPC ----

// Fig2Row is one benchmark of Fig. 2.
type Fig2Row struct {
	Workload    string
	UopsPerInst float64
	IPC         float64
}

// Fig2 runs the baseline machine on every workload.
func Fig2(c Config) ([]Fig2Row, float64, float64, error) {
	names := c.names()
	specs := make([]runSpec, len(names))
	for i, n := range names {
		specs[i] = runSpec{workload: n, cfg: c.base()}
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, 0, 0, err
	}
	agg, nAgg := aggregates(names)
	rows := make([]Fig2Row, len(names))
	uops := make([]float64, 0, nAgg)
	ipcs := make([]float64, 0, nAgg)
	for i, st := range sts {
		rows[i] = Fig2Row{Workload: names[i], UopsPerInst: st.UopsPerInst(), IPC: st.IPC()}
		if agg(names[i]) {
			uops = append(uops, st.UopsPerInst())
			ipcs = append(ipcs, st.IPC())
		}
	}
	return rows, stats.AMean(uops), stats.HMean(ipcs), nil
}

// ---- Fig. 3: VP speedups ----

// Fig3Row is one benchmark of Fig. 3, with the three VP flavors' speedup
// over baseline plus the coverage/accuracy columns of §6.1.
type Fig3Row struct {
	Workload string
	BaseIPC  float64
	// Indexed MVP, TVP, GVP.
	Speedup  [3]float64
	Coverage [3]float64
	Accuracy [3]float64
}

// Fig3Summary aggregates Fig. 3 the way the paper reports it.
type Fig3Summary struct {
	GeomeanSpeedup [3]float64
	MeanCoverage   [3]float64
}

// Fig3 runs baseline + MVP + TVP + GVP on every workload.
func Fig3(c Config) ([]Fig3Row, Fig3Summary, error) {
	names := c.names()
	modes := []config.VPMode{config.VPOff, config.MVP, config.TVP, config.GVP}
	specs := make([]runSpec, 0, len(names)*len(modes))
	for _, n := range names {
		for _, m := range modes {
			specs = append(specs, runSpec{workload: n, cfg: c.base().WithVP(m)})
		}
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, Fig3Summary{}, err
	}
	agg, nAgg := aggregates(names)
	rows := make([]Fig3Row, len(names))
	var sum Fig3Summary
	var speedups [3][]float64
	for i, n := range names {
		base := sts[i*4].IPC()
		row := Fig3Row{Workload: n, BaseIPC: base}
		for m := 0; m < 3; m++ {
			st := sts[i*4+1+m]
			row.Speedup[m] = (st.IPC()/base - 1) * 100
			row.Coverage[m] = 100 * st.VPCoverage()
			row.Accuracy[m] = 100 * st.VPAccuracy()
			if agg(n) {
				speedups[m] = append(speedups[m], row.Speedup[m])
				sum.MeanCoverage[m] += row.Coverage[m] / float64(nAgg)
			}
		}
		rows[i] = row
	}
	for m := 0; m < 3; m++ {
		sum.GeomeanSpeedup[m] = stats.GeomeanSpeedup(speedups[m])
	}
	return rows, sum, nil
}

// ---- Table 3: predictor budget sensitivity ----

// Table3Row is one storage budget point.
type Table3Row struct {
	Label string
	// Log2Delta applied to every table size relative to Table 2 geometry.
	Log2Delta int
	// StorageKB per flavor at this scale (MVP, TVP, GVP).
	StorageKB [3]float64
	// GeomeanSpeedup per flavor.
	Geomean [3]float64
}

// Table3 sweeps predictor budgets: 0.5×MVP, MVP (≈8KB geometry), TVP
// scale and GVP scale — following the paper's "same number of
// tables/history bits, only table size is modified".
func Table3(c Config) ([]Table3Row, error) {
	// The paper's four budget rows map to table-size scale factors
	// relative to the Table 2 geometry: ≈4KB, ≈8KB(MVP), ≈14KB(TVP),
	// ≈55KB(GVP). In our storage model the Table 2 geometry gives the
	// three flavors those footprints directly, so the sweep halves or
	// keeps the geometry and reports every flavor at every scale.
	deltas := []struct {
		label string
		d     int
	}{
		{"0.5x", -1}, {"1x (Table 2)", 0}, {"2x", 1}, {"4x", 2},
	}
	names := c.paperNames()
	modes := []config.VPMode{config.MVP, config.TVP, config.GVP}
	rows := make([]Table3Row, len(deltas))

	// Baselines once.
	baseSpecs := make([]runSpec, len(names))
	for i, n := range names {
		baseSpecs[i] = runSpec{workload: n, cfg: c.base()}
	}
	baseSts, err := c.runAll(baseSpecs)
	if err != nil {
		return nil, err
	}

	for di, dl := range deltas {
		row := Table3Row{Label: dl.label, Log2Delta: dl.d}
		specs := make([]runSpec, 0, len(names)*3)
		for _, n := range names {
			for _, m := range modes {
				specs = append(specs, runSpec{workload: n, cfg: c.base().WithVPBudgetScale(dl.d).WithVP(m)})
			}
		}
		sts, err := c.runAll(specs)
		if err != nil {
			return nil, err
		}
		for mi, m := range modes {
			var pcts []float64
			for ni := range names {
				base := baseSts[ni].IPC()
				st := sts[ni*3+mi]
				pcts = append(pcts, (st.IPC()/base-1)*100)
			}
			row.Geomean[mi] = stats.GeomeanSpeedup(pcts)
			row.StorageKB[mi] = StorageKB(c.base().WithVPBudgetScale(dl.d), m)
		}
		rows[di] = row
	}
	return rows, nil
}

// ---- Fig. 4: rename-elimination breakdown ----

// Fig4Row is one benchmark of Fig. 4 (percent of dynamic architectural
// instructions optimized away at rename, by category).
type Fig4Row struct {
	Workload  string
	ZeroIdiom float64
	OneIdiom  float64
	Move      float64
	NineBit   float64
	SpSR      float64
	NonMEMove float64
}

// Fig4 runs MVP+SpSR (variant "a") or TVP+SpSR (variant "b") on every
// workload and reports the elimination breakdown.
func Fig4(c Config, mode config.VPMode) ([]Fig4Row, Fig4Row, error) {
	names := c.names()
	specs := make([]runSpec, len(names))
	for i, n := range names {
		specs[i] = runSpec{workload: n, cfg: c.base().WithVP(mode).WithSpSR(true)}
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, Fig4Row{}, err
	}
	agg, nAgg := aggregates(names)
	rows := make([]Fig4Row, len(names))
	var mean Fig4Row
	mean.Workload = "amean"
	for i, st := range sts {
		r := Fig4Row{
			Workload:  names[i],
			ZeroIdiom: 100 * st.ElimFraction(st.ZeroIdiomElim),
			OneIdiom:  100 * st.ElimFraction(st.OneIdiomElim),
			Move:      100 * st.ElimFraction(st.MoveElim),
			NineBit:   100 * st.ElimFraction(st.NineBitElim),
			SpSR:      100 * st.ElimFraction(st.SpSRElim),
			NonMEMove: 100 * st.ElimFraction(st.MoveNotElim),
		}
		rows[i] = r
		if !agg(names[i]) {
			continue
		}
		n := float64(nAgg)
		mean.ZeroIdiom += r.ZeroIdiom / n
		mean.OneIdiom += r.OneIdiom / n
		mean.Move += r.Move / n
		mean.NineBit += r.NineBit / n
		mean.SpSR += r.SpSR / n
		mean.NonMEMove += r.NonMEMove / n
	}
	return rows, mean, nil
}

// ---- Fig. 5: SpSR speedups ----

// Fig5Row is one benchmark of Fig. 5.
type Fig5Row struct {
	Workload string
	// MVP, MVP+SpSR, TVP, TVP+SpSR speedups over baseline.
	Speedup [4]float64
}

// Fig5 runs the four configurations of Fig. 5 plus the baseline.
func Fig5(c Config) ([]Fig5Row, [4]float64, error) {
	names := c.names()
	cfgs := []*config.Machine{
		c.base().WithVP(config.MVP),
		c.base().WithVP(config.MVP).WithSpSR(true),
		c.base().WithVP(config.TVP),
		c.base().WithVP(config.TVP).WithSpSR(true),
	}
	specs := make([]runSpec, 0, len(names)*5)
	for _, n := range names {
		specs = append(specs, runSpec{workload: n, cfg: c.base()})
		for _, cf := range cfgs {
			specs = append(specs, runSpec{workload: n, cfg: cf})
		}
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, [4]float64{}, err
	}
	agg, _ := aggregates(names)
	rows := make([]Fig5Row, len(names))
	var pcts [4][]float64
	for i, n := range names {
		base := sts[i*5].IPC()
		row := Fig5Row{Workload: n}
		for k := 0; k < 4; k++ {
			row.Speedup[k] = (sts[i*5+1+k].IPC()/base - 1) * 100
			if agg(n) {
				pcts[k] = append(pcts[k], row.Speedup[k])
			}
		}
		rows[i] = row
	}
	var geo [4]float64
	for k := 0; k < 4; k++ {
		geo[k] = stats.GeomeanSpeedup(pcts[k])
	}
	return rows, geo, nil
}

// ---- Fig. 6: activity proxies ----

// Fig6Row is one configuration's activity normalized to baseline (percent).
type Fig6Row struct {
	Config       string
	IntPRFReads  float64
	IntPRFWrites float64
	IQAdded      float64
	IQIssued     float64
}

// Fig6 reports mean INT PRF and IQ activity for the six configurations of
// Fig. 6 normalized to the baseline.
func Fig6(c Config) ([]Fig6Row, error) {
	names := c.paperNames()
	type cfgDef struct {
		label string
		cfg   *config.Machine
	}
	cfgs := []cfgDef{
		{"Min. VP", c.base().WithVP(config.MVP)},
		{"Min. VP + SpSR", c.base().WithVP(config.MVP).WithSpSR(true)},
		{"Tar. VP", c.base().WithVP(config.TVP)},
		{"Tar. VP + SpSR", c.base().WithVP(config.TVP).WithSpSR(true)},
		{"Gen. VP", c.base().WithVP(config.GVP)},
		{"Gen. VP + SpSR", c.base().WithVP(config.GVP).WithSpSR(true)},
	}
	specs := make([]runSpec, 0, len(names)*(len(cfgs)+1))
	for _, n := range names {
		specs = append(specs, runSpec{workload: n, cfg: c.base()})
		for _, cd := range cfgs {
			specs = append(specs, runSpec{workload: n, cfg: cd.cfg})
		}
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(cfgs))
	per := len(cfgs) + 1
	for k, cd := range cfgs {
		var rd, wr, add, iss float64
		for i := range names {
			base := sts[i*per]
			st := sts[i*per+1+k]
			rd += pct(st.IntPRFReads, base.IntPRFReads)
			wr += pct(st.IntPRFWrites, base.IntPRFWrites)
			add += pct(st.IQAdded, base.IQAdded)
			iss += pct(st.IQIssued, base.IQIssued)
		}
		n := float64(len(names))
		rows[k] = Fig6Row{Config: cd.label, IntPRFReads: rd / n, IntPRFWrites: wr / n, IQAdded: add / n, IQIssued: iss / n}
	}
	return rows, nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 100
	}
	return 100 * float64(a) / float64(b)
}

// ---- Ablations ----

// SilencingRow is one silencing-duration point (§3.4.1).
type SilencingRow struct {
	Cycles  int
	Geomean [3]float64 // MVP, TVP, GVP geomean speedups
}

// AblationSilencing sweeps the misprediction silencing window.
func AblationSilencing(c Config, windows []int) ([]SilencingRow, error) {
	names := c.paperNames()
	baseSpecs := make([]runSpec, len(names))
	for i, n := range names {
		baseSpecs[i] = runSpec{workload: n, cfg: c.base()}
	}
	baseSts, err := c.runAll(baseSpecs)
	if err != nil {
		return nil, err
	}
	modes := []config.VPMode{config.MVP, config.TVP, config.GVP}
	rows := make([]SilencingRow, len(windows))
	for wi, wnd := range windows {
		specs := make([]runSpec, 0, len(names)*3)
		for _, n := range names {
			for _, m := range modes {
				cf := c.base().WithVP(m)
				cf.VP.SilenceCycles = wnd
				specs = append(specs, runSpec{workload: n, cfg: cf})
			}
		}
		sts, err := c.runAll(specs)
		if err != nil {
			return nil, err
		}
		row := SilencingRow{Cycles: wnd}
		for mi := range modes {
			var pcts []float64
			for ni := range names {
				pcts = append(pcts, (sts[ni*3+mi].IPC()/baseSts[ni].IPC()-1)*100)
			}
			row.Geomean[mi] = stats.GeomeanSpeedup(pcts)
		}
		rows[wi] = row
	}
	return rows, nil
}

// AblationDynamicSilence compares the paper's fixed 250-cycle silencing
// with the adaptive scheme it suggests as future work (§3.4.1), per VP
// flavor.
func AblationDynamicSilence(c Config) (fixed, dynamic [3]float64, err error) {
	names := c.paperNames()
	baseSpecs := make([]runSpec, len(names))
	for i, n := range names {
		baseSpecs[i] = runSpec{workload: n, cfg: c.base()}
	}
	baseSts, err := c.runAll(baseSpecs)
	if err != nil {
		return fixed, dynamic, err
	}
	modes := []config.VPMode{config.MVP, config.TVP, config.GVP}
	for variant := 0; variant < 2; variant++ {
		specs := make([]runSpec, 0, len(names)*3)
		for _, n := range names {
			for _, m := range modes {
				cf := c.base().WithVP(m)
				cf.VP.DynamicSilence = variant == 1
				specs = append(specs, runSpec{workload: n, cfg: cf})
			}
		}
		sts, err := c.runAll(specs)
		if err != nil {
			return fixed, dynamic, err
		}
		for mi := range modes {
			var pcts []float64
			for ni := range names {
				pcts = append(pcts, (sts[ni*3+mi].IPC()/baseSts[ni].IPC()-1)*100)
			}
			if variant == 0 {
				fixed[mi] = stats.GeomeanSpeedup(pcts)
			} else {
				dynamic[mi] = stats.GeomeanSpeedup(pcts)
			}
		}
	}
	return fixed, dynamic, nil
}

// AblationValidation contrasts in-place validation at the functional
// units (§3.3) with EOLE-style validation at retirement (§2.2): geomean
// speedup and mean extra INT PRF reads (percent of baseline) per scheme,
// for the GVP flavor where the paper quantifies the cost ("an additional
// 22% PRF reads over baseline", §6.1).
func AblationValidation(c Config) (speedup [2]float64, prfReads [2]float64, err error) {
	names := c.paperNames()
	baseSpecs := make([]runSpec, len(names))
	for i, n := range names {
		baseSpecs[i] = runSpec{workload: n, cfg: c.base()}
	}
	baseSts, err := c.runAll(baseSpecs)
	if err != nil {
		return speedup, prfReads, err
	}
	for variant := 0; variant < 2; variant++ {
		specs := make([]runSpec, 0, len(names))
		for _, n := range names {
			cf := c.base().WithVP(config.GVP)
			cf.VP.ValidateAtRetire = variant == 1
			specs = append(specs, runSpec{workload: n, cfg: cf})
		}
		sts, err := c.runAll(specs)
		if err != nil {
			return speedup, prfReads, err
		}
		var pcts []float64
		var rd float64
		for ni := range names {
			pcts = append(pcts, (sts[ni].IPC()/baseSts[ni].IPC()-1)*100)
			rd += pct(sts[ni].IntPRFReads, baseSts[ni].IntPRFReads) / float64(len(names))
		}
		speedup[variant] = stats.GeomeanSpeedup(pcts)
		prfReads[variant] = rd
	}
	return speedup, prfReads, nil
}

// PrefetchRow compares TVP+SpSR speedups with and without the L1D stride
// prefetcher (§6.2's interaction study).
type PrefetchRow struct {
	Workload      string
	WithStride    float64
	WithoutStride float64
}

// AblationPrefetch runs the §6.2 stride-prefetcher interaction study.
func AblationPrefetch(c Config) ([]PrefetchRow, error) {
	names := c.names()
	noStride := c.base()
	noStride.StridePrefetch = false
	specs := make([]runSpec, 0, len(names)*4)
	for _, n := range names {
		specs = append(specs,
			runSpec{workload: n, cfg: c.base()},
			runSpec{workload: n, cfg: c.base().WithVP(config.TVP).WithSpSR(true)},
			runSpec{workload: n, cfg: noStride},
			runSpec{workload: n, cfg: noStride.WithVP(config.TVP).WithSpSR(true)},
		)
	}
	sts, err := c.runAll(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]PrefetchRow, len(names))
	for i, n := range names {
		rows[i] = PrefetchRow{
			Workload:      n,
			WithStride:    (sts[i*4+1].IPC()/sts[i*4].IPC() - 1) * 100,
			WithoutStride: (sts[i*4+3].IPC()/sts[i*4+2].IPC() - 1) * 100,
		}
	}
	return rows, nil
}
