package rename

import (
	"testing"

	"repro/internal/isa"
)

func eng(spsr, inline bool) Engine {
	return Engine{ZeroOneIdiom: true, MoveElim: true, NineBit: inline, SpSR: spsr, Inline: inline}
}

func ptr(o Operand) *Operand { return &o }

func known(v int64) Operand {
	if v == 0 {
		return Operand{Name: HardZero, Known: true, Value: 0}
	}
	if v == 1 {
		return Operand{Name: HardOne, Known: true, Value: 1}
	}
	return Operand{Name: ValueName(v), Known: true, Value: v}
}

func spec(v int64) Operand {
	o := known(v)
	o.Spec = true
	return o
}

var physW = Operand{Name: 50, Wide: true}
var physN = Operand{Name: 51, Wide: false}

func decide(t *testing.T, e Engine, in isa.Inst, srcN, srcM Operand) Decision {
	t.Helper()
	d, _ := e.Decide(&in, &srcN, &srcM, 0, false, false)
	return d
}

func TestStaticZeroIdioms(t *testing.T) {
	e := eng(false, false)
	cases := []isa.Inst{
		{Op: isa.EOR, Rd: isa.X1, Rn: isa.X2, Rm: isa.X2},  // eor x, y, y
		{Op: isa.MOVZ, Rd: isa.X1, Imm: 0},                 // movz #0
		{Op: isa.MOVZ, Rd: isa.X1, Imm: 0, Imm2: 2},        // movz #0 shifted
		{Op: isa.AND, Rd: isa.X1, Rn: isa.XZR, Rm: isa.X2}, // and with xzr
		{Op: isa.AND, Rd: isa.X1, Rn: isa.X2, Rm: isa.XZR},
	}
	for _, in := range cases {
		if d := decide(t, e, in, physW, physW); d.Kind != KindZero || d.Origin != OriginZeroOne {
			t.Errorf("%s: %v/%v, want zero-idiom", in.String(), d.Kind, d.Origin)
		}
	}
	one := isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: 1}
	if d := decide(t, e, one, physW, physW); d.Kind != KindOne {
		t.Errorf("movz #1: %v, want one-idiom", d.Kind)
	}
	// movz #1 with a shift is NOT a one idiom.
	shifted := isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: 1, Imm2: 1}
	if d := decide(t, e, shifted, physW, physW); d.Kind == KindOne {
		t.Error("movz #1 lsl 16 must not be a one idiom")
	}
}

func TestStaticMoveIdioms(t *testing.T) {
	e := eng(false, false)
	for _, op := range []isa.Op{isa.ADD, isa.ORR, isa.EOR} {
		in := isa.Inst{Op: op, Rd: isa.X1, Rn: isa.XZR, Rm: isa.X2}
		d := decide(t, e, in, Operand{Name: HardZero, Known: true}, physW)
		if d.Kind != KindMove || d.Origin != OriginMove || d.MoveOp.Name != physW.Name {
			t.Errorf("%v with xzr src0: %v", op, d.Kind)
		}
		in2 := isa.Inst{Op: op, Rd: isa.X1, Rn: isa.X2, Rm: isa.XZR}
		d2 := decide(t, e, in2, physW, Operand{Name: HardZero, Known: true})
		if d2.Kind != KindMove {
			t.Errorf("%v with xzr src1: %v", op, d2.Kind)
		}
	}
	// SUB with xzr is not a listed move idiom.
	in := isa.Inst{Op: isa.SUB, Rd: isa.X1, Rn: isa.X2, Rm: isa.XZR}
	if d := decide(t, e, in, physW, Operand{Name: HardZero, Known: true}); d.Origin == OriginMove {
		t.Error("sub is not a baseline move idiom")
	}
}

func TestMoveWidthRule(t *testing.T) {
	e := eng(false, false)
	// 32-bit move of a 64-bit-defined source: blocked (§5).
	in := isa.Inst{Op: isa.ORR, Rd: isa.X1, Rn: isa.XZR, Rm: isa.X2, W: true}
	d, blocked := e.Decide(&in, &Operand{Name: HardZero, Known: true}, &physW, 0, false, false)
	if d.Kind != KindNone || !blocked {
		t.Errorf("wide source into w-dest must be blocked: %v blocked=%v", d.Kind, blocked)
	}
	// Same with a 32-bit-defined source: allowed.
	d2, _ := e.Decide(&in, &Operand{Name: HardZero, Known: true}, &physN, 0, false, false)
	if d2.Kind != KindMove {
		t.Errorf("narrow source into w-dest must move-eliminate: %v", d2.Kind)
	}
	// A known non-negative small value: allowed even though "wide" (§6.2).
	d3, _ := e.Decide(&in, &Operand{Name: HardZero, Known: true}, ptr(known(200)), 0, false, false)
	if d3.Kind != KindMove {
		t.Errorf("known small value into w-dest must move-eliminate: %v", d3.Kind)
	}
	// A known negative value sign-extends: blocked.
	d4, blocked4 := e.Decide(&in, &Operand{Name: HardZero, Known: true}, ptr(known(-5)), 0, false, false)
	if d4.Kind == KindMove || !blocked4 {
		t.Error("negative inlined value into w-dest must be blocked")
	}
}

func TestNineBitIdiom(t *testing.T) {
	e := eng(false, true)
	in := isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: 42}
	d := decide(t, e, in, physW, physW)
	if d.Kind != KindValue || d.Origin != OriginNineBit || d.Value != 42 {
		t.Errorf("movz #42: %v %v %d", d.Kind, d.Origin, d.Value)
	}
	// movn #4 → -5.
	n := isa.Inst{Op: isa.MOVN, Rd: isa.X1, Imm: 4}
	dn := decide(t, e, n, physW, physW)
	if dn.Kind != KindValue || dn.Value != -5 {
		t.Errorf("movn #4: %v %d", dn.Kind, dn.Value)
	}
	// Too wide for inlining.
	wide := isa.Inst{Op: isa.MOVZ, Rd: isa.X1, Imm: 300}
	if d := decide(t, e, wide, physW, physW); d.Kind != KindNone {
		t.Errorf("movz #300 must not inline: %v", d.Kind)
	}
	// Without inline hardware (MVP), no 9-bit elimination.
	e2 := eng(false, false)
	e2.NineBit = true
	if d := decide(t, e2, in, physW, physW); d.Kind != KindNone {
		t.Error("9-bit idiom requires inline register names")
	}
}

func TestSpSRSpeculativeFlag(t *testing.T) {
	e := eng(true, true)
	in := isa.Inst{Op: isa.ADD, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
	// Non-speculative knowledge → non-speculative reduction.
	d := decide(t, e, in, physW, known(0))
	if d.Kind != KindMove || d.Spec {
		t.Errorf("architecturally-known zero: %v spec=%v", d.Kind, d.Spec)
	}
	// Speculative knowledge taints the reduction.
	d2 := decide(t, e, in, physW, spec(0))
	if d2.Kind != KindMove || !d2.Spec {
		t.Errorf("predicted zero: %v spec=%v", d2.Kind, d2.Spec)
	}
}

func TestSpSRRequiresEnable(t *testing.T) {
	e := eng(false, true)
	in := isa.Inst{Op: isa.ADD, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
	if d := decide(t, e, in, physW, spec(0)); d.Kind != KindNone {
		t.Error("Table 1 reductions must be gated by the SpSR knob")
	}
}

func TestSpSRAndsFlags(t *testing.T) {
	e := eng(true, true)
	in := isa.Inst{Op: isa.ANDS, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
	d := decide(t, e, in, spec(0), physW)
	if d.Kind != KindZero || !d.SetsNZCV || d.NZCV != isa.ZeroResultFlags() {
		t.Errorf("ands with zero src: %v nzcv=%v", d.Kind, d.NZCV)
	}
	// ands 1,1 → result 1, all flags clear.
	d2 := decide(t, e, in, spec(1), spec(1))
	if d2.Kind != KindOne || !d2.SetsNZCV || d2.NZCV != 0 {
		t.Errorf("ands 1&1: %v nzcv=%v", d2.Kind, d2.NZCV)
	}
}

func TestSpSRSubsComputesFlags(t *testing.T) {
	e := eng(true, true)
	cmp := isa.Inst{Op: isa.SUBS, Rd: isa.XZR, Rn: isa.X2, Rm: isa.X3}
	// 0 - 1 = -1: N set, C clear.
	d := decide(t, e, cmp, spec(0), spec(1))
	if d.Kind != KindNop || !d.NZCV.N() || d.NZCV.C() || d.NZCV.Z() {
		t.Errorf("subs 0,1: %v nzcv=%v", d.Kind, d.NZCV)
	}
	// 1 - 1 = 0: Z and C set.
	d2 := decide(t, e, cmp, spec(1), spec(1))
	if d2.Kind != KindNop || !d2.NZCV.Z() || !d2.NZCV.C() {
		t.Errorf("subs 1,1: %v nzcv=%v", d2.Kind, d2.NZCV)
	}
	// With a real destination and an unrepresentable result (MVP mode:
	// no inline), 0-1=-1 cannot be eliminated.
	e2 := eng(true, false)
	sub := isa.Inst{Op: isa.SUBS, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
	if d := decide(t, e2, sub, spec(0), spec(1)); d.Kind != KindNone {
		t.Errorf("subs with -1 result under MVP: %v, want none", d.Kind)
	}
	// Under TVP inlining, -1 is representable.
	if d := decide(t, e, sub, spec(0), spec(1)); d.Kind != KindValue || d.Value != -1 {
		t.Errorf("subs with -1 result under TVP: %v %d", d.Kind, d.Value)
	}
}

func TestSpSRBranches(t *testing.T) {
	e := eng(true, true)
	cbz := isa.Inst{Op: isa.CBZ, Rn: isa.X2}
	if d := decide(t, e, cbz, spec(0), physW); d.Kind != KindBranch || !d.Taken {
		t.Errorf("cbz of predicted 0: %v taken=%v", d.Kind, d.Taken)
	}
	if d := decide(t, e, cbz, spec(1), physW); d.Kind != KindBranch || d.Taken {
		t.Errorf("cbz of predicted 1: %v taken=%v", d.Kind, d.Taken)
	}
	cbnz := isa.Inst{Op: isa.CBNZ, Rn: isa.X2}
	if d := decide(t, e, cbnz, spec(1), physW); d.Kind != KindBranch || !d.Taken {
		t.Error("cbnz of predicted 1 must resolve taken")
	}
	tbnz := isa.Inst{Op: isa.TBNZ, Rn: isa.X2, Imm: 0}
	if d := decide(t, e, tbnz, spec(1), physW); d.Kind != KindBranch || !d.Taken {
		t.Error("tbnz bit0 of predicted 1 must resolve taken")
	}
	// b.cond with unknown NZCV does not resolve.
	bc := isa.Inst{Op: isa.BCOND, Cond: isa.EQ}
	if d, _ := e.Decide(&bc, &physW, &physW, 0, false, false); d.Kind != KindNone {
		t.Error("b.cond must not resolve without frontend NZCV")
	}
	// With known NZCV it does.
	if d, _ := e.Decide(&bc, &physW, &physW, isa.FlagZ, true, true); d.Kind != KindBranch || !d.Taken {
		t.Error("b.eq with Z=1 must resolve taken")
	}
}

func TestSpSRCondSelects(t *testing.T) {
	e := eng(true, true)
	csel := isa.Inst{Op: isa.CSEL, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3, Cond: isa.EQ}
	d, _ := e.Decide(&csel, &physW, &physN, isa.FlagZ, false, true)
	if d.Kind != KindMove || d.MoveOp.Name != physW.Name {
		t.Errorf("csel eq with Z=1: %v src=%v", d.Kind, d.MoveOp.Name)
	}
	// csinc with cond false and known Rm: value Rm+1.
	csinc := isa.Inst{Op: isa.CSINC, Rd: isa.X1, Rn: isa.X2, Rm: isa.XZR, Cond: isa.NE}
	d2, _ := e.Decide(&csinc, &physW, &Operand{Name: HardZero, Known: true}, isa.FlagZ, false, true)
	if d2.Kind != KindOne {
		t.Errorf("cset-like csinc with Z=1: %v", d2.Kind)
	}
	// csneg cond false with known Rm=1 → -1 (TVP value).
	csneg := isa.Inst{Op: isa.CSNEG, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3, Cond: isa.NE}
	d3, _ := e.Decide(&csneg, &physW, ptr(known(1)), isa.FlagZ, false, true)
	if d3.Kind != KindValue || d3.Value != -1 {
		t.Errorf("csneg false-arm: %v %d", d3.Kind, d3.Value)
	}
}

func TestSpSRShiftAndBitOps(t *testing.T) {
	e := eng(true, true)
	for _, op := range []isa.Op{isa.LSL, isa.LSR, isa.ASR} {
		in := isa.Inst{Op: op, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
		if d := decide(t, e, in, spec(0), physW); d.Kind != KindZero {
			t.Errorf("%v of zero: %v", op, d.Kind)
		}
		if d := decide(t, e, in, physW, spec(0)); d.Kind != KindMove {
			t.Errorf("%v by zero: %v", op, d.Kind)
		}
	}
	ubfm := isa.Inst{Op: isa.UBFM, Rd: isa.X1, Rn: isa.X2, Imm: 3, Imm2: 9}
	if d := decide(t, e, ubfm, spec(0), physW); d.Kind != KindZero {
		t.Error("ubfm of zero must be zero-idiom")
	}
	rbit := isa.Inst{Op: isa.RBIT, Rd: isa.X1, Rn: isa.X2}
	if d := decide(t, e, rbit, spec(0), physW); d.Kind != KindZero {
		t.Error("rbit of zero must be zero-idiom")
	}
	bic := isa.Inst{Op: isa.BIC, Rd: isa.X1, Rn: isa.X2, Rm: isa.X3}
	if d := decide(t, e, bic, physW, spec(0)); d.Kind != KindMove {
		t.Error("bic with zero mask must be move-idiom")
	}
}

func TestPriorityStaticBeforeSpSR(t *testing.T) {
	// eor x, y, y is both a static zero idiom and (with known operands) a
	// potential SpSR case; the baseline static idiom must win so Fig. 4
	// attribution is stable.
	e := eng(true, true)
	in := isa.Inst{Op: isa.EOR, Rd: isa.X1, Rn: isa.X2, Rm: isa.X2}
	if d := decide(t, e, in, spec(0), spec(0)); d.Origin != OriginZeroOne {
		t.Errorf("static idiom must take priority: %v", d.Origin)
	}
}
