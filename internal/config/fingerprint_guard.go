package config

import (
	"fmt"
	"reflect"
)

// The experiment run cache keys on Fingerprint(), which renders Machine
// with %#v. That rendering is only a complete, deterministic
// serialization while every field reachable from Machine is a value
// type (or a slice/array of value types): pointers render as addresses,
// maps iterate in random order, and funcs/channels render as pointers.
// Any such field silently poisons cache keying.
//
// tvplint's fingerprintsafe analyzer enforces this statically at lint
// time; this init-time guard enforces the same invariant dynamically so
// a violation also fails fast in any binary or test that links config,
// even when run outside `make check`.
func init() {
	if err := fingerprintable(reflect.TypeOf(Machine{})); err != nil {
		panic("config.Machine is not fingerprint-safe: " + err.Error())
	}
}

// fingerprintable reports whether every field reachable from t renders
// deterministically and completely under %#v. It mirrors the recursive
// walk in internal/analysis/fingerprintsafe.go.
func fingerprintable(t reflect.Type) error {
	return fpWalk(t, t.Name(), map[reflect.Type]bool{})
}

func fpWalk(t reflect.Type, path string, seen map[reflect.Type]bool) error {
	switch t.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Func, reflect.Chan,
		reflect.Interface, reflect.UnsafePointer:
		return fmt.Errorf("%s has non-value kind %s", path, t.Kind())
	case reflect.Slice, reflect.Array:
		return fpWalk(t.Elem(), path+"[]", seen)
	case reflect.Struct:
		if seen[t] {
			return nil
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if err := fpWalk(f.Type, path+"."+f.Name, seen); err != nil {
				return err
			}
		}
	}
	return nil
}
