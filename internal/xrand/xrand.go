// Package xrand provides a tiny deterministic xorshift64* PRNG used
// everywhere the simulator needs randomness (FPC probabilistic confidence
// counters, workload data generation). Using our own generator — rather
// than math/rand — pins the exact sequence across Go versions so every
// experiment is bit-reproducible.
package xrand

// Rand is a xorshift64* generator. The zero value is not valid; use New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed (a zero seed is remapped to a
// fixed non-zero constant, since xorshift requires non-zero state).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// OneIn returns true with probability 1/n. This is the primitive behind
// the paper's Forward Probabilistic Counters (1/16 increment probability).
func (r *Rand) OneIn(n int) bool {
	if n <= 1 {
		return true
	}
	return r.Intn(n) == 0
}
