package isa

// UOpKind labels the role a µop plays within its parent architectural
// instruction. Most instructions decode to a single Main µop; loads and
// stores with pre/post-index addressing additionally emit a BaseUpdate µop
// that performs the base register increment on the integer ALU, which is
// the dominant source of the µop expansion ratio the paper reports in
// Fig. 2.
type UOpKind uint8

const (
	// UOpMain is the µop that carries the instruction's primary semantics.
	UOpMain UOpKind = iota
	// UOpBaseUpdate is the address-increment µop of a pre/post-index
	// load or store: Rn = Rn + Imm on the integer ALU.
	UOpBaseUpdate
)

// UOpTemplate describes one µop produced by decoding an instruction.
type UOpTemplate struct {
	Kind  UOpKind
	Class Class
}

// CrackCount returns the number of µops the instruction decodes into.
func CrackCount(in *Inst) int {
	if IsMem(in.Op) && (in.Mode == AddrPre || in.Mode == AddrPost) {
		return 2
	}
	return 1
}

// Crack appends the µop templates for the instruction to dst and returns
// the extended slice. The Main µop always comes first so that the timing
// model's per-instruction bookkeeping (value prediction, branch
// resolution) can attach to µop index 0.
func Crack(in *Inst, dst []UOpTemplate) []UOpTemplate {
	dst = append(dst, UOpTemplate{Kind: UOpMain, Class: OpClass(in.Op)})
	if IsMem(in.Op) && (in.Mode == AddrPre || in.Mode == AddrPost) {
		dst = append(dst, UOpTemplate{Kind: UOpBaseUpdate, Class: ClassIntALU})
	}
	return dst
}
