package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

// loopProgram builds a simple counted loop with a mix of ALU, memory and
// boolean-producing instructions.
func loopProgram(iters int64) *prog.Program {
	b := prog.NewBuilder("loop")
	buf := b.Alloc(4096, 8)

	b.MovImm(isa.X0, uint64(iters)) // counter
	b.MovAddr(isa.X1, buf)          // base
	b.Zero(isa.X2)                  // sum
	b.Zero(isa.X3)                  // index

	top := b.Here()
	b.LdrR(isa.X4, isa.X1, isa.X3, 3, 8) // x4 = buf[x3]
	b.Add(isa.X2, isa.X2, isa.X4)
	b.AddI(isa.X4, isa.X4, 1)
	b.StrR(isa.X4, isa.X1, isa.X3, 3, 8) // buf[x3]++
	b.AddI(isa.X3, isa.X3, 1)
	b.AndI(isa.X3, isa.X3, 63) // wrap index
	b.CmpI(isa.X3, 0)
	b.Cset(isa.X5, isa.EQ) // boolean producer
	b.SubsI(isa.X0, isa.X0, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

func TestSmokeBaseline(t *testing.T) {
	cfg := config.Default()
	core := New(cfg, loopProgram(20000))
	res := core.Run(0, 1<<62)
	if !res.Halted {
		t.Fatalf("program did not halt: committed=%d cycles=%d", res.Committed, res.Cycles)
	}
	if res.Stats.IPC() <= 0.1 {
		t.Fatalf("implausible IPC %.3f", res.Stats.IPC())
	}
	t.Logf("baseline: %d insts, %d cycles, IPC %.2f, uops/inst %.3f",
		res.Committed, res.Cycles, res.Stats.IPC(), res.Stats.UopsPerInst())
}

func TestSmokeAllVPModes(t *testing.T) {
	base := config.Default()
	p := loopProgram(20000)
	baseRes := New(base, p).Run(0, 1<<62)
	for _, mode := range []config.VPMode{config.MVP, config.TVP, config.GVP} {
		for _, spsr := range []bool{false, true} {
			cfg := base.WithVP(mode).WithSpSR(spsr)
			core := New(cfg, loopProgram(20000))
			res := core.Run(0, 1<<62)
			if !res.Halted {
				t.Fatalf("%v spsr=%v did not halt", mode, spsr)
			}
			if res.Committed != baseRes.Committed {
				t.Errorf("%v spsr=%v committed %d, baseline %d", mode, spsr, res.Committed, baseRes.Committed)
			}
			st := res.Stats
			t.Logf("%v spsr=%v: IPC %.3f cov %.3f acc %.4f elim(spsr)=%d vpflush=%d",
				mode, spsr, st.IPC(), st.VPCoverage(), st.VPAccuracy(), st.SpSRElim, st.VPFlushes)
			// This kernel has few stable values, so coverage is tiny and
			// the used-prediction sample small; just require that flushes
			// stay bounded (silencing working) and accuracy above chance.
			if acc := st.VPAccuracy(); acc < 0.5 {
				t.Errorf("%v: VP accuracy %.4f below chance", mode, acc)
			}
			if st.VPFlushes > 200 {
				t.Errorf("%v: %d VP flushes — silencing not containing mispredictions", mode, st.VPFlushes)
			}
		}
	}
}
