// Package config seeds a fingerprint-poisoning Machine for the driver
// test: the map field breaks the %#v rendering contract.
package config

// Machine carries a map: fingerprintsafe must reject it.
type Machine struct {
	Width int
	Bad   map[string]int
}
