// Package obs is the simulator telemetry layer. It turns a timing run
// from a single block of end-of-run totals into observable execution
// evidence, in four pieces:
//
//   - interval sampling: a Sampler snapshots the live stats.Sim counters
//     every N committed instructions (DefaultInterval = 100k) and emits a
//     per-run time series of IPC, branch MPKI, VP coverage/accuracy/flush
//     rate, cache MPKI and rename-elimination rates, so phase behavior
//     within a simulation point is visible;
//   - per-PC attribution: bounded TopPC tables (space-saving eviction)
//     attribute VP-misprediction flushes, branch mispredictions and L1D
//     demand misses to static PCs, rendered with internal/isa disassembly;
//   - trace export: Konata writes the pipeline trace in the Kanata log
//     format consumed by the Konata/gem5-O3 pipeline viewer, as a second
//     pipeline.Tracer implementation next to the human-only Pipeview;
//   - machine-readable records: RunRecord and SweepRecord are versioned
//     JSON schemas dumping full counters, the machine-configuration
//     fingerprint, the interval series and the attribution tables, plus a
//     live Heartbeat for long tvpreport sweeps.
//
// Telemetry is pure observation: a Telemetry attached through the
// pipeline.Probe seam never changes simulated timing, and with no probe
// attached the simulator pays at most one predictable branch per event
// site (guarded by `make bench-guard` against the PR 1 allocation
// baseline).
package obs

// Schema version strings embedded in every emitted record. Bump the
// suffix when a field changes meaning or is removed; adding fields is
// backward compatible.
const (
	// RunSchema versions RunRecord (one simulation point). v2 added the
	// CPI-stack block: totals in RunRecord.CPI, per-interval deltas in
	// Sample.CPIDelta, and the commit-stall attribution table.
	// DecodeRunRecord accepts v1 records (their CPI fields read as zero).
	RunSchema = "tvp.obs.run/v2"
	// RunSchemaV1 is the pre-CPI-stack RunRecord schema, still decodable.
	RunSchemaV1 = "tvp.obs.run/v1"
	// SweepSchema versions SweepRecord (one tvpreport sweep).
	SweepSchema = "tvp.obs.sweep/v1"
)

// DefaultInterval is the default interval-sampling period in committed
// architectural instructions.
const DefaultInterval = 100_000

// Defaults for the attribution tables: TopK entries are reported per
// event class out of up to TableCap tracked PCs.
const (
	DefaultTopK     = 32
	DefaultTableCap = 1024
)
