// Package sim seeds a wall-clock read in a core package for the driver
// test: nondet must reject it.
package sim

import "time"

// Tick couples simulated state to the host clock.
func Tick() int64 { return time.Now().UnixNano() }
