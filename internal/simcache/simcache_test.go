package simcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
)

func TestHitMiss(t *testing.T) {
	c := New[string, int]()
	calls := 0
	get := func() (int, error) { calls++; return 42, nil }

	v, err := c.Do("k", get)
	if err != nil || v != 42 {
		t.Fatalf("first Do = %d, %v", v, err)
	}
	v, err = c.Do("k", get)
	if err != nil || v != 42 {
		t.Fatalf("second Do = %d, %v", v, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if hits, misses := c.Counters(); hits != 1 || misses != 1 {
		t.Errorf("counters = %d hits / %d misses, want 1/1", hits, misses)
	}
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get on absent key reported ok")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}

	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear entries")
	}
	if hits, misses := c.Counters(); hits != 0 || misses != 0 {
		t.Errorf("Reset did not clear counters: %d/%d", hits, misses)
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New[string, int]()
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("k", func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("Do error = %v", err)
		}
	}
	if calls != 1 {
		t.Errorf("failing fn ran %d times, want 1 (deterministic failures must not retry)", calls)
	}
}

// TestCancellationErrorsNotCached is the regression test for the daemon
// error-poisoning bug: a loader failing with a context cancellation or
// deadline error (even wrapped) must be evicted so a retry recomputes,
// while the value produced by the retry is then cached normally.
func TestCancellationErrorsNotCached(t *testing.T) {
	for _, transient := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("simulate w: %w", context.Canceled),
		fmt.Errorf("simulate w: %w", context.DeadlineExceeded),
	} {
		c := New[string, int]()
		calls := 0
		_, err := c.Do("k", func() (int, error) { calls++; return 0, transient })
		if !errors.Is(err, transient) {
			t.Fatalf("Do error = %v, want %v", err, transient)
		}
		if c.Len() != 0 {
			t.Fatalf("%v: key retained after transient failure", transient)
		}
		v, err := c.Do("k", func() (int, error) { calls++; return 9, nil })
		if err != nil || v != 9 {
			t.Fatalf("%v: retry = %d, %v (want 9, nil)", transient, v, err)
		}
		if calls != 2 {
			t.Fatalf("%v: fn ran %d times, want 2 (transient error must recompute)", transient, calls)
		}
		// The retried value is a normal entry again.
		v, err = c.Do("k", func() (int, error) { calls++; return 0, errors.New("must not run") })
		if err != nil || v != 9 || calls != 2 {
			t.Fatalf("%v: post-retry Do = %d, %v, calls %d", transient, v, err, calls)
		}
	}
}

// TestSingleflight hammers one key from many goroutines: the loader must
// run exactly once and every caller must observe its value.
func TestSingleflight(t *testing.T) {
	c := New[RunKey, uint64]()
	key := RunKey{Workload: "w", ConfigFP: "fp", Warmup: 1, Insts: 2}
	var calls atomic.Uint64
	release := make(chan struct{})

	const workers = 32
	var wg sync.WaitGroup
	results := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(key, func() (uint64, error) {
				<-release // hold every other caller in the wait path
				return calls.Add(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	for i, v := range results {
		if v != 1 {
			t.Errorf("worker %d saw %d, want 1", i, v)
		}
	}
	hits, misses := c.Counters()
	if misses != 1 || hits != workers-1 {
		t.Errorf("counters = %d hits / %d misses, want %d/1", hits, misses, workers-1)
	}
}

func TestPanicDoesNotPoison(t *testing.T) {
	c := New[string, int]()
	func() {
		defer func() { recover() }()
		c.Do("k", func() (int, error) { panic("die") })
	}()
	// The key must be retryable after a panicking loader.
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("Do after panic = %d, %v", v, err)
	}
}

// TestRunKeyFingerprintSensitivity checks that the machine-config
// fingerprint separates configurations that differ anywhere — including
// nested VP parameters — and is stable for equal configurations, so cache
// keys never alias distinct simulation points.
func TestRunKeyFingerprintSensitivity(t *testing.T) {
	base := config.Default()
	if base.Fingerprint() != config.Default().Fingerprint() {
		t.Fatal("equal configs produced different fingerprints")
	}

	seen := map[string]string{base.Fingerprint(): "default"}
	variants := map[string]*config.Machine{
		"vp=tvp":   config.Default().WithVP(config.TVP),
		"vp=gvp":   config.Default().WithVP(config.GVP),
		"spsr":     config.Default().WithSpSR(true),
		"tvp+spsr": config.Default().WithVP(config.TVP).WithSpSR(true),
		"budget-1": config.Default().WithVPBudgetScale(-1),
		"rob":      func() *config.Machine { m := config.Default(); m.ROBSize++; return m }(),
		"silence":  func() *config.Machine { m := config.Default(); m.VP.SilenceCycles++; return m }(),
		"nostride": func() *config.Machine { m := config.Default(); m.StridePrefetch = false; return m }(),
		"l1dlat":   func() *config.Machine { m := config.Default(); m.L1D.LoadToUse++; return m }(),
	}
	for name, m := range variants {
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s aliases %s", name, prev)
		}
		seen[fp] = name
	}

	// Distinct fingerprints mean distinct RunKeys, so both points coexist.
	c := New[RunKey, int]()
	k1 := RunKey{Workload: "w", ConfigFP: base.Fingerprint(), Warmup: 1, Insts: 2}
	k2 := k1
	k2.ConfigFP = variants["vp=tvp"].Fingerprint()
	c.Do(k1, func() (int, error) { return 1, nil })
	c.Do(k2, func() (int, error) { return 2, nil })
	if v, _ := c.Get(k1); v != 1 {
		t.Errorf("k1 = %d", v)
	}
	if v, _ := c.Get(k2); v != 2 {
		t.Errorf("k2 = %d", v)
	}
}
