// Package stats is the statscomplete golden stats side: a counter block
// with a non-uint64 field and a JSON-hidden field, plus a valid Sub.
package stats

// Sim mirrors stats.Sim: the complete counter block.
type Sim struct {
	Cycles    uint64
	ArchInsts uint64
	IPCcache  float64 // want "counter field Sim.IPCcache is float64, not uint64"
	Hidden    uint64  `json:"-"` // want `counter field Sim.Hidden carries json tag "-"`
	Sparse    uint64  `json:"sparse,omitempty"` // want "counter field Sim.Sparse carries json tag"
}

// Sub is the reflect-based delta with the contractual signature.
func Sub(a, b *Sim) Sim { return Sim{Cycles: a.Cycles - b.Cycles} }

// CPIStack mirrors stats.CPIStack: the top-down bucket block.
type CPIStack struct {
	Retiring uint64 `json:"retiring"`
	Frac     float64 // want "bucket field CPIStack.Frac is float64, not uint64"
	Ghost    uint64  `json:"ghost,omitempty"` // want "bucket field CPIStack.Ghost carries json tag"
}

// SubCPI is the reflect-based bucket delta with the contractual signature.
func SubCPI(a, b *CPIStack) CPIStack { return CPIStack{Retiring: a.Retiring - b.Retiring} }
