// Package store is the persistent half of the two-tier simulation result
// store behind the tvpd daemon (internal/serve): an on-disk map from
// simcache.RunKey to a run's stats.Sim counter block, surviving process
// restarts and shared between every process pointed at the same
// directory. The design leans on the content-addressed nature of the
// keys — a simulation point's result is a pure function of its RunKey,
// so records never need invalidation, versioning beyond the envelope
// schema, or coordination between writers (two processes racing to write
// the same key write identical payloads).
//
// Durability discipline:
//
//   - one record file per key, named by the SHA-256 of the canonical key
//     string, written write-temp-then-rename so a crash never leaves a
//     partial record under a record name;
//   - every record embeds its full key and a SHA-256 checksum of the
//     payload; Get verifies both, so a hash-colliding, renamed, bit-rotted
//     or truncated file can never serve a wrong result;
//   - corruption is quarantined, not fatal: a bad record is moved aside
//     into quarantine/ and reported as a miss, leaving every other key
//     intact;
//   - leftover temp files from crashed writers are swept at Open.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simcache"
	"repro/internal/stats"
)

// Schema versions the on-disk record envelope.
const Schema = "tvp.store/v1"

const (
	recordsDir    = "records"
	quarantineDir = "quarantine"
	tmpMarker     = ".tmp"
)

// envelope is the on-disk record format. Payload stays a raw message so
// the recorded checksum covers the exact stored bytes, independent of
// map ordering or encoder drift.
type envelope struct {
	Schema   string          `json:"schema"`
	Key      keyJSON         `json:"key"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// keyJSON mirrors simcache.RunKey with stable JSON field names.
type keyJSON struct {
	Workload   string `json:"workload"`
	ConfigFP   string `json:"config_fp"`
	Warmup     uint64 `json:"warmup"`
	Insts      uint64 `json:"insts"`
	FastWarmup bool   `json:"fast_warmup"`
}

func toKeyJSON(k simcache.RunKey) keyJSON {
	return keyJSON{Workload: k.Workload, ConfigFP: k.ConfigFP, Warmup: k.Warmup, Insts: k.Insts, FastWarmup: k.FastWarmup}
}

func (k keyJSON) runKey() simcache.RunKey {
	return simcache.RunKey{Workload: k.Workload, ConfigFP: k.ConfigFP, Warmup: k.Warmup, Insts: k.Insts, FastWarmup: k.FastWarmup}
}

// Counters is a snapshot of the store's cumulative activity, surfaced by
// the daemon's /v1/status endpoint and asserted by the persistence and
// fault-injection tests.
type Counters struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
	// StaleEvictions counts index entries whose record file vanished or
	// went bad after it was indexed (another process moved or corrupted
	// it) — evicted on discovery, never fatal.
	StaleEvictions uint64 `json:"stale_evictions"`
}

// Store is one handle on a store directory. Handles are safe for
// concurrent use; multiple processes may share one directory (Get always
// probes the disk, so records written by another process after Open are
// found).
type Store struct {
	dir string

	mu    sync.Mutex
	index map[simcache.RunKey]struct{}

	hits        atomic.Uint64
	misses      atomic.Uint64
	puts        atomic.Uint64
	quarantined atomic.Uint64
	stale       atomic.Uint64
}

// Open prepares dir as a result store, creating it if needed. Leftover
// temp files from crashed writers are removed, and every existing record
// is verified (schema, embedded key, name, checksum): good records seed
// the index, bad ones are quarantined on the spot so a damaged store
// never poisons later Gets.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, index: make(map[simcache.RunKey]struct{})}
	for _, d := range []string{dir, filepath.Join(dir, recordsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, recordsDir))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, recordsDir, name)
		if strings.Contains(name, tmpMarker) {
			// A writer crashed between temp write and rename; the record
			// name was never linked, so removal cannot lose data.
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		key, _, err := decodeRecord(name, data)
		if err != nil {
			s.quarantine(path, err)
			continue
		}
		s.index[key] = struct{}{}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Counters returns a snapshot of the cumulative activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		Quarantined:    s.quarantined.Load(),
		StaleEvictions: s.stale.Load(),
	}
}

// fileName returns the record file name for a key: the SHA-256 of the
// canonical key string. Field values are separated by NUL (none of the
// fields may contain one) so distinct keys can never collide textually.
func fileName(k simcache.RunKey) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%t",
		k.Workload, k.ConfigFP, k.Warmup, k.Insts, k.FastWarmup)))
	return hex.EncodeToString(h[:]) + ".json"
}

func (s *Store) recordPath(k simcache.RunKey) string {
	return filepath.Join(s.dir, recordsDir, fileName(k))
}

// Get returns the stored result for k. It reads the disk directly (the
// caller's in-memory tier absorbs repeats), verifying the envelope
// schema, the embedded key, the record name and the payload checksum; a
// record failing any check is quarantined and reported as a miss.
func (s *Store) Get(k simcache.RunKey) (stats.Sim, bool) {
	path := s.recordPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		s.evictStale(k)
		s.misses.Add(1)
		return stats.Sim{}, false
	}
	key, st, err := decodeRecord(fileName(k), data)
	if err != nil || key != k {
		if err == nil {
			err = fmt.Errorf("store: record %s holds key %+v, not the requested %+v", fileName(k), key, k)
		}
		s.quarantine(path, err)
		s.evictStale(k)
		s.misses.Add(1)
		return stats.Sim{}, false
	}
	s.mu.Lock()
	s.index[k] = struct{}{}
	s.mu.Unlock()
	s.hits.Add(1)
	return st, true
}

// Put durably stores the result for k: marshal, checksum, write to a
// temp file in the records directory, fsync, then atomically rename into
// the record name. Concurrent writers of the same key are harmless — the
// payload is a pure function of the key, so whichever rename lands last
// installs identical content.
func (s *Store) Put(k simcache.RunKey, st stats.Sim) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	sum := sha256.Sum256(payload)
	env := envelope{
		Schema:   Schema,
		Key:      toKeyJSON(k),
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  payload,
	}
	// The envelope must be written compact: an indenting encoder would
	// reformat the embedded raw payload, and the checksum covers the
	// payload bytes exactly as they appear in the file.
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	data = append(data, '\n')

	final := s.recordPath(k)
	tmp, err := os.CreateTemp(filepath.Dir(final), fileName(k)+tmpMarker+"*")
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	s.index[k] = struct{}{}
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// decodeRecord verifies and unpacks one record file: envelope schema,
// record name matching the embedded key, and payload checksum.
func decodeRecord(name string, data []byte) (simcache.RunKey, stats.Sim, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return simcache.RunKey{}, stats.Sim{}, fmt.Errorf("store: record %s: %w", name, err)
	}
	if env.Schema != Schema {
		return simcache.RunKey{}, stats.Sim{}, fmt.Errorf("store: record %s: schema %q (want %s)", name, env.Schema, Schema)
	}
	key := env.Key.runKey()
	if want := fileName(key); want != name {
		return simcache.RunKey{}, stats.Sim{}, fmt.Errorf("store: record %s embeds a key hashing to %s", name, want)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return simcache.RunKey{}, stats.Sim{}, fmt.Errorf("store: record %s: payload checksum %s, recorded %s", name, got, env.Checksum)
	}
	var st stats.Sim
	if err := json.Unmarshal(env.Payload, &st); err != nil {
		return simcache.RunKey{}, stats.Sim{}, fmt.Errorf("store: record %s payload: %w", name, err)
	}
	return key, st, nil
}

// quarantine moves a bad record aside (best effort — removal if the move
// fails) so it can be inspected without ever being served again.
func (s *Store) quarantine(path string, reason error) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	} else {
		// Leave a note naming the failed check next to the quarantined
		// record; diagnostics only, failures ignored.
		os.WriteFile(dst+".reason", []byte(reason.Error()+"\n"), 0o644)
	}
	s.quarantined.Add(1)
}

// evictStale drops k from the index if present, counting the eviction —
// the record the index promised is no longer usable on disk.
func (s *Store) evictStale(k simcache.RunKey) {
	s.mu.Lock()
	_, had := s.index[k]
	if had {
		delete(s.index, k)
	}
	s.mu.Unlock()
	if had {
		s.stale.Add(1)
	}
}
