// Package serve is the HTTP half of tvpd, the simulation-as-a-service
// daemon (cmd/tvpd): a thin, heavily-instrumented resolver that turns
// "workload × machine config × run length" questions into RunRecords
// while doing the minimum possible simulation work.
//
// Every request resolves through a two-tier result store:
//
//  1. an in-memory simcache.Cache — singleflight, so identical in-flight
//     requests coalesce onto one computation (the coalesced counter
//     makes this observable);
//  2. an optional persistent internal/store directory shared between
//     processes, probed before simulating and written after.
//
// Only on a miss in both tiers does the request reach the bounded
// report.Pool and actually simulate, honoring the request context:
// cancellation and deadlines propagate into the cycle loop via
// report.Simulate, and abandoned runs are evicted from the cache so a
// retry recomputes.
//
// The invariant the tiers must preserve: a served RunRecord's bytes are
// identical no matter which tier answered. Provenance lives in the
// X-Tvpd-Source response header and the /v1/status counters, never in
// the record body.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/store"
)

// Source labels, returned in the X-Tvpd-Source header: which tier
// answered the request.
const (
	SourceMemory    = "memory"    // in-memory cache hit
	SourceDisk      = "disk"      // persistent store hit
	SourceComputed  = "computed"  // simulated by this request
	SourceCoalesced = "coalesced" // joined another request's in-flight computation
)

// Config sizes a Server.
type Config struct {
	// Workers is the simulation pool size (<=0: GOMAXPROCS).
	Workers int
	// Queue bounds the pool's pending-job queue (0: hand-off only).
	Queue int
	// Store is the persistent result tier; nil runs memory-only.
	Store *store.Store
}

// Counters is a snapshot of the per-request resolution outcomes.
type Counters struct {
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Simulated uint64 `json:"simulated"`
	Coalesced uint64 `json:"coalesced"`
	Failed    uint64 `json:"failed"`
}

// Server resolves simulation points through the two-tier store. It is
// safe for concurrent use; Close drains the simulation pool.
type Server struct {
	pool  *report.Pool
	store *store.Store
	cache *simcache.Cache[simcache.RunKey, stats.Sim]
	start time.Time

	mu       sync.Mutex
	inflight map[simcache.RunKey]int

	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	simulated atomic.Uint64
	coalesced atomic.Uint64
	failed    atomic.Uint64

	// testHookBeforeSimulate, when set by an in-package test, runs in the
	// singleflight leader after both store tiers missed and before the
	// simulation is submitted — the window the coalescing battle tests
	// hold open to line up joiners deterministically.
	testHookBeforeSimulate func(simcache.RunKey)
}

// New builds a Server over a fresh in-memory cache and pool.
func New(cfg Config) *Server {
	return &Server{
		pool:     report.NewPool(cfg.Workers, cfg.Queue),
		store:    cfg.Store,
		cache:    simcache.New[simcache.RunKey, stats.Sim](),
		start:    now(),
		inflight: make(map[simcache.RunKey]int),
	}
}

// Close drains the simulation pool: jobs already accepted finish,
// further submissions fail. Safe to call more than once.
func (s *Server) Close() { s.pool.Close() }

// Counters returns a snapshot of the resolution counters.
func (s *Server) Counters() Counters {
	return Counters{
		MemHits:   s.memHits.Load(),
		DiskHits:  s.diskHits.Load(),
		Simulated: s.simulated.Load(),
		Coalesced: s.coalesced.Load(),
		Failed:    s.failed.Load(),
	}
}

// Inflight returns the number of requests currently resolving (all
// sources, including joiners waiting on a leader).
func (s *Server) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.inflight {
		n += c
	}
	return n
}

// Resolve answers one simulation point through the tiers, returning the
// counters and the source tier that produced them. The context bounds
// the whole resolution: a deadline or cancellation aborts pool admission
// and stops an in-progress run from inside the cycle loop, and the
// resulting error is never memoized (simcache treats context errors as
// transient), so a retry recomputes.
func (s *Server) Resolve(ctx context.Context, p report.Point) (stats.Sim, string, error) {
	k := p.Key()
	if st, ok := s.cache.Get(k); ok {
		s.memHits.Add(1)
		return st, SourceMemory, nil
	}

	s.mu.Lock()
	joined := s.inflight[k] > 0
	s.inflight[k]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight[k]--
		if s.inflight[k] <= 0 {
			delete(s.inflight, k)
		}
		s.mu.Unlock()
	}()
	if joined {
		s.coalesced.Add(1)
	}

	// source is written only by the singleflight leader (inside fn) and
	// read after Do returns on the same goroutine; joiners keep the
	// default.
	source := SourceCoalesced
	st, err := s.cache.Do(k, func() (stats.Sim, error) {
		if s.store != nil {
			if st, ok := s.store.Get(k); ok {
				s.diskHits.Add(1)
				source = SourceDisk
				return st, nil
			}
		}
		if s.testHookBeforeSimulate != nil {
			s.testHookBeforeSimulate(k)
		}
		var (
			res  stats.Sim
			rerr error
			done = make(chan struct{})
		)
		if err := s.pool.Submit(ctx, func() {
			defer close(done)
			res, rerr = report.Simulate(ctx, p)
		}); err != nil {
			return stats.Sim{}, err
		}
		<-done
		if rerr != nil {
			return stats.Sim{}, rerr
		}
		source = SourceComputed
		s.simulated.Add(1)
		if s.store != nil {
			// Best effort: a full disk must not fail the request — the
			// result is still correct, it just won't be durable.
			_ = s.store.Put(k, res)
		}
		return res, nil
	})
	if err != nil {
		s.failed.Add(1)
		return stats.Sim{}, "", err
	}
	return st, source, nil
}
