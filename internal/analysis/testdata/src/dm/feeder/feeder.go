// Package feeder is the detmap golden for transitive sink reach: it is
// not a sink package, so only functions that (transitively, in-package)
// reach fmt printing or a sink package are checked.
package feeder

import "fmt"

// render feeds report text through emit: output-path, flagged.
func render(m map[string]int) string {
	out := ""
	for k, v := range m { // want "range over map m in output-path function render"
		out += emit(k, v)
	}
	return out
}

func emit(k string, v int) string { return fmt.Sprintf("%s=%d", k, v) }

// pure never reaches any output sink: map order stays internal, not
// flagged even though the loop is order-sensitive.
func pure(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
