package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// cpiConfigs are the machine variants the exact-decomposition invariant
// runs under (the same axes as skipConfigs, without the shadow oracle —
// crosscheck correctness is skip_test.go's job and doubling runtime here
// buys nothing).
func cpiConfigs() map[string]*config.Machine {
	base := config.Default()
	tvp := base.Clone()
	tvp.VP.Mode = config.TVP
	tvp.NineBitIdiom = true
	gvp := base.Clone()
	gvp.VP.Mode = config.GVP
	spsr := base.Clone()
	spsr.SpSR = true
	spsr.NineBitIdiom = true
	return map[string]*config.Machine{"base": base, "tvp": tvp, "gvp": gvp, "spsr": spsr}
}

// TestCPIStackExactDecomposition is the tentpole invariant: across the
// whole workload suite × machine variants, every post-warmup commit slot
// lands in exactly one bucket — Σ buckets == Cycles × CommitWidth — and
// the per-bucket counts are bit-identical with cycle skipping enabled and
// disabled (skipped spans credit buckets delta-at-jump; a classification
// that was not span-invariant would diverge here).
func TestCPIStackExactDecomposition(t *testing.T) {
	var agg = map[string]*struct{ badVP, spsr, mem, structural, skipped uint64 }{}
	for cfgName, cfg := range cpiConfigs() {
		a := &struct{ badVP, spsr, mem, structural, skipped uint64 }{}
		agg[cfgName] = a
		for _, name := range workload.Names() {
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				con := New(cfg, spec.Build())
				con.EnableCPIStack()
				ron := con.Run(1000, 20000)

				want := ron.Stats.Cycles * uint64(cfg.CommitWidth)
				if got := ron.CPI.Total(); got != want {
					t.Errorf("skip-on decomposition: Σ buckets = %d, want Cycles×W = %d×%d = %d\n%+v",
						got, ron.Stats.Cycles, cfg.CommitWidth, want, ron.CPI)
				}

				off := cfg.Clone()
				off.DisableCycleSkip = true
				coff := New(off, spec.Build())
				coff.EnableCPIStack()
				roff := coff.Run(1000, 20000)
				if roff.CPI.Total() != roff.Stats.Cycles*uint64(cfg.CommitWidth) {
					t.Errorf("tick-by-tick decomposition: Σ buckets = %d, want %d",
						roff.CPI.Total(), roff.Stats.Cycles*uint64(cfg.CommitWidth))
				}
				if ron.CPI != roff.CPI {
					t.Errorf("CPI stack diverged between skip on/off:\n on: %+v\noff: %+v", ron.CPI, roff.CPI)
				}

				a.badVP += ron.CPI.BadSpecVP
				a.spsr += ron.CPI.RetiredSpSR
				a.mem += ron.CPI.BackendMemory
				a.structural += ron.CPI.Structural
				a.skipped += con.SkippedCycles()
			})
		}
	}
	// Liveness: the buckets the paper's argument hinges on must actually
	// accumulate somewhere in the suite under the configs that exercise
	// them — an always-zero bucket would make the invariant vacuous.
	if agg["tvp"].badVP == 0 {
		t.Error("bad-speculation-VP never charged under TVP across the suite")
	}
	if agg["spsr"].spsr == 0 {
		t.Error("SpSR retirement credit never charged under SpSR across the suite")
	}
	for cfgName, a := range agg {
		if a.mem == 0 {
			t.Errorf("%s: backend-memory never charged across the suite", cfgName)
		}
		if a.structural == 0 {
			t.Errorf("%s: structural never charged across the suite", cfgName)
		}
		if a.skipped == 0 {
			t.Errorf("%s: cycle skipping never engaged; the span-crediting path went untested", cfgName)
		}
	}
}

// TestCPIStackZeroInterference: enabling CPI accounting must not change a
// single stats.Sim counter, cycle or commit count — it is observation
// only. Run with skipping both on and off so both accounting paths are
// shown inert.
func TestCPIStackZeroInterference(t *testing.T) {
	for _, skip := range []bool{true, false} {
		for cfgName, cfg := range cpiConfigs() {
			c := cfg
			if !skip {
				c = cfg.Clone()
				c.DisableCycleSkip = true
			}
			for _, name := range []string{workload.Names()[0], "605_mcf_s"} {
				spec, err := workload.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				bare := New(c, spec.Build()).Run(1000, 15000)
				con := New(c, spec.Build())
				con.EnableCPIStack()
				res := con.Run(1000, 15000)
				if !reflect.DeepEqual(bare.Stats, res.Stats) ||
					bare.Cycles != res.Cycles || bare.Committed != res.Committed {
					t.Errorf("%s/%s skip=%v: run changed with CPI accounting on:\nbare: %+v\n cpi: %+v",
						cfgName, name, skip, bare.Stats, res.Stats)
				}
			}
		}
	}
}

// TestCPIStackOffByDefault: without EnableCPIStack or a CPIProbe the
// accounting never arms and Result.CPI stays zero.
func TestCPIStackOffByDefault(t *testing.T) {
	spec, err := workload.Get(workload.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	res := New(config.Default(), spec.Build()).Run(1000, 10000)
	if res.CPI != (stats.CPIStack{}) {
		t.Fatalf("CPI stack accumulated without being enabled: %+v", res.CPI)
	}
}
