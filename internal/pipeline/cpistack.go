package pipeline

// Top-down CPI-stack accounting (DESIGN.md §8).
//
// Every post-warmup cycle offers CommitWidth commit slots. Slots that
// retire a µop are Retiring (or RetiredSpSR for SpSR-eliminated µops —
// the strength-reduction credit); the remaining idle slots of the cycle
// are attributed to one bucket by classifyIdle, which asks the same
// question as a hardware top-down counter: what is blocking the ROB head
// right now?
//
// The invariant is exact by construction: each executed cycle contributes
// retired + spsr + idle == CommitWidth slots, each skipped span
// contributes delta × CommitWidth slots, and c.st.Cycles advances by 1
// and delta at exactly those points — so Σ buckets == Cycles × CommitWidth
// always, enforced across the suite by TestCPIStackExactDecomposition.
//
// Composition with cycle skipping: a span skipped by trySkip is credited
// delta-at-jump with the classification of its first cycle. That is
// bit-identical to classifying every cycle of the span one by one
// because every classifier input is frozen while the span is idle:
//   - robCnt, the head µop, its state and isLoad/isStore only change in
//     commit/rename/flush, which are provably inactive;
//   - waitBranchSeq resolves only in complete/applyReduction (inactive),
//     haltSeen is set by fetch (idle) and cleared by flush (inactive);
//   - redirectCause is set by flushes and cleared by rename (inactive);
//   - fetchStallUntil > cycle holds across the span whenever it held at
//     the first cycle: trySkip's wake bound includes fetchStallUntil
//     under exactly the classifier's guard order (no halt, no branch
//     wait), so the jump never crosses the stall's expiry;
//   - the structural flag: a rename/dispatch block persists for the whole
//     span (queues drain only through inactive stages), and trySkip's
//     renROB/renPRF/dispBlock flags are computed from the same conditions
//     that make renameStage/dispatch bump a stall counter every ticked
//     cycle.
//
// Accounting is armed at the warmup boundary (armObservers) so the stack
// decomposes the post-warmup Cycles total exactly. Detached cost is one
// nil-check per cycle plus one branch per retired µop, guarded by
// make bench-guard.

import "repro/internal/stats"

// redirectCause remembers which flush kind most recently redirected the
// frontend, so empty-ROB refill cycles are charged to the speculation
// (or memory ordering) that caused them. Cleared when rename next
// delivers a µop into the ROB: from that point the refill is over and
// head-blocked classification takes back over. Maintained unconditionally
// (flushes are rare); read only by the classifier.
const (
	redirectNone uint8 = iota
	redirectVP
	redirectMem
)

// cpiAcct is the per-run accounting state, allocated at arming time so
// the detached hot path stays pointer-nil cheap.
type cpiAcct struct {
	st stats.CPIStack
	// Per-cycle retirement tally, reset by cpiBegin, consumed by
	// cpiAccount.
	retired uint64
	spsr    uint64
	// stallBase snapshots the structural-stall counter sum at cycle
	// start; movement by cycle end marks the cycle's idle slots
	// Structural.
	stallBase uint64
}

// EnableCPIStack arms commit-slot accounting for this core's next Run
// (post-warmup, like all stats). Attaching a CPIProbe arms it too; this
// switch exists for probe-less runs that want Result.CPI.
func (c *Core) EnableCPIStack() { c.cpiOn = true }

// armObservers is called at the measurement start (the warmup boundary,
// or run start when warmup is 0): it allocates the CPI accounting block,
// arms the probe's event hooks, and delivers the baseline sample.
// Returns the interval-sampling period and first boundary (0,0 when
// interval sampling is off).
func (c *Core) armObservers() (probeEvery, probeNext uint64) {
	if c.cpiOn || c.cpiProbe != nil {
		c.acct = &cpiAcct{}
		c.cpiHooks = c.cpiProbe
	}
	if c.probe == nil {
		return 0, 0
	}
	c.hooks = c.probe
	c.syncMemStats()
	c.cpiSample()
	c.probe.Sample(c.committed, c.cycle, &c.st)
	if probeEvery = c.probe.SampleEvery(); probeEvery > 0 {
		probeNext = c.committed + probeEvery
	}
	return probeEvery, probeNext
}

// cpiSample delivers the accumulated CPI stack to the probe, immediately
// before every counter Sample so the probe's interval deltas line up
// with the stats.Sim deltas.
func (c *Core) cpiSample() {
	if c.cpiHooks != nil {
		c.cpiHooks.CPISample(c.committed, c.cycle, &c.acct.st)
	}
}

// stallSum is the structural-stall counter total; per-cycle movement is
// the ticked-path equivalent of trySkip's renROB/renPRF/dispBlock flags.
//tvp:hotpath
func (c *Core) stallSum() uint64 {
	return c.st.ROBFullStalls + c.st.IQFullStalls + c.st.LQFullStalls +
		c.st.SQFullStalls + c.st.PRFEmptyStalls
}

// cpiBegin opens one executed cycle's accounting. Runs after trySkip so
// the stall-counter snapshot excludes any delta-at-jump credit.
//tvp:hotpath
func (c *Core) cpiBegin() {
	a := c.acct
	a.retired, a.spsr = 0, 0
	a.stallBase = c.stallSum()
}

// cpiAccount closes one executed cycle: retirement slots are banked and
// the cycle's idle slots are classified against end-of-cycle state —
// the same state trySkip would have inspected at the top of the next
// step, so executed-cycle and skipped-span attribution agree.
//tvp:hotpath
func (c *Core) cpiAccount() {
	a := c.acct
	a.st.Retiring += a.retired
	a.st.RetiredSpSR += a.spsr
	idle := uint64(c.cfg.CommitWidth) - (a.retired + a.spsr)
	if idle == 0 {
		return
	}
	*c.classifyIdle(c.cycle, c.stallSum() != a.stallBase) += idle
	if c.robCnt > 0 && c.cpiHooks != nil {
		h := &c.rob[c.robHead]
		c.cpiHooks.CommitStall(c.crack[h.sIdx].pc, c.instOf(h), idle)
	}
}

// cpiSkip credits a whole skipped span (delta cycles starting at cycle n)
// in one jump, classified exactly as cycle n would have been ticked; see
// the span-invariance argument in the file comment. structural mirrors
// the renROB/renPRF/dispBlock flags trySkip derived for the span.
//tvp:hotpath
func (c *Core) cpiSkip(n, delta uint64, structural bool) {
	slots := delta * uint64(c.cfg.CommitWidth)
	*c.classifyIdle(n, structural) += slots
	if c.robCnt > 0 && c.cpiHooks != nil {
		h := &c.rob[c.robHead]
		c.cpiHooks.CommitStall(c.crack[h.sIdx].pc, c.instOf(h), slots)
	}
}

// classifyIdle picks the bucket for a cycle's idle commit slots, by
// priority:
//
//  1. Structural — rename/dispatch blocked on a full ROB/IQ/LQ/SQ or an
//     empty PRF this cycle: µops exist but cannot enter the window.
//  2. Flush recovery — from a flush until rename delivers the first
//     post-flush µop (redirectCause), idle slots are the flush's
//     recovery bubble (the top-down "bad speculation" recovery term):
//     bad-spec-VP for value-misprediction flushes, backend-memory for
//     memory-order flushes. Charged regardless of ROB occupancy — the
//     surviving older µops keep committing, but the slots they leave
//     idle exist because the squashed work must be refetched.
//  3. ROB empty: the frontend owes the backend work — waiting on an
//     unresolved mispredicted branch → bad-spec-branch; halted or
//     simply behind → frontend-bandwidth; stalled on an L1I miss or a
//     taken-branch/BTB bubble → frontend-latency.
//  4. ROB non-empty: charged to what the head µop is doing — executing
//     a memory access → backend-memory; anything else (waiting in the
//     scheduler, executing a non-memory op, or completed with its
//     result still in flight) → backend-core.
//tvp:hotpath
func (c *Core) classifyIdle(at uint64, structural bool) *uint64 {
	a := &c.acct.st
	switch {
	case structural:
		return &a.Structural
	case c.redirectCause == redirectVP:
		return &a.BadSpecVP
	case c.redirectCause == redirectMem:
		return &a.BackendMemory
	}
	if c.robCnt == 0 {
		switch {
		case c.waitBranchSeq != 0:
			return &a.BadSpecBranch
		case c.haltSeen:
			return &a.FrontendBandwidth
		case c.fetchStallUntil > at:
			return &a.FrontendLatency
		default:
			return &a.FrontendBandwidth
		}
	}
	h := &c.rob[c.robHead]
	if (h.isLoad || h.isStore) && h.state >= stIssued {
		return &a.BackendMemory
	}
	return &a.BackendCore
}

// CPIStackTotals exposes the accumulated post-warmup stack (zero before
// arming or when accounting is off). Primarily for tests; runs normally
// read Result.CPI.
func (c *Core) CPIStackTotals() stats.CPIStack {
	if c.acct == nil {
		return stats.CPIStack{}
	}
	return c.acct.st
}
