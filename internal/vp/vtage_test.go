package vp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func newPred(mode config.VPMode) *Predictor {
	cfg := config.Default().VP
	cfg.Mode = mode
	return New(cfg)
}

// trainStable feeds n instances of a stable value at pc and returns the
// final lookup.
func trainStable(p *Predictor, pc, v uint64, n int) Lookup {
	var l Lookup
	for i := 0; i < n; i++ {
		l = p.Predict(pc)
		p.Train(l, v)
	}
	return p.Predict(pc)
}

func TestStableValueSaturates(t *testing.T) {
	for _, mode := range []config.VPMode{config.MVP, config.TVP, config.GVP} {
		p := newPred(mode)
		l := trainStable(p, 0x400100, 0, 600)
		if !l.Confident || l.Value != 0 {
			t.Errorf("%v: stable 0 not confidently predicted after 600 instances (conf=%v val=%d)",
				mode, l.Confident, l.Value)
		}
		p.Train(l, 0) // balance the last Predict
	}
}

func TestAlternatingValueNeverConfident(t *testing.T) {
	p := newPred(config.GVP)
	pc := uint64(0x400200)
	confident := 0
	for i := 0; i < 4000; i++ {
		l := p.Predict(pc)
		if l.Confident {
			confident++
		}
		p.Train(l, uint64(i%2)) // alternates 0,1
	}
	// FPC with 1/16 increments requires ~112 consecutive corrects; an
	// alternating value resets constantly.
	if confident > 40 {
		t.Errorf("alternating value was confident %d times", confident)
	}
}

func TestModeRepresentability(t *testing.T) {
	mvp, tvp, gvp := newPred(config.MVP), newPred(config.TVP), newPred(config.GVP)
	cases := []struct {
		v             uint64
		mvp, tvp, gvp bool
	}{
		{0, true, true, true},
		{1, true, true, true},
		{2, false, true, true},
		{255, false, true, true},
		{256, false, false, true},
		{uint64(1) << 40, false, false, true},
		{^uint64(0), false, false, true}, // -1: MVP no, TVP yes? (-1 is 9-bit signed)
	}
	// -1 is representable by 9-bit signed inlining.
	cases[len(cases)-1].tvp = true
	for _, c := range cases {
		if got := mvp.Representable(c.v); got != c.mvp {
			t.Errorf("MVP Representable(%#x) = %v", c.v, got)
		}
		if got := tvp.Representable(c.v); got != c.tvp {
			t.Errorf("TVP Representable(%#x) = %v", c.v, got)
		}
		if got := gvp.Representable(c.v); got != c.gvp {
			t.Errorf("GVP Representable(%#x) = %v", c.v, got)
		}
	}
}

func TestInlineRepresentableProperty(t *testing.T) {
	f := func(v int64) bool {
		want := v >= -256 && v <= 255
		return InlineRepresentable(uint64(v)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMVPFiltersWideValues(t *testing.T) {
	p := newPred(config.MVP)
	pc := uint64(0x400300)
	// A stable wide value is unrepresentable for MVP: it must never
	// become a confident *correct* prediction.
	for i := 0; i < 3000; i++ {
		l := p.Predict(pc)
		if l.Confident && l.Value == 42 {
			t.Fatal("MVP produced a confident prediction of a wide value")
		}
		p.Train(l, 42)
	}
}

func TestTVPQuantizeSignExtends(t *testing.T) {
	p := newPred(config.TVP)
	neg := uint64(math.MaxUint64) // -1
	if got := p.quantize(neg); got != neg {
		t.Errorf("quantize(-1) = %#x, want %#x", got, neg)
	}
	if got := p.quantize(255); got != 255 {
		t.Errorf("quantize(255) = %d", got)
	}
}

func TestSilencing(t *testing.T) {
	p := newPred(config.TVP)
	if p.Silenced(100) {
		t.Error("fresh predictor should not be silenced")
	}
	p.Silence(1000)
	want := uint64(1000 + config.Default().VP.SilenceCycles)
	if !p.Silenced(want-1) || p.Silenced(want) {
		t.Error("silencing window boundary wrong")
	}
	// A later silence extends; an earlier one does not shrink.
	p.Silence(2000)
	p.Silence(500)
	if !p.Silenced(2000 + uint64(config.Default().VP.SilenceCycles) - 1) {
		t.Error("silence must extend to the latest window")
	}
}

func TestStorageMatchesPaper(t *testing.T) {
	// §3.3: the Table 2 VTAGE geometry costs 55.2 KB with 64-bit
	// predictions, 13.9 KB with 9-bit, 7.9 KB with 1-bit.
	for _, tc := range []struct {
		mode config.VPMode
		kb   float64
	}{
		{config.GVP, 55.2}, {config.TVP, 13.9}, {config.MVP, 7.9},
	} {
		got := newPred(tc.mode).StorageKB()
		if math.Abs(got-tc.kb) > 0.15 {
			t.Errorf("%v storage = %.2f KB, want ≈ %.1f KB", tc.mode, got, tc.kb)
		}
	}
}

func TestStorageOrdering(t *testing.T) {
	mvp := newPred(config.MVP).StorageBits()
	tvp := newPred(config.TVP).StorageBits()
	gvp := newPred(config.GVP).StorageBits()
	if !(mvp < tvp && tvp < gvp) {
		t.Errorf("storage ordering violated: %d %d %d", mvp, tvp, gvp)
	}
}

func TestBudgetScaling(t *testing.T) {
	base := config.Default()
	small := base.WithVPBudgetScale(-1)
	cfgB, cfgS := base.VP, small.VP
	cfgB.Mode, cfgS.Mode = config.GVP, config.GVP
	b, s := New(cfgB).StorageBits(), New(cfgS).StorageBits()
	if s >= b {
		t.Errorf("halved geometry not smaller: %d vs %d", s, b)
	}
	ratio := float64(b) / float64(s)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("scale ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestTrainRecoversAfterValueChange(t *testing.T) {
	p := newPred(config.GVP)
	pc := uint64(0x400400)
	trainStableN := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			l := p.Predict(pc)
			p.Train(l, v)
		}
	}
	trainStableN(7, 600)
	if l := p.Predict(pc); !l.Confident || l.Value != 7 {
		t.Fatal("did not learn first value")
	} else {
		p.Train(l, 7)
	}
	trainStableN(1234, 800)
	l := p.Predict(pc)
	if !l.Confident || l.Value != 1234 {
		t.Errorf("did not re-learn after phase change: conf=%v val=%d", l.Confident, l.Value)
	}
	p.Train(l, 1234)
}

func TestHistoryDistinguishesContexts(t *testing.T) {
	// The same PC producing context-dependent values: with global branch
	// history, VTAGE's tagged tables can separate the contexts.
	p := newPred(config.GVP)
	pc := uint64(0x400500)
	correct, used := 0, 0
	for i := 0; i < 20000; i++ {
		ctx := i % 2
		p.PushHistory(ctx == 1)
		p.PushHistory(ctx == 0)
		p.PushHistory(true)
		l := p.Predict(pc)
		v := uint64(100 + ctx)
		if i > 10000 && l.Confident {
			used++
			if l.Value == v {
				correct++
			}
		}
		p.Train(l, v)
	}
	if used == 0 {
		t.Skip("no confident predictions formed; context too hard for this geometry")
	}
	if acc := float64(correct) / float64(used); acc < 0.95 {
		t.Errorf("context accuracy = %.3f (%d/%d)", acc, correct, used)
	}
}

func TestPredBits(t *testing.T) {
	if newPred(config.MVP).PredBits() != 1 ||
		newPred(config.TVP).PredBits() != 9 ||
		newPred(config.GVP).PredBits() != 64 {
		t.Error("per-entry prediction widths wrong (§3.3)")
	}
}

func TestDynamicSilencingBacksOff(t *testing.T) {
	cfg := config.Default().VP
	cfg.Mode = config.MVP
	cfg.DynamicSilence = true
	cfg.SilenceCycles = 20
	p := New(cfg)
	// First misprediction: window = 20.
	p.Silence(1000)
	if !p.Silenced(1019) || p.Silenced(1020) {
		t.Error("first dynamic window must equal the configured base")
	}
	// Second misprediction: window doubled to 40.
	p.Silence(2000)
	if !p.Silenced(2039) || p.Silenced(2040) {
		t.Error("second dynamic window must double")
	}
	// The window is capped at 8×.
	for i := 0; i < 10; i++ {
		p.Silence(uint64(3000 + i*10000))
	}
	p.Silence(200000)
	if p.Silenced(200000 + 8*20) {
		t.Error("dynamic window must cap at 8× the base")
	}
}

func TestDynamicSilencingDecays(t *testing.T) {
	cfg := config.Default().VP
	cfg.Mode = config.GVP
	cfg.DynamicSilence = true
	cfg.SilenceCycles = 64
	p := New(cfg)
	for i := 0; i < 6; i++ {
		p.Silence(uint64(i) * 100000)
	}
	// Accumulate correct trainings on a stable value to shrink the window.
	pc := uint64(0x400800)
	for i := 0; i < 3*1024+300; i++ {
		l := p.Predict(pc)
		p.Train(l, 9)
	}
	p.Silence(10_000_000)
	// After ≥3 decays from the 512-cap the window is at most 128.
	if p.Silenced(10_000_000 + 129) {
		t.Error("window did not decay after sustained correct predictions")
	}
}
