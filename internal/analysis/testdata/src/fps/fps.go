// Package fps is the fingerprintsafe golden: a Machine-like config
// struct mixing fingerprintable value fields with every rejected kind.
package fps

// Machine mirrors config.Machine's role: the %#v fingerprint root.
type Machine struct {
	Width  int
	Name   string
	Ratio  float64
	Flags  [4]bool
	Nested Sub
	Tables []Sub
	Scale  []uint

	BadPtr    *int           // want "fingerprint-unsafe field Machine.BadPtr: pointer"
	BadMap    map[string]int // want "fingerprint-unsafe field Machine.BadMap: map"
	BadFunc   func() int     // want "fingerprint-unsafe field Machine.BadFunc: func"
	BadChan   chan int       // want "fingerprint-unsafe field Machine.BadChan: channel"
	BadIface  interface{}    // want "fingerprint-unsafe field Machine.BadIface: interface"
	BadSlice  []*int         // want `fingerprint-unsafe field Machine.BadSlice\[\]: pointer`
	unexpPtr  *int           // want "fingerprint-unsafe field Machine.unexpPtr: pointer"
	CleanLast uint64
}

// Sub is reached through both Nested and Tables; its violation is
// reported once (at the first reaching field) thanks to the named-type
// visit guard.
type Sub struct {
	OK  uint64
	Ptr *uint64 // want "fingerprint-unsafe field Machine.Nested.Ptr: pointer"
}

// Other is not reachable from Machine: no findings however bad it is.
type Other struct {
	P *int
	M map[int]func()
}
