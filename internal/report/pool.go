package report

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Pool.Submit after Close.
var ErrPoolClosed = errors.New("report: pool closed")

// Pool is a bounded worker pool for simulation jobs. It is the pool that
// runAll's sweep fan-out runs on, extracted so long-lived callers (the
// tvpd daemon) can keep one pool across requests: a fixed number of
// workers executes jobs from a bounded queue, so the number of
// concurrently executing simulations — and therefore peak memory — is
// capped no matter how many requests are in flight. Submit blocks while
// the queue is full, which is the daemon's backpressure: a request
// waiting for a queue slot can still be abandoned through its context.
type Pool struct {
	jobs    chan func()
	done    chan struct{}
	workers int
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool starts a pool of workers goroutines consuming a queue of
// queue pending jobs. workers <= 0 means runtime.NumCPU(); queue < 0 is
// treated as 0 (direct hand-off, no buffering).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), queue), done: make(chan struct{}), workers: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case j := <-p.jobs:
			j()
		case <-p.done:
			// Drain: queued jobs were accepted before Close and still run
			// (graceful drain — the daemon's SIGTERM path relies on it).
			for {
				select {
				case j := <-p.jobs:
					j()
				default:
					return
				}
			}
		}
	}
}

// Submit enqueues j, blocking while the queue is full. It fails with
// ctx's error if the context ends first, or ErrPoolClosed after Close.
func (p *Pool) Submit(ctx context.Context, j func()) error {
	select {
	case <-p.done:
		return ErrPoolClosed
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case p.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPoolClosed
	}
}

// Close stops accepting new jobs, runs everything already queued, and
// waits for the workers to finish. Safe to call more than once.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth reports the current and maximum number of queued (not yet
// started) jobs — surfaced by the daemon's /v1/status endpoint.
func (p *Pool) QueueDepth() (queued, capacity int) { return len(p.jobs), cap(p.jobs) }
