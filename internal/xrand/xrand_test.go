package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestOneInRate(t *testing.T) {
	r := New(123)
	hits := 0
	const n = 160000
	for i := 0; i < n; i++ {
		if r.OneIn(16) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.055 || rate > 0.07 {
		t.Errorf("OneIn(16) rate = %.4f, want ≈ 0.0625", rate)
	}
	if !r.OneIn(1) || !r.OneIn(0) {
		t.Error("OneIn(n<=1) must always be true")
	}
}

func TestUint64nProperty(t *testing.T) {
	r := New(5)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBalance(t *testing.T) {
	r := New(77)
	var ones [64]int
	const n = 4096
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			ones[b] += int(v >> b & 1)
		}
	}
	for b := 0; b < 64; b++ {
		frac := float64(ones[b]) / n
		if frac < 0.42 || frac > 0.58 {
			t.Errorf("bit %d biased: %.3f", b, frac)
		}
	}
}
