package verify_test

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/verify"
	"repro/internal/prog"
)

// cfgExpect pins down the feasible CFG a construction must produce:
// exact successor sets for chosen instructions, indices that must stay
// unreachable, and whether the program passes overall.
type cfgExpect struct {
	succs       map[int][]int
	unreachable []int
	ok          bool
}

// TestCFGConstruction is the table-driven CFG golden set: each case
// builds one control-flow idiom and asserts the verifier recovers its
// exact edge structure (not merely a sound over-approximation).
func TestCFGConstruction(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*prog.Program, cfgExpect)
	}{
		{"jump table enumerates all arms", func() (*prog.Program, cfgExpect) {
			// The fuzzgen computed-goto idiom with a loop-carried index:
			// the BR must resolve to exactly the four table arms.
			b := prog.NewBuilder("cfg_jt")
			jt := b.AllocWords(4)
			var arms [4]prog.Label
			join := b.NewLabel()
			loop := b.NewLabel()
			for i := range arms {
				arms[i] = b.NewLabel()
				b.SetWordLabel(jt+uint64(i)*8, arms[i])
			}
			b.MovImm(isa.X0, 0)
			b.Bind(loop)
			b.AndI(isa.X1, isa.X0, 3)
			b.MovAddr(isa.X2, jt)
			b.LdrR(isa.X3, isa.X2, isa.X1, 3, 8)
			brIdx := b.Len()
			b.Br(isa.X3)
			armIdx := make([]int, 4)
			for i := range arms {
				b.Bind(arms[i])
				armIdx[i] = b.Len()
				b.B(join)
			}
			b.Bind(join)
			b.AddI(isa.X0, isa.X0, 1)
			b.CmpI(isa.X0, 4)
			b.BCond(isa.NE, loop)
			b.Halt()
			return b.Build(), cfgExpect{ok: true, succs: map[int][]int{brIdx: armIdx}}
		}},
		{"ret fans out to its call sites", func() (*prog.Program, cfgExpect) {
			// Two BL sites into one leaf: the RET's successor set is the
			// union of both return points, and each BL has exactly the
			// leaf entry as successor (the fall-through is not an edge).
			b := prog.NewBuilder("cfg_ret")
			leaf := b.NewLabel()
			b.Bl(leaf) // 0
			b.Bl(leaf) // 1
			b.Halt()   // 2
			b.Bind(leaf)
			leafIdx := b.Len()
			b.AddI(isa.X0, isa.X0, 1)
			retIdx := b.Len()
			b.Ret()
			return b.Build(), cfgExpect{ok: true, succs: map[int][]int{
				0:      {leafIdx},
				1:      {leafIdx},
				retIdx: {1, 2},
			}}
		}},
		{"infeasible edge prunes a branch arm", func() (*prog.Program, cfgExpect) {
			// CBZ on a register proven zero: only the taken edge exists,
			// and the dead fall-through block is reported unreachable.
			b := prog.NewBuilder("cfg_cbz")
			tgt := b.NewLabel()
			b.MovImm(isa.X0, 0)
			cbzIdx := b.Len()
			b.Cbz(isa.X0, tgt)
			deadIdx := b.Len()
			b.AddI(isa.X1, isa.X1, 7)
			b.Bind(tgt)
			tgtIdx := b.Len()
			b.Halt()
			return b.Build(), cfgExpect{
				ok:          true,
				succs:       map[int][]int{cbzIdx: {tgtIdx}},
				unreachable: []int{deadIdx},
			}
		}},
		{"dead region behind an unconditional branch", func() (*prog.Program, cfgExpect) {
			b := prog.NewBuilder("cfg_dead")
			over := b.NewLabel()
			b.B(over) // 0
			dead0 := b.Len()
			b.AddI(isa.X0, isa.X0, 1)
			b.AddI(isa.X0, isa.X0, 2)
			b.Bind(over)
			b.Halt()
			return b.Build(), cfgExpect{
				ok:          true,
				succs:       map[int][]int{0: {3}},
				unreachable: []int{dead0, dead0 + 1},
			}
		}},
		{"masked indirect branch stays inside the text", func() (*prog.Program, cfgExpect) {
			// BR through a two-entry table indexed by an unknown-feasible
			// bit: both arms appear, nothing else does.
			b := prog.NewBuilder("cfg_mask")
			jt := b.AllocWords(2)
			a0, a1 := b.NewLabel(), b.NewLabel()
			loop := b.NewLabel()
			b.SetWordLabel(jt, a0)
			b.SetWordLabel(jt+8, a1)
			b.MovImm(isa.X0, 0)
			b.Bind(loop)
			b.AndI(isa.X1, isa.X0, 1)
			b.MovAddr(isa.X2, jt)
			b.LdrR(isa.X3, isa.X2, isa.X1, 3, 8)
			brIdx := b.Len()
			b.Br(isa.X3)
			b.Bind(a0)
			arm0 := b.Len()
			join := b.NewLabel()
			b.B(join)
			b.Bind(a1)
			arm1 := b.Len()
			b.Nop()
			b.Bind(join)
			b.AddI(isa.X0, isa.X0, 1)
			b.CmpI(isa.X0, 2)
			b.BCond(isa.NE, loop)
			b.Halt()
			return b.Build(), cfgExpect{ok: true, succs: map[int][]int{brIdx: {arm0, arm1}}}
		}},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, want := c.build()
			res := verify.Program(p, verify.Options{})
			if got := res.OK(); got != want.ok {
				for _, d := range res.Diags {
					t.Logf("diag: %s", d)
				}
				t.Fatalf("OK() = %v, want %v", got, want.ok)
			}
			for idx, succs := range want.succs {
				got := append([]int(nil), res.Succs[idx]...)
				sort.Ints(got)
				wantS := append([]int(nil), succs...)
				sort.Ints(wantS)
				if !equalInts(got, wantS) {
					t.Errorf("succs[%d] = %v, want %v", idx, got, wantS)
				}
			}
			for _, idx := range want.unreachable {
				if res.Reachable[idx] {
					t.Errorf("instruction %d reachable, want unreachable", idx)
				}
			}
			// Every unreachable index must also be called out by an
			// unreachable Info diagnostic covering it.
			for _, idx := range want.unreachable {
				if !coveredByUnreachableDiag(res, idx) {
					t.Errorf("no unreachable diagnostic covers instruction %d", idx)
				}
			}
		})
	}
}

func coveredByUnreachableDiag(res *verify.Result, idx int) bool {
	for _, d := range res.Diags {
		if d.Check == "unreachable" && d.Sev == verify.Info && d.Index <= idx {
			// The diagnostic reports a run starting at d.Index; confirm
			// the run actually extends to idx via reachability.
			covered := true
			for i := d.Index; i <= idx; i++ {
				if res.Reachable[i] {
					covered = false
					break
				}
			}
			if covered {
				return true
			}
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
