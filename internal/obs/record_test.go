package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// fillSim sets every counter to a distinct nonzero value via reflection,
// so any field dropped by serialization or delta math shows up as a
// mismatch on that specific field. It also guards the assumption the
// telemetry layer makes about stats.Sim: every exported field is a
// uint64 counter.
func fillSim(t *testing.T, offset uint64) stats.Sim {
	t.Helper()
	var st stats.Sim
	v := reflect.ValueOf(&st).Elem()
	ty := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := ty.Field(i)
		if !f.IsExported() {
			t.Fatalf("stats.Sim has unexported field %s; telemetry serialization would drop it", f.Name)
		}
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("stats.Sim field %s is %s, not uint64; update obs for it", f.Name, f.Type)
		}
		v.Field(i).SetUint(offset + uint64(i) + 1)
	}
	return st
}

// TestRunRecordCountersSurviveJSON is the schema guard: every exported
// stats.Sim counter must survive a RunRecord JSON round-trip unchanged.
func TestRunRecordCountersSurviveJSON(t *testing.T) {
	totals := fillSim(t, 0)
	rec := NewRunRecord(RunMeta{
		Workload: "guard", Cfg: config.Default(), Warmup: 7, Insts: 11,
	}, totals)

	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}

	want := reflect.ValueOf(totals)
	got := reflect.ValueOf(back.Totals)
	for i := 0; i < want.NumField(); i++ {
		name := want.Type().Field(i).Name
		if want.Field(i).Uint() != got.Field(i).Uint() {
			t.Errorf("counter %s: %d before JSON, %d after", name, want.Field(i).Uint(), got.Field(i).Uint())
		}
	}
	if back.Schema != RunSchema {
		t.Errorf("schema %q, want %q", back.Schema, RunSchema)
	}
	if back.ConfigFP == "" || back.ConfigFP != config.Default().Fingerprint() {
		t.Errorf("config fingerprint not preserved: %q", back.ConfigFP)
	}
}

// TestSamplerDeltaCoversEveryCounter guards the interval-delta path:
// every counter accumulated between two snapshots must appear in the
// sample's Delta (i.e. stats.Sub covers the whole struct).
func TestSamplerDeltaCoversEveryCounter(t *testing.T) {
	base := fillSim(t, 0)
	end := fillSim(t, 1000)

	s := NewSampler(100)
	s.Observe(0, 0, &base)
	s.Observe(100, 250, &end)
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	want := stats.Sub(&end, &base)
	wv := reflect.ValueOf(want)
	gv := reflect.ValueOf(samples[0].Delta)
	for i := 0; i < wv.NumField(); i++ {
		name := wv.Type().Field(i).Name
		if wv.Field(i).Uint() != gv.Field(i).Uint() {
			t.Errorf("delta counter %s: want %d, got %d", name, wv.Field(i).Uint(), gv.Field(i).Uint())
		}
		// fillSim guarantees every field moved by exactly 1000.
		if gv.Field(i).Uint() != 1000 {
			t.Errorf("delta counter %s = %d, want 1000 (field missed by Sub?)", name, gv.Field(i).Uint())
		}
	}
}

func TestSweepLogDedupAndCounters(t *testing.T) {
	l := NewSweepLog()
	cfg := config.Default()
	meta := RunMeta{Workload: "w", Cfg: cfg, Warmup: 10, Insts: 100}
	var st stats.Sim
	st.ArchInsts = 100

	l.Add(meta, st) // fresh simulation
	cachedMeta := meta
	cachedMeta.Cached = true
	l.Add(cachedMeta, st) // same point recalled
	other := meta
	other.Workload = "w2"
	l.Add(other, st)

	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d unique records, want 2", len(recs))
	}
	if !recs[0].Cached {
		t.Error("first point saw a cache recall; record should be marked cached")
	}
	sw := l.Sweep(5, 2)
	if sw.Runs != 3 || sw.CachedRuns != 1 || sw.UniquePoints != 2 {
		t.Errorf("sweep counters: %+v", sw)
	}
	if sw.SimcacheHits != 5 || sw.SimcacheMiss != 2 {
		t.Errorf("simcache counters not folded in: %+v", sw)
	}
	// Two fresh runs of warmup 10 + insts 100 each.
	if sw.SimInsts != 220 {
		t.Errorf("simulated insts %d, want 220", sw.SimInsts)
	}
	if sw.Schema != SweepSchema {
		t.Errorf("schema %q, want %q", sw.Schema, SweepSchema)
	}
}

func TestSweepLogWriteDir(t *testing.T) {
	dir := t.TempDir()
	l := NewSweepLog()
	l.Add(RunMeta{Workload: "w", Cfg: config.Default(), Warmup: 1, Insts: 2}, stats.Sim{})
	if err := l.WriteDir(dir, 1, 1); err != nil {
		t.Fatal(err)
	}
	fp := config.Default().Fingerprint()[:12]
	for _, name := range []string{"000_w_" + fp + ".json", "sweep.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !json.Valid(b) {
			t.Errorf("%s: invalid JSON", name)
		}
	}
}
