package pipeline

import (
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/rename"
)

// fetch models the 16-wide fetch stage: it pulls correct-path instructions
// from the stream, probes the branch predictors and the value predictor
// (once per dynamic instance), enforces taken-branch and BTB-mistarget
// bubbles, stalls behind mispredicted branches until they resolve, and
// charges L1I/ITLB latency per fetched line.
//tvp:hotpath
func (c *Core) fetch() {
	if c.haltSeen || c.cycle < c.fetchStallUntil || c.waitBranchSeq != 0 {
		return
	}
	for fetched := 0; fetched < c.cfg.FetchWidth && c.fetchQ.len() < c.cfg.FetchQueue; fetched++ {
		d := c.stream.Peek()
		if d == nil {
			c.haltSeen = true
			return
		}
		if d.Inst.Op == isa.HALT {
			c.stream.Advance()
			c.haltSeen = true
			return
		}

		// Instruction cache: charge when crossing into a new line.
		line := d.PC &^ 63
		if line != c.curFetchLine {
			lat := c.tlbs.Translate(d.PC, true)
			ready := c.mem.L1I.Access(d.PC, c.cycle+lat, false, false)
			c.curFetchLine = line
			if ready > c.cycle+uint64(c.cfg.L1I.LoadToUse) {
				// Miss: stall fetch until the fill returns.
				c.fetchStallUntil = ready
				return
			}
		}

		p, fresh := c.pred(d.Seq)
		if fresh {
			c.firstFetch(d, p)
		}

		c.stream.Advance()
		f := c.fetchQ.pushSlot()
		f.seq = d.Seq
		f.fetchCycle = c.cycle
		f.sIdx = int32(d.Index)
		c.st.FetchedInsts++

		if c.crack[d.Index].flags&cfBranch != 0 {
			if p.bpMispred {
				// Fetch cannot proceed past a mispredicted branch until
				// it resolves (trace-driven discipline: the wrong path is
				// not simulated, its cost is this stall).
				c.waitBranchSeq = d.Seq + 1
				return
			}
			if d.Taken {
				bubble := uint64(c.cfg.TakenBranchPenalty)
				if p.btbMiss {
					bubble = uint64(c.cfg.DecodeMistarget)
				}
				c.fetchStallUntil = c.cycle + 1 + bubble
				c.curFetchLine = ^uint64(0)
				return
			}
		}
	}
}

// firstFetch performs the once-per-dynamic-instance predictor work:
// conditional direction prediction (TAGE), target prediction (BTB, RAS,
// indirect cache), global history maintenance for both TAGE and VTAGE, and
// the value predictor probe.
//tvp:hotpath
func (c *Core) firstFetch(d *emu.DynInst, p *predInfo) {
	in := d.Inst
	switch {
	case isa.IsCondBranch(in.Op):
		c.st.BranchLookups++
		pr := c.tage.Predict(d.PC)
		p.bpMispred = pr.Taken != d.Taken
		if p.bpMispred {
			c.st.BranchMispredicts++
			if c.hooks != nil {
				c.hooks.BranchMispredict(d.PC, in)
			}
		}
		c.tage.Train(d.PC, pr, d.Taken)
		if c.vpred != nil {
			c.vpred.PushHistory(d.Taken)
		}
		if d.Taken {
			if tgt, ok := c.btb.Lookup(d.PC); !ok || tgt != d.NextPC {
				p.btbMiss = true
				c.st.BTBMisses++
			}
			c.btb.Insert(d.PC, d.NextPC)
			c.ind.PushPath(d.NextPC)
		}
	case in.Op == isa.B, in.Op == isa.BL:
		if tgt, ok := c.btb.Lookup(d.PC); !ok || tgt != d.NextPC {
			p.btbMiss = true
			c.st.BTBMisses++
		}
		c.btb.Insert(d.PC, d.NextPC)
		c.ind.PushPath(d.NextPC)
		if in.Op == isa.BL {
			c.ras.Push(d.PC + 4)
		}
	case in.Op == isa.RET:
		tgt, ok := c.ras.Pop()
		p.bpMispred = !ok || tgt != d.NextPC
		if p.bpMispred {
			c.st.RASMispreds++
			if c.hooks != nil {
				c.hooks.BranchMispredict(d.PC, in)
			}
		}
		c.ind.PushPath(d.NextPC)
	case in.Op == isa.BR:
		tgt, ok := c.ind.Lookup(d.PC)
		p.bpMispred = !ok || tgt != d.NextPC
		if p.bpMispred {
			c.st.IndirectMispreds++
			if c.hooks != nil {
				c.hooks.BranchMispredict(d.PC, in)
			}
		}
		c.ind.Update(d.PC, d.NextPC)
	}

	if c.vpred != nil && in.VPEligible() {
		l := c.vpred.Predict(d.PC)
		p.vpValid = true
		p.vpConf = l.Confident
		p.vpValue = l.Value
		p.vpLookup = l
	}
}

// crackStatic is the precomputed decode of one static instruction: its
// PC (prog.PC is a pure function of the index), its Main-µop class,
// whether a BaseUpdate µop follows (pre/post-index memory ops), whether
// it is a fused multiply-add (the one latency special case), its source
// plan, and its predicate flags. Built once per program text in newCore,
// it replaces the per-dynamic-instruction isa.Crack/CrackCount switches
// in decode, the collectSrcs opcode switch, the rename-stage isa
// predicate calls, and the dynamic-record PC reads on the backend's hot
// paths — identical output, no per-µop dispatch on the opcode.
//
//tvp:hotstruct
type crackStatic struct {
	pc    uint64
	class isa.Class
	two   bool
	fpMac bool
	plan  uint8 // srcPlan bits (sp*)
	flags uint8 // predicate bits (cf*)
	need  uint8 // sp{N,M} bits for which rename must read the RAT at all
}

// Source-plan bits: which register sources a µop reads, with the static
// conditions (UseImm, addressing mode) already folded in. Bit order is
// collection order: int Rn, int Rm, int Rd, then FP Rn/Rm/Ra/Rd —
// every opcode's source list in isa order is a subsequence of that.
const (
	spN     uint8 = 1 << iota // int source Rn (the pre-renamed srcN)
	spM                       // int source Rm (register form only)
	spRdInt                   // int source Rd (MOVK read-modify-write, STR data)
	spFPn                     // FP source Rn
	spFPm                     // FP source Rm
	spFPa                     // FP source Ra (FMADD)
	spFPd                     // FP source Rd (FSTR data)
)

// Predicate flags: the per-µop isa predicate calls of the rename and
// fetch stages, evaluated once per static instruction.
const (
	cfDecide       uint8 = 1 << iota // reduction-engine eligible (int, non-mem, non-FCMP)
	cfSetsFlags                      // isa.SetsFlags
	cfReadsFlags                     // isa.ReadsFlags
	cfBranch                         // isa.IsBranch
	cfStaticReduce                   // Decide can fire with no dynamic knowledge
)

// srcPlanOf computes the static source plan — the same obstacle set, in
// the same order, as the opcode switch collectSrcs used to dispatch on
// per dynamic µop. RET/BR read Rn through the RAT exactly like srcN, so
// they share the spN bit.
func srcPlanOf(in *isa.Inst) uint8 {
	switch in.Op {
	case isa.ADD, isa.ADDS, isa.SUB, isa.SUBS, isa.AND, isa.ANDS,
		isa.ORR, isa.EOR, isa.BIC, isa.LSL, isa.LSR, isa.ASR, isa.MUL,
		isa.SDIV, isa.UDIV:
		if in.UseImm {
			return spN
		}
		return spN | spM
	case isa.UBFM, isa.RBIT:
		return spN
	case isa.MOVK:
		return spRdInt // read-modify-write
	case isa.CSEL, isa.CSINC, isa.CSNEG:
		return spN | spM
	case isa.LDR, isa.FLDR:
		if in.Mode == isa.AddrReg {
			return spN | spM
		}
		return spN
	case isa.STR:
		if in.Mode == isa.AddrReg {
			return spN | spM | spRdInt
		}
		return spN | spRdInt // store data
	case isa.FSTR:
		if in.Mode == isa.AddrReg {
			return spN | spM | spFPd
		}
		return spN | spFPd // store data
	case isa.CBZ, isa.CBNZ, isa.TBZ, isa.TBNZ, isa.RET, isa.BR, isa.SCVTF:
		return spN
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FCMP:
		return spFPn | spFPm
	case isa.FMADD:
		return spFPn | spFPm | spFPa
	case isa.FNEG, isa.FABS, isa.FMOV, isa.FCVTZS:
		return spFPn
	}
	return 0 // MOVZ, MOVN, B, BL, BCOND: no register sources
}

// crackFlagsOf evaluates the static predicate bits.
func crackFlagsOf(in *isa.Inst) uint8 {
	var f uint8
	if !isa.IsMem(in.Op) && !isa.IsFP(in.Op) && in.Op != isa.FCMP {
		f |= cfDecide
	}
	if isa.SetsFlags(in.Op) {
		f |= cfSetsFlags
	}
	if isa.ReadsFlags(in.Op) {
		f |= cfReadsFlags
	}
	if isa.IsBranch(in.Op) {
		f |= cfBranch
	}
	// cfStaticReduce marks the purely static Decide patterns: zero/one
	// idioms (EOR rr, AND with XZR, MOVZ immediates), baseline move-idiom
	// shapes (reg-form ADD/ORR/EOR with one XZR operand — the only source
	// of moveBlocked), 9-bit MOVZ/MOVN immediates, and BIC #0. Every other
	// row of Decide/table1 requires a Known source operand or known NZCV,
	// so rename may skip the call entirely when a µop has neither the flag
	// nor any dynamic knowledge. Marking all MOVZ/MOVN keeps the predicate
	// a superset: a spurious bit only costs a no-op Decide call.
	switch in.Op {
	case isa.MOVZ, isa.MOVN:
		f |= cfStaticReduce
	case isa.EOR:
		if !in.UseImm && (in.Rn == in.Rm || in.Rn == isa.XZR || in.Rm == isa.XZR) {
			f |= cfStaticReduce
		}
	case isa.AND, isa.ADD, isa.ORR:
		if !in.UseImm && (in.Rn == isa.XZR || in.Rm == isa.XZR) {
			f |= cfStaticReduce
		}
	case isa.BIC:
		if in.UseImm && in.Imm == 0 {
			f |= cfStaticReduce
		}
	}
	return f
}

// dqCap bounds the decode-to-rename µop queue. Package-level because
// trySkip must model decode's "output queue full" no-op condition.
const dqCap = 32

// decode moves instructions from the fetch queue to the µop queue,
// cracking pre/post-index memory operations into two µops.
//tvp:hotpath
func (c *Core) decode() {
	for n := 0; n < c.cfg.DecodeWidth && c.fetchQ.len() > 0; n++ {
		e := c.fetchQ.front()
		if e.fetchCycle+uint64(c.cfg.FetchToDecode) > c.cycle {
			break
		}
		ci := c.crack[e.sIdx]
		cnt := 1
		if ci.two {
			cnt = 2
		}
		if c.decodeQ.len()+cnt > dqCap {
			break
		}
		c.fetchQ.popFront()
		d := c.decodeQ.pushSlot()
		d.seq = e.seq
		d.sIdx = e.sIdx
		d.kind = isa.UOpMain
		d.class = ci.class
		d.last = !ci.two
		d.decodeCycle = c.cycle
		if ci.two {
			d = c.decodeQ.pushSlot()
			d.seq = e.seq
			d.sIdx = e.sIdx
			d.kind = isa.UOpBaseUpdate
			d.class = isa.ClassIntALU
			d.last = true
			d.decodeCycle = c.cycle
		}
	}
}

// renameStage renames up to RenameWidth µops: sources through the RAT,
// destinations through DSR idiom elimination, move elimination, 9-bit
// idiom elimination, SpSR, value prediction, or a fresh physical register,
// in that priority order. Renamed µops enter the ROB.
//tvp:hotpath
func (c *Core) renameStage() {
	for n := 0; n < c.cfg.RenameWidth && c.decodeQ.len() > 0; n++ {
		// The front pointer stays valid across popFront: the cell is only
		// reused by a push, and decode runs after rename within a step.
		e := c.decodeQ.front()
		if e.decodeCycle+uint64(c.cfg.DecodeToRename) > c.cycle {
			break
		}
		if c.robCnt >= c.cfg.ROBSize {
			c.st.ROBFullStalls++
			break
		}
		// Conservative: one µop can need at most one int and one FP reg.
		if c.ren.FreeInt() < 1 || c.ren.FreeFP() < 1 {
			c.st.PRFEmptyStalls++
			break
		}
		c.decodeQ.popFront()
		idx := int32(c.robTail)
		u := &c.rob[c.robTail]
		if c.robTail++; c.robTail == len(c.rob) {
			c.robTail = 0
		}
		c.robCnt++
		c.dispCnt++
		// A µop entering the ROB ends the post-flush refill window: from
		// here empty-ROB idle slots are no longer the old redirect's fault
		// (CPI-stack classifier, cpistack.go).
		c.redirectCause = redirectNone
		c.renameUop(u, idx, e)
		c.trace(u, StageRename)
	}
}

// renameUop fills one ROB entry.
//tvp:hotpath
func (c *Core) renameUop(u *uop, idx int32, e *dqEntry) {
	c.uSeqCtr++
	u.reset(e.seq, e.sIdx, e.kind, e.class, e.last, c.uSeqCtr, c.cycle, idx)
	c.robReady[idx] = neverReady
	in := &c.code[e.sIdx]
	ci := &c.crack[e.sIdx]

	if e.kind == isa.UOpBaseUpdate {
		c.renameBaseUpdate(u, in)
		return
	}

	switch e.class {
	case isa.ClassNop:
		u.state = stDone
		c.robReady[idx] = c.cycle
		return
	case isa.ClassLoad:
		u.isLoad = true
	case isa.ClassStore:
		u.isStore = true
	case isa.ClassBranch:
		u.isBranch = true
	}

	// Source operands through the RAT (before any destination update).
	// Gated on the static need bits: memory and FP µops outside the
	// reduction engine never look at the skipped operand, so the zero
	// Operand is dead.
	var srcN, srcM rename.Operand
	if ci.need&spN != 0 {
		c.ren.SrcIntInto(&srcN, in.Rn)
	}
	if ci.need&spM != 0 {
		c.ren.SrcIntInto(&srcM, in.Rm)
	}

	// Rename-time reduction engine (integer, non-memory µops only). With
	// no static pattern and no dynamic knowledge the call is a provable
	// no-op (KindNone, moveBlocked false) and is skipped.
	if ci.flags&cfDecide != 0 {
		nz, nzSpec, nzKnown := c.ren.NZCV()
		if ci.flags&cfStaticReduce != 0 || srcN.Known || srcM.Known || nzKnown {
			d, moveBlocked := c.engine.Decide(in, &srcN, &srcM, nz, nzSpec, nzKnown)
			u.moveBlocked = moveBlocked
			if d.Kind != rename.KindNone {
				c.applyReduction(u, in, d)
				return
			}
		}
	}

	// Regular renaming of sources for the scheduler (must precede any
	// destination update: MOVK and stores read registers the instruction
	// may also define).
	c.collectSrcs(u, ci.plan, in, &srcN, &srcM)

	// Value prediction (§3.1/§3.2/§6.1): rename the destination to a
	// hardwired register, an inlined value name, or (GVP, wide values) a
	// fresh register written with the prediction.
	c.tryValuePredict(u, in)

	// Flags.
	if ci.flags&cfSetsFlags != 0 {
		u.flagW = true
		c.ren.InvalidateNZCV()
		c.lastFlagWIdx = u.robIdx
		c.lastFlagWSeq = u.uSeq
	}
	if ci.flags&cfReadsFlags != 0 {
		if _, _, known := c.ren.NZCV(); !known {
			u.flagR = true
			if c.lastFlagWIdx != noIdx && c.rob[c.lastFlagWIdx].uSeq == c.lastFlagWSeq {
				u.flagSrcIdx = c.lastFlagWIdx
				u.flagSrcUSeq = c.lastFlagWSeq
			}
		}
	}

	// Destination (unless value prediction already renamed it).
	if !u.vpUsed {
		c.renameDest(u, in)
	}

	// Memory dependence prediction and queue bookkeeping.
	// Note: LFST entries can be stale after a flush (a squashed store's
	// registration survives and the refetched instance re-registers), so
	// a dependence is honored only when it names a strictly older store.
	// The effective address is the one per-µop dynamic fact rename needs;
	// it is re-read from the stream arena (the record is retained at least
	// until the instruction leaves the window — the same invariant the
	// predRing relies on).
	if u.isLoad {
		u.ea = c.stream.At(e.seq).EA
		u.memSize = in.Size
		if seq, ok := c.ssets.RenameLoad(ci.pc); ok && seq < u.seq {
			u.memDepSeq = seq + 1
		}
	}
	if u.isStore {
		u.ea = c.stream.At(e.seq).EA
		u.memSize = in.Size
		if prev, ok := c.ssets.RenameStore(ci.pc, e.seq); ok && prev < u.seq {
			u.memDepSeq = prev + 1
		}
	}
}

// renameBaseUpdate renames the address-increment µop of a pre/post-index
// access: it reads the old base and writes a fresh physical register.
//tvp:hotpath
func (c *Core) renameBaseUpdate(u *uop, in *isa.Inst) {
	base := c.ren.SrcInt(in.Rn)
	if !base.Known {
		u.srcs[u.nsrc] = srcOperand{name: base.Name}
		u.nsrc++
	}
	p := c.ren.AllocInt()
	c.intReadyAt[p] = neverReady
	c.ren.DefInt(in.Rn, p, true, false)
	u.hasDst = true
	u.freshDst = true
	u.dst = p
	u.dstArch = in.Rn
	u.dstWide = true
}

// applyReduction retires a rename-time reduction: the µop completes at
// rename, never dispatching to the IQ (§4.1).
//tvp:hotpath
func (c *Core) applyReduction(u *uop, in *isa.Inst, d rename.Decision) {
	u.eliminated = true
	u.elimKind = d.Kind
	u.elimOrigin = d.Origin
	u.state = stDone
	c.robReady[u.robIdx] = c.cycle

	switch d.Kind {
	case rename.KindZero:
		c.defShared(u, in.Rd, rename.HardZero, d.Spec)
	case rename.KindOne:
		c.defShared(u, in.Rd, rename.HardOne, d.Spec)
	case rename.KindValue:
		c.defShared(u, in.Rd, rename.ValueName(d.Value), d.Spec)
	case rename.KindMove:
		wide := d.MoveOp.Wide && !in.W
		if in.Rd != isa.XZR {
			c.ren.DefIntShared(in.Rd, d.MoveOp.Name, wide, d.Spec)
			u.hasDst = true
			u.dst = d.MoveOp.Name
			u.dstArch = in.Rd
			u.dstWide = wide
			u.dstSpec = d.Spec
		}
	case rename.KindNop:
		// Flag-only side effects, carried by the frontend NZCV.
	case rename.KindBranch:
		u.resolvedEarly = true
		// An SpSR-resolved branch resolves at rename: if fetch was
		// stalled on it, redirect now (§4.2: "conditional branches can
		// be resolved early").
		if c.waitBranchSeq == u.seq+1 {
			c.waitBranchSeq = 0
			c.fetchStallUntil = maxu(c.fetchStallUntil, c.cycle+redirectPenalty)
		}
	}
	if d.SetsNZCV {
		c.ren.SetNZCV(d.NZCV, d.Spec)
	}
}

//tvp:hotpath
func (c *Core) defShared(u *uop, rd isa.Reg, n rename.Name, spec bool) {
	if rd == isa.XZR {
		return
	}
	c.ren.DefIntShared(rd, n, false, spec)
	u.hasDst = true
	u.dst = n
	u.dstArch = rd
	u.dstSpec = spec
}

// tryValuePredict applies the VP rename policy for a confident prediction
// (§3.1/§3.2). The instruction still dispatches and executes so the
// prediction can be validated in place at the functional unit (§3.3).
//tvp:hotpath
func (c *Core) tryValuePredict(u *uop, in *isa.Inst) {
	if c.vpred == nil || !in.VPEligible() {
		return
	}
	p, _ := c.pred(u.seq)
	if !p.vpValid || !p.vpConf {
		return
	}
	v := p.vpValue
	mode := c.vpred.Mode()
	if mode != config.GVP && !c.vpred.Representable(v) {
		return
	}
	if c.vpred.Silenced(c.cycle) {
		c.st.VPSilenced++
		return
	}
	if c.bugArmed {
		// One-shot fault injection (injectVPBug): corrupt the ring entry
		// itself so a refetch after a flush replays the same corruption.
		c.bugArmed = false
		c.bugSeqPlus1 = u.seq + 1
		p.vpValue ^= c.bugMask
		v ^= c.bugMask
	}
	u.vpUsed = true
	switch {
	case v == 0:
		c.defShared(u, in.Rd, rename.HardZero, true)
	case v == 1:
		c.defShared(u, in.Rd, rename.HardOne, true)
	case mode != config.MVP && int64(v) >= -256 && int64(v) <= 255:
		c.defShared(u, in.Rd, rename.ValueName(int64(v)), true)
	default:
		// GVP wide prediction: allocate a register and write the
		// prediction to the PRF at rename (§6.1); dependents wake
		// immediately.
		reg := c.ren.AllocInt()
		c.ren.DefInt(in.Rd, reg, !in.W, true)
		c.intReadyAt[reg] = c.cycle + 1
		u.hasDst = true
		u.freshDst = true
		u.dst = reg
		u.dstArch = in.Rd
		u.dstWide = !in.W
		u.dstSpec = true
		u.vpWide = true
		c.predictedReg[reg] = u.robIdx
		c.st.VPWidePRFWrites++
		c.st.IntPRFWrites++
	}
}

// collectSrcs gathers the physical-register sources a µop must wait for
// (known value names, hardwired registers, and XZR never wait and never
// read the PRF). The obstacle set and order come from the static source
// plan; the bit order of sp* is collection order, so testing the bits
// low-to-high reproduces the old opcode switch exactly.
//tvp:hotpath
func (c *Core) collectSrcs(u *uop, plan uint8, in *isa.Inst, srcN, srcM *rename.Operand) {
	if plan&spN != 0 && !srcN.Known {
		u.srcs[u.nsrc] = srcOperand{name: srcN.Name}
		u.nsrc++
	}
	if plan&spM != 0 && !srcM.Known {
		u.srcs[u.nsrc] = srcOperand{name: srcM.Name}
		u.nsrc++
	}
	if plan&spRdInt != 0 {
		if op := c.ren.SrcInt(in.Rd); !op.Known {
			u.srcs[u.nsrc] = srcOperand{name: op.Name}
			u.nsrc++
		}
	}
	if plan >= spFPn { // any FP source bit set
		if plan&spFPn != 0 {
			u.srcs[u.nsrc] = srcOperand{name: c.ren.SrcFP(in.Rn), fp: true}
			u.nsrc++
		}
		if plan&spFPm != 0 {
			u.srcs[u.nsrc] = srcOperand{name: c.ren.SrcFP(in.Rm), fp: true}
			u.nsrc++
		}
		if plan&spFPa != 0 {
			u.srcs[u.nsrc] = srcOperand{name: c.ren.SrcFP(in.Ra), fp: true}
			u.nsrc++
		}
		if plan&spFPd != 0 {
			u.srcs[u.nsrc] = srcOperand{name: c.ren.SrcFP(in.Rd), fp: true}
			u.nsrc++
		}
	}
}

// renameDest allocates a fresh physical destination for a non-eliminated,
// non-value-predicted µop.
//tvp:hotpath
func (c *Core) renameDest(u *uop, in *isa.Inst) {
	if isa.IsFP(in.Op) {
		p := c.ren.AllocFP()
		c.fpReadyAt[p] = neverReady
		c.ren.DefFP(in.Rd, p)
		u.hasDst = true
		u.freshDst = true
		u.dstFP = true
		u.dst = p
		u.dstArch = in.Rd
		return
	}
	var rd isa.Reg
	switch {
	case in.Op == isa.BL:
		rd = isa.LR
	case in.Op == isa.STR || in.Op == isa.FSTR:
		return // base updates are handled by the BaseUpdate µop
	case in.WritesGPR():
		rd = in.Rd
	default:
		return
	}
	if rd == isa.XZR {
		return
	}
	p := c.ren.AllocInt()
	c.intReadyAt[p] = neverReady
	c.ren.DefInt(rd, p, !in.W, false)
	u.hasDst = true
	u.freshDst = true
	u.dst = p
	u.dstArch = rd
	u.dstWide = !in.W
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
