package tvp

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (DESIGN.md experiment index E1–E14). Each benchmark runs the
// corresponding experiment end to end on a reduced instruction budget and
// reports paper-style metrics through testing.B custom metrics, so
//
//	go test -bench=. -benchmem
//
// produces the whole evaluation sweep. cmd/tvpreport runs the same
// experiments at full length and prints the detailed per-benchmark rows.
//
// Experiment benchmarks reset the run memoization cache at the top of
// every iteration, so they time a from-scratch regeneration (while still
// benefiting from sharing within the experiment, as tvpreport does). The
// BenchmarkReportSweep* pair quantifies the cross-experiment cache win.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/workload"
)

// benchConfig keeps the full sweep affordable under `go test -bench`.
func benchConfig() report.Config {
	return report.Config{Warmup: 10_000, Insts: 60_000}
}

// sample is a representative slice of the suite (one per behavior class)
// used by the heavier multi-config benchmarks.
var sample = []string{
	"600_perlbench_s_1", // interpreter, MVP-visible booleans
	"602_gcc_s_2",       // the GVP-standout compiler point
	"605_mcf_s",         // DRAM-bound pointer chasing
	"623_xalancbmk_s",   // the paper's GVP outlier
	"654_roms_s",        // TVP×prefetcher interaction
	"648_exchange2_s",   // cache-resident high-IPC integer
}

func sampled() report.Config {
	c := benchConfig()
	c.Workloads = sample
	return c
}

// BenchmarkFig1ValueDistribution regenerates the dynamic value
// distribution (E1). Reported metric: percent of dynamic GPR results that
// are 0x0 (the paper's dominant value).
func BenchmarkFig1ValueDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		vs, err := report.Fig1(sampled(), 10)
		if err != nil {
			b.Fatal(err)
		}
		if vs[0].Value == 0 {
			b.ReportMetric(vs[0].Percent, "%zero")
		}
	}
}

// BenchmarkFig2BaselineIPC regenerates µop expansion and baseline IPC
// (E2). Metrics: mean µops/instruction and harmonic-mean IPC.
func BenchmarkFig2BaselineIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		_, uops, ipc, err := report.Fig2(sampled())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(uops, "uops/inst")
		b.ReportMetric(ipc, "hmean-IPC")
	}
}

// BenchmarkFig3VPSpeedup regenerates the MVP/TVP/GVP speedup figure (E3).
// Metrics: geomean speedup percentages per flavor.
func BenchmarkFig3VPSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		_, sum, err := report.Fig3(sampled())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.GeomeanSpeedup[0], "MVP%")
		b.ReportMetric(sum.GeomeanSpeedup[1], "TVP%")
		b.ReportMetric(sum.GeomeanSpeedup[2], "GVP%")
	}
}

// BenchmarkTable3BudgetSweep regenerates the predictor budget study (E4).
// Metric: GVP geomean at the Table 2 scale.
func BenchmarkTable3BudgetSweep(b *testing.B) {
	c := sampled()
	c.Workloads = []string{"623_xalancbmk_s", "602_gcc_s_2"}
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		rows, err := report.Table3(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Geomean[2], "GVP%@1x")
		b.ReportMetric(rows[1].StorageKB[2], "GVP-KB")
	}
}

// BenchmarkFig4RenameEliminations regenerates the elimination breakdown
// (E5). Metrics: mean move-elimination and SpSR percentages (TVP+SpSR).
func BenchmarkFig4RenameEliminations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		_, mean, err := report.Fig4(sampled(), config.TVP)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean.Move, "move%")
		b.ReportMetric(mean.SpSR, "spsr%")
		b.ReportMetric(mean.NineBit, "9bit%")
	}
}

// BenchmarkFig5SpSRSpeedup regenerates the SpSR speedup comparison (E6).
// Metrics: TVP and TVP+SpSR geomeans.
func BenchmarkFig5SpSRSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		_, geo, err := report.Fig5(sampled())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geo[2], "TVP%")
		b.ReportMetric(geo[3], "TVP+SpSR%")
	}
}

// BenchmarkFig6Activity regenerates the PRF/IQ activity proxies (E7).
// Metrics: TVP+SpSR INT PRF writes and IQ dispatches vs baseline.
func BenchmarkFig6Activity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		rows, err := report.Fig6(sampled())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].IntPRFWrites, "TVP+SpSR-PRFwr%")
		b.ReportMetric(rows[3].IQAdded, "TVP+SpSR-IQadd%")
	}
}

// BenchmarkAblationSilencing sweeps the misprediction silencing window
// (E13).
func BenchmarkAblationSilencing(b *testing.B) {
	c := benchConfig()
	c.Workloads = []string{"600_perlbench_s_1", "641_leela_s"}
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		rows, err := report.AblationSilencing(c, []int{15, 250})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Geomean[0], "MVP%@15c")
		b.ReportMetric(rows[1].Geomean[0], "MVP%@250c")
	}
}

// BenchmarkAblationPrefetch runs the §6.2 stride-prefetcher interaction
// study (E14) on roms.
func BenchmarkAblationPrefetch(b *testing.B) {
	c := benchConfig()
	c.Workloads = []string{"654_roms_s"}
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		rows, err := report.AblationPrefetch(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].WithStride, "with%")
		b.ReportMetric(rows[0].WithoutStride, "without%")
	}
}

// reportSweep regenerates the core speedup experiments (Fig. 3, Fig. 5,
// Table 3) back to back, the way cmd/tvpreport does. With memoization the
// Fig. 5 MVP/TVP points and the Table 3 1× row replay Fig. 3's runs and
// every experiment shares one set of baselines.
func reportSweep(b *testing.B, c report.Config) {
	if _, _, err := report.Fig3(c); err != nil {
		b.Fatal(err)
	}
	if _, _, err := report.Fig5(c); err != nil {
		b.Fatal(err)
	}
	if _, err := report.Table3(c); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReportSweep times the memoized multi-experiment sweep (E3, E6,
// E4 back to back). Compare against BenchmarkReportSweepNoCache for the
// cross-experiment cache win.
func BenchmarkReportSweep(b *testing.B) {
	c := sampled()
	c.Workloads = sample[:3]
	for i := 0; i < b.N; i++ {
		report.ResetRunCache()
		reportSweep(b, c)
	}
}

// BenchmarkReportSweepNoCache is the same sweep with memoization bypassed:
// every simulation point is re-simulated, as the pre-cache harness did.
func BenchmarkReportSweepNoCache(b *testing.B) {
	c := sampled()
	c.Workloads = sample[:3]
	c.NoCache = true
	for i := 0; i < b.N; i++ {
		reportSweep(b, c)
	}
}

// BenchmarkSimThroughput measures raw simulation speed on the baseline
// machine — the practical limit on experiment scale. The headline metric
// is MIPS (simulated megainstructions per wall second); allocation counts
// track the hot-path churn that bounds it.
func BenchmarkSimThroughput(b *testing.B) {
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Options{Workload: "648_exchange2_s", Warmup: 0, MaxInsts: 100_000})
		if err != nil {
			b.Fatal(err)
		}
		insts += res.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkSimThroughputLowIPC is the low-IPC counterpart on the
// DRAM-bound pointer chaser: long miss chains keep the window drained,
// so this point is dominated by cycle skipping and commit-side work
// where BenchmarkSimThroughput (cache-resident, issue-bound) is
// dominated by the wakeup scoreboard. bench-guard floors both, so a
// regression confined to either regime still trips the gate.
func BenchmarkSimThroughputLowIPC(b *testing.B) {
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Options{Workload: "605_mcf_s", Warmup: 0, MaxInsts: 100_000})
		if err != nil {
			b.Fatal(err)
		}
		insts += res.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkSimulatorThroughput is the historical name of the throughput
// benchmark, kept so BENCH_*.json series remain comparable.
func BenchmarkSimulatorThroughput(b *testing.B) {
	BenchmarkSimThroughput(b)
}

// BenchmarkSimThroughputTelemetry is BenchmarkSimThroughput with the full
// telemetry layer attached (interval sampler at the default period plus
// the three attribution tables), quantifying the observation overhead
// that BENCH_PR2.json reports against the telemetry-off baseline.
func BenchmarkSimThroughputTelemetry(b *testing.B) {
	b.ReportAllocs()
	p, err := workload.Program("648_exchange2_s")
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	for i := 0; i < b.N; i++ {
		core := pipeline.New(config.Default(), p)
		core.SetProbe(obs.New(obs.Config{}))
		res := core.Run(0, 100_000)
		insts += res.Committed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkSimulatorThroughputVP measures simulation speed with the full
// TVP+SpSR machinery engaged.
func BenchmarkSimulatorThroughputVP(b *testing.B) {
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Options{Workload: "602_gcc_s_2", VP: TVP, SpSR: true, Warmup: 0, MaxInsts: 100_000})
		if err != nil {
			b.Fatal(err)
		}
		insts += res.TotalInsts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MIPS")
}
