package emu

import (
	"repro/internal/isa"
)

// DynInst is one dynamically executed architectural instruction: the
// static instruction plus everything the timing model needs from functional
// execution — the computed result, effective address, branch outcome and
// flag values. The timing model never recomputes semantics; it consumes
// these records in program order (with rewind on pipeline flushes).
type DynInst struct {
	// Seq is the global dynamic sequence number (0-based, in retirement
	// order of the functional stream).
	Seq uint64
	// Index is the static instruction index within the program text.
	Index int
	// PC is the byte address of the instruction.
	PC uint64
	// Inst points at the static instruction (owned by the Program; do not
	// mutate).
	Inst *isa.Inst

	// Result is the value written to the primary destination register
	// (integer or raw FP bits), if the instruction writes one.
	Result uint64
	// BaseResult is the updated base register value for pre/post-index
	// loads and stores (the BaseUpdate µop's result).
	BaseResult uint64
	// StoreData is the value a store writes to memory.
	StoreData uint64
	// EA is the effective address of a memory access.
	EA uint64

	// Taken reports the direction of a branch (always true for
	// unconditional branches).
	Taken bool
	// NextPC is the address of the next instruction in program order of
	// execution (fall-through or branch target).
	NextPC uint64

	// FlagsIn/FlagsOut are the NZCV values before and after execution.
	FlagsIn, FlagsOut isa.Flags
}

// WritesGPRResult reports whether Result is an integer register value
// (i.e. the primary destination is a GPR that is actually written).
func (d *DynInst) WritesGPRResult() bool {
	in := d.Inst
	if in.Op == isa.BL {
		return true
	}
	if isa.IsFP(in.Op) {
		return false
	}
	switch in.Op {
	case isa.LDR, isa.FCVTZS,
		isa.ADD, isa.ADDS, isa.SUB, isa.SUBS, isa.AND, isa.ANDS,
		isa.ORR, isa.EOR, isa.BIC, isa.LSL, isa.LSR, isa.ASR,
		isa.UBFM, isa.RBIT, isa.MUL, isa.SDIV, isa.UDIV,
		isa.MOVZ, isa.MOVK, isa.MOVN, isa.CSEL, isa.CSINC, isa.CSNEG:
		return in.Rd != isa.XZR
	}
	return false
}
