// Package config is the clean counterpart of badmod: value fields only.
package config

// Machine is fully fingerprintable.
type Machine struct {
	Width  int
	Tables []uint
}
