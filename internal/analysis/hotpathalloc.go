package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathMarker is the annotation that opts a function into the
// hotpathalloc check. It goes in the doc comment:
//
//	// fetch advances the frontend by one cycle.
//	//
//	//tvp:hotpath
//	func (c *Core) fetch() { ... }
//
// Annotated functions run once per simulated cycle or per instruction;
// a single heap allocation there multiplies into millions per run and
// blows the bench-guard ceiling.
const HotpathMarker = "//tvp:hotpath"

// NewHotpathAlloc builds the hotpathalloc analyzer: functions annotated
// //tvp:hotpath may not contain heap-allocating or boxing constructs —
// fmt calls (which box every argument), escaping composite literals
// (&T{...}, map/slice literals), make/new, capacity-growing append,
// escaping closures, go statements, defer inside loops, or implicit
// conversions of concrete values to interface types. Arguments of
// panic(...) calls are exempt (cold assertion paths), as are in-place
// compaction appends (append(x[:i], x[j:]...)) and closures bound to
// local variables, none of which allocate.
func NewHotpathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbid heap allocation and interface boxing in //tvp:hotpath-annotated functions",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpath(fd) {
					continue
				}
				checkHotpathFunc(pass, fd)
			}
		}
		return nil
	}
	return a
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if text := strings.TrimSpace(c.Text); text == HotpathMarker || strings.HasPrefix(text, HotpathMarker+" ") {
			return true
		}
	}
	return false
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Closures bound to a local variable (f := func(...){...}) are
	// non-escaping helpers the compiler keeps on the stack; anything
	// else (argument position, struct field, return value) escapes.
	localLits := map[*ast.FuncLit]bool{}
	addrLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(n.Lhs) {
					if _, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						localLits[fl] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				addrLits[cl] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") {
				return false // cold assertion path: arguments never run per-cycle
			}
			checkHotpathCall(pass, n, name)
		case *ast.FuncLit:
			if !localLits[n] {
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: escaping closure allocates; hoist it or bind it to a local variable", name)
			}
		case *ast.CompositeLit:
			t := pass.Pkg.Info.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: map literal %s allocates", name, types.ExprString(n.Type))
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: slice literal allocates", name)
			default:
				if addrLits[n] {
					pass.Reportf(n.Pos(), "%s is //tvp:hotpath: &composite literal escapes to the heap", name)
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //tvp:hotpath: go statement allocates a goroutine per invocation", name)
		case *ast.ForStmt:
			checkLoopDefers(pass, n.Body, name)
		case *ast.RangeStmt:
			checkLoopDefers(pass, n.Body, name)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkLoopDefers(pass *Pass, body *ast.BlockStmt, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			pass.Reportf(ds.Pos(), "%s is //tvp:hotpath: defer inside a loop heap-allocates its frame every iteration", name)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr, name string) {
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if argT := pass.Pkg.Info.Types[call.Args[0]].Type; argT != nil && !isInterfaceOrNil(argT) {
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: conversion of %s to interface %s boxes on the heap", name, argT, tv.Type)
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: make allocates; preallocate in the constructor", name)
			case "new":
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: new allocates; preallocate in the constructor", name)
			case "append":
				if !isCompactionAppend(call) {
					pass.Reportf(call.Pos(), "%s is //tvp:hotpath: append may grow the backing array; preallocate capacity (or //tvplint:ignore hotpathalloc <reason>)", name)
				}
			}
			return
		}
	}
	fn := calleeFunc(pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //tvp:hotpath: fmt.%s boxes its arguments and allocates", name, fn.Name())
		return
	}
	// Implicit interface boxing: a concrete argument passed to an
	// interface parameter allocates unless the value is already an
	// interface (or nil).
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pass.Pkg.Info.Types[arg].Type
		if argT == nil || isInterfaceOrNil(argT) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //tvp:hotpath: passing concrete %s as interface parameter %s boxes on the heap", name, argT, pt)
	}
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, builtin string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != builtin {
		return false
	}
	_, ok = pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// isCompactionAppend recognizes append(x[:i], x[j:]...) — removing an
// element in place. The result length never exceeds the original, so
// the backing array is reused and nothing allocates.
func isCompactionAppend(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return types.ExprString(dst.X) == types.ExprString(src.X)
}

func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the static type of parameter i, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isInterfaceOrNil(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}
