package emu

import "sort"

// FNV-1a constants (64-bit).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ v&0xff) * fnvPrime
		v >>= 8
	}
	return h
}

// Hash returns a deterministic FNV-1a digest of the semantic memory
// contents. Pages are visited in ascending page-number order, and
// all-zero pages are skipped — an all-zero page reads identically to an
// unmapped one, so the digest depends only on observable memory contents,
// not on which addresses happened to be touched.
func (m *Memory) Hash() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var zero [pageSize]byte
	h := uint64(fnvOffset)
	for _, pn := range pns {
		p := m.pages[pn]
		if *p == zero {
			continue
		}
		h = fnvU64(h, pn)
		for _, b := range p {
			h = (h ^ uint64(b)) * fnvPrime
		}
	}
	return h
}

// ArchHash digests the complete architectural state — integer and FP
// registers, NZCV, the next PC, and semantic memory contents. Two
// emulators that executed the same program to the same point hash
// equally; the differential harness uses this to assert that timing-model
// configuration changes never leak into architecture.
func (e *Emulator) ArchHash() uint64 {
	h := uint64(fnvOffset)
	for _, v := range e.X {
		h = fnvU64(h, v)
	}
	for _, v := range e.D {
		h = fnvU64(h, v)
	}
	h = fnvU64(h, uint64(e.Flags))
	h = fnvU64(h, uint64(e.pcIdx))
	h = fnvU64(h, e.Mem.Hash())
	return h
}
