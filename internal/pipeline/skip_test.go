package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// skipConfigs are the machine variants the skip-equivalence proof runs
// under: the baseline, each VP mode (TVP exercises inlined-value renames,
// GVP the wide-prediction PRF path), and SpSR (rename-resolved branches
// interact with the fetch-wait wake chain). CrossCheck arms the shadow
// oracle so a skip that desynchronized retirement would panic, not just
// miscount.
func skipConfigs() map[string]*config.Machine {
	base := config.Default()
	base.CrossCheck = true
	tvp := base.Clone()
	tvp.VP.Mode = config.TVP
	tvp.NineBitIdiom = true
	gvp := base.Clone()
	gvp.VP.Mode = config.GVP
	spsr := base.Clone()
	spsr.SpSR = true
	spsr.NineBitIdiom = true
	return map[string]*config.Machine{"base": base, "tvp": tvp, "gvp": gvp, "spsr": spsr}
}

// TestCycleSkipEquivalence: event-driven cycle skipping must be exact —
// the full stats.Sim block, cycle count, committed count and halt state
// are bit-identical with skipping on and off, across the workload suite
// and machine variants, including a warmup boundary (the snapshot
// subtraction observes intermediate counter values). This is the
// invariant that justifies shipping skipping enabled by default.
func TestCycleSkipEquivalence(t *testing.T) {
	var skippedTotal uint64
	for cfgName, cfg := range skipConfigs() {
		for _, name := range workload.Names() {
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(cfgName+"/"+name, func(t *testing.T) {
				off := cfg.Clone()
				off.DisableCycleSkip = true
				con := New(cfg, spec.Build())
				ron := con.Run(1000, 20000)
				roff := New(off, spec.Build()).Run(1000, 20000)
				skippedTotal += con.SkippedCycles()
				if ron.Cycles != roff.Cycles || ron.Committed != roff.Committed || ron.Halted != roff.Halted {
					t.Fatalf("run shape diverged: skip-on (cycles=%d committed=%d halted=%v) vs off (%d, %d, %v)",
						ron.Cycles, ron.Committed, ron.Halted, roff.Cycles, roff.Committed, roff.Halted)
				}
				if ron.Stats != roff.Stats {
					t.Errorf("stats diverged:\n on: %+v\noff: %+v", ron.Stats, roff.Stats)
				}
			})
		}
	}
	if skippedTotal == 0 {
		t.Error("cycle skipping never engaged across the whole suite; the fast path is dead")
	}
}

// TestCycleSkipDisabledIsTickByTick: DisableCycleSkip must really
// disable the mechanism (SkippedCycles 0), so the equivalence test above
// compares against a genuine tick-by-tick run.
func TestCycleSkipDisabledIsTickByTick(t *testing.T) {
	spec, err := workload.Get(workload.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.DisableCycleSkip = true
	c := New(cfg, spec.Build())
	c.Run(0, 5000)
	if c.SkippedCycles() != 0 {
		t.Fatalf("DisableCycleSkip run skipped %d cycles", c.SkippedCycles())
	}
}
