package pipeline

// queue is an allocation-free FIFO for the pipeline's bounded stage
// queues (fetch queue, µop queue, load/store queues). Popping from the
// front advances a head index instead of reslicing the buffer away —
// reslicing (`q = q[1:]`) permanently abandons the popped slot, so every
// later append reallocates once the backing array is consumed, which the
// profile shows as the simulator's dominant allocation source. The dead
// prefix is recycled when the queue drains and compacted once it grows
// past a fixed threshold, so steady-state simulation performs no queue
// allocations at all.
type queue[T any] struct {
	buf  []T
	head int
}

// compactAt bounds the dead prefix. The live portion of every pipeline
// queue is small (≤ ROB-scale), so compaction copies little and runs
// rarely.
const compactAt = 256

func (q *queue[T]) len() int  { return len(q.buf) - q.head }
func (q *queue[T]) front() *T { return &q.buf[q.head] }
func (q *queue[T]) live() []T { return q.buf[q.head:] }
func (q *queue[T]) push(v T)  { q.buf = append(q.buf, v) }

func (q *queue[T]) popFront() {
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= compactAt {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

func (q *queue[T]) clear() {
	q.buf = q.buf[:0]
	q.head = 0
}

// ring is a fixed-capacity power-of-two FIFO for the frontend stage
// queues (fetch queue, µop queue), whose occupancy is bounded by config
// before every push. Unlike queue it never touches the slice header: the
// backing store is allocated once by newRing and the uint32 indices wrap
// by mask, so push is a single element store — it runs at fetch/decode
// width every simulated cycle.
type ring[T any] struct {
	buf  []T
	mask uint32
	head uint32
	tail uint32
}

func newRing[T any](capacity int) ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return ring[T]{buf: make([]T, n), mask: uint32(n - 1)}
}

func (q *ring[T]) len() int  { return int(q.tail - q.head) }
func (q *ring[T]) front() *T { return &q.buf[q.head&q.mask] }
func (q *ring[T]) push(v T)  { q.buf[q.tail&q.mask] = v; q.tail++ }

// pushSlot appends an uninitialized slot and returns it for in-place
// fill, sparing the by-value copy of push for wide elements. The slot
// retains the bytes of the element it last held after a wraparound, so
// callers must assign every field.
func (q *ring[T]) pushSlot() *T {
	p := &q.buf[q.tail&q.mask]
	q.tail++
	return p
}
func (q *ring[T]) popFront() { q.head++ }
func (q *ring[T]) clear()    { q.head = 0; q.tail = 0 }

// filterLive keeps only elements for which keep returns true, compacting
// the queue to the front of its buffer (order preserved, no allocation).
func (q *queue[T]) filterLive(keep func(T) bool) {
	out := q.buf[:0]
	for _, v := range q.buf[q.head:] {
		if keep(v) {
			out = append(out, v)
		}
	}
	q.buf = out
	q.head = 0
}
