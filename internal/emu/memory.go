// Package emu implements the functional emulator for the micro-ISA: a
// sparse paged memory, architectural register state, and an interpreter
// that executes programs and produces the dynamic instruction stream the
// timing model consumes. Functional execution is exact — every value a
// value predictor sees, predicts, and validates in the timing model is the
// architecturally computed one.
package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, paged, little-endian byte-addressable memory.
// Unmapped reads return zero; writes allocate pages on demand.
//
// Pages may be shared copy-on-write with snapshots (see Emulator.Snapshot):
// a page listed in cow is backed by an array some snapshot also references,
// and is copied privately before the first write. A one-entry translation
// cache (lastRead/lastWrite) short-circuits the page-map lookup for the
// common case of consecutive accesses hitting the same 4KB page.
type Memory struct {
	pages map[uint64]*[pageSize]byte
	// cow marks page numbers whose backing array is shared with one or
	// more snapshots; nil when no snapshot has been taken.
	cow map[uint64]struct{}

	// Last-page translation caches. A cache holds pn+1 so the zero value
	// is invalid (page number 0 is addressable). lastWrite is only ever a
	// privately owned page; lastRead may be a shared one.
	lastReadPN  uint64
	lastRead    *[pageSize]byte
	lastWritePN uint64
	lastWrite   *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// readPage returns the page containing addr for reading, or nil if
// unmapped.
//tvp:hotpath
func (m *Memory) readPage(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	if pn+1 == m.lastReadPN {
		return m.lastRead
	}
	p := m.pages[pn]
	if p != nil {
		m.lastReadPN = pn + 1
		m.lastRead = p
	}
	return p
}

// writePage returns a privately owned page containing addr, allocating or
// copying a snapshot-shared page as needed.
//tvp:hotpath
func (m *Memory) writePage(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	if pn+1 == m.lastWritePN {
		return m.lastWrite
	}
	p := m.pages[pn]
	if p == nil {
		//tvplint:ignore hotpathalloc first-touch page fault: one allocation per 4KB page mapped, amortized over thousands of stores
		p = new([pageSize]byte)
		m.pages[pn] = p
	} else if m.cow != nil {
		if _, shared := m.cow[pn]; shared {
			//tvplint:ignore hotpathalloc COW break: one copy per shared page per restored checkpoint, amortized over the whole run
			priv := new([pageSize]byte)
			*priv = *p
			m.pages[pn] = priv
			delete(m.cow, pn)
			p = priv
		}
	}
	m.lastWritePN = pn + 1
	m.lastWrite = p
	m.lastReadPN = pn + 1
	m.lastRead = p
	return p
}

// invalidateCache drops the translation caches (called when page
// ownership changes, e.g. on snapshot).
func (m *Memory) invalidateCache() {
	m.lastReadPN, m.lastRead = 0, nil
	m.lastWritePN, m.lastWrite = 0, nil
}

// LoadByte returns the byte at addr.
//tvp:hotpath
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.readPage(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
//tvp:hotpath
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.writePage(addr)[addr&pageMask] = b
}

// Read returns the little-endian unsigned value of the given size (1, 2, 4
// or 8 bytes) at addr. Accesses may straddle page boundaries.
//tvp:hotpath
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	off := addr & pageMask
	if off <= pageSize-uint64(size) {
		p := m.readPage(addr)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
//tvp:hotpath
func (m *Memory) Write(addr uint64, v uint64, size uint8) {
	off := addr & pageMask
	if off <= pageSize-uint64(size) {
		p := m.writePage(addr)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := uint8(0); i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadSegment copies bytes into memory starting at base, batching through
// whole pages.
func (m *Memory) LoadSegment(base uint64, data []byte) {
	for len(data) > 0 {
		p := m.writePage(base)
		off := base & pageMask
		n := copy(p[off:], data)
		data = data[n:]
		base += uint64(n)
	}
}

// PageCount returns the number of mapped 4KB pages (the resident footprint).
func (m *Memory) PageCount() int { return len(m.pages) }

// share freezes the current page set for snapshotting: it returns a copy
// of the page table and marks every page copy-on-write so neither the
// live memory nor any restored memory can mutate the shared arrays.
func (m *Memory) share() map[uint64]*[pageSize]byte {
	frozen := make(map[uint64]*[pageSize]byte, len(m.pages))
	if m.cow == nil {
		m.cow = make(map[uint64]struct{}, len(m.pages))
	}
	for pn, p := range m.pages {
		frozen[pn] = p
		m.cow[pn] = struct{}{}
	}
	m.invalidateCache()
	return frozen
}

// memoryFromShared builds a Memory over a frozen page set; every page
// starts copy-on-write.
func memoryFromShared(frozen map[uint64]*[pageSize]byte) *Memory {
	m := &Memory{
		pages: make(map[uint64]*[pageSize]byte, len(frozen)),
		cow:   make(map[uint64]struct{}, len(frozen)),
	}
	for pn, p := range frozen {
		m.pages[pn] = p
		m.cow[pn] = struct{}{}
	}
	return m
}
