package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// TestBatchedSweepMatchesSerial pins the property the config-batched
// sweep path (report.runAll) is built on: the functional instruction
// stream depends only on the program, never on the machine
// configuration, so N configurations replaying one recorded trace
// (NewFromTrace) must produce exactly what N live-emulator runs (New)
// produce — the full stats.Sim block, run shape, and the CPI stack,
// bit-identical, across the workload suite, the skipConfigs machine
// variants, and both cycle-skip settings. CrossCheck stays off on the
// trace side (the shadow oracle requires a live emulator; NewFromTrace
// rejects it), so the configs are re-derived here with the oracle
// disarmed rather than reusing skipConfigs verbatim.
func TestBatchedSweepMatchesSerial(t *testing.T) {
	for _, name := range workload.Names() {
		spec, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		// One recording per workload, shared by every configuration below
		// — exactly the sharing shape report.runAll schedules. The slack
		// mirrors report.traceSlack: fetch runs ahead of commit by at most
		// the in-flight window, far below one ring of headroom.
		tr := emu.RecordTrace(emu.New(spec.Build()), 1000+20000+emu.DefaultStreamCapacity+64)
		for cfgName, cfg := range skipConfigs() {
			for _, skip := range []struct {
				name    string
				disable bool
			}{{"skip", false}, {"tick", true}} {
				t.Run(name+"/"+cfgName+"/"+skip.name, func(t *testing.T) {
					m := cfg.Clone()
					m.CrossCheck = false
					m.DisableCycleSkip = skip.disable

					live := New(m, spec.Build())
					live.EnableCPIStack()
					rlive := live.Run(1000, 20000)

					replay := NewFromTrace(m, tr)
					replay.EnableCPIStack()
					rtrace := replay.Run(1000, 20000)

					if rlive.Cycles != rtrace.Cycles || rlive.Committed != rtrace.Committed || rlive.Halted != rtrace.Halted {
						t.Fatalf("run shape diverged: live (cycles=%d committed=%d halted=%v) vs trace replay (%d, %d, %v)",
							rlive.Cycles, rlive.Committed, rlive.Halted, rtrace.Cycles, rtrace.Committed, rtrace.Halted)
					}
					if rlive.Stats != rtrace.Stats {
						t.Errorf("stats diverged:\n       live: %+v\ntrace replay: %+v", rlive.Stats, rtrace.Stats)
					}
					if rlive.CPI != rtrace.CPI {
						t.Errorf("CPI stack diverged:\n       live: %+v\ntrace replay: %+v", rlive.CPI, rtrace.CPI)
					}
				})
			}
		}
	}
}

// TestTraceModeRejectsCrossCheck pins the guard: the shadow-oracle
// checker needs a live emulator to restore its shadow from, so building
// a core over a recorded trace with CrossCheck armed must panic rather
// than silently skip the oracle.
func TestTraceModeRejectsCrossCheck(t *testing.T) {
	spec, err := workload.Get(workload.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	tr := emu.RecordTrace(emu.New(spec.Build()), 1000)
	cfg := skipConfigs()["base"] // CrossCheck armed
	defer func() {
		if recover() == nil {
			t.Fatal("NewFromTrace accepted a CrossCheck config; the oracle would be silently dead")
		}
	}()
	NewFromTrace(cfg, tr)
}
