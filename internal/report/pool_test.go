package report

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolBoundedQueueBackpressure: with 1 worker and a queue of 1, a
// third submission must block until a slot frees, and a context that ends
// while blocked must abort the submission with its error.
func TestPoolBoundedQueueBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(context.Background(), func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy
	if err := p.Submit(context.Background(), func() {}); err != nil {
		t.Fatal(err) // fills the queue slot
	}
	if q, c := p.QueueDepth(); q != 1 || c != 1 {
		t.Fatalf("queue depth = %d/%d, want 1/1", q, c)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Submit(ctx, func() { t.Error("canceled submission ran") }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit on full queue with dead ctx = %v, want context.Canceled", err)
	}
	close(block)
}

// TestPoolCloseDrains: jobs accepted before Close all run; Submit after
// Close fails with ErrPoolClosed.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() { defer wg.Done(); ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	wg.Wait()
	if ran.Load() != 8 {
		t.Fatalf("ran %d of 8 accepted jobs across Close", ran.Load())
	}
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}
