// Command tvplint runs the repository's custom static-analysis suite
// (internal/analysis) over the whole module and exits nonzero on any
// finding. It enforces, at build time, the invariants the simulator's
// correctness story rests on:
//
//	fingerprintsafe  config.Machine stays %#v-fingerprintable (simcache keys)
//	hotpathalloc     //tvp:hotpath functions stay allocation-free;
//	                 //tvp:hotstruct types carry no pointer fields (the hot
//	                 arenas must stay invisible to the garbage collector)
//	detmap           no randomized map iteration feeds reports/records/traces
//	statscomplete    stats.Sim counters stay uint64 and serialize whole
//	nondet           no wall clock / math/rand / env reads in simulator core
//
// Findings are suppressed line-by-line with a justified escape hatch:
//
//	//tvplint:ignore <analyzer> <reason>
//
// on the flagged line or the line above (the reason is mandatory).
// Usage: tvplint [-root dir]. `make lint` wires it into `make check`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root to analyze (default: nearest go.mod upward from cwd)")
	flag.Parse()
	n, err := run(*root, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tvplint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "tvplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run analyzes the module rooted at root (or the nearest enclosing
// module), prints findings to out, and returns how many there were.
func run(root string, out io.Writer) (int, error) {
	var err error
	if root == "" {
		if root, err = findModuleRoot(); err != nil {
			return 0, err
		}
	}
	if root, err = filepath.Abs(root); err != nil {
		return 0, err
	}
	modPath, err := analysis.ModulePathFromGoMod(root)
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(root, modPath)
	if err := loader.LoadAll(); err != nil {
		return 0, err
	}
	diags, err := analysis.RunAnalyzers(loader, analysis.Suite(modPath))
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(out, analysis.Format(loader.Fset, d))
	}
	return len(diags), nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found upward from cwd")
		}
		dir = parent
	}
}
