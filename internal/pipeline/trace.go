package pipeline

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Stage identifies a pipeline event for tracing (gem5 O3-pipeview style).
type Stage uint8

// Trace stages, in pipeline order.
const (
	StageFetch Stage = iota
	StageRename
	StageDispatch
	StageIssue
	StageComplete
	StageCommit
	StageSquash
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageFetch:
		return "fetch"
	case StageRename:
		return "rename"
	case StageDispatch:
		return "dispatch"
	case StageIssue:
		return "issue"
	case StageComplete:
		return "complete"
	case StageCommit:
		return "commit"
	case StageSquash:
		return "squash"
	}
	return "stage?"
}

// TraceEvent is one observed pipeline event.
type TraceEvent struct {
	Cycle uint64
	Seq   uint64 // dynamic instruction sequence number
	UopIx uint8  // 0 = main µop, 1 = base-update µop
	Stage Stage
	PC    uint64
	Inst  *isa.Inst
	// Eliminated marks µops that completed at rename (DSR/SpSR/NOP).
	Eliminated bool
}

// Tracer observes pipeline events. Implementations must not retain the
// Inst pointer past the call if they outlive the run.
type Tracer interface {
	Event(ev TraceEvent)
}

// SetTracer attaches a tracer to the core (nil detaches). Tracing has no
// effect on simulated timing.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

// trace is split so the no-tracer check inlines at the half-dozen
// per-µop call sites; the event construction only pays its call when a
// tracer is actually attached.
func (c *Core) trace(u *uop, s Stage) {
	if c.tracer == nil {
		return
	}
	c.traceEvent(u, s)
}

func (c *Core) traceEvent(u *uop, s Stage) {
	var ix uint8
	if u.kind == isa.UOpBaseUpdate {
		ix = 1
	}
	c.tracer.Event(TraceEvent{
		Cycle:      c.cycle,
		Seq:        u.seq,
		UopIx:      ix,
		Stage:      s,
		PC:         c.crack[u.sIdx].pc,
		Inst:       c.instOf(u),
		Eliminated: u.eliminated,
	})
}

// Pipeview collects per-µop stage timestamps and renders a compact
// text pipeline view of the first Limit committed µops, in commit order:
//
//	seq=102.0 0x400120 add x1, x2, x3      r=210 d=212 i=214 p=215 c=218
//	seq=103.0 0x400124 eor x2, x2, x2      r=210 [eliminated] c=218
//
// (r=rename, d=dispatch, i=issue, p=complete, c=commit; fetch is per
// architectural instruction and shown as f.)
type Pipeview struct {
	// Limit caps the number of committed µops rendered (0 = no cap).
	Limit int

	w       io.Writer
	printed int
	live    map[uint64]*pvRow // keyed by seq<<1|uopIx
}

type pvRow struct {
	stamps     [StageSquash + 1]int64 // -1 = not seen
	eliminated bool
	pc         uint64
	disasm     string
}

// NewPipeview returns a tracer writing the view to w.
func NewPipeview(w io.Writer, limit int) *Pipeview {
	return &Pipeview{Limit: limit, w: w, live: map[uint64]*pvRow{}}
}

// Event implements Tracer.
func (p *Pipeview) Event(ev TraceEvent) {
	if p.Limit > 0 && p.printed >= p.Limit {
		return
	}
	key := ev.Seq<<1 | uint64(ev.UopIx)
	row := p.live[key]
	if row == nil || ev.Stage == StageFetch || ev.Stage == StageRename && row.stamps[StageCommit] >= 0 {
		row = &pvRow{pc: ev.PC, disasm: ev.Inst.String()}
		for i := range row.stamps {
			row.stamps[i] = -1
		}
		p.live[key] = row
	}
	row.stamps[ev.Stage] = int64(ev.Cycle)
	row.eliminated = row.eliminated || ev.Eliminated

	switch ev.Stage {
	case StageCommit:
		p.flushRow(ev.Seq, ev.UopIx, row)
		delete(p.live, key)
	case StageSquash:
		delete(p.live, key) // squashed µops re-run; drop the partial row
	}
}

func (p *Pipeview) flushRow(seq uint64, ix uint8, row *pvRow) {
	if p.Limit > 0 && p.printed >= p.Limit {
		return
	}
	p.printed++
	line := fmt.Sprintf("seq=%d.%d %#x %-36s", seq, ix, row.pc, row.disasm)
	add := func(label string, st Stage) {
		if row.stamps[st] >= 0 {
			line += fmt.Sprintf(" %s=%d", label, row.stamps[st])
		}
	}
	add("f", StageFetch)
	add("r", StageRename)
	if row.eliminated {
		line += " [eliminated]"
	} else {
		add("d", StageDispatch)
		add("i", StageIssue)
		add("p", StageComplete)
	}
	add("c", StageCommit)
	fmt.Fprintln(p.w, line)
}
