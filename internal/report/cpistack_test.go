package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestCPIStacks checks the "where do the cycles go" experiment end to
// end: the acceptance property that buckets actually move between base
// and TVP+SpSR (bad-speculation-VP and SpSR credit appear only on the
// TVP side), plus a golden render so the table format is pinned in
// `make check`. The simulator is deterministic, so the golden is stable;
// regenerate with `go test ./internal/report -run CPIStacks -update`.
func TestCPIStacks(t *testing.T) {
	c := tiny()
	// xz_1 is the sample's value-mispredicting workload (bad-vp slots at
	// Quick lengths); mcf covers the backend-memory bucket.
	c.Workloads = []string{"657_xz_s_1", "605_mcf_s"}
	rows, err := CPIStacks(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}

	var baseVP, tvpVP, baseSpSR, tvpSpSR, tvpTotal uint64
	for _, r := range rows {
		if r.Base.Total() == 0 || r.TVP.Total() == 0 {
			t.Fatalf("%s: empty stack (base %d, tvp %d slots)", r.Workload, r.Base.Total(), r.TVP.Total())
		}
		baseVP += r.Base.BadSpecVP
		tvpVP += r.TVP.BadSpecVP
		baseSpSR += r.Base.RetiredSpSR
		tvpSpSR += r.TVP.RetiredSpSR
		tvpTotal += r.TVP.Total()
	}
	if baseVP != 0 || baseSpSR != 0 {
		t.Errorf("baseline charged VP-only buckets: bad-vp %d, spsr %d", baseVP, baseSpSR)
	}
	if tvpVP == 0 {
		t.Error("TVP+SpSR never charged bad-speculation-VP")
	}
	if tvpSpSR == 0 {
		t.Error("TVP+SpSR never credited SpSR-eliminated slots")
	}

	var buf bytes.Buffer
	WriteCPIStacks(&buf, rows)
	golden := filepath.Join("testdata", "cpistack.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("rendered CPI stack differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestCPICacheEquivalence: the CPI run memoization must be sound — a
// recalled sweep is bit-identical to an uncached one.
func TestCPICacheEquivalence(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"623_xalancbmk_s"}
	ResetCPICache()
	rows1, err := CPIStacks(c)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := CPIStacks(c) // served from cpiCache
	if err != nil {
		t.Fatal(err)
	}
	un := c
	un.NoCache = true
	rows3, err := CPIStacks(un)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] || rows1[i] != rows3[i] {
			t.Errorf("row %d differs across cached/recached/uncached:\n%+v\n%+v\n%+v",
				i, rows1[i], rows2[i], rows3[i])
		}
	}
}

// TestCPIStacksParallelismInvariance: CPI sweeps render byte-identically
// from -j 1 to a wide pool (same guarantee runAll gives the figures).
func TestCPIStacksParallelismInvariance(t *testing.T) {
	render := func(workers int) string {
		c := tiny()
		c.Workloads = []string{"600_perlbench_s_1", "605_mcf_s"}
		c.NoCache = true
		c.Workers = workers
		rows, err := CPIStacks(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteCPIStacks(&buf, rows)
		return buf.String()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("CPI sweep differs between -j 1 and -j 8:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestCPIStacksFastWarmup: the checkpoint-resumed path composes with CPI
// accounting (accounting arms at the measurement boundary either way).
func TestCPIStacksFastWarmup(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"654_roms_s"}
	c.FastWarmup = true
	rows, err := CPIStacks(c)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Base.Total() == 0 || rows[0].TVP.Total() == 0 {
		t.Fatalf("fast-warmup CPI stacks empty: %+v", rows[0])
	}
}
