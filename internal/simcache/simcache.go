// Package simcache provides a content-addressed, concurrency-safe
// memoization layer for simulation results. The experiment harness
// (internal/report, cmd/tvpreport) regenerates every figure of the paper
// from the same small set of (workload, machine-config) points; caching
// each point by its content key means the full E1–E14 sweep never
// simulates the same point twice, and singleflight deduplication means
// concurrent identical requests share one execution instead of racing to
// compute the same result.
//
// The generic Cache is usable for any memoized computation (built
// programs, warmup checkpoints, functional histograms); RunKey is the
// canonical key for timing runs.
package simcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// RunKey identifies one timing simulation: the workload, the canonical
// machine-configuration fingerprint (config.Machine.Fingerprint), and the
// run length. Two runs with equal RunKeys produce bit-identical stats, so
// the result of one can stand in for the other.
type RunKey struct {
	Workload string
	// ConfigFP is the canonical content fingerprint of the machine
	// configuration (config.Machine.Fingerprint).
	ConfigFP string
	Warmup   uint64
	Insts    uint64
	// FastWarmup distinguishes checkpoint-resumed runs from fully timed
	// ones: they are not bit-identical and must not share cache entries.
	FastWarmup bool
}

// entry is one in-flight or completed computation.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache memoizes a keyed computation with singleflight semantics: the
// first caller of a key runs the function; concurrent callers of the same
// key block until it finishes and share the result. Values and
// deterministic errors are cached (simulations are deterministic, so such
// an error is as reproducible as a result); context cancellation and
// deadline errors are transient and evicted so a retry recomputes.
type Cache[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*entry[V]
	hits   atomic.Uint64
	misses atomic.Uint64
}

// New returns an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: make(map[K]*entry[V])}
}

// Do returns the cached result for k, running fn exactly once per key to
// produce it. Concurrent callers with the same key wait for the single
// in-flight computation. If fn panics, the panic propagates to the
// first caller, waiters receive an error, and the key is forgotten so a
// later call may retry.
//
// Deterministic errors are cached like values (a reproducible simulation
// fails reproducibly), but context cancellation and deadline errors are
// transient — they describe the caller, not the computation — so the key
// is forgotten and a later call recomputes. Without that eviction a
// single canceled request would poison its point for the cache's
// lifetime (the original tvpd daemon bug).
func (c *Cache[K, V]) Do(k K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()
	c.misses.Add(1)

	panicked := true
	defer func() {
		if panicked {
			c.mu.Lock()
			delete(c.m, k)
			c.mu.Unlock()
			e.err = fmt.Errorf("simcache: computation for %v panicked", k)
			close(e.done)
		}
	}()
	e.val, e.err = fn()
	panicked = false
	if transientErr(e.err) {
		c.mu.Lock()
		if c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// transientErr reports whether err reflects the caller's context rather
// than the computation itself, and therefore must not be memoized.
func transientErr(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Get returns the completed result for k without computing anything. It
// reports false if the key is absent or still in flight.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[k]
	c.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			var zero V
			return zero, false
		}
		return e.val, true
	default:
		var zero V
		return zero, false
	}
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters returns the cumulative hit and miss counts. A hit is a Do call
// that found an existing entry (including in-flight singleflight joins).
func (c *Cache[K, V]) Counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset discards every entry and zeroes the counters. In-flight
// computations complete but their results are not retained.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = make(map[K]*entry[V])
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
