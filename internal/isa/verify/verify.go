// Package verify statically checks encoded micro-ISA programs before
// they are allowed to run: it decodes the binary, constructs a
// control-flow graph (resolving the fuzzgen idioms — masked indices,
// jump tables, BR/RET indirect targets — through a conservative
// value-set/interval/known-bits abstract domain), and runs a pipeline
// of analyses with position-exact diagnostics:
//
//   - structural: decodability, in-range direct branch targets, a
//     reachable HALT, no fall-through past the last instruction;
//   - def-before-use dataflow over the integer and FP register files;
//   - memory bounds: every load/store footprint provably inside the
//     data or stack windows, and no store overlapping text
//     (self-modifying code is rejected);
//   - indirect-branch resolution: BR/RET targets must enumerate to
//     valid text addresses;
//   - termination: every cycle of the feasible CFG must have an exit
//     edge (no reachable component the program can never leave).
//
// The memory model reaches a fixpoint by assume-guarantee iteration:
// loads read against the store summary observed by the previous round
// until the summary stops growing, so stores in loops are accounted
// for without path enumeration. Soundness goal (fuzz-tested by
// FuzzVerify): if Program reports no Error, the emulator can execute
// the program without panicking and every memory access stays inside
// the windows the Result reports.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/isa/tvpb"
)

// Severity grades a diagnostic. Only Error makes a program unrunnable;
// Warn (e.g. reads of never-written registers, which architecturally
// read zero) and Info (unreachable code) are lint findings.
type Severity int

const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diag is one structured, position-exact finding.
type Diag struct {
	Check string   // analysis that produced it: struct, target, fallthrough, halt, defuse, bounds, selfmod, indirect, loop, converge, decode
	Sev   Severity
	Index int    // instruction index, -1 for program-level findings
	PC    uint64 // byte address of Index (0 when Index < 0)
	Msg   string
}

func (d Diag) String() string {
	if d.Index < 0 {
		return fmt.Sprintf("%s: [%s] %s", d.Sev, d.Check, d.Msg)
	}
	return fmt.Sprintf("%s: inst %d @%#x: [%s] %s", d.Sev, d.Index, d.PC, d.Check, d.Msg)
}

// Options tunes a verification run.
type Options struct {
	// StrictDefUse upgrades def-before-use findings from Warn to Error.
	StrictDefUse bool
	// MaxOuter bounds the assume-guarantee memory iterations (0 = default).
	MaxOuter int
	// MaxSteps bounds total abstract transfer executions (0 = default).
	MaxSteps int
}

const (
	defaultMaxOuter = 64
	defaultMaxSteps = 4_000_000
	widenThreshold  = 24
)

// Result carries the findings plus the feasible CFG the fixpoint
// discovered (successor lists and reachability per instruction).
type Result struct {
	Diags     []Diag
	Succs     [][]int // feasible successors per instruction (nil when unreachable)
	Reachable []bool
	MemIters  int // assume-guarantee rounds until the store summary stabilized

	dataLo, dataHi   uint64
	stackLo, stackHi uint64
}

// OK reports whether the program passed (no Error-severity findings).
func (r *Result) OK() bool {
	for _, d := range r.Diags {
		if d.Sev == Error {
			return false
		}
	}
	return true
}

// Errors returns only the Error-severity findings.
func (r *Result) Errors() []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Sev == Error {
			out = append(out, d)
		}
	}
	return out
}

// Allows reports whether a concrete memory access of size bytes at ea
// falls inside the windows the verifier proved all accesses stay in.
// FuzzVerify uses it to hold the verifier to its own claim.
func (r *Result) Allows(ea uint64, size uint8) bool {
	hi := ea + uint64(size)
	if hi < ea {
		return false
	}
	return (ea >= r.dataLo && hi <= r.dataHi) || (ea >= r.stackLo && hi <= r.stackHi)
}

// Program verifies an in-memory program.
func Program(p *prog.Program, opt Options) *Result {
	v := &verifier{
		p:      p,
		n:      len(p.Code),
		opt:    opt,
		mem:    newMemModel(p),
		marks:  landmarks(p),
		diags:  map[diagKey]Diag{},
		ctxs:   [][]int{nil},
		ctxIDs: map[string]int{"": 0},
	}
	if v.opt.MaxOuter <= 0 {
		v.opt.MaxOuter = defaultMaxOuter
	}
	if v.opt.MaxSteps <= 0 {
		v.opt.MaxSteps = defaultMaxSteps
	}
	return v.run()
}

// Binary decodes a TVPB container and verifies the program. A container
// that does not decode yields a nil program and a single decode
// diagnostic.
func Binary(data []byte, opt Options) (*prog.Program, *Result) {
	p, err := tvpb.DecodeProgram(data)
	if err != nil {
		return nil, &Result{Diags: []Diag{{
			Check: "decode", Sev: Error, Index: -1, Msg: err.Error(),
		}}}
	}
	return p, Program(p, opt)
}

type diagKey struct {
	check string
	index int
}

type verifier struct {
	p   *prog.Program
	n   int
	opt Options

	mem   *memModel
	marks []uint64

	pre   []Diag            // structural pre-pass findings (kept across iterations)
	diags map[diagKey]Diag  // per-iteration findings (reset each outer round)

	// Call-string contexts: the fixpoint analyzes (instruction, context)
	// pairs so that states flowing in from distinct call sites never
	// merge inside a callee. Contexts partition states only — CFG edges
	// are always computed from abstract register values, so a program
	// that tampers with the link register is still handled soundly,
	// merely less precisely.
	ctxs   [][]int        // interned call strings (stacks of BL sites); ctxs[0] is empty
	ctxIDs map[string]int // encoded call string -> context id
	curCtx int            // context of the node currently being transferred

	succs     [][]int
	reachable []bool
	haltSeen  bool
	steps     int
	aborted   bool
}

const (
	// maxCtxDepth bounds call-string length; deeper recursion merges
	// into the deepest tracked frame (sound, less precise).
	maxCtxDepth = 16
	// maxCtxs bounds the interning table against adversarial call webs.
	maxCtxs = 4096
)

func ctxKey(cs []int) string {
	b := make([]byte, 0, len(cs)*4)
	for _, x := range cs {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return string(b)
}

func (v *verifier) internCtx(cs []int) int {
	key := ctxKey(cs)
	if id, ok := v.ctxIDs[key]; ok {
		return id
	}
	id := len(v.ctxs)
	v.ctxs = append(v.ctxs, append([]int(nil), cs...))
	v.ctxIDs[key] = id
	return id
}

// pushCtx extends the call string with a BL site, saturating at the
// depth and table limits (the context is then simply reused).
func (v *verifier) pushCtx(ctx, site int) int {
	cs := v.ctxs[ctx]
	if len(cs) >= maxCtxDepth || len(v.ctxs) >= maxCtxs {
		return ctx
	}
	ns := make([]int, len(cs)+1)
	copy(ns, cs)
	ns[len(cs)] = site
	return v.internCtx(ns)
}

// retCtx pops the top frame when a RET goes back to the instruction
// after its BL; any other return target keeps the context as-is.
func (v *verifier) retCtx(ctx, target int) int {
	cs := v.ctxs[ctx]
	if len(cs) > 0 && cs[len(cs)-1]+1 == target {
		return v.internCtx(cs[:len(cs)-1])
	}
	return ctx
}

func (v *verifier) addDiag(check string, sev Severity, index int, msg string) {
	k := diagKey{check, index}
	if _, ok := v.diags[k]; ok {
		return
	}
	var pc uint64
	if index >= 0 {
		pc = prog.PC(index)
	}
	v.diags[k] = Diag{Check: check, Sev: sev, Index: index, PC: pc, Msg: msg}
}

func (v *verifier) addDefUse(index int, msg string) {
	sev := Warn
	if v.opt.StrictDefUse {
		sev = Error
	}
	k := diagKey{"defuse", index}
	if _, ok := v.diags[k]; ok {
		return
	}
	v.diags[k] = Diag{Check: "defuse", Sev: sev, Index: index, PC: prog.PC(index), Msg: msg}
}

func (v *verifier) run() *Result {
	if v.n == 0 {
		return v.result([]Diag{{Check: "halt", Sev: Error, Index: -1, Msg: "empty program (no instructions, no HALT)"}})
	}

	// Structural pre-pass over every instruction, reachable or not.
	for i := range v.p.Code {
		in := &v.p.Code[i]
		if in.Op > isa.HALT {
			v.pre = append(v.pre, Diag{Check: "struct", Sev: Error, Index: i, PC: prog.PC(i),
				Msg: fmt.Sprintf("invalid opcode %d", uint8(in.Op))})
			continue
		}
		switch in.Op {
		case isa.B, isa.BCOND, isa.CBZ, isa.CBNZ, isa.TBZ, isa.TBNZ, isa.BL:
			if in.Target < 0 || in.Target >= v.n {
				v.pre = append(v.pre, Diag{Check: "target", Sev: Error, Index: i, PC: prog.PC(i),
					Msg: fmt.Sprintf("direct branch target %d outside text [0, %d)", in.Target, v.n)})
			}
		}
	}

	// Assume-guarantee outer loop: re-run the dataflow until the store
	// summary (smashed spans + cells) stops growing, so loads in the
	// final round see every store any execution can perform.
	iters := 0
	for {
		iters++
		v.mem.beginIter()
		v.diags = map[diagKey]Diag{}
		v.haltSeen = false
		v.steps = 0
		v.aborted = false
		v.fixpoint()
		if v.aborted {
			v.addDiag("converge", Error, -1,
				fmt.Sprintf("abstract interpretation exceeded %d steps without converging", v.opt.MaxSteps))
			break
		}
		if v.mem.stable() {
			break
		}
		if iters >= v.opt.MaxOuter {
			v.addDiag("converge", Error, -1,
				fmt.Sprintf("store summary did not stabilize within %d rounds", v.opt.MaxOuter))
			break
		}
	}

	var diags []Diag
	diags = append(diags, v.pre...)
	for _, d := range v.diags {
		diags = append(diags, d)
	}
	diags = append(diags, v.postChecks()...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Index != diags[j].Index {
			return diags[i].Index < diags[j].Index
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Msg < diags[j].Msg
	})
	r := v.result(diags)
	r.MemIters = iters
	return r
}

func (v *verifier) result(diags []Diag) *Result {
	r := &Result{
		Diags:     diags,
		Succs:     v.succs,
		Reachable: v.reachable,
	}
	if v.mem != nil {
		r.dataLo, r.dataHi = v.mem.data.lo, v.mem.data.hi
		r.stackLo, r.stackHi = v.mem.stack.lo, v.mem.stack.hi
	}
	return r
}

// nodeKey identifies one abstract interpretation node: an instruction
// in a call-string context.
type nodeKey struct {
	idx int
	ctx int
}

// fixpoint runs the worklist abstract interpretation from the entry
// point, discovering CFG edges as values resolve. Nodes are
// (instruction, context) pairs; the reported CFG (succs/reachable) is
// the per-instruction union over contexts.
func (v *verifier) fixpoint() {
	in := map[nodeKey]*state{}
	visits := map[nodeKey]int{}
	queued := map[nodeKey]bool{}
	v.succs = make([][]int, v.n)
	v.reachable = make([]bool, v.n)

	entry := nodeKey{idx: 0, ctx: 0}
	in[entry] = entryState()
	queue := []nodeKey{entry}
	queued[entry] = true

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		queued[k] = false

		v.steps++
		if v.steps > v.opt.MaxSteps {
			v.aborted = true
			return
		}

		v.reachable[k.idx] = true
		st := in[k].clone()
		v.curCtx = k.ctx
		edges := v.transfer(k.idx, st)

		for _, e := range edges {
			if !containsInt(v.succs[k.idx], e.to) {
				v.succs[k.idx] = append(v.succs[k.idx], e.to)
			}
		}

		for _, e := range edges {
			t := nodeKey{idx: e.to, ctx: e.ctx}
			if in[t] == nil {
				in[t] = e.st.clone()
				visits[t] = 1
				if !queued[t] {
					queued[t] = true
					queue = append(queue, t)
				}
				continue
			}
			if joinInto(in[t], e.st) {
				// Widen only at targets of backward edges (loop heads).
				// Every cycle contains one, so termination is preserved,
				// while interior nodes keep computing plain transfers of
				// the head's stabilized state — widening them too would
				// ratchet chained post-increment cursors up the landmark
				// ladder without bound.
				if e.to <= k.idx {
					visits[t]++
					if visits[t] > widenThreshold {
						in[t].widen(v.marks)
					}
				}
				if !queued[t] {
					queued[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	for i := range v.succs {
		sort.Ints(v.succs[i])
	}
}

// postChecks runs the whole-CFG analyses over the final feasible graph:
// HALT reachability, inescapable cycles (Tarjan SCC condensation), and
// unreachable-code info notes.
func (v *verifier) postChecks() []Diag {
	var out []Diag
	if v.reachable == nil {
		return out
	}

	if !v.haltSeen {
		out = append(out, Diag{Check: "halt", Sev: Error, Index: -1,
			Msg: "no reachable HALT: every feasible path runs off into branches or traps"})
	}

	// Inescapable cycles: any strongly-connected component that contains
	// a cycle and has no edge leaving it can never reach HALT.
	for _, scc := range v.sccs() {
		if !v.sccHasCycle(scc) {
			continue
		}
		if v.sccHasExit(scc) {
			continue
		}
		min := scc[0]
		for _, n := range scc {
			if n < min {
				min = n
			}
		}
		out = append(out, Diag{Check: "loop", Sev: Error, Index: min, PC: prog.PC(min),
			Msg: fmt.Sprintf("inescapable cycle of %d instruction(s): no feasible exit edge leaves it", len(scc))})
	}

	// Unreachable code is informational: fuzz mutants and hand-written
	// binaries may carry dead regions without being unsafe.
	for i := 0; i < v.n; {
		if v.reachable[i] {
			i++
			continue
		}
		j := i
		for j < v.n && !v.reachable[j] {
			j++
		}
		out = append(out, Diag{Check: "unreachable", Sev: Info, Index: i, PC: prog.PC(i),
			Msg: fmt.Sprintf("instructions %d..%d are unreachable", i, j-1)})
		i = j
	}
	return out
}

func (v *verifier) sccHasCycle(scc []int) bool {
	if len(scc) > 1 {
		return true
	}
	n := scc[0]
	return containsInt(v.succs[n], n) // self-loop
}

func (v *verifier) sccHasExit(scc []int) bool {
	inSCC := map[int]bool{}
	for _, n := range scc {
		inSCC[n] = true
	}
	for _, n := range scc {
		for _, s := range v.succs[n] {
			if !inSCC[s] {
				return true
			}
		}
	}
	return false
}

// sccs returns the strongly-connected components of the reachable
// feasible CFG (iterative Tarjan).
func (v *verifier) sccs() [][]int {
	const unvisited = -1
	index := make([]int, v.n)
	lowlink := make([]int, v.n)
	onStack := make([]bool, v.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int
		result [][]int
		next   = 0
	)

	type frame struct {
		node int
		succ int
	}
	for root := 0; root < v.n; root++ {
		if !v.reachable[root] || index[root] != unvisited {
			continue
		}
		callStack := []frame{{node: root}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			n := f.node
			if f.succ < len(v.succs[n]) {
				s := v.succs[n][f.succ]
				f.succ++
				if index[s] == unvisited {
					index[s], lowlink[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					callStack = append(callStack, frame{node: s})
				} else if onStack[s] {
					if index[s] < lowlink[n] {
						lowlink[n] = index[s]
					}
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].node
				if lowlink[n] < lowlink[parent] {
					lowlink[parent] = lowlink[n]
				}
			}
			if lowlink[n] == index[n] {
				var scc []int
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				result = append(result, scc)
			}
		}
	}
	return result
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
