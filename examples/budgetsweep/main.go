// budgetsweep reproduces the paper's Table 3 sensitivity study on a
// chosen workload: the same VTAGE layout at several storage scales, for
// each targeting flavor, demonstrating the central storage argument —
// MVP and TVP reach their potential with a fraction of GVP's budget
// because their entries are 1 and 9 bits wide instead of 64 (§3.3).
//
//	go run ./examples/budgetsweep [workload]
package main

import (
	"fmt"
	"log"
	"os"

	tvp "repro"
	"repro/internal/config"
	"repro/internal/report"
)

func main() {
	workload := "602_gcc_s_2"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	base, err := tvp.Run(tvp.Options{Workload: workload, Warmup: 20_000, MaxInsts: 120_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s, baseline IPC %.3f\n\n", workload, base.Stats.IPC())
	fmt.Printf("%-14s | %-22s | %-22s | %-22s\n", "table scale", "MVP", "TVP", "GVP")
	fmt.Printf("%-14s | %10s %9s | %10s %9s | %10s %9s\n",
		"", "storage", "speedup", "storage", "speedup", "storage", "speedup")

	for _, scale := range []struct {
		label string
		d     int
	}{{"0.5x", -1}, {"1x (Table 2)", 0}, {"2x", 1}} {
		fmt.Printf("%-14s |", scale.label)
		for _, mode := range []tvp.VPMode{tvp.MVP, tvp.TVP, tvp.GVP} {
			cfg := config.Default().WithVPBudgetScale(scale.d)
			res, err := tvp.Run(tvp.Options{
				Workload: workload, VP: mode, Config: cfg,
				Warmup: 20_000, MaxInsts: 120_000,
			})
			if err != nil {
				log.Fatal(err)
			}
			up := (res.Stats.IPC()/base.Stats.IPC() - 1) * 100
			fmt.Printf(" %8.1fKB %+8.2f%% |", report.StorageKB(cfg, mode), up)
		}
		fmt.Println()
	}
	fmt.Println("\nPaper Table 3's point: at every budget the ordering holds, and the small")
	fmt.Println("flavors' footprints stay far below GVP's for the same table geometry.")
}
