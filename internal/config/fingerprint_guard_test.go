package config

import (
	"reflect"
	"strings"
	"testing"
)

// TestMachineFingerprintable re-asserts the init-time invariant so a
// violation shows up as a named test failure, not just an init panic.
func TestMachineFingerprintable(t *testing.T) {
	if err := fingerprintable(reflect.TypeOf(Machine{})); err != nil {
		t.Fatalf("Machine must stay %%#v-fingerprintable: %v", err)
	}
}

// TestFingerprintableRejects checks the guard actually detects each
// non-value kind, including ones nested behind structs and slices.
func TestFingerprintableRejects(t *testing.T) {
	type inner struct {
		P *int
	}
	cases := []struct {
		name string
		typ  reflect.Type
		want string
	}{
		{"map", reflect.TypeOf(struct{ M map[string]int }{}), ".M has non-value kind map"},
		{"pointer", reflect.TypeOf(struct{ P *int }{}), ".P has non-value kind ptr"},
		{"func", reflect.TypeOf(struct{ F func() }{}), ".F has non-value kind func"},
		{"chan", reflect.TypeOf(struct{ C chan int }{}), ".C has non-value kind chan"},
		{"interface", reflect.TypeOf(struct{ I any }{}), ".I has non-value kind interface"},
		{"slice elem", reflect.TypeOf(struct{ S []*int }{}), ".S[] has non-value kind ptr"},
		{"nested struct", reflect.TypeOf(struct{ In inner }{}), ".In.P has non-value kind ptr"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := fingerprintable(c.typ)
			if err == nil {
				t.Fatalf("fingerprintable(%s) accepted a non-value field", c.typ)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
