package prog

import (
	"encoding/binary"
	"testing"

	"repro/internal/isa"
)

func TestLabelsForwardBackward(t *testing.T) {
	b := NewBuilder("t")
	fwd := b.NewLabel()
	top := b.Here() // index 0
	b.Nop()
	b.B(fwd)
	b.B(top)
	b.Bind(fwd)
	b.Nop()
	p := b.Build()
	if p.Code[1].Target != 3 {
		t.Errorf("forward branch target = %d, want 3", p.Code[1].Target)
	}
	if p.Code[2].Target != 0 {
		t.Errorf("backward branch target = %d, want 0", p.Code[2].Target)
	}
}

func TestUnboundLabelPanics(t *testing.T) {
	b := NewBuilder("t")
	l := b.NewLabel()
	b.B(l)
	defer func() {
		if recover() == nil {
			t.Fatal("Build with unbound label must panic")
		}
	}()
	b.Build()
}

func TestDoubleBindPanics(t *testing.T) {
	b := NewBuilder("t")
	l := b.NewLabel()
	b.Bind(l)
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind must panic")
		}
	}()
	b.Bind(l)
}

func TestAllocAlignmentAndInit(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Alloc(100, 64)
	a2 := b.Alloc(8, 64)
	if a1%64 != 0 || a2%64 != 0 {
		t.Errorf("allocations not aligned: %#x %#x", a1, a2)
	}
	if a2 < a1+100 {
		t.Error("allocations overlap")
	}
	w := b.AllocWords(4, 1, 2, 3)
	b.SetWord(w+24, 99)
	p := b.Build()
	var seg *Segment
	for i := range p.Data {
		if p.Data[i].Base == w {
			seg = &p.Data[i]
		}
	}
	if seg == nil {
		t.Fatal("word segment missing")
	}
	vals := []uint64{1, 2, 3, 99}
	for i, want := range vals {
		if got := binary.LittleEndian.Uint64(seg.Bytes[i*8:]); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
}

func TestSetWordOutOfRangePanics(t *testing.T) {
	b := NewBuilder("t")
	b.Alloc(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("SetWord outside allocations must panic")
		}
	}()
	b.SetWord(0xdead0000, 1)
}

func TestSetWordLabel(t *testing.T) {
	b := NewBuilder("t")
	tbl := b.Alloc(16, 8)
	l := b.NewLabel()
	b.SetWordLabel(tbl+8, l)
	b.Nop()
	b.Nop()
	b.Bind(l)
	b.Nop()
	p := b.Build()
	got := binary.LittleEndian.Uint64(p.Data[0].Bytes[8:])
	if got != PC(2) {
		t.Errorf("jump table slot = %#x, want %#x", got, PC(2))
	}
}

func TestHaltAppended(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	p := b.Build()
	if p.Code[len(p.Code)-1].Op != isa.HALT {
		t.Error("Build must append HALT")
	}
	b2 := NewBuilder("t2")
	b2.Halt()
	p2 := b2.Build()
	if len(p2.Code) != 1 {
		t.Error("explicit HALT must not be duplicated")
	}
}

func TestMovImmLengths(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {1, 1}, {0xffff, 1}, {0x10000, 1}, {0x12340000, 1},
		{0x123456789abcdef0, 4}, {0xffff0000ffff, 2}, // zero halfword skipped
	}
	for _, tc := range cases {
		b := NewBuilder("t")
		b.MovImm(isa.X0, tc.v)
		b.Halt()
		p := b.Build()
		if got := len(p.Code) - 1; got != tc.want {
			t.Errorf("MovImm(%#x) emitted %d insts, want %d", tc.v, got, tc.want)
		}
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		if got := Index(PC(i), 100); got != i {
			t.Fatalf("Index(PC(%d)) = %d", i, got)
		}
	}
	if Index(PC(100), 100) != -1 {
		t.Error("out-of-range PC must map to -1")
	}
	if Index(TextBase+2, 100) != -1 {
		t.Error("misaligned PC must map to -1")
	}
	if Index(TextBase-4, 100) != -1 {
		t.Error("below-text PC must map to -1")
	}
}

func TestCsetEncoding(t *testing.T) {
	b := NewBuilder("t")
	b.Cset(isa.X1, isa.EQ)
	p := b.Build()
	in := p.Code[0]
	// cset x1, eq == csinc x1, xzr, xzr, ne
	if in.Op != isa.CSINC || in.Rn != isa.XZR || in.Rm != isa.XZR || in.Cond != isa.NE {
		t.Errorf("cset encoding wrong: %+v", in)
	}
}

func TestCmpTstEncodings(t *testing.T) {
	b := NewBuilder("t")
	b.Cmp(isa.X1, isa.X2)
	b.TstI(isa.X1, 7)
	p := b.Build()
	if p.Code[0].Op != isa.SUBS || p.Code[0].Rd != isa.XZR {
		t.Error("cmp must be subs xzr")
	}
	if p.Code[1].Op != isa.ANDS || p.Code[1].Rd != isa.XZR || !p.Code[1].UseImm {
		t.Error("tst must be ands xzr, #imm")
	}
}
