package obs

import (
	"testing"

	"repro/internal/stats"
)

// snap builds a counter block with the given committed-instruction and
// cycle totals (the fields the derived interval metrics divide by).
func snap(insts, cycles, brMiss, squashed uint64) stats.Sim {
	return stats.Sim{ArchInsts: insts, Cycles: cycles, BranchMispredicts: brMiss, SquashedUOps: squashed}
}

func TestSamplerWarmupBoundaryExcluded(t *testing.T) {
	s := NewSampler(100_000)
	// Baseline primed at the warmup boundary: counters accumulated before
	// it must not leak into the first interval.
	warm := snap(50_000, 20_000, 500, 0)
	s.Observe(50_000, 20_000, &warm)
	end := snap(150_000, 60_000, 800, 0)
	s.Observe(150_000, 60_000, &end)

	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	sm := samples[0]
	if sm.StartInst != 50_000 || sm.EndInst != 150_000 {
		t.Errorf("interval bounds [%d,%d), want [50000,150000)", sm.StartInst, sm.EndInst)
	}
	if sm.Delta.ArchInsts != 100_000 || sm.Delta.BranchMispredicts != 300 {
		t.Errorf("warmup leaked into delta: %+v", sm.Delta)
	}
	if sm.Partial {
		t.Error("full interval marked partial")
	}
	if want := 100_000.0 / 40_000.0; sm.IPC != want {
		t.Errorf("interval IPC %f, want %f", sm.IPC, want)
	}
	if want := 1000 * 300.0 / 100_000.0; sm.BranchMPKI != want {
		t.Errorf("interval branch MPKI %f, want %f", sm.BranchMPKI, want)
	}
}

func TestSamplerRunShorterThanInterval(t *testing.T) {
	s := NewSampler(100_000)
	base := snap(0, 0, 0, 0)
	s.Observe(0, 0, &base)
	end := snap(7_000, 3_000, 10, 0)
	s.Observe(7_000, 3_000, &end) // tail sample at run end

	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	if !samples[0].Partial {
		t.Error("sub-interval tail not marked partial")
	}
	if samples[0].Delta.ArchInsts != 7_000 {
		t.Errorf("tail delta ArchInsts %d, want 7000", samples[0].Delta.ArchInsts)
	}
}

func TestSamplerTailOnBoundaryDeduped(t *testing.T) {
	s := NewSampler(100)
	base := snap(0, 0, 0, 0)
	s.Observe(0, 0, &base)
	mid := snap(100, 40, 0, 0)
	s.Observe(100, 40, &mid)
	// Run ends exactly on the interval boundary: the core's tail sample
	// repeats the same committed count and must not produce a zero-length
	// interval.
	s.Observe(100, 40, &mid)

	if n := len(s.Samples()); n != 1 {
		t.Fatalf("got %d samples, want 1 (boundary tail not deduped)", n)
	}
}

func TestSamplerMultipleIntervalsPlusTail(t *testing.T) {
	s := NewSampler(100)
	cur := snap(0, 0, 0, 0)
	s.Observe(0, 0, &cur)
	for _, insts := range []uint64{100, 200, 300, 350} {
		cur = snap(insts, insts*2, insts/10, 0)
		s.Observe(insts, insts*2, &cur)
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	for i, sm := range samples[:3] {
		if sm.Partial {
			t.Errorf("sample %d marked partial", i)
		}
		if sm.Delta.ArchInsts != 100 {
			t.Errorf("sample %d delta %d, want 100", i, sm.Delta.ArchInsts)
		}
	}
	tail := samples[3]
	if !tail.Partial || tail.Delta.ArchInsts != 50 {
		t.Errorf("tail: partial=%v delta=%d, want partial 50", tail.Partial, tail.Delta.ArchInsts)
	}
	// Interval deltas must add back up to the totals.
	var sum uint64
	for _, sm := range samples {
		sum += sm.Delta.ArchInsts
	}
	if sum != 350 {
		t.Errorf("interval deltas sum to %d, want 350", sum)
	}
}

// TestSamplerSquashHeavyRegion checks that counters which can grow much
// faster than commit (squashed µops during flush storms) are carried
// per-interval like any other counter.
func TestSamplerSquashHeavyRegion(t *testing.T) {
	s := NewSampler(100)
	cur := snap(0, 0, 0, 0)
	s.Observe(0, 0, &cur)
	cur = snap(100, 1_000, 50, 40_000) // flush-storm interval
	s.Observe(100, 1_000, &cur)
	cur = snap(200, 1_100, 50, 40_000) // calm interval
	s.Observe(200, 1_100, &cur)

	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].Delta.SquashedUOps != 40_000 || samples[1].Delta.SquashedUOps != 0 {
		t.Errorf("squash deltas %d,%d, want 40000,0",
			samples[0].Delta.SquashedUOps, samples[1].Delta.SquashedUOps)
	}
	if samples[0].IPC >= samples[1].IPC {
		t.Errorf("flush-storm interval IPC %f not below calm interval %f",
			samples[0].IPC, samples[1].IPC)
	}
}
