package pipeline

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

// phaseChangeProgram loads a slot, at a single static PC, whose value
// alternates between 0 and 1 every 8192 iterations: long enough for the
// FPC to saturate within a phase, so every boundary produces a used
// misprediction (and, for MVP/TVP, a flush of the predicted instruction).
func phaseChangeProgram() *prog.Program {
	b := prog.NewBuilder("phase")
	slot := b.AllocWords(1, 0)
	b.MovAddr(isa.X1, slot)
	b.MovImm(isa.X2, 60000)
	top := b.Here()
	b.AddI(isa.X8, isa.X8, 1)
	b.LsrI(isa.X6, isa.X8, 13)
	b.AndI(isa.X6, isa.X6, 1)
	b.Str(isa.X6, isa.X1, 0, 8)
	b.Nop()
	b.Nop()
	b.Ldr(isa.X4, isa.X1, 0, 8) // phase-stable 0/1 at one PC
	b.Add(isa.X5, isa.X5, isa.X4)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

func TestVPFlushRecovery(t *testing.T) {
	base := New(config.Default(), phaseChangeProgram()).Run(0, 1<<62)
	if !base.Halted {
		t.Fatal("baseline did not halt")
	}
	for _, mode := range []config.VPMode{config.MVP, config.TVP, config.GVP} {
		res := New(config.Default().WithVP(mode), phaseChangeProgram()).Run(0, 1<<62)
		if !res.Halted {
			t.Fatalf("%v did not halt", mode)
		}
		if res.Committed != base.Committed {
			t.Errorf("%v committed %d, baseline %d", mode, res.Committed, base.Committed)
		}
		st := res.Stats
		if mode != config.GVP && st.VPFlushes == 0 {
			t.Errorf("%v: the phase change must cause at least one value-misprediction flush", mode)
		}
		if st.VPIncorrectUsed == 0 {
			t.Errorf("%v: expected a used misprediction at the phase boundary", mode)
		}
		if acc := st.VPAccuracy(); acc < 0.99 {
			t.Errorf("%v: accuracy %.4f — silencing should confine the damage", mode, acc)
		}
	}
}

func TestLivelockWithoutSilencing(t *testing.T) {
	// §3.4.1: under MVP/TVP the mispredicted instruction is refetched; if
	// the predictor immediately re-supplies the same wrong confident
	// prediction, the machine livelocks. With SilenceCycles = 0 our
	// deadlock watchdog must fire; with the paper's silencing it must
	// complete.
	cfg := config.Default().WithVP(config.MVP)
	cfg.VP.SilenceCycles = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected livelock (watchdog panic) without silencing")
			}
		}()
		New(cfg, phaseChangeProgram()).Run(0, 1<<62)
	}()

	ok := config.Default().WithVP(config.MVP)
	ok.VP.SilenceCycles = 15
	res := New(ok, phaseChangeProgram()).Run(0, 1<<62)
	if !res.Halted {
		t.Error("15-cycle silencing must be sufficient for liveness (§3.4.1)")
	}
}

// aliasProgram forces a memory-order violation: a store and a dependent
// load to the same address where the store's address generation is
// delayed behind a long divide chain, so the load issues first.
func aliasProgram() *prog.Program {
	b := prog.NewBuilder("alias")
	buf := b.AllocWords(4, 5)
	b.MovAddr(isa.X1, buf)
	b.MovImm(isa.X9, 3)
	b.MovImm(isa.X2, 20000)
	top := b.Here()
	// Slow chain gating the store's data and address offset.
	b.Sdiv(isa.X3, isa.X2, isa.X9)
	b.Sdiv(isa.X3, isa.X3, isa.X9)
	b.AndI(isa.X4, isa.X3, 0) // always 0, but dataflow-dependent
	b.StrR(isa.X2, isa.X1, isa.X4, 3, 8)
	b.Ldr(isa.X5, isa.X1, 0, 8) // aliases the store
	b.Add(isa.X6, isa.X6, isa.X5)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

func TestMemoryOrderViolationAndStoreSetTraining(t *testing.T) {
	res := New(config.Default(), aliasProgram()).Run(0, 1<<62)
	if !res.Halted {
		t.Fatal("did not halt")
	}
	st := res.Stats
	if st.MemOrderFlushes == 0 {
		t.Fatal("expected at least one memory-order violation")
	}
	// Store sets must learn the pair: violations must be rare relative
	// to iterations (20000).
	if st.MemOrderFlushes > 200 {
		t.Errorf("store sets failed to learn: %d violations", st.MemOrderFlushes)
	}
}

func TestSpSRPreservesArchitecturalProgress(t *testing.T) {
	p := func() *prog.Program { return loopProgram(15000) }
	base := New(config.Default(), p()).Run(0, 1<<62)
	for _, mode := range []config.VPMode{config.MVP, config.TVP, config.GVP} {
		cfg := config.Default().WithVP(mode).WithSpSR(true)
		res := New(cfg, p()).Run(0, 1<<62)
		if res.Committed != base.Committed {
			t.Errorf("%v+SpSR committed %d, baseline %d", mode, res.Committed, base.Committed)
		}
	}
}

func TestActivityCounters(t *testing.T) {
	res := New(config.Default(), loopProgram(10000)).Run(0, 1<<62)
	st := res.Stats
	if st.IntPRFReads == 0 || st.IntPRFWrites == 0 {
		t.Error("PRF activity counters silent")
	}
	if st.IQIssued > st.IQAdded {
		t.Errorf("issued %d > dispatched %d", st.IQIssued, st.IQAdded)
	}
	if st.UOps < st.ArchInsts {
		t.Error("µops must be at least architectural instructions")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Default().WithVP(config.TVP).WithSpSR(true)
	a := New(cfg, loopProgram(8000)).Run(1000, 1<<62)
	b := New(cfg, loopProgram(8000)).Run(1000, 1<<62)
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Error("identical runs diverged; the simulator must be deterministic")
	}
}

func TestWarmupExcluded(t *testing.T) {
	full := New(config.Default(), loopProgram(20000)).Run(0, 1<<62)
	warm := New(config.Default(), loopProgram(20000)).Run(50_000, 1<<62)
	if warm.Stats.ArchInsts >= full.Stats.ArchInsts {
		t.Error("warmup instructions must be excluded from stats")
	}
	if warm.Committed != full.Committed {
		t.Error("total committed must not depend on the warmup boundary")
	}
}

func TestMaxInstsCutoff(t *testing.T) {
	res := New(config.Default(), loopProgram(1<<30)).Run(1000, 5000)
	if res.Committed < 6000 || res.Committed > 6000+64 {
		t.Errorf("committed %d, want ≈ 6000 (warmup+measured, commit-width slack)", res.Committed)
	}
}

func TestBranchPredictionLearns(t *testing.T) {
	res := New(config.Default(), loopProgram(20000)).Run(5000, 1<<62)
	st := res.Stats
	// The loop branch and modulo patterns are learnable.
	if mpki := st.BranchMPKI(); mpki > 2 {
		t.Errorf("MPKI %.2f on a fully predictable loop", mpki)
	}
}

func TestFUCapabilityMaskMatchesClasses(t *testing.T) {
	// config cap bits must line up with isa.Class values (the pipeline
	// relies on 1<<class).
	pairs := []struct {
		cap uint32
		cl  isa.Class
	}{
		{config.CapNop, isa.ClassNop},
		{config.CapIntALU, isa.ClassIntALU},
		{config.CapIntMul, isa.ClassIntMul},
		{config.CapIntDiv, isa.ClassIntDiv},
		{config.CapFPALU, isa.ClassFPALU},
		{config.CapFPMul, isa.ClassFPMul},
		{config.CapFPDiv, isa.ClassFPDiv},
		{config.CapLoad, isa.ClassLoad},
		{config.CapStore, isa.ClassStore},
		{config.CapBranch, isa.ClassBranch},
	}
	for _, p := range pairs {
		if p.cap != 1<<uint(p.cl) {
			t.Errorf("capability bit mismatch for class %v", p.cl)
		}
	}
}

func TestEliminatedInstructionsSkipIQ(t *testing.T) {
	// A program dominated by zero idioms: with elimination the IQ sees
	// far fewer µops than commit does.
	b := prog.NewBuilder("elim")
	b.MovImm(isa.X9, 30000)
	top := b.Here()
	for i := 0; i < 8; i++ {
		b.Zero(isa.X1)
		b.Mov(isa.X2, isa.X3)
	}
	b.SubsI(isa.X9, isa.X9, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	res := New(config.Default(), b.Build()).Run(1000, 200000)
	st := res.Stats
	if st.ZeroIdiomElim == 0 || st.MoveElim == 0 {
		t.Fatal("idioms not eliminated")
	}
	if st.IQAdded >= st.UOps {
		t.Errorf("eliminated µops must not dispatch: IQ %d vs µops %d", st.IQAdded, st.UOps)
	}
}

func TestGVPWideSilentRepair(t *testing.T) {
	// A wide stable value with a phase change and NO consumer between
	// prediction and validation is repaired silently under GVP (§3.4.2):
	// flushes must be strictly fewer than used mispredictions... here we
	// simply check that GVP completes and flushes at most once per phase
	// change.
	b := prog.NewBuilder("wide")
	slot := b.AllocWords(1, 1<<20)
	b.MovAddr(isa.X1, slot)
	b.MovImm(isa.X2, 30000)
	top := b.Here()
	b.Ldr(isa.X4, isa.X1, 0, 8) // stable wide value, result unused
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.MovImm(isa.X6, 1<<21)
	b.Str(isa.X6, isa.X1, 0, 8)
	b.MovImm(isa.X2, 5000)
	top2 := b.Here()
	b.Ldr(isa.X4, isa.X1, 0, 8)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top2)
	b.Halt()
	res := New(config.Default().WithVP(config.GVP), b.Build()).Run(0, 1<<62)
	if !res.Halted {
		t.Fatal("GVP run did not halt")
	}
	st := res.Stats
	if st.VPIncorrectUsed == 0 {
		t.Skip("no used prediction at the boundary (confidence timing)")
	}
	if st.VPFlushes > st.VPIncorrectUsed {
		t.Errorf("flushes %d exceed used mispredictions %d", st.VPFlushes, st.VPIncorrectUsed)
	}
}

func TestGVPWidePRFWriteAccounting(t *testing.T) {
	// A stable wide value predicted under GVP costs a PRF write at rename
	// (the prediction) in addition to the writeback (Fig. 6's extra GVP
	// write traffic).
	b := prog.NewBuilder("wideacct")
	slot := b.AllocWords(1, 1<<20)
	b.MovAddr(isa.X1, slot)
	b.MovImm(isa.X2, 40000)
	top := b.Here()
	b.Ldr(isa.X4, isa.X1, 0, 8)
	b.Add(isa.X5, isa.X5, isa.X4)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.Halt()

	base := New(config.Default(), b.Build()).Run(5000, 100000)
	gvp := New(config.Default().WithVP(config.GVP), b.Build()).Run(5000, 100000)
	if gvp.Stats.VPWidePRFWrites == 0 {
		t.Fatal("no wide predictions recorded")
	}
	if gvp.Stats.IntPRFWrites <= base.Stats.IntPRFWrites {
		t.Errorf("GVP wide predictions must add PRF writes: %d vs baseline %d",
			gvp.Stats.IntPRFWrites, base.Stats.IntPRFWrites)
	}
}

func TestVPReducesPRFTraffic(t *testing.T) {
	// MVP/TVP deliver predictions through renaming: used predictions
	// must reduce both PRF reads (consumers mux the name) and writes
	// (no destination register), Fig. 6's headline.
	p := func() *prog.Program {
		b := prog.NewBuilder("traffic")
		slot := b.AllocWords(1, 0)
		b.MovAddr(isa.X1, slot)
		b.MovImm(isa.X2, 40000)
		top := b.Here()
		b.Ldr(isa.X4, isa.X1, 0, 8) // stable 0
		b.Add(isa.X5, isa.X5, isa.X4)
		b.Add(isa.X6, isa.X6, isa.X4)
		b.SubsI(isa.X2, isa.X2, 1)
		b.BCond(isa.NE, top)
		b.Halt()
		return b.Build()
	}
	base := New(config.Default(), p()).Run(5000, 100000)
	mvp := New(config.Default().WithVP(config.MVP), p()).Run(5000, 100000)
	if mvp.Stats.VPCorrectUsed == 0 {
		t.Fatal("stable zero not predicted")
	}
	if mvp.Stats.IntPRFWrites >= base.Stats.IntPRFWrites {
		t.Errorf("MVP writes %d ≥ baseline %d", mvp.Stats.IntPRFWrites, base.Stats.IntPRFWrites)
	}
	if mvp.Stats.IntPRFReads >= base.Stats.IntPRFReads {
		t.Errorf("MVP reads %d ≥ baseline %d", mvp.Stats.IntPRFReads, base.Stats.IntPRFReads)
	}
}

func TestSpSRChainsThroughPredictions(t *testing.T) {
	// A predicted 0 should cascade: the add reduces to a move, the ands
	// to a zero-idiom with known NZCV, and the dependent csel and b.eq
	// resolve — all without executing (§4.2's NZCV chaining).
	b := prog.NewBuilder("chain")
	slot := b.AllocWords(1, 0)
	b.MovAddr(isa.X1, slot)
	b.MovImm(isa.X2, 40000)
	top := b.Here()
	b.Ldr(isa.X4, isa.X1, 0, 8)            // stable 0 → predicted
	b.Add(isa.X5, isa.X9, isa.X4)          // → SpSR move
	b.Ands(isa.X6, isa.X4, isa.X9)         // → SpSR zero + NZCV{Z}
	b.Csel(isa.X7, isa.X5, isa.X6, isa.EQ) // → SpSR move (NZCV known)
	skip := b.NewLabel()
	b.BCond(isa.NE, skip) // → SpSR resolved not-taken
	b.AddI(isa.X9, isa.X9, 1)
	b.Bind(skip)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.Halt()

	cfg := config.Default().WithVP(config.MVP).WithSpSR(true)
	res := New(cfg, b.Build()).Run(5000, 100000)
	st := res.Stats
	if st.SpSRMove == 0 || st.SpSRZero == 0 || st.SpSRBranch == 0 || st.SpSRCondSelect == 0 {
		t.Errorf("cascade incomplete: move=%d zero=%d branch=%d csel=%d",
			st.SpSRMove, st.SpSRZero, st.SpSRBranch, st.SpSRCondSelect)
	}
	if st.SpSRElim < 3*st.ArchInsts/10 {
		t.Errorf("only %d of %d instructions SpSR'd in an idiom-saturated loop", st.SpSRElim, st.ArchInsts)
	}
}

func TestValidateAtRetire(t *testing.T) {
	// The EOLE-style retire-time validation (§2.2) must preserve
	// architectural progress, still catch the phase-boundary
	// mispredictions, and charge the extra PRF read per validation.
	exec := config.Default().WithVP(config.TVP)
	retire := config.Default().WithVP(config.TVP)
	retire.VP.ValidateAtRetire = true

	a := New(exec, phaseChangeProgram()).Run(0, 1<<62)
	b := New(retire, phaseChangeProgram()).Run(0, 1<<62)
	if !b.Halted || b.Committed != a.Committed {
		t.Fatalf("retire validation broke progress: %d vs %d", b.Committed, a.Committed)
	}
	if b.Stats.VPIncorrectUsed == 0 {
		t.Error("retire validation missed the phase-boundary mispredictions")
	}
	if b.Stats.VPCorrectUsed == 0 {
		t.Error("retire validation recorded no correct used predictions")
	}
	// Extra PRF read per used prediction.
	used := b.Stats.VPCorrectUsed + b.Stats.VPIncorrectUsed
	if b.Stats.IntPRFReads < a.Stats.IntPRFReads+used/2 {
		t.Errorf("retire validation should add ≈%d PRF reads (exec %d, retire %d)",
			used, a.Stats.IntPRFReads, b.Stats.IntPRFReads)
	}
}

// collectTracer records events for assertions.
type collectTracer struct{ events []TraceEvent }

func (c *collectTracer) Event(ev TraceEvent) { c.events = append(c.events, ev) }

func TestTracerStageOrdering(t *testing.T) {
	tr := &collectTracer{}
	core := New(config.Default(), loopProgram(500))
	core.SetTracer(tr)
	core.Run(0, 1<<62)
	if len(tr.events) == 0 {
		t.Fatal("no trace events")
	}
	// Per (seq, uop) the stage timestamps must be monotone in pipeline
	// order for non-eliminated µops.
	type key struct {
		seq uint64
		ix  uint8
	}
	last := map[key]TraceEvent{}
	for _, ev := range tr.events {
		k := key{ev.Seq, ev.UopIx}
		if prev, ok := last[k]; ok && prev.Stage != StageSquash && ev.Stage != StageRename {
			if ev.Cycle < prev.Cycle {
				t.Fatalf("seq %d: %v@%d after %v@%d", ev.Seq, ev.Stage, ev.Cycle, prev.Stage, prev.Cycle)
			}
			if !ev.Eliminated && ev.Stage <= prev.Stage && ev.Stage != StageSquash && prev.Stage != StageCommit {
				t.Fatalf("seq %d: stage %v follows %v", ev.Seq, ev.Stage, prev.Stage)
			}
		}
		last[k] = ev
	}
	// Every commit must have been preceded by a rename of the same µop.
	seen := map[key]bool{}
	for _, ev := range tr.events {
		k := key{ev.Seq, ev.UopIx}
		switch ev.Stage {
		case StageRename:
			seen[k] = true
		case StageCommit:
			if !seen[k] {
				t.Fatalf("seq %d.%d committed without rename", ev.Seq, ev.UopIx)
			}
		}
	}
}

func TestPipeviewRenders(t *testing.T) {
	var sb strings.Builder
	pv := NewPipeview(&sb, 24)
	core := New(config.Default().WithVP(config.MVP).WithSpSR(true), loopProgram(500))
	core.SetTracer(pv)
	core.Run(0, 1<<62)
	out := sb.String()
	if !strings.Contains(out, "seq=") || !strings.Contains(out, "c=") {
		t.Fatalf("pipeview output malformed:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n != 24 {
		t.Errorf("pipeview rendered %d rows, want 24", n)
	}
}
