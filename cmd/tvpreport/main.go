// Command tvpreport regenerates the paper's tables and figures on the
// synthetic workload suite (see DESIGN.md's experiment index). With no
// selection flags it produces the full report used for EXPERIMENTS.md.
//
// Usage:
//
//	tvpreport                 # everything
//	tvpreport -fig 3          # one figure (1..6)
//	tvpreport -table 1        # one table (1..3)
//	tvpreport -storage        # §3.3 predictor storage model
//	tvpreport -ablation silencing|prefetch
//	tvpreport -insts 250000 -warmup 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/report"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "regenerate one figure (1-6)")
		table    = flag.Int("table", 0, "regenerate one table (1-3)")
		storage  = flag.Bool("storage", false, "print the predictor storage model")
		ablation = flag.String("ablation", "", "run an ablation: silencing|prefetch|dynsilence")
		warm     = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		insts    = flag.Uint64("insts", 250_000, "measured instructions per run")
	)
	flag.Parse()

	cfg := report.Config{Warmup: *warm, Insts: *insts}
	w := os.Stdout
	all := *fig == 0 && *table == 0 && !*storage && *ablation == ""

	if all || *table == 2 {
		report.WriteTable2(w, config.Default())
		fmt.Fprintln(w)
	}
	if all || *storage {
		report.WriteStorage(w, config.Default())
		fmt.Fprintln(w)
	}
	if all || *table == 1 {
		report.WriteTable1(w, report.Table1())
		fmt.Fprintln(w)
	}
	if all || *fig == 1 {
		report.WriteFig1(w, report.Fig1(cfg, 20))
		fmt.Fprintln(w)
	}
	if all || *fig == 2 {
		rows, mu, hi := report.Fig2(cfg)
		report.WriteFig2(w, rows, mu, hi)
		fmt.Fprintln(w)
	}
	if all || *fig == 3 {
		rows, sum := report.Fig3(cfg)
		report.WriteFig3(w, rows, sum)
		fmt.Fprintln(w)
	}
	if all || *table == 3 {
		report.WriteTable3(w, report.Table3(cfg))
		fmt.Fprintln(w)
	}
	if all || *fig == 4 {
		rows, mean := report.Fig4(cfg, config.MVP)
		report.WriteFig4(w, "Fig. 4a — % dynamic instructions eliminated at rename (MVP + SpSR)", rows, mean)
		fmt.Fprintln(w)
		rows, mean = report.Fig4(cfg, config.TVP)
		report.WriteFig4(w, "Fig. 4b — % dynamic instructions eliminated at rename (TVP + SpSR)", rows, mean)
		fmt.Fprintln(w)
	}
	if all || *fig == 5 {
		rows, geo := report.Fig5(cfg)
		report.WriteFig5(w, rows, geo)
		fmt.Fprintln(w)
	}
	if all || *fig == 6 {
		report.WriteFig6(w, report.Fig6(cfg))
		fmt.Fprintln(w)
	}
	if all || *ablation == "silencing" {
		// Window 0 is deliberately absent: without silencing the
		// refetched instruction immediately re-uses the same wrong
		// confident prediction and the machine livelocks, exactly as
		// §3.4.1 warns (see TestLivelockWithoutSilencing).
		report.WriteSilencing(w, report.AblationSilencing(cfg, []int{15, 60, 250, 1000}))
		fmt.Fprintln(w)
	}
	if all || *ablation == "prefetch" {
		report.WritePrefetch(w, report.AblationPrefetch(cfg))
		fmt.Fprintln(w)
	}
	if all || *ablation == "dynsilence" {
		fixed, dynamic := report.AblationDynamicSilence(cfg)
		report.WriteDynamicSilence(w, fixed, dynamic)
		fmt.Fprintln(w)
	}
	if all || *ablation == "validation" {
		sp, rd := report.AblationValidation(cfg)
		report.WriteValidation(w, sp, rd)
		fmt.Fprintln(w)
	}
}
