package core

import "time"

// hb lives in an allowlisted file (heartbeat.go): wall clock is its
// purpose, no findings.
func hb() int64 { return time.Now().UnixNano() }
