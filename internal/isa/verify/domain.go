package verify

import "math/bits"

// AbsVal abstracts one 64-bit register value three ways at once:
//
//   - an optional exact value set (authoritative when present) — this is
//     what resolves jump tables and indirect branch targets;
//   - an unsigned interval [lo, hi] — this is what bounds streaming
//     cursors and arena pointers;
//   - known-bits (known is a mask of bit positions whose value is
//     bits&known) — this is what survives the fuzzgen masked-index
//     idiom (AND #0x3f then LSL #3) and keeps 64-byte-aligned pointer
//     rings enumerable without materializing 96k-element sets.
//
// The three components are maintained together: every constructor and
// transfer normalizes so that set ⊆ [lo,hi] and every set member is
// consistent with the known bits. A value with no information is
// "top": set nil, [0, 2^64-1], known 0.
type AbsVal struct {
	set   []uint64 // sorted, unique; nil = no exact set
	lo    uint64
	hi    uint64
	known uint64 // mask of known bit positions
	bits  uint64 // values of known bits (bits &^ known == 0)
}

const (
	setCap  = 48 // max exact-set size before degrading to interval+mask
	pairCap = 64 // max cross-product size for pairwise set transfers
)

func top() AbsVal { return AbsVal{lo: 0, hi: ^uint64(0)} }

// sizeTop is the unknown result of a load of the given byte width:
// zero-extension makes the high bits known zero.
func sizeTop(size uint8) AbsVal {
	if size >= 8 {
		return top()
	}
	n := uint(size) * 8
	hi := uint64(1)<<n - 1
	return AbsVal{lo: 0, hi: hi, known: ^hi, bits: 0}
}

func exact(v uint64) AbsVal {
	return AbsVal{set: []uint64{v}, lo: v, hi: v, known: ^uint64(0), bits: v}
}

// fromSet builds an AbsVal from an unsorted, possibly-duplicated list
// of concrete values. Degrades to interval+mask past setCap.
func fromSet(vs []uint64) AbsVal {
	if len(vs) == 0 {
		// Empty means the producing edge is infeasible; callers check
		// isEmpty before propagating. Represent as an impossible value.
		return AbsVal{set: []uint64{}, lo: 1, hi: 0}
	}
	sortU64(vs)
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	a := AbsVal{set: out}
	a.normFromSet()
	if len(out) > setCap {
		a.set = nil
	}
	return a
}

func (a *AbsVal) normFromSet() {
	s := a.set
	a.lo, a.hi = s[0], s[len(s)-1]
	var diff uint64
	for _, v := range s {
		diff |= v ^ s[0]
	}
	a.known = ^diff
	a.bits = s[0] & a.known
}

func (a AbsVal) isEmpty() bool { return a.lo > a.hi }

func (a AbsVal) isExact() (uint64, bool) {
	if a.set != nil && len(a.set) == 1 {
		return a.set[0], true
	}
	return 0, false
}

// contains reports whether v is consistent with the abstraction (may
// the register hold v?).
func (a AbsVal) contains(v uint64) bool {
	if a.set != nil {
		_, ok := searchU64(a.set, v)
		return ok
	}
	return v >= a.lo && v <= a.hi && v&a.known == a.bits
}

func (a AbsVal) eq(b AbsVal) bool {
	if (a.set == nil) != (b.set == nil) || len(a.set) != len(b.set) {
		return false
	}
	for i := range a.set {
		if a.set[i] != b.set[i] {
			return false
		}
	}
	return a.lo == b.lo && a.hi == b.hi && a.known == b.known && a.bits == b.bits
}

// tighten clamps the interval against the known-bits component (and
// vice versa is not attempted). It never produces an empty value: if
// the components are inconsistent the mask is dropped instead, which
// is sound (the state may simply be unreachable).
func (a AbsVal) tighten() AbsVal {
	if a.set != nil {
		return a
	}
	minBits := a.bits            // unknown bits all 0
	maxBits := a.bits | ^a.known // unknown bits all 1
	lo, hi := a.lo, a.hi
	if minBits > lo {
		lo = minBits
	}
	if maxBits < hi {
		hi = maxBits
	}
	if lo > hi {
		// Inconsistent components; keep the interval, drop the mask.
		return AbsVal{lo: a.lo, hi: a.hi}
	}
	a.lo, a.hi = lo, hi
	if lo == hi {
		return exact(lo)
	}
	return a
}

func (a AbsVal) join(b AbsVal) AbsVal {
	if a.isEmpty() {
		return b
	}
	if b.isEmpty() {
		return a
	}
	if a.set != nil && b.set != nil && len(a.set)+len(b.set) <= 2*setCap {
		merged := make([]uint64, 0, len(a.set)+len(b.set))
		merged = append(merged, a.set...)
		merged = append(merged, b.set...)
		j := fromSet(merged)
		if j.set != nil {
			return j
		}
		// fromSet degraded past the cap; fall through to interval join
		// so known bits widen monotonically below.
	}
	out := AbsVal{
		lo:    minU64(a.lo, b.lo),
		hi:    maxU64(a.hi, b.hi),
		known: a.known & b.known &^ (a.bits ^ b.bits),
	}
	out.bits = a.bits & out.known
	return out
}

// candidates enumerates the concrete values the abstraction allows, up
// to max of them. The enumeration walks the interval with the stride
// implied by the contiguous low known bits and filters by the full
// known-bit mask, so a 64-byte-aligned pointer confined to one segment
// enumerates its slots exactly. Returns (nil, false) when more than
// max values are possible.
func (a AbsVal) candidates(max int) ([]uint64, bool) {
	if a.isEmpty() {
		return nil, true
	}
	if a.set != nil {
		if len(a.set) > max {
			return nil, false
		}
		return a.set, true
	}
	step, residue := a.stride()
	// First candidate ≥ lo with the right residue.
	first := a.lo
	if rem := first & (step - 1); rem != residue {
		delta := (residue - rem) & (step - 1)
		if first > ^uint64(0)-delta {
			return nil, false
		}
		first += delta
	}
	if first > a.hi {
		return nil, false // inconsistent; treat as unenumerable
	}
	count := (a.hi-first)/step + 1
	if count > uint64(max) {
		return nil, false
	}
	out := make([]uint64, 0, count)
	for v := first; ; v += step {
		if v&a.known == a.bits {
			out = append(out, v)
		}
		if v >= a.hi || v > ^uint64(0)-step {
			break
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// stride returns the power-of-two step and residue implied by the
// contiguous run of known low bits (capped so strides stay sane).
func (a AbsVal) stride() (step, residue uint64) {
	t := bits.TrailingZeros64(^a.known)
	if t > 16 {
		t = 16
	}
	step = uint64(1) << uint(t)
	residue = a.bits & (step - 1)
	return step, residue
}

// --- transfer functions -------------------------------------------------

// pairwise applies f over the cross product of two exact sets.
func pairwise(a, b AbsVal, f func(x, y uint64) uint64) (AbsVal, bool) {
	if a.set == nil || b.set == nil || len(a.set)*len(b.set) > pairCap {
		return AbsVal{}, false
	}
	out := make([]uint64, 0, len(a.set)*len(b.set))
	for _, x := range a.set {
		for _, y := range b.set {
			out = append(out, f(x, y))
		}
	}
	return fromSet(out), true
}

func mapSet(a AbsVal, f func(x uint64) uint64) (AbsVal, bool) {
	if a.set == nil || len(a.set) > pairCap {
		return AbsVal{}, false
	}
	out := make([]uint64, 0, len(a.set))
	for _, x := range a.set {
		out = append(out, f(x))
	}
	return fromSet(out), true
}

func absAdd(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x + y }); ok {
		return r
	}
	out := top()
	// Wrapping-interval addition: if the combined widths fit in 64 bits
	// and the wrapped result interval does not straddle zero, it is
	// exact even for "negative" (high-half) addends like post-index
	// decrements.
	wa, wb := a.hi-a.lo, b.hi-b.lo
	if wa <= ^uint64(0)-wb {
		lo := a.lo + b.lo // may wrap
		if hi := lo + wa + wb; lo <= hi {
			out.lo, out.hi = lo, hi
		}
	}
	// Low bits known in both operands propagate through the carry chain.
	n := uint(bits.TrailingZeros64(^(a.known & b.known)))
	if n > 0 {
		mask := onesLow(n)
		out.known |= mask
		out.bits = (a.bits + b.bits) & mask
	}
	return out.tighten()
}

func absSub(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x - y }); ok {
		return r
	}
	out := top()
	wa, wb := a.hi-a.lo, b.hi-b.lo
	if wa <= ^uint64(0)-wb {
		lo := a.lo - b.hi // may wrap
		if hi := lo + wa + wb; lo <= hi {
			out.lo, out.hi = lo, hi
		}
	}
	n := uint(bits.TrailingZeros64(^(a.known & b.known)))
	if n > 0 {
		mask := onesLow(n)
		out.known |= mask
		out.bits = (a.bits - b.bits) & mask
	}
	return out.tighten()
}

func absAnd(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x & y }); ok {
		return r
	}
	kz := a.known & ^a.bits | b.known & ^b.bits // known-zero in either
	kb := a.known & b.known                    // known in both
	out := AbsVal{
		lo:    0,
		hi:    minU64(a.hi, b.hi),
		known: kz | kb,
	}
	out.bits = a.bits & b.bits & out.known
	return out.tighten()
}

func absOr(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x | y }); ok {
		return r
	}
	ko := a.known & a.bits | b.known & b.bits // known-one in either
	kb := a.known & b.known
	out := AbsVal{
		lo:    maxU64(a.lo, b.lo),
		hi:    fillRight(a.hi | b.hi),
		known: ko | kb,
	}
	out.bits = (a.bits | b.bits) & out.known
	return out.tighten()
}

func absXor(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x ^ y }); ok {
		return r
	}
	out := AbsVal{
		lo:    0,
		hi:    fillRight(a.hi | b.hi),
		known: a.known & b.known,
	}
	out.bits = (a.bits ^ b.bits) & out.known
	return out.tighten()
}

func absNot(a AbsVal) AbsVal {
	if r, ok := mapSet(a, func(x uint64) uint64 { return ^x }); ok {
		return r
	}
	return AbsVal{
		lo:    ^a.hi,
		hi:    ^a.lo,
		known: a.known,
		bits:  ^a.bits & a.known,
	}.tighten()
}

func absBic(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x &^ y }); ok {
		return r
	}
	return absAnd(a, absNot(b))
}

// absShift handles LSL/LSR/ASR where the amount may itself be abstract;
// the emulator masks the amount with 63.
func absShift(a, b AbsVal, f func(x uint64, s uint) uint64, byAmount func(a AbsVal, s uint) AbsVal) AbsVal {
	if s, ok := b.isExact(); ok {
		return byAmount(a, uint(s&63))
	}
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return f(x, uint(y&63)) }); ok {
		return r
	}
	return top()
}

func absLslBy(a AbsVal, s uint) AbsVal {
	if s == 0 {
		return a
	}
	if r, ok := mapSet(a, func(x uint64) uint64 { return x << s }); ok {
		return r
	}
	out := top()
	if a.hi<<s>>s == a.hi { // no bits lost
		out.lo = a.lo << s
		out.hi = a.hi << s
	}
	out.known = a.known<<s | onesLow(s)
	out.bits = a.bits << s
	return out.tighten()
}

func absLsrBy(a AbsVal, s uint) AbsVal {
	if s == 0 {
		return a
	}
	if r, ok := mapSet(a, func(x uint64) uint64 { return x >> s }); ok {
		return r
	}
	out := AbsVal{
		lo:    a.lo >> s,
		hi:    a.hi >> s,
		known: a.known>>s | ^(^uint64(0) >> s), // top s bits known zero
		bits:  a.bits >> s,
	}
	return out.tighten()
}

func absAsrBy(a AbsVal, s uint) AbsVal {
	if s == 0 {
		return a
	}
	if r, ok := mapSet(a, func(x uint64) uint64 { return uint64(int64(x) >> s) }); ok {
		return r
	}
	if a.hi < 1<<63 { // sign bit provably clear
		return absLsrBy(a, s)
	}
	if a.lo >= 1<<63 { // sign bit provably set; monotone on this range
		out := AbsVal{
			lo:    uint64(int64(a.lo) >> s),
			hi:    uint64(int64(a.hi) >> s),
			known: a.known>>s | ^(^uint64(0) >> s),
			bits:  a.bits>>s | ^(^uint64(0) >> s), // sign-fill ones
		}
		return out.tighten()
	}
	return top()
}

func absMul(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 { return x * y }); ok {
		return r
	}
	out := top()
	if b.hi == 0 || a.hi <= ^uint64(0)/b.hi { // product cannot wrap
		out.lo = a.lo * b.lo
		out.hi = a.hi * b.hi
	}
	// Trailing known zeros add across a multiply.
	t := trailingKnownZeros(a) + trailingKnownZeros(b)
	if t > 64 {
		t = 64
	}
	if t > 0 {
		out.known |= onesLow(uint(t))
		out.bits &^= onesLow(uint(t))
	}
	return out.tighten()
}

func absUdiv(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 {
		if y == 0 {
			return 0
		}
		return x / y
	}); ok {
		return r
	}
	if b.lo > 0 {
		return AbsVal{lo: a.lo / b.hi, hi: a.hi / b.lo}.tighten()
	}
	return AbsVal{lo: 0, hi: a.hi} // q ≤ dividend; div-by-0 gives 0
}

func absSdiv(a, b AbsVal) AbsVal {
	if r, ok := pairwise(a, b, func(x, y uint64) uint64 {
		if y == 0 {
			return 0
		}
		if x == 1<<63 && y == ^uint64(0) {
			return 1 << 63 // ARM SDIV overflow wraps: MinInt64 / -1 = MinInt64
		}
		return uint64(int64(x) / int64(y))
	}); ok {
		return r
	}
	return top()
}

func absRbit(a AbsVal, w bool) AbsVal {
	f := func(x uint64) uint64 {
		v := bits.Reverse64(x)
		if w {
			v >>= 32
		}
		return v
	}
	if r, ok := mapSet(a, f); ok {
		return r
	}
	out := top()
	rk := bits.Reverse64(a.known)
	rb := bits.Reverse64(a.bits)
	if w {
		rk = rk>>32 | hi32Mask // emulator shifts the reversal down
		rb >>= 32
	}
	out.known = rk
	out.bits = rb & rk
	return out.tighten()
}

// trunc32 projects the value onto its low 32 bits (W-form operand read).
func (a AbsVal) trunc32() AbsVal {
	if a.hi < 1<<32 && a.known>>32 == 0xffffffff && a.bits>>32 == 0 {
		return a // already a clean 32-bit value
	}
	if r, ok := mapSet(a, func(x uint64) uint64 { return uint64(uint32(x)) }); ok {
		return r
	}
	out := AbsVal{known: a.known | hi32Mask, bits: a.bits & onesLow(32)}
	if a.hi-a.lo < 1<<32 {
		l32, h32 := uint64(uint32(a.lo)), uint64(uint32(a.hi))
		if l32 <= h32 {
			out.lo, out.hi = l32, h32
			return out.tighten()
		}
	}
	out.lo, out.hi = 0, 1<<32-1
	return out.tighten()
}

// --- small helpers ------------------------------------------------------

func onesLow(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// fillRight sets every bit below the most significant set bit, giving
// the tightest power-of-two-minus-one upper bound.
func fillRight(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return ^uint64(0) >> uint(bits.LeadingZeros64(v))
}

func trailingKnownZeros(a AbsVal) int {
	// Count of contiguous low bits known to be zero.
	return bits.TrailingZeros64(^(a.known &^ a.bits))
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func sortU64(s []uint64) {
	// Insertion sort is fine at setCap scale; avoids a sort import in
	// the hot fixpoint loop.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func searchU64(s []uint64, v uint64) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == v
}

// hi32Mask selects the high 32 bits of a 64-bit value.
const hi32Mask = uint64(0xffffffff) << 32
