package bp

import (
	"testing"
	"testing/quick"
)

func TestFoldedHistoryWindowed(t *testing.T) {
	// The fold only depends on the newest histLen bits: two histories
	// that agree on that window but differ before it fold identically.
	mk := func(prefix []bool) *HistorySet {
		hs := NewHistorySet([]int{13}, []int{7})
		for _, b := range prefix {
			hs.Push(b)
		}
		// Common suffix of exactly 13 bits.
		for i := 0; i < 13; i++ {
			hs.Push(i%3 == 1)
		}
		return hs
	}
	a := mk([]bool{true, true, false, true, false, false, true})
	b := mk([]bool{false, false, true, false, true})
	if a.Fold(0) != b.Fold(0) {
		t.Errorf("folds differ despite identical windows: %#x vs %#x", a.Fold(0), b.Fold(0))
	}
	if a.Fold(0) >= 1<<7 {
		t.Errorf("fold exceeds width: %#x", a.Fold(0))
	}
}

func TestFoldedSensitivity(t *testing.T) {
	// Two histories differing in one recent bit must fold differently
	// (with overwhelming probability for these parameters).
	a := NewHistorySet([]int{16}, []int{8})
	b := NewHistorySet([]int{16}, []int{8})
	for i := 0; i < 100; i++ {
		a.Push(i%3 == 0)
		b.Push(i%3 == 0)
	}
	a.Push(true)
	b.Push(false)
	if a.Fold(0) == b.Fold(0) {
		t.Error("folds should differ after differing pushes")
	}
}

func TestGeometricLengths(t *testing.T) {
	ls := GeometricLengths(5, 640, 15)
	if ls[0] != 5 || ls[14] != 640 {
		t.Fatalf("endpoints wrong: %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("not strictly increasing: %v", ls)
		}
	}
	if got := GeometricLengths(2, 128, 7); got[0] != 2 || got[6] != 128 {
		t.Errorf("VTAGE lengths wrong: %v", got)
	}
}

func newTestTAGE() *TAGE {
	return NewTAGE(TAGEConfig{BaseLog2: 10, TaggedLog2: 8, Tables: 6, TagBits: 9, MinHist: 5, MaxHist: 128})
}

func TestTAGELearnsBias(t *testing.T) {
	tg := newTestTAGE()
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 2000; i++ {
		p := tg.Predict(pc)
		if i > 100 && !p.Taken {
			wrong++
		}
		tg.Train(pc, p, true)
	}
	if wrong > 10 {
		t.Errorf("TAGE failed to learn an always-taken branch: %d wrong", wrong)
	}
}

func TestTAGELearnsPattern(t *testing.T) {
	// A period-4 local pattern embedded in global history: T T T N ...
	tg := newTestTAGE()
	pc := uint64(0x400200)
	wrong := 0
	for i := 0; i < 8000; i++ {
		taken := i%4 != 3
		p := tg.Predict(pc)
		if i > 4000 && p.Taken != taken {
			wrong++
		}
		tg.Train(pc, p, taken)
	}
	rate := float64(wrong) / 4000
	if rate > 0.05 {
		t.Errorf("TAGE misprediction rate on period-4 pattern: %.3f", rate)
	}
}

func TestTAGEStorage(t *testing.T) {
	tg := newTestTAGE()
	// base 2^10 × 2 bits + 6 × 2^8 × (3+2+9) bits.
	want := 1024*2 + 6*256*14
	if got := tg.StorageBits(); got != want {
		t.Errorf("storage = %d bits, want %d", got, want)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB should miss")
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Error("BTB lookup after insert failed")
	}
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Error("BTB update failed")
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(16, 4) // 4 sets
	// Fill one set with 5 conflicting entries (stride = sets*4 bytes).
	stride := uint64(4 * 4)
	for i := uint64(0); i < 5; i++ {
		b.Insert(0x1000+i*stride, 0x9000+i)
	}
	// The first inserted (LRU) entry must be gone; the rest present.
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("LRU entry should have been evicted")
	}
	for i := uint64(1); i < 5; i++ {
		if _, ok := b.Lookup(0x1000 + i*stride); !ok {
			t.Errorf("entry %d evicted wrongly", i)
		}
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must underflow")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		if got, ok := r.Pop(); !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	// Overflow wraps: deepest entries are lost.
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	for want := uint64(6); want >= 3; want-- {
		if got, ok := r.Pop(); !ok || got != want {
			t.Fatalf("after overflow pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS depth after overflow should be capacity")
	}
}

func TestIndirect(t *testing.T) {
	p := NewIndirect(64)
	pc := uint64(0x4000)
	if _, ok := p.Lookup(pc); ok {
		t.Error("cold indirect predictor should miss")
	}
	// Pipeline usage: lookup then update at the same path point. A
	// monomorphic branch drives the path into a periodic orbit whose
	// slots all get trained, so second-half lookups hit.
	hits := 0
	for i := 0; i < 400; i++ {
		if tgt, ok := p.Lookup(pc); ok && tgt == 0x8000 && i >= 200 {
			hits++
		}
		p.Update(pc, 0x8000)
	}
	if hits < 150 {
		t.Errorf("monomorphic indirect branch hit only %d/200 in steady state", hits)
	}
}

func TestGlobalHistoryBitOrder(t *testing.T) {
	var h GlobalHistory
	h.Push(true)
	h.Push(false)
	h.Push(true) // newest
	if h.Bit(0) != 1 || h.Bit(1) != 0 || h.Bit(2) != 1 {
		t.Errorf("bit order wrong: %d %d %d", h.Bit(0), h.Bit(1), h.Bit(2))
	}
}

func TestHistorySetFoldBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		hs := NewHistorySet([]int{31}, []int{9})
		for i := 0; i < 64; i++ {
			hs.Push(seed>>uint(i)&1 == 1)
		}
		return hs.Fold(0) < 1<<9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
