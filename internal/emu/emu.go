package emu

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Emulator executes a Program functionally, one architectural instruction
// per Step, producing DynInst records in program order.
type Emulator struct {
	Prog *prog.Program
	Mem  *Memory

	X     [isa.NumRegs]uint64 // X31 (XZR) is kept at zero
	D     [32]uint64          // FP registers as raw float64 bits
	Flags isa.Flags

	pcIdx  int // index of the next instruction to execute
	seq    uint64
	halted bool
}

// New loads the program (text implicitly, data segments explicitly) and
// returns an emulator positioned at the first instruction. X29 is
// initialized to the stack top per the platform convention.
func New(p *prog.Program) *Emulator {
	e := &Emulator{Prog: p, Mem: NewMemory()}
	for _, s := range p.Data {
		e.Mem.LoadSegment(s.Base, s.Bytes)
	}
	e.X[isa.X29] = prog.StackTop
	return e
}

// Halted reports whether the program has executed HALT.
func (e *Emulator) Halted() bool { return e.halted }

// Executed returns the number of instructions executed so far.
func (e *Emulator) Executed() uint64 { return e.seq }

// PC returns the byte address of the next instruction.
func (e *Emulator) PC() uint64 { return prog.PC(e.pcIdx) }

func (e *Emulator) reg(r isa.Reg) uint64 {
	if r == isa.XZR {
		return 0
	}
	return e.X[r]
}

func (e *Emulator) regW(r isa.Reg, w bool) uint64 {
	v := e.reg(r)
	if w {
		v = uint64(uint32(v))
	}
	return v
}

func (e *Emulator) setReg(r isa.Reg, v uint64, w bool) uint64 {
	if w {
		v = uint64(uint32(v))
	}
	if r != isa.XZR {
		e.X[r] = v
	}
	return v
}

func (e *Emulator) float(r isa.Reg) float64 { return math.Float64frombits(e.D[r]) }

func (e *Emulator) setFloat(r isa.Reg, f float64) uint64 {
	v := math.Float64bits(f)
	e.D[r] = v
	return v
}

// op2 resolves the second operand of a two-source ALU instruction.
//
//tvp:hotpath
func (e *Emulator) op2(in *isa.Inst) uint64 {
	if in.UseImm {
		v := uint64(in.Imm)
		if in.W {
			v = uint64(uint32(v))
		}
		return v
	}
	return e.regW(in.Rm, in.W)
}

func addFlags(a, b uint64, w bool) (sum uint64, f isa.Flags) {
	if w {
		a32, b32 := uint32(a), uint32(b)
		s := a32 + b32
		sum = uint64(s)
		if int32(s) < 0 {
			f |= isa.FlagN
		}
		if s == 0 {
			f |= isa.FlagZ
		}
		if uint64(a32)+uint64(b32) > math.MaxUint32 {
			f |= isa.FlagC
		}
		if (int32(a32) >= 0) == (int32(b32) >= 0) && (int32(s) >= 0) != (int32(a32) >= 0) {
			f |= isa.FlagV
		}
		return
	}
	s := a + b
	sum = s
	if int64(s) < 0 {
		f |= isa.FlagN
	}
	if s == 0 {
		f |= isa.FlagZ
	}
	if s < a {
		f |= isa.FlagC
	}
	if (int64(a) >= 0) == (int64(b) >= 0) && (int64(s) >= 0) != (int64(a) >= 0) {
		f |= isa.FlagV
	}
	return
}

func subFlags(a, b uint64, w bool) (diff uint64, f isa.Flags) {
	if w {
		a32, b32 := uint32(a), uint32(b)
		d := a32 - b32
		diff = uint64(d)
		if int32(d) < 0 {
			f |= isa.FlagN
		}
		if d == 0 {
			f |= isa.FlagZ
		}
		if a32 >= b32 { // no borrow
			f |= isa.FlagC
		}
		if (int32(a32) >= 0) != (int32(b32) >= 0) && (int32(d) >= 0) != (int32(a32) >= 0) {
			f |= isa.FlagV
		}
		return
	}
	d := a - b
	diff = d
	if int64(d) < 0 {
		f |= isa.FlagN
	}
	if d == 0 {
		f |= isa.FlagZ
	}
	if a >= b {
		f |= isa.FlagC
	}
	if (int64(a) >= 0) != (int64(b) >= 0) && (int64(d) >= 0) != (int64(a) >= 0) {
		f |= isa.FlagV
	}
	return
}

func logicFlags(res uint64, w bool) (f isa.Flags) {
	if w {
		if int32(uint32(res)) < 0 {
			f |= isa.FlagN
		}
		if uint32(res) == 0 {
			f |= isa.FlagZ
		}
		return
	}
	if int64(res) < 0 {
		f |= isa.FlagN
	}
	if res == 0 {
		f |= isa.FlagZ
	}
	return
}

// ea computes the effective address and the base-update value of a memory
// instruction.
//
//tvp:hotpath
func (e *Emulator) ea(in *isa.Inst) (ea, baseUpdate uint64) {
	base := e.reg(in.Rn)
	switch in.Mode {
	case isa.AddrOff:
		return base + uint64(in.Imm), 0
	case isa.AddrReg:
		return base + e.reg(in.Rm)<<uint(in.Imm2), 0
	case isa.AddrPre:
		nb := base + uint64(in.Imm)
		return nb, nb
	case isa.AddrPost:
		return base, base + uint64(in.Imm)
	}
	panic("emu: bad addressing mode")
}

// Step executes the next instruction and fills d with its dynamic record.
// It returns false when the program has halted (d is then invalid).
//
//tvp:hotpath
func (e *Emulator) Step(d *DynInst) bool {
	if e.halted {
		return false
	}
	if e.pcIdx < 0 || e.pcIdx >= len(e.Prog.Code) {
		panic(fmt.Sprintf("emu: PC out of text: index %d (len %d)", e.pcIdx, len(e.Prog.Code)))
	}
	in := &e.Prog.Code[e.pcIdx]

	d.reset(e.seq, e.pcIdx, prog.PC(e.pcIdx), in, e.Flags)
	e.seq++

	nextIdx := e.pcIdx + 1
	w := in.W

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		e.halted = true
		d.NextPC = d.PC
		d.FlagsOut = e.Flags
		return true

	case isa.ADD:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)+e.op2(in), w)
	case isa.ADDS:
		sum, f := addFlags(e.regW(in.Rn, w), e.op2(in), w)
		d.Result = e.setReg(in.Rd, sum, w)
		e.Flags = f
	case isa.SUB:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)-e.op2(in), w)
	case isa.SUBS:
		diff, f := subFlags(e.regW(in.Rn, w), e.op2(in), w)
		d.Result = e.setReg(in.Rd, diff, w)
		e.Flags = f
	case isa.AND:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)&e.op2(in), w)
	case isa.ANDS:
		res := e.regW(in.Rn, w) & e.op2(in)
		d.Result = e.setReg(in.Rd, res, w)
		e.Flags = logicFlags(res, w)
	case isa.ORR:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)|e.op2(in), w)
	case isa.EOR:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)^e.op2(in), w)
	case isa.BIC:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)&^e.op2(in), w)
	case isa.LSL:
		sh := e.op2(in) & 63
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)<<sh, w)
	case isa.LSR:
		sh := e.op2(in) & 63
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)>>sh, w)
	case isa.ASR:
		sh := e.op2(in) & 63
		v := e.regW(in.Rn, w)
		if w {
			d.Result = e.setReg(in.Rd, uint64(int32(uint32(v))>>sh), w)
		} else {
			d.Result = e.setReg(in.Rd, uint64(int64(v)>>sh), w)
		}
	case isa.UBFM:
		// Simplified bitfield extract: Rd = (Rn >> Immr) & mask(Imms+1).
		v := e.regW(in.Rn, w) >> uint(in.Imm&63)
		width := uint(in.Imm2 + 1)
		if width < 64 {
			v &= (1 << width) - 1
		}
		d.Result = e.setReg(in.Rd, v, w)
	case isa.RBIT:
		v := bits.Reverse64(e.regW(in.Rn, w))
		if w {
			v >>= 32
		}
		d.Result = e.setReg(in.Rd, v, w)
	case isa.MUL:
		d.Result = e.setReg(in.Rd, e.regW(in.Rn, w)*e.regW(in.Rm, w), w)
	case isa.SDIV:
		nv, dv := int64(e.regW(in.Rn, w)), int64(e.regW(in.Rm, w))
		if w {
			nv, dv = int64(int32(uint32(nv))), int64(int32(uint32(dv)))
		}
		var q int64
		switch {
		case dv == -1:
			// ARM SDIV has no overflow trap: MinInt64 / -1 wraps to
			// MinInt64 (Go's runtime would panic on the division).
			q = -nv
		case dv != 0:
			q = nv / dv
		}
		d.Result = e.setReg(in.Rd, uint64(q), w)
	case isa.UDIV:
		nv, dv := e.regW(in.Rn, w), e.regW(in.Rm, w)
		var q uint64
		if dv != 0 {
			q = nv / dv
		}
		d.Result = e.setReg(in.Rd, q, w)

	case isa.MOVZ:
		d.Result = e.setReg(in.Rd, uint64(uint16(in.Imm))<<(16*uint(in.Imm2)), w)
	case isa.MOVK:
		old := e.reg(in.Rd)
		sh := 16 * uint(in.Imm2)
		v := old&^(uint64(0xffff)<<sh) | uint64(uint16(in.Imm))<<sh
		d.Result = e.setReg(in.Rd, v, w)
	case isa.MOVN:
		d.Result = e.setReg(in.Rd, ^(uint64(uint16(in.Imm)) << (16 * uint(in.Imm2))), w)

	case isa.CSEL:
		var v uint64
		if in.Cond.Holds(e.Flags) {
			v = e.regW(in.Rn, w)
		} else {
			v = e.regW(in.Rm, w)
		}
		d.Result = e.setReg(in.Rd, v, w)
	case isa.CSINC:
		var v uint64
		if in.Cond.Holds(e.Flags) {
			v = e.regW(in.Rn, w)
		} else {
			v = e.regW(in.Rm, w) + 1
		}
		d.Result = e.setReg(in.Rd, v, w)
	case isa.CSNEG:
		var v uint64
		if in.Cond.Holds(e.Flags) {
			v = e.regW(in.Rn, w)
		} else {
			v = -e.regW(in.Rm, w)
		}
		d.Result = e.setReg(in.Rd, v, w)

	case isa.LDR:
		ea, bu := e.ea(in)
		d.EA, d.BaseResult = ea, bu
		v := e.Mem.Read(ea, in.Size)
		d.Result = e.setReg(in.Rd, v, w)
		if in.Mode == isa.AddrPre || in.Mode == isa.AddrPost {
			e.setReg(in.Rn, bu, false)
		}
	case isa.STR:
		ea, bu := e.ea(in)
		d.EA, d.BaseResult = ea, bu
		d.StoreData = e.regW(in.Rd, w)
		e.Mem.Write(ea, d.StoreData, in.Size)
		if in.Mode == isa.AddrPre || in.Mode == isa.AddrPost {
			e.setReg(in.Rn, bu, false)
		}
	case isa.FLDR:
		ea, bu := e.ea(in)
		d.EA, d.BaseResult = ea, bu
		v := e.Mem.Read(ea, 8)
		e.D[in.Rd] = v
		d.Result = v
		if in.Mode == isa.AddrPre || in.Mode == isa.AddrPost {
			e.setReg(in.Rn, bu, false)
		}
	case isa.FSTR:
		ea, bu := e.ea(in)
		d.EA, d.BaseResult = ea, bu
		d.StoreData = e.D[in.Rd]
		e.Mem.Write(ea, d.StoreData, 8)
		if in.Mode == isa.AddrPre || in.Mode == isa.AddrPost {
			e.setReg(in.Rn, bu, false)
		}

	case isa.B:
		d.Taken = true
		nextIdx = in.Target
	case isa.BCOND:
		if in.Cond.Holds(e.Flags) {
			d.Taken = true
			nextIdx = in.Target
		}
	case isa.CBZ:
		if e.regW(in.Rn, w) == 0 {
			d.Taken = true
			nextIdx = in.Target
		}
	case isa.CBNZ:
		if e.regW(in.Rn, w) != 0 {
			d.Taken = true
			nextIdx = in.Target
		}
	case isa.TBZ:
		if e.reg(in.Rn)>>(uint(in.Imm)&63)&1 == 0 {
			d.Taken = true
			nextIdx = in.Target
		}
	case isa.TBNZ:
		if e.reg(in.Rn)>>(uint(in.Imm)&63)&1 == 1 {
			d.Taken = true
			nextIdx = in.Target
		}
	case isa.BL:
		ret := prog.PC(e.pcIdx + 1)
		d.Result = e.setReg(isa.LR, ret, false)
		d.Taken = true
		nextIdx = in.Target
	case isa.RET, isa.BR:
		tgt := e.reg(in.Rn)
		idx := prog.Index(tgt, len(e.Prog.Code))
		if idx < 0 {
			panic(fmt.Sprintf("emu: indirect branch to non-text address %#x at pc %#x", tgt, d.PC))
		}
		d.Taken = true
		nextIdx = idx

	case isa.FADD:
		d.Result = e.setFloat(in.Rd, e.float(in.Rn)+e.float(in.Rm))
	case isa.FSUB:
		d.Result = e.setFloat(in.Rd, e.float(in.Rn)-e.float(in.Rm))
	case isa.FMUL:
		d.Result = e.setFloat(in.Rd, e.float(in.Rn)*e.float(in.Rm))
	case isa.FDIV:
		d.Result = e.setFloat(in.Rd, e.float(in.Rn)/e.float(in.Rm))
	case isa.FMADD:
		d.Result = e.setFloat(in.Rd, e.float(in.Rn)*e.float(in.Rm)+e.float(in.Ra))
	case isa.FNEG:
		d.Result = e.setFloat(in.Rd, -e.float(in.Rn))
	case isa.FABS:
		d.Result = e.setFloat(in.Rd, math.Abs(e.float(in.Rn)))
	case isa.FMOV:
		e.D[in.Rd] = e.D[in.Rn]
		d.Result = e.D[in.Rd]
	case isa.SCVTF:
		d.Result = e.setFloat(in.Rd, float64(int64(e.reg(in.Rn))))
	case isa.FCVTZS:
		f := e.float(in.Rn)
		var v int64
		if !math.IsNaN(f) {
			switch {
			case f >= math.MaxInt64:
				v = math.MaxInt64
			case f <= math.MinInt64:
				v = math.MinInt64
			default:
				v = int64(f)
			}
		}
		d.Result = e.setReg(in.Rd, uint64(v), w)
	case isa.FCMP:
		a, b := e.float(in.Rn), e.float(in.Rm)
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			e.Flags = isa.FlagC | isa.FlagV
		case a == b:
			e.Flags = isa.FlagZ | isa.FlagC
		case a < b:
			e.Flags = isa.FlagN
		default:
			e.Flags = isa.FlagC
		}

	default:
		panic(fmt.Sprintf("emu: unimplemented op %v", in.Op))
	}

	e.pcIdx = nextIdx
	d.NextPC = prog.PC(nextIdx)
	d.FlagsOut = e.Flags
	return true
}

// Run executes up to max instructions (or to HALT if max <= 0), calling
// visit for each dynamic instruction if visit is non-nil. It returns the
// number executed.
func (e *Emulator) Run(max uint64, visit func(*DynInst)) uint64 {
	var d DynInst
	var n uint64
	for max <= 0 || n < max {
		if !e.Step(&d) {
			break
		}
		n++
		if visit != nil {
			visit(&d)
		}
	}
	return n
}
