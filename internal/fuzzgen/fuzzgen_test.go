package fuzzgen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// TestGenerateDeterministic: one seed, one program, bit-exactly — the
// property the fuzz corpus and the minimizer rely on.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef, 1 << 63} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %#x: two generations differ", seed)
		}
	}
	if reflect.DeepEqual(Generate(1).Code, Generate(2).Code) {
		t.Fatal("distinct seeds produced identical code")
	}
}

// TestGeneratedProgramsTerminate: every generated program halts on the
// functional emulator well under the fuzz harness's instruction cap, and
// leaves no stray architectural weirdness (PC inside text, stack balanced
// enough to reach HALT).
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		p := Generate(seed)
		e := emu.New(p)
		var d emu.DynInst
		steps := 0
		for !e.Halted() {
			if !e.Step(&d) {
				t.Fatalf("seed %d: Step returned false before halt", seed)
			}
			if steps++; steps > 300000 {
				t.Fatalf("seed %d: no HALT within %d instructions\n%s", seed, steps, Listing(p))
			}
		}
		if d.Inst.Op != isa.HALT {
			t.Fatalf("seed %d: final instruction %v, want HALT", seed, d.Inst.Op)
		}
	}
}

// TestListingCoversProgram sanity-checks the reproducible dump the fuzz
// failures embed: one line per instruction, no disassembler fallbacks.
func TestListingCoversProgram(t *testing.T) {
	p := Generate(7)
	l := Listing(p)
	for i := range p.Code {
		if want := p.Code[i].String(); !strings.Contains(l, want) {
			t.Fatalf("listing is missing instruction %d (%s)", i, want)
		}
	}
}

// TestMinimizeKeepsPredicate: the NOP-replacement ddmin shrinks to the
// smallest program still satisfying the predicate, never touching HALT.
func TestMinimizeKeepsPredicate(t *testing.T) {
	b := prog.NewBuilder("min")
	for i := 0; i < 16; i++ {
		b.AddI(isa.X0, isa.X0, 1)
	}
	b.Mul(isa.X1, isa.X2, isa.X3)
	for i := 0; i < 16; i++ {
		b.SubI(isa.X4, isa.X4, 1)
	}
	b.Mul(isa.X5, isa.X6, isa.X7)
	p := b.Build()

	countMul := func(q *prog.Program) int {
		n := 0
		for i := range q.Code {
			if q.Code[i].Op == isa.MUL {
				n++
			}
		}
		return n
	}
	min := Minimize(p, func(q *prog.Program) bool { return countMul(q) >= 1 })
	if got := countMul(min); got != 1 {
		t.Fatalf("minimized program has %d MULs, want exactly 1", got)
	}
	for i := range min.Code {
		switch min.Code[i].Op {
		case isa.MUL, isa.NOP, isa.HALT:
		default:
			t.Fatalf("minimized program keeps a non-essential %v at %d", min.Code[i].Op, i)
		}
	}
	if min.Code[len(min.Code)-1].Op != isa.HALT {
		t.Fatal("minimizer dropped the trailing HALT")
	}
	if countMul(p) != 2 {
		t.Fatal("minimizer mutated its input program")
	}
}
