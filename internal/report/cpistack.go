package report

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CPI-stack experiment: "where do the cycles go". Every workload is run
// under the baseline and under TVP+SpSR with commit-slot accounting
// armed, and the report renders the top-down bucket breakdown side by
// side — the cycle-level complement of the Fig. 3/Fig. 5 speedup tables
// (the speedup shows THAT the cycles moved; the stack shows WHICH
// buckets they moved between).
//
// CPI runs carry more state than stats.Sim, so they have their own
// memoization keyed the same way as runCache (the stats in a cpiPoint
// are bit-identical to the unaccounted run's — guaranteed by the
// pipeline's zero-interference tests — but the cached value types
// differ).

// CPIRow is one workload's stacks under base and TVP+SpSR.
type CPIRow struct {
	Workload string
	Base     stats.CPIStack
	TVP      stats.CPIStack
}

// cpiPoint is one memoized CPI-accounted run.
type cpiPoint struct {
	St      stats.Sim
	CPI     stats.CPIStack
	Cycles  uint64 // total simulated cycles including warmup
	Skipped uint64 // cycles absorbed by event-driven skipping
}

var cpiCache = simcache.New[simcache.RunKey, cpiPoint]()

// ResetCPICache clears the CPI-run memoization (tests).
func ResetCPICache() { cpiCache.Reset() }

// simulateCPI executes one CPI-accounted timing run, uncached.
func (c Config) simulateCPI(s runSpec) (cpiPoint, error) {
	var core *pipeline.Core
	warmup := c.Warmup
	if c.FastWarmup {
		snap, err := workload.Checkpoint(s.workload, c.Warmup)
		if err != nil {
			return cpiPoint{}, err
		}
		core = pipeline.NewFromEmulator(s.cfg, snap.Restore())
		warmup = 0
	} else {
		p, err := workload.Program(s.workload)
		if err != nil {
			return cpiPoint{}, err
		}
		core = pipeline.New(s.cfg, p)
	}
	core.EnableCPIStack()
	res := core.Run(warmup, c.Insts)
	return cpiPoint{St: res.Stats, CPI: res.CPI, Cycles: res.Cycles, Skipped: core.SkippedCycles()}, nil
}

// runOneCPI executes (or recalls) one CPI-accounted run through the
// memoization layer, reporting to the optional telemetry sinks.
func (c Config) runOneCPI(s runSpec) (cpiPoint, error) {
	observed := c.Heartbeat != nil || c.Obs != nil
	var pt cpiPoint
	var err error
	cached := false
	if c.NoCache {
		pt, err = c.simulateCPI(s)
	} else {
		key := simcache.RunKey{
			Workload:   s.workload,
			ConfigFP:   s.cfg.Fingerprint(),
			Warmup:     c.Warmup,
			Insts:      c.Insts,
			FastWarmup: c.FastWarmup,
		}
		if observed {
			_, cached = cpiCache.Get(key)
		}
		pt, err = cpiCache.Do(key, func() (cpiPoint, error) { return c.simulateCPI(s) })
	}
	if !observed || err != nil {
		return pt, err
	}
	var simulated uint64
	if !cached {
		simulated = c.Insts
		if !c.FastWarmup {
			simulated += c.Warmup
		}
	}
	if c.Heartbeat != nil {
		c.Heartbeat.RunDoneStats(simulated, cached, pt.Cycles, pt.Skipped, &pt.CPI)
	}
	if c.Obs != nil {
		c.Obs.AddCPI(obs.RunMeta{
			Workload:   s.workload,
			Cfg:        s.cfg,
			Warmup:     c.Warmup,
			Insts:      c.Insts,
			FastWarmup: c.FastWarmup,
			Cached:     cached,
		}, pt.St, &pt.CPI)
	}
	return pt, err
}

// runAllCPI is runAll for CPI-accounted runs: same worker pool, same
// slot-indexed spec-order output, same joined error reporting.
func (c Config) runAllCPI(specs []runSpec) ([]cpiPoint, error) {
	if c.Heartbeat != nil {
		c.Heartbeat.AddPlanned(len(specs))
	}
	out := make([]cpiPoint, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, c.workers())
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pt, err := c.runOneCPI(specs[i])
			if err != nil {
				errs[i] = fmt.Errorf("workload %s: %w", specs[i].workload, err)
				return
			}
			out[i] = pt
		}(i)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// CPIStacks runs the suite under base and TVP+SpSR with commit-slot
// accounting and returns the per-workload bucket stacks. Each stack
// decomposes exactly: Total() == post-warmup cycles × CommitWidth.
func CPIStacks(c Config) ([]CPIRow, error) {
	names := c.names()
	tvp := c.base().WithVP(config.TVP).WithSpSR(true)
	specs := make([]runSpec, 0, len(names)*2)
	for _, n := range names {
		specs = append(specs,
			runSpec{workload: n, cfg: c.base()},
			runSpec{workload: n, cfg: tvp},
		)
	}
	pts, err := c.runAllCPI(specs)
	if err != nil {
		return nil, err
	}
	rows := make([]CPIRow, len(names))
	for i, n := range names {
		rows[i] = CPIRow{Workload: n, Base: pts[i*2].CPI, TVP: pts[i*2+1].CPI}
	}
	return rows, nil
}
