package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// fillCPI sets every bucket to a distinct nonzero value via reflection,
// so a bucket added to stats.CPIStack is covered here automatically.
func fillCPI(offset uint64) stats.CPIStack {
	var s stats.CPIStack
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(offset + uint64(i)*31)
	}
	return s
}

// TestRunRecordCPISurvivesJSON: every CPI bucket survives the v2 record
// round trip, in both the totals block and an interval delta.
func TestRunRecordCPISurvivesJSON(t *testing.T) {
	rec := NewRunRecord(RunMeta{Workload: "w", Warmup: 1, Insts: 2}, stats.Sim{})
	rec.CPI = fillCPI(1000)
	rec.Intervals = []Sample{{StartInst: 1, EndInst: 2, CPIDelta: fillCPI(5000)}}
	if rec.Schema != RunSchema {
		t.Fatalf("new record schema %q, want %q", rec.Schema, RunSchema)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.CPI != rec.CPI {
		t.Errorf("CPI block mangled: %+v -> %+v", rec.CPI, back.CPI)
	}
	if len(back.Intervals) != 1 || back.Intervals[0].CPIDelta != rec.Intervals[0].CPIDelta {
		t.Errorf("interval CPIDelta mangled: %+v", back.Intervals)
	}
}

// TestDecodeRunRecordVersions: the decoder accepts v2 and legacy v1
// (CPI fields zero) and rejects unknown or missing schemas.
func TestDecodeRunRecordVersions(t *testing.T) {
	v1 := []byte(`{"schema":"` + RunSchemaV1 + `","workload":"w","totals":{"cycles":7}}`)
	rec, err := DecodeRunRecord(v1)
	if err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	if rec.Totals.Cycles != 7 || rec.CPI != (stats.CPIStack{}) {
		t.Errorf("v1 decode: totals %+v, cpi %+v", rec.Totals, rec.CPI)
	}

	if _, err := DecodeRunRecord([]byte(`{"schema":"tvp.obs.run/v99"}`)); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Errorf("unknown schema accepted (err=%v)", err)
	}
	if _, err := DecodeRunRecord([]byte(`{"workload":"w"}`)); err == nil {
		t.Error("schema-less record accepted")
	}
	if _, err := DecodeRunRecord([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestTelemetryCPICoverage runs a real pipeline with Telemetry attached
// (which arms CPI accounting through the CPIProbe seam) and checks the
// whole v2 payload hangs together: the record's CPI block decomposes
// Cycles × CommitWidth exactly, the interval CPIDeltas sum back to it,
// and the commit-stall attribution is bounded by the idle-slot total.
func TestTelemetryCPICoverage(t *testing.T) {
	cfg := config.Default().WithVP(config.TVP).WithSpSR(true)
	const warmup, insts, every = 2_000, 30_000, 5_000

	core := pipeline.New(cfg, traceProgram(8_000))
	tel := New(Config{Interval: every})
	core.SetProbe(tel)
	res := core.Run(warmup, insts)

	if res.CPI == (stats.CPIStack{}) {
		t.Fatal("attaching Telemetry did not arm CPI accounting")
	}
	if got, want := res.CPI.Total(), res.Stats.Cycles*uint64(cfg.CommitWidth); got != want {
		t.Fatalf("decomposition: Σ buckets = %d, want %d", got, want)
	}

	rec := tel.Record(RunMeta{Workload: "trace", Cfg: cfg, Warmup: warmup, Insts: insts}, res.Stats)
	if rec.CPI != res.CPI {
		t.Errorf("record CPI %+v != run CPI %+v", rec.CPI, res.CPI)
	}

	var sum stats.CPIStack
	for _, sm := range rec.Intervals {
		sum.AddCPI(&sm.CPIDelta)
	}
	if sum != rec.CPI {
		t.Errorf("interval CPIDeltas do not sum to totals:\nsum:    %+v\ntotals: %+v", sum, rec.CPI)
	}

	var stallSlots uint64
	for _, e := range rec.Attribution.CommitStalls {
		stallSlots += e.Count
		if e.Disasm == "" {
			t.Errorf("commit-stall entry %#x missing disassembly", e.PC)
		}
	}
	idle := rec.CPI.Total() - rec.CPI.Retiring - rec.CPI.RetiredSpSR
	if stallSlots == 0 || stallSlots > idle {
		t.Errorf("commit-stall attribution %d slots, want in (0, %d] (idle total)", stallSlots, idle)
	}
}

// TestTopPCAddWeighted: Add(n) accumulates weights and the space-saving
// eviction inherits the victim's count plus the new weight.
func TestTopPCAddWeighted(t *testing.T) {
	tp := NewTopPC(2)
	tp.Add(0x10, nil, 5)
	tp.Add(0x10, nil, 7)
	tp.Add(0x20, nil, 3)
	top := tp.Top(0)
	if len(top) != 2 || top[0].PC != 0x10 || top[0].Count != 12 || top[1].Count != 3 {
		t.Fatalf("weighted counts wrong: %+v", top)
	}
	// Table full: 0x30 evicts the minimum (0x20, count 3) and inherits.
	tp.Add(0x30, nil, 4)
	top = tp.Top(0)
	if len(top) != 2 || top[0].Count != 12 || top[1].PC != 0x30 || top[1].Count != 7 {
		t.Fatalf("eviction inheritance wrong: %+v", top)
	}
}

// TestHeartbeatCPILine: RunDoneStats aggregates skip % and the top
// CPI-stack bucket into the progress line; plain RunDone leaves both out.
func TestHeartbeatCPILine(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeartbeat(&buf)
	h.AddPlanned(2)
	h.SetWorkers(4)
	cpi := stats.CPIStack{Retiring: 10, BackendMemory: 90}
	h.RunDoneStats(1000, false, 2000, 500, &cpi)
	cpi2 := stats.CPIStack{Retiring: 10, BackendMemory: 20}
	h.RunDoneStats(1000, false, 2000, 500, &cpi2)
	h.Finish()
	line := buf.String()
	if !strings.Contains(line, "skip 25.0%") {
		t.Errorf("line missing aggregated skip %% (1000/4000): %q", line)
	}
	if !strings.Contains(line, "top be-mem") {
		t.Errorf("line missing top bucket: %q", line)
	}
	if !strings.Contains(line, "obs[j4]") {
		t.Errorf("line missing worker tag: %q", line)
	}

	buf.Reset()
	h2 := NewHeartbeat(&buf)
	h2.AddPlanned(1)
	h2.RunDone(500, false)
	h2.Finish()
	if line := buf.String(); strings.Contains(line, "skip") || strings.Contains(line, "top ") {
		t.Errorf("CPI-less heartbeat grew CPI fields: %q", line)
	}
}
