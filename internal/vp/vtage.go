// Package vp implements the VTAGE value predictor (Perais & Seznec, HPCA
// 2014) with Forward Probabilistic Counter (FPC) confidence, and the
// paper's three targeting policies layered on top of it:
//
//   - MVP (Minimal VP): only 0x0 and 0x1 are predictable; entries store a
//     single prediction bit (§3.1).
//   - TVP (Targeted VP): any 9-bit signed value is predictable; entries
//     store 9 bits and predictions are delivered by register-name
//     inlining (§3.2).
//   - GVP (Generic VP): any 64-bit value is predictable (§6.1).
//
// The targeting policy determines both the per-entry prediction width —
// and hence the predictor's storage footprint (§3.3: 55.2KB → 13.9KB →
// 7.9KB) — and which computed results can train or allocate entries.
//
// The predictor also implements the paper's post-misprediction silencing
// (§3.4.1): after a value misprediction the predictor keeps producing
// predictions for training purposes, but the pipeline must not use them
// for a configurable number of cycles, preventing the livelock that would
// otherwise occur because MVP/TVP refetch the mispredicted instruction.
package vp

import (
	"repro/internal/bp"
	"repro/internal/config"
	"repro/internal/xrand"
)

// MaxTables bounds the number of VTAGE tables (base + tagged) a
// configuration may use; Lookup carries fixed-size arrays of this length
// so prediction metadata can ride the VP-tracking FIFO without
// allocation.
const MaxTables = 12

// InlineMin and InlineMax bound the values representable by 9-bit signed
// register-name inlining (§3.2: "small constant ... signed 9-bit
// integer").
const (
	InlineMin = -256
	InlineMax = 255
)

// InlineRepresentable reports whether a 64-bit register value can be
// encoded in a 9-bit-signed inlined physical register name.
func InlineRepresentable(v uint64) bool {
	s := int64(v)
	return s >= InlineMin && s <= InlineMax
}

// Predictor is a VTAGE value predictor specialized by a targeting mode.
type Predictor struct {
	cfg      config.VPConfig
	base     []entry
	baseMask uint64
	tables   []table
	nTagged  int
	hist     *bp.HistorySet
	rng      *xrand.Rand
	confMax  uint8

	silenceUntil uint64
	allocSeed    uint64

	// Dynamic silencing state (config.VPConfig.DynamicSilence).
	silWindow     int
	correctStreak int
}

type table struct {
	entries []entry
	mask    uint64
	tagMask uint64
	histLen int
}

type entry struct {
	pred   uint64
	tag    uint16
	conf   uint8
	useful uint8
}

// New builds a predictor from the configuration. The configuration's
// TableLog2[0] sizes the tagless base table; the remaining entries size
// the tagged tables whose history lengths are geometric between MinHist
// and MaxHist.
func New(cfg config.VPConfig) *Predictor {
	n := len(cfg.TableLog2)
	if n < 2 || n > MaxTables {
		panic("vp: need 2..MaxTables tables")
	}
	p := &Predictor{
		cfg:       cfg,
		base:      make([]entry, 1<<cfg.TableLog2[0]),
		baseMask:  1<<cfg.TableLog2[0] - 1,
		nTagged:   n - 1,
		rng:       xrand.New(cfg.Seed),
		confMax:   uint8(1<<cfg.FPCBits - 1),
		allocSeed: 0xdeadbeefcafef00d,
	}
	lens := bp.GeometricLengths(cfg.MinHist, cfg.MaxHist, p.nTagged)
	foldLens := make([]int, 0, 2*p.nTagged)
	foldWidths := make([]int, 0, 2*p.nTagged)
	p.tables = make([]table, p.nTagged)
	for i := 0; i < p.nTagged; i++ {
		p.tables[i] = table{
			entries: make([]entry, 1<<cfg.TableLog2[i+1]),
			mask:    1<<cfg.TableLog2[i+1] - 1,
			tagMask: 1<<cfg.TagBits[i+1] - 1,
			histLen: lens[i],
		}
		foldLens = append(foldLens, lens[i])
		foldWidths = append(foldWidths, int(cfg.TableLog2[i+1]))
	}
	for i := 0; i < p.nTagged; i++ {
		foldLens = append(foldLens, lens[i])
		foldWidths = append(foldWidths, int(cfg.TagBits[i+1]))
	}
	p.hist = bp.NewHistorySet(foldLens, foldWidths)
	return p
}

// Mode returns the targeting mode.
func (p *Predictor) Mode() config.VPMode { return p.cfg.Mode }

// Representable reports whether the targeting mode can predict value v at
// all (§3.1/§3.2: MVP → {0,1}; TVP → 9-bit signed; GVP → anything).
func (p *Predictor) Representable(v uint64) bool {
	switch p.cfg.Mode {
	case config.MVP:
		return v == 0 || v == 1
	case config.TVP:
		if DebugBoolOnly {
			return v == 0 || v == 1
		}
		return InlineRepresentable(v)
	case config.GVP:
		return true
	}
	return false
}

// quantize clips a value to what an entry can physically store; callers
// must have checked Representable before trusting the stored prediction.
func (p *Predictor) quantize(v uint64) uint64 {
	switch p.cfg.Mode {
	case config.MVP:
		return v & 1
	case config.TVP:
		return uint64(int64(v<<55) >> 55) // sign-extend low 9 bits
	}
	return v
}

// Lookup is the result of Predict plus the metadata Train needs. It rides
// the pipeline's VP-tracking FIFO.
type Lookup struct {
	// Value is the predicted value (valid only when Hit).
	Value uint64
	// Hit reports whether any table provided a prediction.
	Hit bool
	// Confident reports whether the FPC counter is saturated, i.e. the
	// prediction may be used by the pipeline (§6.1).
	Confident bool

	provider int // -1 = base table, >= 0 = tagged table index
	indices  [MaxTables]uint32
	tags     [MaxTables]uint16
}

func (p *Predictor) index(pc uint64, ti int) uint64 {
	h := p.hist.Fold(ti)
	return (pc>>2 ^ pc>>7 ^ h ^ uint64(ti+1)*0x85ebca6b) & p.tables[ti].mask
}

func (p *Predictor) tag(pc uint64, ti int) uint16 {
	h := p.hist.Fold(p.nTagged + ti)
	return uint16((pc>>2 ^ h<<1 ^ uint64(ti)*0xc2b2ae35) & p.tables[ti].tagMask)
}

// Predict looks up a value prediction for the instruction at pc. It must
// be called in fetch order; the returned Lookup must later be passed to
// Train exactly once (at retirement), in order.
func (p *Predictor) Predict(pc uint64) Lookup {
	l := Lookup{provider: -1}
	bi := pc >> 2 & p.baseMask
	l.indices[0] = uint32(bi)
	for ti := 0; ti < p.nTagged; ti++ {
		l.indices[ti+1] = uint32(p.index(pc, ti))
		l.tags[ti+1] = p.tag(pc, ti)
	}
	for ti := p.nTagged - 1; ti >= 0; ti-- {
		e := &p.tables[ti].entries[l.indices[ti+1]]
		if e.tag == l.tags[ti+1] {
			l.provider = ti
			l.Hit = true
			l.Value = e.pred
			l.Confident = e.conf >= p.confMax && !p.cfg.NeverConfident
			return l
		}
	}
	e := &p.base[bi]
	l.Hit = true
	l.Value = e.pred
	l.Confident = e.conf >= p.confMax && !p.cfg.NeverConfident
	return l
}

// Train updates the predictor with the architectural result of the
// instruction whose Predict returned l. It implements FPC confidence:
// correct predictions increment confidence with probability 1/FPCInvProb;
// incorrect ones reset it and (at zero confidence) replace the stored
// value. Values the targeting mode cannot represent reset confidence and
// never allocate (they are permanently filtered).
func (p *Predictor) Train(l Lookup, actual uint64) {
	representable := p.Representable(actual)
	q := p.quantize(actual)

	var e *entry
	if l.provider >= 0 {
		e = &p.tables[l.provider].entries[l.indices[l.provider+1]]
		// The entry may have been reallocated to another PC since
		// prediction; the tag check keeps training honest.
		if e.tag != l.tags[l.provider+1] {
			e = nil
		}
	} else {
		e = &p.base[l.indices[0]]
	}

	correct := l.Hit && l.Value == actual && representable

	if e != nil {
		if correct {
			p.decaySilence()
			if e.conf < p.confMax && p.rng.OneIn(p.cfg.FPCInvProb) {
				e.conf++
			}
			if l.provider >= 0 && e.useful < 1<<p.cfg.UsefulBits-1 {
				e.useful++
			}
		} else {
			if e.conf > 0 {
				e.conf = 0
			} else if representable {
				e.pred = q
			}
			if l.provider >= 0 && e.useful > 0 {
				e.useful--
			}
		}
	}

	// Allocate in a longer-history table on a (representable)
	// misprediction, VTAGE-style.
	if !correct && representable {
		start := l.provider + 1
		p.allocSeed = p.allocSeed*6364136223846793005 + 1442695040888963407
		if start < p.nTagged-1 && p.allocSeed>>62&1 == 1 {
			start++
		}
		for ti := start; ti < p.nTagged; ti++ {
			ne := &p.tables[ti].entries[l.indices[ti+1]]
			if ne.useful == 0 {
				*ne = entry{pred: q, tag: l.tags[ti+1]}
				break
			}
			ne.useful--
		}
	}
}

// PushHistory inserts a conditional branch outcome into the global history
// used for table indexing. The pipeline calls this at fetch, in program
// order, once per conditional branch.
func (p *Predictor) PushHistory(taken bool) { p.hist.Push(taken) }

// Silencing bounds for the dynamic scheme.
const (
	minSilence     = 15 // the paper's "very small number" that suffices
	maxSilenceMult = 8
	decayPeriod    = 1024 // correct trainings per halving
)

// Silence suppresses use of predictions after a value misprediction
// (§3.4.1). With static silencing the window is SilenceCycles; with
// dynamic silencing it doubles per misprediction (bounded) and decays as
// correct predictions accumulate, approximating the adaptive scheme the
// paper proposes.
func (p *Predictor) Silence(now uint64) {
	window := p.cfg.SilenceCycles
	if p.cfg.DynamicSilence {
		if p.silWindow == 0 {
			p.silWindow = p.cfg.SilenceCycles
			if p.silWindow < minSilence {
				p.silWindow = minSilence
			}
		}
		window = p.silWindow
		p.silWindow *= 2
		if cap := p.cfg.SilenceCycles * maxSilenceMult; p.silWindow > cap {
			p.silWindow = cap
		}
		p.correctStreak = 0
	}
	until := now + uint64(window)
	if until > p.silenceUntil {
		p.silenceUntil = until
	}
}

// decaySilence is called on every correct training when dynamic silencing
// is active.
func (p *Predictor) decaySilence() {
	if !p.cfg.DynamicSilence || p.silWindow <= minSilence {
		return
	}
	p.correctStreak++
	if p.correctStreak >= decayPeriod {
		p.correctStreak = 0
		p.silWindow /= 2
		if p.silWindow < minSilence {
			p.silWindow = minSilence
		}
	}
}

// Silenced reports whether predictions must not be used at the given
// cycle. Training continues regardless.
func (p *Predictor) Silenced(now uint64) bool { return now < p.silenceUntil }

// PredBits returns the per-entry prediction width for the targeting mode
// (§3.3: 64, 9 or 1).
func (p *Predictor) PredBits() int {
	switch p.cfg.Mode {
	case config.MVP:
		return 1
	case config.TVP:
		return 9
	default:
		return 64
	}
}

// StorageBits returns the predictor storage in bits: every entry stores a
// prediction and an FPC confidence counter; tagged entries additionally
// store a useful field; and each table pays its configured tag width
// (including the base table's short tag, matching the paper's 55.2 / 13.9
// / 7.9 KB sizing for GVP / TVP / MVP).
func (p *Predictor) StorageBits() int {
	pred := p.PredBits()
	bits := len(p.base) * (pred + int(p.cfg.FPCBits) + int(p.cfg.TagBits[0]))
	for i := range p.tables {
		per := pred + int(p.cfg.FPCBits) + int(p.cfg.UsefulBits) + int(p.cfg.TagBits[i+1])
		bits += len(p.tables[i].entries) * per
	}
	return bits
}

// StorageKB returns the storage footprint in kibibytes.
func (p *Predictor) StorageKB() float64 { return float64(p.StorageBits()) / 8 / 1024 }

// DebugBoolOnly restricts TVP to {0,1} values (diagnostic; tests only).
var DebugBoolOnly bool
