// Package rename implements the register renaming machinery at the heart
// of the paper's contribution: a speculative RAT and committed RAT (CRAT)
// with reference-counted physical register reclamation, hardwired 0x0/0x1
// physical registers (MVP, §3.1 — and the baseline's zero/one-idiom
// elimination, which modern cores already implement), physical register
// name inlining of 9-bit signed values (TVP, §3.2, after Lipasti et al.'s
// register inlining), move elimination with the paper's 64→32-bit width
// restriction (§5), 9-bit signed integer idiom elimination (§3.2.2), and
// the Speculative Strength Reduction decision engine implementing every
// idiom of Table 1 (§4), including frontend NZCV tracking for flag-reading
// consumers.
package rename

import "fmt"

// Name is a widened physical register name (§3.2.1). Plain physical
// registers use values [0, nPhys). Bit 9 (ValueBit) marks an inlined
// value: the low 9 bits are a signed constant and no physical register
// backs the name. Physical names 0 and 1 are hardwired to 0x0 and 0x1
// ("PRN 0 is 0x0, PRN 1 is 0x1", §6.1 footnote); they are excluded from
// the free list in every configuration, since the baseline's zero/one
// idiom elimination depends on them.
type Name uint16

// Reserved names.
const (
	// HardZero is the hardwired physical register that always reads 0x0.
	HardZero Name = 0
	// HardOne is the hardwired physical register that always reads 0x1.
	HardOne Name = 1
	// ValueBit marks a 9-bit-signed inlined value name (TVP/GVP only).
	ValueBit Name = 1 << 9
	// Invalid is the canonical "no name" sentinel.
	Invalid Name = 0xffff
)

// ValueName returns the inlined name encoding v, which must be in
// [-256, 255].
func ValueName(v int64) Name {
	if v < -256 || v > 255 {
		panic(fmt.Sprintf("rename: value %d not inlinable", v))
	}
	return Name(uint16(v)&0x1ff) | ValueBit
}

// IsValue reports whether the name is an inlined value.
func (n Name) IsValue() bool { return n != Invalid && n&ValueBit != 0 }

// IsPhys reports whether the name is a real physical register (including
// the hardwired ones).
func (n Name) IsPhys() bool { return n != Invalid && n&ValueBit == 0 }

// IsHardwired reports whether the name is one of the hardwired 0/1
// registers.
func (n Name) IsHardwired() bool { return n == HardZero || n == HardOne }

// Value returns the constant an inlined or hardwired name carries. It
// panics for ordinary physical names.
func (n Name) Value() int64 {
	switch {
	case n.IsValue():
		return int64(int16(n<<7)) >> 7 // sign-extend the low 9 bits
	case n == HardZero:
		return 0
	case n == HardOne:
		return 1
	}
	panic(fmt.Sprintf("rename: Value of non-value name %v", n))
}

// Known reports whether the name's value is known at rename time: inlined
// values and hardwired registers.
func (n Name) Known() bool { return n.IsValue() || n.IsHardwired() }

// String renders the name for diagnostics.
func (n Name) String() string {
	switch {
	case n == Invalid:
		return "p?"
	case n.IsValue():
		return fmt.Sprintf("v(%d)", n.Value())
	default:
		return fmt.Sprintf("p%d", uint16(n))
	}
}
