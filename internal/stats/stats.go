// Package stats defines the counters collected during a timing simulation
// and the aggregation helpers (geometric/harmonic means, speedups) used by
// the experiment reports.
package stats

import (
	"math"
	"reflect"
)

// Sim holds every counter a single timing run produces. Counters only
// accumulate while stats collection is enabled (after warmup), mirroring
// the paper's 50M-instruction warmup discipline.
type Sim struct {
	// Progress.
	Cycles    uint64 // simulated cycles (post-warmup)
	ArchInsts uint64 // committed architectural instructions
	UOps      uint64 // committed µops

	// Fetch / frontend.
	FetchedInsts      uint64
	BranchLookups     uint64 // conditional branch predictions made
	BranchMispredicts uint64 // conditional direction mispredictions
	BTBMisses         uint64 // taken branches missing in the BTB
	IndirectMispreds  uint64 // indirect target mispredictions
	RASMispreds       uint64 // return address mispredictions

	// Value prediction.
	VPEligible      uint64 // committed VP-eligible instructions
	VPCorrectUsed   uint64 // used predictions that were correct
	VPIncorrectUsed uint64 // used predictions that were wrong (caused flush)
	VPTrainOnly     uint64 // predictions generated but not used (training)
	VPSilenced      uint64 // confident predictions dropped due to silencing
	VPWidePRFWrites uint64 // GVP-only: predictions written to the PRF

	// Rename-time eliminations (committed counts, architectural insts).
	ZeroIdiomElim  uint64 // 0-idiom eliminations (baseline DSR)
	OneIdiomElim   uint64 // 1-idiom eliminations (baseline DSR)
	MoveElim       uint64 // move eliminations (baseline DSR)
	MoveNotElim    uint64 // move idioms blocked by 64→32 width mismatch
	NineBitElim    uint64 // 9-bit signed integer idiom eliminations (TVP)
	SpSRElim       uint64 // speculative strength reductions
	SpSRZero       uint64 // SpSR reduced to zero-idiom
	SpSROne        uint64 // SpSR reduced to one-idiom
	SpSRMove       uint64 // SpSR reduced to move-idiom
	SpSRNop        uint64 // SpSR reduced to nop (incl. nop+NZCV)
	SpSRBranch     uint64 // SpSR-resolved branches (b.cond/cbz/tbz on known NZCV/value)
	SpSRCondSelect uint64 // SpSR'd csel/csinc/csneg

	// Execution-engine activity (Fig. 6 proxies).
	IntPRFReads  uint64 // integer physical register file read ports used
	IntPRFWrites uint64 // integer physical register file writes
	IQAdded      uint64 // µops dispatched into the instruction queue
	IQIssued     uint64 // µops issued from the instruction queue

	// Flushes and squashes.
	BranchFlushes   uint64 // pipeline redirects from branch mispredictions
	VPFlushes       uint64 // pipeline flushes from value mispredictions
	MemOrderFlushes uint64 // flushes from memory order violations
	SquashedUOps    uint64 // µops squashed by all flushes

	// Memory hierarchy.
	L1IAccesses, L1IMisses   uint64
	L1DAccesses, L1DMisses   uint64
	L2Accesses, L2Misses     uint64
	L3Accesses, L3Misses     uint64
	L1TLBMisses, L2TLBMisses uint64
	PrefetchesIssued         uint64
	PrefetchesUseful         uint64

	// Structural stalls (cycles a stage could not advance for a resource).
	ROBFullStalls  uint64
	IQFullStalls   uint64
	LQFullStalls   uint64
	SQFullStalls   uint64
	PRFEmptyStalls uint64
}

// Sub returns a-b field-wise (all counters are monotone uint64, so this
// yields the counters accumulated between two snapshots; it is how warmup
// is excluded from reported statistics).
func Sub(a, b *Sim) Sim {
	var out Sim
	va, vb, vo := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem(), reflect.ValueOf(&out).Elem()
	for i := 0; i < va.NumField(); i++ {
		vo.Field(i).SetUint(va.Field(i).Uint() - vb.Field(i).Uint())
	}
	return out
}

// IPC returns committed architectural instructions per cycle.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ArchInsts) / float64(s.Cycles)
}

// UopsPerInst returns the µop expansion ratio (Fig. 2 bars).
func (s *Sim) UopsPerInst() float64 {
	if s.ArchInsts == 0 {
		return 0
	}
	return float64(s.UOps) / float64(s.ArchInsts)
}

// VPCoverage returns correct-used predictions over VP-eligible
// instructions, the paper's coverage metric (§6.1).
func (s *Sim) VPCoverage() float64 {
	if s.VPEligible == 0 {
		return 0
	}
	return float64(s.VPCorrectUsed) / float64(s.VPEligible)
}

// VPAccuracy returns correct-used over all used predictions (§6.1).
func (s *Sim) VPAccuracy() float64 {
	used := s.VPCorrectUsed + s.VPIncorrectUsed
	if used == 0 {
		return 1
	}
	return float64(s.VPCorrectUsed) / float64(used)
}

// ElimFraction returns the fraction of committed architectural
// instructions removed at rename by the given counter.
func (s *Sim) ElimFraction(count uint64) float64 {
	if s.ArchInsts == 0 {
		return 0
	}
	return float64(count) / float64(s.ArchInsts)
}

// BranchMPKI returns conditional branch mispredictions per kilo-instruction.
func (s *Sim) BranchMPKI() float64 {
	if s.ArchInsts == 0 {
		return 0
	}
	return 1000 * float64(s.BranchMispredicts) / float64(s.ArchInsts)
}

// L1DMPKI returns L1D misses per kilo-instruction.
func (s *Sim) L1DMPKI() float64 {
	if s.ArchInsts == 0 {
		return 0
	}
	return 1000 * float64(s.L1DMisses) / float64(s.ArchInsts)
}

// Speedup returns the IPC ratio of s over base, as a percentage uplift
// (+4.67 means 4.67% faster).
func Speedup(s, base *Sim) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return (s.IPC()/b - 1) * 100
}

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics on non-positive inputs.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: Geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedup aggregates per-benchmark speedup percentages the way the
// paper does: geometric mean of the ratios, expressed as a percentage.
func GeomeanSpeedup(pcts []float64) float64 {
	ratios := make([]float64, len(pcts))
	for i, p := range pcts {
		ratios[i] = 1 + p/100
	}
	return (Geomean(ratios) - 1) * 100
}

// HMean returns the harmonic mean of xs (used for mean IPC in Fig. 2).
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: HMean of non-positive value")
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// AMean returns the arithmetic mean of xs.
func AMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
