package obs

import (
	"encoding/json"
	"fmt"

	"repro/internal/isa"
	"repro/internal/stats"
)

// CPI-stack observation: the obs side of the top-down cycle accounting
// layer (internal/pipeline/cpistack.go computes the stack; this file
// receives it). Telemetry implements pipeline.CPIProbe structurally, so
// attaching a Telemetry arms the accounting and every RunRecord it
// assembles carries:
//
//   - RunRecord.CPI — the post-warmup commit-slot totals per bucket
//     (exactly Totals.Cycles × CommitWidth slots);
//   - Sample.CPIDelta — the per-interval slot deltas (they sum to
//     RunRecord.CPI), the per-phase bottleneck time series;
//   - Attribution.CommitStalls — idle commit slots charged to the
//     instruction that was blocking the ROB head, weighted by slots.
//
// This is the schema v2 payload; DecodeRunRecord below reads both v2 and
// the pre-CPI v1.

// CPISample consumes one CPI-stack snapshot at a sampling boundary
// (delivered immediately before the matching Sample call).
func (t *Telemetry) CPISample(committed, cycle uint64, cs *stats.CPIStack) {
	t.cpi = *cs
	t.sampler.ObserveCPI(cs)
}

// CommitStall attributes idle commit slots to the blocking instruction
// at pc.
func (t *Telemetry) CommitStall(pc uint64, in *isa.Inst, slots uint64) {
	t.commitStall.Add(pc, in, slots)
}

// CPITotals exposes the latest CPI-stack snapshot (the run's totals once
// it has finished).
func (t *Telemetry) CPITotals() stats.CPIStack { return t.cpi }

// DecodeRunRecord parses a versioned RunRecord, accepting the current v2
// schema and the legacy v1 (whose records predate the CPI block; their
// CPI, CPIDelta and CommitStalls fields decode as zero/empty). Records
// with a missing or unknown schema are rejected rather than silently
// misread.
func DecodeRunRecord(data []byte) (*RunRecord, error) {
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("obs: run record: %w", err)
	}
	switch rec.Schema {
	case RunSchema, RunSchemaV1:
		return &rec, nil
	case "":
		return nil, fmt.Errorf("obs: run record missing schema field")
	default:
		return nil, fmt.Errorf("obs: unsupported run record schema %q (supported: %s, %s)",
			rec.Schema, RunSchema, RunSchemaV1)
	}
}
