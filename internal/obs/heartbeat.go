package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/stats"
)

// Heartbeat prints a throttled one-line progress report for long sweeps:
// runs done/planned, how many the memoization cache absorbed, realized
// simulation MIPS and an ETA extrapolated from per-run wall time. It is
// concurrency-safe; tvpreport's worker pool reports into one Heartbeat.
type Heartbeat struct {
	mu        sync.Mutex
	w         io.Writer
	start     time.Time
	lastPrint time.Time
	period    time.Duration
	planned   int
	done      int
	cached    int
	workers   int
	simInsts  uint64
	// Cycle accounting across finished runs (RunDoneStats): skipped vs
	// total simulated cycles for the skip-% readout, and the summed CPI
	// stack for the top-bucket readout. Plain sums under the heartbeat
	// mutex, so the aggregate is exact for any number of workers.
	cycles  uint64
	skipped uint64
	cpi     stats.CPIStack
}

// NewHeartbeat returns a Heartbeat writing to w (normally os.Stderr so
// progress never pollutes machine-readable stdout), printing at most
// once per second.
func NewHeartbeat(w io.Writer) *Heartbeat {
	return &Heartbeat{w: w, start: time.Now(), period: time.Second}
}

// AddPlanned grows the denominator before (or while) runs execute.
func (h *Heartbeat) AddPlanned(n int) {
	h.mu.Lock()
	h.planned += n
	h.mu.Unlock()
}

// SetWorkers records the sweep pool width for the progress line. Purely
// informational: MIPS and ETA are aggregates over wall time and run
// counts, so they are already correct for any number of concurrent
// workers (and under cycle skipping, since progress is measured in
// simulated instructions, never cycles).
func (h *Heartbeat) SetWorkers(n int) {
	h.mu.Lock()
	h.workers = n
	h.mu.Unlock()
}

// RunDone records one finished run. simInsts is how many instructions
// were actually simulated for it (0 for a cache recall); cached marks a
// memoized point. A line is printed if the throttle period has elapsed.
func (h *Heartbeat) RunDone(simInsts uint64, cached bool) {
	h.RunDoneStats(simInsts, cached, 0, 0, nil)
}

// RunDoneStats is RunDone with cycle-accounting detail: cycles/skipped
// feed the skipped-cycle percentage and cpi (nil when the run carried no
// CPI accounting) feeds the running top-bucket readout. Cached recalls
// pass zeros — the line reports what was actually simulated.
func (h *Heartbeat) RunDoneStats(simInsts uint64, cached bool, cycles, skipped uint64, cpi *stats.CPIStack) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done++
	h.simInsts += simInsts
	h.cycles += cycles
	h.skipped += skipped
	if cpi != nil {
		h.cpi.AddCPI(cpi)
	}
	if cached {
		h.cached++
	}
	if now := time.Now(); now.Sub(h.lastPrint) >= h.period {
		h.print(now)
	}
}

// Finish prints a final unconditional line (total wall time, no ETA).
func (h *Heartbeat) Finish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.print(time.Now())
}

// print assumes h.mu is held.
func (h *Heartbeat) print(now time.Time) {
	h.lastPrint = now
	elapsed := now.Sub(h.start)
	mips := 0.0
	if s := elapsed.Seconds(); s > 0 {
		mips = float64(h.simInsts) / s / 1e6
	}
	line := fmt.Sprintf("obs: %d/%d runs (%d cached) | %.1f MIPS | %.1fs elapsed",
		h.done, h.planned, h.cached, mips, elapsed.Seconds())
	if h.workers > 0 {
		line = fmt.Sprintf("obs[j%d]: %d/%d runs (%d cached) | %.1f MIPS | %.1fs elapsed",
			h.workers, h.done, h.planned, h.cached, mips, elapsed.Seconds())
	}
	if h.cycles > 0 {
		line += fmt.Sprintf(" | skip %.1f%%", 100*float64(h.skipped)/float64(h.cycles))
	}
	if top := h.cpi.Top(); top.Slots > 0 {
		line += " | top " + top.Name
	}
	if h.done > 0 && h.done < h.planned {
		eta := time.Duration(float64(elapsed) / float64(h.done) * float64(h.planned-h.done))
		line += fmt.Sprintf(" | eta %ds", int(eta.Seconds()+0.5))
	}
	fmt.Fprintln(h.w, line)
}
