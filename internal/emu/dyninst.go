package emu

import (
	"repro/internal/isa"
)

// DynInst is one dynamically executed architectural instruction: the
// static instruction plus everything the timing model needs from functional
// execution — the computed result, effective address, branch outcome and
// flag values. The timing model never recomputes semantics; it consumes
// these records in program order (with rewind on pipeline flushes).
type DynInst struct {
	// Seq is the global dynamic sequence number (0-based, in retirement
	// order of the functional stream).
	Seq uint64
	// Index is the static instruction index within the program text.
	Index int
	// PC is the byte address of the instruction.
	PC uint64
	// Inst points at the static instruction (owned by the Program; do not
	// mutate).
	Inst *isa.Inst

	// Result is the value written to the primary destination register
	// (integer or raw FP bits), if the instruction writes one.
	Result uint64
	// BaseResult is the updated base register value for pre/post-index
	// loads and stores (the BaseUpdate µop's result).
	BaseResult uint64
	// StoreData is the value a store writes to memory.
	StoreData uint64
	// EA is the effective address of a memory access.
	EA uint64

	// Taken reports the direction of a branch (always true for
	// unconditional branches).
	Taken bool
	// NextPC is the address of the next instruction in program order of
	// execution (fall-through or branch target).
	NextPC uint64

	// FlagsIn/FlagsOut are the NZCV values before and after execution.
	FlagsIn, FlagsOut isa.Flags
}

// reset reinitializes a recycled stream slot for the next dynamic
// instruction. Field-by-field equivalent of `*d = DynInst{...}` — the
// literal form zeroes a ~96-byte temporary and duffcopies it on every
// emulated instruction, which profiles as one of the hottest blocks in
// the simulator. Every DynInst field MUST be covered here
// (TestDynInstResetCoversAllFields enforces this by reflection).
//
//tvp:hotpath
func (d *DynInst) reset(seq uint64, index int, pc uint64, in *isa.Inst, flagsIn isa.Flags) {
	d.Seq = seq
	d.Index = index
	d.PC = pc
	d.Inst = in
	d.Result = 0
	d.BaseResult = 0
	d.StoreData = 0
	d.EA = 0
	d.Taken = false
	d.NextPC = 0
	d.FlagsIn = flagsIn
	d.FlagsOut = 0
}

// WritesGPRResult reports whether Result is an integer register value
// (i.e. the primary destination is a GPR that is actually written).
func (d *DynInst) WritesGPRResult() bool {
	in := d.Inst
	if in.Op == isa.BL {
		return true
	}
	if isa.IsFP(in.Op) {
		return false
	}
	switch in.Op {
	case isa.LDR, isa.FCVTZS,
		isa.ADD, isa.ADDS, isa.SUB, isa.SUBS, isa.AND, isa.ANDS,
		isa.ORR, isa.EOR, isa.BIC, isa.LSL, isa.LSR, isa.ASR,
		isa.UBFM, isa.RBIT, isa.MUL, isa.SDIV, isa.UDIV,
		isa.MOVZ, isa.MOVK, isa.MOVN, isa.CSEL, isa.CSINC, isa.CSNEG:
		return in.Rd != isa.XZR
	}
	return false
}
