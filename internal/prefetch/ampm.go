package prefetch

// AMPM is an Access Map Pattern Matching prefetcher (Ishii et al., ICS
// 2009) for the L2. It tracks per-zone bit maps of accessed cache lines
// and, on each access, tests candidate strides k by checking whether the
// lines at -k and -2k relative to the current one were accessed; confirmed
// strides generate prefetches at +k (up to Degree per access).
type AMPM struct {
	zones    []ampmZone
	mask     uint64
	lineBits uint
	zoneLog2 uint // lines per zone, log2
	degree   int
	out      []uint64
}

type ampmZone struct {
	valid bool
	tag   uint64
	bits  []uint64
	lru   uint64
}

const ampmMaxStride = 16

// NewAMPM returns an AMPM prefetcher tracking the given number of 4KB
// zones with the given prefetch degree.
func NewAMPM(zones, degree, lineBytes int) *AMPM {
	for zones&(zones-1) != 0 {
		zones &= zones - 1
	}
	if zones == 0 {
		zones = 64
	}
	a := &AMPM{
		zones:  make([]ampmZone, zones),
		mask:   uint64(zones - 1),
		degree: degree,
		out:    make([]uint64, 0, degree),
	}
	for lineBytes>>a.lineBits > 1 {
		a.lineBits++
	}
	a.zoneLog2 = 12 - a.lineBits // 4KB zones
	words := (1 << a.zoneLog2) / 64
	if words == 0 {
		words = 1
	}
	for i := range a.zones {
		a.zones[i].bits = make([]uint64, words)
	}
	return a
}

func (a *AMPM) zone(la uint64) *ampmZone {
	zid := la >> a.zoneLog2
	z := &a.zones[zid&a.mask]
	if !z.valid || z.tag != zid {
		*z = ampmZone{valid: true, tag: zid, bits: z.bits}
		for i := range z.bits {
			z.bits[i] = 0
		}
	}
	return z
}

func (z *ampmZone) test(off int) bool {
	if off < 0 || off >= len(z.bits)*64 {
		return false
	}
	return z.bits[off/64]>>(uint(off)%64)&1 != 0
}

func (z *ampmZone) set(off int) {
	if off >= 0 && off < len(z.bits)*64 {
		z.bits[off/64] |= 1 << (uint(off) % 64)
	}
}

// Observe implements cache.Prefetcher.
func (a *AMPM) Observe(addr, _ uint64, _ bool) []uint64 {
	la := addr >> a.lineBits
	z := a.zone(la)
	off := int(la & (1<<a.zoneLog2 - 1))
	z.set(off)
	a.out = a.out[:0]
	for k := 1; k <= ampmMaxStride && len(a.out) < a.degree; k++ {
		if z.test(off-k) && z.test(off-2*k) && !z.test(off+k) {
			a.out = append(a.out, (la+uint64(k))<<a.lineBits)
		}
		if z.test(off+k) && z.test(off+2*k) && !z.test(off-k) && len(a.out) < a.degree && off-k >= 0 {
			a.out = append(a.out, (la-uint64(k))<<a.lineBits)
		}
	}
	return a.out
}
