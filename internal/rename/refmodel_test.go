package rename

// Reference-model property test for the renamer: drive random sequences
// of rename / move-eliminate / value-map / commit / flush events through
// the Renamer while tracking, independently, the set of physical
// registers that must be live. After every flush the free-list count must
// equal total − hardwired − live, and no live register may ever be handed
// out by AllocInt.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/xrand"
)

// event mirrors a ROB entry for the reference model.
type refDef struct {
	arch isa.Reg
	name Name
}

func TestRenamerRandomizedInvariants(t *testing.T) {
	const nPhys = 72
	r := NewRenamer(nPhys, 48)
	rng := xrand.New(0xfeed)

	var inflight []refDef // renamed, not yet committed (program order)

	// liveRefs recomputes the reference count of every physical register
	// from committed + in-flight state.
	committed := map[isa.Reg]Name{}
	for a := isa.Reg(0); a < 31; a++ {
		committed[a] = Name(2 + a)
	}
	refCount := func() map[Name]int {
		rc := map[Name]int{}
		for _, n := range committed {
			if n.IsPhys() && !n.IsHardwired() {
				rc[n]++
			}
		}
		for _, d := range inflight {
			if d.name.IsPhys() && !d.name.IsHardwired() {
				rc[d.name]++
			}
		}
		return rc
	}

	checkFree := func(step int) {
		t.Helper()
		live := len(refCount())
		wantFree := nPhys - 2 - live
		if got := r.FreeInt(); got != wantFree {
			t.Fatalf("step %d: free = %d, reference = %d (live %d)", step, got, wantFree, live)
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 && r.FreeInt() > 0: // fresh def
			arch := isa.Reg(rng.Intn(31))
			n := r.AllocInt()
			r.DefInt(arch, n, true, false)
			inflight = append(inflight, refDef{arch, n})

		case op < 6: // move elimination: share a random live mapping
			src := isa.Reg(rng.Intn(31))
			arch := isa.Reg(rng.Intn(31))
			o := r.SrcInt(src)
			r.DefIntShared(arch, o.Name, o.Wide, false)
			inflight = append(inflight, refDef{arch, o.Name})

		case op < 7: // value-name def (VP / idiom elimination)
			arch := isa.Reg(rng.Intn(31))
			v := int64(rng.Intn(512)) - 256
			r.DefIntShared(arch, ValueName(v), false, true)
			inflight = append(inflight, refDef{arch, ValueName(v)})

		case op < 9 && len(inflight) > 0: // commit the oldest def
			d := inflight[0]
			inflight = inflight[1:]
			r.CommitDefInt(d.arch, d.name, true, false)
			committed[d.arch] = d.name

		default: // flush a random suffix of the in-flight defs
			if len(inflight) == 0 {
				continue
			}
			cut := rng.Intn(len(inflight))
			for i := len(inflight) - 1; i >= cut; i-- {
				r.Release(inflight[i].name)
			}
			inflight = inflight[:cut]
			r.RestoreFromCRAT()
			for _, d := range inflight {
				r.ReplayDefInt(d.arch, d.name, true, false)
			}
			checkFree(step)
		}
	}
	// Drain: commit everything and verify the final balance.
	for _, d := range inflight {
		r.CommitDefInt(d.arch, d.name, true, false)
		committed[d.arch] = d.name
	}
	inflight = nil
	checkFree(-1)

	// RAT must agree with the committed reference after a final flush.
	r.RestoreFromCRAT()
	for a := isa.Reg(0); a < 31; a++ {
		if got := r.SrcInt(a).Name; got != committed[a] {
			t.Fatalf("final RAT[%v] = %v, reference %v", a, got, committed[a])
		}
	}
}

func TestRenamerExhaustionIsClean(t *testing.T) {
	r := NewRenamer(40, 40)
	n := r.FreeInt()
	for i := 0; i < n; i++ {
		r.AllocInt()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("allocating from an empty free list must panic (callers check FreeInt)")
		}
	}()
	r.AllocInt()
}
