package analysis

import (
	"go/types"
	"reflect"
	"strings"
)

// NewStatsComplete builds the statscomplete analyzer over the stats
// package (statsPkg, declaring the Sim counter block with its Sub delta
// and the CPIStack bucket block with its SubCPI delta) and the obs
// package (obsPkg, declaring the RunRecord / Sample serialization
// shapes, which must carry both blocks whole).
//
// The runtime machinery keeps counters complete *structurally*:
// stats.Sub computes deltas with a reflect loop over every field, and
// obs embeds the whole Sim block in RunRecord.Totals and Sample.Delta so
// JSON serialization can never drop a counter. This analyzer promotes
// the assumptions that structure rests on to compile-time checks — the
// failure modes it rejects (a non-uint64 counter panicking Sub's
// SetUint at runtime, a json:"-"/omitempty tag silently dropping a
// counter, or a record type replacing the embedded block with a
// hand-enumerated subset) are exactly the ones the PR 2 reflect test
// only catches when the test suite runs.
func NewStatsComplete(statsPkg, obsPkg string) *Analyzer {
	a := &Analyzer{
		Name: "statscomplete",
		Doc:  "every stats.Sim counter and stats.CPIStack bucket must be a uint64 covered by the Sub/SubCPI delta paths and carried whole in obs.RunRecord/obs.Sample serialization",
	}
	a.Run = func(pass *Pass) error {
		switch pass.Pkg.Path {
		case statsPkg:
			checkSimCounters(pass)
			checkCPIStack(pass)
		case obsPkg:
			checkRecordCarriesBlock(pass, statsPkg, "RunRecord", "Totals", "Sim")
			checkRecordCarriesBlock(pass, statsPkg, "Sample", "Delta", "Sim")
			checkRecordCarriesBlock(pass, statsPkg, "RunRecord", "CPI", "CPIStack")
			checkRecordCarriesBlock(pass, statsPkg, "Sample", "CPIDelta", "CPIStack")
		}
		return nil
	}
	return a
}

// checkSimCounters enforces the stats-side contract: Sim exists, every
// field is a uint64 counter (Sub's reflect loop calls SetUint on every
// field and panics on anything else), no field hides from JSON, and the
// Sub delta function is present.
func checkSimCounters(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	obj := scope.Lookup("Sim")
	if obj == nil {
		pass.Reportf(pass.Pkg.Files[0].Package, "counter block type Sim not found in %s", pass.Pkg.Path)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "Sim must be a struct of uint64 counters, got %s", obj.Type().Underlying())
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Uint64 {
			pass.Reportf(f.Pos(), "counter field Sim.%s is %s, not uint64: Sub's reflect delta (SetUint over every field) would panic and interval deltas would silently diverge", f.Name(), f.Type())
		}
		if tag := reflect.StructTag(st.Tag(i)).Get("json"); tag == "-" || strings.Contains(tag, "omitempty") {
			pass.Reportf(f.Pos(), "counter field Sim.%s carries json tag %q, which drops it from RunRecord/Sample serialization", f.Name(), tag)
		}
	}
	if sub := scope.Lookup("Sub"); sub == nil {
		pass.Reportf(obj.Pos(), "delta function Sub missing from %s: warmup exclusion and interval sampling depend on it", pass.Pkg.Path)
	} else if sig, ok := sub.Type().(*types.Signature); !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		pass.Reportf(sub.Pos(), "delta function Sub must be Sub(a, b *Sim) Sim, got %s", sub.Type())
	}
}

// checkCPIStack enforces the same contract over the CPI-stack bucket
// block: CPIStack exists, every bucket is a JSON-visible uint64 (SubCPI
// and AddCPI reflect over every field with SetUint, and the
// exact-decomposition invariant Σ buckets == cycles × width only holds
// if no bucket hides from serialization), and the SubCPI delta function
// the interval sampler depends on is present with the contractual
// signature.
func checkCPIStack(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	obj := scope.Lookup("CPIStack")
	if obj == nil {
		pass.Reportf(pass.Pkg.Files[0].Package, "CPI block type CPIStack not found in %s", pass.Pkg.Path)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "CPIStack must be a struct of uint64 buckets, got %s", obj.Type().Underlying())
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Uint64 {
			pass.Reportf(f.Pos(), "bucket field CPIStack.%s is %s, not uint64: SubCPI/AddCPI's reflect loop (SetUint over every bucket) would panic and interval CPI deltas would silently diverge", f.Name(), f.Type())
		}
		if tag := reflect.StructTag(st.Tag(i)).Get("json"); tag == "-" || strings.Contains(tag, "omitempty") {
			pass.Reportf(f.Pos(), "bucket field CPIStack.%s carries json tag %q, which drops it from RunRecord/Sample serialization and breaks the exact-decomposition invariant for readers", f.Name(), tag)
		}
	}
	if sub := scope.Lookup("SubCPI"); sub == nil {
		pass.Reportf(obj.Pos(), "delta function SubCPI missing from %s: per-interval CPI vectors depend on it", pass.Pkg.Path)
	} else if sig, ok := sub.Type().(*types.Signature); !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		pass.Reportf(sub.Pos(), "delta function SubCPI must be SubCPI(a, b *CPIStack) CPIStack, got %s", sub.Type())
	}
}

// checkRecordCarriesBlock enforces the obs-side contract: the named
// record type carries a whole stats.<blockName> in the named field,
// exported and not JSON-suppressed, so serialization is complete by
// construction.
func checkRecordCarriesBlock(pass *Pass, statsPkg, typeName, fieldName, blockName string) {
	obj := pass.Pkg.Types.Scope().Lookup(typeName)
	if obj == nil {
		pass.Reportf(pass.Pkg.Files[0].Package, "record type %s not found in %s: the versioned stats output contract is gone", typeName, pass.Pkg.Path)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(obj.Pos(), "record type %s must be a struct, got %s", typeName, obj.Type().Underlying())
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != fieldName {
			continue
		}
		n, ok := types.Unalias(f.Type()).(*types.Named)
		if !ok || n.Obj().Name() != blockName || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != statsPkg {
			pass.Reportf(f.Pos(), "%s.%s must carry the whole %s.%s counter block (got %s): a hand-enumerated subset silently drops future counters from serialization", typeName, fieldName, statsPkg, blockName, f.Type())
			return
		}
		if !f.Exported() {
			pass.Reportf(f.Pos(), "%s.%s is unexported: encoding/json drops it and every counter with it", typeName, fieldName)
		}
		if tag := reflect.StructTag(st.Tag(i)).Get("json"); tag == "-" || strings.Contains(tag, "omitempty") {
			pass.Reportf(f.Pos(), "%s.%s carries json tag %q, which drops the counter block from serialization", typeName, fieldName, tag)
		}
		return
	}
	pass.Reportf(obj.Pos(), "%s has no %s field of type %s.%s: counters are no longer serialized whole", typeName, fieldName, statsPkg, blockName)
}
