package pipeline

import (
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/isa"
)

// fillNonzero sets every field of the struct (recursing through nested
// structs and arrays) to a value that differs from the Go zero value,
// using unsafe addressing since the fields are unexported. Pointer kinds
// are rejected: uop is deliberately pointer-free (tvplint hotstruct), so
// a pointer field appearing is itself a regression.
func fillNonzero(v reflect.Value, ptr unsafe.Pointer) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			fp := unsafe.Pointer(uintptr(ptr) + v.Type().Field(i).Offset)
			fillNonzero(reflect.NewAt(f.Type(), fp).Elem(), fp)
		}
	case reflect.Array:
		es := v.Type().Elem().Size()
		for i := 0; i < v.Len(); i++ {
			ep := unsafe.Pointer(uintptr(ptr) + uintptr(i)*es)
			fillNonzero(reflect.NewAt(v.Type().Elem(), ep).Elem(), ep)
		}
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(3)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(3)
	default:
		panic("uop gained a field kind fillNonzero does not handle: " + v.Kind().String())
	}
}

// TestUopResetCoversAllFields guards uop.reset, the hand-unrolled
// replacement for `*u = uop{...}` on the rename hot path: a recycled ROB
// slot is dirtied in every field, reset, and compared against a reset of
// a pristine slot. Any uop field that reset fails to (re)initialize keeps
// its dirty value and fails the comparison — so adding a field to uop
// without extending reset is caught here, not as stale-state corruption
// deep in a simulation.
func TestUopResetCoversAllFields(t *testing.T) {
	dirty := new(uop)
	fillNonzero(reflect.NewAt(reflect.TypeOf(*dirty), unsafe.Pointer(dirty)).Elem(),
		unsafe.Pointer(dirty))
	dirty.reset(21, 4, isa.UOpKind(2), isa.Class(1), true, 7, 9, 5)

	clean := new(uop)
	clean.reset(21, 4, isa.UOpKind(2), isa.Class(1), true, 7, 9, 5)

	if *dirty != *clean {
		dv := reflect.NewAt(reflect.TypeOf(*dirty), unsafe.Pointer(dirty)).Elem()
		cv := reflect.NewAt(reflect.TypeOf(*clean), unsafe.Pointer(clean)).Elem()
		for i := 0; i < dv.NumField(); i++ {
			if !reflect.DeepEqual(dv.Field(i).Interface(), cv.Field(i).Interface()) {
				t.Errorf("uop.reset misses field %q: dirty=%v clean=%v",
					dv.Type().Field(i).Name, dv.Field(i), cv.Field(i))
			}
		}
	}
}

// TestUopIsPointerFree pins the arena property the hotstruct annotation
// claims: the ROB ring, the frontend queues and the crack table must stay
// invisible to the garbage collector (no pointer-bearing fields), so
// rewriting entries on the rename path carries no write barriers.
func TestUopIsPointerFree(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(uop{}),
		reflect.TypeOf(fqEntry{}),
		reflect.TypeOf(dqEntry{}),
		reflect.TypeOf(crackStatic{}),
	} {
		// reflect exposes the runtime's own pointer map: a type contains
		// no pointers iff the GC never scans it.
		if typ.Comparable() == false || containsPointers(typ) {
			t.Errorf("%s contains pointer-bearing fields; the arena must stay GC-invisible", typ.Name())
		}
	}
}

func containsPointers(typ reflect.Type) bool {
	switch typ.Kind() {
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			if containsPointers(typ.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return containsPointers(typ.Elem())
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	default:
		return true
	}
}
