// Package isa defines the ARMv8-flavored micro instruction set used by the
// simulator. It is deliberately a structural ISA: instructions are Go
// structs rather than binary encodings, because the pipeline model operates
// on decoded instructions and the paper's mechanisms (value prediction,
// speculative strength reduction) are defined over architectural operands,
// not bit patterns.
//
// The register model follows AArch64: 31 general purpose registers X0..X30,
// a hardwired zero register XZR (register index 31), 32 floating point
// registers D0..D31, and the NZCV condition flags. Instructions may operate
// on the full 64-bit register (X form) or on the low 32 bits with zero
// extension of the result (W form), selected by the W field.
package isa

import "fmt"

// Reg names an architectural register. Values 0..30 are X0..X30, 31 is the
// zero register XZR (reads as zero, writes are discarded). Floating point
// registers use the same 0..31 numbering in a separate namespace; the
// instruction's operand class determines which file a Reg refers to.
type Reg uint8

// Architectural register constants.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29 // frame pointer by convention
	X30 // link register by convention
	XZR // hardwired zero

	// NumRegs is the number of architectural integer registers including XZR.
	NumRegs = 32
)

// LR is the conventional link register.
const LR = X30

// String returns the assembly name of the register ("x7", "xzr").
func (r Reg) String() string {
	if r == XZR {
		return "xzr"
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// FPString returns the floating point register name ("d7").
func (r Reg) FPString() string { return fmt.Sprintf("d%d", uint8(r)) }

// Op enumerates the operations of the micro-ISA. The set covers every
// instruction the paper's Table 1 strength-reduction idioms mention, the
// usual integer/logic/shift/multiply/divide operations, loads and stores
// with immediate, register, and pre/post-index addressing, direct,
// conditional, compare-and-branch, test-and-branch, and indirect control
// flow, and a floating point subset sufficient for the FP-heavy synthetic
// workloads.
type Op uint8

const (
	// NOP performs no operation.
	NOP Op = iota

	// Integer arithmetic and logic. The S-suffixed variants also set NZCV.

	ADD  // Rd = Rn + op2
	ADDS // Rd = Rn + op2, set NZCV
	SUB  // Rd = Rn - op2
	SUBS // Rd = Rn - op2, set NZCV (CMP is SUBS with Rd=XZR)
	AND  // Rd = Rn & op2
	ANDS // Rd = Rn & op2, set NZCV (TST is ANDS with Rd=XZR)
	ORR  // Rd = Rn | op2 (MOV reg is ORR Rd, XZR, Rm)
	EOR  // Rd = Rn ^ op2
	BIC  // Rd = Rn &^ op2
	LSL  // Rd = Rn << amount
	LSR  // Rd = Rn >> amount (logical)
	ASR  // Rd = Rn >> amount (arithmetic)
	UBFM // unsigned bitfield move: Rd = extract(Rn, Immr, Imms)
	RBIT // Rd = bit-reverse(Rn)
	MUL  // Rd = Rn * Rm (low half)
	SDIV // Rd = Rn / Rm (signed; division by zero yields 0 as in ARMv8)
	UDIV // Rd = Rn / Rm (unsigned; division by zero yields 0)

	// Immediate moves.

	MOVZ // Rd = Imm << (16*Shift)
	MOVK // Rd = (Rd &^ (0xffff<<16s)) | Imm<<(16*Shift); reads Rd
	MOVN // Rd = ^(Imm << (16*Shift))

	// Conditional selects. These read NZCV.

	CSEL  // Rd = cond ? Rn : Rm
	CSINC // Rd = cond ? Rn : Rm+1 (CSET is CSINC Rd, XZR, XZR, !cond)
	CSNEG // Rd = cond ? Rn : -Rm

	// Memory operations. Size is given by the Size field (1/2/4/8 bytes);
	// loads zero-extend. Addressing mode is given by Mode.

	LDR // Rd = mem[EA]
	STR // mem[EA] = Rt (source carried in Rd field)

	// Control flow. Branch targets are instruction indices (Target).

	B     // unconditional direct branch
	BCOND // conditional direct branch on Cond
	CBZ   // branch if Rn == 0
	CBNZ  // branch if Rn != 0
	TBZ   // branch if Rn bit Imm == 0
	TBNZ  // branch if Rn bit Imm != 0
	BL    // branch and link (X30 = return address)
	RET   // indirect branch to Rn (default X30)
	BR    // indirect branch to Rn

	// Floating point (double precision operating on the D file).

	FADD   // Dd = Dn + Dm
	FSUB   // Dd = Dn - Dm
	FMUL   // Dd = Dn * Dm
	FDIV   // Dd = Dn / Dm
	FMADD  // Dd = Dn * Dm + Da
	FNEG   // Dd = -Dn
	FABS   // Dd = |Dn|
	FMOV   // Dd = Dn
	SCVTF  // Dd = float64(int64(Xn))  (int → FP convert)
	FCVTZS // Xd = int64(Dn) truncated (FP → int convert)
	FLDR   // Dd = mem[EA]
	FSTR   // mem[EA] = Dt
	FCMP   // set NZCV from Dn ?= Dm

	// HALT stops the emulator; it marks the architectural end of a program.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", ADDS: "adds", SUB: "sub", SUBS: "subs",
	AND: "and", ANDS: "ands", ORR: "orr", EOR: "eor", BIC: "bic",
	LSL: "lsl", LSR: "lsr", ASR: "asr", UBFM: "ubfm", RBIT: "rbit",
	MUL: "mul", SDIV: "sdiv", UDIV: "udiv",
	MOVZ: "movz", MOVK: "movk", MOVN: "movn",
	CSEL: "csel", CSINC: "csinc", CSNEG: "csneg",
	LDR: "ldr", STR: "str",
	B: "b", BCOND: "b.", CBZ: "cbz", CBNZ: "cbnz", TBZ: "tbz", TBNZ: "tbnz",
	BL: "bl", RET: "ret", BR: "br",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FMADD: "fmadd",
	FNEG: "fneg", FABS: "fabs", FMOV: "fmov", SCVTF: "scvtf", FCVTZS: "fcvtzs",
	FLDR: "fldr", FSTR: "fstr", FCMP: "fcmp",
	HALT: "halt",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is an ARMv8 condition code used by BCOND, CSEL, CSINC and CSNEG.
type Cond uint8

// Condition codes, in the ARMv8 encoding order.
const (
	EQ Cond = iota // Z == 1
	NE             // Z == 0
	CS             // C == 1
	CC             // C == 0
	MI             // N == 1
	PL             // N == 0
	VS             // V == 1
	VC             // V == 0
	HI             // C == 1 && Z == 0
	LS             // C == 0 || Z == 1
	GE             // N == V
	LT             // N != V
	GT             // Z == 0 && N == V
	LE             // Z == 1 || N != V
	AL             // always
)

var condNames = [...]string{
	EQ: "eq", NE: "ne", CS: "cs", CC: "cc", MI: "mi", PL: "pl",
	VS: "vs", VC: "vc", HI: "hi", LS: "ls", GE: "ge", LT: "lt",
	GT: "gt", LE: "le", AL: "al",
}

// String returns the condition mnemonic suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Invert returns the logically opposite condition. Invert(AL) panics,
// since AL has no inverse in the ARMv8 sense used here.
func (c Cond) Invert() Cond {
	if c == AL {
		panic("isa: AL condition has no inverse")
	}
	return c ^ 1
}

// Flags packs the NZCV condition flags into the low four bits of a byte:
// bit 3 = N, bit 2 = Z, bit 1 = C, bit 0 = V.
type Flags uint8

// Flag bit masks.
const (
	FlagV Flags = 1 << iota
	FlagC
	FlagZ
	FlagN
)

// N reports whether the negative flag is set.
func (f Flags) N() bool { return f&FlagN != 0 }

// Z reports whether the zero flag is set.
func (f Flags) Z() bool { return f&FlagZ != 0 }

// C reports whether the carry flag is set.
func (f Flags) C() bool { return f&FlagC != 0 }

// V reports whether the overflow flag is set.
func (f Flags) V() bool { return f&FlagV != 0 }

// String renders the flags as "nzcv" with set flags uppercased.
func (f Flags) String() string {
	b := []byte("nzcv")
	if f.N() {
		b[0] = 'N'
	}
	if f.Z() {
		b[1] = 'Z'
	}
	if f.C() {
		b[2] = 'C'
	}
	if f.V() {
		b[3] = 'V'
	}
	return string(b)
}

// Holds evaluates the condition against the flags.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case EQ:
		return f.Z()
	case NE:
		return !f.Z()
	case CS:
		return f.C()
	case CC:
		return !f.C()
	case MI:
		return f.N()
	case PL:
		return !f.N()
	case VS:
		return f.V()
	case VC:
		return !f.V()
	case HI:
		return f.C() && !f.Z()
	case LS:
		return !f.C() || f.Z()
	case GE:
		return f.N() == f.V()
	case LT:
		return f.N() != f.V()
	case GT:
		return !f.Z() && f.N() == f.V()
	case LE:
		return f.Z() || f.N() != f.V()
	case AL:
		return true
	}
	return false
}

// ZeroResultFlags returns the NZCV value produced by a flag-setting logic
// instruction whose result is zero: {N=0, Z=1, C=0, V=0}. The paper's SpSR
// mechanism hardwires this value for fully eliminated ANDS (§4.2).
func ZeroResultFlags() Flags { return FlagZ }

// AddrMode selects the addressing mode of a load or store.
type AddrMode uint8

const (
	// AddrOff computes EA = Rn + Imm. The base register is not written.
	AddrOff AddrMode = iota
	// AddrReg computes EA = Rn + Rm (register offset, optionally shifted
	// left by Imm2 for scaled indexing). The base register is not written.
	AddrReg
	// AddrPre computes EA = Rn + Imm and writes the updated base back to
	// Rn (pre-increment). Cracks into two µops at decode.
	AddrPre
	// AddrPost computes EA = Rn, then writes Rn + Imm back to Rn
	// (post-increment). Cracks into two µops at decode.
	AddrPost
)

// String names the addressing mode.
func (m AddrMode) String() string {
	switch m {
	case AddrOff:
		return "off"
	case AddrReg:
		return "regoff"
	case AddrPre:
		return "pre"
	case AddrPost:
		return "post"
	}
	return "addr?"
}

// Inst is one architectural instruction. Fields are interpreted per Op;
// unused fields are zero. Branch targets are program instruction indices
// (the loader maps them to byte PCs).
type Inst struct {
	Op   Op
	Rd   Reg   // destination (or store data source for STR/FSTR)
	Rn   Reg   // first source / base register
	Rm   Reg   // second source / offset register
	Ra   Reg   // third source (FMADD accumulator)
	Imm  int64 // immediate operand / bit index / shift
	Imm2 int64 // secondary immediate (UBFM imms, MOVZ/MOVK hw shift, scaled-index shift)
	Cond Cond  // condition for BCOND/CSEL/CSINC/CSNEG
	W    bool  // 32-bit (W register) form
	Size uint8 // memory access size in bytes for LDR/STR (1,2,4,8)
	Mode AddrMode
	// Target is the branch target as an instruction index within the
	// program for direct branches (B, BCOND, CBZ, CBNZ, TBZ, TBNZ, BL).
	Target int
	// UseImm selects the immediate form of two-operand ALU instructions
	// (ADD/SUB/AND/ORR/EOR/BIC/ANDS/SUBS/ADDS/LSL/LSR/ASR use Imm as op2
	// when set, Rm otherwise).
	UseImm bool
}

// Class partitions operations by the execution resource they need.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassFPALU:
		return "fp-alu"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	}
	return "class?"
}

// OpClass returns the execution class of an operation.
func OpClass(op Op) Class {
	switch op {
	case NOP, HALT:
		return ClassNop
	case MUL:
		return ClassIntMul
	case SDIV, UDIV:
		return ClassIntDiv
	case FADD, FSUB, FNEG, FABS, FMOV, SCVTF, FCVTZS, FCMP:
		return ClassFPALU
	case FMUL, FMADD:
		return ClassFPMul
	case FDIV:
		return ClassFPDiv
	case LDR, FLDR:
		return ClassLoad
	case STR, FSTR:
		return ClassStore
	case B, BCOND, CBZ, CBNZ, TBZ, TBNZ, BL, RET, BR:
		return ClassBranch
	default:
		return ClassIntALU
	}
}

// SetsFlags reports whether the operation writes NZCV.
func SetsFlags(op Op) bool {
	switch op {
	case ADDS, SUBS, ANDS, FCMP:
		return true
	}
	return false
}

// ReadsFlags reports whether the operation reads NZCV.
func ReadsFlags(op Op) bool {
	switch op {
	case BCOND, CSEL, CSINC, CSNEG:
		return true
	}
	return false
}

// IsBranch reports whether the operation is a control flow instruction.
func IsBranch(op Op) bool { return OpClass(op) == ClassBranch }

// IsCondBranch reports whether the operation is a conditional control flow
// instruction (one whose direction must be predicted).
func IsCondBranch(op Op) bool {
	switch op {
	case BCOND, CBZ, CBNZ, TBZ, TBNZ:
		return true
	}
	return false
}

// IsIndirect reports whether the operation is an indirect branch (target
// comes from a register).
func IsIndirect(op Op) bool { return op == RET || op == BR }

// IsMem reports whether the operation accesses memory.
func IsMem(op Op) bool {
	c := OpClass(op)
	return c == ClassLoad || c == ClassStore
}

// IsFP reports whether the operation's primary destination (if any) is a
// floating point register.
func IsFP(op Op) bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV, FMADD, FNEG, FABS, FMOV, SCVTF, FLDR:
		return true
	}
	return false
}

// WritesGPR reports whether the instruction produces a general purpose
// register result. Only such instructions are eligible for value
// prediction (§6.1: "only instructions that produce one (or more) general
// purpose register are eligible").
func (in *Inst) WritesGPR() bool {
	switch in.Op {
	case ADD, ADDS, SUB, SUBS, AND, ANDS, ORR, EOR, BIC,
		LSL, LSR, ASR, UBFM, RBIT, MUL, SDIV, UDIV,
		MOVZ, MOVK, MOVN, CSEL, CSINC, CSNEG, LDR, FCVTZS:
		return in.Rd != XZR
	case BL:
		return true // writes X30
	case STR, FSTR, FLDR:
		// Pre/post-index forms also write the GPR base register.
		return in.Mode == AddrPre || in.Mode == AddrPost
	}
	return false
}

// VPEligible reports whether the instruction is a candidate for value
// prediction: it must produce a general purpose register and be an
// arithmetic/logic or load instruction (§3.3: "we only predict arithmetic
// and load instructions"; branch-and-link and base-update side effects are
// excluded).
func (in *Inst) VPEligible() bool {
	switch in.Op {
	case ADD, ADDS, SUB, SUBS, AND, ANDS, ORR, EOR, BIC,
		LSL, LSR, ASR, UBFM, RBIT, MUL, SDIV, UDIV,
		MOVZ, MOVK, MOVN, CSEL, CSINC, CSNEG, LDR:
		return in.Rd != XZR
	}
	return false
}

// String disassembles the instruction.
func (in *Inst) String() string {
	rn := func(r Reg) string {
		if in.W && r != XZR {
			return fmt.Sprintf("w%d", uint8(r))
		}
		return r.String()
	}
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case ADD, ADDS, SUB, SUBS, AND, ANDS, ORR, EOR, BIC, LSL, LSR, ASR:
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, rn(in.Rd), rn(in.Rn), in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rn(in.Rd), rn(in.Rn), rn(in.Rm))
	case UBFM:
		return fmt.Sprintf("ubfm %s, %s, #%d, #%d", rn(in.Rd), rn(in.Rn), in.Imm, in.Imm2)
	case RBIT:
		return fmt.Sprintf("rbit %s, %s", rn(in.Rd), rn(in.Rn))
	case MUL, SDIV, UDIV:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rn(in.Rd), rn(in.Rn), rn(in.Rm))
	case MOVZ, MOVN:
		return fmt.Sprintf("%s %s, #%d, lsl #%d", in.Op, rn(in.Rd), in.Imm, 16*in.Imm2)
	case MOVK:
		return fmt.Sprintf("movk %s, #%d, lsl #%d", rn(in.Rd), in.Imm, 16*in.Imm2)
	case CSEL, CSINC, CSNEG:
		return fmt.Sprintf("%s %s, %s, %s, %s", in.Op, rn(in.Rd), rn(in.Rn), rn(in.Rm), in.Cond)
	case LDR, FLDR, STR, FSTR:
		dst := rn(in.Rd)
		if in.Op == FLDR || in.Op == FSTR {
			dst = in.Rd.FPString()
		}
		switch in.Mode {
		case AddrOff:
			return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, dst, in.Rn, in.Imm)
		case AddrReg:
			return fmt.Sprintf("%s %s, [%s, %s, lsl #%d]", in.Op, dst, in.Rn, in.Rm, in.Imm2)
		case AddrPre:
			return fmt.Sprintf("%s %s, [%s, #%d]!", in.Op, dst, in.Rn, in.Imm)
		case AddrPost:
			return fmt.Sprintf("%s %s, [%s], #%d", in.Op, dst, in.Rn, in.Imm)
		}
	case B, BL:
		return fmt.Sprintf("%s .%d", in.Op, in.Target)
	case BCOND:
		return fmt.Sprintf("b.%s .%d", in.Cond, in.Target)
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, .%d", in.Op, rn(in.Rn), in.Target)
	case TBZ, TBNZ:
		return fmt.Sprintf("%s %s, #%d, .%d", in.Op, rn(in.Rn), in.Imm, in.Target)
	case RET:
		// ARM convention: the link register is implicit, so the common
		// form renders bare and only a nonstandard Rn is spelled out.
		if in.Rn == LR {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.Rn)
	case BR:
		return fmt.Sprintf("br %s", in.Rn)
	case FADD, FSUB, FMUL, FDIV:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd.FPString(), in.Rn.FPString(), in.Rm.FPString())
	case FMADD:
		return fmt.Sprintf("fmadd %s, %s, %s, %s", in.Rd.FPString(), in.Rn.FPString(), in.Rm.FPString(), in.Ra.FPString())
	case FNEG, FABS, FMOV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd.FPString(), in.Rn.FPString())
	case SCVTF:
		return fmt.Sprintf("scvtf %s, %s", in.Rd.FPString(), rn(in.Rn))
	case FCVTZS:
		return fmt.Sprintf("fcvtzs %s, %s", rn(in.Rd), in.Rn.FPString())
	case FCMP:
		return fmt.Sprintf("fcmp %s, %s", in.Rn.FPString(), in.Rm.FPString())
	}
	return fmt.Sprintf("%s ?", in.Op)
}
