package analysis

import "testing"

// The golden tests run each analyzer over synthetic packages under
// testdata/src, matching findings against // want comments — including
// the //tvplint:ignore suppression cases (a justified ignore silences a
// finding; a bare one does not).

func TestFingerprintSafeGolden(t *testing.T) {
	runGolden(t, []string{"fps"},
		[]*Analyzer{NewFingerprintSafe("fps", "Machine")})
}

func TestHotpathAllocGolden(t *testing.T) {
	runGolden(t, []string{"hp"}, []*Analyzer{NewHotpathAlloc()})
}

func TestDetmapGolden(t *testing.T) {
	runGolden(t, []string{"dm/sink", "dm/feeder"},
		[]*Analyzer{NewDetmap(DetmapConfig{SinkPrefixes: []string{"dm/sink"}})})
}

func TestStatsCompleteGolden(t *testing.T) {
	runGolden(t, []string{"sc/stats", "sc/stats2", "sc/obs"},
		[]*Analyzer{
			NewStatsComplete("sc/stats", "sc/obs"),
			NewStatsComplete("sc/stats2", "sc/none"),
		})
}

func TestNondetGolden(t *testing.T) {
	runGolden(t, []string{"nd/core", "nd/free"},
		[]*Analyzer{NewNondet(NondetConfig{
			CorePrefixes: []string{"nd/"},
			AllowPkgs:    []string{"nd/free"},
			AllowFiles:   []string{"heartbeat.go"},
		})})
}
