// Package memdep implements Store Sets memory dependence prediction
// (Chrysos & Emer, ISCA 1998) with the paper's 2k-entry SSIT and 2k-entry
// LFST (Table 2). Loads that have historically conflicted with a store are
// forced to wait for that store's address before issuing; violations merge
// the load and store into a common store set.
package memdep

// Invalid marks an unassigned store set.
const invalidSet = ^uint32(0)

// StoreSets is the SSIT/LFST predictor pair.
type StoreSets struct {
	ssit []uint32 // PC hash → store set ID
	lfst []lfstEntry
	next uint32 // next store set ID to hand out

	// Stats.
	Violations uint64 // ordering violations observed (training events)
	Stalled    uint64 // loads made to wait on a store
}

type lfstEntry struct {
	valid bool
	seq   uint64 // dynamic sequence number of the last fetched store
}

// New returns a predictor with the given SSIT and LFST sizes (rounded down
// to powers of two).
func New(ssitEntries, lfstEntries int) *StoreSets {
	rnd := func(n int) int {
		for n&(n-1) != 0 {
			n &= n - 1
		}
		if n == 0 {
			n = 1
		}
		return n
	}
	s := &StoreSets{
		ssit: make([]uint32, rnd(ssitEntries)),
		lfst: make([]lfstEntry, rnd(lfstEntries)),
	}
	for i := range s.ssit {
		s.ssit[i] = invalidSet
	}
	return s
}

func (s *StoreSets) ssitIdx(pc uint64) int { return int(pc >> 2 & uint64(len(s.ssit)-1)) }

func (s *StoreSets) lfstIdx(set uint32) int { return int(set & uint32(len(s.lfst)-1)) }

// RenameStore is called when a store is renamed: it records the store as
// the last fetched store of its set (if it has one) and returns the
// sequence number of the previous store in the set, preserving store-store
// ordering within a set as the original proposal requires. ok is false
// when the store is in no set.
func (s *StoreSets) RenameStore(pc, seq uint64) (prevSeq uint64, ok bool) {
	set := s.ssit[s.ssitIdx(pc)]
	if set == invalidSet {
		return 0, false
	}
	e := &s.lfst[s.lfstIdx(set)]
	prevSeq, ok = e.seq, e.valid
	e.valid = true
	e.seq = seq
	return prevSeq, ok
}

// RenameLoad is called when a load is renamed; if the load belongs to a
// store set with a live store, it returns that store's sequence number:
// the load must not issue before the store has executed.
func (s *StoreSets) RenameLoad(pc uint64) (storeSeq uint64, ok bool) {
	set := s.ssit[s.ssitIdx(pc)]
	if set == invalidSet {
		return 0, false
	}
	e := &s.lfst[s.lfstIdx(set)]
	if !e.valid {
		return 0, false
	}
	s.Stalled++
	return e.seq, true
}

// StoreExecuted clears the LFST entry if it still names this store, so
// later loads stop waiting on it.
func (s *StoreSets) StoreExecuted(pc, seq uint64) {
	set := s.ssit[s.ssitIdx(pc)]
	if set == invalidSet {
		return
	}
	e := &s.lfst[s.lfstIdx(set)]
	if e.valid && e.seq == seq {
		e.valid = false
	}
}

// Violation trains the predictor after a memory order violation between a
// load and an older store, merging their store sets (the declarative
// "store set merge" rule: both PCs end up in the set with the smaller ID).
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	s.Violations++
	li, si := s.ssitIdx(loadPC), s.ssitIdx(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls == invalidSet && ss == invalidSet:
		id := s.next
		s.next++
		s.ssit[li], s.ssit[si] = id, id
	case ls == invalidSet:
		s.ssit[li] = ss
	case ss == invalidSet:
		s.ssit[si] = ls
	case ls < ss:
		s.ssit[si] = ls
	default:
		s.ssit[li] = ss
	}
}
