package bp

// RAS is a return address stack. Calls push their return address; returns
// pop the predicted target. Overflow wraps (overwriting the oldest entry)
// and underflow predicts 0, both standard behaviors.
type RAS struct {
	stack []uint64
	top   int // index of the next free slot
	depth int // live entries (≤ len(stack))
}

// NewRAS returns a stack with n entries.
func NewRAS(n int) *RAS {
	if n <= 0 {
		n = 1
	}
	return &RAS{stack: make([]uint64, n)}
}

// Push records a return address at call time.
func (r *RAS) Push(ret uint64) {
	r.stack[r.top] = ret
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false on underflow.
func (r *RAS) Pop() (target uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.depth--
	r.top--
	if r.top < 0 {
		r.top += len(r.stack)
	}
	return r.stack[r.top], true
}
