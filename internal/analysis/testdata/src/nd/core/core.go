// Package core is the nondet golden: a simulator-core package reading
// wall clocks, global math/rand, and the environment.
package core

import (
	"math/rand"
	"os"
	"time"
)

var start time.Time

// clock reads the wall clock: simulated outputs must not.
func clock() int64 { return time.Now().Unix() } // want "wall clock time.Now in simulator-core package nd/core"

// roll uses math/rand, whose sequences drift across Go releases.
func roll() int { return rand.Intn(6) } // want "math/rand"

// env leaks the host environment into simulated state.
func env() string { return os.Getenv("HOME") } // want "environment read os.Getenv"

// throttled carries a justified suppression: silent.
func throttled() time.Duration {
	//tvplint:ignore nondet measured host latency feeds only the stderr progress line, never simulated state
	return time.Since(start)
}
