package fuzzgen

import (
	"testing"

	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// maxFuzzInsts caps committed instructions per pipeline run so a mutated
// program that loses its loop exit still returns promptly.
const maxFuzzInsts = 400000

// pickConfig maps a fuzz-provided byte onto one of the machine
// configurations worth differential-testing: every VP flavor, SpSR,
// retire-time validation, and shrunken structures that force flushes,
// replays and structural stalls the big default machine rarely sees.
func pickConfig(k byte) *config.Machine {
	switch k % 8 {
	case 0:
		return config.Default()
	case 1:
		return config.Default().WithVP(config.MVP)
	case 2:
		return config.Default().WithVP(config.TVP)
	case 3:
		return config.Default().WithVP(config.GVP)
	case 4:
		return config.Default().WithVP(config.TVP).WithSpSR(true)
	case 5:
		c := config.Default().WithVP(config.TVP).WithSpSR(true)
		c.VP.ValidateAtRetire = true
		c.VP.FPCInvProb = 1 // deterministic fast confidence: maximal VP traffic
		return c
	case 6:
		c := config.Default().WithVP(config.GVP)
		c.L1D = config.CacheConfig{SizeBytes: 8 << 10, Assoc: 2, LineBytes: 64, LoadToUse: 4, MSHRs: 8}
		c.L2 = config.CacheConfig{SizeBytes: 64 << 10, Assoc: 4, LineBytes: 64, LoadToUse: 12, MSHRs: 16}
		c.StridePrefetch = false
		c.AMPMPrefetch = false
		return c
	default:
		c := config.Default().WithVP(config.TVP)
		c.VP.DynamicSilence = true
		c.VP.FPCInvProb = 1
		c.ROBSize = 64
		c.IQSize = 24
		c.LQSize = 16
		c.SQSize = 16
		return c
	}
}

// FuzzCrossCheck is the core differential target: generate a random
// program from the seed, run it through the pipeline under a fuzz-chosen
// configuration with the shadow-emulator retire checker armed, and fail
// with a minimized reproducible listing on any divergence.
func FuzzCrossCheck(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, byte(seed-1))
	}
	f.Fuzz(func(t *testing.T, seed uint64, cfgPick byte) {
		p := Generate(seed)
		cfg := pickConfig(cfgPick)
		d, err := Diverges(cfg, p, maxFuzzInsts)
		if err != nil {
			t.Fatalf("seed %#x cfg %d: %v\n%s", seed, cfgPick%8, err, Listing(p))
		}
		if d != nil {
			min, md := MinimizeDivergence(cfg, p, maxFuzzInsts)
			t.Fatalf("seed %#x cfg %d: divergence %v\nminimized reproduction:\n%s",
				seed, cfgPick%8, md, Listing(min))
		}
	})
}

// runArch runs the program to completion under cfg with the retire checker
// armed and returns the committed-instruction count plus the final
// architectural state digest.
func runArch(t *testing.T, cfg *config.Machine, p *prog.Program) (uint64, uint64) {
	t.Helper()
	c := cfg.Clone()
	c.CrossCheck = true
	e := emu.New(p)
	res := pipeline.NewFromEmulator(c, e).Run(0, maxFuzzInsts)
	if !res.Halted {
		t.Fatalf("config %s: did not halt within %d instructions", c.Fingerprint()[:12], uint64(maxFuzzInsts))
	}
	// The pipeline consumes HALT at fetch without retiring it, so the
	// emulator has executed exactly one instruction more than committed.
	if res.Committed+1 != e.Executed() {
		t.Fatalf("config %s: committed %d+1 != executed %d", c.Fingerprint()[:12], res.Committed, e.Executed())
	}
	return res.Committed, e.ArchHash()
}

// mutate applies one timing-only configuration change. By construction
// none of these may alter architectural behavior: the metamorphic
// invariant is that the retired-instruction count and the final
// architectural state stay bit-identical to the baseline run.
func mutate(cfg *config.Machine, k byte) *config.Machine {
	c := cfg.Clone()
	switch k % 14 {
	case 0:
		c.L1D = config.CacheConfig{SizeBytes: 8 << 10, Assoc: 2, LineBytes: 64, LoadToUse: 4, MSHRs: 8}
	case 1:
		c.StridePrefetch = false
		c.AMPMPrefetch = false
	case 2:
		c.BTBEntries = 64
		c.BTBAssoc = 2
		c.RASEntries = 2
	case 3:
		return c.WithVP(config.GVP)
	case 4:
		return c.WithVP(config.VPOff)
	case 5:
		return c.WithSpSR(true)
	case 6:
		c.VP.ValidateAtRetire = true
	case 7:
		c.VP.NeverConfident = true
	case 8:
		c.VP.SilenceCycles = 15
		c.VP.DynamicSilence = true
	case 9:
		c.ROBSize = 64
		c.IQSize = 24
		c.LQSize = 16
		c.SQSize = 16
	case 10:
		c.L2TLB = config.TLBConfig{Entries: 64, Assoc: 4, Latency: 4}
	case 11:
		c.BPTables = 4
	case 12:
		// Not even timing-only: cycle skipping must be invisible to every
		// statistic, so forcing the tick-by-tick loop is the strongest
		// no-op mutation of all (pipeline's TestCycleSkipEquivalence
		// asserts full-stats identity on the workload suite; here the
		// arch digest over random programs must match too).
		c.DisableCycleSkip = true
	default:
		// Same class of claim for the issue scheduler: the polling IQ
		// scan and the wakeup scoreboard must be indistinguishable
		// (pipeline's TestIssueScoreboardEquivalence asserts full-stats
		// identity; here the arch digest over random programs must match).
		c.DisableWakeupScoreboard = true
	}
	return c
}

// FuzzMetamorphic checks the configuration-invariance property: any
// timing-model change (caches, predictors, prefetchers, VP policy, window
// sizes) leaves the retired-instruction count and the final architectural
// state digest bit-identical.
func FuzzMetamorphic(f *testing.F) {
	for seed := uint64(1); seed <= 6; seed++ {
		f.Add(seed, byte(2*seed))
	}
	// The even-spaced corpus above never lands on the scoreboard
	// mutation; pin it so plain `go test` (corpus-only) exercises it.
	f.Add(uint64(7), byte(13))
	f.Fuzz(func(t *testing.T, seed uint64, mutPick byte) {
		p := Generate(seed)
		base := config.Default().WithVP(config.TVP)
		base.VP.FPCInvProb = 1
		wantN, wantH := runArch(t, base, p)
		mut := mutate(base, mutPick)
		gotN, gotH := runArch(t, mut, p)
		if gotN != wantN || gotH != wantH {
			t.Fatalf("seed %#x mutation %d: committed/archhash (%d, %#x) != baseline (%d, %#x)\n%s",
				seed, mutPick%14, gotN, gotH, wantN, wantH, Listing(p))
		}
	})
}
