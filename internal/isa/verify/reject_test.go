package verify_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/tvpb"
	"repro/internal/isa/verify"
	"repro/internal/prog"
)

// rejectCase seeds one bad binary: the build function produces the
// container bytes (committed under testdata/bad so the corpus is
// inspectable and stable), and the verifier must reject them with an
// Error finding from the named check at the exact instruction index.
type rejectCase struct {
	name      string
	strict    bool // run with StrictDefUse
	build     func() []byte
	wantCheck string
	wantIndex int
}

func encodeHalting(name string, emit func(b *prog.Builder) int) ([]byte, int) {
	b := prog.NewBuilder(name)
	idx := emit(b)
	b.Halt()
	return tvpb.EncodeProgram(b.Build()), idx
}

func rejectCases() []rejectCase {
	return []rejectCase{
		{name: "decode_truncated", wantCheck: "decode", wantIndex: -1,
			build: func() []byte {
				data, _ := encodeHalting("bad_truncated", func(b *prog.Builder) int {
					b.MovImm(isa.X0, 1)
					return 0
				})
				return data[:len(data)-20]
			}},
		{name: "decode_bad_opcode", wantCheck: "decode", wantIndex: -1,
			build: func() []byte {
				data, _ := encodeHalting("bad_opcode", func(b *prog.Builder) int {
					b.Nop()
					return 0
				})
				data[16+len("bad_opcode")] = 0xEE // inst 0's op byte
				return data
			}},
		{name: "target_out_of_range", wantCheck: "target", wantIndex: 0,
			build: func() []byte {
				// Hand-assembled: the builder cannot emit an unbound
				// target, which is exactly why the verifier re-checks.
				p := &prog.Program{Name: "bad_target", Code: []isa.Inst{
					{Op: isa.B, Target: 7},
					{Op: isa.HALT},
				}}
				return tvpb.EncodeProgram(p)
			}},
		{name: "fallthrough_off_end", wantCheck: "fallthrough", wantIndex: 1,
			build: func() []byte {
				p := &prog.Program{Name: "bad_fallthrough", Code: []isa.Inst{
					{Op: isa.NOP},
					{Op: isa.ADD, Rd: isa.X0, Rn: isa.X0, Rm: isa.XZR},
				}}
				return tvpb.EncodeProgram(p)
			}},
		{name: "halt_unreachable", wantCheck: "halt", wantIndex: -1,
			build: func() []byte {
				// The only HALT hides behind an unconditional skip; the
				// feasible path falls off the end instead.
				p := &prog.Program{Name: "bad_halt", Code: []isa.Inst{
					{Op: isa.B, Target: 2},
					{Op: isa.HALT},
					{Op: isa.NOP},
				}}
				return tvpb.EncodeProgram(p)
			}},
		{name: "defuse_uninitialized", strict: true, wantCheck: "defuse", wantIndex: 0,
			build: func() []byte {
				data, _ := encodeHalting("bad_defuse", func(b *prog.Builder) int {
					b.Add(isa.X1, isa.X5, isa.X6) // X5/X6 never written
					return 0
				})
				return data
			}},
		{name: "bounds_load_outside_windows", wantCheck: "bounds", wantIndex: -1,
			build: func() []byte {
				data, _ := encodeHalting("bad_bounds", func(b *prog.Builder) int {
					b.MovImm(isa.X0, 0x100)
					b.Ldr(isa.X1, isa.X0, 0, 8)
					return 0
				})
				return data
			}},
		{name: "selfmod_store_to_text", wantCheck: "selfmod", wantIndex: -1,
			build: func() []byte {
				data, _ := encodeHalting("bad_selfmod", func(b *prog.Builder) int {
					b.MovImm(isa.X0, prog.TextBase)
					b.Str(isa.XZR, isa.X0, 0, 8)
					return 0
				})
				return data
			}},
		{name: "indirect_branch_outside_text", wantCheck: "indirect", wantIndex: -1,
			build: func() []byte {
				data, _ := encodeHalting("bad_indirect", func(b *prog.Builder) int {
					b.MovImm(isa.X16, 0x500000)
					b.Br(isa.X16)
					return 0
				})
				return data
			}},
		{name: "loop_inescapable", wantCheck: "loop", wantIndex: 0,
			build: func() []byte {
				p := &prog.Program{Name: "bad_loop", Code: []isa.Inst{
					{Op: isa.B, Target: 0},
					{Op: isa.HALT},
				}}
				return tvpb.EncodeProgram(p)
			}},
	}
}

// TestRejectCorpus drives every seeded-bad container through the full
// Binary entry point and demands the expected structured rejection. The
// wantIndex -1 cases pin only the check (the exact index is an
// implementation detail of which abstract instruction trips first);
// their diagnostic index is then asserted to carry a matching PC.
func TestRejectCorpus(t *testing.T) {
	for _, c := range rejectCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want := c.build()
			path := filepath.Join("testdata", "bad", c.name+".tvpb")
			//tvplint:ignore nondet UPDATE_CORPUS is an explicit opt-in regeneration knob; a normal run only compares committed bytes
			if os.Getenv("UPDATE_CORPUS") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with UPDATE_CORPUS=1)", err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("committed corpus drifted from its builder (%d vs %d bytes)", len(data), len(want))
			}

			_, res := verify.Binary(data, verify.Options{StrictDefUse: c.strict})
			if res.OK() {
				t.Fatal("verifier accepted a seeded-bad binary")
			}
			found := false
			for _, d := range res.Errors() {
				if d.Check != c.wantCheck {
					continue
				}
				if c.wantIndex >= 0 && d.Index != c.wantIndex {
					continue
				}
				if d.Index >= 0 && d.PC != prog.PC(d.Index) {
					t.Errorf("diagnostic PC %#x does not match index %d (want %#x)", d.PC, d.Index, prog.PC(d.Index))
				}
				found = true
			}
			if !found {
				for _, d := range res.Diags {
					t.Logf("diag: %s", d)
				}
				t.Fatalf("no Error finding from check %q at index %d", c.wantCheck, c.wantIndex)
			}
		})
	}
}

// TestRejectBadOpcodeInMemory covers the struct check, which a decoded
// binary can never reach (the codec rejects unknown opcodes first): a
// hand-built in-memory program with an out-of-range Op must still be
// rejected with an exact position, as defense in depth for programs
// that bypass the container path.
func TestRejectBadOpcodeInMemory(t *testing.T) {
	p := &prog.Program{Name: "bad_struct", Code: []isa.Inst{
		{Op: isa.NOP},
		{Op: isa.Op(200)},
		{Op: isa.HALT},
	}}
	res := verify.Program(p, verify.Options{})
	if res.OK() {
		t.Fatal("verifier accepted an invalid opcode")
	}
	for _, d := range res.Errors() {
		if d.Check == "struct" && d.Index == 1 && d.PC == prog.PC(1) {
			return
		}
	}
	for _, d := range res.Diags {
		t.Logf("diag: %s", d)
	}
	t.Fatal("no struct finding at instruction 1")
}
