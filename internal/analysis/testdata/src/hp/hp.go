// Package hp is the hotpathalloc golden: annotated functions with every
// rejected construct, the allowed idioms, and suppression handling.
package hp

import "fmt"

type T struct{ x int }

type S struct {
	buf  []int
	q    []int
	vals []T
}

func sink(x interface{}) { _ = x }

func helper() {}

// hot exercises every rejected construct.
//
//tvp:hotpath
func (s *S) hot(v int) {
	s.buf = append(s.buf, v) // want "append may grow the backing array"
	_ = make([]int, 4)       // want "make allocates"
	_ = new(T)               // want "new allocates"
	p := &T{x: v}            // want "escaping composite literal|escapes to the heap"
	_ = p
	m := map[int]int{} // want "map literal"
	_ = m
	sl := []int{v} // want "slice literal allocates"
	_ = sl
	fmt.Println(v) // want `fmt.Println boxes its arguments`
	_ = any(v)     // want "conversion of int to interface"
	sink(v)        // want "passing concrete int as interface parameter"
	go helper()    // want "go statement allocates"
	sink(nil)      // nil never boxes
	for i := 0; i < 2; i++ {
		defer helper() // want "defer inside a loop"
	}
}

// allowed exercises the idioms the analyzer accepts.
//
//tvp:hotpath
func (s *S) allowed(v int, cold bool) int {
	if cold {
		panic(fmt.Sprintf("cold assertion path %d", v)) // panic args are exempt
	}
	s.q = append(s.q[:1], s.q[2:]...) // in-place compaction never grows
	add := func(x int) int { return x + v }
	defer helper() // top-level defer is open-coded, no allocation
	t := T{x: v}   // value composite literal stays on the stack
	_ = t
	return add(v)
}

// suppressed demonstrates the escape hatch: a justified ignore silences
// the finding, a bare one does not, and the staleignore audit flags the
// ignores that are bare, silence nothing, or misspell the analyzer.
//
//tvp:hotpath
func (s *S) suppressed(v int) {
	//tvplint:ignore hotpathalloc capacity is preallocated in the constructor, append never grows
	s.buf = append(s.buf, v)
	//tvplint:ignore hotpathalloc // want "no justification"
	s.buf = append(s.buf, v) // want "append may grow the backing array"
	//tvplint:ignore hotpathalloc buf was preallocated here before the refactor // want "stale ignore"
	s.buf[0] = v
	//tvplint:ignore hotpathallok typo in the analyzer name // want "unknown analyzer"
	s.buf[1] = v
}

// unannotated may allocate freely: no findings.
func (s *S) unannotated(v int) {
	s.vals = append(s.vals, T{x: v})
	fmt.Println(make([]int, v))
}

// entry is a clean hot arena entry: scalars, nested pointer-free
// structs and arrays only. No findings.
//
//tvp:hotstruct
type entry struct {
	seq   uint64
	idx   int32
	flags [4]uint8
	inner struct{ a, b int16 }
}

// dirty exercises every rejected field kind, including pointer-bearing
// types reached only through nesting.
//
//tvp:hotstruct
type dirty struct {
	p      *T                // want "field p is a pointer"
	buf    []int             // want "field buf is a slice"
	m      map[int]int       // want "field m is a map"
	s      string            // want "field s is a string"
	ch     chan int          // want "field ch is a channel"
	fn     func()            // want "field fn is a func value"
	any    interface{}       // want "field any is an interface"
	nested struct{ q []int } // want `field nested is a struct whose field q is a slice`
	arr    [4]*T             // want "field arr is an array of a pointer"
	ok     uint64            // scalars stay silent
}

// hotstructSuppressed shows the escape hatch covers the struct check
// too: the finding anchors at the field, so the ignore sits beside it.
//
//tvp:hotstruct
type hotstructSuppressed struct {
	//tvplint:ignore hotpathalloc side table is tiny and rewritten never; scan cost is negligible
	dbg *T
	seq uint64
}

// alias is marked but not a struct: the named type's underlying kind is
// checked directly.
//
//tvp:hotstruct
type alias []int // want "alias is //tvp:hotstruct but is a slice"

// unmarked may carry pointers freely: no findings.
type unmarked struct {
	p *T
	s string
}
