// Package config defines the simulated machine configuration. Default()
// reproduces Table 2 of the paper: an 11-stage, 8-wide aggressive
// out-of-order core at a nominal 3 GHz, with the paper's cache hierarchy,
// predictors and rename optimizations. Experiment code derives variants
// (VP flavor, SpSR on/off, predictor budget, prefetcher on/off) from it.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// VPMode selects the value prediction flavor (§3, §6.1).
type VPMode int

const (
	// VPOff disables value prediction (the paper's baseline).
	VPOff VPMode = iota
	// MVP predicts only 0x0 and 0x1, written through hardwired physical
	// registers (§3.1).
	MVP
	// TVP predicts any 9-bit signed value via physical register name
	// inlining, and enables 9-bit signed integer idiom elimination (§3.2).
	TVP
	// GVP predicts arbitrary 64-bit values; predictions wider than 9 bits
	// are written to the PRF (§6.1).
	GVP
)

// String names the VP mode as in the paper's figures.
func (m VPMode) String() string {
	switch m {
	case VPOff:
		return "Baseline"
	case MVP:
		return "Min. VP"
	case TVP:
		return "Tar. VP"
	case GVP:
		return "Gen. VP"
	}
	return fmt.Sprintf("VPMode(%d)", int(m))
}

// FuncUnit describes one execution pipe: which µop classes it accepts
// (bitmask over isa.Class) and whether it is pipelined.
type FuncUnit struct {
	// Name for diagnostics ("alu0", "fp3", ...).
	Name string
	// Classes is a bitmask: bit i set means isa.Class(i) can issue here.
	Classes uint32
	// Pipelined units accept a new µop every cycle; unpipelined ones
	// (the integer and FP dividers) block until the current op finishes.
	Pipelined bool
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	// LoadToUse is the hit latency in cycles (load-to-use for data
	// caches, fetch latency for the L1I).
	LoadToUse int
	MSHRs     int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// TLBConfig describes one TLB level.
type TLBConfig struct {
	Entries int
	Assoc   int
	Latency int // added cycles on hit (0 for L1 TLBs per Table 2)
}

// VPConfig holds value predictor parameters (Table 2, VP rows).
type VPConfig struct {
	Mode VPMode
	// TableLog2 gives log2 of the number of entries of the base table
	// (index 0) followed by the tagged tables. Paper: 12,9,9,8,8,8,7,7.
	TableLog2 []uint
	// TagBits gives the tag width per table, parallel to TableLog2; the
	// base table's "tag" (4 bits in the paper's sizing) is kept for the
	// storage model.
	TagBits []uint
	// MinHist/MaxHist bound the geometric global-history lengths of the
	// tagged tables (paper: 2/128).
	MinHist, MaxHist int
	// FPCBits is the width of the Forward Probabilistic confidence
	// Counter (3 in the paper); a prediction is used only when saturated.
	FPCBits uint
	// FPCInvProb is the inverse probability of an FPC increment (16 in
	// the paper: 1/16 probability).
	FPCInvProb int
	// UsefulBits is the width of the TAGE-style useful field on tagged
	// tables (2 in the paper).
	UsefulBits uint
	// SilenceCycles silences the predictor after a value misprediction to
	// prevent livelock (§3.4.1; paper uses 250, with 15 studied).
	SilenceCycles int
	// ValidateAtRetire moves prediction validation from the functional
	// units to retirement, the EOLE-style alternative the paper
	// contrasts against (§2.2, §6.2): it needs no comparators in the
	// execution lanes, but each validation costs an extra PRF read (the
	// computed result must be read back to compare against the FIFO
	// entry) and mispredictions are detected later, lengthening the
	// flush shadow.
	ValidateAtRetire bool
	// DynamicSilence enables the adaptive silencing scheme the paper
	// suggests as future work (§3.4.1: "a dynamic scheme would likely be
	// beneficial"): the window starts at SilenceCycles, doubles on every
	// misprediction up to 8× and halves back (floor 15 cycles) after
	// every 1024 correct trainings, so quiet phases pay a short window
	// and misprediction storms back off exponentially.
	DynamicSilence bool
	// NeverConfident forces every prediction's FPC confidence to read as
	// unsaturated, so the predictor keeps training but the pipeline never
	// uses a prediction. A machine with VP enabled and NeverConfident set
	// must produce timing bit-identical to VP off (modulo the train-only
	// counter) — the differential harness's metamorphic invariant.
	NeverConfident bool
	// Seed seeds the FPC's probabilistic counter PRNG.
	Seed uint64
}

// Machine is the full simulated machine configuration.
type Machine struct {
	// Frontend (Table 2 Fetch/Decode/Rename rows).
	FetchWidth         int // instructions fetched per cycle from the line buffer
	FetchQueue         int // fetch queue entries (instructions)
	FetchToDecode      int // cycles
	DecodeWidth        int
	DecodeToRename     int // cycles
	RenameWidth        int
	RenameToDispatch   int // cycles
	TakenBranchPenalty int // fetch bubble cycles on a predicted-taken branch
	DecodeMistarget    int // extra redirect cycles for BTB-missed taken branches

	// Backend geometry (Table 2 Dispatch/Commit row).
	DispatchWidth int
	CommitWidth   int
	ROBSize       int
	IQSize        int
	LQSize        int
	SQSize        int
	IntPRF        int
	FPPRF         int

	// Issue (Table 2 Issue row).
	IssueWidth int
	FUs        []FuncUnit
	// Latencies per µop class; unpipelined classes occupy their unit.
	IntALULat, IntMulLat, IntDivLat int
	FPALULat, FPMulLat, FPMacLat    int
	FPDivLat                        int
	BranchLat                       int
	StoreLat                        int // store address/data execution latency

	// Branch prediction (Table 2 row).
	BPTables        int // tagged TAGE tables (paper: 15)
	BPBaseLog2      uint
	BPTaggedLog2    uint
	BPMinHist       int
	BPMaxHist       int
	BPTagBits       uint
	BTBEntries      int
	BTBAssoc        int
	IndirectEntries int
	RASEntries      int

	// Value prediction.
	VP VPConfig

	// Rename optimizations (§5: baseline includes ME and 0/1-idiom).
	MoveElim     bool
	ZeroOneIdiom bool
	NineBitIdiom bool // requires TVP/GVP register inlining hardware
	SpSR         bool

	// Memory hierarchy (Table 2 Caches/TLBs/Prefetchers rows).
	L1I, L1D, L2, L3 CacheConfig
	L1ITLB, L1DTLB   TLBConfig
	L2TLB            TLBConfig
	PageWalkLat      int
	MemLat           int // main memory latency (cycles); gem5-like DRAM turnaround
	StridePrefetch   bool
	StrideDegree     int
	AMPMPrefetch     bool

	// Memory dependence prediction (Store Sets).
	SSITEntries int
	LFSTEntries int

	// Misc.
	MemOrderFlushPenalty int

	// CrossCheck enables the shadow-emulator retire checker: the core
	// steps a second functional emulator in lockstep at retirement and
	// panics with a *pipeline.Divergence the moment the retired
	// architectural state (PC, result, flags, memory value, or a used
	// value prediction) departs from the oracle. Purely diagnostic: it
	// never influences timing, and costs one nil-check per committed µop
	// when disabled.
	CrossCheck bool

	// DisableCycleSkip turns off the event-driven cycle-skipping fast
	// path: when every stage is provably idle, the core normally computes
	// the next wakeup cycle from in-flight latency events and advances
	// the cycle counter in one jump. Skipping is exact — all counters and
	// results are bit-identical either way (asserted by
	// TestCycleSkipEquivalence) — so this switch exists only for
	// equivalence testing and as a diagnostic escape hatch.
	DisableCycleSkip bool

	// DisableWakeupScoreboard falls back to the polling issue loop: every
	// IQ entry re-evaluates its source readiness each cycle instead of
	// producers pushing readiness into registered waiters. The scoreboard
	// is exact — issue order, stats and CPI stacks are bit-identical either
	// way (asserted by TestIssueScoreboardEquivalence and the
	// FuzzMetamorphic scoreboard mutation) — so this switch exists only for
	// equivalence testing and as a diagnostic escape hatch.
	DisableWakeupScoreboard bool
}

// Class bit helpers for FuncUnit masks. These mirror isa.Class values but
// are kept numeric here to avoid an import cycle; internal/pipeline
// asserts the correspondence in its tests.
const (
	CapNop    uint32 = 1 << 0
	CapIntALU uint32 = 1 << 1
	CapIntMul uint32 = 1 << 2
	CapIntDiv uint32 = 1 << 3
	CapFPALU  uint32 = 1 << 4
	CapFPMul  uint32 = 1 << 5
	CapFPDiv  uint32 = 1 << 6
	CapLoad   uint32 = 1 << 7
	CapStore  uint32 = 1 << 8
	CapBranch uint32 = 1 << 9
)

// Default returns the paper's Table 2 machine: 11-stage pipeline, 3 GHz,
// 315-entry ROB, 92-entry IQ, 74/53 LQ/SQ, 292+292 physical registers,
// 32KB TAGE, optional VTAGE, three-level cache hierarchy with stride and
// AMPM prefetchers, and Store Sets memory dependence prediction. Value
// prediction is off; enable it with WithVP.
func Default() *Machine {
	m := &Machine{
		FetchWidth:         16,
		FetchQueue:         32,
		FetchToDecode:      3,
		DecodeWidth:        8,
		DecodeToRename:     1,
		RenameWidth:        8,
		RenameToDispatch:   2,
		TakenBranchPenalty: 1,
		DecodeMistarget:    4,

		DispatchWidth: 8,
		CommitWidth:   8,
		ROBSize:       315,
		IQSize:        92,
		LQSize:        74,
		SQSize:        53,
		IntPRF:        292,
		FPPRF:         292,

		IssueWidth: 15,
		IntALULat:  1,
		IntMulLat:  3,
		IntDivLat:  20,
		FPALULat:   3,
		FPMulLat:   4,
		FPMacLat:   5,
		FPDivLat:   12,
		BranchLat:  1,
		StoreLat:   1,

		BPTables:        15,
		BPBaseLog2:      13,
		BPTaggedLog2:    10,
		BPMinHist:       5,
		BPMaxHist:       640,
		BPTagBits:       11,
		BTBEntries:      8192,
		BTBAssoc:        4,
		IndirectEntries: 1024,
		RASEntries:      32,

		VP: VPConfig{
			Mode:          VPOff,
			TableLog2:     []uint{12, 9, 9, 8, 8, 8, 7, 7},
			TagBits:       []uint{4, 9, 9, 10, 10, 11, 11, 12},
			MinHist:       2,
			MaxHist:       128,
			FPCBits:       3,
			FPCInvProb:    16,
			UsefulBits:    2,
			SilenceCycles: 250,
			Seed:          0x7615_0705,
		},

		MoveElim:     true,
		ZeroOneIdiom: true,

		L1I: CacheConfig{SizeBytes: 128 << 10, Assoc: 8, LineBytes: 64, LoadToUse: 1, MSHRs: 8},
		L1D: CacheConfig{SizeBytes: 128 << 10, Assoc: 8, LineBytes: 64, LoadToUse: 4, MSHRs: 56},
		L2:  CacheConfig{SizeBytes: 1 << 20, Assoc: 8, LineBytes: 64, LoadToUse: 12, MSHRs: 64},
		L3:  CacheConfig{SizeBytes: 8 << 20, Assoc: 16, LineBytes: 64, LoadToUse: 37, MSHRs: 64},

		L1ITLB:      TLBConfig{Entries: 256, Assoc: 1, Latency: 0},
		L1DTLB:      TLBConfig{Entries: 256, Assoc: 1, Latency: 0},
		L2TLB:       TLBConfig{Entries: 3072, Assoc: 12, Latency: 4},
		PageWalkLat: 40,
		MemLat:      160,

		StridePrefetch: true,
		StrideDegree:   4,
		AMPMPrefetch:   true,

		SSITEntries: 2048,
		LFSTEntries: 2048,

		MemOrderFlushPenalty: 5,
	}
	m.FUs = defaultFUs()
	return m
}

func defaultFUs() []FuncUnit {
	fus := make([]FuncUnit, 0, 16)
	add := func(name string, classes uint32, pipelined bool) {
		fus = append(fus, FuncUnit{Name: name, Classes: classes | CapNop, Pipelined: pipelined})
	}
	// 4 simple ALUs (also execute branches, as is conventional).
	for i := 0; i < 4; i++ {
		add(fmt.Sprintf("alu%d", i), CapIntALU|CapBranch, true)
	}
	// 2 (simple ALU + IntMul).
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf("mul%d", i), CapIntALU|CapIntMul|CapBranch, true)
	}
	// 1 IntDiv, not pipelined.
	add("div0", CapIntDiv, false)
	// 3 (simple FP + FP Mul).
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("fp%d", i), CapFPALU|CapFPMul, true)
	}
	// 1 (simple FP + FP Mul + FP Div), divider portion not pipelined.
	add("fpdiv0", CapFPALU|CapFPMul|CapFPDiv, false)
	// 2 load pipes, 2 store pipes.
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf("ld%d", i), CapLoad, true)
	}
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf("st%d", i), CapStore, true)
	}
	return fus
}

// Fingerprint returns a canonical content hash of the configuration.
// Machine contains only value fields and slices of value types, so the
// %#v rendering is a complete, deterministic serialization: two
// configurations share a fingerprint exactly when every field (including
// every table geometry and functional-unit entry) is equal. The
// experiment run cache (internal/simcache) keys simulation results on it.
func (m *Machine) Fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", *m)))
	return hex.EncodeToString(sum[:])
}

// Clone returns a deep copy of the machine configuration.
func (m *Machine) Clone() *Machine {
	c := *m
	c.FUs = append([]FuncUnit(nil), m.FUs...)
	c.VP.TableLog2 = append([]uint(nil), m.VP.TableLog2...)
	c.VP.TagBits = append([]uint(nil), m.VP.TagBits...)
	return &c
}

// WithVP returns a copy configured for the given VP flavor. TVP and GVP
// additionally enable 9-bit signed idiom elimination, which shares the
// register inlining hardware (§3.2.2, §6.1).
func (m *Machine) WithVP(mode VPMode) *Machine {
	c := m.Clone()
	c.VP.Mode = mode
	c.NineBitIdiom = mode == TVP || mode == GVP
	return c
}

// WithSpSR returns a copy with speculative strength reduction enabled or
// disabled.
func (m *Machine) WithSpSR(on bool) *Machine {
	c := m.Clone()
	c.SpSR = on
	return c
}

// WithVPBudgetScale returns a copy whose value predictor tables are scaled
// by factor (a power of two: 0.5, 1, 2, ...), keeping the number of tables
// and history lengths fixed, as the Table 3 sensitivity study prescribes
// ("same number of tables/history bits, only table size is modified").
func (m *Machine) WithVPBudgetScale(log2Delta int) *Machine {
	c := m.Clone()
	for i := range c.VP.TableLog2 {
		n := int(c.VP.TableLog2[i]) + log2Delta
		if n < 4 {
			n = 4
		}
		c.VP.TableLog2[i] = uint(n)
	}
	return c
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (m *Machine) Validate() error {
	switch {
	case m.FetchWidth <= 0 || m.DecodeWidth <= 0 || m.RenameWidth <= 0 ||
		m.DispatchWidth <= 0 || m.CommitWidth <= 0 || m.IssueWidth <= 0:
		return fmt.Errorf("config: non-positive pipeline width")
	case m.ROBSize <= 0 || m.IQSize <= 0 || m.LQSize <= 0 || m.SQSize <= 0:
		return fmt.Errorf("config: non-positive window structure size")
	case m.IntPRF < 2*m.RenameWidth || m.FPPRF < 2*m.RenameWidth:
		return fmt.Errorf("config: physical register file too small")
	case len(m.FUs) == 0:
		return fmt.Errorf("config: no functional units")
	case len(m.VP.TableLog2) != len(m.VP.TagBits):
		return fmt.Errorf("config: VP TableLog2/TagBits length mismatch (%d vs %d)",
			len(m.VP.TableLog2), len(m.VP.TagBits))
	case m.VP.Mode != VPOff && len(m.VP.TableLog2) < 2:
		return fmt.Errorf("config: VTAGE needs a base table and at least one tagged table")
	}
	for _, c := range []CacheConfig{m.L1I, m.L1D, m.L2, m.L3} {
		if c.Sets() <= 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
			return fmt.Errorf("config: cache geometry %v not a whole number of sets", c)
		}
	}
	if m.NineBitIdiom && m.VP.Mode == MVP {
		return fmt.Errorf("config: 9-bit idiom elimination requires TVP/GVP register inlining")
	}
	return nil
}
