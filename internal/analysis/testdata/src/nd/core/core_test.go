// Test-file golden for the nondet analyzer's syntactic test-scope pass:
// the determinism guarantee extends to _test.go generators and helpers.
package core

import (
	"math/rand" // want "math/rand imported in test file of simulator-core package nd/core"
	"os"
	stdtime "time"
)

// genValue draws from math/rand: test programs must reproduce from a seed.
func genValue() int { return rand.Intn(6) }

// elapsed reads the wall clock through a renamed import: the syntactic
// pass resolves the local name through the import table.
func elapsed() int64 { return stdtime.Now().Unix() } // want "wall clock time.Now in test file of simulator-core package nd/core"

// fromEnv leaks host environment into test behavior.
func fromEnv() string { return os.Getenv("SEED") } // want "environment read os.Getenv in test file of simulator-core package nd/core"

// formatted is fine: os selectors outside the env family do not report.
func formatted() bool { return os.IsNotExist(nil) }

// suppressedClock carries a justified suppression, honored in test files.
func suppressedClock() stdtime.Time {
	//tvplint:ignore nondet golden exercising suppression handling inside a test file
	return stdtime.Now()
}
