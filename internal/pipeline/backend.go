package pipeline

import (
	"math/bits"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/rename"
)

// dispatch inserts renamed µops into the instruction queue (and the
// load/store queues), in program order, after the rename-to-dispatch
// delay. Rename-eliminated µops never dispatch (§4.1: they consume
// neither a scheduler entry nor an issue slot).
//tvp:hotpath
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.DispatchWidth && c.dispCnt > 0; n++ {
		u := &c.rob[c.dispPtr]
		if u.renameCycle+uint64(c.cfg.RenameToDispatch) > c.cycle {
			break
		}
		if u.state == stDone {
			// Eliminated / NOP µops complete at rename.
			if c.dispPtr++; c.dispPtr == len(c.rob) {
				c.dispPtr = 0
			}
			c.dispCnt--
			continue
		}
		if c.iqCount() >= c.cfg.IQSize {
			c.st.IQFullStalls++
			break
		}
		if u.isLoad && c.lq.len() >= c.cfg.LQSize {
			c.st.LQFullStalls++
			break
		}
		if u.isStore && c.sq.len() >= c.cfg.SQSize {
			c.st.SQFullStalls++
			break
		}
		u.state = stDispatched
		c.trace(u, StageDispatch)
		c.st.IQAdded++
		if u.isLoad {
			c.lq.push(u.robIdx)
		}
		if u.isStore {
			c.sq.push(u.robIdx)
		}
		if c.useSB {
			// Classify once against current state (after the SQ push, so a
			// store's own entry is visible to pendingStoreIdx ordering).
			c.iqCnt++
			c.schedEnqueue(u.robIdx)
		} else {
			//tvplint:ignore hotpathalloc IQ capacity is preallocated at IQSize in newCore and dispatch stalls on IQFull, so this append never grows
			c.iq = append(c.iq, u.robIdx)
			//tvplint:ignore hotpathalloc iqWake mirrors iq (same capacity, same length), so this append never grows either
			c.iqWake = append(c.iqWake, 0)
		}
		if c.dispPtr++; c.dispPtr == len(c.rob) {
			c.dispPtr = 0
		}
		c.dispCnt--
	}
}

// srcsReady reports whether all register, flag and memory-dependence
// sources of a µop are available this cycle. When it returns false it
// also returns a wake bound: a cycle before which the µop provably
// cannot issue (0 when no such bound exists). The bound is the max of
// the concrete ready times among blocking sources; it is sound because
// concrete ready times never decrease (producers broadcast exactly
// once; GVP repair only raises them), and it remains a valid lower
// bound even when a further source has no issued producer yet — that
// source can only delay the µop more, never less.
//tvp:hotpath
func (c *Core) srcsReady(u *uop) (bool, uint64) {
	ready := true
	var bound uint64
	for i := 0; i < int(u.nsrc); i++ {
		s := u.srcs[i]
		var r uint64
		if s.fp {
			r = c.fpReadyAt[s.name]
		} else {
			r = c.intReadyAt[s.name]
		}
		if r > c.cycle {
			ready = false
			if r != neverReady && r > bound {
				bound = r
			}
		}
	}
	if u.flagR && u.flagSrcIdx != noIdx {
		if fr := c.robReady[u.flagSrcIdx]; fr > c.cycle && c.rob[u.flagSrcIdx].uSeq == u.flagSrcUSeq {
			ready = false
			if fr != neverReady && fr > bound {
				bound = fr
			}
		}
	}
	if !ready {
		return false, bound
	}
	if u.memDepSeq != 0 && c.storePending(u.memDepSeq-1) {
		// Store execution, not a fixed cycle, resolves this; no bound.
		return false, 0
	}
	return true, 0
}

// storePending reports whether the store with the given dynamic sequence
// number is still in the store queue without having generated its address.
//tvp:hotpath
func (c *Core) storePending(seq uint64) bool {
	for _, si := range c.sq.live() {
		s := &c.rob[si]
		if s.seq == seq {
			return !s.executedMem
		}
		if s.seq > seq {
			return false
		}
	}
	return false
}

// fu allocation state, kept as bitmasks over cfg.FUs (bit i = unit i).
// The candidate set per µop class and the non-pipelined subset are
// static (fuSetup); per cycle fuInit rebuilds only the taken and
// still-busy masks, and allocFU reduces to mask arithmetic plus a
// trailing-zeros pick — which preserves the config-order first-match
// selection of the old linear scan. The unpipelined dividers hold their
// unit across cycles via busyUntil.
type fuState struct {
	classMask [isa.ClassBranch + 1]uint32 // FU candidate set per class
	npMask    uint32                      // non-pipelined units
	usedMask  uint32                      // taken this cycle
	busyMask  uint32                      // non-pipelined units busy this cycle
	busyUntil []uint64
}

// fuSetup precomputes the static masks (newCore).
func (c *Core) fuSetup() {
	c.fus.busyUntil = make([]uint64, len(c.cfg.FUs))
	for i := range c.cfg.FUs {
		f := &c.cfg.FUs[i]
		for cl := range c.fus.classMask {
			if f.Classes&(uint32(1)<<uint(cl)) != 0 {
				c.fus.classMask[cl] |= 1 << uint(i)
			}
		}
		if !f.Pipelined {
			c.fus.npMask |= 1 << uint(i)
		}
	}
}

//tvp:hotpath
func (c *Core) fuInit() {
	c.fus.usedMask = 0
	var bm uint32
	for np := c.fus.npMask; np != 0; np &= np - 1 {
		i := bits.TrailingZeros32(np)
		if c.fus.busyUntil[i] > c.cycle {
			bm |= 1 << uint(i)
		}
	}
	c.fus.busyMask = bm
}

// allocFU finds a free functional unit able to execute the class.
//tvp:hotpath
func (c *Core) allocFU(class isa.Class) int {
	avail := c.fus.classMask[class] &^ (c.fus.usedMask | c.fus.busyMask)
	if avail == 0 {
		return -1
	}
	return bits.TrailingZeros32(avail)
}

// issue selects up to IssueWidth ready µops from the IQ, oldest first,
// assigns functional units, charges PRF reads, and computes completion
// times (including cache access for loads). Under the wakeup scoreboard
// (scoreboard.go) the scan covers only the ready set; this polling loop
// is the DisableWakeupScoreboard oracle.
//tvp:hotpath
func (c *Core) issue() {
	if c.useSB {
		c.sbIssue()
		return
	}
	c.fuInit()
	width := c.cfg.IssueWidth
	for i := 0; i < len(c.iq) && width > 0; {
		// Wake-bound fast path: a cached bound (see srcsReady) means the
		// entry provably cannot issue yet, without touching its ROB line.
		if c.iqWake[i] > c.cycle {
			i++
			continue
		}
		u := &c.rob[c.iq[i]]
		ready, bound := c.srcsReady(u)
		if !ready {
			c.iqWake[i] = bound
			i++
			continue
		}
		fu := c.allocFU(u.class)
		if fu < 0 {
			i++
			continue
		}
		c.iq = append(c.iq[:i], c.iq[i+1:]...)
		c.iqWake = append(c.iqWake[:i], c.iqWake[i+1:]...)
		width--
		c.fus.usedMask |= 1 << uint(fu)
		c.doIssue(u, fu)
		if c.flushedThisCycle {
			return
		}
	}
}

// doIssue executes the timing of one µop.
//tvp:hotpath
func (c *Core) doIssue(u *uop, fu int) {
	u.state = stIssued
	u.fu = uint8(fu)
	c.trace(u, StageIssue)
	c.st.IQIssued++

	// Integer PRF read ports: physical, non-hardwired sources only
	// (hardwired and inlined names are muxed from the scheduler entry,
	// §3.2.1 and §6.1 footnote).
	for i := 0; i < int(u.nsrc); i++ {
		s := u.srcs[i]
		if !s.fp && s.name.IsPhys() && !s.name.IsHardwired() {
			c.st.IntPRFReads++
			// GVP: note consumption of a wide predicted register; once
			// consumed, a misprediction can no longer be repaired
			// silently (§3.4.2).
			if pi := c.predictedReg[s.name]; pi != noIdx {
				c.rob[pi].vpConsumed = true
			}
		}
	}

	switch {
	case u.isLoad:
		c.issueLoad(u)
	case u.isStore:
		// issueStore may flush younger µops on an ordering violation; the
		// store itself is always older than the violating load and
		// survives, so its bookkeeping below still applies.
		c.issueStore(u)
	default:
		lat := c.classLatency(u)
		c.robReady[u.robIdx] = c.cycle + lat
		if !c.cfg.FUs[fu].Pipelined {
			c.fus.busyUntil[fu] = c.robReady[u.robIdx]
		}
	}

	// Speculative wakeup: broadcast the destination availability.
	if u.hasDst && u.freshDst {
		if u.dstFP {
			c.fpReadyAt[u.dst] = c.robReady[u.robIdx]
		} else if !u.vpWide {
			c.intReadyAt[u.dst] = c.robReady[u.robIdx]
		}
	}
	//tvplint:ignore hotpathalloc execL capacity is preallocated at ROBSize in newCore and in-flight µops cannot exceed the ROB, so this append never grows
	c.execL = append(c.execL, u.robIdx)

	// Scoreboard broadcast: readiness just became concrete, so wake the
	// waiters that were registered on it. The destination-register list
	// pairs with the speculative wakeup above (same condition, same
	// readyAt value); the slot list covers flag consumers (robReady is now
	// concrete) and memory-dependent loads (executedMem is now set for
	// stores). Runs after all ready-time writes so reclassification sees
	// final state.
	// (The != noIdx guards keep the empty-list common case — most
	// destinations have no waiters — from paying the wakeList call.)
	if c.useSB {
		if u.hasDst && u.freshDst {
			if u.dstFP {
				if c.fpWaitHead[u.dst] != noIdx {
					c.wakeList(&c.fpWaitHead[u.dst])
				}
			} else if !u.vpWide {
				if c.intWaitHead[u.dst] != noIdx {
					c.wakeList(&c.intWaitHead[u.dst])
				}
			}
		}
		if c.slotWaitHead[u.robIdx] != noIdx {
			c.wakeList(&c.slotWaitHead[u.robIdx])
		}
	}
}

//tvp:hotpath
func (c *Core) classLatency(u *uop) uint64 {
	m := c.cfg
	switch u.class {
	case isa.ClassIntALU:
		return uint64(m.IntALULat)
	case isa.ClassIntMul:
		return uint64(m.IntMulLat)
	case isa.ClassIntDiv:
		return uint64(m.IntDivLat)
	case isa.ClassFPALU:
		return uint64(m.FPALULat)
	case isa.ClassFPMul:
		if c.crack[u.sIdx].fpMac {
			return uint64(m.FPMacLat)
		}
		return uint64(m.FPMulLat)
	case isa.ClassFPDiv:
		return uint64(m.FPDivLat)
	case isa.ClassBranch:
		return uint64(m.BranchLat)
	case isa.ClassStore:
		return uint64(m.StoreLat)
	}
	return 1
}

// issueLoad performs address generation, store-to-load forwarding, and
// the cache access.
//tvp:hotpath
func (c *Core) issueLoad(u *uop) {
	u.executedMem = true
	agu := c.cycle + 1
	agu += c.tlbs.Translate(u.ea, false)

	// Store-to-load forwarding against older stores with known addresses.
	fwd := noIdx
	partial := false
	for _, si := range c.sq.live() {
		s := &c.rob[si]
		if s.seq >= u.seq {
			break
		}
		if !s.executedMem || !overlaps(u.ea, u.memSize, s.ea, s.memSize) {
			continue
		}
		fwd, partial = si, !contains(u.ea, u.memSize, s.ea, s.memSize)
	}
	switch {
	case fwd != noIdx && !partial:
		// Full forward from the youngest covering store.
		rc := agu + uint64(c.cfg.L1D.LoadToUse)
		if fr := c.robReady[fwd]; fr > rc {
			rc = fr
		}
		c.robReady[u.robIdx] = rc
	case fwd != noIdx:
		// Partial overlap: wait for the store data and replay through
		// the cache.
		c.robReady[u.robIdx] = maxu(c.l1dAccess(u, agu, false), c.robReady[fwd]+4)
	default:
		c.robReady[u.robIdx] = c.l1dAccess(u, agu, false)
	}
}

// issueStore generates the store address, releases dependent loads in the
// store-set predictor, and checks for memory order violations: a younger
// load that already executed with an overlapping address read stale data,
// so the pipeline flushes at that load and the store sets learn the pair
// (§Table 2 Store Sets row).
//tvp:hotpath
func (c *Core) issueStore(u *uop) {
	u.executedMem = true
	c.robReady[u.robIdx] = c.cycle + uint64(c.cfg.StoreLat)
	c.ssets.StoreExecuted(c.crack[u.sIdx].pc, u.seq)

	for _, li := range c.lq.live() {
		l := &c.rob[li]
		if l.seq > u.seq && l.executedMem && overlaps(l.ea, l.memSize, u.ea, u.memSize) {
			c.ssets.Violation(c.crack[l.sIdx].pc, c.crack[u.sIdx].pc)
			c.st.MemOrderFlushes++
			c.redirectCause = redirectMem
			c.flush(l.seq, uint64(c.cfg.MemOrderFlushPenalty))
			return
		}
	}
}

// complete retires execution: validation of value predictions, branch
// resolution (fetch resume), and PRF write accounting.
//tvp:hotpath
func (c *Core) complete() {
	c.flushedThisCycle = false
	// Single-pass compaction: survivors slide down as completions are
	// processed, instead of paying a memmove per completed entry.
	out := c.execL[:0]
	for k := 0; k < len(c.execL); k++ {
		i := c.execL[k]
		// Poll the dense ready array first; the 128-byte uop line is only
		// touched once the µop is actually due.
		if c.robReady[i] > c.cycle {
			//tvplint:ignore hotpathalloc out aliases execL[:0] and receives at most len(execL) survivors, so the append never grows
			out = append(out, i)
			continue
		}
		u := &c.rob[i]
		u.state = stDone
		c.trace(u, StageComplete)

		// Value prediction validation, in place at the functional unit
		// (§3.3): the physical destination register name is the
		// prediction; compare it with the computed result. Under the
		// EOLE-style alternative (§2.2) validation is deferred to retire.
		if u.vpUsed && !c.cfg.VP.ValidateAtRetire {
			// Splice survivors and the unprocessed tail back into a
			// consistent list first: a misprediction flushes, and flush
			// filters execL in place. (Overlapping forward copy; both
			// halves live in execL's own backing, so no allocation.)
			n := len(out)
			//tvplint:ignore hotpathalloc splice of execL's own elements into execL's own backing (len(out)+tail <= len(execL)), never grows
			c.execL = append(out, c.execL[k+1:]...)
			if !c.validateVP(u) {
				return // flushed; execL was rebuilt
			}
			out = c.execL[:n]
			k = n - 1 // resume at what followed u
		}

		// Branch resolution: resume fetch if it was stalled on this
		// branch.
		if u.isBranch && c.waitBranchSeq == u.seq+1 {
			c.waitBranchSeq = 0
			c.fetchStallUntil = maxu(c.fetchStallUntil, c.cycle+redirectPenalty)
		}

		// Integer PRF write (suppressed for inlined/hardwired VP
		// destinations — there is nothing to write — and for correct GVP
		// wide predictions, whose value was already written at rename).
		if u.hasDst && u.freshDst && !u.dstFP && !u.vpWide {
			c.st.IntPRFWrites++
		}
	}
	c.execL = out
}

// validateVP checks a used prediction against the computed result. It
// returns false when a flush occurred.
//tvp:hotpath
func (c *Core) validateVP(u *uop) bool {
	p, _ := c.pred(u.seq)
	actual := c.stream.At(u.seq).Result
	// bugSeqPlus1 models a broken validation comparator for the injected
	// instruction (injectVPBug): the corrupted prediction passes
	// validation so only the retire checker can catch it.
	if p.vpValue == actual || c.bugSeqPlus1 == u.seq+1 {
		if u.vpWide {
			// The prediction was already written at rename; the
			// architectural result is still written back (Fig. 6's extra
			// GVP write traffic).
			c.predictedReg[u.dst] = noIdx
			c.st.IntPRFWrites++
		}
		return true
	}

	// Misprediction.
	c.st.VPIncorrectUsed++
	c.vpred.Silence(c.cycle)

	if u.vpWide && !u.vpConsumed {
		// GVP silent repair (§3.4.2): no dependent has read the
		// prediction, so the correct value simply overwrites it.
		c.predictedReg[u.dst] = noIdx
		c.intReadyAt[u.dst] = c.cycle
		c.st.IntPRFWrites++
		u.vpUsed = false // commits as a non-used (repaired) prediction
		return true
	}

	c.st.VPFlushes++
	if c.hooks != nil {
		c.hooks.VPFlush(c.crack[u.sIdx].pc, c.instOf(u))
	}
	c.redirectCause = redirectVP
	if u.vpWide {
		// GVP: the instruction owns a physical register; the correct
		// result overwrites the prediction and only younger µops squash.
		c.predictedReg[u.dst] = noIdx
		c.intReadyAt[u.dst] = c.cycle
		c.st.IntPRFWrites++
		u.vpUsed = false
		c.flush(u.seq+1, redirectPenalty)
	} else {
		// MVP/TVP: the destination was renamed to a hardwired register
		// or has no storage at all; the instruction must be refetched
		// and renamed again (§3.4), so the flush includes it.
		c.flush(u.seq, redirectPenalty)
	}
	return false
}

// commit retires up to CommitWidth completed µops in program order,
// updating the committed RAT, training the value predictor from the
// VP-tracking FIFO, performing store writebacks, and accumulating the
// paper's per-category elimination statistics.
//tvp:hotpath
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCnt > 0; n++ {
		u := &c.rob[c.robHead]
		if u.state != stDone || c.robReady[c.robHead] > c.cycle {
			break
		}

		// Retire-time validation (§2.2's EOLE-style scheme): read the
		// computed result back from the PRF (the +1 PRF read the paper
		// charges this design) and compare against the prediction.
		if u.vpUsed && c.cfg.VP.ValidateAtRetire {
			c.st.IntPRFReads++
			if !c.validateVP(u) {
				return // flushed (including u itself for MVP/TVP)
			}
		}

		if u.hasDst {
			if u.dstFP {
				c.ren.CommitDefFP(u.dstArch, u.dst)
			} else {
				c.ren.CommitDefInt(u.dstArch, u.dst, u.dstWide, u.dstSpec)
			}
		}

		if u.isStore {
			if c.sq.len() == 0 || *c.sq.front() != u.robIdx {
				panic("pipeline: store commit out of order")
			}
			c.sq.popFront()
			c.l1dAccess(u, c.cycle, true)
		}
		if u.isLoad {
			if c.lq.len() == 0 || *c.lq.front() != u.robIdx {
				panic("pipeline: load commit out of order")
			}
			c.lq.popFront()
		}

		if u.kind == isa.UOpMain {
			c.commitMainStats(u)
		}

		if c.xcheck != nil {
			c.xcheck.retireUop(c, u)
		}
		c.trace(u, StageCommit)
		if c.acct != nil {
			// CPI stack: this commit slot retired a µop (counted here,
			// after retire-time validation, so a flushed µop never counts).
			if u.eliminated && u.elimOrigin == rename.OriginSpSR {
				c.acct.spsr++
			} else {
				c.acct.retired++
			}
		}
		c.st.UOps++
		if u.last {
			c.st.ArchInsts++
			c.committed++
		}
		if u.vpWide {
			c.predictedReg[u.dst] = noIdx
		}
		if c.robHead++; c.robHead == len(c.rob) {
			c.robHead = 0
		}
		c.robCnt--
		c.lastCommitC = c.cycle
	}
}

// commitMainStats accumulates per-instruction statistics at retirement of
// the main µop: elimination categories (Fig. 4), VP coverage metrics
// (§6.1), and value predictor training (§3.3: the FIFO drains at retire).
//tvp:hotpath
func (c *Core) commitMainStats(u *uop) {
	in := c.instOf(u)
	if u.moveBlocked && !u.eliminated {
		c.st.MoveNotElim++
	}
	if u.eliminated {
		switch u.elimOrigin {
		case rename.OriginZeroOne:
			if u.elimKind == rename.KindOne {
				c.st.OneIdiomElim++
			} else {
				c.st.ZeroIdiomElim++
			}
		case rename.OriginMove:
			c.st.MoveElim++
		case rename.OriginNineBit:
			c.st.NineBitElim++
		case rename.OriginSpSR:
			c.st.SpSRElim++
			switch u.elimKind {
			case rename.KindZero:
				c.st.SpSRZero++
			case rename.KindOne:
				c.st.SpSROne++
			case rename.KindValue:
				c.st.SpSRZero++ // small-constant results grouped with zero-idiom class
			case rename.KindMove:
				c.st.SpSRMove++
			case rename.KindNop:
				c.st.SpSRNop++
			case rename.KindBranch:
				c.st.SpSRBranch++
			}
			if in.Op == isa.CSEL || in.Op == isa.CSINC || in.Op == isa.CSNEG {
				c.st.SpSRCondSelect++
			}
		}
	}

	if in.VPEligible() {
		c.st.VPEligible++
	}
	if c.vpred != nil && in.VPEligible() {
		// The fetch-time lookup lives in the predRing, re-read here rather
		// than carried in the ROB entry: the ring (stream capacity) far
		// exceeds the instruction window, so a retiring instruction's
		// record is always intact (the retire checker asserts exactly
		// this invariant).
		p := &c.predRing[u.seq&(emu.DefaultStreamCapacity-1)]
		if p.seqPlus1 == u.seq+1 && p.vpValid {
			if u.vpUsed {
				c.st.VPCorrectUsed++ // a used wrong prediction never commits used
			} else {
				c.st.VPTrainOnly++
			}
			c.vpred.Train(p.vpLookup, c.stream.At(u.seq).Result)
		}
	}
}

// syncMemStats copies cache/TLB/prefetch counters into the stats block so
// snapshot subtraction (warmup exclusion) covers them.
//tvp:hotpath
func (c *Core) syncMemStats() {
	c.st.L1IAccesses, c.st.L1IMisses = c.mem.L1I.Accesses, c.mem.L1I.Misses
	c.st.L1DAccesses, c.st.L1DMisses = c.mem.L1D.Accesses, c.mem.L1D.Misses
	c.st.L2Accesses, c.st.L2Misses = c.mem.L2.Accesses, c.mem.L2.Misses
	c.st.L3Accesses, c.st.L3Misses = c.mem.L3.Accesses, c.mem.L3.Misses
	c.st.L1TLBMisses = c.tlbs.L1I.Misses + c.tlbs.L1D.Misses
	c.st.L2TLBMisses = c.tlbs.L2.Misses
	c.st.PrefetchesIssued = c.mem.L1D.PFIssued + c.mem.L2.PFIssued
	c.st.PrefetchesUseful = c.mem.L1D.PFUseful + c.mem.L2.PFUseful
}
