// Package workload defines the synthetic SPEC CPU2017-speed-like benchmark
// suite the reproduction runs in place of SPEC binaries (see DESIGN.md §2
// substitution 1). Each of the paper's 28 workload points is a real
// program in the micro-ISA, composed from the kernel library in this file.
//
// The kernels are designed around the properties that drive the paper's
// results:
//
//   - Value stability classes. Loop-invariant loads and flag producers
//     yield stable values; whether those values are {0,1}, 9-bit signed,
//     or wide (pointers) determines which of MVP/TVP/GVP can capture them
//     (§3.1, §3.2, §6.1). Dependent-load chains headed by stable values
//     are the speedup lever: predicting the head collapses the chain.
//   - Fig. 1's value distribution: 0x0 dominant, 0x1 and small integers
//     frequent, occasional pointers.
//   - µop expansion (Fig. 2): pre/post-index memory operations crack into
//     two µops; each benchmark's addressing-mode mix sets its ratio.
//   - Branch behavior: register LCGs provide genuinely unpredictable
//     bits; modulo patterns and loop branches are predictable.
//   - Memory behavior: working set sizes position each benchmark in the
//     L1/L2/L3/DRAM hierarchy; pointer chasing defeats prefetching while
//     streams exercise the stride prefetcher.
package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// Register conventions used by every kernel: X19 is the outer loop
// counter; X18 and X20..X28 hold persistent state set up before the loop;
// X0..X17 are kernel scratch. D8..D15 are persistent FP registers.
const (
	rCnt   = isa.X19 // outer loop counter
	rMulC  = isa.X18 // LCG multiplier (persistent constant)
	rCfg   = isa.X20 // config block (stable values)
	rArrA  = isa.X21 // array A cursor
	rArrB  = isa.X22 // array B cursor
	rList  = isa.X23 // linked list cursor
	rTable = isa.X24 // jump table base
	rMat   = isa.X25 // matrix base
	rHist  = isa.X26 // histogram base
	rSlot  = isa.X27 // spill slot base (silent-store pattern)
	rLCG   = isa.X28 // register LCG state
)

// hugeIters makes the outer loop effectively unbounded; simulation length
// is controlled by the instruction budget, not program termination.
const hugeIters = uint64(1) << 40

// loop wraps setup and a loop body into a complete program.
func loop(name string, setup, body func(b *prog.Builder)) *prog.Program {
	b := prog.NewBuilder(name)
	setup(b)
	b.MovImm(rCnt, hugeIters)
	top := b.Here()
	body(b)
	b.SubsI(rCnt, rCnt, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

// cfgBlock allocates a config block holding the given stable values,
// points rCfg at it, and returns its base. Offset of value i is 8*i.
func cfgBlock(b *prog.Builder, values []uint64) uint64 {
	base := b.AllocWords(len(values), values...)
	b.MovAddr(rCfg, base)
	return base
}

// seedLCG initializes the register LCG used for unpredictable data.
func seedLCG(b *prog.Builder, seed uint64) {
	b.MovImm(rLCG, seed)
	b.MovImm(rMulC, 6364136223846793005)
}

// lcgStep advances the register LCG and leaves fresh pseudo-random bits
// in dst.
func lcgStep(b *prog.Builder, dst isa.Reg) {
	b.Mul(rLCG, rLCG, rMulC)
	b.AddI(rLCG, rLCG, 12345)
	b.LsrI(dst, rLCG, 33)
}

// chainClass selects the stability class of a dependent chain's link
// values, which determines the narrowest VP flavor able to capture them.
type chainClass int

const (
	chainWide  chainClass = iota // 64-bit pointers: GVP only
	chainSmall                   // 9-bit indices: TVP and GVP
	chainBool                    // 0/1 selectors: MVP, TVP and GVP
)

// chainState carries the data addresses a chain kernel needs.
type chainState struct {
	class   chainClass
	depth   int
	cfgOff  int64 // config offset holding the chain head (chainWide)
	idxBase uint64
}

// setupChain allocates the chain's backing storage. For chainWide, node i
// holds a pointer to node i+1 and the head pointer is written into the
// given config slot, so every link load returns a stable pointer — the
// xalancbmk outlier pattern (§6.1). For chainSmall/chainBool the links
// are a stable table of small indices.
func setupChain(b *prog.Builder, class chainClass, depth int, cfgBase uint64, cfgSlot int) chainState {
	st := chainState{class: class, depth: depth, cfgOff: int64(cfgSlot * 8)}
	switch class {
	case chainWide:
		nodes := b.Alloc(uint64(depth+1)*64, 64)
		for i := 0; i < depth; i++ {
			b.SetWord(nodes+uint64(i)*64, nodes+uint64(i+1)*64)
		}
		b.SetWord(cfgBase+uint64(cfgSlot)*8, nodes)
	case chainSmall:
		st.idxBase = b.Alloc(256*8, 8)
		for i := 0; i < 256; i++ {
			b.SetWord(st.idxBase+uint64(i)*8, uint64(i*7+13)&0xff)
		}
	case chainBool:
		st.idxBase = b.Alloc(2*8, 8)
		b.SetWord(st.idxBase, 1)
		b.SetWord(st.idxBase+8, 0)
	}
	return st
}

// emitChain emits one traversal of the chain, accumulating into acc. Each
// link load's result is loop-invariant for its PC, so a value predictor of
// the right class collapses the serial chain.
func emitChain(b *prog.Builder, st chainState, acc isa.Reg) {
	switch st.class {
	case chainWide:
		b.Ldr(isa.X0, rCfg, st.cfgOff, 8)
		for i := 0; i < st.depth-1; i++ {
			b.Ldr(isa.X0, isa.X0, 0, 8)
		}
		b.Add(acc, acc, isa.X0)
	case chainSmall, chainBool:
		b.MovAddr(isa.X1, st.idxBase)
		b.Zero(isa.X0)
		mask := int64(255)
		if st.class == chainBool {
			mask = 1
		}
		for i := 0; i < st.depth; i++ {
			b.LdrR(isa.X0, isa.X1, isa.X0, 3, 8) // x0 = idx[x0], stable per PC
			b.AndI(isa.X0, isa.X0, mask)
		}
		b.Add(acc, acc, isa.X0)
	}
}

// Carried chains are the suite's central VP-speedup construction. A
// persistent cursor register walks a *fixed-point* indirection each
// iteration (a structure whose base is re-derived through loads every
// time, as in xalancbmk's ValueStore::contains(), §6.1): the loads form a
// loop-carried serial dependence, yet every load PC returns the same
// value each iteration, so a value predictor of the right class breaks
// the carry and lets iterations overlap. The cursor register must be one
// of the reserved persistent registers (X15/X16/X17), chosen per
// benchmark to avoid kernel scratch conflicts.
//
// setupChainCarried allocates the fixed-point structure and initializes
// the cursor:
//
//	chainWide:  cur holds a pointer; [cur] = cur     (64-bit pointer)
//	chainSmall: cur holds index k; idx[k] = k, k=7   (9-bit value)
//	chainBool:  cur holds 1; idx[1] = 1              (0/1 value)
func setupChainCarried(b *prog.Builder, class chainClass, cur isa.Reg) chainState {
	st := chainState{class: class}
	switch class {
	case chainWide:
		node := b.Alloc(64, 64)
		b.SetWord(node, node)
		b.MovAddr(cur, node)
	case chainSmall:
		st.idxBase = b.Alloc(256*8, 8)
		b.SetWord(st.idxBase+7*8, 7)
		b.MovImm(cur, 7)
	case chainBool:
		st.idxBase = b.Alloc(2*8, 8)
		b.SetWord(st.idxBase+8, 1)
		b.MovImm(cur, 1)
	}
	return st
}

// emitChainCarried emits depth loop-carried chain loads through cur. The
// per-iteration critical path grows by depth × load latency unless the
// link values are predicted.
func emitChainCarried(b *prog.Builder, st chainState, cur isa.Reg, depth int) {
	switch st.class {
	case chainWide:
		for i := 0; i < depth; i++ {
			b.Ldr(cur, cur, 0, 8)
		}
	case chainSmall, chainBool:
		b.MovAddr(isa.X13, st.idxBase)
		for i := 0; i < depth; i++ {
			b.LdrR(cur, isa.X13, cur, 3, 8)
		}
	}
}

// setupMixedChain allocates the fixed-point node a mixed-class carried
// chain walks: word 0 holds a self pointer (wide class), word 8 holds 0
// (bool class), word 16 holds 7 (9-bit class). Every link load is
// loop-invariant; the per-link class decides which VP flavor can break
// that link, so one chain with a mixed pattern yields graded MVP/TVP/GVP
// speedups, the way real code mixes booleans, small offsets and pointers
// on its critical paths.
func setupMixedChain(b *prog.Builder, cur isa.Reg) {
	node := b.Alloc(64, 64)
	b.SetWord(node, node)
	b.SetWord(node+8, 0)
	b.SetWord(node+16, 7)
	b.MovAddr(cur, node)
}

// emitMixedChain emits one carried link per pattern character:
//
//	'W': cur = [cur]           — wide pointer link (GVP breaks it)
//	'B': t = [cur+8]; cur += t — 0/1 link (MVP/TVP/GVP break the load;
//	     with SpSR the add reduces to a move when t is predicted 0)
//	'S': t = [cur+16]; cur &^= t — 9-bit link (TVP/GVP break the load)
//
// An unpredicted link costs a load (plus an ALU op for B/S) on the
// carried critical path; a predicted link costs only the ALU op, and a
// predicted 'W' link costs nothing.
func emitMixedChain(b *prog.Builder, cur isa.Reg, pattern string) {
	for _, ch := range pattern {
		switch ch {
		case 'W':
			b.Ldr(cur, cur, 0, 8)
		case 'B':
			b.Ldr(isa.X13, cur, 8, 8)
			b.Add(cur, cur, isa.X13)
		case 'S':
			b.Ldr(isa.X13, cur, 16, 8)
			b.Bic(cur, cur, isa.X13) // node is 64-aligned: cur &^ 7 == cur
		default:
			panic("workload: bad mixed-chain pattern " + string(ch))
		}
	}
}

// Conflict arena: L1-latency-independent floors. All arena slots are
// spaced 16 KB apart so they map to a single L1D set (128KB, 8-way, 64B
// lines → 256 sets → 16KB set stride): with more than 8 live slots, every
// visit misses the L1D and hits the L2, yielding a stable ~L2 latency per
// link that does not depend on how much of a big working set a bounded
// simulation manages to touch. The L2 (2048 sets) spreads the same slots
// across 8 sets, so it retains them all.
const arenaStride = 16 << 10

// arena holds the conflict-slot addresses of one benchmark.
type arena struct {
	floor    []uint64 // shuffled ring of floor nodes (pointer in word 0)
	spare    []uint64 // extra conflicted slots for carried-path nodes
	pressure uint64   // base of the pressure slots (rMat points here)
}

// pressureSlots is the number of independent loads emitSetPressure issues
// per iteration: touching 8 extra lines of the conflict set every
// iteration guarantees (8-way L1D) that every floor and carried-path
// conflict slot is evicted between visits, making their L1-miss/L2-hit
// latency deterministic instead of LRU-knife-edge chaotic.
const pressureSlots = 8

// setupArena allocates floorLinks ring nodes plus spare conflicted slots,
// builds the shuffled floor ring, and points rList at it. The floor ring
// is walked with ptrChase: each link is an unpredictable pointer load that
// always misses L1 (the arena guarantees ≥ 8 live slots in the set).
func setupArena(b *prog.Builder, floorNodes, spares int, rng *xrand.Rand) arena {
	n := floorNodes + spares + pressureSlots
	base := b.Alloc(uint64(n)*arenaStride, arenaStride)
	a := arena{}
	for i := 0; i < floorNodes; i++ {
		a.floor = append(a.floor, base+uint64(i)*arenaStride)
	}
	for i := floorNodes; i < floorNodes+spares; i++ {
		a.spare = append(a.spare, base+uint64(i)*arenaStride)
	}
	a.pressure = base + uint64(floorNodes+spares)*arenaStride
	b.MovAddr(rMat, a.pressure)
	perm := make([]int, floorNodes)
	for i := range perm {
		perm[i] = i
	}
	for i := floorNodes - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < floorNodes; i++ {
		b.SetWord(a.floor[perm[i]], a.floor[perm[(i+1)%floorNodes]])
	}
	b.MovAddr(rList, a.floor[perm[0]])
	return a
}

// emitSetPressure issues pressureSlots independent loads over the arena's
// pressure lines (off any dependence chain), evicting the whole conflict
// set every iteration.
func emitSetPressure(b *prog.Builder) {
	for i := 0; i < pressureSlots; i++ {
		b.Ldr(isa.X14, rMat, int64(i)*arenaStride, 8)
	}
}

// carriedPath is the calibrated VP-speedup construction: a cycle of wide
// pointer nodes (each hot = L1-resident, or conflicted = always-L1-miss
// via the arena) walked by a persistent cursor each iteration, optionally
// followed by 0/1 ('B') and 9-bit ('S') tail links at the last node. Each
// node's word 0 points to the next node of the cycle; words 8 and 16 hold
// the stable 0 and 7 used by the tail links. All link loads return
// loop-invariant values, so:
//
//	GVP breaks every link;
//	TVP additionally leaves only the W links (it breaks B and S tails);
//	MVP breaks only the B tails.
type carriedPath struct {
	nodes []uint64
}

// setupCarriedPath builds the node cycle. conflicted[i] selects whether W
// node i is an arena slot (L2 latency) or a hot private node (L1
// latency); the arena must have enough spare slots.
func setupCarriedPath(b *prog.Builder, cur isa.Reg, conflicted []bool, a *arena) carriedPath {
	p := carriedPath{}
	spare := 0
	for _, c := range conflicted {
		var node uint64
		if c {
			if spare >= len(a.spare) {
				panic("workload: arena out of spare conflict slots")
			}
			node = a.spare[spare]
			spare++
		} else {
			node = b.Alloc(64, 64)
		}
		p.nodes = append(p.nodes, node)
	}
	for i, node := range p.nodes {
		b.SetWord(node, p.nodes[(i+1)%len(p.nodes)])
		b.SetWord(node+8, 0)
		b.SetWord(node+16, 7)
	}
	b.MovAddr(cur, p.nodes[0])
	return p
}

// emitCarriedPath emits one full cycle of W links (len(path.nodes) loads)
// followed by the tail pattern at the final node: 'B' emits a 0-value
// load plus an add (SpSR-reducible to a move when the 0 is predicted);
// 'S' emits a 7-value load plus a bic.
func emitCarriedPath(b *prog.Builder, p carriedPath, cur isa.Reg, tail string) {
	for range p.nodes {
		b.Ldr(cur, cur, 0, 8)
	}
	for _, ch := range tail {
		switch ch {
		case 'B':
			b.Ldr(isa.X13, cur, 8, 8)
			b.Add(cur, cur, isa.X13)
		case 'S':
			b.Ldr(isa.X13, cur, 16, 8)
			b.Bic(cur, cur, isa.X13)
		default:
			panic("workload: bad tail pattern " + string(ch))
		}
	}
}

// boolProducers emits n boolean-producing sequences (cmp+cset against a
// stable guard), the canonical source of the 0x0/0x1 values MVP targets;
// the booleans feed ands/csel consumers so SpSR can reduce them when the
// booleans are predicted (§4).
func boolProducers(b *prog.Builder, n int, acc isa.Reg) {
	b.Ldr(isa.X2, rCfg, 0, 8) // stable guard
	// The boolean work threads a per-iteration side accumulator seeded
	// from the varying loop counter; only its final value folds into the
	// benchmark's carried accumulator. Predicting the stable booleans
	// therefore shortens a side chain (realistic small gains) rather
	// than the loop-carried critical path.
	b.Mov(isa.X11, rCnt)
	for i := 0; i < n; i++ {
		b.CmpI(isa.X2, int64(i+1))
		b.Cset(isa.X3, isa.EQ) // stable 0 (guard never equals small i)
		b.Add(isa.X11, isa.X11, isa.X3)
		b.Ands(isa.X4, isa.X3, isa.X11) // SpSR: x3 predicted 0 → nop+NZCV
		b.Csel(isa.X5, isa.X3, isa.X4, isa.NE)
		b.Add(isa.X11, isa.X11, isa.X5)
	}
	b.Add(acc, acc, isa.X11)
}

// streamState carries a streaming kernel's region bounds.
type streamState struct {
	baseA, baseB uint64
	lenBytes     uint64
	fp           bool
}

// setupStream allocates two streaming regions and initializes cursors.
func setupStream(b *prog.Builder, lenBytes uint64, fp bool) streamState {
	st := streamState{lenBytes: lenBytes, fp: fp}
	st.baseA = b.Alloc(lenBytes, 64)
	st.baseB = b.Alloc(lenBytes, 64)
	b.MovAddr(rArrA, st.baseA)
	b.MovAddr(rArrB, st.baseB)
	return st
}

// stream emits a unit-stride streaming pass: post-index loads from A and
// post-index stores to B (two µops each: Fig. 2's expansion source), with
// predictable wrap-around resets at the region ends.
func stream(b *prog.Builder, st streamState, unroll int) {
	for i := 0; i < unroll; i++ {
		if st.fp {
			b.FldrPost(isa.Reg(0), rArrA, 8)
			b.Fadd(8, 8, isa.Reg(0)) // d8 += d0
			b.FstrPost(isa.Reg(0), rArrB, 8)
		} else {
			b.LdrPost(isa.X0, rArrA, 8, 8)
			b.AddI(isa.X0, isa.X0, 3)
			b.StrPost(isa.X0, rArrB, 8, 8)
		}
	}
	wrapCursor(b, rArrA, st.baseA, st.lenBytes)
	wrapCursor(b, rArrB, st.baseB, st.lenBytes)
}

// wrapCursor resets cur to base once it passes base+len (a rarely-taken,
// predictable branch).
func wrapCursor(b *prog.Builder, cur isa.Reg, base, lenBytes uint64) {
	skip := b.NewLabel()
	b.MovImm(isa.X14, base+lenBytes)
	b.Cmp(cur, isa.X14)
	b.BCond(isa.CC, skip) // cur < end: keep going
	b.MovImm(cur, base)
	b.Bind(skip)
}

// ptrChase emits count steps of a shuffled-ring pointer chase: every load
// depends on the previous one and the pointer values differ per step, so
// no value predictor captures them and prefetchers are defeated — the
// mcf/omnetpp memory behavior.
func ptrChase(b *prog.Builder, count int, acc isa.Reg) {
	for i := 0; i < count; i++ {
		b.Ldr(rList, rList, 0, 8)
	}
	b.Add(acc, acc, rList)
}

// setupRing allocates a ring of nodes (nodeBytes apart, pointer in word 0)
// visited in a deterministically shuffled order, sized to the working set,
// and points rList at the first node.
func setupRing(b *prog.Builder, nodes int, nodeBytes uint64, rng *xrand.Rand) {
	base := b.Alloc(uint64(nodes)*nodeBytes, 64)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < nodes; i++ {
		from := base + uint64(perm[i])*nodeBytes
		to := base + uint64(perm[(i+1)%nodes])*nodeBytes
		b.SetWord(from, to)
	}
	b.MovAddr(rList, base+uint64(perm[0])*nodeBytes)
}

// branchy emits n data-dependent conditional branches whose directions
// come from the register LCG: TAGE cannot learn them, giving the
// controlled misprediction rate of game-tree benchmarks.
func branchy(b *prog.Builder, n int, acc isa.Reg) {
	lcgStep(b, isa.X6)
	for i := 0; i < n; i++ {
		skip := b.NewLabel()
		b.Tbz(isa.X6, int64(i+1), skip)
		b.AddI(acc, acc, int64(i))
		b.Bind(skip)
		b.EorI(acc, acc, 1)
	}
}

// predictableBranches emits n conditional branches with loop-modulo
// patterns TAGE learns quickly (typical of well-structured code).
func predictableBranches(b *prog.Builder, n int, acc isa.Reg) {
	for i := 0; i < n; i++ {
		skip := b.NewLabel()
		b.AndI(isa.X7, rCnt, int64(1<<uint(i+1))-1)
		b.Cbnz(isa.X7, skip)
		b.AddI(acc, acc, 1)
		b.Bind(skip)
	}
}

// setupHistogram allocates a 2^sizeLog2-entry table of 8-byte counters.
func setupHistogram(b *prog.Builder, sizeLog2 uint) {
	base := b.Alloc(8<<sizeLog2, 64)
	b.MovAddr(rHist, base)
}

// histogram emits load-modify-store on pseudo-random slots of the table,
// creating store-to-load traffic and memory-order-violation training.
func histogram(b *prog.Builder, sizeLog2 uint, times int) {
	for i := 0; i < times; i++ {
		lcgStep(b, isa.X8)
		b.AndI(isa.X8, isa.X8, int64(1<<sizeLog2)-1)
		b.LdrR(isa.X9, rHist, isa.X8, 3, 8)
		b.AddI(isa.X9, isa.X9, 1)
		b.StrR(isa.X9, rHist, isa.X8, 3, 8)
	}
}

// setupSlot allocates the spill-slot block for silentStoreReload and
// stores a pointer to an indirection block in slot 0.
func setupSlot(b *prog.Builder) {
	ind := b.Alloc(64, 64)
	b.SetWord(ind+8, 0x1234)
	slot := b.AllocWords(8, ind)
	b.MovAddr(rSlot, slot)
}

// silentStoreReload emits the ValueStore::contains() pattern the paper
// dissects for xalancbmk (§6.1): a silent store of a stable pointer to a
// stack slot immediately reloaded through the same address, followed by a
// dependent load. Memory renaming would catch the def-store-load-use
// chain; GVP value-predicts the reload instead.
func silentStoreReload(b *prog.Builder, acc isa.Reg) {
	b.Ldr(isa.X10, rSlot, 0, 8) // stable pointer
	b.Str(isa.X10, rSlot, 0, 8) // silent store
	b.Ldr(isa.X11, rSlot, 0, 8) // reload (store-forwarded, stable)
	b.Ldr(isa.X12, isa.X11, 8, 8)
	b.Add(acc, acc, isa.X12)
}

// buildLeafFns emits n small leaf functions ahead of the main loop and
// returns their labels (RAS exercise).
func buildLeafFns(b *prog.Builder, n int) []prog.Label {
	over := b.NewLabel()
	b.B(over)
	fns := make([]prog.Label, n)
	for i := 0; i < n; i++ {
		fns[i] = b.Here()
		b.AddI(isa.X0, isa.X0, int64(i+1))
		b.EorI(isa.X1, isa.X0, int64(i))
		b.LslI(isa.X1, isa.X1, 1)
		b.Add(isa.X0, isa.X0, isa.X1)
		b.Ret()
	}
	b.Bind(over)
	return fns
}

// callTree emits a call to one of the pre-built leaf functions.
func callTree(b *prog.Builder, fns []prog.Label, which int) {
	b.Bl(fns[which%len(fns)])
}

// setupTable allocates an nCases jump table and points rTable at it.
func setupTable(b *prog.Builder, nCases int) uint64 {
	addr := b.Alloc(uint64(nCases)*8, 8)
	b.MovAddr(rTable, addr)
	return addr
}

// indirectDispatch emits a jump-table dispatch: an index (a predictable
// cycling pattern, or LCG-random) selects a target loaded from the table,
// reached with BR; each case block branches to a common join.
func indirectDispatch(b *prog.Builder, tableAddr uint64, nCases int, random bool) {
	join := b.NewLabel()
	if random {
		lcgStep(b, isa.X14)
	} else {
		b.Mov(isa.X14, rCnt)
	}
	b.AndI(isa.X14, isa.X14, int64(nCases-1))
	b.LdrR(isa.X15, rTable, isa.X14, 3, 8)
	b.Br(isa.X15)
	for i := 0; i < nCases; i++ {
		c := b.Here()
		b.AddI(isa.X0, isa.X0, int64(i*3+1))
		b.B(join)
		b.SetWordLabel(tableAddr+uint64(i)*8, c)
	}
	b.Bind(join)
}

// fpChain emits a serial FMADD dependence chain into accumulator d8
// (latency-bound FP, cactuBSSN/nab style).
func fpChain(b *prog.Builder, length int) {
	for i := 0; i < length; i++ {
		b.Fmadd(8, 8, 9, 10) // d8 = d8*d9 + d10 — serial
	}
}

// fpWide emits independent FP work across d0..d7 (ILP-rich FP,
// imagick/wrf style).
func fpWide(b *prog.Builder, n int) {
	for i := 0; i < n; i++ {
		r := isa.Reg(i & 7)
		b.Fmadd(r, r, 9, 10)
	}
}

// setupMatrix allocates a rows×2^colsLog2 matrix of 8-byte elements.
func setupMatrix(b *prog.Builder, rows int, colsLog2 uint) {
	base := b.Alloc(uint64(rows)<<(colsLog2+3), 64)
	b.MovAddr(rMat, base)
}

// matrixWalk emits a column-strided pass over the matrix (row stride
// 8<<colsLog2 bytes), the AMPM-friendly L2 pattern.
func matrixWalk(b *prog.Builder, rows int, colsLog2 uint, unroll int) {
	b.AndI(isa.X5, rCnt, int64(1<<colsLog2)-1)
	b.LslI(isa.X5, isa.X5, 3)
	b.Add(isa.X5, isa.X5, rMat)
	stride := int64(8 << colsLog2)
	for i := 0; i < unroll && i < rows; i++ {
		b.Ldr(isa.X6, isa.X5, stride*int64(i), 8)
		b.Add(isa.X0, isa.X0, isa.X6)
	}
}

// movzMix emits small-immediate moves (9-bit idiom candidates, §3.2.2)
// and occasional wide constants, then consumes them.
func movzMix(b *prog.Builder, n int, acc isa.Reg) {
	for i := 0; i < n; i++ {
		b.Movz(isa.X1, uint16(i*13+2)&0xff, 0) // 9-bit idiom candidate
		b.Add(acc, acc, isa.X1)
		if i&3 == 0 {
			b.Movz(isa.X2, uint16(0x1000+i), 0) // wide: not inlinable
			b.Eor(acc, acc, isa.X2)
		}
	}
}

// regMoves emits the register shuffling compiled code is full of: move
// idioms (orr xd, xzr, xm — eliminable), occasional 32-bit moves of
// 64-bit definitions (blocked by the width rule, the paper's ~10% "Non
// ME move" fraction), and zero/one idioms. These feed the baseline DSR
// statistics of Fig. 4.
func regMoves(b *prog.Builder, n int, acc isa.Reg) {
	for i := 0; i < n; i++ {
		b.Mov(isa.X1, acc) // move idiom: eliminated
		b.Mov(isa.X2, isa.X1)
		b.Mov(isa.X3, rCnt)
		b.Mov(isa.X4, isa.X3)
		b.Zero(isa.X5) // zero idiom
		b.Add(isa.X6, isa.X2, isa.X5)
		if i&1 == 0 {
			b.One(isa.X7) // one idiom
			b.Add(acc, acc, isa.X7)
		}
		// Roughly half the call sites (selected by static code position,
		// so builds stay deterministic) include a 32-bit move of a
		// 64-bit definition — blocked by the width rule, giving the
		// suite-wide ~10% "Non ME move" fraction of Fig. 4.
		if b.Len()&1 == 0 {
			b.MovW(isa.X8, isa.X4)
			b.Add(acc, acc, isa.X8)
		}
		b.Add(acc, acc, isa.X6)
	}
}

// stackSpill emits n callee-save-style spill/reload pairs through the
// stack pointer using pre/post-index addressing — the paper's dominant
// µop expansion source (Fig. 2) — and exercises store-to-load forwarding.
func stackSpill(b *prog.Builder, n int) {
	for i := 0; i < n; i++ {
		b.StrPre(isa.X9, isa.X29, -16, 8)
		b.LdrPost(isa.X9, isa.X29, 16, 8)
	}
}

// aluWide emits n independent single-cycle ALU operations across disjoint
// scratch registers (ILP filler that soaks issue bandwidth without
// extending any dependence chain).
func aluWide(b *prog.Builder, n int) {
	for i := 0; i < n; i++ {
		r := isa.Reg(i%8) + isa.X2
		b.AddI(r, r, int64(i+1))
	}
}

// divWork emits an occasional guarded integer division.
func divWork(b *prog.Builder, acc isa.Reg) {
	skip := b.NewLabel()
	b.AndI(isa.X3, rCnt, 15)
	b.Cbnz(isa.X3, skip)
	b.AddI(isa.X4, acc, 97)
	b.OrrI(isa.X5, rCnt, 1)
	b.Sdiv(isa.X4, isa.X4, isa.X5)
	b.Add(acc, acc, isa.X4)
	b.Bind(skip)
}

// stableLoads emits loads of loop-invariant config values and consumes
// them as address offsets of dependent loads into a scratch array, so a
// correct prediction of the stable value breaks the address dependence.
// slots selects which config slots to read; arr is a 4KB scratch region.
func stableLoads(b *prog.Builder, slots []int, arrBase uint64, acc isa.Reg) {
	b.MovImm(isa.X9, arrBase)
	for _, s := range slots {
		b.Ldr(isa.X7, rCfg, int64(s*8), 8)   // stable value
		b.AndI(isa.X8, isa.X7, 511)          // bound the offset
		b.LdrR(isa.X8, isa.X9, isa.X8, 3, 8) // dependent load
		b.Add(acc, acc, isa.X8)
	}
}
