package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestStatsConservationInvariants runs every workload in the suite under
// the full paper machine (TVP + SpSR) with the shadow-emulator retire
// checker armed, and asserts the counter conservation laws that hold for
// any correct run: nothing is retired that was not fetched, every µop
// accounts for an architectural instruction, every squash is attributed
// to a flush cause, and no cache level misses more than it is accessed.
func TestStatsConservationInvariants(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := config.Default().WithVP(config.TVP).WithSpSR(true)
			cfg.CrossCheck = true
			res := New(cfg, spec.Build()).Run(0, 30000)
			st := &res.Stats

			if st.ArchInsts != res.Committed {
				t.Errorf("ArchInsts %d != Committed %d", st.ArchInsts, res.Committed)
			}
			if st.FetchedInsts < st.ArchInsts {
				t.Errorf("FetchedInsts %d < ArchInsts %d: retired something never fetched", st.FetchedInsts, st.ArchInsts)
			}
			if st.UOps < st.ArchInsts {
				t.Errorf("UOps %d < ArchInsts %d: an instruction retired without a µop", st.UOps, st.ArchInsts)
			}
			if st.IQIssued > st.IQAdded {
				t.Errorf("IQIssued %d > IQAdded %d: issued a µop never inserted", st.IQIssued, st.IQAdded)
			}
			// VPIncorrectUsed is an execute-time event counter (the flushed
			// instruction later retires as correct-used or train-only), so
			// only the two commit-time outcomes bound against eligibility.
			if used := st.VPCorrectUsed + st.VPTrainOnly; used > st.VPEligible {
				t.Errorf("VP commit outcomes %d > VPEligible %d", used, st.VPEligible)
			}
			if st.VPFlushes > st.VPIncorrectUsed {
				t.Errorf("VPFlushes %d > VPIncorrectUsed %d: flushed without a misprediction", st.VPFlushes, st.VPIncorrectUsed)
			}
			if st.BranchMispredicts > st.BranchLookups {
				t.Errorf("BranchMispredicts %d > BranchLookups %d", st.BranchMispredicts, st.BranchLookups)
			}
			for _, c := range []struct {
				level            string
				accesses, misses uint64
			}{
				{"L1D", st.L1DAccesses, st.L1DMisses},
				{"L2", st.L2Accesses, st.L2Misses},
				{"L3", st.L3Accesses, st.L3Misses},
			} {
				if c.misses > c.accesses {
					t.Errorf("%s: misses %d > accesses %d", c.level, c.misses, c.accesses)
				}
			}
			if st.SquashedUOps > 0 && st.BranchFlushes+st.VPFlushes+st.MemOrderFlushes == 0 {
				t.Errorf("%d µops squashed but every flush counter is zero", st.SquashedUOps)
			}
		})
	}
}
