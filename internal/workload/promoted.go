package workload

import (
	"embed"
	"fmt"

	"repro/internal/isa/tvpb"
	"repro/internal/prog"
)

// Promoted fuzzgen families. Each 9xx suite member pins one generator
// seed whose block mix concentrates a microarchitectural theme the
// hand-written 6xx kernels exercise only lightly, giving the sweeps a
// constrained-random counterpoint with full verifier/oracle coverage.
//
// The members build from the TVPB containers committed under
// testdata/corpus — the binary-ingestion path eating its own cooking —
// rather than calling the generator here, which would pull the fuzz
// harness (and through it the pipeline) into every workload build.
// TestPromotedCorpusBitExact pins each container bit-for-bit to
// fuzzgen.GenerateIters(seed, promotedIters) and re-admits it through
// the static verifier, so the corpus cannot drift from the generator.
//
// promotedIters replaces the generator's 4..12 outer-loop trip count so
// a timing run (warmup + measurement, a few hundred thousand
// instructions) never runs off the end of the program.
const promotedIters = 1 << 40

//go:embed testdata/corpus/*.tvpb
var promotedCorpus embed.FS

type promotedSpec struct {
	name   string
	domain string
	seed   uint64
}

// promotedSpecs returns the promoted members in registration order.
// Seeds were chosen by profiling the generator's op mix over seeds
// 1..50 and picking the strongest representative of each theme.
func promotedSpecs() []promotedSpec {
	return []promotedSpec{
		// Densest indirect-control seed: six jump tables plus sixteen
		// arena accesses per outer iteration (computed gotos through
		// X16, the shape the verifier's value-set domain resolves).
		{name: "901_fuzz_dispatch_s", domain: "int", seed: 14},
		// FP-dominated seed: twenty-six FP ops per iteration with
		// compare/select consumers feeding integer flags.
		{name: "902_fuzz_fp_s", domain: "fp", seed: 9},
		// Call-heavy integer seed: three BL sites into shared leaves
		// (the case that exercises the verifier's call-string contexts)
		// plus two jump tables, no FP.
		{name: "903_fuzz_calls_s", domain: "int", seed: 40},
	}
}

// PaperMember reports whether name is one of the 28 paper suite points,
// as opposed to a promoted fuzzgen member. The report keeps promoted
// members as per-workload rows but excludes them from the paper-figure
// aggregates, so the headline means stay comparable to the paper's.
// Names outside the registry count as paper members: a custom program
// is the caller's own experiment, not a promoted synthetic.
func PaperMember(name string) bool {
	for _, pm := range promotedSpecs() {
		if pm.name == name {
			return false
		}
	}
	return true
}

func registerPromoted() {
	for _, pm := range promotedSpecs() {
		pm := pm
		register(pm.name, pm.domain, func() *prog.Program {
			data, err := promotedCorpus.ReadFile("testdata/corpus/" + pm.name + ".tvpb")
			if err != nil {
				panic(fmt.Sprintf("workload: promoted corpus missing for %s: %v", pm.name, err))
			}
			p, err := tvpb.DecodeProgram(data)
			if err != nil {
				panic(fmt.Sprintf("workload: promoted corpus for %s corrupt: %v", pm.name, err))
			}
			p.Name = pm.name
			return p
		})
	}
}
