package obs

import (
	"repro/internal/stats"
)

// Sample is one interval of a run's counter time series. Delta holds the
// raw counter differences over [StartInst, EndInst); the float fields are
// the derived per-interval metrics the paper's figures are built from,
// precomputed so a record can be plotted without re-deriving them.
type Sample struct {
	// StartInst/EndInst bound the interval in run-absolute committed
	// architectural instructions (warmup included in the coordinate, so
	// interval boundaries line up across configurations). Because commit
	// retires up to CommitWidth instructions per cycle, EndInst can
	// overshoot the exact interval multiple by a few instructions.
	StartInst uint64 `json:"start_inst"`
	EndInst   uint64 `json:"end_inst"`
	// StartCycle/EndCycle bound the interval in simulated cycles.
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	// Partial marks a tail interval shorter than the sampling period.
	Partial bool `json:"partial,omitempty"`

	IPC        float64 `json:"ipc"`
	BranchMPKI float64 `json:"branch_mpki"`
	L1DMPKI    float64 `json:"l1d_mpki"`
	L2MPKI     float64 `json:"l2_mpki"`
	VPCoverage float64 `json:"vp_coverage"`
	VPAccuracy float64 `json:"vp_accuracy"`
	VPFlushPKI float64 `json:"vp_flush_pki"`
	// ElimPct is the percent of committed instructions removed at rename
	// by the baseline DSR categories plus the 9-bit idiom; SpSRPct is the
	// SpSR share on its own.
	ElimPct float64 `json:"elim_pct"`
	SpSRPct float64 `json:"spsr_pct"`

	// Delta holds every counter accumulated in this interval.
	Delta stats.Sim `json:"delta"`
	// CPIDelta holds the commit slots attributed per bucket in this
	// interval (schema v2; zero when the run carried no CPI accounting).
	// The per-run interval CPIDeltas sum to the record's CPI block.
	CPIDelta stats.CPIStack `json:"cpi_delta"`
}

// Sampler builds the interval time series from the snapshot stream the
// pipeline's Probe seam delivers: a baseline snapshot at measurement
// start, one snapshot per interval boundary, and a final snapshot at run
// end (which becomes a Partial tail sample unless it lands exactly on a
// boundary). It is not safe for concurrent use; each run owns one.
type Sampler struct {
	// Every is the sampling period in committed instructions.
	Every uint64

	primed    bool
	last      stats.Sim
	lastInst  uint64
	lastCycle uint64
	samples   []Sample

	// CPI staging: the pipeline delivers the CPI snapshot (ObserveCPI)
	// immediately before each counter snapshot (Observe), so pendingCPI
	// holds the stack aligned with the Observe about to close an
	// interval; lastCPI is the previous boundary's stack. Both stay zero
	// on runs without CPI accounting.
	pendingCPI stats.CPIStack
	lastCPI    stats.CPIStack
}

// NewSampler returns a sampler with the given period (0 or negative
// values fall back to DefaultInterval).
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		every = DefaultInterval
	}
	return &Sampler{Every: every}
}

// Observe consumes one snapshot of the live counters. The first call
// primes the baseline (measurement start); each later call closes the
// interval since the previous snapshot. Zero-length observations (two
// snapshots at the same committed count, e.g. a tail snapshot landing on
// an interval boundary) are dropped.
func (s *Sampler) Observe(committed, cycle uint64, st *stats.Sim) {
	if !s.primed {
		s.primed = true
		s.last = *st
		s.lastInst = committed
		s.lastCycle = cycle
		s.lastCPI = s.pendingCPI
		return
	}
	if committed == s.lastInst {
		return
	}
	delta := stats.Sub(st, &s.last)
	sm := makeSample(s.lastInst, committed, s.lastCycle, cycle, delta, s.Every)
	sm.CPIDelta = stats.SubCPI(&s.pendingCPI, &s.lastCPI)
	s.samples = append(s.samples, sm)
	s.last = *st
	s.lastInst = committed
	s.lastCycle = cycle
	s.lastCPI = s.pendingCPI
}

// ObserveCPI stages the CPI-stack snapshot for the Observe call that
// immediately follows it (the pipeline's CPISample→Sample ordering).
func (s *Sampler) ObserveCPI(cs *stats.CPIStack) { s.pendingCPI = *cs }

// Samples returns the accumulated series (shared slice; callers must not
// append).
func (s *Sampler) Samples() []Sample { return s.samples }

// makeSample derives the per-interval metrics from a counter delta.
func makeSample(startInst, endInst, startCycle, endCycle uint64, delta stats.Sim, every uint64) Sample {
	sm := Sample{
		StartInst:  startInst,
		EndInst:    endInst,
		StartCycle: startCycle,
		EndCycle:   endCycle,
		Partial:    endInst-startInst < every,
		IPC:        delta.IPC(),
		BranchMPKI: delta.BranchMPKI(),
		L1DMPKI:    delta.L1DMPKI(),
		VPCoverage: delta.VPCoverage(),
		VPAccuracy: delta.VPAccuracy(),
		ElimPct:    100 * delta.ElimFraction(delta.ZeroIdiomElim+delta.OneIdiomElim+delta.MoveElim+delta.NineBitElim),
		SpSRPct:    100 * delta.ElimFraction(delta.SpSRElim),
		Delta:      delta,
	}
	if delta.ArchInsts > 0 {
		sm.L2MPKI = 1000 * float64(delta.L2Misses) / float64(delta.ArchInsts)
		sm.VPFlushPKI = 1000 * float64(delta.VPFlushes) / float64(delta.ArchInsts)
	}
	return sm
}
