// Process-level tests for tvpd: a real binary, a real TCP listener,
// real signals. TestServeSmoke is the `make serve-smoke` gate;
// TestStoreSharedAcrossProcesses is the two-process persistence
// acceptance test (a second daemon on the same -store-dir serves a
// previously computed point from disk with zero simulation work and
// byte-identical RunRecord bytes).
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

var tvpdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "tvpd-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	tvpdBin = filepath.Join(dir, "tvpd")
	if out, err := exec.Command("go", "build", "-o", tvpdBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building tvpd: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// daemon is one running tvpd process.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	done chan error

	mu     sync.Mutex
	stderr strings.Builder
}

func (d *daemon) logStderr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// startDaemon launches tvpd on a free port and waits for the readiness
// line on stderr.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{done: make(chan error, 1)}
	d.cmd = exec.Command(tvpdBin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			<-d.done
		}
	})

	sc := bufio.NewScanner(pipe)
	for sc.Scan() {
		line := sc.Text()
		d.mu.Lock()
		d.stderr.WriteString(line + "\n")
		d.mu.Unlock()
		if rest, ok := strings.CutPrefix(line, "tvpd: listening on "); ok {
			d.addr = rest
			break
		}
	}
	go func() {
		for sc.Scan() {
			d.mu.Lock()
			d.stderr.WriteString(sc.Text() + "\n")
			d.mu.Unlock()
		}
		d.done <- d.cmd.Wait()
	}()
	if d.addr == "" {
		t.Fatalf("no readiness line; stderr:\n%s", d.logStderr())
	}
	return d
}

// get polls url until the daemon answers, with a bounded retry loop —
// the smoke test's liveness handshake.
func (d *daemon) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	var lastErr error
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + d.addr + path)
		if err == nil {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return resp, body
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("GET %s never answered: %v", path, lastErr)
	return nil, nil
}

func (d *daemon) post(t *testing.T, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// terminate sends SIGTERM and asserts a graceful, zero-exit drain.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("tvpd exit after SIGTERM: %v\nstderr:\n%s", err, d.logStderr())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("tvpd did not drain within 30s of SIGTERM\nstderr:\n%s", d.logStderr())
	}
	if log := d.logStderr(); !strings.Contains(log, "tvpd: drained") {
		t.Fatalf("no drain marker in stderr:\n%s", log)
	}
}

// figPoint is a small Fig-3-style point: first suite workload, TVP+SpSR.
func figPoint(t *testing.T) string {
	t.Helper()
	names := workload.Names()
	if len(names) == 0 {
		t.Fatal("empty workload suite")
	}
	return fmt.Sprintf(`{"workload":%q,"vp":"tvp","spsr":true,"warmup":1000,"insts":20000}`, names[0])
}

func TestServeSmoke(t *testing.T) {
	d := startDaemon(t, "-store-dir", t.TempDir(), "-j", "2", "-queue", "8")

	// Status answers and reports a healthy, empty daemon.
	resp, body := d.get(t, "/v1/status")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"healthy":true`)) {
		t.Fatalf("status = %d %s", resp.StatusCode, body)
	}

	// One run computes, the repeat is served from memory.
	resp, first := d.post(t, "/v1/run", figPoint(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, first)
	}
	if src := resp.Header.Get("X-Tvpd-Source"); src != "computed" {
		t.Fatalf("first run source = %q", src)
	}
	if _, err := obs.DecodeRunRecord(first); err != nil {
		t.Fatal(err)
	}
	resp, second := d.post(t, "/v1/run", figPoint(t))
	if src := resp.Header.Get("X-Tvpd-Source"); src != "memory" {
		t.Fatalf("second run source = %q", src)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("memory-tier record differs from computed record")
	}

	// A sweep streams NDJSON.
	names := workload.Names()
	resp, body = d.post(t, "/v1/sweep",
		fmt.Sprintf(`{"workloads":[%q],"vp_modes":["off","tvp"],"warmup":1000,"insts":20000}`, names[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("sweep returned %d lines, want 2:\n%s", len(lines), body)
	}
	for _, ln := range lines {
		if _, err := obs.DecodeRunRecord(ln); err != nil {
			t.Fatal(err)
		}
	}

	// Error paths stay structured at the process boundary.
	resp, body = d.post(t, "/v1/run", `{"workload":"no-such-kernel","insts":1}`)
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte("tvp.serve.error/v1")) {
		t.Fatalf("unknown workload: %d %s", resp.StatusCode, body)
	}

	d.terminate(t)
}

func TestStoreSharedAcrossProcesses(t *testing.T) {
	dir := t.TempDir()

	// First daemon: compute one point, let the store absorb it.
	d1 := startDaemon(t, "-store-dir", dir)
	resp, first := d1.post(t, "/v1/run", figPoint(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first daemon run: %d %s", resp.StatusCode, first)
	}
	if src := resp.Header.Get("X-Tvpd-Source"); src != "computed" {
		t.Fatalf("first daemon source = %q", src)
	}
	_, status := d1.get(t, "/v1/status")
	if !bytes.Contains(status, []byte(`"simulated":1`)) || !bytes.Contains(status, []byte(`"puts":1`)) {
		t.Fatalf("first daemon status: %s", status)
	}
	d1.terminate(t)

	// Second daemon, same directory: the point must come off disk with
	// zero simulation work and byte-identical record bytes.
	d2 := startDaemon(t, "-store-dir", dir)
	resp, second := d2.post(t, "/v1/run", figPoint(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second daemon run: %d %s", resp.StatusCode, second)
	}
	if src := resp.Header.Get("X-Tvpd-Source"); src != "disk" {
		t.Fatalf("second daemon source = %q, want disk", src)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("record bytes differ across processes:\n%s\n%s", first, second)
	}
	_, status = d2.get(t, "/v1/status")
	for _, want := range []string{`"simulated":0`, `"hits":1`} {
		if !bytes.Contains(status, []byte(want)) {
			t.Fatalf("second daemon status missing %s: %s", want, status)
		}
	}
	d2.terminate(t)
}
