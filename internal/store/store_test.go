package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simcache"
	"repro/internal/stats"
)

func testKey(workload string) simcache.RunKey {
	return simcache.RunKey{Workload: workload, ConfigFP: "fp-" + workload, Warmup: 1000, Insts: 20000}
}

func testStats(seed uint64) stats.Sim {
	return stats.Sim{Cycles: 100 + seed, ArchInsts: 200 + seed, UOps: 300 + seed, BranchLookups: 17 * seed}
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, k simcache.RunKey, st stats.Sim) {
	t.Helper()
	if err := s.Put(k, st); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	k := testKey("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("Get on empty store hit")
	}
	mustPut(t, s, k, testStats(1))
	got, ok := s.Get(k)
	if !ok || got != testStats(1) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	c := s.Counters()
	if c.Puts != 1 || c.Hits != 1 || c.Misses != 1 || c.Quarantined != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	mustPut(t, s1, testKey("a"), testStats(1))
	mustPut(t, s1, testKey("b"), testStats(2))

	s2 := open(t, dir)
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	if got, ok := s2.Get(testKey("a")); !ok || got != testStats(1) {
		t.Fatalf("reopened Get(a) = %+v, %v", got, ok)
	}
}

func TestCrossProcessSharing(t *testing.T) {
	// Two handles on one directory, as two daemon instances would hold:
	// a record written through one must be served by the other even
	// though it was absent when the second handle opened.
	dir := t.TempDir()
	s1 := open(t, dir)
	s2 := open(t, dir)
	mustPut(t, s1, testKey("a"), testStats(7))
	if got, ok := s2.Get(testKey("a")); !ok || got != testStats(7) {
		t.Fatalf("second handle Get = %+v, %v", got, ok)
	}
}

// corrupt rewrites the record file for k through fn.
func corrupt(t *testing.T, s *Store, k simcache.RunKey, fn func([]byte) []byte) {
	t.Helper()
	path := s.recordPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// assertQuarantined checks that corrupting key a is detected and
// contained: Get(a) misses and quarantines, key b is untouched, and a
// can be rewritten and served again.
func assertQuarantined(t *testing.T, s *Store, a, b simcache.RunKey) {
	t.Helper()
	if _, ok := s.Get(a); ok {
		t.Fatal("corrupted record served")
	}
	c := s.Counters()
	if c.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", c.Quarantined)
	}
	ents, err := os.ReadDir(filepath.Join(s.Dir(), quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	var quarantinedFiles int
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".reason") {
			quarantinedFiles++
		}
	}
	if quarantinedFiles != 1 {
		t.Fatalf("%d files in quarantine, want 1", quarantinedFiles)
	}
	// Other keys are unaffected.
	if got, ok := s.Get(b); !ok || got != testStats(2) {
		t.Fatalf("unrelated key damaged: %+v, %v", got, ok)
	}
	// The key recovers on rewrite.
	mustPut(t, s, a, testStats(1))
	if got, ok := s.Get(a); !ok || got != testStats(1) {
		t.Fatalf("rewritten key = %+v, %v", got, ok)
	}
}

func TestTruncatedRecordQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	a, b := testKey("a"), testKey("b")
	mustPut(t, s, a, testStats(1))
	mustPut(t, s, b, testStats(2))
	corrupt(t, s, a, func(d []byte) []byte { return d[:len(d)/2] })
	assertQuarantined(t, s, a, b)
}

func TestBitFlippedChecksumQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	a, b := testKey("a"), testKey("b")
	mustPut(t, s, a, testStats(1))
	mustPut(t, s, b, testStats(2))
	corrupt(t, s, a, func(d []byte) []byte {
		// Flip one digit inside the payload block: the JSON stays
		// well-formed, so only the checksum can catch it.
		i := bytes.Index(d, []byte(`"payload"`))
		if i < 0 {
			t.Fatal("no payload block")
		}
		for j := i; j < len(d); j++ {
			if d[j] >= '0' && d[j] <= '9' {
				d[j] = '0' + ('9' - d[j]) // never maps a digit to itself
				return d
			}
		}
		t.Fatal("no digit to flip")
		return d
	})
	assertQuarantined(t, s, a, b)
}

func TestWrongSchemaQuarantined(t *testing.T) {
	s := open(t, t.TempDir())
	a, b := testKey("a"), testKey("b")
	mustPut(t, s, a, testStats(1))
	mustPut(t, s, b, testStats(2))
	corrupt(t, s, a, func(d []byte) []byte {
		return bytes.Replace(d, []byte(Schema), []byte("tvp.store/v999"), 1)
	})
	assertQuarantined(t, s, a, b)
}

func TestStaleIndexEntryEvicted(t *testing.T) {
	s := open(t, t.TempDir())
	a := testKey("a")
	mustPut(t, s, a, testStats(1))
	// Another process garbage-collects the file out from under the index.
	if err := os.Remove(s.recordPath(a)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(a); ok {
		t.Fatal("served a removed record")
	}
	c := s.Counters()
	if c.StaleEvictions != 1 {
		t.Fatalf("stale evictions = %d, want 1", c.StaleEvictions)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after eviction", s.Len())
	}
	// Recomputing and re-putting restores service.
	mustPut(t, s, a, testStats(1))
	if _, ok := s.Get(a); !ok {
		t.Fatal("re-put key missing")
	}
}

func TestCrashedTempFileSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	a := testKey("a")
	mustPut(t, s1, a, testStats(1))
	// Simulate a writer that died between write and rename.
	partial := filepath.Join(dir, recordsDir, fileName(testKey("b"))+tmpMarker+"12345")
	if err := os.WriteFile(partial, []byte(`{"schema":"tvp.store/v1","key":{`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Fatal("partial temp file survived Open")
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (the good record)", s2.Len())
	}
	if got, ok := s2.Get(a); !ok || got != testStats(1) {
		t.Fatalf("good record lost: %+v, %v", got, ok)
	}
	if c := s2.Counters(); c.Quarantined != 0 {
		t.Fatalf("temp sweep must not count as quarantine: %+v", c)
	}
}

func TestCorruptRecordQuarantinedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	a, b := testKey("a"), testKey("b")
	mustPut(t, s1, a, testStats(1))
	mustPut(t, s1, b, testStats(2))
	corrupt(t, s1, a, func(d []byte) []byte { return d[:16] })

	// A restarted daemon must come up serving the surviving entries.
	s2 := open(t, dir)
	if c := s2.Counters(); c.Quarantined != 1 {
		t.Fatalf("open-time quarantine = %d, want 1", c.Quarantined)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want the 1 survivor", s2.Len())
	}
	if got, ok := s2.Get(b); !ok || got != testStats(2) {
		t.Fatalf("survivor = %+v, %v", got, ok)
	}
	if _, ok := s2.Get(a); ok {
		t.Fatal("corrupt record served after reopen")
	}
}

func TestRenamedRecordRejected(t *testing.T) {
	// A record copied under the wrong name (hash != embedded key) must
	// never be served for the name's key.
	s := open(t, t.TempDir())
	a, b := testKey("a"), testKey("b")
	mustPut(t, s, a, testStats(1))
	data, err := os.ReadFile(s.recordPath(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.recordPath(b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("record with mismatched embedded key served")
	}
	if c := s.Counters(); c.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", c.Quarantined)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			k := testKey(string(rune('a' + g%4)))
			want := testStats(uint64(g%4) + 1)
			for i := 0; i < 50; i++ {
				if err := s.Put(k, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); ok && got != want {
					t.Errorf("Get = %+v, want %+v", got, want)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
