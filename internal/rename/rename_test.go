package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestValueNameRoundTrip(t *testing.T) {
	f := func(raw int16) bool {
		// Map raw into ValueName's domain [-256, 255]. (A plain v%257
		// leaves 256 fixed, which made this test flake.)
		v := (int64(raw)+256)%512 + 512
		v = v%512 - 256
		n := ValueName(v)
		return n.IsValue() && !n.IsPhys() && n.Value() == v && n.Known()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueNameBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ValueName(256) must panic")
		}
	}()
	ValueName(256)
}

func TestHardwiredNames(t *testing.T) {
	if !HardZero.IsHardwired() || !HardOne.IsHardwired() {
		t.Fatal("hardwired flags")
	}
	if HardZero.Value() != 0 || HardOne.Value() != 1 {
		t.Fatal("hardwired values")
	}
	if !HardZero.IsPhys() || HardZero.IsValue() {
		t.Fatal("hardwired names are physical registers")
	}
	if Name(5).Known() {
		t.Fatal("ordinary physical names have unknown values")
	}
}

func TestInitialState(t *testing.T) {
	r := NewRenamer(64, 48)
	// X0..X30 map to fresh registers; XZR reads as known zero.
	op := r.SrcInt(isa.XZR)
	if !op.Known || op.Value != 0 {
		t.Error("XZR must read as known zero")
	}
	if op := r.SrcInt(isa.X5); op.Known {
		t.Error("fresh architectural registers hold unknown values")
	}
	// 64 total - 2 hardwired - 31 arch = 31 free.
	if got := r.FreeInt(); got != 64-2-31 {
		t.Errorf("free integer registers = %d", got)
	}
	if got := r.FreeFP(); got != 48-32 {
		t.Errorf("free FP registers = %d", got)
	}
}

func TestAllocReleaseBalance(t *testing.T) {
	r := NewRenamer(64, 48)
	free0 := r.FreeInt()
	var names []Name
	for i := 0; i < free0; i++ {
		names = append(names, r.AllocInt())
	}
	if r.FreeInt() != 0 {
		t.Fatal("free list should be empty")
	}
	for _, n := range names {
		r.Release(n)
	}
	if r.FreeInt() != free0 {
		t.Errorf("free count after release = %d, want %d", r.FreeInt(), free0)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	r := NewRenamer(64, 48)
	n := r.AllocInt()
	r.Release(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	r.Release(n)
}

func TestMoveEliminationRefCounting(t *testing.T) {
	r := NewRenamer(64, 48)
	free0 := r.FreeInt()

	// def x1 ← fresh p
	p := r.AllocInt()
	r.DefInt(isa.X1, p, true, false)
	// move-eliminate x2 ← x1: shares p.
	src := r.SrcInt(isa.X1)
	r.DefIntShared(isa.X2, src.Name, true, false)

	// Commit both; the old CRAT mappings of x1/x2 are released.
	r.CommitDefInt(isa.X1, p, true, false)
	r.CommitDefInt(isa.X2, p, true, false)
	if r.FreeInt() != free0-1+2 {
		t.Errorf("free = %d, want %d (two old regs freed, one allocated)", r.FreeInt(), free0+1)
	}

	// Overwrite x1: p still referenced by x2's CRAT entry → not freed.
	q := r.AllocInt()
	r.DefInt(isa.X1, q, true, false)
	r.CommitDefInt(isa.X1, q, true, false)
	freeAfterX1 := r.FreeInt()

	// Overwrite x2: now p is dead → freed.
	s := r.AllocInt()
	r.DefInt(isa.X2, s, true, false)
	r.CommitDefInt(isa.X2, s, true, false)
	if r.FreeInt() != freeAfterX1-1+1 {
		t.Errorf("shared register not freed exactly when last reference died")
	}
}

func TestValueNameMappingNeverFreed(t *testing.T) {
	r := NewRenamer(64, 48)
	free0 := r.FreeInt()
	// Value-predicted def: x3 ← v(42); commits; overwritten later.
	r.DefIntShared(isa.X3, ValueName(42), false, true)
	r.CommitDefInt(isa.X3, ValueName(42), false, true)
	// The old x3 mapping was a real register: freed. Free list +1.
	if r.FreeInt() != free0+1 {
		t.Errorf("free = %d, want %d", r.FreeInt(), free0+1)
	}
	p := r.AllocInt()
	r.DefInt(isa.X3, p, true, false)
	r.CommitDefInt(isa.X3, p, true, false)
	// Overwritten CRAT entry was a value name — "not put on the Free
	// List" (§3.2.1): free count unchanged by its release.
	if r.FreeInt() != free0 {
		t.Errorf("value-name release must be a no-op, free = %d want %d", r.FreeInt(), free0)
	}
}

func TestFlushRecovery(t *testing.T) {
	r := NewRenamer(64, 48)
	// Committed state: x1 → p.
	p := r.AllocInt()
	r.DefInt(isa.X1, p, true, false)
	r.CommitDefInt(isa.X1, p, true, false)

	// Speculative defs: x1 → q (survives), x2 → v(7) (squashed).
	q := r.AllocInt()
	r.DefInt(isa.X1, q, true, false)
	r.DefIntShared(isa.X2, ValueName(7), false, true)

	// Squash x2's def, restore, replay x1's surviving def.
	r.Release(ValueName(7)) // no-op by design
	r.RestoreFromCRAT()
	r.ReplayDefInt(isa.X1, q, true, false)

	if got := r.SrcInt(isa.X1); got.Name != q {
		t.Errorf("x1 = %v after recovery, want %v", got.Name, q)
	}
	if got := r.SrcInt(isa.X2); got.Name.IsValue() {
		t.Error("x2 should have reverted to its committed mapping")
	}
}

func TestNZCVTracking(t *testing.T) {
	r := NewRenamer(64, 48)
	if _, _, known := r.NZCV(); known {
		t.Fatal("fresh NZCV must be unknown")
	}
	r.SetNZCV(isa.FlagZ, true)
	f, spec, known := r.NZCV()
	if !known || !spec || f != isa.FlagZ {
		t.Fatal("SetNZCV not visible")
	}
	r.InvalidateNZCV()
	if _, _, known := r.NZCV(); known {
		t.Fatal("InvalidateNZCV did not clear")
	}
	r.SetNZCV(isa.FlagN, false)
	r.RestoreFromCRAT()
	if _, _, known := r.NZCV(); known {
		t.Fatal("flush recovery must invalidate the frontend NZCV")
	}
}

func TestWideTracking(t *testing.T) {
	r := NewRenamer(64, 48)
	p := r.AllocInt()
	r.DefInt(isa.X4, p, false, false) // 32-bit def
	if op := r.SrcInt(isa.X4); op.Wide {
		t.Error("32-bit def must not be wide")
	}
	q := r.AllocInt()
	r.DefInt(isa.X4, q, true, false)
	if op := r.SrcInt(isa.X4); !op.Wide {
		t.Error("64-bit def must be wide")
	}
}
