package verify

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// cmpTag remembers the most recent flag-setting SUBS so conditional
// branches can refine the compared register on each out-edge. Only
// X-form SUBS is tracked; any other flag write or a write to the
// compared register invalidates the tag.
type cmpTag struct {
	valid  bool
	w      bool
	eqOnly bool    // tag tracks the SUBS result vs zero; only EQ/NE refine
	inst   int     // index of the SUBS
	reg    isa.Reg // left-hand register (Rn), or Rd when eqOnly
	rhs    AbsVal  // right-hand operand at the time of the compare
}

// state is the abstract machine state at one program point: one AbsVal
// per integer register, def-before-use bitmaps for the integer and FP
// files, and the live compare tag.
type state struct {
	regs [isa.NumRegs]AbsVal
	def  uint32 // bit r: Xr written (or defined by convention) on every path
	fdef uint32 // bit r: Dr written on every path
	cmp  cmpTag
}

// entryState models the emulator reset: every register reads as zero,
// X29 is the stack top, and only XZR/X29 count as defined.
func entryState() *state {
	s := &state{}
	for i := range s.regs {
		s.regs[i] = exact(0)
	}
	s.regs[isa.X29] = exact(prog.StackTop)
	s.def = 1<<uint(isa.XZR) | 1<<uint(isa.X29)
	return s
}

func (s *state) clone() *state {
	c := *s
	return &c
}

func (s *state) get(r isa.Reg) AbsVal {
	return s.regs[r]
}

func (s *state) set(r isa.Reg, v AbsVal) {
	if r == isa.XZR {
		return // writes to XZR are discarded; it stays exactly zero
	}
	s.regs[r] = v
	s.def |= 1 << uint(r)
	if s.cmp.valid && s.cmp.reg == r {
		s.cmp.valid = false
	}
}

func (s *state) defined(r isa.Reg) bool  { return s.def&(1<<uint(r)) != 0 }
func (s *state) fdefined(r isa.Reg) bool { return s.fdef&(1<<uint(r)) != 0 }

// joinInto merges src into dst (dst ⊔= src), returning whether dst
// changed. Definedness intersects: a register counts as defined only if
// it is defined on every incoming path.
func joinInto(dst, src *state) bool {
	changed := false
	for i := range dst.regs {
		j := dst.regs[i].join(src.regs[i])
		if !j.eq(dst.regs[i]) {
			dst.regs[i] = j
			changed = true
		}
	}
	if nd := dst.def & src.def; nd != dst.def {
		dst.def = nd
		changed = true
	}
	if nf := dst.fdef & src.fdef; nf != dst.fdef {
		dst.fdef = nf
		changed = true
	}
	if dst.cmp.valid {
		if !src.cmp.valid || src.cmp.inst != dst.cmp.inst || src.cmp.reg != dst.cmp.reg ||
			src.cmp.w != dst.cmp.w || src.cmp.eqOnly != dst.cmp.eqOnly {
			dst.cmp.valid = false
			changed = true
		} else if j := dst.cmp.rhs.join(src.cmp.rhs); !j.eq(dst.cmp.rhs) {
			dst.cmp.rhs = j
			changed = true
		}
	}
	return changed
}

// widen accelerates convergence at frequently-revisited join points by
// pushing interval bounds out to the nearest program landmark (segment
// boundaries, the stack window, zero, 2^64-1). Exact sets are left
// alone: their size is capped by the join, so they converge on their
// own, and degrading them would destroy jump-table and return-address
// resolution. Landmarks include segEnd-1 so that an aligned pointer
// confined to a segment widens to a bound that still excludes the first
// out-of-segment slot.
func (s *state) widen(marks []uint64) {
	for i := range s.regs {
		a := &s.regs[i]
		if a.set != nil {
			continue
		}
		a.lo = landmarkDown(marks, a.lo)
		a.hi = landmarkUp(marks, a.hi)
	}
}

// landmarks builds the sorted widening targets for a program.
func landmarks(p *prog.Program) []uint64 {
	m := []uint64{0, 1, ^uint64(0), 1 << 32, prog.StackTop - stackWindow, prog.StackTop}
	m = append(m, prog.TextBase, prog.TextBase+4*uint64(len(p.Code)))
	for _, seg := range p.Data {
		end := seg.Base + uint64(len(seg.Bytes))
		m = append(m, seg.Base, end-1, end)
	}
	sortU64(m)
	out := m[:1]
	for _, v := range m[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func landmarkDown(marks []uint64, v uint64) uint64 {
	i, ok := searchU64(marks, v)
	if ok {
		return v
	}
	return marks[i-1] // marks[0] == 0 ≤ v always
}

func landmarkUp(marks []uint64, v uint64) uint64 {
	i, ok := searchU64(marks, v)
	if ok {
		return v
	}
	return marks[i] // marks ends with 2^64-1 ≥ v always
}
