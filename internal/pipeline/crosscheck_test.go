package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

// vpBugProgram loops a highly value-predictable load (a never-written
// constant) so the TVP predictor quickly saturates confidence and the
// injected fault lands on a used prediction.
func vpBugProgram() *prog.Program {
	b := prog.NewBuilder("vp-bug")
	slot := b.AllocWords(1, 42)
	b.MovAddr(isa.X20, slot)
	b.MovImm(isa.X19, 2000)
	top := b.Here()
	b.Ldr(isa.X1, isa.X20, 0, 8)
	b.AddI(isa.X2, isa.X1, 1)
	b.SubsI(isa.X19, isa.X19, 1)
	b.BCond(isa.NE, top)
	return b.Build()
}

// TestCrossCheckCatchesSeededVPBug is the harness's own acceptance test: a
// deliberately corrupted predicted value, slipped in past the confidence
// check with validation forced to pass (a broken comparator), must be
// flagged by the retire checker at the exact retiring instruction.
func TestCrossCheckCatchesSeededVPBug(t *testing.T) {
	cfg := config.Default().WithVP(config.TVP)
	cfg.CrossCheck = true
	cfg.VP.FPCInvProb = 1 // deterministic confidence ramp
	core := New(cfg, vpBugProgram())
	core.injectVPBug(1) // 42^1 = 43: still 9-bit representable

	var d *Divergence
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if d, ok = r.(*Divergence); !ok {
					panic(r)
				}
			}
		}()
		core.Run(0, 1<<20)
	}()

	if d == nil {
		t.Fatal("seeded VP corruption retired unnoticed: the retire checker is blind")
	}
	if d.Field != "vp-value" {
		t.Fatalf("divergence field = %q, want \"vp-value\" (report: %v)", d.Field, d)
	}
	seq, fired := core.bugSeq()
	if !fired {
		t.Fatal("injected bug never fired (no prediction was used)")
	}
	if d.Seq != seq {
		t.Fatalf("divergence attributed to seq %d, want the corrupted instruction seq %d", d.Seq, seq)
	}
	if d.Want != 42 || d.Got != 43 {
		t.Fatalf("divergence values (want=%#x got=%#x), expected oracle 42 vs corrupted 43", d.Want, d.Got)
	}
}

// TestCrossCheckCleanRuns proves the checker stays silent across every VP
// flavor on programs with loads, stores, branches and flag traffic — and
// that it verifies the full run (the shadow ends exactly at HALT).
func TestCrossCheckCleanRuns(t *testing.T) {
	for _, mode := range []config.VPMode{config.VPOff, config.MVP, config.TVP, config.GVP} {
		cfg := config.Default().WithVP(mode)
		cfg.CrossCheck = true
		cfg.VP.FPCInvProb = 1
		if mode != config.VPOff {
			cfg = cfg.WithSpSR(true)
		}
		res := New(cfg, phaseChangeProgram()).Run(0, 40000)
		if res.Committed == 0 {
			t.Fatalf("mode %v: nothing committed", mode)
		}

		res = New(cfg, loopProgram(500)).Run(0, 1<<20)
		if !res.Halted {
			t.Fatalf("mode %v: loop program did not halt", mode)
		}
	}
}

// TestCrossCheckOffByDefault: the checker must not exist unless asked for —
// its cost when disabled is a nil check, and its construction must not
// perturb the stream.
func TestCrossCheckOffByDefault(t *testing.T) {
	core := New(config.Default(), loopProgram(10))
	if core.xcheck != nil {
		t.Fatal("crossCheck allocated with CrossCheck=false")
	}
	cfg := config.Default()
	cfg.CrossCheck = true
	on := New(cfg, loopProgram(10)).Run(0, 1<<20)
	off := New(config.Default(), loopProgram(10)).Run(0, 1<<20)
	if on.Stats != off.Stats {
		t.Fatal("enabling CrossCheck changed simulation statistics: the checker influenced timing")
	}
}
