package report

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/simcache"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Point names one timing-simulation point for callers outside the figure
// harness — most importantly the tvpd daemon (internal/serve), whose
// two-tier result store is keyed by Point.Key. It is the exported twin
// of the private runSpec + Config run-length pair.
type Point struct {
	Workload string
	// Cfg is the machine configuration; it must be validated by the
	// caller (config.Machine.Validate).
	Cfg    *config.Machine
	Warmup uint64
	Insts  uint64
	// FastWarmup replaces the timed warmup with a functional fast-forward
	// from a shared per-workload checkpoint (see Config.FastWarmup).
	FastWarmup bool
}

// Key returns the canonical content-addressed cache/store key of the
// point. Two points with equal keys produce bit-identical stats.
func (p Point) Key() simcache.RunKey {
	return simcache.RunKey{
		Workload:   p.Workload,
		ConfigFP:   p.Cfg.Fingerprint(),
		Warmup:     p.Warmup,
		Insts:      p.Insts,
		FastWarmup: p.FastWarmup,
	}
}

// Simulate executes one timing run, uncached and unpooled, honoring ctx:
// cancellation and deadlines are polled from inside the cycle loop
// (pipeline.Core.SetStopCheck), so an abandoned request stops burning
// CPU within microseconds instead of completing a multi-second run. The
// returned error wraps ctx.Err() on early stop — which the simcache
// layer treats as transient and refuses to memoize.
func Simulate(ctx context.Context, p Point) (stats.Sim, error) {
	if err := ctx.Err(); err != nil {
		return stats.Sim{}, fmt.Errorf("report: simulate %s: %w", p.Workload, err)
	}
	var core *pipeline.Core
	warm := p.Warmup
	if p.FastWarmup {
		snap, err := workload.Checkpoint(p.Workload, p.Warmup)
		if err != nil {
			return stats.Sim{}, err
		}
		core = pipeline.NewFromEmulator(p.Cfg, snap.Restore())
		warm = 0
	} else {
		prg, err := workload.Program(p.Workload)
		if err != nil {
			return stats.Sim{}, err
		}
		core = pipeline.New(p.Cfg, prg)
	}
	if ctx.Done() != nil {
		core.SetStopCheck(func() bool {
			select {
			case <-ctx.Done():
				return true
			default:
				return false
			}
		})
	}
	res := core.Run(warm, p.Insts)
	if res.Stopped {
		return stats.Sim{}, fmt.Errorf("report: simulate %s: %w", p.Workload, ctx.Err())
	}
	return res.Stats, nil
}
