package obs

import (
	"testing"
)

func TestTopPCBoundedAndOrdered(t *testing.T) {
	tp := NewTopPC(4)
	counts := map[uint64]int{0x100: 5, 0x104: 3, 0x108: 8, 0x10c: 1}
	for pc, n := range counts {
		for i := 0; i < n; i++ {
			tp.Touch(pc, nil)
		}
	}
	if tp.Len() != 4 {
		t.Fatalf("len %d, want 4", tp.Len())
	}
	top := tp.Top(2)
	if len(top) != 2 || top[0].PC != 0x108 || top[1].PC != 0x100 {
		t.Fatalf("top-2 = %+v, want PCs 0x108, 0x100", top)
	}
	if top[0].Count != 8 || top[0].Hex != "0x108" {
		t.Errorf("entry %+v, want count 8, hex 0x108", top[0])
	}
}

func TestTopPCTieBreakDeterministic(t *testing.T) {
	tp := NewTopPC(8)
	for _, pc := range []uint64{0x30, 0x10, 0x20} {
		tp.Touch(pc, nil)
	}
	top := tp.Top(0)
	if top[0].PC != 0x10 || top[1].PC != 0x20 || top[2].PC != 0x30 {
		t.Errorf("equal counts not ordered by PC: %+v", top)
	}
}

func TestTopPCSpaceSavingEviction(t *testing.T) {
	tp := NewTopPC(2)
	for i := 0; i < 5; i++ {
		tp.Touch(0xa, nil)
	}
	tp.Touch(0xb, nil)
	tp.Touch(0xb, nil)
	// Table full; a new PC must evict the minimum (0xb, count 2) and
	// inherit its count + 1 — the space-saving overestimate bound.
	tp.Touch(0xc, nil)
	if tp.Len() != 2 {
		t.Fatalf("len %d, want 2", tp.Len())
	}
	top := tp.Top(0)
	if top[0].PC != 0xa || top[0].Count != 5 {
		t.Errorf("heavy hitter lost: %+v", top)
	}
	if top[1].PC != 0xc || top[1].Count != 3 {
		t.Errorf("evictee inheritance wrong: %+v (want PC 0xc count 3)", top[1])
	}
}
