package emu

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Snapshot is an immutable architectural-state checkpoint: registers,
// flags, control state, and the memory image at the moment it was taken.
// Memory pages are shared copy-on-write between the snapshot, the
// emulator it was taken from, and every emulator restored from it, so
// taking and restoring checkpoints costs O(mapped pages) pointer copies
// rather than O(footprint) byte copies.
//
// A Snapshot is safe for concurrent use: any number of goroutines may
// Restore from the same snapshot and run the resulting emulators in
// parallel. The canonical use is warmup checkpointing — run one
// functional warmup per workload, snapshot, and let the N timing
// configurations over that workload resume from the shared checkpoint
// instead of re-warming N times.
type Snapshot struct {
	prog   *prog.Program
	x      [isa.NumRegs]uint64
	d      [32]uint64
	flags  isa.Flags
	pcIdx  int
	seq    uint64
	halted bool
	pages  map[uint64]*[pageSize]byte
}

// Snapshot captures the emulator's architectural state. The live emulator
// remains usable; its subsequent writes copy pages privately and never
// mutate the checkpoint.
func (e *Emulator) Snapshot() *Snapshot {
	return &Snapshot{
		prog:   e.Prog,
		x:      e.X,
		d:      e.D,
		flags:  e.Flags,
		pcIdx:  e.pcIdx,
		seq:    e.seq,
		halted: e.halted,
		pages:  e.Mem.share(),
	}
}

// Restore returns a fresh emulator positioned exactly at the snapshot
// point: same registers, flags, PC, sequence numbering and memory
// contents. The new emulator shares memory pages copy-on-write with the
// snapshot.
func (s *Snapshot) Restore() *Emulator {
	return &Emulator{
		Prog:   s.prog,
		Mem:    memoryFromShared(s.pages),
		X:      s.x,
		D:      s.d,
		Flags:  s.flags,
		pcIdx:  s.pcIdx,
		seq:    s.seq,
		halted: s.halted,
	}
}

// Seq returns the dynamic sequence number of the next instruction the
// restored emulator will execute (i.e. the number of instructions executed
// before the snapshot was taken).
func (s *Snapshot) Seq() uint64 { return s.seq }

// Program returns the program the snapshot was taken from.
func (s *Snapshot) Program() *prog.Program { return s.prog }
