package cache

// Reference-model property test: the cache's functional content behavior
// (which lines are resident, miss/hit classification) must agree with a
// trivially-correct map-based LRU model over long random access
// sequences. Timing is not modeled by the reference; residency and
// demand miss counts are.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/xrand"
)

// refLRU is an obviously-correct set-associative LRU cache model.
type refLRU struct {
	sets  map[uint64][]uint64 // set index → line addresses, MRU first
	assoc int
	nsets uint64
}

func newRefLRU(cfg config.CacheConfig) *refLRU {
	return &refLRU{
		sets:  map[uint64][]uint64{},
		assoc: cfg.Assoc,
		nsets: uint64(cfg.Sets()),
	}
}

// access returns true on hit and updates recency/contents.
func (r *refLRU) access(la uint64) bool {
	idx := la % r.nsets
	set := r.sets[idx]
	for i, l := range set {
		if l == la {
			copy(set[1:i+1], set[:i])
			set[0] = la
			return true
		}
	}
	set = append([]uint64{la}, set...)
	if len(set) > r.assoc {
		set = set[:r.assoc]
	}
	r.sets[idx] = set
	return false
}

func TestCacheAgreesWithReferenceLRU(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, LoadToUse: 2, MSHRs: 64}
	mem := &Memory{Latency: 50}
	c := New("L1", cfg, mem, nil)
	ref := newRefLRU(cfg)

	rng := xrand.New(0xcafe)
	cycle := uint64(0)
	misses := uint64(0)
	for i := 0; i < 50000; i++ {
		// A mix of hot lines, streaming, and random accesses.
		var addr uint64
		switch rng.Intn(3) {
		case 0:
			addr = 0x10000 + rng.Uint64n(16)*64 // hot set of 16 lines
		case 1:
			addr = 0x100000 + uint64(i%4096)*64 // stream
		default:
			addr = rng.Uint64n(1 << 22) // random over 4 MB
		}
		// Keep accesses far apart in time so every fill completes before
		// the next access (the reference has no timing).
		cycle += 100
		before := c.Misses
		c.Access(addr, cycle, rng.Intn(4) == 0, false)
		simMiss := c.Misses != before
		refMiss := !ref.access(addr >> 6)
		if simMiss != refMiss {
			t.Fatalf("step %d addr %#x: sim miss=%v, reference miss=%v", i, addr, simMiss, refMiss)
		}
		if simMiss {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("degenerate sequence: no misses")
	}
}

func TestHierarchyInclusionOfRecency(t *testing.T) {
	// Not strict inclusion (the hierarchy is non-inclusive), but any line
	// resident in L1D must hit somewhere at L1 cost — i.e. re-accessing
	// the most recent N < assoc lines of a set never misses.
	m := config.Default()
	h := NewHierarchy(m, nil, nil)
	cycle := uint64(0)
	lines := []uint64{0x1000, 0x41000, 0x81000, 0xc1000} // same L1 set region, 4 < 8 ways
	for pass := 0; pass < 4; pass++ {
		for _, a := range lines {
			cycle += 200
			h.L1D.Access(a, cycle, false, false)
		}
	}
	// After the first pass everything hits.
	if h.L1D.Misses != uint64(len(lines)) {
		t.Errorf("misses = %d, want %d compulsory only", h.L1D.Misses, len(lines))
	}
}
