// vpcompare contrasts the paper's three value prediction flavors — MVP
// (0/1 only, 7.9 KB), TVP (9-bit signed, 13.9 KB) and GVP (full 64-bit,
// 55.2 KB) — on a workload of your choice, reproducing a single row of
// the paper's Fig. 3.
//
//	go run ./examples/vpcompare [workload]
package main

import (
	"fmt"
	"log"
	"os"

	tvp "repro"
	"repro/internal/config"
	"repro/internal/report"
)

func main() {
	workload := "623_xalancbmk_s" // the paper's §6.1 outlier by default
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	modes := []tvp.VPMode{tvp.VPOff, tvp.MVP, tvp.TVP, tvp.GVP}
	opts := make([]tvp.Options, len(modes))
	for i, m := range modes {
		opts[i] = tvp.Options{Workload: workload, VP: m, Warmup: 30_000, MaxInsts: 200_000}
	}
	results, errs := tvp.RunMany(opts)
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	base := results[0].Stats.IPC()
	fmt.Printf("workload: %s (baseline IPC %.3f)\n\n", workload, base)
	fmt.Printf("%-8s %10s %9s %8s %8s %10s\n", "flavor", "storage", "speedup", "cov%", "acc%", "flushes")
	for i, m := range modes[1:] {
		st := &results[i+1].Stats
		fmt.Printf("%-8s %8.1fKB %+8.2f%% %8.2f %8.2f %10d\n",
			m, report.StorageKB(config.Default(), m),
			(st.IPC()/base-1)*100, 100*st.VPCoverage(), 100*st.VPAccuracy(), st.VPFlushes)
	}
	fmt.Println("\nThe paper's headline (§8): a 7.9 KB MVP or 13.9 KB TVP captures a useful")
	fmt.Println("fraction of what a 55.2 KB GVP delivers, with far less pipeline intrusion —")
	fmt.Println("except where the critical values are wide pointers (xalancbmk), which only")
	fmt.Println("GVP can predict.")
}
