package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Files holds the non-test files, matching what ships in
// binaries; those are type-checked. TestFiles holds the package's
// _test.go files parsed syntax-only (they may import packages outside
// the loaded graph), for analyzers with syntactic test-scope checks —
// the nondet guarantee extends to test generators and helpers.
type Package struct {
	Path      string // import path ("repro/internal/config")
	Dir       string
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Loader parses and type-checks every package under a module root using
// only the standard library: module-internal imports are resolved by
// directory, everything else (the standard library) through the source
// importer, so the whole suite runs without network access or external
// modules.
type Loader struct {
	Root       string // absolute module root directory
	ModulePath string // module path from go.mod; "" means import paths are root-relative (testdata layout)
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at dir. modulePath names the module
// ("repro" for this repository); the empty string switches to the
// GOPATH-style testdata layout where import paths are directories
// relative to root.
func NewLoader(dir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:       dir,
		ModulePath: modulePath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// ModulePathFromGoMod reads the module path out of dir/go.mod.
func ModulePathFromGoMod(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", dir)
}

// LoadAll loads every package under the module root.
func (l *Loader) LoadAll() error {
	dirs, err := l.packageDirs(l.Root)
	if err != nil {
		return err
	}
	for _, d := range dirs {
		if _, err := l.Load(l.pathForDir(d)); err != nil {
			return err
		}
	}
	return nil
}

// Load type-checks the package with the given import path (and,
// recursively, its module-internal dependencies), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	dir, ok := l.dirForPath(path)
	if !ok {
		return nil, fmt.Errorf("package %s not found under %s", path, l.Root)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	// Pre-load module-internal dependencies so Import can resolve them
	// from the memo table.
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, ok := l.dirForPath(ipath); ok {
				if _, err := l.Load(ipath); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, typeErrs[0])
	}
	testFiles, err := l.parseTestFiles(dir)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Files: files, TestFiles: testFiles, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module-internal packages come from
// the memo table (loaded before the importing package is checked),
// everything else from the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if _, ok := l.dirForPath(path); ok {
		return nil, fmt.Errorf("module package %s not loaded", path)
	}
	return l.std.Import(path)
}

// Packages returns every loaded package sorted by import path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	rel = filepath.ToSlash(rel)
	if l.ModulePath == "" {
		return rel
	}
	return l.ModulePath + "/" + rel
}

func (l *Loader) dirForPath(path string) (string, bool) {
	var rel string
	switch {
	case path == l.ModulePath && l.ModulePath != "":
		rel = "."
	case l.ModulePath != "" && strings.HasPrefix(path, l.ModulePath+"/"):
		rel = strings.TrimPrefix(path, l.ModulePath+"/")
	case l.ModulePath == "" && path != "":
		rel = path
	default:
		return "", false
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	for _, e := range ents {
		if isBuildableGoFile(e) {
			return dir, true
		}
	}
	return "", false
}

// packageDirs returns every directory under root holding buildable Go
// files, skipping testdata, hidden, and vendor trees (the same pruning
// the go tool applies).
func (l *Loader) packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isBuildableGoFile(e) {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func isBuildableGoFile(e os.DirEntry) bool {
	n := e.Name()
	return !e.IsDir() && strings.HasSuffix(n, ".go") &&
		!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_")
}

func isTestGoFile(e os.DirEntry) bool {
	n := e.Name()
	return !e.IsDir() && strings.HasSuffix(n, "_test.go") &&
		!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_")
}

// parseTestFiles parses the directory's _test.go files for syntax only:
// they are not type-checked (test files may import external test
// dependencies and _test packages outside the loaded graph), so analyzers
// consuming them must work from the AST alone.
func (l *Loader) parseTestFiles(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isTestGoFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isBuildableGoFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
