# Development gates for the TVP reproduction.
#
#   make check        # what CI runs: vet, lint, build, race on the
#                     # concurrency-sensitive packages, full test suite,
#                     # fuzz-smoke, bench-guard
#   make lint         # run tvplint (see internal/analysis) over the module
#   make bench        # the E1–E14 benchmark sweep + simulator throughput
#   make bench-guard  # fail if hot-path allocations regress past baseline
#   make fuzz-smoke   # short differential-fuzzing pass per native target
#   make verify-suite # encode + statically verify every built-in workload
#   make serve-smoke  # end-to-end tvpd daemon check: endpoints, SIGTERM
#                     # drain, cross-process persistent store sharing
#   make report       # regenerate the full EXPERIMENTS.md report

GO ?= go

# Per-target budget for the fuzz smoke pass. The committed seed corpus
# under internal/fuzzgen/testdata/fuzz is always replayed first (also by
# plain `go test`), then each target explores new inputs for this long.
FUZZ_TIME ?= 10s

# Allocation ceiling for BenchmarkSimThroughput with telemetry detached
# (allocs/op at -benchtime 30x). The recorded baseline is 280
# (BENCH_PR1.json); the ceiling carries +5 headroom because the absolute
# count drifts by ±1–2 across machines/Go patch releases, while any real
# hot-path regression (a per-instruction or per-cycle allocation) blows
# past it by thousands. The telemetry layer must stay nil-guarded off the
# hot path, so this number must not grow.
BENCH_GUARD_ALLOCS ?= 285

# Per-workload throughput floors, in simulated MIPS. The two benchmarks
# bound opposite regimes: BenchmarkSimThroughput (648_exchange2_s,
# cache-resident, issue-bound) is dominated by the wakeup scoreboard,
# while BenchmarkSimThroughputLowIPC (605_mcf_s, DRAM-bound) is dominated
# by cycle skipping and commit-side work — a regression confined to
# either mechanism trips exactly one floor, which is why the guard checks
# both instead of one blended number. Recorded PR-9 baselines
# (BENCH_PR9.json, interleaved protocol): 4.8 MIPS high-IPC, 2.7 MIPS
# low-IPC; 10% tolerance under those (4.3 / 2.4) is the floor to use on a
# quiet dedicated machine. The shipped defaults sit lower because shared
# 1-vCPU containers swing ±35% minute-to-minute (see the BENCH_PR6.json /
# BENCH_PR9.json "noise" notes) — they still trip on any structural
# regression (losing the scoreboard, cycle skipping, or the pointer-free
# layouts lands the affected benchmark well under its floor), while not
# flapping on a slow host minute.
BENCH_GUARD_MIPS ?= 3.10
BENCH_GUARD_MIPS_LOWIPC ?= 1.70

.PHONY: check vet lint build test race bench bench-guard fuzz-smoke verify-suite serve-smoke report

# lint runs before test so an invariant violation fails fast, before the
# (much slower) full suite.
check: vet lint build race test verify-suite serve-smoke fuzz-smoke bench-guard

vet:
	$(GO) vet ./...

# tvplint: the project-specific analyzer suite (fingerprintsafe,
# hotpathalloc, detmap, statscomplete, nondet). See internal/analysis
# and CONTRIBUTING.md for the invariants and the escape hatch.
lint:
	$(GO) run ./cmd/tvplint

build:
	$(GO) build ./...

# The run cache, the report fan-out, the telemetry sampler, and the
# daemon's two-tier store are the concurrency hot spots: keep them
# race-clean at the short test length.
race:
	$(GO) test -race ./internal/simcache ./internal/report ./internal/obs ./internal/serve ./internal/store

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Guard the simulator hot path in both directions and both IPC regimes:
# telemetry disabled must cost nothing (allocs/op on the high-IPC run may
# not exceed the recorded ceiling, see BENCH_PR1.json / BENCH_PR2.json),
# and per-workload throughput may not fall under either MIPS floor (see
# BENCH_PR9.json and the BENCH_GUARD_MIPS notes above).
bench-guard:
	@out=$$($(GO) test -bench='^BenchmarkSimThroughput(LowIPC)?$$' -benchmem -benchtime 30x -run='^$$' . | tee /dev/stderr); \
	allocs=$$(printf '%s\n' "$$out" | awk '$$1 ~ /^BenchmarkSimThroughput(-[0-9]+)?$$/ { for (i=1; i<NF; i++) if ($$(i+1) == "allocs/op") print $$i }'); \
	mips=$$(printf '%s\n' "$$out" | awk '$$1 ~ /^BenchmarkSimThroughput(-[0-9]+)?$$/ { for (i=1; i<NF; i++) if ($$(i+1) == "MIPS") print $$i }'); \
	lowmips=$$(printf '%s\n' "$$out" | awk '$$1 ~ /^BenchmarkSimThroughputLowIPC(-[0-9]+)?$$/ { for (i=1; i<NF; i++) if ($$(i+1) == "MIPS") print $$i }'); \
	if [ -z "$$allocs" ]; then echo "bench-guard: could not parse allocs/op" >&2; exit 1; fi; \
	if [ -z "$$mips" ] || [ -z "$$lowmips" ]; then echo "bench-guard: could not parse MIPS" >&2; exit 1; fi; \
	if [ "$$allocs" -gt "$(BENCH_GUARD_ALLOCS)" ]; then \
		echo "bench-guard: FAIL — $$allocs allocs/op exceeds baseline $(BENCH_GUARD_ALLOCS)" >&2; exit 1; \
	fi; \
	if awk -v m="$$mips" -v f="$(BENCH_GUARD_MIPS)" 'BEGIN { exit !(m+0 < f+0) }'; then \
		echo "bench-guard: FAIL — high-IPC $$mips MIPS under floor $(BENCH_GUARD_MIPS) (override BENCH_GUARD_MIPS on slow/shared hosts)" >&2; exit 1; \
	fi; \
	if awk -v m="$$lowmips" -v f="$(BENCH_GUARD_MIPS_LOWIPC)" 'BEGIN { exit !(m+0 < f+0) }'; then \
		echo "bench-guard: FAIL — low-IPC $$lowmips MIPS under floor $(BENCH_GUARD_MIPS_LOWIPC) (override BENCH_GUARD_MIPS_LOWIPC on slow/shared hosts)" >&2; exit 1; \
	fi; \
	echo "bench-guard: OK — $$allocs allocs/op (ceiling $(BENCH_GUARD_ALLOCS)), high-IPC $$mips MIPS (floor $(BENCH_GUARD_MIPS)), low-IPC $$lowmips MIPS (floor $(BENCH_GUARD_MIPS_LOWIPC))"

# Differential fuzzing smoke: go test accepts one -fuzz target per
# invocation, so each native target gets its own short exploration run.
# FuzzCrossCheck drives random programs through the pipeline against the
# shadow-emulator oracle; FuzzMetamorphic asserts timing-configuration
# changes never alter architectural results; FuzzVerify mutates encoded
# binaries against the static verifier's soundness contract (an accepted
# binary must execute without panics or out-of-window accesses).
fuzz-smoke:
	$(GO) test ./internal/fuzzgen -run='^$$' -fuzz='^FuzzCrossCheck$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/fuzzgen -run='^$$' -fuzz='^FuzzMetamorphic$$' -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/isa/verify -run='^$$' -fuzz='^FuzzVerify$$' -fuzztime=$(FUZZ_TIME)

# Binary-ingestion gate: every built-in workload must round-trip through
# the TVPB container and come back through the static verifier with zero
# Error findings, and the committed promoted corpus must match the
# generator bit-for-bit (see internal/workload/ingest_test.go).
verify-suite:
	$(GO) test ./internal/workload -run='^(TestEncodedSuiteVerifies|TestPromotedCorpusBitExact)$$' -count=1

# Daemon smoke: build the real tvpd binary, start it on a free port,
# exercise run/sweep/status (with a retry/timeout handshake on stderr's
# readiness line), assert graceful SIGTERM drain, and prove the
# persistent store is shared across two sequential processes — the
# second serves a previously computed point from disk with zero
# simulation work and byte-identical RunRecord bytes (see
# cmd/tvpd/main_test.go).
serve-smoke:
	$(GO) test ./cmd/tvpd -run='^(TestServeSmoke|TestStoreSharedAcrossProcesses)$$' -count=1 -v

report:
	$(GO) run ./cmd/tvpreport -cachestats
