package emu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// loopProgram builds a store/load loop that churns registers, flags and a
// multi-page data buffer, so mid-run architectural state is nontrivial.
func loopProgram(iters uint64) *prog.Program {
	b := prog.NewBuilder("snapshot-loop")
	buf := b.Alloc(3*4096, 8)
	b.MovImm(isa.X1, buf)
	b.MovImm(isa.X2, iters)
	b.MovImm(isa.X3, 0x9E3779B97F4A7C15)
	top := b.Here()
	b.AndI(isa.X4, isa.X2, 1023)
	b.LslI(isa.X4, isa.X4, 3)
	b.Add(isa.X4, isa.X4, isa.X1)
	b.Str(isa.X3, isa.X4, 0, 8)
	b.Ldr(isa.X5, isa.X4, 0, 8)
	b.Add(isa.X3, isa.X3, isa.X5)
	b.EorI(isa.X3, isa.X3, 0x5bd1)
	b.SubsI(isa.X2, isa.X2, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

// archEqual compares the complete architectural state of two emulators:
// registers, flags, position, and every byte of mapped memory.
func archEqual(t *testing.T, a, b *Emulator) {
	t.Helper()
	if a.X != b.X {
		t.Errorf("integer registers differ: %v vs %v", a.X, b.X)
	}
	if a.D != b.D {
		t.Errorf("FP registers differ")
	}
	if a.Flags != b.Flags {
		t.Errorf("flags differ: %+v vs %+v", a.Flags, b.Flags)
	}
	if a.PC() != b.PC() || a.Executed() != b.Executed() || a.Halted() != b.Halted() {
		t.Errorf("position differs: pc %#x/%#x seq %d/%d halted %v/%v",
			a.PC(), b.PC(), a.Executed(), b.Executed(), a.Halted(), b.Halted())
	}
	for pn, pa := range a.Mem.pages {
		pb := b.Mem.readPage(pn * pageSize)
		if *pa != *pb {
			t.Errorf("page %#x differs", pn*pageSize)
		}
	}
	if got, want := b.Mem.PageCount(), a.Mem.PageCount(); got != want {
		t.Errorf("page count %d, want %d", got, want)
	}
}

// TestSnapshotRestoreBitIdentical checks the checkpointing contract: a run
// resumed from a mid-program snapshot finishes in exactly the state a
// fresh uninterrupted run reaches.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	p := loopProgram(5000)

	fresh := New(p)
	fresh.Run(0, nil) // to HALT

	warm := New(p)
	warm.Run(7000, nil) // mid-loop: ~778 iterations in
	snap := warm.Snapshot()
	if snap.Seq() != 7000 {
		t.Fatalf("snapshot seq = %d, want 7000", snap.Seq())
	}

	resumed := snap.Restore()
	if resumed.Executed() != 7000 {
		t.Fatalf("restored emulator at seq %d, want 7000", resumed.Executed())
	}
	resumed.Run(0, nil)
	archEqual(t, fresh, resumed)
}

// TestSnapshotIsolation checks the copy-on-write discipline: emulators
// restored from one snapshot do not see each other's writes, the snapshot
// stays frozen while the snapshotted emulator keeps running, and a second
// restore starts from the original state.
func TestSnapshotIsolation(t *testing.T) {
	p := loopProgram(5000)
	warm := New(p)
	warm.Run(7000, nil)
	snap := warm.Snapshot()

	a := snap.Restore()
	b := snap.Restore()

	// The snapshotted emulator continues past the checkpoint...
	warm.Run(9000, nil)
	// ...and A runs to completion, mutating its private page copies.
	a.Run(0, nil)

	// B is still exactly at the checkpoint.
	if b.Executed() != 7000 {
		t.Fatalf("b advanced to %d without stepping", b.Executed())
	}
	b.Run(0, nil)
	archEqual(t, a, b)

	// A third restore replays to the same final state as well.
	c := snap.Restore()
	c.Run(0, nil)
	archEqual(t, a, c)
}

// TestSnapshotConcurrentRestore exercises concurrent Restore+Run from one
// shared snapshot — the report layer's fan-out pattern — under -race.
func TestSnapshotConcurrentRestore(t *testing.T) {
	p := loopProgram(3000)
	warm := New(p)
	warm.Run(5000, nil)
	snap := warm.Snapshot()

	ref := snap.Restore()
	ref.Run(0, nil)

	const workers = 8
	done := make(chan *Emulator, workers)
	for i := 0; i < workers; i++ {
		go func() {
			e := snap.Restore()
			e.Run(0, nil)
			done <- e
		}()
	}
	for i := 0; i < workers; i++ {
		archEqual(t, ref, <-done)
	}
}

// TestMemoryCOWSharing pins down the page-sharing economics: restoring
// does not copy pages up front, and only written pages are privatized.
func TestMemoryCOWSharing(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 0xdeadbeef, 8)
	m.Write(0x3000, 0x12345678, 8)

	frozen := m.share()
	clone := memoryFromShared(frozen)

	// Shared pages are physically the same array until written.
	if clone.readPage(0x1000) != m.readPage(0x1000) {
		t.Error("read did not share the frozen page")
	}
	clone.Write(0x1000, 1, 8)
	if clone.readPage(0x1000) == m.readPage(0x1000) {
		t.Error("write did not privatize the page")
	}
	if m.Read(0x1000, 8) != 0xdeadbeef {
		t.Errorf("original page mutated through clone: %#x", m.Read(0x1000, 8))
	}
	if clone.Read(0x3000, 8) != 0x12345678 {
		t.Error("unwritten page lost its contents")
	}

	// The original memory also went copy-on-write at share() time: its
	// own writes must not leak into the frozen image or other clones.
	m.Write(0x3000, 99, 8)
	clone2 := memoryFromShared(frozen)
	if clone2.Read(0x3000, 8) != 0x12345678 {
		t.Errorf("frozen image mutated by original: %#x", clone2.Read(0x3000, 8))
	}
}

// TestMemoryCrossPage checks multi-byte accesses that straddle a page
// boundary survive the last-page translation cache.
func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	const addr = 2*pageSize - 3 // 8-byte access spanning two pages
	m.Write(addr, 0x0102030405060708, 8)
	if got := m.Read(addr, 8); got != 0x0102030405060708 {
		t.Errorf("cross-page read = %#x", got)
	}
	// The bytes landing on the second page (little-endian: 05 04 03 02)
	// are visible through an in-page read there.
	if got := m.Read(2*pageSize, 4); got != 0x02030405 {
		t.Errorf("high half = %#x, want 0x02030405", got)
	}
	// And the first-page prefix (08 07 06) reads back below the boundary.
	if got := m.Read(addr, 2); got != 0x0708 {
		t.Errorf("low prefix = %#x, want 0x0708", got)
	}
}
