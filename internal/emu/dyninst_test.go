package emu

import (
	"reflect"
	"testing"

	"repro/internal/isa"
)

// TestDynInstResetCoversAllFields guards DynInst.reset, the hand-unrolled
// replacement for `*d = DynInst{...}` on the emulator hot path: a stream
// slot dirtied in every field and then reset must be identical to a
// pristine slot reset with the same arguments. A DynInst field that reset
// fails to (re)initialize keeps its dirty value and fails the comparison,
// so adding a field without extending reset is caught here rather than as
// stale dynamic state leaking between stream entries.
func TestDynInstResetCoversAllFields(t *testing.T) {
	inFill, inArg := &isa.Inst{}, &isa.Inst{}

	dirty := &DynInst{}
	dv := reflect.ValueOf(dirty).Elem()
	for i := 0; i < dv.NumField(); i++ {
		f := dv.Field(i)
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(3)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(3)
		case reflect.Ptr:
			f.Set(reflect.ValueOf(inFill))
		default:
			t.Fatalf("DynInst gained a field kind this test does not handle: %v", f.Kind())
		}
	}
	dirty.reset(7, 9, 0x40, inArg, isa.Flags(2))

	clean := &DynInst{}
	clean.reset(7, 9, 0x40, inArg, isa.Flags(2))

	if *dirty != *clean {
		cv := reflect.ValueOf(clean).Elem()
		for i := 0; i < dv.NumField(); i++ {
			if !reflect.DeepEqual(dv.Field(i).Interface(), cv.Field(i).Interface()) {
				t.Errorf("DynInst.reset misses field %q: dirty=%v clean=%v",
					dv.Type().Field(i).Name, dv.Field(i), cv.Field(i))
			}
		}
	}
}
