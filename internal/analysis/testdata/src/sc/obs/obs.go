// Package obs is the statscomplete golden obs side: record types that
// drop or truncate the counter and CPI-bucket blocks.
package obs

import "sc/stats"

// SimSubset hand-enumerates counters — the failure mode the analyzer
// exists to reject.
type SimSubset struct{ Cycles uint64 }

// RunRecord carries a subset instead of the whole block, and has no CPI
// bucket block at all.
type RunRecord struct { // want "RunRecord has no CPI field of type sc/stats.CPIStack"
	Schema string
	Totals SimSubset // want "RunRecord.Totals must carry the whole sc/stats.Sim counter block"
}

// Sample carries the right types but hides them from JSON.
type Sample struct {
	StartInst uint64
	Delta     stats.Sim      `json:"-"` // want `Sample.Delta carries json tag "-"`
	CPIDelta  stats.CPIStack `json:"-"` // want `Sample.CPIDelta carries json tag "-"`
}
