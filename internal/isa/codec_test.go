package isa

import (
	"strings"
	"testing"
)

// repInsts holds one representative, operand-populated instruction per
// operation. TestCodecRoundTripEveryOp fails if an op is ever added to the
// enum without a row here, closing the gap that only workload-used opcodes
// were exercised.
var repInsts = map[Op]Inst{
	NOP:    {Op: NOP},
	ADD:    {Op: ADD, Rd: X0, Rn: X1, Rm: X2},
	ADDS:   {Op: ADDS, Rd: X3, Rn: X4, Imm: 17, UseImm: true, W: true},
	SUB:    {Op: SUB, Rd: X5, Rn: X6, Rm: X7, W: true},
	SUBS:   {Op: SUBS, Rd: XZR, Rn: X8, Imm: -9, UseImm: true},
	AND:    {Op: AND, Rd: X9, Rn: X10, Imm: 0xff, UseImm: true},
	ANDS:   {Op: ANDS, Rd: XZR, Rn: X11, Rm: X12},
	ORR:    {Op: ORR, Rd: X13, Rn: XZR, Rm: X14},
	EOR:    {Op: EOR, Rd: X15, Rn: X16, Rm: X17},
	BIC:    {Op: BIC, Rd: X18, Rn: X19, Rm: X20},
	LSL:    {Op: LSL, Rd: X21, Rn: X22, Imm: 3, UseImm: true},
	LSR:    {Op: LSR, Rd: X23, Rn: X24, Rm: X25},
	ASR:    {Op: ASR, Rd: X26, Rn: X27, Imm: 63, UseImm: true},
	UBFM:   {Op: UBFM, Rd: X0, Rn: X1, Imm: 8, Imm2: 15},
	RBIT:   {Op: RBIT, Rd: X2, Rn: X3},
	MUL:    {Op: MUL, Rd: X4, Rn: X5, Rm: X6},
	SDIV:   {Op: SDIV, Rd: X7, Rn: X8, Rm: X9, W: true},
	UDIV:   {Op: UDIV, Rd: X10, Rn: X11, Rm: X12},
	MOVZ:   {Op: MOVZ, Rd: X13, Imm: 0xbeef, Imm2: 1},
	MOVK:   {Op: MOVK, Rd: X14, Imm: 0xdead, Imm2: 2},
	MOVN:   {Op: MOVN, Rd: X15, Imm: 0x7fff, Imm2: 3},
	CSEL:   {Op: CSEL, Rd: X16, Rn: X17, Rm: X18, Cond: NE},
	CSINC:  {Op: CSINC, Rd: X19, Rn: XZR, Rm: XZR, Cond: GT},
	CSNEG:  {Op: CSNEG, Rd: X20, Rn: X21, Rm: X22, Cond: LE},
	LDR:    {Op: LDR, Rd: X0, Rn: X1, Imm: 8, Size: 8, Mode: AddrOff},
	STR:    {Op: STR, Rd: X2, Rn: X3, Rm: X4, Imm2: 2, Size: 4, Mode: AddrReg},
	B:      {Op: B, Target: 5},
	BCOND:  {Op: BCOND, Cond: EQ, Target: 3},
	CBZ:    {Op: CBZ, Rn: X5, Target: 7},
	CBNZ:   {Op: CBNZ, Rn: X6, Target: 9, W: true},
	TBZ:    {Op: TBZ, Rn: X7, Imm: 5, Target: 11},
	TBNZ:   {Op: TBNZ, Rn: X8, Imm: 63, Target: 13},
	BL:     {Op: BL, Target: 15},
	RET:    {Op: RET, Rn: X30},
	BR:     {Op: BR, Rn: X9},
	FADD:   {Op: FADD, Rd: X0, Rn: X1, Rm: X2},
	FSUB:   {Op: FSUB, Rd: X3, Rn: X4, Rm: X5},
	FMUL:   {Op: FMUL, Rd: X6, Rn: X7, Rm: X8},
	FDIV:   {Op: FDIV, Rd: X9, Rn: X10, Rm: X11},
	FMADD:  {Op: FMADD, Rd: X12, Rn: X13, Rm: X14, Ra: X15},
	FNEG:   {Op: FNEG, Rd: X16, Rn: X17},
	FABS:   {Op: FABS, Rd: X18, Rn: X19},
	FMOV:   {Op: FMOV, Rd: X20, Rn: X21},
	SCVTF:  {Op: SCVTF, Rd: X22, Rn: X23},
	FCVTZS: {Op: FCVTZS, Rd: X24, Rn: X25},
	FLDR:   {Op: FLDR, Rd: X26, Rn: X27, Imm: 16, Size: 8, Mode: AddrPre},
	FSTR:   {Op: FSTR, Rd: X28, Rn: X29, Imm: -8, Size: 8, Mode: AddrPost},
	FCMP:   {Op: FCMP, Rn: X0, Rm: X1},
	HALT:   {Op: HALT},
}

// TestCodecRoundTripEveryOp proves encode→decode→disassemble integrity for
// every operation in the enum: the binary form round-trips exactly and the
// disassembler has a real case (no "?" fallback) for each.
func TestCodecRoundTripEveryOp(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in, ok := repInsts[op]
		if !ok {
			t.Fatalf("op %v has no representative instruction: extend repInsts", op)
		}
		if in.Op != op {
			t.Fatalf("repInsts[%v] has op %v", op, in.Op)
		}
		got, err := Decode(Encode(&in))
		if err != nil {
			t.Errorf("%v: decode: %v", op, err)
			continue
		}
		if got != in {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", op, got, in)
		}
		s := in.String()
		if s == "" || strings.Contains(s, "?") || strings.Contains(s, "op(") {
			t.Errorf("%v: disassembly fell through to a fallback: %q", op, s)
		}
	}
}

// TestCodecRoundTripVariants exercises the operand dimensions a single
// representative per op cannot: all four addressing modes for each memory
// op, both width forms, and immediate-vs-register ALU forms.
func TestCodecRoundTripVariants(t *testing.T) {
	var variants []Inst
	for _, op := range []Op{LDR, STR, FLDR, FSTR} {
		for _, mode := range []AddrMode{AddrOff, AddrReg, AddrPre, AddrPost} {
			for _, size := range []uint8{1, 2, 4, 8} {
				variants = append(variants, Inst{Op: op, Rd: X0, Rn: X1, Rm: X2, Imm: 24, Size: size, Mode: mode})
			}
		}
	}
	for _, op := range []Op{ADD, SUBS, ANDS, EOR, LSL} {
		for _, w := range []bool{false, true} {
			variants = append(variants,
				Inst{Op: op, Rd: X3, Rn: X4, Rm: X5, W: w},
				Inst{Op: op, Rd: X3, Rn: X4, Imm: 41, UseImm: true, W: w})
		}
	}
	for c := EQ; c <= AL; c++ {
		variants = append(variants, Inst{Op: CSEL, Rd: X1, Rn: X2, Rm: X3, Cond: c})
	}
	for _, in := range variants {
		got, err := Decode(Encode(&in))
		if err != nil {
			t.Errorf("%s: decode: %v", in.String(), err)
			continue
		}
		if got != in {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", in.String(), got, in)
		}
	}
}

// TestDecodeRejectsMalformed proves arbitrary bytes cannot produce an Inst
// outside the ISA's value space.
func TestDecodeRejectsMalformed(t *testing.T) {
	base := Encode(&Inst{Op: ADD, Rd: X0, Rn: X1, Rm: X2})
	mutate := func(off int, v byte) [EncodedSize]byte {
		b := base
		b[off] = v
		return b
	}
	cases := []struct {
		name string
		b    [EncodedSize]byte
	}{
		{"bad op", mutate(0, byte(numOps))},
		{"bad rd", mutate(1, 32)},
		{"bad rn", mutate(2, 0xff)},
		{"bad rm", mutate(3, 99)},
		{"bad ra", mutate(4, 64)},
		{"bad cond", mutate(5, byte(AL)+1)},
		{"bad size", mutate(6, 3)},
		{"bad mode", mutate(7, byte(AddrPost)+1)},
		{"bad flags", mutate(32, 0x80)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b); err == nil {
			t.Errorf("%s: decode accepted malformed encoding", tc.name)
		}
	}
}

// TestCrackEveryOp covers both µop kinds for every operation: the Main µop
// always leads with the op's execution class, and exactly the pre/post-
// index memory forms emit a BaseUpdate µop on the integer ALU.
func TestCrackEveryOp(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := repInsts[op]
		tmpl := Crack(&in, nil)
		if len(tmpl) != CrackCount(&in) {
			t.Errorf("%v: Crack emitted %d µops, CrackCount says %d", op, len(tmpl), CrackCount(&in))
		}
		if tmpl[0].Kind != UOpMain || tmpl[0].Class != OpClass(op) {
			t.Errorf("%v: main µop = %+v, want kind %d class %v", op, tmpl[0], UOpMain, OpClass(op))
		}
		for _, u := range tmpl[1:] {
			if u.Kind != UOpBaseUpdate || u.Class != ClassIntALU {
				t.Errorf("%v: extra µop = %+v, want base-update on int-alu", op, u)
			}
		}
	}
	for _, op := range []Op{LDR, STR, FLDR, FSTR} {
		for _, mode := range []AddrMode{AddrOff, AddrReg, AddrPre, AddrPost} {
			in := Inst{Op: op, Rd: X0, Rn: X1, Imm: 8, Size: 8, Mode: mode}
			want := 1
			if mode == AddrPre || mode == AddrPost {
				want = 2
			}
			if got := CrackCount(&in); got != want {
				t.Errorf("%v %v: CrackCount = %d, want %d", op, mode, got, want)
			}
		}
	}
}
