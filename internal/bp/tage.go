package bp

// TAGE is a TAgged GEometric-history-length conditional branch predictor
// (Seznec 2011), configured per Table 2 of the paper: a bimodal base table
// plus 15 tagged tables with history lengths geometric between 5 and 640.
//
// In keeping with the trace-driven discipline of this simulator, Predict
// and Train are called back to back at fetch time with the actual outcome;
// history is maintained on the correct path only.
type TAGE struct {
	base      []int8 // 2-bit bimodal counters, centered at 0 (-2..1)
	baseMask  uint64
	tables    []tageTable
	hist      *HistorySet // index folds [0..n), tag folds [n..2n), tag2 folds [2n..3n)
	nTables   int
	useAlt    int8 // USE_ALT_ON_NA style counter
	tick      int  // useful-bit graceful reset ticker
	tickMax   int
	allocSeed uint64 // deterministic "random" for allocation choice
}

type tageTable struct {
	entries []tageEntry
	mask    uint64
	tagMask uint64
	histLen int
}

type tageEntry struct {
	ctr    int8 // 3-bit signed counter, -4..3; >= 0 means taken
	tag    uint16
	useful uint8 // 2-bit useful counter
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	BaseLog2   uint // bimodal table log2 entries
	TaggedLog2 uint // entries per tagged table, log2
	Tables     int  // number of tagged tables
	TagBits    uint
	MinHist    int
	MaxHist    int
}

// NewTAGE builds a predictor from the configuration.
func NewTAGE(c TAGEConfig) *TAGE {
	t := &TAGE{
		base:     make([]int8, 1<<c.BaseLog2),
		baseMask: 1<<c.BaseLog2 - 1,
		nTables:  c.Tables,
		tickMax:  1 << 18,
	}
	lens := GeometricLengths(c.MinHist, c.MaxHist, c.Tables)
	t.tables = make([]tageTable, c.Tables)
	foldLens := make([]int, 0, 3*c.Tables)
	foldWidths := make([]int, 0, 3*c.Tables)
	for i := 0; i < c.Tables; i++ {
		t.tables[i] = tageTable{
			entries: make([]tageEntry, 1<<c.TaggedLog2),
			mask:    1<<c.TaggedLog2 - 1,
			tagMask: 1<<c.TagBits - 1,
			histLen: lens[i],
		}
		foldLens = append(foldLens, lens[i])
		foldWidths = append(foldWidths, int(c.TaggedLog2))
	}
	for i := 0; i < c.Tables; i++ { // tag fold 1
		foldLens = append(foldLens, lens[i])
		foldWidths = append(foldWidths, int(c.TagBits))
	}
	for i := 0; i < c.Tables; i++ { // tag fold 2 (shifted, classic TAGE)
		foldLens = append(foldLens, lens[i])
		foldWidths = append(foldWidths, int(c.TagBits)-1)
	}
	t.hist = NewHistorySet(foldLens, foldWidths)
	t.allocSeed = 0x123456789abcdef
	return t
}

func (t *TAGE) index(pc uint64, ti int) uint64 {
	tb := &t.tables[ti]
	h := t.hist.Fold(ti)
	return (pc>>2 ^ pc>>6 ^ h ^ uint64(ti)*0x9e3779b1) & tb.mask
}

func (t *TAGE) tag(pc uint64, ti int) uint16 {
	tb := &t.tables[ti]
	h1 := t.hist.Fold(t.nTables + ti)
	h2 := t.hist.Fold(2*t.nTables + ti)
	return uint16((pc>>2 ^ h1 ^ h2<<1) & tb.tagMask)
}

// Prediction carries provider metadata from Predict to Train.
type Prediction struct {
	Taken    bool
	provider int // tagged table index of the provider, -1 for bimodal
	altTaken bool
	altProv  int // provider of the alternate prediction, -1 for bimodal
	provIdx  uint64
	altIdx   uint64
	provWeak bool
}

// Predict returns the predicted direction for the conditional branch at pc
// along with the metadata Train needs.
func (t *TAGE) Predict(pc uint64) Prediction {
	p := Prediction{provider: -1, altProv: -1}
	bi := pc >> 2 & t.baseMask
	baseTaken := t.base[bi] >= 0
	p.Taken, p.altTaken = baseTaken, baseTaken

	for ti := t.nTables - 1; ti >= 0; ti-- {
		idx := t.index(pc, ti)
		e := &t.tables[ti].entries[idx]
		if e.tag != t.tag(pc, ti) {
			continue
		}
		if p.provider < 0 {
			p.provider = ti
			p.provIdx = idx
			p.Taken = e.ctr >= 0
			p.provWeak = e.ctr == 0 || e.ctr == -1
		} else {
			p.altProv = ti
			p.altIdx = idx
			p.altTaken = e.ctr >= 0
			break
		}
	}
	if p.provider >= 0 && p.altProv < 0 {
		p.altTaken = baseTaken
	}
	// USE_ALT_ON_NA: when the provider entry is weak (newly allocated),
	// optionally trust the alternate prediction.
	if p.provider >= 0 && p.provWeak && t.useAlt >= 0 {
		p.Taken = p.altTaken
	}
	return p
}

// bump is a saturating counter update. The increment is computed
// branchlessly (+1/-1 from the direction bit) and the saturation bounds
// compile to conditional moves, replacing the doubly-nested branch that
// mispredicts on every alternating pattern.
func bump(ctr *int8, taken bool, min, max int8) {
	var d int8 = -1
	if taken {
		d = 1
	}
	n := *ctr + d
	if n > max {
		n = max
	}
	if n < min {
		n = min
	}
	*ctr = n
}

// Train updates the predictor with the actual outcome and pushes the
// outcome into the global history. It must be called exactly once per
// Predict, in prediction order.
func (t *TAGE) Train(pc uint64, p Prediction, taken bool) {
	mispred := p.Taken != taken

	// Update USE_ALT_ON_NA when provider was weak and alt differed.
	if p.provider >= 0 && p.provWeak && p.altTaken != (t.tables[p.provider].entries[p.provIdx].ctr >= 0) {
		if p.altTaken == taken {
			bump(&t.useAlt, true, -8, 7)
		} else {
			bump(&t.useAlt, false, -8, 7)
		}
	}

	// Provider update.
	if p.provider >= 0 {
		e := &t.tables[p.provider].entries[p.provIdx]
		bump(&e.ctr, taken, -4, 3)
		// Useful counter: provider correct and alt wrong → more useful.
		if p.altTaken != p.Taken || p.altProv >= 0 {
			if !mispred && p.altTaken != taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if mispred && p.altTaken == taken {
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	} else {
		bi := pc >> 2 & t.baseMask
		bump(&t.base[bi], taken, -2, 1)
	}

	// Allocation on misprediction: try to allocate an entry in a table
	// with longer history than the provider.
	if mispred && p.provider < t.nTables-1 {
		start := p.provider + 1
		// Deterministic pseudo-random start offset, as in TAGE, to avoid
		// ping-pong allocation.
		t.allocSeed = t.allocSeed*6364136223846793005 + 1442695040888963407
		if start < t.nTables-1 && t.allocSeed>>62&1 == 1 {
			start++
		}
		allocated := false
		for ti := start; ti < t.nTables; ti++ {
			idx := t.index(pc, ti)
			e := &t.tables[ti].entries[idx]
			if e.useful == 0 {
				e.tag = t.tag(pc, ti)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Age useful bits along the allocation path.
			for ti := start; ti < t.nTables; ti++ {
				e := &t.tables[ti].entries[t.index(pc, ti)]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
		// Graceful useful reset.
		t.tick++
		if t.tick >= t.tickMax {
			t.tick = 0
			for ti := range t.tables {
				for i := range t.tables[ti].entries {
					t.tables[ti].entries[i].useful >>= 1
				}
			}
		}
	}

	t.hist.Push(taken)
}

// PushHistory records the direction of a conditional branch without
// training (used when a branch is resolved by other means, e.g. SpSR'd at
// rename, so the history stays consistent). Unused in the current pipeline
// — SpSR'd branches still train — but exported for experimentation.
func (t *TAGE) PushHistory(taken bool) { t.hist.Push(taken) }

// StorageBits returns the predictor's storage budget in bits (counters,
// tags and useful bits; history registers excluded, as is conventional).
func (t *TAGE) StorageBits() int {
	bits := len(t.base) * 2
	for i := range t.tables {
		tb := &t.tables[i]
		tagBits := 0
		for m := tb.tagMask; m != 0; m >>= 1 {
			tagBits++
		}
		bits += len(tb.entries) * (3 + 2 + tagBits)
	}
	return bits
}
