package pipeline

// queue is an allocation-free FIFO for the pipeline's bounded stage
// queues (fetch queue, µop queue, load/store queues). Popping from the
// front advances a head index instead of reslicing the buffer away —
// reslicing (`q = q[1:]`) permanently abandons the popped slot, so every
// later append reallocates once the backing array is consumed, which the
// profile shows as the simulator's dominant allocation source. The dead
// prefix is recycled when the queue drains and compacted once it grows
// past a fixed threshold, so steady-state simulation performs no queue
// allocations at all.
type queue[T any] struct {
	buf  []T
	head int
}

// compactAt bounds the dead prefix. The live portion of every pipeline
// queue is small (≤ ROB-scale), so compaction copies little and runs
// rarely.
const compactAt = 256

func (q *queue[T]) len() int  { return len(q.buf) - q.head }
func (q *queue[T]) front() *T { return &q.buf[q.head] }
func (q *queue[T]) live() []T { return q.buf[q.head:] }
func (q *queue[T]) push(v T)  { q.buf = append(q.buf, v) }

func (q *queue[T]) popFront() {
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= compactAt {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

func (q *queue[T]) clear() {
	q.buf = q.buf[:0]
	q.head = 0
}

// filterLive keeps only elements for which keep returns true, compacting
// the queue to the front of its buffer (order preserved, no allocation).
func (q *queue[T]) filterLive(keep func(T) bool) {
	out := q.buf[:0]
	for _, v := range q.buf[q.head:] {
		if keep(v) {
			out = append(out, v)
		}
	}
	q.buf = out
	q.head = 0
}
