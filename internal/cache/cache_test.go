package cache

import (
	"testing"

	"repro/internal/config"
)

func smallCfg(sizeKB, assoc, latency, mshrs int) config.CacheConfig {
	return config.CacheConfig{SizeBytes: sizeKB << 10, Assoc: assoc, LineBytes: 64, LoadToUse: latency, MSHRs: mshrs}
}

func TestHitLatency(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(4, 4, 3, 8), mem, nil)
	first := c.Access(0x1000, 10, false, false)
	if first != 10+3+100 {
		t.Errorf("cold miss ready at %d, want 113", first)
	}
	hit := c.Access(0x1000, 200, false, false)
	if hit != 203 {
		t.Errorf("hit ready at %d, want 203", hit)
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Errorf("counters: %d accesses, %d misses", c.Accesses, c.Misses)
	}
}

func TestSameLineDifferentWords(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(4, 4, 3, 8), mem, nil)
	c.Access(0x1000, 10, false, false)
	if got := c.Access(0x1038, 200, false, false); got != 203 {
		t.Errorf("same-line access ready at %d, want 203", got)
	}
}

func TestMSHRMerge(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(4, 4, 3, 8), mem, nil)
	r1 := c.Access(0x2000, 10, false, false)
	// A second access to the same line while the fill is in flight must
	// wait for the same fill, not start a new one.
	r2 := c.Access(0x2008, 20, false, false)
	if r2 != r1 {
		t.Errorf("merged access ready at %d, want %d", r2, r1)
	}
	if mem.Accesses != 1 {
		t.Errorf("memory saw %d accesses, want 1 (merged)", mem.Accesses)
	}
}

func TestMSHRExhaustionDelays(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(64, 8, 3, 2), mem, nil) // only 2 MSHRs
	r1 := c.Access(0x10000, 10, false, false)
	c.Access(0x20000, 10, false, false)
	r3 := c.Access(0x30000, 10, false, false)
	if r3 <= r1 {
		t.Errorf("third concurrent miss should be delayed past %d, got %d", r1, r3)
	}
	if c.MSHRConflict == 0 {
		t.Error("MSHR conflict not recorded")
	}
}

func TestLRUEviction(t *testing.T) {
	mem := &Memory{Latency: 100}
	// 2 sets × 2 ways.
	c := New("L1", config.CacheConfig{SizeBytes: 256, Assoc: 2, LineBytes: 64, LoadToUse: 1, MSHRs: 8}, mem, nil)
	// Three lines mapping to set 0 (line addresses 0, 2, 4).
	c.Access(0*64, 10, false, false)
	c.Access(2*64, 20, false, false)
	c.Access(0*64, 30, false, false) // touch line 0: line 2 becomes LRU
	c.Access(4*64, 40, false, false) // evicts line 2
	m := c.Misses
	c.Access(0*64, 50, false, false)
	if c.Misses != m {
		t.Error("line 0 should still be resident")
	}
	c.Access(2*64, 60, false, false)
	if c.Misses != m+1 {
		t.Error("line 2 should have been evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", config.CacheConfig{SizeBytes: 128, Assoc: 1, LineBytes: 64, LoadToUse: 1, MSHRs: 8}, mem, nil)
	c.Access(0, 10, true, false) // dirty line in set 0
	base := mem.Accesses
	c.Access(128, 1000, false, false) // conflicts in set 0, evicts dirty
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks)
	}
	if mem.Accesses != base+2 { // fill + writeback
		t.Errorf("memory accesses = %d, want %d", mem.Accesses, base+2)
	}
}

func TestHierarchyLatencyComposition(t *testing.T) {
	m := config.Default()
	h := NewHierarchy(m, nil, nil)
	// Cold access composes L1D + L2 + L3 + DRAM latencies.
	cold := h.L1D.Access(0x100000, 0, false, false)
	want := uint64(m.L1D.LoadToUse + m.L2.LoadToUse + m.L3.LoadToUse + m.MemLat)
	if cold != want {
		t.Errorf("cold latency = %d, want %d", cold, want)
	}
	// L2 hit after L1 eviction: evict by filling the L1 set.
	stride := uint64(m.L1D.SizeBytes / m.L1D.Assoc)
	for i := 1; i <= m.L1D.Assoc+1; i++ {
		h.L1D.Access(0x100000+uint64(i)*stride, 10000, false, false)
	}
	l2hit := h.L1D.Access(0x100000, 200000, false, false)
	if l2hit != 200000+uint64(m.L1D.LoadToUse+m.L2.LoadToUse) {
		t.Errorf("L2 hit latency = %d", l2hit-200000)
	}
}

func TestRetention(t *testing.T) {
	m := config.Default()
	h := NewHierarchy(m, nil, nil)
	cycle := uint64(0)
	for pass := 0; pass < 2; pass++ {
		m2 := h.L2.Misses
		for i := 0; i < 3000; i++ {
			cycle += 50
			h.L1D.Access(0x1000000+uint64(i)*64, cycle, false, false)
		}
		if pass == 1 && h.L2.Misses != m2 {
			t.Errorf("second pass missed L2 %d times; working set should be resident", h.L2.Misses-m2)
		}
	}
}

type pfStub struct{ out []uint64 }

func (p *pfStub) Observe(addr, pc uint64, hit bool) []uint64 { return p.out }

func TestPrefetchInstallsAndCredits(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(16, 4, 3, 8), mem, nil)
	c.pf = &pfStub{out: []uint64{0x5000}}
	c.Access(0x4000, 10, false, false) // triggers prefetch of 0x5000
	if c.PFIssued != 1 {
		t.Fatalf("prefetches issued = %d", c.PFIssued)
	}
	c.pf = nil
	m := c.Misses
	c.Access(0x5000, 5000, false, false)
	if c.Misses != m {
		t.Error("prefetched line should hit")
	}
	if c.PFUseful != 1 {
		t.Errorf("useful prefetches = %d, want 1", c.PFUseful)
	}
}

func TestPrefetchDoesNotCountDemand(t *testing.T) {
	mem := &Memory{Latency: 100}
	c := New("L1", smallCfg(16, 4, 3, 8), mem, nil)
	c.Prefetch(0x9000, 10)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("prefetches must not count as demand accesses/misses")
	}
}
