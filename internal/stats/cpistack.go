package stats

import "reflect"

// CPIStack is the top-down cycle-accounting block: every post-warmup
// commit slot (Cycles × CommitWidth slots total) is attributed to exactly
// one bucket. Retiring slots split into regular retirement and the
// SpSR-eliminated credit (µops that consumed a commit slot but were
// strength-reduced away at rename — the paper's "bought back" work);
// idle slots are classified by what blocked the ROB head that cycle.
//
// The exact-decomposition invariant — Total() == Cycles × CommitWidth,
// bit-identical with cycle skipping on and off — is enforced by
// TestCPIStackExactDecomposition in internal/pipeline.
//
// Like Sim, the block is flat uint64 counters with visible JSON tags so
// records survive serialization losslessly; the statscomplete analyzer
// promotes that shape to a compile-time check.
type CPIStack struct {
	// Retiring counts slots that committed a regular (non-eliminated)
	// µop; RetiredSpSR counts slots that committed an SpSR-eliminated
	// µop — work the strength-reduction engine removed from the backend.
	Retiring    uint64 `json:"retiring"`
	RetiredSpSR uint64 `json:"retired_spsr"`
	// FrontendLatency: ROB empty because fetch is refilling after an
	// L1I/ITLB miss, a BTB mistarget or taken-branch bubble, or a flush
	// redirect. FrontendBandwidth: ROB empty with fetch unstalled — the
	// frontend simply has not delivered µops to rename yet (pipe-stage
	// refill, decode/rename delays, or program end).
	FrontendLatency   uint64 `json:"frontend_latency"`
	FrontendBandwidth uint64 `json:"frontend_bandwidth"`
	// BadSpecBranch: ROB empty while fetch waits on an unresolved
	// mispredicted branch (the trace-driven model's wrong-path cost).
	// BadSpecVP: ROB empty while the frontend refills after a
	// value-misprediction flush — the paper's cost side of using
	// predictions.
	BadSpecBranch uint64 `json:"bad_spec_branch"`
	BadSpecVP     uint64 `json:"bad_spec_vp"`
	// BackendMemory: the ROB head is an issued-but-incomplete load or
	// store (L1D/L2/L3/TLB latency), or the frontend is refilling after
	// a memory-order flush. BackendCore: the head is a non-memory µop
	// still waiting in the scheduler or executing (IQ pressure, issue
	// bandwidth, execution latency).
	BackendMemory uint64 `json:"backend_memory"`
	BackendCore   uint64 `json:"backend_core"`
	// Structural: rename or dispatch blocked on a full ROB/IQ/LQ/SQ or
	// an empty PRF this cycle (the five *FullStalls counters moved).
	Structural uint64 `json:"structural"`
}

// SubCPI returns a-b per bucket (a after b, never negative when b is an
// earlier snapshot of the same accumulation). Reflection-based like Sub,
// so a new bucket can never be forgotten here.
func SubCPI(a, b *CPIStack) CPIStack {
	var out CPIStack
	av := reflect.ValueOf(a).Elem()
	bv := reflect.ValueOf(b).Elem()
	ov := reflect.ValueOf(&out).Elem()
	for i := 0; i < av.NumField(); i++ {
		ov.Field(i).SetUint(av.Field(i).Uint() - bv.Field(i).Uint())
	}
	return out
}

// AddCPI accumulates o into s per bucket (heartbeat aggregation across
// sweep workers).
func (s *CPIStack) AddCPI(o *CPIStack) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetUint(sv.Field(i).Uint() + ov.Field(i).Uint())
	}
}

// Total sums every bucket; the exact-decomposition invariant pins it to
// Cycles × CommitWidth.
func (s *CPIStack) Total() uint64 {
	v := reflect.ValueOf(s).Elem()
	var n uint64
	for i := 0; i < v.NumField(); i++ {
		n += v.Field(i).Uint()
	}
	return n
}

// CPIBucket is one named slot count, for rendering.
type CPIBucket struct {
	Name  string
	Slots uint64
}

// Buckets returns the stack in canonical render order with short column
// names. TestCPIStackBucketsComplete pins the list to the struct fields.
func (s *CPIStack) Buckets() []CPIBucket {
	return []CPIBucket{
		{"retire", s.Retiring},
		{"spsr", s.RetiredSpSR},
		{"fe-lat", s.FrontendLatency},
		{"fe-bw", s.FrontendBandwidth},
		{"bad-br", s.BadSpecBranch},
		{"bad-vp", s.BadSpecVP},
		{"be-mem", s.BackendMemory},
		{"be-core", s.BackendCore},
		{"struct", s.Structural},
	}
}

// Top returns the largest bucket (earliest in canonical order on ties) —
// the heartbeat's one-word bottleneck readout.
func (s *CPIStack) Top() CPIBucket {
	var top CPIBucket
	for _, b := range s.Buckets() {
		if b.Slots > top.Slots {
			top = b
		}
	}
	return top
}
