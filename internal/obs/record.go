package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
)

// Summary carries the headline derived metrics of a run, precomputed so
// consumers can rank or plot records without reimplementing the ratio
// math of internal/stats.
type Summary struct {
	IPC         float64 `json:"ipc"`
	UopsPerInst float64 `json:"uops_per_inst"`
	BranchMPKI  float64 `json:"branch_mpki"`
	L1DMPKI     float64 `json:"l1d_mpki"`
	VPCoverage  float64 `json:"vp_coverage"`
	VPAccuracy  float64 `json:"vp_accuracy"`
	ElimPct     float64 `json:"elim_pct"`
	SpSRPct     float64 `json:"spsr_pct"`
}

// Summarize derives a Summary from a counter block.
func Summarize(st *stats.Sim) Summary {
	return Summary{
		IPC:         st.IPC(),
		UopsPerInst: st.UopsPerInst(),
		BranchMPKI:  st.BranchMPKI(),
		L1DMPKI:     st.L1DMPKI(),
		VPCoverage:  st.VPCoverage(),
		VPAccuracy:  st.VPAccuracy(),
		ElimPct:     100 * st.ElimFraction(st.ZeroIdiomElim+st.OneIdiomElim+st.MoveElim+st.NineBitElim),
		SpSRPct:     100 * st.ElimFraction(st.SpSRElim),
	}
}

// Attribution holds the per-PC tables of a run, each limited to the
// configured top K out of TableCap tracked PCs.
type Attribution struct {
	TopK              int       `json:"top_k"`
	TableCap          int       `json:"table_cap"`
	VPFlushes         []PCCount `json:"vp_flushes"`
	BranchMispredicts []PCCount `json:"branch_mispredicts"`
	L1DMisses         []PCCount `json:"l1d_misses"`
	// CommitStalls attributes idle commit slots to the instruction that
	// blocked the ROB head (weighted by slots, not occurrences; schema
	// v2, empty on v1 records).
	CommitStalls []PCCount `json:"commit_stalls,omitempty"`
}

// RunMeta names one simulation point for record assembly.
type RunMeta struct {
	Workload string
	// Cfg is the machine the point ran on; its fingerprint, VP mode and
	// SpSR setting are embedded in the record.
	Cfg           *config.Machine
	Warmup, Insts uint64
	FastWarmup    bool
	// Cached marks a point recalled from the run memoization cache
	// rather than simulated (tvpreport sweeps).
	Cached bool
}

// RunRecord is the versioned machine-readable result of one simulation
// point: full counters, configuration identity, and — when the run was
// executed with telemetry attached — the interval time series and the
// per-PC attribution tables.
type RunRecord struct {
	Schema     string `json:"schema"`
	Workload   string `json:"workload"`
	ConfigFP   string `json:"config_fp"`
	VPMode     string `json:"vp_mode"`
	SpSR       bool   `json:"spsr"`
	Warmup     uint64 `json:"warmup"`
	Insts      uint64 `json:"insts"`
	FastWarmup bool   `json:"fast_warmup,omitempty"`
	Cached     bool   `json:"cached,omitempty"`

	Summary Summary   `json:"summary"`
	Totals  stats.Sim `json:"totals"`
	// CPI is the top-down commit-slot attribution (schema v2; zero on
	// decoded v1 records and on runs without CPI accounting). Invariant:
	// CPI.Total() == Totals.Cycles × CommitWidth when present.
	CPI stats.CPIStack `json:"cpi"`

	// IntervalInsts is the sampling period of Intervals (0 when the run
	// carried no interval sampling, e.g. memoized tvpreport points).
	IntervalInsts uint64       `json:"interval_insts,omitempty"`
	Intervals     []Sample     `json:"intervals,omitempty"`
	Attribution   *Attribution `json:"attribution,omitempty"`
}

// NewRunRecord builds a totals-only record (no intervals/attribution) —
// the shape tvpreport emits for memoized sweep points. Telemetry.Record
// builds the fully instrumented shape.
func NewRunRecord(meta RunMeta, totals stats.Sim) *RunRecord {
	rec := &RunRecord{
		Schema:     RunSchema,
		Workload:   meta.Workload,
		Warmup:     meta.Warmup,
		Insts:      meta.Insts,
		FastWarmup: meta.FastWarmup,
		Cached:     meta.Cached,
		Summary:    Summarize(&totals),
		Totals:     totals,
	}
	if meta.Cfg != nil {
		rec.ConfigFP = meta.Cfg.Fingerprint()
		rec.VPMode = meta.Cfg.VP.Mode.String()
		rec.SpSR = meta.Cfg.SpSR
	}
	return rec
}

// SweepRecord summarizes one tvpreport sweep: how many runs the figures
// requested, how many the memoization layer absorbed, and the realized
// simulation throughput. It folds the -cachestats counters into the
// machine-readable output.
type SweepRecord struct {
	Schema        string  `json:"schema"`
	Warmup        uint64  `json:"warmup"`
	Insts         uint64  `json:"insts"`
	Runs          int     `json:"runs"`
	CachedRuns    int     `json:"cached_runs"`
	UniquePoints  int     `json:"unique_points"`
	SimcacheHits  uint64  `json:"simcache_hits"`
	SimcacheMiss  uint64  `json:"simcache_misses"`
	SimInsts      uint64  `json:"simulated_insts"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimulatedMIPS float64 `json:"simulated_mips"`
}

// SweepLog collects one RunRecord per unique simulation point touched by
// a sweep, concurrency-safe (tvpreport fans runs out across GOMAXPROCS).
type SweepLog struct {
	mu       sync.Mutex
	start    time.Time
	byKey    map[sweepKey]int // index into records
	records  []*RunRecord
	runs     int
	cached   int
	simInsts uint64
	warmup   uint64
	insts    uint64
}

type sweepKey struct {
	workload   string
	fp         string
	warmup     uint64
	insts      uint64
	fastWarmup bool
}

// NewSweepLog returns an empty log; the sweep wall clock starts now.
func NewSweepLog() *SweepLog {
	//tvplint:ignore nondet sweep wall-clock is host-side throughput metadata (WallSeconds/MIPS), not simulated state
	return &SweepLog{start: time.Now(), byKey: make(map[sweepKey]int)}
}

// Add records one completed run. Duplicate points (repeated across
// figures) update the run counters but keep a single record, marked
// Cached if any occurrence was a cache recall.
func (l *SweepLog) Add(meta RunMeta, totals stats.Sim) {
	l.AddCPI(meta, totals, nil)
}

// AddCPI is Add for runs that carried CPI-stack accounting; the stack is
// embedded in the point's record (and backfilled onto a CPI-less
// duplicate from another figure).
func (l *SweepLog) AddCPI(meta RunMeta, totals stats.Sim, cpi *stats.CPIStack) {
	key := sweepKey{
		workload:   meta.Workload,
		warmup:     meta.Warmup,
		insts:      meta.Insts,
		fastWarmup: meta.FastWarmup,
	}
	if meta.Cfg != nil {
		key.fp = meta.Cfg.Fingerprint()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.runs++
	l.warmup, l.insts = meta.Warmup, meta.Insts
	if meta.Cached {
		l.cached++
	} else {
		l.simInsts += meta.Insts
		if !meta.FastWarmup {
			l.simInsts += meta.Warmup
		}
	}
	if i, ok := l.byKey[key]; ok {
		if meta.Cached {
			l.records[i].Cached = true
		}
		if cpi != nil && l.records[i].CPI == (stats.CPIStack{}) {
			l.records[i].CPI = *cpi
		}
		return
	}
	l.byKey[key] = len(l.records)
	rec := NewRunRecord(meta, totals)
	if cpi != nil {
		rec.CPI = *cpi
	}
	l.records = append(l.records, rec)
}

// Records returns the collected run records in first-seen order.
func (l *SweepLog) Records() []*RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*RunRecord(nil), l.records...)
}

// Sweep assembles the sweep summary, folding in the simcache counters.
func (l *SweepLog) Sweep(cacheHits, cacheMisses uint64) SweepRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	//tvplint:ignore nondet sweep wall-clock is host-side throughput metadata (WallSeconds/MIPS), not simulated state
	wall := time.Since(l.start).Seconds()
	rec := SweepRecord{
		Schema:       SweepSchema,
		Warmup:       l.warmup,
		Insts:        l.insts,
		Runs:         l.runs,
		CachedRuns:   l.cached,
		UniquePoints: len(l.records),
		SimcacheHits: cacheHits,
		SimcacheMiss: cacheMisses,
		SimInsts:     l.simInsts,
		WallSeconds:  wall,
	}
	if wall > 0 {
		rec.SimulatedMIPS = float64(l.simInsts) / wall / 1e6
	}
	return rec
}

// WriteDir writes one JSON file per run record plus sweep.json into dir
// (created if absent). File names are ordinal_workload_fp12.json so a
// directory listing reads in sweep order and points stay distinguishable
// across configurations.
func (l *SweepLog) WriteDir(dir string, cacheHits, cacheMisses uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, rec := range l.Records() {
		fp := rec.ConfigFP
		if len(fp) > 12 {
			fp = fp[:12]
		}
		name := fmt.Sprintf("%03d_%s_%s.json", i, rec.Workload, fp)
		if err := writeJSONFile(filepath.Join(dir, name), rec); err != nil {
			return err
		}
	}
	return writeJSONFile(filepath.Join(dir, "sweep.json"), l.Sweep(cacheHits, cacheMisses))
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
