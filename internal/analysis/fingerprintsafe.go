package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// NewFingerprintSafe builds the fingerprintsafe analyzer for the struct
// typeName in package pkgPath (production: config.Machine).
//
// Machine.Fingerprint hashes the %#v rendering of the whole struct and
// internal/simcache keys memoized simulation results on that hash, so
// the rendering must be a complete, deterministic serialization of the
// configuration *content*. A pointer, map, func, channel, interface, or
// unsafe.Pointer field anywhere in the reachable field graph breaks
// that: %#v renders pointer and func fields as addresses (two equal
// configs hash differently; worse, two *different* configs can collide
// after an address is reused), and interface fields hide dynamic types
// the walk cannot vet. Value fields, structs, arrays, and slices of
// value types render by content and are safe.
func NewFingerprintSafe(pkgPath, typeName string) *Analyzer {
	a := &Analyzer{
		Name: "fingerprintsafe",
		Doc:  fmt.Sprintf("reject pointer-carrying fields reachable from %s.%s, which would poison the %%#v config fingerprint keying the simcache", pkgPath, typeName),
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Path != pkgPath {
			return nil
		}
		obj := pass.Pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			pass.Reportf(pass.Pkg.Files[0].Package,
				"fingerprint root type %s.%s not found; the simcache key has no content guarantee", pkgPath, typeName)
			return nil
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(obj.Pos(), "fingerprint root %s must be a struct, got %s", typeName, obj.Type().Underlying())
			return nil
		}
		seen := map[*types.Named]bool{}
		walkFingerprintStruct(pass, st, typeName, obj.Pos(), seen)
		return nil
	}
	return a
}

func walkFingerprintStruct(pass *Pass, st *types.Struct, path string, parentPos token.Pos, seen map[*types.Named]bool) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		pos := parentPos
		// Point at the field declaration when it lives in the package
		// under analysis; foreign fields fall back to the enclosing
		// field so the diagnostic stays inside the analyzed package.
		if f.Pkg() == pass.Pkg.Types {
			pos = f.Pos()
		}
		checkFingerprintType(pass, f.Type(), path+"."+f.Name(), pos, seen)
	}
}

func checkFingerprintType(pass *Pass, t types.Type, path string, pos token.Pos, seen map[*types.Named]bool) {
	if n, ok := types.Unalias(t).(*types.Named); ok {
		if seen[n] {
			return
		}
		seen[n] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			pass.Reportf(pos, "fingerprint-unsafe field %s: unsafe.Pointer renders as an address under %%#v and poisons the simcache fingerprint", path)
		}
	case *types.Pointer:
		pass.Reportf(pos, "fingerprint-unsafe field %s: pointer type %s renders as an address under %%#v and poisons the simcache fingerprint", path, t)
	case *types.Map:
		pass.Reportf(pos, "fingerprint-unsafe field %s: map type %s has no canonical %%#v rendering contract for the simcache fingerprint", path, t)
	case *types.Signature:
		pass.Reportf(pos, "fingerprint-unsafe field %s: func type %s renders as an address under %%#v and poisons the simcache fingerprint", path, t)
	case *types.Chan:
		pass.Reportf(pos, "fingerprint-unsafe field %s: channel type %s renders as an address under %%#v and poisons the simcache fingerprint", path, t)
	case *types.Interface:
		pass.Reportf(pos, "fingerprint-unsafe field %s: interface type %s hides dynamic content from the %%#v fingerprint walk", path, t)
	case *types.Struct:
		walkFingerprintStruct(pass, u, path, pos, seen)
	case *types.Slice:
		checkFingerprintType(pass, u.Elem(), path+"[]", pos, seen)
	case *types.Array:
		checkFingerprintType(pass, u.Elem(), path+"[]", pos, seen)
	}
}
