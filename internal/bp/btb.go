package bp

// BTB is a set-associative branch target buffer with true-LRU
// replacement. The pipeline consults it for every fetched branch; a taken
// branch whose target is absent incurs the decode-stage mistarget penalty
// (Table 2: "Mistarget detection (BTB miss)").
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	assoc   int
	clock   uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// NewBTB returns a BTB with the given total entry count and associativity.
func NewBTB(entries, assoc int) *BTB {
	if assoc <= 0 {
		assoc = 1
	}
	nsets := entries / assoc
	if nsets == 0 {
		nsets = 1
	}
	// Round down to a power of two for mask indexing.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	b := &BTB{assoc: assoc, setMask: uint64(nsets - 1)}
	backing := make([]btbEntry, nsets*assoc)
	b.sets = make([][]btbEntry, nsets)
	for i := range b.sets {
		b.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return b
}

//tvp:hotpath
func (b *BTB) set(pc uint64) ([]btbEntry, uint64) {
	idx := pc >> 2 & b.setMask
	return b.sets[idx], pc >> 2 / (b.setMask + 1)
}

// Lookup returns the stored target for pc, if present.
//tvp:hotpath
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	set, tag := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clock++
			set[i].lru = b.clock
			return set[i].target, true
		}
	}
	return 0, false
}

// Insert records pc → target, evicting the LRU way on conflict.
//tvp:hotpath
func (b *BTB) Insert(pc, target uint64) {
	set, tag := b.set(pc)
	b.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			set[i].lru = b.clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.clock}
}
