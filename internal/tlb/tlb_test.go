package tlb

import (
	"testing"

	"repro/internal/config"
)

func TestLookupInsert(t *testing.T) {
	tl := New(config.TLBConfig{Entries: 16, Assoc: 4})
	if tl.Lookup(0x1000) {
		t.Error("cold TLB should miss")
	}
	if !tl.Lookup(0x1800) {
		t.Error("same page should hit after insert")
	}
	if tl.Misses != 1 || tl.Accesses != 2 {
		t.Errorf("counters: %d misses, %d accesses", tl.Misses, tl.Accesses)
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	tl := New(config.TLBConfig{Entries: 4, Assoc: 1})
	// Pages 0 and 4 conflict in a 4-set direct-mapped TLB.
	tl.Lookup(0 << 12)
	tl.Lookup(4 << 12)
	if tl.Lookup(0 << 12) {
		t.Error("conflicting page should have evicted page 0")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	m := config.Default()
	h := NewHierarchy(m)
	addr := uint64(0x12345000)
	// Cold: L1 miss, L2 miss → L2 latency + walk.
	if got := h.Translate(addr, false); got != uint64(m.L2TLB.Latency+m.PageWalkLat) {
		t.Errorf("cold translate = %d", got)
	}
	// Warm: L1 hit → 0 (Table 2: L1 TLB latency folded into L1 cache).
	if got := h.Translate(addr, false); got != 0 {
		t.Errorf("warm translate = %d", got)
	}
	// Instruction-side is independent: still cold for the I-TLB, but the
	// L2 TLB is now warm → only the L2 TLB latency.
	if got := h.Translate(addr, true); got != uint64(m.L2TLB.Latency) {
		t.Errorf("I-side translate = %d", got)
	}
}

func TestL2TLBBacksL1(t *testing.T) {
	m := config.Default()
	h := NewHierarchy(m)
	// Fill the direct-mapped L1 D-TLB set with a conflicting page, then
	// return: first translate warms both levels, conflict evicts L1,
	// retry hits L2 only.
	a := uint64(0x40000000)
	conflict := a + uint64(m.L1DTLB.Entries)<<12
	h.Translate(a, false)
	h.Translate(conflict, false)
	if got := h.Translate(a, false); got != uint64(m.L2TLB.Latency) {
		t.Errorf("L2 TLB hit = %d, want %d", got, m.L2TLB.Latency)
	}
}
