// spsrdemo builds a small program by hand whose critical path is full of
// Table 1 idiom opportunities — booleans feeding adds, ands, conditional
// selects and branches — and shows what Speculative Strength Reduction
// does to it: instructions disappear at rename once their operands are
// predicted 0/1, shrinking IQ dispatches without hurting correctness.
//
//	go run ./examples/spsrdemo
package main

import (
	"fmt"
	"log"

	tvp "repro"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/report"
)

// buildDemo returns a loop dominated by SpSR-reducible instructions: a
// stable flag loaded from memory participates in add/ands/csel/cbz every
// iteration.
func buildDemo() *prog.Program {
	b := prog.NewBuilder("spsrdemo")
	flag := b.AllocWords(1, 0) // the stable 0x0 every idiom keys on
	b.MovAddr(isa.X1, flag)
	b.MovImm(isa.X9, 1<<40)
	top := b.Here()

	b.Ldr(isa.X2, isa.X1, 0, 8) // stable 0 → value predicted
	// Table 1 food: every consumer below reduces when x2 is predicted 0.
	b.Add(isa.X3, isa.X4, isa.X2)          // → move-idiom
	b.Ands(isa.X5, isa.X2, isa.X4)         // → zero-idiom + NZCV{Z}
	b.Csel(isa.X6, isa.X3, isa.X5, isa.NE) // NZCV known → move-idiom
	skip := b.NewLabel()
	b.Cbz(isa.X2, skip) // → resolved at rename (taken)
	b.AddI(isa.X4, isa.X4, 99)
	b.Bind(skip)
	b.LslI(isa.X7, isa.X6, 2)
	b.Add(isa.X4, isa.X4, isa.X7)

	b.SubsI(isa.X9, isa.X9, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

func main() {
	fmt.Println("Table 1 idioms as the rename engine implements them:")
	for _, c := range report.Table1()[:8] {
		fmt.Printf("  %-26s %-22s → %s\n", c.Instruction, c.Operand, c.Reduction)
	}
	fmt.Println("  ... (run `tvpreport -table 1` for the full table)")
	fmt.Println()

	run := func(spsr bool) tvp.Result {
		res, err := tvp.Run(tvp.Options{
			Program:  buildDemo(),
			VP:       tvp.MVP,
			SpSR:     spsr,
			Warmup:   20_000,
			MaxInsts: 120_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	off, on := run(false), run(true)
	fmt.Printf("%-28s %12s %12s\n", "MVP, hand-built demo loop", "SpSR off", "SpSR on")
	fmt.Printf("%-28s %12.3f %12.3f\n", "IPC", off.Stats.IPC(), on.Stats.IPC())
	fmt.Printf("%-28s %12d %12d\n", "IQ dispatches", off.Stats.IQAdded, on.Stats.IQAdded)
	fmt.Printf("%-28s %12d %12d\n", "IQ issues", off.Stats.IQIssued, on.Stats.IQIssued)
	fmt.Printf("%-28s %12d %12d\n", "SpSR eliminations", off.Stats.SpSRElim, on.Stats.SpSRElim)
	fmt.Printf("%-28s %12d %12d\n", "  of which moves", off.Stats.SpSRMove, on.Stats.SpSRMove)
	fmt.Printf("%-28s %12d %12d\n", "  of which zero/one", off.Stats.SpSRZero+off.Stats.SpSROne, on.Stats.SpSRZero+on.Stats.SpSROne)
	fmt.Printf("%-28s %12d %12d\n", "  resolved branches", off.Stats.SpSRBranch, on.Stats.SpSRBranch)
	fmt.Printf("%-28s %12.2f%% %11.2f%%\n", "dyn. insts eliminated",
		100*off.Stats.ElimFraction(off.Stats.SpSRElim), 100*on.Stats.ElimFraction(on.Stats.SpSRElim))
	fmt.Println("\nAs in the paper (§6.2), SpSR's win is resource pressure, not raw IPC:")
	fmt.Printf("IQ dispatches drop by %.1f%% while committed work is identical.\n",
		100*(1-float64(on.Stats.IQAdded)/float64(off.Stats.IQAdded)))
}
