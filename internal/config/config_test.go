package config

import "testing"

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	m := Default()
	// The headline Table 2 numbers.
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"ROB", m.ROBSize, 315},
		{"IQ", m.IQSize, 92},
		{"LQ", m.LQSize, 74},
		{"SQ", m.SQSize, 53},
		{"INT PRF", m.IntPRF, 292},
		{"FP PRF", m.FPPRF, 292},
		{"fetch width", m.FetchWidth, 16},
		{"decode width", m.DecodeWidth, 8},
		{"rename width", m.RenameWidth, 8},
		{"issue width", m.IssueWidth, 15},
		{"TAGE tables", m.BPTables, 15},
		{"BTB entries", m.BTBEntries, 8192},
		{"RAS entries", m.RASEntries, 32},
		{"VTAGE tables", len(m.VP.TableLog2), 8},
		{"VP min hist", m.VP.MinHist, 2},
		{"VP max hist", m.VP.MaxHist, 128},
		{"silencing", m.VP.SilenceCycles, 250},
		{"L1D KB", m.L1D.SizeBytes >> 10, 128},
		{"L2 KB", m.L2.SizeBytes >> 10, 1024},
		{"L3 MB", m.L3.SizeBytes >> 20, 8},
		{"L1D load-to-use", m.L1D.LoadToUse, 4},
		{"L2 load-to-use", m.L2.LoadToUse, 12},
		{"L3 load-to-use", m.L3.LoadToUse, 37},
		{"SSIT", m.SSITEntries, 2048},
		{"LFST", m.LFSTEntries, 2048},
		{"stride degree", m.StrideDegree, 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m.VP.Mode != VPOff || m.SpSR || m.NineBitIdiom {
		t.Error("default machine must be the paper's baseline")
	}
	if !m.MoveElim || !m.ZeroOneIdiom {
		t.Error("baseline includes move and 0/1-idiom elimination (§5)")
	}
}

func TestFUPoolMatchesTable2(t *testing.T) {
	m := Default()
	count := func(cap uint32) int {
		n := 0
		for _, f := range m.FUs {
			if f.Classes&cap != 0 {
				n++
			}
		}
		return n
	}
	if got := count(CapIntALU); got != 6 {
		t.Errorf("simple ALUs = %d, want 6 (4 + 2 shared with mul)", got)
	}
	if got := count(CapIntMul); got != 2 {
		t.Errorf("IntMul pipes = %d, want 2", got)
	}
	if got := count(CapIntDiv); got != 1 {
		t.Errorf("IntDiv pipes = %d, want 1", got)
	}
	if got := count(CapFPALU); got != 4 {
		t.Errorf("FP pipes = %d, want 4 (3 + 1 with divider)", got)
	}
	if got := count(CapFPDiv); got != 1 {
		t.Errorf("FPDiv pipes = %d, want 1", got)
	}
	if got := count(CapLoad); got != 2 {
		t.Errorf("load pipes = %d, want 2", got)
	}
	if got := count(CapStore); got != 2 {
		t.Errorf("store pipes = %d, want 2", got)
	}
	for _, f := range m.FUs {
		if f.Classes&(CapIntDiv|CapFPDiv) != 0 && f.Pipelined {
			t.Errorf("%s: dividers are not pipelined in Table 2", f.Name)
		}
	}
}

func TestWithVP(t *testing.T) {
	for _, mode := range []VPMode{MVP, TVP, GVP} {
		m := Default().WithVP(mode)
		if m.VP.Mode != mode {
			t.Errorf("mode not applied")
		}
		wantNine := mode == TVP || mode == GVP
		if m.NineBitIdiom != wantNine {
			t.Errorf("%v: NineBitIdiom = %v (inlining hardware implies it)", mode, m.NineBitIdiom)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.FUs[0].Name = "mutated"
	b.VP.TableLog2[0] = 3
	if a.FUs[0].Name == "mutated" || a.VP.TableLog2[0] == 3 {
		t.Error("Clone must not share slices")
	}
}

func TestBudgetScaleClampsAndScales(t *testing.T) {
	m := Default().WithVPBudgetScale(1)
	for i, l := range m.VP.TableLog2 {
		if l != Default().VP.TableLog2[i]+1 {
			t.Errorf("table %d not scaled", i)
		}
	}
	tiny := Default().WithVPBudgetScale(-20)
	for _, l := range tiny.VP.TableLog2 {
		if l < 4 {
			t.Errorf("scale must clamp at 2^4, got 2^%d", l)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := func(mut func(*Machine)) *Machine {
		m := Default()
		mut(m)
		return m
	}
	cases := map[string]*Machine{
		"zero width":      bad(func(m *Machine) { m.FetchWidth = 0 }),
		"zero ROB":        bad(func(m *Machine) { m.ROBSize = 0 }),
		"tiny PRF":        bad(func(m *Machine) { m.IntPRF = 4 }),
		"no FUs":          bad(func(m *Machine) { m.FUs = nil }),
		"VP geometry":     bad(func(m *Machine) { m.VP.TagBits = m.VP.TagBits[:3] }),
		"MVP with 9-bit":  bad(func(m *Machine) { m.VP.Mode = MVP; m.NineBitIdiom = true }),
		"bad cache shape": bad(func(m *Machine) { m.L1D.SizeBytes = 100 }),
	}
	for name, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken configuration", name)
		}
	}
}

func TestVPModeString(t *testing.T) {
	names := map[VPMode]string{VPOff: "Baseline", MVP: "Min. VP", TVP: "Tar. VP", GVP: "Gen. VP"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 128 << 10, Assoc: 8, LineBytes: 64}
	if c.Sets() != 256 {
		t.Errorf("sets = %d, want 256", c.Sets())
	}
}
