package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestIssueScoreboardEquivalence: the wakeup scoreboard must be exact —
// the full stats.Sim block, run shape, and the CPI stack are bit-identical
// with the scoreboard on (producers push readiness into registered
// waiters) and off (the polling IQ scan), across the workload suite, the
// machine variants of skipConfigs (TVP inlined renames, GVP wide
// predictions with silent repair, SpSR early-resolved branches), and both
// cycle-skip settings (the scoreboard feeds trySkip its issue-clause
// bounds, so the interaction is part of the claim). CrossCheck is armed
// throughout: a scoreboard that stranded a waiter or reordered issue
// would desynchronize retirement and panic, not just miscount.
func TestIssueScoreboardEquivalence(t *testing.T) {
	for cfgName, cfg := range skipConfigs() {
		for _, skip := range []struct {
			name    string
			disable bool
		}{{"skip", false}, {"tick", true}} {
			for _, name := range workload.Names() {
				spec, err := workload.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(cfgName+"/"+skip.name+"/"+name, func(t *testing.T) {
					on := cfg.Clone()
					on.DisableCycleSkip = skip.disable
					off := on.Clone()
					off.DisableWakeupScoreboard = true

					con := New(on, spec.Build())
					con.EnableCPIStack()
					ron := con.Run(1000, 20000)
					coff := New(off, spec.Build())
					coff.EnableCPIStack()
					roff := coff.Run(1000, 20000)

					if ron.Cycles != roff.Cycles || ron.Committed != roff.Committed || ron.Halted != roff.Halted {
						t.Fatalf("run shape diverged: scoreboard (cycles=%d committed=%d halted=%v) vs polling (%d, %d, %v)",
							ron.Cycles, ron.Committed, ron.Halted, roff.Cycles, roff.Committed, roff.Halted)
					}
					if ron.Stats != roff.Stats {
						t.Errorf("stats diverged:\nscoreboard: %+v\n   polling: %+v", ron.Stats, roff.Stats)
					}
					if ron.CPI != roff.CPI {
						t.Errorf("CPI stack diverged:\nscoreboard: %+v\n   polling: %+v", ron.CPI, roff.CPI)
					}
				})
			}
		}
	}
}

// TestScoreboardDisabledUsesPollingLoop pins that the escape hatch really
// selects the polling structures (the scoreboard never populates iq, the
// polling loop never sets a readyMask bit), so the equivalence test above
// compares two genuinely different schedulers.
func TestScoreboardDisabledUsesPollingLoop(t *testing.T) {
	spec, err := workload.Get(workload.Names()[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.DisableWakeupScoreboard = true
	c := New(cfg, spec.Build())
	c.Run(0, 5000)
	var ready uint64
	for _, w := range c.readyMask {
		ready |= w
	}
	if c.useSB || ready != 0 || c.iqCnt != 0 {
		t.Fatalf("polling run touched scoreboard state: useSB=%v readyMask=%x iqCnt=%d", c.useSB, ready, c.iqCnt)
	}

	cfg2 := config.Default()
	c2 := New(cfg2, spec.Build())
	c2.Run(0, 5000)
	if !c2.useSB || len(c2.iq) != 0 {
		t.Fatalf("scoreboard run touched polling state: useSB=%v iq=%d", c2.useSB, len(c2.iq))
	}
}

// TestScoreboardPartialFlushWakeHints pins the flush-survivor treatment
// shared by both schedulers: after a partial (GVP tail) flush, surviving
// scheduler entries keep their cached wake bounds (iqWake / schedWake),
// which remain sound because concrete ready times never decrease. A GVP
// configuration with a tiny predictor makes wide-prediction flushes
// frequent; both schedulers and the polling hint path must agree exactly
// — this is the regression guard for the iqWake-hint-on-partial-flush
// audit.
func TestScoreboardPartialFlushWakeHints(t *testing.T) {
	for _, name := range workload.Names() {
		spec, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			gvp := config.Default()
			gvp.CrossCheck = true
			gvp.VP.Mode = config.GVP
			// Always-increment confidence: predictions saturate and get
			// used immediately, so wrong ones (hence partial flushes over
			// a populated IQ) are common in a short run.
			gvp.VP.FPCInvProb = 1

			run := func(m *config.Machine) (Result, *Core) {
				c := New(m, spec.Build())
				r := c.Run(500, 15000)
				return r, c
			}
			rsb, _ := run(gvp)
			poll := gvp.Clone()
			poll.DisableWakeupScoreboard = true
			rpoll, _ := run(poll)
			if rsb.Stats != rpoll.Stats || rsb.Cycles != rpoll.Cycles {
				t.Errorf("GVP flush-heavy run diverged between schedulers:\nscoreboard: %+v\n   polling: %+v", rsb.Stats, rpoll.Stats)
			}
			if rsb.Stats.VPFlushes == 0 && rpoll.Stats.VPFlushes == 0 && name == workload.Names()[0] {
				t.Logf("note: no VP flushes engaged on %s; hint path exercised only via memory-order flushes", name)
			}
		})
	}
}
