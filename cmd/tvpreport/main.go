// Command tvpreport regenerates the paper's tables and figures on the
// synthetic workload suite (see DESIGN.md's experiment index). With no
// selection flags it produces the full report used for EXPERIMENTS.md.
//
// Identical simulation points (workload, machine fingerprint, warmup,
// insts) are memoized across experiments, so e.g. the baseline runs
// shared by Figs. 2/3/5/6 and Table 3 are simulated once.
//
// Usage:
//
//	tvpreport                 # everything
//	tvpreport -fig 3          # one figure (1..6)
//	tvpreport -table 1        # one table (1..3)
//	tvpreport -storage        # §3.3 predictor storage model
//	tvpreport -ablation silencing|prefetch
//	tvpreport -insts 250000 -warmup 50000
//	tvpreport -nocache        # re-simulate every point (cache bypass)
//	tvpreport -cpistack       # top-down CPI stack, base vs TVP+SpSR
//	tvpreport -j 4            # bound the sweep worker pool (0 = all CPU cores)
//	tvpreport -json out/      # also write machine-readable run records
//	tvpreport -cpuprofile report.pprof -fig 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "regenerate one figure (1-6)")
		table      = flag.Int("table", 0, "regenerate one table (1-3)")
		storage    = flag.Bool("storage", false, "print the predictor storage model")
		ablation   = flag.String("ablation", "", "run an ablation: silencing|prefetch|dynsilence|validation")
		warm       = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		insts      = flag.Uint64("insts", 250_000, "measured instructions per run")
		nocache    = flag.Bool("nocache", false, "bypass the run memoization cache")
		cpistack   = flag.Bool("cpistack", false, "print the top-down CPI-stack cycle accounting (base vs TVP+SpSR)")
		workers    = flag.Int("j", 0, "concurrent simulation workers for sweeps (0 = all CPU cores); results are byte-identical at any -j")
		fastwarm   = flag.Bool("fastwarmup", false, "resume runs from a shared functional warmup checkpoint (cold microarch state; see README)")
		cacheStats = flag.Bool("cachestats", false, "print run-cache hit/miss counters on exit")
		jsonDir    = flag.String("json", "", "write machine-readable run records (one JSON file per point + sweep.json) into this directory")
		progress   = flag.Bool("progress", true, "print a live sweep heartbeat to stderr (runs done/total, cache recalls, MIPS, ETA)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *fig < 0 || *fig > 6 {
		fatal(fmt.Errorf("-fig %d out of range (want 1-6)", *fig))
	}
	if *table < 0 || *table > 3 {
		fatal(fmt.Errorf("-table %d out of range (want 1-3)", *table))
	}
	switch *ablation {
	case "", "silencing", "prefetch", "dynsilence", "validation":
	default:
		fatal(fmt.Errorf("unknown ablation %q (want silencing|prefetch|dynsilence|validation)", *ablation))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *workers < 0 {
		fatal(fmt.Errorf("-j %d out of range (want >= 0)", *workers))
	}
	cfg := report.Config{Warmup: *warm, Insts: *insts, NoCache: *nocache, FastWarmup: *fastwarm, Workers: *workers}
	if *progress {
		cfg.Heartbeat = obs.NewHeartbeat(os.Stderr)
		cfg.Heartbeat.SetWorkers(cfg.EffectiveWorkers())
	}
	if *jsonDir != "" {
		cfg.Obs = obs.NewSweepLog()
	}
	w := os.Stdout
	all := *fig == 0 && *table == 0 && !*storage && !*cpistack && *ablation == ""

	if all || *table == 2 {
		report.WriteTable2(w, config.Default())
		fmt.Fprintln(w)
	}
	if all || *storage {
		report.WriteStorage(w, config.Default())
		fmt.Fprintln(w)
	}
	if all || *table == 1 {
		report.WriteTable1(w, report.Table1())
		fmt.Fprintln(w)
	}
	if all || *fig == 1 {
		vs, err := report.Fig1(cfg, 20)
		if err != nil {
			fatal(err)
		}
		report.WriteFig1(w, vs)
		fmt.Fprintln(w)
	}
	if all || *fig == 2 {
		rows, mu, hi, err := report.Fig2(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteFig2(w, rows, mu, hi)
		fmt.Fprintln(w)
	}
	if all || *fig == 3 {
		rows, sum, err := report.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteFig3(w, rows, sum)
		fmt.Fprintln(w)
	}
	if all || *table == 3 {
		rows, err := report.Table3(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteTable3(w, rows)
		fmt.Fprintln(w)
	}
	if all || *fig == 4 {
		rows, mean, err := report.Fig4(cfg, config.MVP)
		if err != nil {
			fatal(err)
		}
		report.WriteFig4(w, "Fig. 4a — % dynamic instructions eliminated at rename (MVP + SpSR)", rows, mean)
		fmt.Fprintln(w)
		rows, mean, err = report.Fig4(cfg, config.TVP)
		if err != nil {
			fatal(err)
		}
		report.WriteFig4(w, "Fig. 4b — % dynamic instructions eliminated at rename (TVP + SpSR)", rows, mean)
		fmt.Fprintln(w)
	}
	if all || *fig == 5 {
		rows, geo, err := report.Fig5(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteFig5(w, rows, geo)
		fmt.Fprintln(w)
	}
	if all || *fig == 6 {
		rows, err := report.Fig6(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteFig6(w, rows)
		fmt.Fprintln(w)
	}
	if all || *cpistack {
		rows, err := report.CPIStacks(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteCPIStacks(w, rows)
		fmt.Fprintln(w)
	}
	if all || *ablation == "silencing" {
		// Window 0 is deliberately absent: without silencing the
		// refetched instruction immediately re-uses the same wrong
		// confident prediction and the machine livelocks, exactly as
		// §3.4.1 warns (see TestLivelockWithoutSilencing).
		rows, err := report.AblationSilencing(cfg, []int{15, 60, 250, 1000})
		if err != nil {
			fatal(err)
		}
		report.WriteSilencing(w, rows)
		fmt.Fprintln(w)
	}
	if all || *ablation == "prefetch" {
		rows, err := report.AblationPrefetch(cfg)
		if err != nil {
			fatal(err)
		}
		report.WritePrefetch(w, rows)
		fmt.Fprintln(w)
	}
	if all || *ablation == "dynsilence" {
		fixed, dynamic, err := report.AblationDynamicSilence(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteDynamicSilence(w, fixed, dynamic)
		fmt.Fprintln(w)
	}
	if all || *ablation == "validation" {
		sp, rd, err := report.AblationValidation(cfg)
		if err != nil {
			fatal(err)
		}
		report.WriteValidation(w, sp, rd)
		fmt.Fprintln(w)
	}

	if cfg.Heartbeat != nil {
		cfg.Heartbeat.Finish()
	}
	if cfg.Obs != nil {
		hits, misses := report.RunCacheCounters()
		if err := cfg.Obs.WriteDir(*jsonDir, hits, misses); err != nil {
			fatal(err)
		}
	}
	if *cacheStats {
		hits, misses := report.RunCacheCounters()
		fmt.Fprintf(os.Stderr, "run cache: %d hits, %d misses (%d unique points)\n", hits, misses, misses)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvpreport:", err)
	os.Exit(1)
}
