// Package sink is a detmap golden package configured as an output sink:
// every function here is output-path.
package sink

import "sort"

// bad leaks map iteration order straight into its result.
func bad(m map[int]int) []int {
	var out []int
	for _, v := range m { // want "range over map m in output-path function bad"
		out = append(out, v)
	}
	return out
}

// sorted is the collect-then-sort idiom: allowed.
func sorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// rebuild only writes through map indexes: order-insensitive, allowed.
func rebuild(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// prune deletes from a map while rebuilding another: allowed.
func prune(m, dead map[int]int) {
	for k := range dead {
		delete(m, k)
	}
}

// justified sums ints — commutative, so the suppression is sound.
func justified(m map[int]int) int {
	s := 0
	//tvplint:ignore detmap integer summation is commutative; order cannot reach the output
	for _, v := range m {
		s += v
	}
	return s
}

// unjustified carries a bare ignore without a reason: still flagged.
func unjustified(m map[int]int) int {
	s := 0
	//tvplint:ignore detmap // want "no justification"
	for _, v := range m { // want "range over map m in output-path function unjustified"
		s += v
	}
	return s
}
