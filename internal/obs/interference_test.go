package obs

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// TestTelemetryPureObservation is the zero-interference guarantee:
// attaching a Telemetry probe must not change a single counter, cycle or
// committed-instruction count of a run.
func TestTelemetryPureObservation(t *testing.T) {
	cfg := config.Default().WithVP(config.TVP).WithSpSR(true)
	const warmup, insts = 2_000, 30_000

	bare := pipeline.New(cfg, traceProgram(8_000)).Run(warmup, insts)

	probed := pipeline.New(cfg, traceProgram(8_000))
	tel := New(Config{Interval: 5_000})
	probed.SetProbe(tel)
	res := probed.Run(warmup, insts)

	if !reflect.DeepEqual(bare.Stats, res.Stats) {
		t.Errorf("stats differ with probe attached:\nbare:   %+v\nprobed: %+v", bare.Stats, res.Stats)
	}
	if bare.Cycles != res.Cycles || bare.Committed != res.Committed {
		t.Errorf("timing differs with probe: cycles %d vs %d, committed %d vs %d",
			bare.Cycles, res.Cycles, bare.Committed, res.Committed)
	}
}

// TestTelemetryIntervalCoverage checks the acceptance rule: at least one
// interval sample per sampling period of post-warmup execution, and the
// interval deltas add back up to the run totals.
func TestTelemetryIntervalCoverage(t *testing.T) {
	cfg := config.Default()
	const warmup, insts, every = 2_000, 30_000, 5_000

	core := pipeline.New(cfg, traceProgram(8_000))
	tel := New(Config{Interval: every})
	core.SetProbe(tel)
	res := core.Run(warmup, insts)

	samples := tel.Samples()
	if want := int(insts / every); len(samples) < want {
		t.Fatalf("got %d interval samples, want >= %d", len(samples), want)
	}
	var sum stats.Sim
	sumv := reflect.ValueOf(&sum).Elem()
	for _, sm := range samples {
		dv := reflect.ValueOf(sm.Delta)
		for i := 0; i < dv.NumField(); i++ {
			sumv.Field(i).SetUint(sumv.Field(i).Uint() + dv.Field(i).Uint())
		}
	}
	if !reflect.DeepEqual(sum, res.Stats) {
		t.Errorf("interval deltas do not sum to totals:\nsum:    %+v\ntotals: %+v", sum, res.Stats)
	}
	for i, sm := range samples {
		if sm.EndInst <= sm.StartInst {
			t.Errorf("sample %d: empty interval [%d,%d)", i, sm.StartInst, sm.EndInst)
		}
		if i > 0 && sm.StartInst != samples[i-1].EndInst {
			t.Errorf("sample %d: gap after %d, starts at %d", i, samples[i-1].EndInst, sm.StartInst)
		}
	}
	if samples[0].StartInst != warmup {
		t.Errorf("series starts at %d, want warmup boundary %d", samples[0].StartInst, warmup)
	}
}

// TestTelemetryAttributionMatchesCounters ties the attribution tables to
// the post-warmup counter totals on a real run.
func TestTelemetryAttributionMatchesCounters(t *testing.T) {
	cfg := config.Default()
	core := pipeline.New(cfg, traceProgram(8_000))
	tel := New(Config{Interval: 10_000})
	core.SetProbe(tel)
	res := core.Run(1_000, 25_000)

	rec := tel.Record(RunMeta{Workload: "trace", Cfg: cfg, Warmup: 1_000, Insts: 25_000}, res.Stats)
	sumTable := func(es []PCCount) (n uint64) {
		for _, e := range es {
			n += e.Count
		}
		return
	}
	st := res.Stats
	if got, want := sumTable(rec.Attribution.BranchMispredicts), st.BranchMispredicts+st.RASMispreds+st.IndirectMispreds; got != want {
		t.Errorf("branch mispredict attribution %d, counters %d", got, want)
	}
	if got, want := sumTable(rec.Attribution.L1DMisses), st.L1DMisses; got != want {
		t.Errorf("L1D miss attribution %d, counter %d", got, want)
	}
	if got, want := sumTable(rec.Attribution.VPFlushes), st.VPFlushes; got != want {
		t.Errorf("VP flush attribution %d, counter %d", got, want)
	}
	for _, e := range rec.Attribution.L1DMisses {
		if e.Disasm == "" {
			t.Errorf("L1D entry %#x missing disassembly", e.PC)
		}
	}
}
