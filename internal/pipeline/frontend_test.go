package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

// runProg builds, runs to completion, and returns the result.
func runProg(t *testing.T, cfg *config.Machine, build func(b *prog.Builder)) Result {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	res := New(cfg, b.Build()).Run(0, 1<<62)
	if !res.Halted {
		t.Fatal("program did not halt")
	}
	return res
}

// straightLine emits a loop of independent single-cycle ALU work.
func straightLine(b *prog.Builder, iters int64, body func(b *prog.Builder)) {
	b.MovImm(isa.X9, uint64(iters))
	top := b.Here()
	body(b)
	b.SubsI(isa.X9, isa.X9, 1)
	b.BCond(isa.NE, top)
	b.Halt()
}

func TestTakenBranchCostsFetchBubble(t *testing.T) {
	// Loop A: straight-line body. Loop B: same work but split by an
	// unconditional taken branch. B must be measurably slower per
	// iteration (the 1-cycle taken-branch bubble).
	cfg := config.Default()
	a := runProg(t, cfg, func(b *prog.Builder) {
		straightLine(b, 20000, func(b *prog.Builder) {
			for i := 0; i < 6; i++ {
				b.AddI(isa.Reg(i), isa.Reg(i), 1)
			}
		})
	})
	bres := runProg(t, cfg, func(b *prog.Builder) {
		straightLine(b, 20000, func(b *prog.Builder) {
			for i := 0; i < 3; i++ {
				b.AddI(isa.Reg(i), isa.Reg(i), 1)
			}
			l := b.NewLabel()
			b.B(l)
			b.Bind(l)
			for i := 3; i < 6; i++ {
				b.AddI(isa.Reg(i), isa.Reg(i), 1)
			}
		})
	})
	if bres.Cycles <= a.Cycles {
		t.Errorf("taken branch cost nothing: %d vs %d cycles", bres.Cycles, a.Cycles)
	}
}

func TestUnpredictableBranchesHurt(t *testing.T) {
	cfg := config.Default()
	mk := func(random bool) Result {
		return runProg(t, cfg, func(b *prog.Builder) {
			b.MovImm(isa.X28, 12345)
			b.MovImm(isa.X27, 6364136223846793005)
			straightLine(b, 30000, func(b *prog.Builder) {
				b.Mul(isa.X28, isa.X28, isa.X27)
				b.AddI(isa.X28, isa.X28, 7)
				skip := b.NewLabel()
				if random {
					b.LsrI(isa.X1, isa.X28, 41)
					b.Tbz(isa.X1, 0, skip)
				} else {
					b.Tbz(isa.XZR, 0, skip) // always taken: learned
				}
				b.AddI(isa.X2, isa.X2, 1)
				b.Bind(skip)
			})
		})
	}
	pred, rand := mk(false), mk(true)
	if rand.Stats.BranchMispredicts < 10000 {
		t.Errorf("LCG branch mispredicted only %d times", rand.Stats.BranchMispredicts)
	}
	if pred.Stats.BranchMispredicts > 200 {
		t.Errorf("static branch mispredicted %d times", pred.Stats.BranchMispredicts)
	}
	if rand.Cycles < pred.Cycles*3/2 {
		t.Errorf("mispredictions too cheap: %d vs %d cycles", rand.Cycles, pred.Cycles)
	}
}

func TestCallsReturnViaRAS(t *testing.T) {
	res := runProg(t, config.Default(), func(b *prog.Builder) {
		over := b.NewLabel()
		fn := b.NewLabel()
		b.B(over)
		b.Bind(fn)
		b.AddI(isa.X1, isa.X1, 1)
		b.Ret()
		b.Bind(over)
		straightLine(b, 20000, func(b *prog.Builder) {
			b.Bl(fn)
			b.Bl(fn)
		})
	})
	if res.Stats.RASMispreds > 20 {
		t.Errorf("RAS mispredicted %d balanced call/returns", res.Stats.RASMispreds)
	}
}

func TestDividerContention(t *testing.T) {
	// Back-to-back independent divides serialize on the single
	// unpipelined divider: per-iteration time ≈ 2 × IntDivLat.
	cfg := config.Default()
	res := runProg(t, cfg, func(b *prog.Builder) {
		b.MovImm(isa.X1, 1000)
		b.MovImm(isa.X2, 7)
		straightLine(b, 3000, func(b *prog.Builder) {
			b.Sdiv(isa.X3, isa.X1, isa.X2) // independent of each other
			b.Sdiv(isa.X4, isa.X1, isa.X2)
		})
	})
	perIter := float64(res.Cycles) / 3000
	if perIter < 2*float64(cfg.IntDivLat)*0.9 {
		t.Errorf("two divides per iteration took %.1f cycles; unpipelined divider should serialize to ≈%d",
			perIter, 2*cfg.IntDivLat)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately reloaded: must be far cheaper than an L2 miss
	// and must not cause memory-order flushes (the load sees the store's
	// address in the SQ).
	res := runProg(t, config.Default(), func(b *prog.Builder) {
		buf := b.AllocWords(4, 0)
		b.MovAddr(isa.X1, buf)
		straightLine(b, 20000, func(b *prog.Builder) {
			b.Str(isa.X9, isa.X1, 0, 8)
			b.Ldr(isa.X2, isa.X1, 0, 8)
			b.Add(isa.X3, isa.X3, isa.X2)
		})
	})
	if res.Stats.MemOrderFlushes > 100 {
		t.Errorf("forwarding pattern caused %d order flushes", res.Stats.MemOrderFlushes)
	}
	perIter := float64(res.Cycles) / 20000
	if perIter > 20 {
		t.Errorf("store→load iteration took %.1f cycles; forwarding broken?", perIter)
	}
}

func TestIndirectBranchPredictionLearns(t *testing.T) {
	res := runProg(t, config.Default(), func(b *prog.Builder) {
		tbl := b.Alloc(8*2, 8)
		b.MovAddr(isa.X1, tbl)
		b.MovImm(isa.X9, 20000)
		top := b.Here()
		tgt := b.NewLabel()
		join := b.NewLabel()
		b.SetWordLabel(tbl, tgt)
		b.Ldr(isa.X2, isa.X1, 0, 8)
		b.Br(isa.X2) // monomorphic indirect branch
		b.Bind(tgt)
		b.AddI(isa.X3, isa.X3, 1)
		b.B(join)
		b.Bind(join)
		b.SubsI(isa.X9, isa.X9, 1)
		b.BCond(isa.NE, top)
		b.Halt()
	})
	if float64(res.Stats.IndirectMispreds) > 0.2*20000 {
		t.Errorf("monomorphic indirect branch mispredicted %d/20000", res.Stats.IndirectMispreds)
	}
}

func TestFPLatencies(t *testing.T) {
	// A serial FMADD chain is bound by FPMacLat per link.
	cfg := config.Default()
	res := runProg(t, cfg, func(b *prog.Builder) {
		b.MovImm(isa.X1, 3)
		b.Scvtf(8, isa.X1)
		b.Scvtf(9, isa.X1)
		b.Scvtf(10, isa.X1)
		straightLine(b, 5000, func(b *prog.Builder) {
			b.Fmadd(8, 8, 9, 10)
			b.Fmadd(8, 8, 9, 10)
		})
	})
	perIter := float64(res.Cycles) / 5000
	want := 2 * float64(cfg.FPMacLat)
	if perIter < want*0.9 || perIter > want*1.6 {
		t.Errorf("FMADD chain: %.2f cycles/iter, want ≈ %.0f", perIter, want)
	}
}

func TestLoadLatencyL1(t *testing.T) {
	// A carried pointer chase over a single hot line: per-iteration time
	// ≈ AGU + L1 load-to-use.
	cfg := config.Default()
	res := runProg(t, cfg, func(b *prog.Builder) {
		node := b.Alloc(64, 64)
		b.SetWord(node, node)
		b.MovAddr(isa.X1, node)
		straightLine(b, 20000, func(b *prog.Builder) {
			b.Ldr(isa.X1, isa.X1, 0, 8)
		})
	})
	perIter := float64(res.Cycles) / 20000
	want := float64(cfg.L1D.LoadToUse + 1)
	if perIter < want*0.9 || perIter > want*1.5 {
		t.Errorf("L1 chase: %.2f cycles/iter, want ≈ %.0f", perIter, want)
	}
}

func TestROBLimitsWindow(t *testing.T) {
	// With a long-latency carried chase, shrinking the ROB below one
	// chase round-trip of independent filler must reduce IPC.
	big := config.Default()
	small := config.Default()
	small.ROBSize = 32
	small.IQSize = 16
	// Independent long-latency misses (streaming over a DRAM-sized
	// region): memory-level parallelism is bounded by how many loads fit
	// in the instruction window.
	build := func(b *prog.Builder) {
		base := b.Alloc(1<<20, 64)
		b.MovAddr(isa.X2, base)
		straightLine(b, 800, func(b *prog.Builder) {
			b.LdrPost(isa.X3, isa.X2, 1024, 8) // independent miss
			b.Add(isa.X4, isa.X4, isa.X3)
			for i := 0; i < 6; i++ {
				r := isa.Reg(12 + i) // keep clear of the X9 loop counter
				b.AddI(r, r, 1)
			}
		})
	}
	a := runProg(t, big, build)
	bres := runProg(t, small, build)
	if bres.Stats.IPC() >= a.Stats.IPC() {
		t.Errorf("small window IPC %.3f ≥ big window %.3f", bres.Stats.IPC(), a.Stats.IPC())
	}
}
