// Command tvpsim runs one workload (or the whole suite) on a chosen
// machine configuration and prints the headline statistics. It is the
// interactive companion to cmd/tvpreport, which regenerates the paper's
// tables and figures.
//
// Usage:
//
//	tvpsim -workload 602_gcc_s_1 -vp tvp -spsr -insts 300000
//	tvpsim -all -vp gvp
//	tvpsim -workload 602_gcc_s_1 -vp tvp -json > run.ndjson
//	tvpsim -workload 602_gcc_s_1 -vp tvp -cpistack
//	tvpsim -workload 602_gcc_s_1 -konata trace.log
//	tvpsim -verify prog.tvpb
//	tvpsim -load prog.tvpb -vp tvp
//	tvpsim -list
//
// -verify statically lints a TVPB-encoded binary (internal/isa/verify)
// and exits nonzero on any Error-severity finding without simulating.
// -load ingests a binary through the same verifier gate and, if it is
// admitted, simulates it with the shadow-emulator retire checker
// forced on and prints the functional architectural hash alongside the
// usual statistics row — a rejected binary exits nonzero with the
// structured diagnostics on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	tvp "repro"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa/verify"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

func parseVP(s string) (tvp.VPMode, error) {
	switch strings.ToLower(s) {
	case "", "off", "none", "baseline":
		return tvp.VPOff, nil
	case "mvp", "min":
		return tvp.MVP, nil
	case "tvp", "tar":
		return tvp.TVP, nil
	case "gvp", "gen":
		return tvp.GVP, nil
	}
	return tvp.VPOff, fmt.Errorf("unknown VP mode %q (want off|mvp|tvp|gvp)", s)
}

// runCompare runs baseline, MVP, TVP and GVP on each workload and prints
// per-benchmark speedups plus coverage, mirroring the paper's Fig. 3.
// It returns the number of failed runs.
func runCompare(names []string, spsr bool, warm, insts uint64, xcheck bool) int {
	modes := []tvp.VPMode{tvp.VPOff, tvp.MVP, tvp.TVP, tvp.GVP}
	var opts []tvp.Options
	for _, n := range names {
		for _, m := range modes {
			opts = append(opts, tvp.Options{Workload: n, VP: m, SpSR: spsr && m != tvp.VPOff, Warmup: warm, MaxInsts: insts, CrossCheck: xcheck})
		}
	}
	results, errs := tvp.RunMany(opts)
	fmt.Printf("%-22s %8s | %8s %7s | %8s %7s | %8s %7s\n",
		"workload", "baseIPC", "MVP%", "cov%", "TVP%", "cov%", "GVP%", "cov%")
	var sp [3][]float64
	nerr := 0
	for i, n := range names {
		row := results[i*4 : i*4+4]
		bad := false
		for j := 0; j < 4; j++ {
			if errs[i*4+j] != nil {
				fmt.Printf("%-22s error: %v\n", n, errs[i*4+j])
				nerr++
				bad = true
			}
		}
		if bad {
			continue
		}
		base := row[0].Stats.IPC()
		fmt.Printf("%-22s %8.3f |", n, base)
		for j := 1; j < 4; j++ {
			stj := &row[j].Stats
			up := (stj.IPC()/base - 1) * 100
			sp[j-1] = append(sp[j-1], up)
			fmt.Printf(" %+8.2f %7.2f |", up, 100*stj.VPCoverage())
		}
		fmt.Println()
	}
	fmt.Printf("%-22s %8s |", "geomean", "")
	for j := 0; j < 3; j++ {
		if len(sp[j]) == 0 {
			fmt.Printf(" %8s %7s |", "-", "")
			continue
		}
		g := 1.0
		for _, v := range sp[j] {
			g *= 1 + v/100
		}
		g = (pow(g, 1/float64(len(sp[j]))) - 1) * 100
		fmt.Printf(" %+8.2f %7s |", g, "")
	}
	fmt.Println()
	return nerr
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	// crude but dependency-free: exp(y*ln(x)) via math
	return math.Pow(x, y)
}

// runInstrumented simulates the named workloads serially with telemetry
// attached: interval sampling and per-PC attribution always; a Kanata
// trace when konataPath is non-empty. With jsonOut it writes one
// obs.RunRecord per workload as NDJSON on stdout; otherwise it prints
// the usual human table rows. Returns the number of failed runs.
func runInstrumented(names []string, mode tvp.VPMode, spsr bool, warm, insts uint64, interval uint64, topk int, jsonOut bool, konataPath string, xcheck bool) int {
	cfg := config.Default().WithVP(mode).WithSpSR(spsr)
	cfg.CrossCheck = xcheck
	enc := json.NewEncoder(os.Stdout)
	if !jsonOut {
		printHeader()
	}
	nerr := 0
	for _, n := range names {
		spec, err := workload.Get(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvpsim:", err)
			nerr++
			continue
		}
		core := pipeline.New(cfg, spec.Build())
		tel := obs.New(obs.Config{Interval: interval, TopK: topk})
		core.SetProbe(tel)
		var konata *obs.Konata
		if konataPath != "" {
			f, err := os.Create(konataPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tvpsim:", err)
				return nerr + 1
			}
			defer f.Close()
			konata = obs.NewKonata(f, 0)
			core.SetTracer(konata)
		}
		res := core.Run(warm, insts)
		if konata != nil {
			if err := konata.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tvpsim:", err)
				nerr++
			}
		}
		rec := tel.Record(obs.RunMeta{
			Workload: n, Cfg: cfg, Warmup: warm, Insts: insts,
		}, res.Stats)
		if jsonOut {
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "tvpsim:", err)
				nerr++
			}
		} else {
			printRow(n, &res.Stats)
		}
	}
	return nerr
}

// runCPIStack simulates the named workloads with commit-slot accounting
// armed and prints the top-down CPI stack: the percent of post-warmup
// commit slots per bucket (each row sums to 100% — the accounting is an
// exact decomposition of cycles × commit width). Returns the number of
// failed runs.
func runCPIStack(names []string, mode tvp.VPMode, spsr bool, warm, insts uint64, xcheck bool) int {
	cfg := config.Default().WithVP(mode).WithSpSR(spsr)
	cfg.CrossCheck = xcheck
	fmt.Printf("%-22s %8s", "workload", "IPC")
	for _, b := range (&stats.CPIStack{}).Buckets() {
		fmt.Printf(" %8s", b.Name)
	}
	fmt.Println()
	nerr := 0
	for _, n := range names {
		spec, err := workload.Get(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvpsim:", err)
			nerr++
			continue
		}
		core := pipeline.New(cfg, spec.Build())
		core.EnableCPIStack()
		res := core.Run(warm, insts)
		fmt.Printf("%-22s %8.3f", n, res.Stats.IPC())
		total := float64(res.CPI.Total())
		for _, b := range res.CPI.Buckets() {
			p := 0.0
			if total > 0 {
				p = 100 * float64(b.Slots) / total
			}
			fmt.Printf(" %8.3f", p)
		}
		fmt.Println()
	}
	return nerr
}

// runPipetrace attaches a pipeline-view tracer and simulates just far
// enough to print the first n committed µops.
func runPipetrace(name string, mode tvp.VPMode, spsr bool, n int) {
	spec, err := workload.Get(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		os.Exit(2)
	}
	cfg := config.Default().WithVP(mode).WithSpSR(spsr)
	core := pipeline.New(cfg, spec.Build())
	core.SetTracer(pipeline.NewPipeview(os.Stdout, n))
	core.Run(0, uint64(n)+64)
}

// runVerifyOnly statically verifies a TVPB container and prints every
// finding (Info/Warn/Error). Exit status: 0 admitted, 2 rejected.
func runVerifyOnly(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		return 2
	}
	p, res := verify.Binary(data, verify.Options{})
	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if !res.OK() {
		fmt.Printf("%s: REJECTED (%d error finding(s))\n", path, len(res.Errors()))
		return 2
	}
	fmt.Printf("%s: OK — %s, %d instructions verified in %d memory round(s)\n",
		path, p.Name, len(p.Code), res.MemIters)
	return 0
}

// runLoad ingests a TVPB container through the verifier gate and, when
// admitted, simulates it with the retire cross-checker forced on. The
// functional architectural hash over the simulated instruction window
// is printed so two hosts running the same binary can diff one line.
func runLoad(path string, mode tvp.VPMode, spsr bool, warm, insts uint64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		return 2
	}
	p, res, err := workload.FromEncoded(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		for _, d := range res.Errors() {
			fmt.Fprintln(os.Stderr, d)
		}
		return 2
	}
	for _, d := range res.Diags {
		fmt.Fprintln(os.Stderr, d) // surviving Warn/Info lint findings
	}
	// Ingested binaries always run against the shadow-emulator oracle:
	// the verifier proves memory safety and termination, the oracle
	// proves the timing model retires the same architectural state.
	r, err := tvp.Run(tvp.Options{Program: p, VP: mode, SpSR: spsr,
		Warmup: warm, MaxInsts: insts, CrossCheck: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		return 1
	}
	e := emu.New(p)
	e.Run(warm+insts, nil)
	printHeader()
	printRow(r.Workload, &r.Stats)
	fmt.Printf("archhash %#016x over %d functionally executed instructions\n",
		e.ArchHash(), e.Executed())
	return 0
}

func main() {
	var (
		wl      = flag.String("workload", "", "workload name (see -list)")
		all     = flag.Bool("all", false, "run the full suite")
		list    = flag.Bool("list", false, "list workload names and exit")
		vpFlag  = flag.String("vp", "off", "value prediction flavor: off|mvp|tvp|gvp")
		spsr    = flag.Bool("spsr", false, "enable speculative strength reduction")
		warm    = flag.Uint64("warmup", 50_000, "warmup instructions")
		insts   = flag.Uint64("insts", 300_000, "measured instructions")
		compare = flag.Bool("compare", false, "run baseline+MVP+TVP+GVP and print speedups")
		cpistk  = flag.Bool("cpistack", false, "print the top-down CPI-stack bucket breakdown (% of commit slots)")
		ptrace  = flag.Int("pipetrace", 0, "print an O3-pipeview-style trace of the first N committed µops")
		jsonOut = flag.Bool("json", false, "emit one machine-readable obs.RunRecord per workload as NDJSON on stdout")
		konata  = flag.String("konata", "", "write a Kanata (Konata viewer) pipeline trace to this file (single workload)")
		intervl = flag.Uint64("interval", obs.DefaultInterval, "telemetry sampling interval in committed instructions (-json/-konata)")
		topk    = flag.Int("topk", obs.DefaultTopK, "entries per per-PC attribution table in -json records")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
		xcheck  = flag.Bool("crosscheck", false, "arm the shadow-emulator retire checker (gem5-style differential validation; panics on the first divergence)")
		load    = flag.String("load", "", "ingest a TVPB-encoded binary through the static verifier and simulate it (crosscheck forced on)")
		verifyP = flag.String("verify", "", "statically verify a TVPB-encoded binary and exit (no simulation)")
	)
	flag.Parse()

	// Exit via this first-registered defer so the profile-writing defers
	// below still run before the process terminates on failure.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvpsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tvpsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tvpsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tvpsim:", err)
			}
		}()
	}

	if *compare {
		if *jsonOut || *konata != "" {
			fmt.Fprintln(os.Stderr, "tvpsim: -json/-konata cannot be combined with -compare")
			os.Exit(2)
		}
		names := tvp.Benchmarks()
		if !*all && *wl != "" {
			names = []string{*wl}
		}
		if runCompare(names, *spsr, *warm, *insts, *xcheck) > 0 {
			exitCode = 1
		}
		return
	}

	if *list {
		for _, n := range tvp.Benchmarks() {
			fmt.Println(n)
		}
		return
	}
	if *verifyP != "" {
		exitCode = runVerifyOnly(*verifyP)
		return
	}
	mode, err := parseVP(*vpFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpsim:", err)
		os.Exit(2)
	}
	if *load != "" {
		exitCode = runLoad(*load, mode, *spsr, *warm, *insts)
		return
	}

	names := []string{*wl}
	if *all {
		names = tvp.Benchmarks()
	} else if *wl == "" {
		fmt.Fprintln(os.Stderr, "tvpsim: need -workload or -all (or -list)")
		os.Exit(2)
	}

	if *ptrace > 0 {
		if len(names) != 1 {
			fmt.Fprintln(os.Stderr, "tvpsim: -pipetrace needs a single -workload")
			os.Exit(2)
		}
		runPipetrace(names[0], mode, *spsr, *ptrace)
		return
	}

	if *cpistk {
		if *jsonOut || *konata != "" {
			fmt.Fprintln(os.Stderr, "tvpsim: -json/-konata cannot be combined with -cpistack")
			os.Exit(2)
		}
		if runCPIStack(names, mode, *spsr, *warm, *insts, *xcheck) > 0 {
			exitCode = 1
		}
		return
	}

	if *jsonOut || *konata != "" {
		if *konata != "" && len(names) != 1 {
			fmt.Fprintln(os.Stderr, "tvpsim: -konata needs a single -workload")
			os.Exit(2)
		}
		if runInstrumented(names, mode, *spsr, *warm, *insts, *intervl, *topk, *jsonOut, *konata, *xcheck) > 0 {
			exitCode = 1
		}
		return
	}

	opts := make([]tvp.Options, len(names))
	for i, n := range names {
		opts[i] = tvp.Options{Workload: n, VP: mode, SpSR: *spsr, Warmup: *warm, MaxInsts: *insts, CrossCheck: *xcheck}
	}
	results, errs := tvp.RunMany(opts)

	printHeader()
	for i, r := range results {
		if errs[i] != nil {
			fmt.Printf("%-22s error: %v\n", names[i], errs[i])
			exitCode = 1
			continue
		}
		printRow(r.Workload, &r.Stats)
	}
}

func printHeader() {
	fmt.Printf("%-22s %8s %8s %7s %7s %7s %7s %8s %8s\n",
		"workload", "IPC", "uops/in", "MPKI", "L1DMPKI", "VPcov%", "VPacc%", "elim%", "spsr%")
}

func printRow(name string, st *tvp.Stats) {
	elim := st.ElimFraction(st.ZeroIdiomElim+st.OneIdiomElim+st.MoveElim+st.NineBitElim) * 100
	fmt.Printf("%-22s %8.3f %8.3f %7.2f %7.2f %7.2f %7.3f %8.3f %8.3f\n",
		name, st.IPC(), st.UopsPerInst(), st.BranchMPKI(), st.L1DMPKI(),
		100*st.VPCoverage(), 100*st.VPAccuracy(), elim, 100*st.ElimFraction(st.SpSRElim))
}
