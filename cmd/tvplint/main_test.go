package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverFailsOnBadModule seeds a module with a fingerprint-poisoning
// config field and a wall-clock read in a core package and checks the
// driver reports both (main exits 1 whenever run returns findings).
func TestDriverFailsOnBadModule(t *testing.T) {
	var out strings.Builder
	n, err := run(filepath.Join("testdata", "badmod"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("expected at least 2 findings on the seeded bad module, got %d:\n%s", n, out.String())
	}
	for _, needle := range []string{"fingerprintsafe", "nondet"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("driver output missing %s finding:\n%s", needle, out.String())
		}
	}
}

// TestDriverCleanOnGoodModule checks the zero-findings path on a seeded
// clean module.
func TestDriverCleanOnGoodModule(t *testing.T) {
	var out strings.Builder
	n, err := run(filepath.Join("testdata", "goodmod"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("expected no findings on the clean module, got %d:\n%s", n, out.String())
	}
}
