// Package stats2 is the statscomplete golden for missing pieces: clean
// counters but no Sub function, and no CPIStack block at all.
package stats2 // want "CPI block type CPIStack not found"

// Sim has no Sub: warmup exclusion silently breaks.
type Sim struct { // want "delta function Sub missing"
	Cycles uint64
	UOps   uint64
}
