package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

// refHolds is an independent truth table for condition evaluation.
func refHolds(c Cond, n, z, cc, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cc
	case CC:
		return !cc
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cc && !z
	case LS:
		return !cc || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	case AL:
		return true
	}
	return false
}

func TestCondHoldsExhaustive(t *testing.T) {
	for c := EQ; c <= AL; c++ {
		for bits := 0; bits < 16; bits++ {
			f := Flags(bits)
			want := refHolds(c, f.N(), f.Z(), f.C(), f.V())
			if got := c.Holds(f); got != want {
				t.Errorf("%v.Holds(%v) = %v, want %v", c, f, got, want)
			}
		}
	}
}

func TestCondInvert(t *testing.T) {
	for c := EQ; c < AL; c++ {
		inv := c.Invert()
		for bits := 0; bits < 16; bits++ {
			f := Flags(bits)
			if c.Holds(f) == inv.Holds(f) {
				t.Errorf("%v and its inverse %v agree on %v", c, inv, f)
			}
		}
	}
}

func TestInvertALPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Invert(AL) did not panic")
		}
	}()
	AL.Invert()
}

func TestFlagsString(t *testing.T) {
	if s := (FlagN | FlagZ).String(); s != "NZcv" {
		t.Errorf("flags string = %q, want NZcv", s)
	}
	if s := Flags(0).String(); s != "nzcv" {
		t.Errorf("flags string = %q, want nzcv", s)
	}
	if !ZeroResultFlags().Z() || ZeroResultFlags().N() || ZeroResultFlags().C() || ZeroResultFlags().V() {
		t.Errorf("ZeroResultFlags = %v, want Z only", ZeroResultFlags())
	}
}

func TestOpClassPartition(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop, HALT: ClassNop,
		ADD: ClassIntALU, ANDS: ClassIntALU, CSEL: ClassIntALU, MOVZ: ClassIntALU,
		MUL:  ClassIntMul,
		SDIV: ClassIntDiv, UDIV: ClassIntDiv,
		FADD: ClassFPALU, FCMP: ClassFPALU, SCVTF: ClassFPALU, FCVTZS: ClassFPALU,
		FMUL: ClassFPMul, FMADD: ClassFPMul,
		FDIV: ClassFPDiv,
		LDR:  ClassLoad, FLDR: ClassLoad,
		STR: ClassStore, FSTR: ClassStore,
		B: ClassBranch, BCOND: ClassBranch, CBZ: ClassBranch, RET: ClassBranch, BL: ClassBranch,
	}
	for op, want := range cases {
		if got := OpClass(op); got != want {
			t.Errorf("OpClass(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestFlagOps(t *testing.T) {
	for _, op := range []Op{ADDS, SUBS, ANDS, FCMP} {
		if !SetsFlags(op) {
			t.Errorf("SetsFlags(%v) = false", op)
		}
	}
	for _, op := range []Op{ADD, SUB, AND, MUL, LDR} {
		if SetsFlags(op) {
			t.Errorf("SetsFlags(%v) = true", op)
		}
	}
	for _, op := range []Op{BCOND, CSEL, CSINC, CSNEG} {
		if !ReadsFlags(op) {
			t.Errorf("ReadsFlags(%v) = false", op)
		}
	}
	if ReadsFlags(CBZ) {
		t.Error("CBZ does not read NZCV (it tests a register)")
	}
}

func TestBranchQueries(t *testing.T) {
	if !IsCondBranch(BCOND) || !IsCondBranch(TBNZ) || IsCondBranch(B) || IsCondBranch(RET) {
		t.Error("IsCondBranch misclassifies")
	}
	if !IsIndirect(RET) || !IsIndirect(BR) || IsIndirect(BL) {
		t.Error("IsIndirect misclassifies")
	}
}

func TestVPEligible(t *testing.T) {
	for _, tc := range []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: ADD, Rd: X3}, true},
		{Inst{Op: LDR, Rd: X3}, true},
		{Inst{Op: ADD, Rd: XZR}, false}, // no GPR result
		{Inst{Op: STR, Rd: X3}, false},  // stores don't produce a register
		{Inst{Op: BL}, false},           // branch-and-link excluded (§3.3)
		{Inst{Op: FADD, Rd: 3}, false},  // FP result
		{Inst{Op: BCOND}, false},
		{Inst{Op: CSINC, Rd: X5}, true},
	} {
		if got := tc.in.VPEligible(); got != tc.want {
			t.Errorf("VPEligible(%v) = %v, want %v", tc.in.String(), got, tc.want)
		}
	}
}

func TestWritesGPR(t *testing.T) {
	if (&Inst{Op: STR, Rd: X1, Mode: AddrPost}).WritesGPR() != true {
		t.Error("post-index store writes its base register")
	}
	if (&Inst{Op: STR, Rd: X1, Mode: AddrOff}).WritesGPR() {
		t.Error("plain store writes no GPR")
	}
	if !(&Inst{Op: BL}).WritesGPR() {
		t.Error("BL writes the link register")
	}
	if !(&Inst{Op: FCVTZS, Rd: X2}).WritesGPR() {
		t.Error("FCVTZS writes a GPR")
	}
	if (&Inst{Op: FADD, Rd: 2}).WritesGPR() {
		t.Error("FADD writes an FP register, not a GPR")
	}
}

func TestCrack(t *testing.T) {
	plain := Inst{Op: LDR, Rd: X0, Rn: X1, Mode: AddrOff}
	if CrackCount(&plain) != 1 {
		t.Errorf("plain load cracks to %d µops", CrackCount(&plain))
	}
	post := Inst{Op: LDR, Rd: X0, Rn: X1, Mode: AddrPost, Imm: 8}
	if CrackCount(&post) != 2 {
		t.Errorf("post-index load cracks to %d µops", CrackCount(&post))
	}
	uts := Crack(&post, nil)
	if len(uts) != 2 || uts[0].Kind != UOpMain || uts[1].Kind != UOpBaseUpdate {
		t.Errorf("post-index crack = %+v", uts)
	}
	if uts[1].Class != ClassIntALU {
		t.Errorf("base-update class = %v, want int-alu", uts[1].Class)
	}
	pre := Inst{Op: FSTR, Rd: 0, Rn: X1, Mode: AddrPre, Imm: -16}
	if CrackCount(&pre) != 2 {
		t.Error("pre-index FP store cracks to 2 µops")
	}
}

func TestRegString(t *testing.T) {
	if X7.String() != "x7" || XZR.String() != "xzr" {
		t.Error("register naming")
	}
	if Reg(3).FPString() != "d3" {
		t.Error("FP register naming")
	}
}

func TestInstStringSmoke(t *testing.T) {
	// Every op should disassemble to something non-empty and containing
	// its mnemonic.
	insts := []Inst{
		{Op: ADD, Rd: X0, Rn: X1, Rm: X2},
		{Op: SUB, Rd: X0, Rn: X1, Imm: 4, UseImm: true},
		{Op: UBFM, Rd: X0, Rn: X1, Imm: 3, Imm2: 7},
		{Op: MOVZ, Rd: X0, Imm: 42},
		{Op: MOVK, Rd: X0, Imm: 42, Imm2: 1},
		{Op: CSEL, Rd: X0, Rn: X1, Rm: X2, Cond: GT},
		{Op: LDR, Rd: X0, Rn: X1, Imm: 8, Size: 8, Mode: AddrOff},
		{Op: STR, Rd: X0, Rn: X1, Imm: 8, Size: 8, Mode: AddrPost},
		{Op: LDR, Rd: X0, Rn: X1, Rm: X2, Imm2: 3, Size: 8, Mode: AddrReg},
		{Op: BCOND, Cond: NE, Target: 5},
		{Op: CBZ, Rn: X3, Target: 9},
		{Op: TBNZ, Rn: X3, Imm: 17, Target: 9},
		{Op: RET, Rn: X30},
		{Op: FMADD, Rd: 0, Rn: 1, Rm: 2, Ra: 3},
		{Op: SCVTF, Rd: 0, Rn: X4},
		{Op: FCMP, Rn: 1, Rm: 2},
		{Op: NOP},
	}
	for i := range insts {
		s := insts[i].String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("bad disassembly for op %v: %q", insts[i].Op, s)
		}
	}
}

func TestIndirectString(t *testing.T) {
	// RET follows the ARM convention of leaving the link register
	// implicit; BR and nonstandard RET operands spell the register out.
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: RET, Rn: LR}, "ret"},
		{Inst{Op: RET, Rn: X5}, "ret x5"},
		{Inst{Op: BR, Rn: X16}, "br x16"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v disassembles to %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestWFormString(t *testing.T) {
	in := Inst{Op: ADD, Rd: X0, Rn: X1, Rm: X2, W: true}
	if s := in.String(); !strings.Contains(s, "w0") {
		t.Errorf("W-form should print w registers: %q", s)
	}
}

func TestCondPropertyInvertInvolution(t *testing.T) {
	f := func(b uint8) bool {
		c := Cond(b % 14) // EQ..LE
		return c.Invert().Invert() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
