// Package bp implements the frontend predictors of the simulated core: a
// TAGE conditional branch predictor (Seznec 2011), a set-associative BTB,
// a tagged indirect target cache, and a return address stack. It also
// exports the global/folded branch history machinery that the VTAGE value
// predictor (internal/vp) shares, since VTAGE indexes its tables with the
// same kind of geometric global-history hashes (Perais & Seznec 2014).
//
// Because the timing model simulates the correct path only (see
// DESIGN.md), history is updated with actual branch outcomes at prediction
// time, the standard trace-driven discipline: wrong-path history pollution
// is not modeled, and no history checkpoint/repair is needed.
package bp

import "math"

// HistoryBits is the capacity of the global history ring. It must exceed
// the longest history length any predictor table uses (640 in Table 2).
const HistoryBits = 1024

// GlobalHistory is a shift register of conditional branch directions, most
// recent first, backed by a ring so long histories are cheap.
type GlobalHistory struct {
	bits [HistoryBits / 64]uint64
	pos  int // position of the most recently inserted bit
}

// Push inserts the newest direction bit. Branchless: the ring size is a
// power of two, so position wrap is a mask, and the bit is cleared then
// OR-merged instead of taking a direction-dependent branch.
func (h *GlobalHistory) Push(taken bool) {
	h.pos = (h.pos + 1) & (HistoryBits - 1)
	w, b := h.pos>>6, uint(h.pos&63)
	var t uint64
	if taken {
		t = 1
	}
	h.bits[w] = h.bits[w]&^(1<<b) | t<<b
}

// Bit returns direction bit i, where 0 is the most recent. Masking the
// (possibly negative) two's-complement offset replaces the divide/branch
// modulo — this runs once per folded view per branch, the hottest loop in
// the predictor.
func (h *GlobalHistory) Bit(i int) uint64 {
	p := (h.pos - i) & (HistoryBits - 1)
	return h.bits[p>>6] >> (uint(p) & 63) & 1
}

// FoldedHistory incrementally maintains the XOR-fold of the newest
// histLen history bits down to width bits, the classic TAGE construction:
// pushing a bit XORs it in at the bottom and removes the bit leaving the
// window at its folded position. The geometry fields are narrow
// (histLen <= HistoryBits, width and outPos < 64) so the struct packs
// into 16 bytes — HistorySet.Push walks every view per branch, and the
// folds slice staying dense is what keeps that loop in cache.
type FoldedHistory struct {
	Folded  uint64
	histLen uint16
	width   uint8
	outPos  uint8 // position within the fold where the outgoing bit lands
}

// NewFolded returns a fold of histLen bits into width bits.
func NewFolded(histLen, width int) FoldedHistory {
	return FoldedHistory{histLen: uint16(histLen), width: uint8(width), outPos: uint8(histLen % width)}
}

// Update folds in the new direction bit; old must be the direction bit
// that is histLen pushes old (obtained from GlobalHistory.Bit before the
// push).
func (f *FoldedHistory) Update(newBit, oldBit uint64) {
	f.Folded = f.Folded<<1 | newBit
	f.Folded ^= oldBit << uint(f.outPos)
	f.Folded ^= f.Folded >> uint(f.width)
	f.Folded &= 1<<uint(f.width) - 1
}

// HistorySet bundles a global history with per-table folded views for
// indices and tags; both TAGE and VTAGE own one. Each view carries its
// own history length (FoldedHistory.histLen), so Push reads one dense
// array.
type HistorySet struct {
	Global GlobalHistory
	folds  []FoldedHistory

	// Outgoing-bit sharing: TAGE-style fold sets carry several views per
	// history length (index fold, tag folds), and the outgoing bit depends
	// only on the length. Push reads each unique length once into scratch
	// and fans it out through lenIdx.
	uniqLens []uint16 // deduplicated histLens, construction order
	lenIdx   []uint8  // per fold: index into uniqLens/scratch
	scratch  []uint64
}

// NewHistorySet creates folded views; folds[i] folds lens[i] bits into
// widths[i] bits.
func NewHistorySet(lens, widths []int) *HistorySet {
	if len(lens) != len(widths) {
		panic("bp: lens/widths mismatch")
	}
	hs := &HistorySet{
		folds:  make([]FoldedHistory, len(lens)),
		lenIdx: make([]uint8, len(lens)),
	}
	for i := range lens {
		hs.folds[i] = NewFolded(lens[i], widths[i])
		k := -1
		for j, u := range hs.uniqLens {
			if int(u) == lens[i] {
				k = j
				break
			}
		}
		if k < 0 {
			k = len(hs.uniqLens)
			hs.uniqLens = append(hs.uniqLens, uint16(lens[i]))
		}
		if k > 255 {
			panic("bp: too many distinct history lengths")
		}
		hs.lenIdx[i] = uint8(k)
	}
	hs.scratch = make([]uint64, len(hs.uniqLens))
	return hs
}

// Fold returns the current folded value of view i.
func (hs *HistorySet) Fold(i int) uint64 { return hs.folds[i].Folded }

// Push inserts a new direction bit, updating every folded view. The
// outgoing bit is read once per unique history length, not once per view.
func (hs *HistorySet) Push(taken bool) {
	var nb uint64
	if taken {
		nb = 1
	}
	scratch := hs.scratch
	for i, l := range hs.uniqLens {
		scratch[i] = hs.Global.Bit(int(l) - 1)
	}
	folds := hs.folds
	for i := range folds {
		folds[i].Update(nb, scratch[hs.lenIdx[i]])
	}
	hs.Global.Push(taken)
}

// GeometricLengths returns n history lengths forming a geometric series
// from minLen to maxLen inclusive (n >= 2), as used by TAGE and VTAGE.
func GeometricLengths(minLen, maxLen, n int) []int {
	if n == 1 {
		return []int{minLen}
	}
	out := make([]int, n)
	ratio := math.Pow(float64(maxLen)/float64(minLen), 1/float64(n-1))
	l := float64(minLen)
	prev := 0
	for i := 0; i < n; i++ {
		v := int(l + 0.5)
		if v <= prev {
			v = prev + 1
		}
		out[i] = v
		prev = v
		l *= ratio
	}
	out[n-1] = maxLen
	return out
}
