package obs

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// Config sizes one run's telemetry.
type Config struct {
	// Interval is the sampling period in committed instructions
	// (0 → DefaultInterval).
	Interval uint64
	// TopK is how many entries each attribution table reports
	// (<= 0 → DefaultTopK).
	TopK int
	// TableCap bounds how many PCs each attribution table tracks
	// (<= 0 → DefaultTableCap).
	TableCap int
}

// Telemetry is the per-run observer: it satisfies pipeline.Probe
// structurally (obs deliberately does not import pipeline here, so the
// pipeline package stays free of any obs dependency) and accumulates the
// interval series plus the three attribution tables. One Telemetry
// observes exactly one run; it is not safe for concurrent use.
type Telemetry struct {
	cfg     Config
	sampler *Sampler
	vpFlush *TopPC
	brMiss  *TopPC
	l1dMiss *TopPC
	// CPI-stack observation (cpistack.go): Telemetry also satisfies
	// pipeline.CPIProbe, so attaching it arms commit-slot accounting.
	commitStall *TopPC
	cpi         stats.CPIStack // latest snapshot (run totals at the tail)
}

// New returns a Telemetry with defaults filled in.
func New(cfg Config) *Telemetry {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.TopK <= 0 {
		cfg.TopK = DefaultTopK
	}
	if cfg.TableCap <= 0 {
		cfg.TableCap = DefaultTableCap
	}
	return &Telemetry{
		cfg:         cfg,
		sampler:     NewSampler(cfg.Interval),
		vpFlush:     NewTopPC(cfg.TableCap),
		brMiss:      NewTopPC(cfg.TableCap),
		l1dMiss:     NewTopPC(cfg.TableCap),
		commitStall: NewTopPC(cfg.TableCap),
	}
}

// SampleEvery reports the sampling period to the pipeline's Probe seam.
func (t *Telemetry) SampleEvery() uint64 { return t.cfg.Interval }

// Sample consumes one counter snapshot at a sampling boundary.
func (t *Telemetry) Sample(committed, cycle uint64, st *stats.Sim) {
	t.sampler.Observe(committed, cycle, st)
}

// VPFlush attributes one value-misprediction pipeline flush to pc.
func (t *Telemetry) VPFlush(pc uint64, in *isa.Inst) { t.vpFlush.Touch(pc, in) }

// BranchMispredict attributes one control misprediction to pc.
func (t *Telemetry) BranchMispredict(pc uint64, in *isa.Inst) { t.brMiss.Touch(pc, in) }

// L1DMiss attributes one L1D demand miss to the load/store at pc.
func (t *Telemetry) L1DMiss(pc uint64, in *isa.Inst) { t.l1dMiss.Touch(pc, in) }

// Samples exposes the interval series accumulated so far.
func (t *Telemetry) Samples() []Sample { return t.sampler.Samples() }

// Record assembles the fully instrumented RunRecord for the observed run.
func (t *Telemetry) Record(meta RunMeta, totals stats.Sim) *RunRecord {
	rec := NewRunRecord(meta, totals)
	rec.CPI = t.cpi
	rec.IntervalInsts = t.cfg.Interval
	rec.Intervals = t.sampler.Samples()
	rec.Attribution = &Attribution{
		TopK:              t.cfg.TopK,
		TableCap:          t.cfg.TableCap,
		VPFlushes:         t.vpFlush.Top(t.cfg.TopK),
		BranchMispredicts: t.brMiss.Top(t.cfg.TopK),
		L1DMisses:         t.l1dMiss.Top(t.cfg.TopK),
		CommitStalls:      t.commitStall.Top(t.cfg.TopK),
	}
	return rec
}
