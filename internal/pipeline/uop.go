// Package pipeline implements the cycle-level out-of-order core of the
// paper's Table 2: an 11-stage, 8-wide machine with a 315-entry ROB,
// 92-entry IQ, 74/53-entry load/store queues, 292+292 physical registers,
// TAGE branch prediction, optional MVP/TVP/GVP value prediction with
// in-place validation at the functional units, baseline move and 0/1-idiom
// elimination, optional 9-bit idiom elimination and speculative strength
// reduction at rename, Store Sets memory dependence prediction, and the
// Table 2 cache/TLB/prefetcher hierarchy.
//
// The core is trace-fed: a functional emulator (internal/emu) runs ahead
// and the pipeline consumes its correct-path dynamic stream. Branch
// mispredictions stall fetch until the branch resolves; value
// mispredictions and memory order violations flush by rewinding the
// stream (see DESIGN.md for the fidelity argument).
package pipeline

import (
	"repro/internal/isa"
	"repro/internal/rename"
)

// uopState tracks a µop's progress through the backend.
type uopState uint8

const (
	// stRenamed: in the ROB, waiting for dispatch.
	stRenamed uopState = iota
	// stDispatched: in the IQ (and LQ/SQ if memory), waiting to issue.
	stDispatched
	// stIssued: executing on a functional unit.
	stIssued
	// stDone: executed (or rename-eliminated); awaiting commit.
	stDone
)

// srcOperand is one renamed source of a µop.
type srcOperand struct {
	name rename.Name
	fp   bool
}

// noIdx is the "no ROB slot" sentinel for the index-based side structures
// (IQ, LQ/SQ, exec list, flag dependences, GVP tracking).
const noIdx int32 = -1

// uop is an in-flight micro-operation. µops live in the ROB ring; the
// scheduler-side structures (IQ, LQ/SQ, exec list, flag and GVP
// cross-references) hold ROB slot indices rather than pointers, so the
// backend scans walk a dense int32 array and the ROB itself instead of
// chasing heap pointers, and the entries carry no GC write barriers.
//
// The struct is deliberately pointer-free (enforced by the tvplint
// hotstruct check): dynamic-record state is reached through the stream
// arena by sequence number (Core.dynAt) and static-instruction state
// through sIdx into the program text / crack tables, so the ROB ring is
// invisible to the garbage collector — rewriting an entry at rename
// carries no write barriers and the GC never scans the ring.
//
// The struct is also deliberately compact (fat rename/VP metadata lives
// in the predRing keyed by seq): renameUop rewrites a whole entry per
// µop, so every byte here is a byte of duffcopy on the hottest path in
// the simulator.
//
//tvp:hotstruct
type uop struct {
	seq         uint64 // architectural dynamic sequence number (DynInst.Seq)
	uSeq        uint64 // unique µop sequence for flag dependences and ordering
	renameCycle uint64
	// The result-ready cycle lives in Core.robReady (struct-of-arrays,
	// indexed by robIdx) so the completion/commit/skip polls stay off
	// this struct's cache lines.

	// Memory state.
	ea          uint64
	memDepSeq   uint64 // store (dyn) seq this op must wait for; 0 = none
	flagSrcUSeq uint64

	// Renamed operands.
	srcs [4]srcOperand

	robIdx     int32 // this µop's own ROB slot
	flagSrcIdx int32 // ROB slot of the in-flight flag producer; noIdx = none
	sIdx       int32 // static instruction index (DynInst.Index) into text/crack

	dst     rename.Name
	kind    isa.UOpKind
	class   isa.Class
	state   uopState
	fu      uint8 // functional unit index while issued
	nsrc    uint8
	memSize uint8
	dstArch isa.Reg

	// Rename-time elimination (the Origin/Kind pair is all commit-side
	// accounting needs; the full rename.Decision never leaves rename).
	elimKind   rename.Kind
	elimOrigin rename.Origin

	last bool // last µop of its architectural instruction

	flagW bool // writes NZCV at execute
	flagR bool // reads NZCV at execute

	// Destination.
	hasDst   bool
	dstFP    bool
	dstWide  bool
	dstSpec  bool
	freshDst bool // dst came from the free list (vs shared/hardwired/value)

	eliminated  bool
	moveBlocked bool

	// Value prediction (training metadata stays in the predRing entry,
	// re-read at commit; only the use-time policy bits live here).
	vpUsed     bool // the prediction was consumed by renaming the dest
	vpWide     bool // GVP: prediction written to the PRF (not inlined)
	vpConsumed bool // GVP: a dependent read the predicted register

	// Branch state (main µop of branch instructions).
	isBranch      bool
	resolvedEarly bool // SpSR resolved the branch at rename

	isLoad, isStore bool
	executedMem     bool // address generated / access performed
}

// reset reinitializes a recycled ROB slot for a freshly renamed µop. It
// is the field-by-field equivalent of assigning a `uop{...}` composite
// literal, written out explicitly because the literal form materializes a
// 120-byte zeroed temporary and duffcopies it into the slot — measurably
// the single hottest block in the simulator. Every field of uop MUST be
// covered here (TestUopResetCoversAllFields enforces this by reflection:
// add a field without resetting it and the test fails).
//
//tvp:hotpath
func (u *uop) reset(seq uint64, sIdx int32, kind isa.UOpKind, class isa.Class, last bool, uSeq, cycle uint64, idx int32) {
	u.seq = seq
	u.uSeq = uSeq
	u.renameCycle = cycle
	u.ea = 0
	u.memDepSeq = 0
	u.flagSrcUSeq = 0
	u.srcs = [4]srcOperand{}
	u.robIdx = idx
	u.flagSrcIdx = noIdx
	u.sIdx = sIdx
	u.dst = 0
	u.kind = kind
	u.class = class
	u.state = stRenamed
	u.fu = 0
	u.nsrc = 0
	u.memSize = 0
	u.dstArch = 0
	u.elimKind = 0
	u.elimOrigin = 0
	u.last = last
	u.flagW = false
	u.flagR = false
	u.hasDst = false
	u.dstFP = false
	u.dstWide = false
	u.dstSpec = false
	u.freshDst = false
	u.eliminated = false
	u.moveBlocked = false
	u.vpUsed = false
	u.vpWide = false
	u.vpConsumed = false
	u.isBranch = false
	u.resolvedEarly = false
	u.isLoad = false
	u.isStore = false
	u.executedMem = false
}

// overlaps reports whether two accesses [a, a+as) and [b, b+bs) intersect.
func overlaps(a uint64, as uint8, b uint64, bs uint8) bool {
	return a < b+uint64(bs) && b < a+uint64(as)
}

// contains reports whether [b, b+bs) fully contains [a, a+as).
func contains(a uint64, as uint8, b uint64, bs uint8) bool {
	return b <= a && a+uint64(as) <= b+uint64(bs)
}
