// Package analysis is the tvplint static-analysis suite: five custom
// analyzers that enforce the repository's load-bearing invariants at
// build time — the content-complete config fingerprint keying the
// simcache (fingerprintsafe), the zero-allocation simulator hot path
// (hotpathalloc), bit-identical report/record/trace output (detmap),
// complete counter serialization (statscomplete), and a
// wall-clock/environment-free simulator core (nondet).
//
// The runner also audits the //tvplint:ignore escape hatch itself: an
// ignore comment that silenced nothing this run, carries no reason, or
// names an analyzer that does not exist is reported as a "staleignore"
// finding, so suppressions cannot quietly outlive the code they excuse.
//
// The types here mirror the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the suite can be ported to a real
// vettool with mechanical changes once external modules are available;
// this build runs offline, so the loader and driver are implemented on
// the standard library alone (go/parser + go/types + the source
// importer). See cmd/tvplint for the driver binary.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // filled by the runner from the reporting Analyzer
	Message  string
}

// Pass carries one package through one analyzer, x/tools-style. Report
// collects diagnostics; the runner fills the Analyzer name and applies
// //tvplint:ignore suppressions afterwards.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check, run once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// ignoreRE matches the suppression escape hatch. The reason is
// mandatory: a bare "//tvplint:ignore detmap" does not suppress, so
// every silenced finding carries its justification next to the code.
var ignoreRE = regexp.MustCompile(`^//tvplint:ignore ([a-z]+)(?:\s+(.*))?$`)

// suppression is one parsed //tvplint:ignore comment. used flips when
// the suppression actually silences a diagnostic, which is what the
// staleignore audit keys on afterwards.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// suppressionIndex maps file name → line → suppressions on that line. A
// diagnostic is suppressed by a matching comment on its own line or on
// the line immediately above.
type suppressionIndex map[string]map[int][]*suppression

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Golden fixtures append their expectation to the
				// ignore line (analysistest-style "// want" metadata);
				// it is never part of the suppression reason.
				if i := strings.Index(text, " // want "); i >= 0 {
					text = text[:i]
				}
				m := ignoreRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]*suppression{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line],
					&suppression{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()})
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a justified ignore
// comment, marking the first covering suppression as used.
func (idx suppressionIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, s := range lines[line] {
			if s.analyzer == d.Analyzer && s.reason != "" {
				s.used = true
				return true
			}
		}
	}
	return false
}

// staleDiags audits the suppression index after filtering. Every ignore
// comment must have earned its keep during this run: one that names an
// analyzer outside the active set, carries no reason, or silenced
// nothing is itself reported (as analyzer "staleignore"), so the escape
// hatch cannot outlive the finding it was written for. These findings
// are not themselves suppressible — the fix is always to repair or
// delete the ignore comment.
func (idx suppressionIndex) staleDiags(analyzers []*Analyzer) []Diagnostic {
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	var out []Diagnostic
	files := make([]string, 0, len(idx))
	for f := range idx {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		lines := idx[f]
		nums := make([]int, 0, len(lines))
		for n := range lines {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			for _, s := range lines[n] {
				d := Diagnostic{Pos: s.pos, Analyzer: "staleignore"}
				switch {
				case !active[s.analyzer]:
					d.Message = fmt.Sprintf("ignore names unknown analyzer %q and can never suppress anything; delete it", s.analyzer)
				case s.reason == "":
					d.Message = fmt.Sprintf("ignore for %s has no justification and does not suppress; add a reason or delete it", s.analyzer)
				case !s.used:
					d.Message = fmt.Sprintf("stale ignore: %s no longer reports a finding here; delete the suppression", s.analyzer)
				default:
					continue
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// RunAnalyzers runs every analyzer over every loaded package and returns
// the surviving diagnostics (suppressions applied) sorted by position.
func RunAnalyzers(l *Loader, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range l.Packages() {
		diags, err := runOnPackage(l.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sortDiagnostics(l.Fset, out)
	return out, nil
}

func runOnPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Pkg:      pkg,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	idx := buildSuppressions(fset, append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...))
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(fset, d) {
			kept = append(kept, d)
		}
	}
	return append(kept, idx.staleDiags(analyzers)...), nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Format renders a diagnostic the way go vet does: file:line:col:
// analyzer: message.
func Format(fset *token.FileSet, d Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
}
