package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/pipeline"
)

// Konata writes the pipeline trace in the Kanata log format (version
// 0004) consumed by the Konata pipeline viewer and gem5's O3 pipeview
// tooling. It implements pipeline.Tracer as a machine-readable sibling
// of pipeline.Pipeview.
//
// Stage lanes: Rn (rename), Ds (dispatch), Is (issue), Cm (complete →
// commit window). Rename-eliminated µops show only Rn with a hover note,
// matching the simulator's semantics: they never occupy the backend.
// Squashed µops are retired with the flush type; their re-execution
// opens a fresh Konata instruction with the same instruction id, which
// the viewer renders as a replay.
type Konata struct {
	// Limit caps how many µops are opened in the log (0 = no cap).
	Limit int

	w         *bufio.Writer
	headered  bool
	lastCycle uint64
	nextID    uint64
	retireID  uint64
	opened    uint64
	live      map[uint64]*kUop // keyed by seq<<1|uopIx
}

type kUop struct {
	id    uint64
	stage string // currently open stage, "" if none
}

// NewKonata returns a tracer writing Kanata 0004 to w. Call Close when
// the run finishes to flush buffered output.
func NewKonata(w io.Writer, limit int) *Konata {
	return &Konata{Limit: limit, w: bufio.NewWriter(w), live: map[uint64]*kUop{}}
}

// stage lane names per trace stage; "" means the stage does not open a
// Konata lane segment (fetch never fires; commit/squash close the µop).
var kStages = [pipeline.StageSquash + 1]string{
	pipeline.StageRename:   "Rn",
	pipeline.StageDispatch: "Ds",
	pipeline.StageIssue:    "Is",
	pipeline.StageComplete: "Cm",
}

// Event implements pipeline.Tracer.
func (k *Konata) Event(ev pipeline.TraceEvent) {
	key := ev.Seq<<1 | uint64(ev.UopIx)
	u := k.live[key]

	if ev.Stage == pipeline.StageRename {
		// A rename event always opens a fresh Konata instruction: either
		// the µop's first appearance or its replay after a squash.
		if u != nil {
			k.close(ev.Cycle, key, u, 1)
		}
		if k.Limit > 0 && k.opened >= uint64(k.Limit) {
			return
		}
		k.advance(ev.Cycle)
		u = &kUop{id: k.nextID}
		k.nextID++
		k.opened++
		k.live[key] = u
		fmt.Fprintf(k.w, "I\t%d\t%d\t0\n", u.id, ev.Seq)
		label := fmt.Sprintf("%#x %s", ev.PC, ev.Inst.String())
		if ev.UopIx != 0 {
			label += " (base-update µop)"
		}
		fmt.Fprintf(k.w, "L\t%d\t0\t%s\n", u.id, label)
		if ev.Eliminated {
			fmt.Fprintf(k.w, "L\t%d\t1\teliminated at rename (completed without backend)\n", u.id)
		}
		k.enter(u, "Rn")
		return
	}
	if u == nil {
		return // µop predates the log or fell past Limit
	}
	k.advance(ev.Cycle)
	switch ev.Stage {
	case pipeline.StageCommit:
		k.close(ev.Cycle, key, u, 0)
	case pipeline.StageSquash:
		k.close(ev.Cycle, key, u, 1)
	default:
		if s := kStages[ev.Stage]; s != "" {
			k.enter(u, s)
		}
	}
}

// advance emits the header and cycle commands needed so subsequent
// stage commands land on cycle.
func (k *Konata) advance(cycle uint64) {
	if !k.headered {
		k.headered = true
		k.lastCycle = cycle
		fmt.Fprintf(k.w, "Kanata\t0004\n")
		fmt.Fprintf(k.w, "C=\t%d\n", cycle)
		return
	}
	if cycle > k.lastCycle {
		fmt.Fprintf(k.w, "C\t%d\n", cycle-k.lastCycle)
		k.lastCycle = cycle
	}
}

// enter transitions u into stage, ending the previously open one.
func (k *Konata) enter(u *kUop, stage string) {
	if u.stage == stage {
		return
	}
	if u.stage != "" {
		fmt.Fprintf(k.w, "E\t%d\t0\t%s\n", u.id, u.stage)
	}
	u.stage = stage
	fmt.Fprintf(k.w, "S\t%d\t0\t%s\n", u.id, stage)
}

// close ends u's open stage and retires it (retireType 0 = commit,
// 1 = squash/flush).
func (k *Konata) close(cycle uint64, key uint64, u *kUop, retireType int) {
	k.advance(cycle)
	if u.stage != "" {
		fmt.Fprintf(k.w, "E\t%d\t0\t%s\n", u.id, u.stage)
		u.stage = ""
	}
	fmt.Fprintf(k.w, "R\t%d\t%d\t%d\n", u.id, k.retireID, retireType)
	k.retireID++
	delete(k.live, key)
}

// Close retires any µops still in flight (as flushed: the run ended
// before they committed) and flushes the buffer. In-flight µops are
// retired in Konata-id order so output is deterministic.
func (k *Konata) Close() error {
	keys := make([]uint64, 0, len(k.live))
	for key := range k.live {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return k.live[keys[i]].id < k.live[keys[j]].id })
	for _, key := range keys {
		k.close(k.lastCycle, key, k.live[key], 1)
	}
	return k.w.Flush()
}
