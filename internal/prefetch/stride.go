// Package prefetch implements the two hardware prefetchers of Table 2:
// a PC-indexed stride prefetcher of degree 4 at the L1D (Fu, Patel &
// Janssens 1992) and an Access Map Pattern Matching (AMPM) prefetcher at
// the L2 (Ishii, Inaba & Hiraki 2009).
//
// The paper leans on the stride prefetcher's lack of throttling to explain
// two second-order effects (roms under TVP in §3.4.1 and the small SpSR
// slowdowns in §6.2): like gem5's, this stride prefetcher issues its full
// degree whenever a stride is confirmed, with no accuracy feedback, so
// value-prediction-induced changes in access timing can swing its
// usefulness either way.
package prefetch

// Stride is a PC-less stride prefetcher operating on miss/hit addresses
// observed at the L1D. gem5's L1D stride prefetcher is PC-indexed; ours
// indexes a small table by address region when no PC is available, and by
// PC when the cache passes one. Degree-N prefetches are emitted once the
// same stride is seen twice.
type Stride struct {
	table  []strideEntry
	mask   uint64
	degree int
	line   uint64
	out    []uint64
}

type strideEntry struct {
	valid    bool
	tag      uint32
	lastAddr uint64
	stride   int64
	conf     int8
}

// NewStride returns a stride prefetcher with the given table size
// (power-of-two), degree, and cache line size.
func NewStride(entries, degree, lineBytes int) *Stride {
	for entries&(entries-1) != 0 {
		entries &= entries - 1
	}
	if entries == 0 {
		entries = 64
	}
	return &Stride{
		table:  make([]strideEntry, entries),
		mask:   uint64(entries - 1),
		degree: degree,
		line:   uint64(lineBytes),
		out:    make([]uint64, 0, degree),
	}
}

// Observe implements cache.Prefetcher. The key is the PC when available,
// else the 4KB region of the address, which approximates gem5's table
// behavior closely enough for the interactions the paper describes.
func (s *Stride) Observe(addr, pc uint64, hit bool) []uint64 {
	key := pc
	if key == 0 {
		key = addr >> 12
	}
	e := &s.table[key&s.mask]
	tag := uint32(key >> 2)
	s.out = s.out[:0]
	if !e.valid || e.tag != tag {
		*e = strideEntry{valid: true, tag: tag, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf--
		if e.conf <= 0 {
			e.stride = stride
			e.conf = 0
		}
	}
	e.lastAddr = addr
	if e.conf >= 1 && e.stride != 0 {
		a := addr
		for i := 0; i < s.degree; i++ {
			a = uint64(int64(a) + e.stride)
			s.out = append(s.out, a)
		}
	}
	return s.out
}
