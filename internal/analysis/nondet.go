package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// NondetConfig scopes the nondet analyzer.
type NondetConfig struct {
	// CorePrefixes are import-path prefixes of simulator-core packages
	// (production: "repro/internal/"). Only code under these prefixes is
	// checked.
	CorePrefixes []string
	// AllowPkgs are exact import paths exempt from the check
	// (production: internal/xrand, the sanctioned deterministic PRNG,
	// and internal/analysis itself).
	AllowPkgs []string
	// AllowFiles are file basenames exempt within core packages
	// (production: heartbeat.go, whose whole purpose is wall-clock
	// progress reporting on stderr).
	AllowFiles []string
}

// timeFuncs are the wall-clock entry points; reading them inside the
// simulator core couples simulated behavior to host timing.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// envFuncs leak host environment into simulated state.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true}

// NewNondet builds the nondet analyzer: simulator-core packages may not
// read wall clocks (time.Now/Since/Until), the global or seeded
// math/rand generators (whose sequences are not pinned across Go
// releases — use internal/xrand), or process environment
// (os.Getenv & co.). Any of these makes a run's outputs depend on the
// host instead of the configuration, breaking the bit-identical-output
// guarantee and silently invalidating simcache hits.
func NewNondet(cfg NondetConfig) *Analyzer {
	a := &Analyzer{
		Name: "nondet",
		Doc:  "forbid wall clocks, math/rand, and environment reads inside simulator-core packages",
	}
	a.Run = func(pass *Pass) error {
		if !hasAnyPrefix(pass.Pkg.Path, cfg.CorePrefixes) {
			return nil
		}
		for _, p := range cfg.AllowPkgs {
			if pass.Pkg.Path == p {
				return nil
			}
		}
		for _, file := range pass.Pkg.Files {
			base := filepath.Base(pass.Fset.Position(file.Package).Filename)
			if contains(cfg.AllowFiles, base) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Pkg.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if timeFuncs[obj.Name()] {
						pass.Reportf(id.Pos(), "wall clock time.%s in simulator-core package %s: outputs must depend only on the configuration (allowlist: obs/heartbeat.go)", obj.Name(), pass.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(id.Pos(), "math/rand (%s) in simulator-core package %s: sequences are not pinned across Go releases; use internal/xrand", obj.Name(), pass.Pkg.Path)
				case "os":
					if envFuncs[obj.Name()] {
						pass.Reportf(id.Pos(), "environment read os.%s in simulator-core package %s: host environment must not influence simulated state", obj.Name(), pass.Pkg.Path)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
