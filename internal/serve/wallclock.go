// wallclock.go confines tvpd's legitimate wall-clock reads — daemon
// uptime for /v1/status — to one file, allowlisted by the tvplint
// nondet analyzer. Nothing here may feed simulated state: simulation
// results remain pure functions of the RunKey, which is what makes the
// two-tier result store sound.
package serve

import "time"

// now reads the wall clock (daemon metadata only).
func now() time.Time { return time.Now() }

// sinceSeconds reports seconds elapsed since t (daemon metadata only).
func sinceSeconds(t time.Time) float64 { return time.Since(t).Seconds() }
