// Command tvpdump is the suite's debugging lens: it disassembles a
// workload's program and/or dumps the first N dynamic instructions of its
// functional execution (PC, disassembly, result, effective address,
// branch outcome), which is how workload kernels were validated while
// building the suite.
//
// Usage:
//
//	tvpdump -workload 623_xalancbmk_s -disasm
//	tvpdump -workload 605_mcf_s -trace 50
//	tvpdump -workload 600_perlbench_s_1 -values 200000
//	tvpdump -workload 605_mcf_s -encode mcf.tvpb
//
// -encode writes the built program as a TVPB container — the binary
// interchange format tvpsim re-ingests behind the static verifier
// (tvpsim -load / -verify).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/isa/tvpb"
	"repro/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "", "workload name")
		disasm = flag.Bool("disasm", false, "print the static program")
		trace  = flag.Int("trace", 0, "dump the first N dynamic instructions")
		values = flag.Int("values", 0, "histogram GPR result values over N instructions")
		encode = flag.String("encode", "", "write the program as a TVPB container to this file")
	)
	flag.Parse()
	if *wl == "" {
		fmt.Fprintln(os.Stderr, "tvpdump: need -workload (see tvpsim -list)")
		os.Exit(2)
	}
	spec, err := workload.Get(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpdump:", err)
		os.Exit(2)
	}
	p := spec.Build()

	if *encode != "" {
		data := tvpb.EncodeProgram(p)
		if err := os.WriteFile(*encode, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tvpdump:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: wrote %d bytes (%d instructions, %d segments) to %s\n",
			p.Name, len(data), len(p.Code), len(p.Data), *encode)
	}

	if *disasm {
		fmt.Printf("%s: %d instructions, %d data segments\n", p.Name, len(p.Code), len(p.Data))
		for i := range p.Code {
			fmt.Printf("%4d  %s\n", i, p.Code[i].String())
		}
	}

	if *trace > 0 {
		e := emu.New(p)
		var d emu.DynInst
		for i := 0; i < *trace && e.Step(&d); i++ {
			line := fmt.Sprintf("%8d  %#x  %-32s", d.Seq, d.PC, d.Inst.String())
			if d.WritesGPRResult() {
				line += fmt.Sprintf(" = %#x", d.Result)
			}
			if isa.IsMem(d.Inst.Op) {
				line += fmt.Sprintf("  [ea %#x]", d.EA)
			}
			if isa.IsBranch(d.Inst.Op) {
				line += fmt.Sprintf("  taken=%v → %#x", d.Taken, d.NextPC)
			}
			fmt.Println(line)
		}
	}

	if *values > 0 {
		e := emu.New(p)
		var d emu.DynInst
		counts := map[uint64]uint64{}
		var total uint64
		for i := 0; i < *values && e.Step(&d); i++ {
			if d.WritesGPRResult() {
				counts[d.Result]++
				total++
			}
		}
		type vc struct {
			v uint64
			c uint64
		}
		var vs []vc
		for v, c := range counts {
			vs = append(vs, vc{v, c})
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].c > vs[j].c })
		if len(vs) > 20 {
			vs = vs[:20]
		}
		fmt.Printf("top GPR result values over %d instructions (%d produced):\n", *values, total)
		for _, x := range vs {
			fmt.Printf("  %#-18x %6.2f%%\n", x.v, 100*float64(x.c)/float64(total))
		}
	}
}
