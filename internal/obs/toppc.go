package obs

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// PCCount is one attribution table entry: a static PC, its event count,
// and the instruction's disassembly.
type PCCount struct {
	PC     uint64 `json:"pc"`
	Hex    string `json:"pc_hex"`
	Count  uint64 `json:"count"`
	Disasm string `json:"disasm,omitempty"`
}

// TopPC is a bounded approximate heavy-hitter counter over static PCs,
// using space-saving eviction: when the table is full, a new PC replaces
// the minimum-count entry and inherits its count, so a true heavy hitter
// is never undercounted by more than the evicted minimum. With the
// default capacity (DefaultTableCap) the tables are exact for any
// workload touching fewer distinct event PCs than the cap — which covers
// the whole synthetic suite — and gracefully approximate beyond it.
type TopPC struct {
	cap int
	m   map[uint64]*pcEntry
}

type pcEntry struct {
	pc    uint64
	count uint64
	inst  *isa.Inst
}

// NewTopPC returns an empty table tracking at most capacity PCs
// (capacity <= 0 falls back to DefaultTableCap).
func NewTopPC(capacity int) *TopPC {
	if capacity <= 0 {
		capacity = DefaultTableCap
	}
	return &TopPC{cap: capacity, m: make(map[uint64]*pcEntry, capacity)}
}

// Touch counts one event at pc. The instruction pointer is retained for
// disassembly at report time (instructions are owned by the Program,
// which outlives the run).
func (t *TopPC) Touch(pc uint64, in *isa.Inst) { t.Add(pc, in, 1) }

// Add counts n events at pc in one update — the weighted form Touch
// wraps, used by slot-weighted attribution (CPI-stack commit stalls
// credit a whole cycle's or skipped span's idle slots at once).
func (t *TopPC) Add(pc uint64, in *isa.Inst, n uint64) {
	if e, ok := t.m[pc]; ok {
		e.count += n
		return
	}
	if len(t.m) < t.cap {
		t.m[pc] = &pcEntry{pc: pc, count: n, inst: in}
		return
	}
	// Space-saving eviction. The O(cap) minimum scan only runs when a
	// full table meets a new PC; attribution events are per-
	// kiloinstruction rare, so this stays off the simulator's hot path.
	// The lowest-PC tie-break makes the victim independent of map
	// iteration order, so attribution tables stay bit-identical across
	// runs even when the table overflows.
	var min *pcEntry
	//tvplint:ignore detmap min-scan with total order (count, then pc) picks the same victim under any iteration order
	for _, e := range t.m {
		if min == nil || e.count < min.count || (e.count == min.count && e.pc < min.pc) {
			min = e
		}
	}
	delete(t.m, min.pc)
	min.pc, min.count, min.inst = pc, min.count+n, in
	t.m[pc] = min
}

// Len returns the number of tracked PCs.
func (t *TopPC) Len() int { return len(t.m) }

// Top returns the k highest-count entries (all entries when k <= 0),
// ordered by descending count with PC as the deterministic tie-break.
func (t *TopPC) Top(k int) []PCCount {
	out := make([]PCCount, 0, len(t.m))
	for _, e := range t.m {
		pc := PCCount{PC: e.pc, Hex: fmt.Sprintf("%#x", e.pc), Count: e.count}
		if e.inst != nil {
			pc.Disasm = e.inst.String()
		}
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
