package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// Spec names one workload point of the suite and builds its program.
type Spec struct {
	// Name matches the paper's figure labels ("623_xalancbmk_s", ...).
	Name string
	// Domain is "int" or "fp", following the SPEC speed split.
	Domain string
	// Build constructs the program (deterministic per name).
	Build func() *prog.Program
}

var registry = map[string]Spec{}
var order []string

func register(name, domain string, build func() *prog.Program) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate " + name)
	}
	registry[name] = Spec{Name: name, Domain: domain, Build: build}
	order = append(order, name)
}

// Names returns the workload names in the paper's figure order.
func Names() []string { return append([]string(nil), order...) }

// Get returns the named workload spec.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return Spec{}, fmt.Errorf("workload: unknown %q (have %v)", name, known)
	}
	return s, nil
}

// Reserved persistent registers for loop-carried chain cursors.
const (
	curA = isa.X15
	curB = isa.X16
	curC = isa.X17
)

// stdCfg is the shared config block layout: slot 0 is the boolProducers
// guard; slots 1..6 hold stable values of the three predictability
// classes ({0,1}: MVP; 9-bit: TVP; wide: GVP); slot 7 is spare.
func stdCfg(b *prog.Builder) uint64 {
	return cfgBlock(b, []uint64{1000, 0, 1, 7, 42, 200, 1 << 20, 0})
}

const (
	slotZero  = 1 // stable 0x0
	slotOne   = 2 // stable 0x1
	slotSeven = 3 // stable 0x7
	slot42    = 4 // stable 0x2a
	slot200   = 5 // stable 0xc8
	slotWide  = 6 // stable 2^20 (not inlinable)
)

// pathSpec parametrizes a benchmark's carried critical structure: an
// unpredictable arena floor of floorLinks pointer loads, against a
// predictable carried path of wConf conflicted + wHot hot wide links with
// a B/S tail. The relation between the path latency and the floor latency
// sets each VP flavor's speedup (see kernels.go).
type pathSpec struct {
	floorLinks int
	wConf      int
	wHot       int
	tail       string
	cursor     isa.Reg
}

// install sets up the arena and path (during program setup).
func (ps pathSpec) install(b *prog.Builder, seed uint64) carriedPath {
	a := setupArena(b, ps.floorLinks+3, ps.wConf, xrand.New(seed))
	// Hot nodes first: the carried-path cycle returns to node 0 before
	// the B/S tail executes, so the tail's load latency is the first
	// node's placement (hot = L1 = fine-grained MVP/TVP gains).
	conf := make([]bool, 0, ps.wConf+ps.wHot)
	for i := 0; i < ps.wHot; i++ {
		conf = append(conf, false)
	}
	for i := 0; i < ps.wConf; i++ {
		conf = append(conf, true)
	}
	var p carriedPath
	if len(conf) > 0 {
		p = setupCarriedPath(b, ps.cursor, conf, &a)
	}
	return p
}

// emit walks the floor and the path (inside the loop body).
func (ps pathSpec) emit(b *prog.Builder, p carriedPath) {
	emitSetPressure(b)
	ptrChase(b, ps.floorLinks, isa.X12)
	if len(p.nodes) > 0 {
		emitCarriedPath(b, p, ps.cursor, ps.tail)
	}
}

func init() {
	// --- 600_perlbench_s: interpreter. Indirect dispatch, boolean
	// logic, calls, small stable values; a carried path whose tail
	// boolean pokes just above the floor (small MVP/TVP/GVP gains).
	for i, cases := range []int{16, 32, 8} {
		v := i + 1
		c := cases
		ps := pathSpec{floorLinks: 4, wConf: 3, wHot: 1, tail: "B", cursor: curC}
		register(fmt.Sprintf("600_perlbench_s_%d", v), "int", func() *prog.Program {
			var tbl, arr uint64
			var fns []prog.Label
			var cp carriedPath
			return loop(fmt.Sprintf("perlbench_%d", v), func(b *prog.Builder) {
				stdCfg(b)
				seedLCG(b, 0x600+uint64(v))
				tbl = setupTable(b, c)
				arr = b.Alloc(4096, 64)
				fns = buildLeafFns(b, 6)
				cp = ps.install(b, 0x600+uint64(v))
			}, func(b *prog.Builder) {
				indirectDispatch(b, tbl, c, false)
				ps.emit(b, cp)
				boolProducers(b, 1, isa.X12)
				stableLoads(b, []int{slotZero, slotOne, slotSeven}, arr, isa.X12)
				callTree(b, fns, v)
				regMoves(b, 1, isa.X12)
				movzMix(b, 1, isa.X12)
				stackSpill(b, 2)
				aluWide(b, 20)
				predictableBranches(b, 2, isa.X12)
			})
		})
	}

	// --- 602_gcc_s: compiler. Branchy, boolean-heavy; gcc_2 carries a
	// deep conflicted wide path (its GVP standout), the others milder
	// small-value paths.
	for i, spec := range []pathSpec{
		{floorLinks: 4, wConf: 3, wHot: 1, tail: "S", cursor: curB},
		{floorLinks: 5, wConf: 5, wHot: 1, tail: "BS", cursor: curB},
		{floorLinks: 4, wConf: 4, wHot: 1, tail: "", cursor: curB},
	} {
		v := i + 1
		ps := spec
		register(fmt.Sprintf("602_gcc_s_%d", v), "int", func() *prog.Program {
			var arr uint64
			var cp carriedPath
			return loop(fmt.Sprintf("gcc_%d", v), func(b *prog.Builder) {
				stdCfg(b)
				seedLCG(b, 0x602+uint64(v))
				cp = ps.install(b, 0x602+uint64(v))
				arr = b.Alloc(4096, 64)
				setupHistogram(b, 10)
			}, func(b *prog.Builder) {
				ps.emit(b, cp)
				boolProducers(b, 1, isa.X12)
				stableLoads(b, []int{slotZero, slot42}, arr, isa.X12)
				branchy(b, 1, isa.X12)
				histogram(b, 10, 1)
				regMoves(b, 1, isa.X12)
				movzMix(b, 1, isa.X12)
				stackSpill(b, 2)
				aluWide(b, 24)
			})
		})
	}

	// --- 603_bwaves_s: FP streaming; a carried wide path above the FP
	// accumulation chain makes bwaves_1 a GVP standout.
	for i, spec := range []pathSpec{
		{floorLinks: 0, wConf: 2, wHot: 0, tail: "", cursor: curA},
		{floorLinks: 0, wConf: 1, wHot: 0, tail: "", cursor: curA},
	} {
		v := i + 1
		ps := spec
		register(fmt.Sprintf("603_bwaves_s_%d", v), "fp", func() *prog.Program {
			var st streamState
			var cp carriedPath
			return loop(fmt.Sprintf("bwaves_%d", v), func(b *prog.Builder) {
				stdCfg(b)
				seedLCG(b, 0x603+uint64(v))
				st = setupStream(b, 512<<10, true)
				cp = ps.install(b, 0x603+uint64(v))
			}, func(b *prog.Builder) {
				stream(b, st, 5)
				ps.emit(b, cp)
				fpChain(b, 2)
				aluWide(b, 4)
			})
		})
	}

	// --- 605_mcf_s: pointer chasing over a DRAM-resident working set
	// (every chase link is a compulsory/capacity miss, as in the real
	// benchmark), with a deep conflicted wide path just above it —
	// GVP-only double-digit gains.
	register("605_mcf_s", "int", func() *prog.Program {
		var cp carriedPath
		conf := make([]bool, 15)
		for i := range conf {
			conf[i] = true
		}
		return loop("mcf", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x605)
			a := setupArena(b, 9, 15, xrand.New(0x605))
			cp = setupCarriedPath(b, curA, conf, &a)
			setupRing(b, 96*1024, 64, xrand.New(0x605)) // 6 MB DRAM ring
		}, func(b *prog.Builder) {
			ptrChase(b, 1, isa.X12)
			emitCarriedPath(b, cp, curA, "")
			boolProducers(b, 1, isa.X12)
			regMoves(b, 1, isa.X12)
			aluWide(b, 6)
		})
	})

	// --- 607_cactuBSSN_s: latency-bound FP chains with moderate
	// streaming.
	register("607_cactuBSSN_s", "fp", func() *prog.Program {
		var st streamState
		return loop("cactuBSSN", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x607)
			st = setupStream(b, 256<<10, true)
			setupMatrix(b, 64, 9)
		}, func(b *prog.Builder) {
			fpChain(b, 6)
			stream(b, st, 3)
			matrixWalk(b, 64, 9, 4)
		})
	})

	// --- 619_lbm_s: pure FP streaming over large arrays (prefetcher
	// dominated).
	register("619_lbm_s", "fp", func() *prog.Program {
		var st streamState
		return loop("lbm", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x619)
			st = setupStream(b, 4<<20, true) // beyond L2
		}, func(b *prog.Builder) {
			stream(b, st, 10)
			fpWide(b, 4)
		})
	})

	// --- 620_omnetpp_s: discrete-event simulation. Arena floor (event
	// structures bounce between L1 and L2) against a slightly deeper
	// carried wide path; calls and histogram updates.
	register("620_omnetpp_s", "int", func() *prog.Program {
		var fns []prog.Label
		var cp carriedPath
		ps := pathSpec{floorLinks: 7, wConf: 7, wHot: 1, tail: "", cursor: curA}
		return loop("omnetpp", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x620)
			cp = ps.install(b, 0x620)
			setupHistogram(b, 12)
			fns = buildLeafFns(b, 5)
		}, func(b *prog.Builder) {
			ps.emit(b, cp)
			histogram(b, 12, 1)
			aluWide(b, 8)
			callTree(b, fns, 1)
			boolProducers(b, 1, isa.X12)
			regMoves(b, 1, isa.X12)
		})
	})

	// --- 621_wrf_s: wide-ILP FP with predictable control.
	register("621_wrf_s", "fp", func() *prog.Program {
		var st streamState
		return loop("wrf", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x621)
			st = setupStream(b, 512<<10, true)
		}, func(b *prog.Builder) {
			fpWide(b, 8)
			stream(b, st, 4)
			predictableBranches(b, 3, isa.X12)
		})
	})

	// --- 623_xalancbmk_s: the paper's GVP outlier (§6.1). The critical
	// path re-derives structure base addresses through a deep carried
	// chain of stable wide pointer loads (ValueStore::contains()); only
	// GVP can capture 64-bit pointers, and collapsing the chain brings
	// roughly the +50% of the paper while MVP/TVP move nothing.
	register("623_xalancbmk_s", "int", func() *prog.Program {
		var fns []prog.Label
		var cp carriedPath
		ps := pathSpec{floorLinks: 4, wConf: 6, wHot: 0, tail: "", cursor: curA}
		return loop("xalancbmk", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x623)
			cp = ps.install(b, 0x623)
			setupSlot(b)
			fns = buildLeafFns(b, 4)
		}, func(b *prog.Builder) {
			ps.emit(b, cp)
			silentStoreReload(b, isa.X12)
			boolProducers(b, 1, isa.X12)
			callTree(b, fns, 1)
			regMoves(b, 1, isa.X12)
			aluWide(b, 20)
		})
	})

	// --- 625_x264_s: video encode. Integer streaming (copies),
	// histograms, occasional division.
	for i, unroll := range []int{6, 4, 8} {
		v := i + 1
		u := unroll
		register(fmt.Sprintf("625_x264_s_%d", v), "int", func() *prog.Program {
			var st streamState
			return loop(fmt.Sprintf("x264_%d", v), func(b *prog.Builder) {
				stdCfg(b)
				seedLCG(b, 0x625+uint64(v))
				st = setupStream(b, 256<<10, false)
				setupHistogram(b, 9)
			}, func(b *prog.Builder) {
				stream(b, st, u)
				histogram(b, 9, 1)
				divWork(b, isa.X12)
				aluWide(b, 10)
				regMoves(b, 1, isa.X12)
				movzMix(b, 1, isa.X12)
				stackSpill(b, 2)
				predictableBranches(b, 2, isa.X12)
			})
		})
	}

	// --- 627_cam4_s: FP with mixed control.
	register("627_cam4_s", "fp", func() *prog.Program {
		var st streamState
		return loop("cam4", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x627)
			st = setupStream(b, 1<<20, true)
		}, func(b *prog.Builder) {
			fpWide(b, 5)
			fpChain(b, 2)
			stream(b, st, 3)
			boolProducers(b, 1, isa.X12)
			branchy(b, 1, isa.X12)
		})
	})

	// --- 628_pop2_s: FP chains with calls and streams.
	register("628_pop2_s", "fp", func() *prog.Program {
		var st streamState
		var fns []prog.Label
		return loop("pop2", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x628)
			st = setupStream(b, 512<<10, true)
			fns = buildLeafFns(b, 4)
		}, func(b *prog.Builder) {
			fpChain(b, 4)
			stream(b, st, 3)
			callTree(b, fns, 2)
			predictableBranches(b, 2, isa.X12)
		})
	})

	// --- 631_deepsjeng_s: game tree search. A couple of genuinely
	// unpredictable branches per position, hash-table probes, boolean
	// evaluation terms.
	register("631_deepsjeng_s", "int", func() *prog.Program {
		return loop("deepsjeng", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x631)
			setupHistogram(b, 12) // 32 KB (L1-resident) hash table
		}, func(b *prog.Builder) {
			branchy(b, 2, isa.X12)
			histogram(b, 12, 2)
			stackSpill(b, 1)
			boolProducers(b, 1, isa.X12)
			predictableBranches(b, 2, isa.X12)
			aluWide(b, 8)
			divWork(b, isa.X12)
		})
	})

	// --- 638_imagick_s: wide-ILP FP, high baseline IPC.
	register("638_imagick_s", "fp", func() *prog.Program {
		var st streamState
		return loop("imagick", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x638)
			st = setupStream(b, 128<<10, true)
		}, func(b *prog.Builder) {
			fpWide(b, 12)
			stream(b, st, 2)
			predictableBranches(b, 2, isa.X12)
		})
	})

	// --- 641_leela_s: game tree search with a shallow carried boolean
	// path (MVP-visible) over an arena floor.
	register("641_leela_s", "int", func() *prog.Program {
		var cp carriedPath
		ps := pathSpec{floorLinks: 4, wConf: 3, wHot: 1, tail: "B", cursor: curC}
		return loop("leela", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x641)
			cp = ps.install(b, 0x641)
		}, func(b *prog.Builder) {
			branchy(b, 2, isa.X12)
			ps.emit(b, cp)
			boolProducers(b, 1, isa.X12)
			regMoves(b, 1, isa.X12)
			movzMix(b, 1, isa.X12)
			stackSpill(b, 1)
			aluWide(b, 16)
		})
	})

	// --- 644_nab_s: molecular dynamics: serial FP with divisions.
	register("644_nab_s", "fp", func() *prog.Program {
		var st streamState
		return loop("nab", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x644)
			st = setupStream(b, 256<<10, true)
		}, func(b *prog.Builder) {
			fpChain(b, 5)
			b.Fdiv(11, 9, 10)
			stream(b, st, 2)
			boolProducers(b, 1, isa.X12)
		})
	})

	// --- 648_exchange2_s: cache-resident integer puzzle solver: dense
	// predictable control, wide integer ILP, no memory pressure — the
	// suite's highest baseline IPC.
	register("648_exchange2_s", "int", func() *prog.Program {
		return loop("exchange2", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x648)
		}, func(b *prog.Builder) {
			predictableBranches(b, 3, isa.X12)
			aluWide(b, 16)
			movzMix(b, 1, isa.X12)
			boolProducers(b, 1, isa.X12)
			regMoves(b, 1, isa.X12)
			stackSpill(b, 1)
			aluWide(b, 12)
		})
	})

	// --- 649_fotonik3d_s: FP stencil: streams plus strided matrix
	// walks (AMPM territory).
	register("649_fotonik3d_s", "fp", func() *prog.Program {
		var st streamState
		return loop("fotonik3d", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x649)
			st = setupStream(b, 2<<20, true)
			setupMatrix(b, 128, 10)
		}, func(b *prog.Builder) {
			stream(b, st, 6)
			matrixWalk(b, 128, 10, 4)
			fpWide(b, 3)
		})
	})

	// --- 654_roms_s: FP ocean model. Streams plus a carried 9-bit
	// path — the benchmark where the paper observed TVP perturbing the
	// stride prefetcher (§3.4.1).
	register("654_roms_s", "fp", func() *prog.Program {
		var st streamState
		var cp carriedPath
		var arr uint64
		ps := pathSpec{floorLinks: 0, wConf: 0, wHot: 2, tail: "SS", cursor: curB}
		return loop("roms", func(b *prog.Builder) {
			stdCfg(b)
			seedLCG(b, 0x654)
			st = setupStream(b, 1<<20, true)
			cp = ps.install(b, 0x654)
			arr = b.Alloc(4096, 64)
		}, func(b *prog.Builder) {
			stream(b, st, 5)
			ps.emit(b, cp)
			stableLoads(b, []int{slotSeven, slot200}, arr, isa.X12)
			fpWide(b, 2)
		})
	})

	// --- 657_xz_s: compression. Match-finder hash probes, bit-twiddling
	// branches, a carried boolean/small path (match state).
	for i, spec := range []pathSpec{
		{floorLinks: 4, wConf: 3, wHot: 1, tail: "B", cursor: curC},
		{floorLinks: 5, wConf: 5, wHot: 1, tail: "S", cursor: curC},
	} {
		v := i + 1
		pr := i + 2
		ps := spec
		register(fmt.Sprintf("657_xz_s_%d", v), "int", func() *prog.Program {
			var st streamState
			var cp carriedPath
			return loop(fmt.Sprintf("xz_%d", v), func(b *prog.Builder) {
				stdCfg(b)
				seedLCG(b, 0x657+uint64(v))
				st = setupStream(b, 512<<10, false)
				cp = ps.install(b, 0x657+uint64(v))
				setupHistogram(b, 13)
			}, func(b *prog.Builder) {
				histogram(b, 13, pr)
				branchy(b, 1, isa.X12)
				ps.emit(b, cp)
				stream(b, st, 2)
				regMoves(b, 1, isa.X12)
				aluWide(b, 16)
			})
		})
	}

	// --- 9xx: promoted fuzzgen families (see promoted.go). Registered
	// last so the paper's 28-point figure order stays a prefix.
	registerPromoted()
}
