// Package cache implements the simulated cache hierarchy: set-associative,
// LRU, write-back/write-allocate caches with MSHR-based miss tracking,
// chained into L1I/L1D → L2 → L3 → memory per Table 2 of the paper.
//
// The model is latency-oriented: an access performed at a given cycle
// returns the cycle at which its data is available. Lines are installed
// functionally at access time while MSHRs carry the timing of in-flight
// fills, so concurrent misses to one line merge onto a single fill
// (standard MSHR semantics) and MSHR exhaustion back-pressures new misses.
package cache

import (
	"repro/internal/config"
)

// Level is anything that can service a line fill: a Cache or the Memory
// backstop.
type Level interface {
	// Access requests the line containing addr at the given cycle and
	// returns the cycle the line is available to the requester. Writes
	// are identified for dirty-line bookkeeping; prefetches for stats.
	Access(addr uint64, cycle uint64, write, prefetch bool) uint64
}

// Memory is the fixed-latency DRAM backstop.
type Memory struct {
	Latency uint64
	// Accesses counts line requests reaching memory.
	Accesses uint64
}

// Access implements Level.
func (m *Memory) Access(_ uint64, cycle uint64, _, _ bool) uint64 {
	m.Accesses++
	return cycle + m.Latency
}

// Prefetcher observes demand accesses at one cache level and proposes
// prefetch addresses (byte addresses; the cache dedups by line).
type Prefetcher interface {
	// Observe is called for each demand access with the byte address, the
	// requesting PC (zero if unknown), and whether the access hit. The
	// returned addresses are prefetched into the observing cache.
	Observe(addr, pc uint64, hit bool) []uint64
}

// Cache is one cache level.
type Cache struct {
	Name string

	cfg      config.CacheConfig
	lines    []line   // small caches: nsets*assoc, set-major, eager
	chunks   [][]line // large caches: chunkSets-set groups, allocated on first install
	assoc    int
	lineBits uint
	setMask  uint64
	next     Level
	mshrs    []mshr
	pf       Prefetcher
	clock    uint64

	// MissHook, when non-nil, is invoked on each demand miss (debugging).
	MissHook func(addr uint64, write bool)

	// Stats.
	Accesses     uint64 // demand accesses
	Misses       uint64 // demand misses (MSHR merges count as misses too)
	Writebacks   uint64
	PFIssued     uint64 // prefetches sent by the attached prefetcher
	PFUseful     uint64 // demand hits on prefetched-but-unused lines
	MSHRConflict uint64 // accesses delayed by MSHR exhaustion
}

// line is one cache line. The valid/dirty/prefetched flags live in the
// top bits of the tag word: line addresses are physical addresses shifted
// right by lineBits, so bits 61+ are free, and the 16-byte struct halves
// the zeroing cost of the per-run constructor (an L3 is ~32k lines).
type line struct {
	tag uint64 // lnTagMask bits: line address; top bits: ln* flags
	lru uint64
}

const (
	lnValid      = uint64(1) << 63
	lnDirty      = uint64(1) << 62
	lnPrefetched = uint64(1) << 61
	lnTagMask    = lnPrefetched - 1
)

type mshr struct {
	valid bool
	tag   uint64 // full line address
	ready uint64
}

// New builds a cache level in front of next, optionally with a
// prefetcher.
func New(name string, cfg config.CacheConfig, next Level, pf Prefetcher) *Cache {
	nsets := cfg.Sets()
	c := &Cache{
		Name:    name,
		cfg:     cfg,
		next:    next,
		pf:      pf,
		setMask: uint64(nsets - 1),
		mshrs:   make([]mshr, cfg.MSHRs),
	}
	for cfg.LineBytes>>c.lineBits > 1 {
		c.lineBits++
	}
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	c.assoc = cfg.Assoc
	// Cores are built per run, so constructor allocation and zeroing are
	// on the experiment hot path. Small caches get one flat eager array;
	// large ones (an L3 is ~2MB of line state, of which a short run
	// touches a sliver) defer to chunked on-demand allocation — a missing
	// chunk reads as all-invalid lines, so behavior is identical.
	if nsets >= 2*chunkSets {
		c.chunks = make([][]line, nsets/chunkSets)
	} else {
		c.lines = make([]line, nsets*cfg.Assoc)
	}
	return c
}

// chunkSets is the lazy-allocation granule for large caches: 256
// consecutive sets (16KB of contiguous address space at 64B lines), a
// compromise between zeroing cost and allocation count per run.
const chunkSets = 256

// setOf returns the set's way slice, or nil when its chunk has not been
// allocated (equivalent to an all-invalid set on the read path).
//tvp:hotpath
func (c *Cache) setOf(si int) []line {
	base := si * c.assoc
	if c.chunks == nil {
		return c.lines[base : base+c.assoc : base+c.assoc]
	}
	ch := c.chunks[si>>8]
	if ch == nil {
		return nil
	}
	base &= chunkSets*c.assoc - 1
	return ch[base : base+c.assoc : base+c.assoc]
}

// setAlloc is setOf for the install path: it allocates the backing chunk
// on first touch.
func (c *Cache) setAlloc(si int) []line {
	if c.chunks != nil && c.chunks[si>>8] == nil {
		c.chunks[si>>8] = make([]line, chunkSets*c.assoc)
	}
	return c.setOf(si)
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }

//tvp:hotpath
func (c *Cache) lookup(la uint64) *line {
	set := c.setOf(int(la & c.setMask))
	want := la | lnValid // store the full line address as the tag; simple and exact
	for i := range set {
		if set[i].tag&(lnValid|lnTagMask) == want {
			return &set[i]
		}
	}
	return nil
}

// Access implements Level for demand and prefetch requests arriving at
// this cache. The returned cycle includes this level's load-to-use
// latency on a hit, or the full fill path on a miss.
//tvp:hotpath
func (c *Cache) Access(addr uint64, cycle uint64, write, prefetch bool) uint64 {
	la := c.lineAddr(addr)
	c.clock++
	if !prefetch {
		c.Accesses++
	}

	hitLat := uint64(c.cfg.LoadToUse)
	ln := c.lookup(la)
	var ready uint64
	hit := ln != nil

	if hit {
		ready = cycle + hitLat
		// Hit under fill: if the line's fill is still in flight, data is
		// not available before the fill returns.
		for i := range c.mshrs {
			if c.mshrs[i].valid && c.mshrs[i].tag == la && c.mshrs[i].ready > ready {
				ready = c.mshrs[i].ready
				break
			}
		}
		if ln.tag&lnPrefetched != 0 && !prefetch {
			c.PFUseful++
			ln.tag &^= lnPrefetched
		}
		ln.lru = c.clock
		if write {
			ln.tag |= lnDirty
		}
	} else {
		if !prefetch {
			c.Misses++
			if c.MissHook != nil {
				c.MissHook(addr, write)
			}
		}
		ready = c.fill(la, addr, cycle+hitLat, write, prefetch)
	}

	if c.pf != nil && !prefetch {
		for _, pa := range c.pf.Observe(addr, 0, hit) {
			c.Prefetch(pa, cycle)
		}
	}
	return ready
}

// Prefetch issues a prefetch for addr into this cache.
func (c *Cache) Prefetch(addr uint64, cycle uint64) {
	la := c.lineAddr(addr)
	if c.lookup(la) != nil {
		return // already present
	}
	// Already in flight?
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].tag == la {
			return
		}
	}
	c.PFIssued++
	c.fillPrefetch(la, addr, cycle+uint64(c.cfg.LoadToUse))
}

// fill handles a demand miss: MSHR merge/allocate, request from next
// level, victim writeback, line install.
//tvp:hotpath
func (c *Cache) fill(la, addr, cycle uint64, write, prefetch bool) uint64 {
	// MSHR merge: a fill for this line is already in flight.
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].tag == la {
			r := c.mshrs[i].ready
			if r < cycle {
				r = cycle
			}
			if write {
				if ln := c.lookup(la); ln != nil {
					ln.tag |= lnDirty
				}
			}
			return r
		}
	}
	// Allocate an MSHR; if all are busy, the request is delayed until the
	// earliest one retires.
	slot := -1
	var earliest uint64 = ^uint64(0)
	for i := range c.mshrs {
		if !c.mshrs[i].valid || c.mshrs[i].ready <= cycle {
			c.mshrs[i].valid = false
			if slot < 0 {
				slot = i
			}
		} else if c.mshrs[i].ready < earliest {
			earliest = c.mshrs[i].ready
		}
	}
	start := cycle
	if slot < 0 {
		c.MSHRConflict++
		start = earliest
		// Re-scan: the earliest MSHR frees at 'start'; reuse its slot.
		for i := range c.mshrs {
			if c.mshrs[i].valid && c.mshrs[i].ready == earliest {
				slot = i
				c.mshrs[i].valid = false
				break
			}
		}
	}

	ready := c.next.Access(addr, start, false, prefetch)
	c.mshrs[slot] = mshr{valid: true, tag: la, ready: ready}

	c.install(la, write, prefetch, cycle)
	return ready
}

func (c *Cache) fillPrefetch(la, addr, cycle uint64) {
	slot := -1
	for i := range c.mshrs {
		if !c.mshrs[i].valid || c.mshrs[i].ready <= cycle {
			c.mshrs[i].valid = false
			slot = i
			break
		}
	}
	if slot < 0 {
		return // no MSHR for a prefetch: drop it
	}
	ready := c.next.Access(addr, cycle, false, true)
	c.mshrs[slot] = mshr{valid: true, tag: la, ready: ready}
	ln := c.install(la, false, true, cycle)
	ln.tag |= lnPrefetched
}

// install victimizes the LRU way and installs the new line.
func (c *Cache) install(la uint64, write, prefetch bool, cycle uint64) *line {
	set := c.setAlloc(int(la & c.setMask))
	victim := 0
	for i := range set {
		if set[i].tag&lnValid == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].tag&(lnValid|lnDirty) == lnValid|lnDirty {
		c.Writebacks++
		// Writebacks consume next-level bandwidth but nothing waits on
		// them; charge the access without using the returned latency.
		c.next.Access(set[victim].tag&lnTagMask<<c.lineBits, cycle, true, false)
	}
	t := la | lnValid
	if write {
		t |= lnDirty
	}
	if prefetch {
		t |= lnPrefetched
	}
	set[victim] = line{tag: t, lru: c.clock}
	return &set[victim]
}

// Hierarchy bundles the full memory system of one core.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	Mem              *Memory
}

// NewHierarchy builds the Table 2 hierarchy with the given prefetchers
// (either may be nil).
func NewHierarchy(m *config.Machine, l1dPF, l2PF Prefetcher) *Hierarchy {
	h := &Hierarchy{Mem: &Memory{Latency: uint64(m.MemLat)}}
	h.L3 = New("L3", m.L3, h.Mem, nil)
	h.L2 = New("L2", m.L2, h.L3, l2PF)
	h.L1D = New("L1D", m.L1D, h.L2, l1dPF)
	h.L1I = New("L1I", m.L1I, h.L2, nil)
	return h
}
