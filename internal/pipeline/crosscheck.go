package pipeline

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Divergence reports that the pipeline's retired architectural state
// departed from the shadow emulator's at one instruction. The checker
// panics with a *Divergence the moment it is detected, so a divergence is
// always attributed to the exact retiring instruction; test harnesses
// (internal/fuzzgen.Diverges) recover it and minimize the program.
type Divergence struct {
	Seq    uint64 // dynamic sequence number of the retiring instruction
	PC     uint64 // byte address of the instruction
	Disasm string // disassembly of the instruction
	Field  string // which architectural field diverged
	Want   uint64 // oracle (shadow emulator) value
	Got    uint64 // pipeline value
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("crosscheck: divergence at seq %d pc %#x `%s`: %s: oracle %#x, pipeline %#x",
		d.Seq, d.PC, d.Disasm, d.Field, d.Want, d.Got)
}

// crossCheck is the shadow-emulator retire checker (config.Machine.
// CrossCheck): a second functional emulator, restored from the same
// checkpoint the core was built over, stepped once per retiring
// architectural instruction. Because the timing model is trace-driven, the
// DynInst records it retires are produced by the primary emulator — so the
// checker's job is to prove that retirement replays the functional stream
// exactly (in order, without skips, duplicates, or retirement past HALT)
// and that every value prediction the pipeline actually used matches the
// architecturally computed result. It observes but never influences
// timing; when disabled the core pays one nil-check per committed µop.
type crossCheck struct {
	shadow *emu.Emulator
	sd     emu.DynInst // scratch: the shadow's view of the retiring instruction
	vpPend bool        // a used prediction awaits the instruction's retirement
	vpVal  uint64      // the predicted value the pipeline consumed
}

// retireUop is called from commit() for every retiring µop, in program
// order. The shadow steps once per architectural instruction (on its last
// µop); used predictions are captured at the main µop so multi-µop
// instructions check the prediction their main µop consumed.
func (x *crossCheck) retireUop(c *Core, u *uop) {
	// The retiring µop's dynamic record is re-read from the stream arena
	// (the ring far exceeds the instruction window, so the record is
	// intact — the pred-ring check below asserts the same invariant for
	// the predictor ring).
	d := c.stream.At(u.seq)
	if u.kind == isa.UOpMain && u.vpUsed {
		// Read the fetch-time record directly: c.pred would reset a stale
		// entry, and the ring (stream capacity) far exceeds the ROB, so a
		// live instruction's entry can only be missing if something is
		// deeply wrong — treat that as a divergence too.
		p := &c.predRing[u.seq&(emu.DefaultStreamCapacity-1)]
		if p.seqPlus1 != u.seq+1 {
			x.fail(d, "pred-ring", u.seq+1, p.seqPlus1)
		}
		x.vpPend = true
		x.vpVal = p.vpValue
	}
	if !u.last {
		return
	}
	if x.shadow.Halted() {
		x.fail(d, "retire-past-halt", 0, d.Seq)
	}
	if !x.shadow.Step(&x.sd) {
		x.fail(d, "shadow-step", 0, d.Seq)
	}
	sd := &x.sd
	if sd.Seq != d.Seq {
		x.fail(d, "seq", sd.Seq, d.Seq)
	}
	if sd.PC != d.PC {
		x.fail(d, "pc", sd.PC, d.PC)
	}
	if sd.NextPC != d.NextPC {
		x.fail(d, "next-pc", sd.NextPC, d.NextPC)
	}
	if sd.Taken != d.Taken {
		x.fail(d, "taken", b2u(sd.Taken), b2u(d.Taken))
	}
	if sd.FlagsOut != d.FlagsOut {
		x.fail(d, "nzcv", uint64(sd.FlagsOut), uint64(d.FlagsOut))
	}
	if sd.Result != d.Result {
		x.fail(d, "result", sd.Result, d.Result)
	}
	if sd.BaseResult != d.BaseResult {
		x.fail(d, "base-result", sd.BaseResult, d.BaseResult)
	}
	in := d.Inst
	if isa.IsMem(in.Op) {
		if sd.EA != d.EA {
			x.fail(d, "ea", sd.EA, d.EA)
		}
		if in.Op == isa.STR || in.Op == isa.FSTR {
			// StoreData is W-masked, not size-masked, so compare the
			// memory image by size: the shadow has just performed the
			// store, so reading the EA back yields the oracle value.
			mask := sizeMask(in.Size)
			if got, want := d.StoreData&mask, x.shadow.Mem.Read(sd.EA, in.Size); got != want {
				x.fail(d, "mem-value", want, got)
			}
		}
	}
	if x.vpPend {
		x.vpPend = false
		// A used prediction must equal the architectural result; the
		// DynInst's Result comes from the functional stream and is correct
		// by construction, so this is the only check that can observe a
		// broken value-prediction datapath (e.g. a comparator that passes
		// a wrong prediction).
		if d.WritesGPRResult() && x.vpVal != sd.Result {
			x.fail(d, "vp-value", sd.Result, x.vpVal)
		}
	}
}

// finish is called after the run loop when the program retired to
// completion: the shadow must be positioned exactly at HALT (the pipeline
// consumes HALT at fetch, so it never retires through retireUop).
func (x *crossCheck) finish() {
	if x.shadow.Halted() {
		return // zero-length run: the core was built over a halted emulator
	}
	if !x.shadow.Step(&x.sd) || x.sd.Inst.Op != isa.HALT {
		panic(&Divergence{
			Seq:    x.sd.Seq,
			PC:     x.sd.PC,
			Disasm: x.sd.Inst.String(),
			Field:  "halt",
			Want:   uint64(isa.HALT),
			Got:    uint64(x.sd.Inst.Op),
		})
	}
}

func (x *crossCheck) fail(d *emu.DynInst, field string, want, got uint64) {
	panic(&Divergence{Seq: d.Seq, PC: d.PC, Disasm: d.Inst.String(), Field: field, Want: want, Got: got})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sizeMask(size uint8) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*uint64(size)) - 1
}

// injectVPBug arms a one-shot value-prediction fault: the next prediction
// the pipeline decides to use is corrupted by XORing mask into it, and
// validation is forced to pass for that instruction (modeling a broken
// validation comparator). Test-only: it exists so the differential harness
// can prove the retire checker catches a wrong used prediction at the
// exact retiring instruction.
func (c *Core) injectVPBug(mask uint64) {
	c.bugArmed = true
	c.bugMask = mask
}

// bugSeq returns the sequence number of the corrupted instruction (valid
// once the armed bug has fired), for tests to assert attribution.
func (c *Core) bugSeq() (uint64, bool) {
	if c.bugSeqPlus1 == 0 {
		return 0, false
	}
	return c.bugSeqPlus1 - 1, true
}
