package pipeline

import "math/bits"

// Event-driven wakeup scoreboard.
//
// The polling issue loop (backend.go issue()) re-evaluates every IQ
// entry's source readiness each cycle: O(IQ occupancy) ROB-line touches
// per cycle even when nothing can issue. The scoreboard inverts the
// dependence: each dispatched µop is classified once, against the same
// state the polling scan would read —
//
//   - sReady: every obstacle has a concrete lower bound. The entry sets
//     its bit in readyMask (one bit per ROB slot) with schedWake = the
//     max concrete bound, and issue only scans the set bits.
//   - sWaiting: some obstacle is unbounded — a source register whose
//     producer has not issued (readyAt == neverReady), an in-flight flag
//     producer, or an unexecuted store the µop's memory dependence names.
//     The entry links onto that producer's waiter list and costs nothing
//     per cycle.
//
// Producers push readiness: when a µop issues, doIssue wakes the waiter
// list of its destination register (exactly when the polling scheme's
// speculative wakeup writes the readyAt the waiters were polling) and of
// its own ROB slot (flag consumers poll robReady; memory-dependent loads
// poll executedMem — both become concrete at issue). A woken entry is
// reclassified by schedEnqueue: it either chains onto its next unbounded
// obstacle or enters the ready set with a concrete bound.
//
// Exactness (TestIssueScoreboardEquivalence asserts bit-identical stats
// and CPI stacks against the polling loop; the FuzzMetamorphic
// DisableWakeupScoreboard mutation fuzzes the claim):
//
//   - Registration is one-at-a-time, in the polling scan's obstacle
//     order, so an entry has its readyMask bit set iff the polling
//     srcsReady would return a concrete bound for it. Concrete ready
//     times never decrease (producers broadcast once; GVP repair only
//     raises them), so schedWake is a sound issue lower bound. Under GVP
//     sbIssue re-runs srcsReady before issuing — the actual issue
//     decision is made by the identical predicate on identical state;
//     under the other modes a concrete ready time is written exactly
//     once, so an arrived bound implies srcsReady and the re-check is
//     skipped as a proven no-op.
//   - ROB slots are allocated in dispatch order, so ring order from
//     robHead is exactly uSeq order: sbIssue walks readyMask word by
//     word starting at robHead's bit and the ready subset is scanned
//     oldest-first exactly like the polling scan's in-order IQ walk —
//     FU allocation and issue-width consumption see the same candidate
//     sequence. A same-cycle wake (store execution releasing a
//     dependent load) sets a bit strictly ahead of the scan cursor
//     (waiters are younger than their producers), and the scan re-reads
//     the current word after every issue, which is where the polling
//     walk would have encountered the waiter too (IQ order is uSeq
//     order).
//   - A waiter can never be stranded: an unbounded obstacle's producer
//     either issues (and broadcasts) or is squashed — and a squashed
//     producer implies the waiter is squashed too (sources, flag
//     producers and memory dependences all point strictly backward in
//     program order), with flush unlinking every squashed waiter.
//
// DisableWakeupScoreboard selects the polling loop; both structures are
// maintained exclusively (useSB is fixed at construction).

// Scheduler-entry states (schedState, per ROB slot).
const (
	sNone    uint8 = iota // not in the scheduler
	sWaiting              // linked on a producer's waiter list
	sReady                // readyMask bit set, with a concrete wake bound
	sWheel                // parked in the wake wheel until its bound arrives
)

// wheelSpan is the wake wheel's horizon in cycles (a power of two). An
// entry whose concrete bound lies within (cycle, cycle+wheelSpan) parks
// in the slot its bound indexes and enters readyMask only when that
// cycle arrives, so sbIssue never rescans maturing entries. The rare
// farther bound (a deep memory miss) falls back to entering readyMask
// immediately with its future schedWake — exactly the pre-wheel
// behavior, still exact, just rescanned per cycle until it matures.
const wheelSpan = 1024

// Waiter-list kinds (waitKind, per ROB slot): which head the entry is
// linked under, so flush can unlink squashed waiters.
const (
	wkInt  uint8 = iota // intWaitHead[waitKey]
	wkFP                // fpWaitHead[waitKey]
	wkSlot              // slotWaitHead[waitKey] (flag producer or pending store)
)

// schedEnqueue classifies a dispatched (or re-woken) µop against current
// state: it registers on the first unbounded obstacle, in the same order
// the polling srcsReady inspects them, or enters the ready set with the
// max concrete bound.
//
//tvp:hotpath
func (c *Core) schedEnqueue(idx int32) {
	u := &c.rob[idx]
	var bound uint64
	for i := 0; i < int(u.nsrc); i++ {
		s := u.srcs[i]
		var r uint64
		if s.fp {
			r = c.fpReadyAt[s.name]
		} else {
			r = c.intReadyAt[s.name]
		}
		if r == neverReady {
			if s.fp {
				c.sbWait(idx, wkFP, int32(s.name), &c.fpWaitHead[s.name])
			} else {
				c.sbWait(idx, wkInt, int32(s.name), &c.intWaitHead[s.name])
			}
			return
		}
		if r > bound {
			bound = r
		}
	}
	if u.flagR && u.flagSrcIdx != noIdx && c.rob[u.flagSrcIdx].uSeq == u.flagSrcUSeq {
		if fr := c.robReady[u.flagSrcIdx]; fr == neverReady {
			c.sbWait(idx, wkSlot, u.flagSrcIdx, &c.slotWaitHead[u.flagSrcIdx])
			return
		} else if fr > bound {
			bound = fr
		}
	}
	if u.memDepSeq != 0 {
		if si := c.pendingStoreIdx(u.memDepSeq - 1); si != noIdx {
			c.sbWait(idx, wkSlot, si, &c.slotWaitHead[si])
			return
		}
	}
	c.schedWake[idx] = bound
	if bound > c.cycle && bound-c.cycle < wheelSpan {
		s := bound & (wheelSpan - 1)
		c.schedState[idx] = sWheel
		c.waitNext[idx] = c.wheelHead[s]
		c.wheelHead[s] = idx
		c.wheelBits[s>>6] |= 1 << (s & 63)
		return
	}
	c.schedState[idx] = sReady
	c.readyMask[idx>>6] |= 1 << (uint(idx) & 63)
}

// wheelAdvance matures the wake-wheel slot of the current cycle: every
// parked entry whose bound is now due moves into the ready mask. Called
// at the top of step — and again after a cycle-skip jump — so issue and
// trySkip always see the exact ready set the pre-wheel scoreboard kept
// eagerly. The common case (empty slot) is a single bit test.
//
//tvp:hotpath
func (c *Core) wheelAdvance() {
	s := c.cycle & (wheelSpan - 1)
	if c.wheelBits[s>>6]&(1<<(s&63)) == 0 {
		return
	}
	c.wheelBits[s>>6] &^= 1 << (s & 63)
	n := c.wheelHead[s]
	c.wheelHead[s] = noIdx
	for n != noIdx {
		c.schedState[n] = sReady
		c.readyMask[n>>6] |= 1 << (uint(n) & 63)
		n = c.waitNext[n]
	}
}

// wheelUnlink removes a squashed sWheel entry from its wake-wheel slot
// (found from its stored bound), clearing the slot's non-empty bit when
// it drains — the wheel twin of sbUnlink.
func (c *Core) wheelUnlink(idx int32) {
	s := c.schedWake[idx] & (wheelSpan - 1)
	head := &c.wheelHead[s]
	if *head == idx {
		*head = c.waitNext[idx]
	} else {
		for n := *head; n != noIdx; n = c.waitNext[n] {
			if c.waitNext[n] == idx {
				c.waitNext[n] = c.waitNext[idx]
				break
			}
		}
	}
	if *head == noIdx {
		c.wheelBits[s>>6] &^= 1 << (s & 63)
	}
}

// sbWait links a µop onto a producer's waiter list.
//
//tvp:hotpath
func (c *Core) sbWait(idx int32, kind uint8, key int32, head *int32) {
	c.schedState[idx] = sWaiting
	c.waitKind[idx] = kind
	c.waitKey[idx] = key
	c.waitNext[idx] = *head
	*head = idx
}

// pendingStoreIdx returns the ROB slot of the store with the given dynamic
// sequence number if it is still in the store queue without having
// generated its address, noIdx otherwise (the index-returning twin of
// storePending, so the waiter can register on the store's slot).
//
//tvp:hotpath
func (c *Core) pendingStoreIdx(seq uint64) int32 {
	for _, si := range c.sq.live() {
		s := &c.rob[si]
		if s.seq == seq {
			if s.executedMem {
				return noIdx
			}
			return si
		}
		if s.seq > seq {
			return noIdx
		}
	}
	return noIdx
}

// wakeList drains a waiter list: the head is detached first (a
// reclassified waiter may immediately re-register on a different list,
// or — after a store wake — back onto a later pending store's list), then
// every entry is re-run through schedEnqueue.
//
//tvp:hotpath
func (c *Core) wakeList(head *int32) {
	n := *head
	*head = noIdx
	for n != noIdx {
		next := c.waitNext[n]
		c.schedState[n] = sNone
		c.schedEnqueue(n)
		n = next
	}
}

// sbUnlink removes a squashed sWaiting entry from its waiter list (flush
// path: explicit unlinking keeps every list valid for slot reuse; lazy
// cleanup would let a stale link alias a recycled slot).
func (c *Core) sbUnlink(idx int32) {
	var head *int32
	switch c.waitKind[idx] {
	case wkInt:
		head = &c.intWaitHead[c.waitKey[idx]]
	case wkFP:
		head = &c.fpWaitHead[c.waitKey[idx]]
	default:
		head = &c.slotWaitHead[c.waitKey[idx]]
	}
	n := *head
	if n == idx {
		*head = c.waitNext[idx]
		return
	}
	for n != noIdx {
		if c.waitNext[n] == idx {
			c.waitNext[n] = c.waitNext[idx]
			return
		}
		n = c.waitNext[n]
	}
}

// sbIssue is the scoreboard's issue stage: scan only the ready set,
// oldest first. Under GVP (sbRecheck) readiness is re-checked with the
// polling predicate before committing to an issue: a wide-prediction
// repair can raise a readyAt while the entry sat FU-blocked, making the
// cached bound stale, and srcsReady sends such an entry back through
// schedEnqueue. Under every other mode a concrete ready time is written
// exactly once, so a bound that has arrived (schedWake <= cycle) implies
// srcsReady — the re-check is provably a no-op and is skipped.
//
// The scan walks readyMask in ring order: word hw (bits >= robHead's
// bit), the following words, then back around to word hw's low bits.
// Ring order from robHead is dispatch order (ROB slots are allocated in
// uSeq order), so the candidate sequence is oldest-first. After every
// mutation the current word is re-read: a same-cycle wake sets a bit
// strictly ahead of the cursor, and the done mask keeps already-visited
// bits (issued, FU-blocked, or reclassified with a raised bound) from
// being revisited this cycle — exactly the polling walk's forward scan.
//
//tvp:hotpath
func (c *Core) sbIssue() {
	c.fuInit()
	width := c.cfg.IssueWidth
	nw := len(c.readyMask)
	hw := c.robHead >> 6
	hb := uint(c.robHead & 63)
	for k := 0; k <= nw && width > 0; k++ {
		w := hw + k
		if w >= nw {
			w -= nw
		}
		window := ^uint64(0)
		if k == 0 {
			window <<= hb
		} else if k == nw {
			window = 1<<hb - 1
		}
		var done uint64
		for width > 0 {
			pend := c.readyMask[w] & window &^ done
			if pend == 0 {
				break
			}
			b := pend & -pend
			done |= b
			idx := int32(w<<6 + bits.TrailingZeros64(b))
			if c.schedWake[idx] > c.cycle {
				continue
			}
			u := &c.rob[idx]
			if c.sbRecheck {
				if ready, _ := c.srcsReady(u); !ready {
					// Reclassify: either a fresh unbounded obstacle (leaves
					// the ready set) or a raised bound (re-enters with
					// schedWake > cycle; the done mask moves the scan past it).
					c.readyMask[w] &^= b
					c.schedState[idx] = sNone
					c.schedEnqueue(idx)
					continue
				}
			}
			fu := c.allocFU(u.class)
			if fu < 0 {
				continue
			}
			c.readyMask[w] &^= b
			c.schedState[idx] = sNone
			c.iqCnt--
			width--
			c.fus.usedMask |= 1 << uint(fu)
			c.doIssue(u, fu)
			if c.flushedThisCycle {
				return
			}
		}
	}
}
