package workload

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/pipeline"
)

func TestSuiteShape(t *testing.T) {
	names := Names()
	paper, promoted := 0, 0
	for _, n := range names {
		if strings.HasPrefix(n, "9") {
			promoted++
		} else {
			paper++
		}
	}
	if paper != 28 {
		t.Fatalf("suite has %d paper workload points, want the paper's 28", paper)
	}
	if want := len(promotedSpecs()); promoted != want {
		t.Fatalf("suite has %d promoted 9xx members, want %d", promoted, want)
	}
	// Figure order: the paper's 28 points come first, promoted members last.
	for i, n := range names {
		if strings.HasPrefix(n, "9") != (i >= paper) {
			t.Fatalf("promoted member %s out of order at index %d", n, i)
		}
	}
	for _, expect := range []string{
		"600_perlbench_s_1", "602_gcc_s_2", "603_bwaves_s_1", "605_mcf_s",
		"623_xalancbmk_s", "648_exchange2_s", "654_roms_s", "657_xz_s_2",
		"901_fuzz_dispatch_s", "902_fuzz_fp_s", "903_fuzz_calls_s",
	} {
		if _, err := Get(expect); err != nil {
			t.Errorf("missing %s: %v", expect, err)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("unknown workload must error")
	}
	ints, fps := 0, 0
	for _, n := range names {
		s, _ := Get(n)
		switch s.Domain {
		case "int":
			ints++
		case "fp":
			fps++
		default:
			t.Errorf("%s has bad domain %q", n, s.Domain)
		}
	}
	if ints == 0 || fps == 0 {
		t.Error("suite must contain both int and fp workloads")
	}
}

func TestAllWorkloadsExecuteFunctionally(t *testing.T) {
	for _, n := range Names() {
		n := n
		t.Run(n, func(t *testing.T) {
			t.Parallel()
			s, _ := Get(n)
			e := emu.New(s.Build())
			var d emu.DynInst
			for i := 0; i < 30000; i++ {
				if !e.Step(&d) {
					t.Fatalf("%s halted after only %d instructions", n, i)
				}
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := Get("602_gcc_s_2")
	a, b := s.Build(), s.Build()
	if len(a.Code) != len(b.Code) {
		t.Fatal("non-deterministic code length")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs between builds", i)
		}
	}
}

func TestTimingSmokeSample(t *testing.T) {
	// A representative slice through the suite runs on the timing model
	// without deadlock and with plausible IPC.
	sample := []string{"600_perlbench_s_1", "605_mcf_s", "619_lbm_s", "623_xalancbmk_s", "648_exchange2_s"}
	for _, n := range sample {
		n := n
		t.Run(n, func(t *testing.T) {
			t.Parallel()
			s, _ := Get(n)
			res := pipeline.New(config.Default(), s.Build()).Run(5000, 40000)
			if ipc := res.Stats.IPC(); ipc <= 0.01 || ipc > 8 {
				t.Errorf("%s IPC %.3f implausible", n, ipc)
			}
		})
	}
}

func TestXalancbmkIsGVPOutlier(t *testing.T) {
	// §6.1: xalancbmk speeds up dramatically under GVP while MVP/TVP do
	// essentially nothing (the chain values need more than 9 bits).
	s, _ := Get("623_xalancbmk_s")
	base := pipeline.New(config.Default(), s.Build()).Run(20000, 120000)
	mvp := pipeline.New(config.Default().WithVP(config.MVP), s.Build()).Run(20000, 120000)
	gvp := pipeline.New(config.Default().WithVP(config.GVP), s.Build()).Run(20000, 120000)
	mvpUp := mvp.Stats.IPC()/base.Stats.IPC() - 1
	gvpUp := gvp.Stats.IPC()/base.Stats.IPC() - 1
	if gvpUp < 0.25 {
		t.Errorf("GVP uplift on xalancbmk = %.1f%%, want the paper's dramatic gain", 100*gvpUp)
	}
	if mvpUp > 0.05 {
		t.Errorf("MVP uplift on xalancbmk = %.1f%%, should be near zero", 100*mvpUp)
	}
}

func TestValueDistributionSkew(t *testing.T) {
	// Fig. 1: 0x0 must be the most frequently produced GPR value.
	counts := map[uint64]int{}
	total := 0
	for _, n := range []string{"600_perlbench_s_1", "602_gcc_s_1", "641_leela_s"} {
		s, _ := Get(n)
		e := emu.New(s.Build())
		var d emu.DynInst
		for i := 0; i < 40000; i++ {
			if !e.Step(&d) {
				break
			}
			if d.WritesGPRResult() {
				counts[d.Result]++
				total++
			}
		}
	}
	zero := float64(counts[0]) / float64(total)
	if zero < 0.03 {
		t.Errorf("0x0 is only %.1f%% of produced values; Fig. 1 wants it dominant", 100*zero)
	}
	for v, c := range counts {
		if v != 0 && c > counts[0] {
			t.Errorf("value %#x (%d) outnumbers 0x0 (%d)", v, c, counts[0])
		}
	}
}

func TestUopExpansionRange(t *testing.T) {
	// Fig. 2: expansion ratios should lie in a plausible 1.0–1.5 band.
	for _, n := range []string{"619_lbm_s", "648_exchange2_s"} {
		s, _ := Get(n)
		res := pipeline.New(config.Default(), s.Build()).Run(2000, 30000)
		r := res.Stats.UopsPerInst()
		if r < 1.0 || r > 1.5 {
			t.Errorf("%s uops/inst = %.3f", n, r)
		}
	}
}
