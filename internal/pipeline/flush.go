package pipeline

// flush squashes every in-flight µop with dynamic sequence number >= seq,
// rewinds the instruction stream so those instructions are refetched,
// repairs the rename state (copy CRAT to RAT, then re-apply surviving
// in-flight mappings in order — the recovery scheme of §3.2.1), and stalls
// fetch for the redirect penalty. This is the recovery path for value
// mispredictions (including the mispredicted instruction itself under
// MVP/TVP, §3.4) and for memory order violations.
func (c *Core) flush(seq uint64, penalty uint64) {
	c.flushedThisCycle = true

	// Squash ROB entries from the tail back to the flush point.
	for c.robCnt > 0 {
		tail := (c.robTail - 1 + len(c.rob)) % len(c.rob)
		u := &c.rob[tail]
		if u.seq < seq {
			break
		}
		if u.hasDst {
			if u.dstFP {
				c.ren.ReleaseFP(u.dst)
			} else {
				c.ren.Release(u.dst)
				if u.vpWide && c.predictedReg[u.dst] == u.robIdx {
					c.predictedReg[u.dst] = noIdx
				}
			}
		}
		c.trace(u, StageSquash)
		if c.useSB && u.state == stDispatched {
			// Scoreboard teardown: a waiting entry is unlinked from its
			// producer's list explicitly (slot indices recycle; a stale
			// link would alias the slot's next occupant); a ready entry
			// clears its readyMask bit.
			c.iqCnt--
			switch c.schedState[tail] {
			case sWaiting:
				c.sbUnlink(int32(tail))
			case sWheel:
				c.wheelUnlink(int32(tail))
			case sReady:
				c.readyMask[tail>>6] &^= 1 << (uint(tail) & 63)
			}
			c.schedState[tail] = sNone
		}
		u.uSeq = 0 // invalidate flag-dependence references to this slot
		c.robTail = tail
		c.robCnt--
		c.st.SquashedUOps++
	}

	// Rebuild the dispatch pointer: entries renamed but not yet
	// dispatched are a contiguous suffix of the live ROB.
	c.dispCnt = 0
	c.dispPtr = c.robTail
	for i := 0; i < c.robCnt; i++ {
		idx := (c.robTail - 1 - i + 2*len(c.rob)) % len(c.rob)
		if c.rob[idx].state != stRenamed {
			break
		}
		c.dispPtr = idx
		c.dispCnt++
	}

	// Filter the scheduler, memory queues and in-flight execution list.
	// The scheduler's wake-hint array stays in lockstep with iq: surviving
	// entries keep their (still sound) bounds, squashed ones drop out.
	{
		out, wout := c.iq[:0], c.iqWake[:0]
		for k, i := range c.iq {
			if c.rob[i].seq < seq {
				out = append(out, i)
				wout = append(wout, c.iqWake[k])
			}
		}
		c.iq, c.iqWake = out, wout
	}
	// (readyMask needs no filter pass: the squash loop above cleared each
	// squashed sReady entry's bit; survivors keep their still-sound
	// schedWake bounds, mirroring the iqWake treatment.)
	c.lq.filterLive(func(i int32) bool { return c.rob[i].seq < seq })
	c.sq.filterLive(func(i int32) bool { return c.rob[i].seq < seq })
	c.execL = c.filterIdx(c.execL, seq)

	// Rename recovery: restore committed mappings, then replay surviving
	// speculative definitions in program order.
	c.ren.RestoreFromCRAT()
	c.lastFlagWIdx = noIdx
	c.lastFlagWSeq = 0
	for i, idx := 0, c.robHead; i < c.robCnt; i, idx = i+1, (idx+1)%len(c.rob) {
		u := &c.rob[idx]
		if u.hasDst {
			if u.dstFP {
				c.ren.ReplayDefFP(u.dstArch, u.dst)
			} else {
				c.ren.ReplayDefInt(u.dstArch, u.dst, u.dstWide, u.dstSpec)
			}
		}
		if u.flagW {
			c.lastFlagWIdx = int32(idx)
			c.lastFlagWSeq = u.uSeq
		}
	}

	// Frontend restart.
	c.fetchQ.clear()
	c.decodeQ.clear()
	c.stream.Rewind(seq)
	c.curFetchLine = ^uint64(0)
	c.waitBranchSeq = 0
	c.haltSeen = false
	c.fetchStallUntil = maxu(c.fetchStallUntil, c.cycle+penalty)
}

// filterIdx removes squashed µops (seq >= boundary) from an index list,
// preserving order. Squashed ROB slots keep their seq until reused, so the
// lookup is valid even for entries squashed earlier in this flush.
func (c *Core) filterIdx(list []int32, seq uint64) []int32 {
	out := list[:0]
	for _, i := range list {
		if c.rob[i].seq < seq {
			out = append(out, i)
		}
	}
	return out
}
