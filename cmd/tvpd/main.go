// Command tvpd is the simulation-as-a-service daemon: a long-running
// HTTP server that answers "workload × machine config" questions with
// tvp.obs.run/v2 RunRecords, doing the minimum simulation work by
// resolving every request through a two-tier result store (in-memory
// singleflight cache + optional persistent on-disk store shared between
// processes pointed at the same -store-dir).
//
// Endpoints:
//
//	POST /v1/run    one point  -> one RunRecord (JSON)
//	POST /v1/sweep  point grid -> NDJSON stream, one RunRecord per line
//	GET  /v1/status health, pool shape, cache/store/coalescing counters
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get -drain to finish (their simulations keep
// running), then the worker pool is drained and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty: memory-only)")
	workers := flag.Int("j", 0, "simulation worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded job queue depth; full queue applies backpressure")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "tvpd: unexpected arguments:", flag.Args())
		return 2
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvpd:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "tvpd: store %s (%d records)\n", st.Dir(), st.Len())
	}

	srv := serve.New(serve.Config{Workers: *workers, Queue: *queue, Store: st})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvpd:", err)
		return 1
	}
	// The resolved address line is the readiness handshake for wrappers
	// (make serve-smoke, the process-level tests): parseable, on stderr,
	// before the first request can be accepted... keep the format stable.
	fmt.Fprintf(os.Stderr, "tvpd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tvpd:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills immediately

	fmt.Fprintln(os.Stderr, "tvpd: draining")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// Grace period expired: force-close connections; request contexts
		// cancel, which stops in-flight runs from inside the cycle loop.
		hs.Close()
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "tvpd: drained")
	return 0
}
