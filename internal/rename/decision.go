package rename

import (
	"repro/internal/isa"
)

// Kind classifies what a rename-time reduction turns an instruction into.
type Kind uint8

const (
	// KindNone: no reduction; the instruction renames and executes
	// normally.
	KindNone Kind = iota
	// KindZero: the destination is renamed to the hardwired zero
	// register (zero-idiom).
	KindZero
	// KindOne: the destination is renamed to the hardwired one register
	// (one-idiom).
	KindOne
	// KindMove: the destination is renamed to the source operand's name
	// (move elimination).
	KindMove
	// KindValue: the destination is renamed to an inlined 9-bit signed
	// value name (9-bit idiom elimination, or an SpSR reduction whose
	// result is a small constant other than 0/1; TVP/GVP only).
	KindValue
	// KindNop: the instruction disappears entirely (flag-only updates are
	// carried by the frontend NZCV register).
	KindNop
	// KindBranch: a conditional branch resolved at rename.
	KindBranch
)

// String names the reduction kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindZero:
		return "zero-idiom"
	case KindOne:
		return "one-idiom"
	case KindMove:
		return "move-idiom"
	case KindValue:
		return "value-idiom"
	case KindNop:
		return "nop"
	case KindBranch:
		return "branch-resolved"
	}
	return "kind?"
}

// Origin records which rename optimization produced a reduction, for the
// Fig. 4 accounting.
type Origin uint8

const (
	// OriginNone: no reduction.
	OriginNone Origin = iota
	// OriginZeroOne: baseline 0/1-idiom elimination (opcode-visible).
	OriginZeroOne
	// OriginMove: baseline move elimination (opcode-visible).
	OriginMove
	// OriginNineBit: 9-bit signed integer idiom elimination (§3.2.2).
	OriginNineBit
	// OriginSpSR: the Table 1 speculative strength reduction engine.
	OriginSpSR
)

// Decision is the outcome of the rename-time reduction engine for one
// instruction.
type Decision struct {
	Kind   Kind
	Origin Origin
	// MoveOp is the operand whose name the destination takes (KindMove).
	MoveOp Operand
	// Value is the inlined constant (KindValue).
	Value int64
	// SetsNZCV reports that the reduced instruction's flag side effects
	// are known; NZCV carries them (written to the frontend register and,
	// conceptually, the hardwired backend NZCV registers, §4.2).
	SetsNZCV bool
	NZCV     isa.Flags
	// Taken is the resolved direction (KindBranch).
	Taken bool
	// Spec reports whether the reduction consumed speculative (value
	// predicted, directly or transitively) knowledge. Non-speculative
	// Table 1 reductions are architecturally exact; speculative ones are
	// covered by the originating prediction's validation flush.
	Spec bool
}

// Engine evaluates rename-time reductions. Fields select which
// optimizations are active, matching config.Machine's knobs.
type Engine struct {
	// ZeroOneIdiom enables baseline 0/1-idiom elimination.
	ZeroOneIdiom bool
	// MoveElim enables baseline move elimination.
	MoveElim bool
	// NineBit enables 9-bit signed integer idiom elimination (needs
	// TVP/GVP register name inlining).
	NineBit bool
	// SpSR enables the Table 1 engine.
	SpSR bool
	// Inline reports whether value names exist (TVP/GVP): without it,
	// KindValue reductions are impossible and only 0/1 results reduce.
	Inline bool
}

func known0(o *Operand) bool { return o.Known && o.Value == 0 }
func known1(o *Operand) bool { return o.Known && o.Value == 1 }

// moveOK applies the paper's width rule (§5): a 64-bit register may not be
// moved into a 32-bit register unless its value is known to have zero
// upper bits (§6.2: possible "if the 64-bit register is predicted or
// 9-bit-signed-idiom eliminated ... when the value is not sign-extended").
func moveOK(src *Operand, w bool) bool {
	if !w {
		return true
	}
	if src.Known {
		return src.Value >= 0 // non-negative 9-bit value: upper 55 bits zero
	}
	return !src.Wide
}

// valueKind maps a computed constant onto the cheapest representation the
// hardware supports: hardwired 0/1 in every mode, inlined 9-bit values
// when Inline. ok is false when the constant cannot be represented (the
// instruction must then execute normally).
func (e *Engine) valueKind(v int64) (Kind, bool) {
	switch {
	case v == 0:
		return KindZero, true
	case v == 1:
		return KindOne, true
	case e.Inline && v >= -256 && v <= 255:
		return KindValue, true
	}
	return KindNone, false
}

// Decide evaluates, in priority order, baseline 0/1-idiom elimination,
// baseline move elimination, 9-bit idiom elimination, and the SpSR
// Table 1, for the integer instruction with the given renamed source
// operands. srcN/srcM are the renamed Rn/Rm operands (srcM is ignored for
// immediate forms). nzcv carries the frontend flags state.
//
// The boolean moveBlocked output reports a baseline move idiom that could
// not be eliminated due to the 64→32-bit width rule (the paper's "Non ME
// move" category in Fig. 4).
func (e *Engine) Decide(in *isa.Inst, srcN, srcM *Operand, nzcv isa.Flags, nzcvSpec, nzcvKnown bool) (d Decision, moveBlocked bool) {
	// ---- Baseline DSR: zero/one idioms (§5) ----
	if e.ZeroOneIdiom {
		switch in.Op {
		case isa.EOR:
			if !in.UseImm && in.Rn == in.Rm {
				return Decision{Kind: KindZero, Origin: OriginZeroOne}, false
			}
		case isa.MOVZ:
			if in.Imm == 0 {
				return Decision{Kind: KindZero, Origin: OriginZeroOne}, false
			}
			if in.Imm == 1 && in.Imm2 == 0 {
				return Decision{Kind: KindOne, Origin: OriginZeroOne}, false
			}
		case isa.AND:
			if !in.UseImm && (in.Rn == isa.XZR || in.Rm == isa.XZR) {
				return Decision{Kind: KindZero, Origin: OriginZeroOne}, false
			}
		}
	}

	// ---- Baseline DSR: move elimination (§5) ----
	if e.MoveElim && !in.UseImm {
		var src *Operand
		switch in.Op {
		case isa.ADD, isa.ORR, isa.EOR:
			if in.Rn == isa.XZR && in.Rm != isa.XZR {
				src = srcM
			} else if in.Rm == isa.XZR && in.Rn != isa.XZR {
				src = srcN
			}
		}
		if src != nil {
			if moveOK(src, in.W) {
				return Decision{Kind: KindMove, Origin: OriginMove, MoveOp: *src, Spec: src.Spec}, false
			}
			moveBlocked = true
		}
	}

	// ---- 9-bit signed integer idiom elimination (§3.2.2) ----
	if e.NineBit && e.Inline {
		switch in.Op {
		case isa.MOVZ:
			if in.Imm2 == 0 && in.Imm >= 0 && in.Imm <= 255 {
				if k, ok := e.valueKind(in.Imm); ok {
					return Decision{Kind: k, Origin: OriginNineBit, Value: in.Imm}, moveBlocked
				}
			}
		case isa.MOVN:
			if in.Imm2 == 0 && in.Imm >= 0 && in.Imm <= 255 {
				v := ^in.Imm // movn produces ^(imm<<0): -(imm+1)
				if k, ok := e.valueKind(v); ok {
					return Decision{Kind: k, Origin: OriginNineBit, Value: v}, moveBlocked
				}
			}
		}
	}

	// ---- Speculative strength reduction: Table 1 (§4) ----
	if e.SpSR {
		if sd, ok := e.table1(in, srcN, srcM, nzcv, nzcvSpec, nzcvKnown); ok {
			return sd, moveBlocked
		}
	}

	return Decision{Kind: KindNone}, moveBlocked
}

// table1 implements every idiom row of the paper's Table 1.
func (e *Engine) table1(in *isa.Inst, srcN, srcM *Operand, nzcv isa.Flags, nzcvSpec, nzcvKnown bool) (Decision, bool) {
	spec2 := srcN.Spec || srcM.Spec
	specN := srcN.Spec

	move := func(src *Operand, spec bool) (Decision, bool) {
		if !moveOK(src, in.W) {
			return Decision{}, false
		}
		return Decision{Kind: KindMove, Origin: OriginSpSR, MoveOp: *src, Spec: spec}, true
	}
	value := func(v int64, spec bool) (Decision, bool) {
		if k, ok := e.valueKind(v); ok {
			return Decision{Kind: k, Origin: OriginSpSR, Value: v, Spec: spec}, true
		}
		return Decision{}, false
	}

	switch in.Op {
	case isa.SUB:
		if in.UseImm {
			// sub dst, src0, #1 : zero-idiom when src0 == 0x1.
			if in.Imm == 1 && known1(srcN) {
				return value(0, specN)
			}
			return Decision{}, false
		}
		// sub dst, src0, src1.
		if known0(srcM) { // src1 == 0x0 → move-idiom
			return move(srcN, srcM.Spec)
		}
		if known1(srcN) && known1(srcM) { // 1-1 → zero-idiom
			return value(0, spec2)
		}

	case isa.ADD, isa.ORR, isa.EOR:
		if in.UseImm {
			// add/orr/xor dst, src0, #1 : one-idiom when src0 == 0x0.
			if in.Imm == 1 && known0(srcN) {
				return value(1, specN)
			}
			return Decision{}, false
		}
		// add/orr/xor dst, src0, src1 : move-idiom on a zero source.
		if known0(srcN) {
			return move(srcM, srcN.Spec)
		}
		if known0(srcM) {
			return move(srcN, srcM.Spec)
		}

	case isa.AND:
		if in.UseImm {
			// and dst, src0, #1 : zero-idiom (src0==0) / one-idiom (src0==1);
			// and dst, src0, #imm : zero-idiom when src0 == 0x0.
			if known0(srcN) {
				return value(0, specN)
			}
			if in.Imm == 1 && known1(srcN) {
				return value(1, specN)
			}
			return Decision{}, false
		}
		if known0(srcN) {
			return value(0, specN)
		}
		if known0(srcM) {
			return value(0, srcM.Spec)
		}

	case isa.LSR, isa.LSL, isa.ASR:
		// shr/shl dst, src0, ... : zero-idiom when src0 == 0x0;
		// register form: move-idiom when the shift amount is 0x0.
		if known0(srcN) {
			return value(0, specN)
		}
		if !in.UseImm && known0(srcM) {
			return move(srcN, srcM.Spec)
		}

	case isa.UBFM:
		if known0(srcN) {
			return value(0, specN)
		}

	case isa.BIC:
		// bic dst, src0, x : src0==0 → zero-idiom; x==0 → move-idiom.
		if known0(srcN) {
			return value(0, specN)
		}
		if in.UseImm {
			if in.Imm == 0 {
				return move(srcN, false)
			}
		} else if known0(srcM) {
			return move(srcN, srcM.Spec)
		}

	case isa.RBIT:
		if known0(srcN) {
			return value(0, specN)
		}

	case isa.ANDS:
		// ands: a zero source forces result 0x0 and NZCV = {N0,Z1,C0,V0},
		// fully eliminable given hardwired flag registers (§4.2).
		zeroSrc := known0(srcN) || (!in.UseImm && known0(srcM))
		if zeroSrc {
			spec := specN
			if !in.UseImm && known0(srcM) && !known0(srcN) {
				spec = srcM.Spec
			}
			d := Decision{Origin: OriginSpSR, SetsNZCV: true, NZCV: isa.ZeroResultFlags(), Spec: spec}
			if in.Rd == isa.XZR {
				d.Kind = KindNop
				return d, true
			}
			d.Kind = KindZero
			return d, true
		}
		// ands with both sources 0x1: result 0x1, flags all clear.
		oneOne := known1(srcN) && ((in.UseImm && in.Imm == 1) || (!in.UseImm && known1(srcM)))
		if oneOne {
			d := Decision{Origin: OriginSpSR, SetsNZCV: true, NZCV: 0, Spec: spec2}
			if in.Rd == isa.XZR {
				d.Kind = KindNop
				return d, true
			}
			d.Kind = KindOne
			return d, true
		}

	case isa.SUBS, isa.ADDS:
		// subs/adds with both operands in {0x0, 0x1}: result and flags
		// are computable at rename.
		var a, b int64
		var bKnown, bSpec bool
		if !srcN.Known || srcN.Value < 0 || srcN.Value > 1 {
			return Decision{}, false
		}
		a = srcN.Value
		if in.UseImm {
			b, bKnown = in.Imm, true
		} else if srcM.Known {
			b, bKnown, bSpec = srcM.Value, true, srcM.Spec
		}
		if !bKnown || b < 0 || b > 1 {
			return Decision{}, false
		}
		spec := srcN.Spec || bSpec
		var res int64
		var f isa.Flags
		if in.Op == isa.SUBS {
			res = a - b
			if res < 0 {
				f |= isa.FlagN
			}
			if res == 0 {
				f |= isa.FlagZ
			}
			if a >= b {
				f |= isa.FlagC
			}
		} else {
			res = a + b
			if res == 0 {
				f |= isa.FlagZ
			}
		}
		d := Decision{Origin: OriginSpSR, SetsNZCV: true, NZCV: f, Spec: spec}
		if in.Rd == isa.XZR {
			d.Kind = KindNop
			return d, true
		}
		if k, ok := e.valueKind(res); ok {
			d.Kind = k
			d.Value = res
			return d, true
		}
		return Decision{}, false // result not representable: must execute

	case isa.CBZ, isa.CBNZ:
		if srcN.Known {
			v := srcN.Value
			if in.W {
				v = int64(uint32(v))
			}
			taken := v == 0
			if in.Op == isa.CBNZ {
				taken = !taken
			}
			return Decision{Kind: KindBranch, Origin: OriginSpSR, Taken: taken, Spec: srcN.Spec}, true
		}

	case isa.TBZ, isa.TBNZ:
		if srcN.Known {
			bit := uint64(srcN.Value) >> (uint(in.Imm) & 63) & 1
			taken := bit == 0
			if in.Op == isa.TBNZ {
				taken = !taken
			}
			return Decision{Kind: KindBranch, Origin: OriginSpSR, Taken: taken, Spec: srcN.Spec}, true
		}

	case isa.BCOND:
		if nzcvKnown {
			return Decision{Kind: KindBranch, Origin: OriginSpSR, Taken: in.Cond.Holds(nzcv), Spec: nzcvSpec}, true
		}

	case isa.CSEL:
		if nzcvKnown {
			src := srcM
			if in.Cond.Holds(nzcv) {
				src = srcN
			}
			return move(src, nzcvSpec || src.Spec)
		}

	case isa.CSINC, isa.CSNEG:
		if nzcvKnown {
			if in.Cond.Holds(nzcv) {
				return move(srcN, nzcvSpec || srcN.Spec)
			}
			if srcM.Known {
				v := srcM.Value
				if in.Op == isa.CSINC {
					v++
				} else {
					v = -v
				}
				return value(v, nzcvSpec || srcM.Spec)
			}
		}
	}

	return Decision{}, false
}
