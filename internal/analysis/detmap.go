package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetmapConfig scopes the detmap analyzer.
type DetmapConfig struct {
	// SinkPrefixes are import-path prefixes whose packages produce
	// user-visible output (report text, JSON records, Konata traces).
	// Every function in a sink package is treated as output-path; in
	// other packages a function is output-path when it transitively
	// (within its package) reaches a sink package, fmt printing, or
	// encoding/json.
	SinkPrefixes []string
}

// fmtPrintFamily are the fmt entry points that turn data into report
// text. Errorf is excluded: error construction is not report output.
var fmtPrintFamily = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
	"Sprint": true, "Sprintln": true, "Sprintf": true,
}

// NewDetmap builds the detmap analyzer: a `range` over a map inside an
// output-path function observes Go's randomized iteration order, so two
// identical runs can emit differently-ordered report text, JSON, or
// trace lines — breaking the bit-identical-output guarantee the
// simcache and the golden tests rely on. The analyzer accepts the two
// deterministic idioms — collect-then-sort (a sort.*/slices.* call
// later in the same function) and order-insensitive map-to-map rebuilds
// (every loop statement writes only through map indexes or deletes) —
// and anything else needs keys sorted first or a justified
// //tvplint:ignore detmap comment.
func NewDetmap(cfg DetmapConfig) *Analyzer {
	a := &Analyzer{
		Name: "detmap",
		Doc:  "flag nondeterministic map iteration in functions that feed report text, JSON records, or Konata traces",
	}
	a.Run = func(pass *Pass) error {
		decls, objs := packageFuncs(pass)
		output := outputPathFuncs(pass, cfg, decls, objs)
		// Iterate declarations in file order (not over the output set)
		// so diagnostics are produced deterministically.
		for _, file := range pass.Pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn := objs[decl]
				if fn == nil || !output[fn] {
					continue
				}
				checkMapRanges(pass, decl, fn)
			}
		}
		return nil
	}
	return a
}

func checkMapRanges(pass *Pass, decl *ast.FuncDecl, fn *types.Func) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Pkg.Info.Types[rs.X].Type; t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortCallAfter(pass, decl, rs.End()) || orderInsensitiveBody(pass, rs.Body) {
			return true
		}
		pass.Reportf(rs.For, "range over map %s in output-path function %s: iteration order is randomized and feeds report/record/trace output; iterate sorted keys (or //tvplint:ignore detmap <reason>)",
			types.ExprString(rs.X), fn.Name())
		return true
	})
}

// packageFuncs indexes the package's function declarations by their
// types.Func object.
func packageFuncs(pass *Pass) (map[*types.Func]*ast.FuncDecl, map[*ast.FuncDecl]*types.Func) {
	decls := map[*types.Func]*ast.FuncDecl{}
	objs := map[*ast.FuncDecl]*types.Func{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
				objs[fd] = fn
			}
		}
	}
	return decls, objs
}

// outputPathFuncs computes the set of functions whose results feed
// user-visible output: everything in a sink package, plus (elsewhere)
// the in-package transitive callers of sink calls.
func outputPathFuncs(pass *Pass, cfg DetmapConfig, decls map[*types.Func]*ast.FuncDecl, objs map[*ast.FuncDecl]*types.Func) map[*types.Func]bool {
	output := map[*types.Func]bool{}
	if hasAnyPrefix(pass.Pkg.Path, cfg.SinkPrefixes) {
		for fn := range decls {
			output[fn] = true
		}
		return output
	}
	// callers[g] = functions in this package that call g.
	callers := map[*types.Func][]*types.Func{}
	var work []*types.Func
	for fn, decl := range decls {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch path := callee.Pkg().Path(); {
			case path == "fmt" && fmtPrintFamily[callee.Name()],
				path == "encoding/json",
				hasAnyPrefix(path, cfg.SinkPrefixes):
				if !output[fn] {
					output[fn] = true
					work = append(work, fn)
				}
			case path == pass.Pkg.Path:
				callers[callee] = append(callers[callee], fn)
			}
			return true
		})
	}
	for len(work) > 0 {
		g := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[g] {
			if !output[caller] {
				output[caller] = true
				work = append(work, caller)
			}
		}
	}
	return output
}

// calleeFunc resolves a call's target to a *types.Func when it names a
// declared function or method (conversions and builtins return nil).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// sortCallAfter reports whether decl contains a sort.* or slices.* call
// positioned after pos — the collect-then-sort idiom, where the map loop
// only gathers entries and a later sort imposes the deterministic order.
func sortCallAfter(pass *Pass, decl *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderInsensitiveBody reports whether every statement of a map-range
// body only writes through map indexes or deletes map keys — a
// map-to-map rebuild whose result cannot depend on iteration order
// because each source key is visited exactly once.
func orderInsensitiveBody(pass *Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					return false
				}
				t := pass.Pkg.Info.Types[ix.X].Type
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "delete" {
				return false
			}
			if _, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); !ok {
				return false
			}
		default:
			return false
		}
	}
	return true
}
