package pipeline

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memdep"
	"repro/internal/prefetch"
	"repro/internal/prog"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/vp"
)

const (
	// redirectPenalty is the fixed pipe-restart bubble after a branch
	// resolves against its prediction or a flush redirects fetch; the
	// refill of the frontend stages provides the rest of the penalty
	// naturally.
	redirectPenalty = 2
	// neverReady marks an unproduced physical register.
	neverReady = ^uint64(0)
	// deadlockWindow is a debugging aid: the core panics if no µop
	// commits for this many cycles, which always indicates a model bug.
	deadlockWindow = 200000
)

// fqEntry is a fetched architectural instruction waiting for decode.
// Pointer-free (tvplint hotstruct): the dynamic record is re-reached
// through the stream arena by seq; the static index feeds the crack table.
//
//tvp:hotstruct
type fqEntry struct {
	seq        uint64
	fetchCycle uint64
	sIdx       int32
}

// dqEntry is a decoded µop waiting for rename. Pointer-free like fqEntry.
//
//tvp:hotstruct
type dqEntry struct {
	seq         uint64
	decodeCycle uint64
	sIdx        int32
	kind        isa.UOpKind
	class       isa.Class
	last        bool
}

// predInfo caches fetch-time predictor state per dynamic instruction, so
// a refetch after a flush reuses the original structural predictions
// while re-evaluating use-time policy (e.g. VP silencing).
type predInfo struct {
	seqPlus1  uint64 // seq+1; 0 = invalid
	bpMispred bool
	btbMiss   bool
	vpValid   bool
	vpConf    bool
	vpValue   uint64
	vpLookup  vp.Lookup
}

// Core is one simulated out-of-order core attached to a dynamic
// instruction stream.
type Core struct {
	cfg    *config.Machine
	stream *emu.Stream
	code   []isa.Inst // program text (static instructions, indexed by uop.sIdx)
	st     stats.Sim

	// Predictors and memory system.
	tage   *bp.TAGE
	btb    *bp.BTB
	ras    *bp.RAS
	ind    *bp.Indirect
	vpred  *vp.Predictor
	ssets  *memdep.StoreSets
	mem    *cache.Hierarchy
	tlbs   *tlb.Hierarchy
	ren    *rename.Renamer
	engine rename.Engine

	cycle   uint64
	uSeqCtr uint64
	skipOK  bool   // event-driven cycle skipping enabled (cached off cfg)
	skipped uint64 // cycles advanced by trySkip (diagnostic, not a stat)

	// Frontend state.
	fetchQ          ring[fqEntry]
	decodeQ         ring[dqEntry]
	fetchStallUntil uint64
	waitBranchSeq   uint64 // fetch stalled until this branch resolves (+1); 0 = none
	curFetchLine    uint64
	lineReadyAt     uint64
	haltSeen        bool
	predRing        []predInfo
	crack           []crackStatic // per static instruction, precomputed at build

	// Backend state. The scheduler-side structures hold ROB slot indices
	// (int32) instead of *uop pointers: the issue/wakeup scans then walk
	// dense index arrays plus the ROB ring itself, which halves their
	// footprint and keeps appends free of GC write barriers.
	rob []uop // ring buffer
	// robReady is the struct-of-arrays split of the µops' ready cycles
	// (indexed by ROB slot, lockstep with rob): the complete/commit/skip
	// scans poll only this dense uint64 array instead of dragging each
	// 128-byte uop line through the cache to read one field.
	robReady     []uint64
	robHead      int
	robTail      int
	robCnt       int
	dispPtr      int // ring index of the next µop to dispatch
	dispCnt      int // µops renamed but not yet dispatched
	iq           []int32
	iqWake       []uint64 // per-iq-entry issue lower bound (lockstep with iq); 0 = recheck every cycle
	// Wakeup scoreboard (scoreboard.go): the event-driven replacement for
	// the polling iq/iqWake scan, selected by useSB. Producers keep
	// singly-linked waiter lists of IQ entries (per physical register and
	// per ROB slot for flag/memdep obstacles); issue scans only readyMask.
	// The polling structures above are retained verbatim as the oracle for
	// TestIssueScoreboardEquivalence and DisableWakeupScoreboard runs.
	useSB        bool
	sbRecheck    bool     // GVP only: re-run srcsReady before issuing (repair can raise bounds)
	schedState   []uint8  // per ROB slot: sNone / sWaiting / sReady
	schedWake    []uint64 // per ROB slot: issue lower bound while sReady
	waitNext     []int32  // per ROB slot: next waiter in the producer's list
	waitKind     []uint8  // per ROB slot: which list the entry waits on (wkInt/wkFP/wkSlot)
	waitKey      []int32  // per ROB slot: list key (phys reg name or producer ROB slot)
	intWaitHead  []int32  // per int phys reg: head of its waiter list
	fpWaitHead   []int32  // per fp phys reg: head of its waiter list
	slotWaitHead []int32  // per ROB slot: waiters on a flag producer or pending store
	readyMask    []uint64 // per ROB slot, one bit: set iff sReady; scanned in ring order from robHead
	wheelHead    []int32  // per wake-wheel slot: head of the entries maturing that cycle (linked via waitNext)
	wheelBits    []uint64 // per wake-wheel slot, one bit: set iff the slot is non-empty
	iqCnt        int      // scheduler occupancy under useSB (mirrors len(iq))
	lq           queue[int32]
	sq           queue[int32]
	execL        []int32
	intReadyAt   []uint64
	fpReadyAt    []uint64
	predictedReg []int32 // GVP: ROB slot of the in-flight wide prediction per physical reg; noIdx = none
	lastFlagWIdx int32   // ROB slot of the youngest renamed flag writer; noIdx = none
	lastFlagWSeq uint64

	fus              fuState
	flushedThisCycle bool
	tracer           Tracer
	probe            Probe
	hooks            Probe // probe's event hooks, armed at the warmup boundary

	// Top-down CPI-stack accounting (cpistack.go). acct is nil until the
	// warmup boundary of a run with accounting requested (EnableCPIStack
	// or an attached CPIProbe), so the detached hot path pays one
	// nil-check per cycle. redirectCause is maintained unconditionally
	// (flush paths are cold) and read only by the classifier.
	cpiOn         bool
	acct          *cpiAcct
	cpiProbe      CPIProbe // probe's CPI extension, if it has one
	cpiHooks      CPIProbe // armed alongside acct at the warmup boundary
	redirectCause uint8

	committed   uint64 // committed architectural instructions (total)
	lastCommitC uint64 // cycle of the last commit (deadlock detection)

	// stopCheck, when non-nil, is polled every stopCheckCycles cycles by
	// Run; true abandons the run with Result.Stopped set (cooperative
	// per-request cancellation for the tvpd serving layer).
	stopCheck func() bool

	// Differential validation (config.Machine.CrossCheck) and its fault
	// injector (crosscheck.go). xcheck is nil when disabled.
	xcheck      *crossCheck
	bugArmed    bool
	bugMask     uint64
	bugSeqPlus1 uint64 // seq+1 of the injected corruption; 0 = none yet
}

// New builds a core for the given machine over the given program.
func New(cfg *config.Machine, p *prog.Program) *Core {
	return NewFromEmulator(cfg, emu.New(p))
}

// NewFromEmulator builds a core over an existing emulator, which may be
// mid-program — typically one restored from a warmup checkpoint
// (emu.Snapshot.Restore), so several timing configurations can share a
// single functional warmup. Sequence numbering continues from the
// emulator's position.
func NewFromEmulator(cfg *config.Machine, e *emu.Emulator) *Core {
	return newCore(cfg, emu.NewStream(e, 0), e.Prog, e)
}

// NewFromTrace builds a core that replays a pre-recorded functional trace
// (emu.RecordTrace) instead of driving a live emulator. The functional
// stream is configuration-invariant, so any number of machine
// configurations can be built over one shared trace — the recording is
// read-only and each core gets its own replay cursor. Timing results are
// bit-identical to a live-emulator run from the same position
// (TestBatchedSweepMatchesSerial).
//
// CrossCheck is not supported in trace mode: the differential validator
// replays retirement against a shadow emulator snapshotted at core build,
// which requires the live emulator.
func NewFromTrace(cfg *config.Machine, t *emu.Trace) *Core {
	if cfg.CrossCheck {
		panic("pipeline: CrossCheck requires a live emulator (NewFromEmulator), not a recorded trace")
	}
	return newCore(cfg, emu.NewTraceStream(t), t.Prog, nil)
}

// newCore is the shared construction path: a validated config, a dynamic
// instruction stream (live ring or recorded trace), the program for the
// static tables, and the live emulator (nil in trace mode) for the
// cross-check shadow snapshot.
func newCore(cfg *config.Machine, stream *emu.Stream, p *prog.Program, e *emu.Emulator) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		cfg:    cfg,
		stream: stream,
		code:   p.Code,
	}
	c.tage = bp.NewTAGE(bp.TAGEConfig{
		BaseLog2:   cfg.BPBaseLog2,
		TaggedLog2: cfg.BPTaggedLog2,
		Tables:     cfg.BPTables,
		TagBits:    cfg.BPTagBits,
		MinHist:    cfg.BPMinHist,
		MaxHist:    cfg.BPMaxHist,
	})
	c.btb = bp.NewBTB(cfg.BTBEntries, cfg.BTBAssoc)
	c.ras = bp.NewRAS(cfg.RASEntries)
	c.ind = bp.NewIndirect(cfg.IndirectEntries)
	if cfg.VP.Mode != config.VPOff {
		c.vpred = vp.New(cfg.VP)
	}
	c.ssets = memdep.New(cfg.SSITEntries, cfg.LFSTEntries)
	var l1dPF, l2PF cache.Prefetcher
	if cfg.StridePrefetch {
		l1dPF = prefetch.NewStride(256, cfg.StrideDegree, cfg.L1D.LineBytes)
	}
	if cfg.AMPMPrefetch {
		l2PF = prefetch.NewAMPM(128, 2, cfg.L2.LineBytes)
	}
	c.mem = cache.NewHierarchy(cfg, l1dPF, l2PF)
	c.tlbs = tlb.NewHierarchy(cfg)
	c.ren = rename.NewRenamer(cfg.IntPRF, cfg.FPPRF)
	c.engine = rename.Engine{
		ZeroOneIdiom: cfg.ZeroOneIdiom,
		MoveElim:     cfg.MoveElim,
		NineBit:      cfg.NineBitIdiom,
		SpSR:         cfg.SpSR,
		Inline:       cfg.VP.Mode == config.TVP || cfg.VP.Mode == config.GVP,
	}
	c.rob = make([]uop, cfg.ROBSize)
	c.robReady = make([]uint64, cfg.ROBSize)
	c.iq = make([]int32, 0, cfg.IQSize)
	c.iqWake = make([]uint64, 0, cfg.IQSize)
	// execL holds issued-but-incomplete µops, bounded by the ROB;
	// preallocating keeps doIssue's append off the heap (hotpathalloc).
	c.execL = make([]int32, 0, cfg.ROBSize)
	c.lq.buf = make([]int32, 0, cfg.LQSize)
	c.sq.buf = make([]int32, 0, cfg.SQSize)
	c.lastFlagWIdx = noIdx
	// Wakeup scoreboard arrays (scoreboard.go): all per-ROB-slot or
	// per-physical-register, preallocated once; list heads start empty.
	// The PRF-ready and scoreboard arrays are carved from one backing
	// allocation per element type to keep core construction cheap:
	// bench-guard counts whole-run allocs/op, and per-slice makes here
	// showed up against it.
	c.useSB = !cfg.DisableWakeupScoreboard
	// Only GVP can raise a concrete ready time after the scoreboard has
	// cached it (wide-prediction repair rewrites intReadyAt at validation,
	// backend.go validateVP); every other producer writes its ready time
	// exactly once. So outside GVP a schedWake bound that has arrived is
	// the truth and sbIssue skips the srcsReady re-check.
	c.sbRecheck = cfg.VP.Mode == config.GVP
	u64 := make([]uint64, cfg.IntPRF+cfg.FPPRF+cfg.ROBSize+(cfg.ROBSize+63)/64+wheelSpan/64)
	c.intReadyAt, u64 = u64[:cfg.IntPRF:cfg.IntPRF], u64[cfg.IntPRF:]
	c.fpReadyAt, u64 = u64[:cfg.FPPRF:cfg.FPPRF], u64[cfg.FPPRF:]
	c.schedWake, u64 = u64[:cfg.ROBSize:cfg.ROBSize], u64[cfg.ROBSize:]
	nrm := (cfg.ROBSize + 63) / 64
	c.readyMask, u64 = u64[:nrm:nrm], u64[nrm:]
	c.wheelBits = u64
	i32 := make([]int32, 3*cfg.ROBSize+2*cfg.IntPRF+cfg.FPPRF+wheelSpan)
	c.predictedReg, i32 = i32[:cfg.IntPRF:cfg.IntPRF], i32[cfg.IntPRF:]
	c.waitNext, i32 = i32[:cfg.ROBSize:cfg.ROBSize], i32[cfg.ROBSize:]
	c.waitKey, i32 = i32[:cfg.ROBSize:cfg.ROBSize], i32[cfg.ROBSize:]
	c.slotWaitHead, i32 = i32[:cfg.ROBSize:cfg.ROBSize], i32[cfg.ROBSize:]
	c.intWaitHead, i32 = i32[:cfg.IntPRF:cfg.IntPRF], i32[cfg.IntPRF:]
	c.fpWaitHead, i32 = i32[:cfg.FPPRF:cfg.FPPRF], i32[cfg.FPPRF:]
	c.wheelHead = i32
	u8 := make([]uint8, 2*cfg.ROBSize)
	c.schedState, c.waitKind = u8[:cfg.ROBSize:cfg.ROBSize], u8[cfg.ROBSize:]
	for i := range c.predictedReg {
		c.predictedReg[i] = noIdx
	}
	for i := range c.intWaitHead {
		c.intWaitHead[i] = noIdx
	}
	for i := range c.fpWaitHead {
		c.fpWaitHead[i] = noIdx
	}
	for i := range c.slotWaitHead {
		c.slotWaitHead[i] = noIdx
	}
	for i := range c.wheelHead {
		c.wheelHead[i] = noIdx
	}
	// Cracking depends only on the static instruction, so the decode
	// stage's per-µop switch work is hoisted here, once per text entry.
	// The PC is static too (prog.PC is a pure function of the index), so
	// hot-path consumers (store-set training, probe hooks, CPI hooks) read
	// it from here instead of touching the dynamic record.
	c.crack = make([]crackStatic, len(p.Code))
	for i := range p.Code {
		in := &p.Code[i]
		plan, flags := srcPlanOf(in), crackFlagsOf(in)
		// The reduction engine inspects both integer operands regardless
		// of the source plan, so decide-eligible µops always read them.
		need := plan & (spN | spM)
		if flags&cfDecide != 0 {
			need = spN | spM
		}
		c.crack[i] = crackStatic{
			pc:    prog.PC(i),
			class: isa.OpClass(in.Op),
			two:   isa.CrackCount(in) == 2,
			fpMac: in.Op == isa.FMADD,
			plan:  plan,
			flags: flags,
			need:  need,
		}
	}
	c.fuSetup()
	c.fetchQ = newRing[fqEntry](cfg.FetchQueue)
	c.decodeQ = newRing[dqEntry](dqCap)
	c.predRing = make([]predInfo, emu.DefaultStreamCapacity)
	c.curFetchLine = ^uint64(0)
	c.skipOK = !cfg.DisableCycleSkip
	if cfg.CrossCheck {
		// Snapshot before the stream's first Peek advances the emulator,
		// so the shadow starts from exactly the state retirement replays.
		c.xcheck = &crossCheck{shadow: e.Snapshot().Restore()}
	}
	return c
}

// Result is the outcome of a simulation run.
type Result struct {
	Stats     stats.Sim
	Cycles    uint64 // total cycles including warmup
	Committed uint64 // total committed architectural instructions
	Halted    bool   // the program ran to completion
	// Stopped reports that the run was abandoned early by the stop check
	// (SetStopCheck); the stats cover only the simulated prefix and must
	// not be cached or served as the point's result.
	Stopped bool
	// CPI is the post-warmup commit-slot attribution (zero unless
	// EnableCPIStack was called or a CPIProbe was attached). Invariant:
	// CPI.Total() == Stats.Cycles × CommitWidth, exactly.
	CPI stats.CPIStack
}

// stopCheckCycles is how often Run polls the stop check: rarely enough
// that the poll is free against ~10^3 simulated cycles of work, often
// enough that a canceled request abandons its run within microseconds of
// host time.
const stopCheckCycles = 4096

// SetStopCheck installs a cooperative cancellation hook: Run polls fn
// every stopCheckCycles simulated cycles and abandons the run (returning
// Result.Stopped) when it reports true. The serving layer points fn at a
// request context so per-request deadlines reach into the cycle loop.
// With no hook installed the loop pays one nil-check per cycle.
func (c *Core) SetStopCheck(fn func() bool) { c.stopCheck = fn }

// Run simulates until maxInsts architectural instructions have committed
// (post-warmup instructions count toward stats), or until the program
// halts. warmup instructions commit before stats collection begins.
func (c *Core) Run(warmup, maxInsts uint64) Result {
	var warmSnap stats.Sim
	warmed := warmup == 0
	stopped := false
	stopAt := c.cycle + stopCheckCycles
	// Interval sampling (telemetry): probeNext is the committed-
	// instruction count of the next sample, 0 while sampling is off, so
	// the probe-less hot loop pays a single always-false comparison.
	var probeEvery, probeNext uint64
	if warmed {
		probeEvery, probeNext = c.armObservers()
	}
	for {
		if !warmed && c.committed >= warmup {
			c.syncMemStats()
			warmSnap = c.st
			warmed = true
			probeEvery, probeNext = c.armObservers()
		}
		if probeNext != 0 && c.committed >= probeNext {
			c.syncMemStats()
			c.cpiSample()
			c.probe.Sample(c.committed, c.cycle, &c.st)
			probeNext = c.committed + probeEvery
		}
		if c.committed >= warmup+maxInsts {
			break
		}
		if c.haltSeen && c.robCnt == 0 && c.dispCnt == 0 {
			break
		}
		if c.stopCheck != nil && c.cycle >= stopAt {
			if c.stopCheck() {
				stopped = true
				break
			}
			stopAt = c.cycle + stopCheckCycles
		}
		c.step()
	}
	if !warmed {
		warmSnap = stats.Sim{} // program shorter than warmup: count it all
	}
	c.syncMemStats()
	c.cpiSample() // tail CPI snapshot, before the tail counter sample
	if c.probe != nil {
		c.probe.Sample(c.committed, c.cycle, &c.st) // tail sample
	}
	res := Result{
		Cycles:    c.cycle,
		Committed: c.committed,
		Halted:    c.haltSeen && c.robCnt == 0,
		Stopped:   stopped,
	}
	if c.acct != nil {
		res.CPI = c.acct.st
	}
	if c.xcheck != nil && res.Halted {
		c.xcheck.finish()
	}
	res.Stats = stats.Sub(&c.st, &warmSnap)
	return res
}

// step advances the machine by one cycle — or, when every stage is
// provably idle, first jumps the cycle counter to the next wake event
// (skip.go) and runs the stages there.
//tvp:hotpath
func (c *Core) step() {
	// Mature the wake wheel before trySkip (and again after a jump), so
	// the ready mask is exact for this cycle's skip decision and issue.
	if c.useSB {
		c.wheelAdvance()
	}
	if c.skipOK {
		n := c.cycle
		c.trySkip()
		if c.useSB && c.cycle != n {
			c.wheelAdvance()
		}
	}
	if c.acct != nil {
		c.cpiBegin()
	}
	c.complete()
	c.commit()
	c.issue()
	c.dispatch()
	c.renameStage()
	c.decode()
	c.fetch()
	if c.acct != nil {
		c.cpiAccount()
	}
	c.cycle++
	c.st.Cycles++
	if c.cycle-c.lastCommitC > deadlockWindow {
		panic(fmt.Sprintf("pipeline: no commit for %d cycles at cycle %d (rob=%d iq=%d head-state=%v)",
			uint64(deadlockWindow), c.cycle, c.robCnt, c.iqCount(), c.headState()))
	}
}

// instOf returns the static instruction of a µop.
//
//tvp:hotpath
func (c *Core) instOf(u *uop) *isa.Inst { return &c.code[u.sIdx] }

// iqCount returns the scheduler occupancy under either issue scheme.
//
//tvp:hotpath
func (c *Core) iqCount() int {
	if c.useSB {
		return c.iqCnt
	}
	return len(c.iq)
}

func (c *Core) headState() string {
	if c.robCnt == 0 {
		return "empty"
	}
	u := &c.rob[c.robHead]
	s := fmt.Sprintf("seq=%d op=%v kind=%d state=%d ready=%d", u.seq, c.instOf(u).Op, u.kind, u.state, c.robReady[c.robHead])
	for i := 0; i < int(u.nsrc); i++ {
		src := u.srcs[i]
		if src.fp {
			s += fmt.Sprintf(" fp%v@%d", src.name, c.fpReadyAt[src.name])
		} else {
			s += fmt.Sprintf(" %v@%d", src.name, c.intReadyAt[src.name])
		}
	}
	if u.memDepSeq != 0 {
		s += fmt.Sprintf(" memdep=%d pending=%v", u.memDepSeq-1, c.storePending(u.memDepSeq-1))
	}
	if u.flagR && u.flagSrcIdx != noIdx {
		if fs := &c.rob[u.flagSrcIdx]; fs.uSeq == u.flagSrcUSeq {
			s += fmt.Sprintf(" flagdep=%d@%d", fs.seq, c.robReady[u.flagSrcIdx])
		}
	}
	return s
}

// pred returns the fetch-time predictor record for seq; fresh reports
// whether this is the first fetch of this dynamic instance (predictors
// must only be queried and trained once per instance).
//tvp:hotpath
func (c *Core) pred(seq uint64) (p *predInfo, fresh bool) {
	p = &c.predRing[seq&(emu.DefaultStreamCapacity-1)]
	if p.seqPlus1 != seq+1 {
		// Reset fields individually rather than `*p = predInfo{...}`: the
		// embedded vp.Lookup dominates the struct and every read of it is
		// gated on vpValid, so clearing it per instruction is pure memclr
		// cost on the fetch path.
		p.seqPlus1 = seq + 1
		p.bpMispred = false
		p.btbMiss = false
		p.vpValid = false
		p.vpConf = false
		p.vpValue = 0
		return p, true
	}
	return p, false
}

// Stats exposes the accumulated counters (primarily for tests).
func (c *Core) Stats() *stats.Sim { return &c.st }

// MemHierarchy exposes the cache hierarchy (for tests and diagnostics).
func (c *Core) MemHierarchy() *cache.Hierarchy { return c.mem }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// SkippedCycles returns the number of cycles the event-driven scheduler
// advanced over without simulating (0 with DisableCycleSkip). Purely
// diagnostic: skipped cycles are fully accounted in Cycles and stats.
func (c *Core) SkippedCycles() uint64 { return c.skipped }
