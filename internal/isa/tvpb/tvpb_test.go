package tvpb

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// sample builds a program exercising both segment kinds: a raw segment
// (the table holds nonzero label PCs) and a zero-fill arena.
func sample() *prog.Program {
	b := prog.NewBuilder("tvpb_sample")
	tbl := b.AllocWords(2, 0x1234, 0x5678)
	arena := b.Alloc(4096, 8)
	b.MovAddr(isa.X0, tbl)
	b.MovAddr(isa.X1, arena)
	b.Ldr(isa.X2, isa.X0, 8, 8)
	b.Str(isa.X2, isa.X1, 0, 8)
	b.Halt()
	return b.Build()
}

func TestRoundTrip(t *testing.T) {
	p := sample()
	data := EncodeProgram(p)
	q, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name {
		t.Errorf("name: got %q, want %q", q.Name, p.Name)
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code: got %d insts, want %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, q.Code[i], p.Code[i])
		}
	}
	if len(q.Data) != len(p.Data) {
		t.Fatalf("data: got %d segments, want %d", len(q.Data), len(p.Data))
	}
	for i := range p.Data {
		if q.Data[i].Base != p.Data[i].Base || !bytes.Equal(q.Data[i].Bytes, p.Data[i].Bytes) {
			t.Errorf("segment %d: base %#x/%#x, %d/%d bytes", i,
				q.Data[i].Base, p.Data[i].Base, len(q.Data[i].Bytes), len(p.Data[i].Bytes))
		}
	}
	// Re-encoding the decoded program must reproduce the container
	// bit-for-bit: the corpus pinning tests depend on this.
	if again := EncodeProgram(q); !bytes.Equal(again, data) {
		t.Errorf("re-encode differs: %d vs %d bytes", len(again), len(data))
	}
}

// TestZeroFillCompression checks that the all-zero arena costs its
// 17-byte segment header, not its length, in the container.
func TestZeroFillCompression(t *testing.T) {
	b := prog.NewBuilder("z")
	b.Alloc(1<<20, 8)
	b.Halt()
	data := EncodeProgram(b.Build())
	if len(data) > 256 {
		t.Fatalf("zero-fill arena not compressed: container is %d bytes", len(data))
	}
}

// TestDecodeErrors corrupts the sample container one way per case and
// requires a positioned error naming the damaged record.
func TestDecodeErrors(t *testing.T) {
	p := sample()
	good := EncodeProgram(p)
	instBase := 16 + len(p.Name) // magic + version + name length + name + inst count

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, "bad magic"},
		{"bad version", func(d []byte) []byte { binary.LittleEndian.PutUint32(d[4:], 9); return d }, "unsupported container version 9"},
		{"bad opcode", func(d []byte) []byte { d[instBase] = 0xEE; return d }, "inst 0: isa: decode: bad op 238"},
		{"truncated mid-inst", func(d []byte) []byte { return d[:instBase+isa.EncodedSize+5] }, "inst 1: truncated container"},
		{"truncated header", func(d []byte) []byte { return d[:6] }, "version"},
		{"trailing bytes", func(d []byte) []byte { return append(d, 0) }, "1 trailing bytes"},
		{"oversized name", func(d []byte) []byte { binary.LittleEndian.PutUint32(d[8:], 1<<16); return d }, "name length 65536 exceeds limit"},
		{"oversized inst count", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[12+len(p.Name):], 1<<24)
			return d
		}, "instruction count 16777216 exceeds limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := c.mutate(append([]byte(nil), good...))
			_, err := DecodeProgram(data)
			if err == nil {
				t.Fatal("decode accepted a corrupt container")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
