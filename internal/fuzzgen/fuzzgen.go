// Package fuzzgen generates deterministic constrained-random programs over
// the simulator's micro-ISA for differential testing: every generated
// program self-terminates, and its complete architectural behavior is
// defined by the functional emulator (internal/emu), which the pipeline's
// shadow-emulator retire checker (config.Machine.CrossCheck) treats as the
// oracle. All randomness flows through a single seeded xrand generator, so
// one uint64 seed reproduces the program bit-exactly — the property the
// native fuzz targets and the divergence minimizer rely on.
//
// The generator is constrained, not free-form: register roles, bounded
// loop counters, masked memory indices and a private data arena guarantee
// termination and keep every effective address inside allocated data,
// while the block mix deliberately exercises the mechanisms the paper's
// machinery speculates on — NZCV flag idioms feeding conditional selects,
// SpSR-eligible Table 1 shapes, W/X width mixes, value-predictable
// constant loads, all four addressing modes, calls, and indirect jumps.
package fuzzgen

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/xrand"
)

// Register roles. X0..X14 form the general pool; the remaining registers
// have fixed jobs so generated addresses and trip counts stay bounded.
const (
	poolSize = 15      // X0..X14: random sources/destinations
	regTmp   = isa.X15 // scratch for masked indices
	regJump  = isa.X16 // indirect-branch target
	regTbl   = isa.X17 // jump-table base
	regDiv   = isa.X22 // small non-zero divisor
	regConst = isa.X23 // read-only constant area base (VP-predictable loads)
	regWalk  = isa.X25 // walking pointer for pre/post-index accesses
	regArena = isa.X26 // read/write arena base
	regOuter = isa.X27 // outer loop counter
	regInner = isa.X28 // inner loop counter
)

const (
	arenaSize = 4096 // bytes of read/write data
	arenaMid  = arenaSize / 2
	// maxDrift bounds the walking pointer's compile-time displacement from
	// arena midpoint, keeping every pre/post-index access inside the arena
	// (the pointer is re-centered at the top of every outer iteration).
	maxDrift = arenaMid - 64
)

type gen struct {
	r      *xrand.Rand
	b      *prog.Builder
	leaves []prog.Label
	drift  int64 // net walking-pointer displacement within one outer iteration
}

// Generate builds the program for the given seed. The same seed always
// yields an identical program.
func Generate(seed uint64) *prog.Program { return GenerateIters(seed, 0) }

// GenerateIters builds the same program as Generate(seed) except for
// the outer-loop trip count, which is overridden to iters when nonzero.
// The random draw for the default count is consumed either way, so the
// rest of the instruction stream stays bit-identical to Generate's.
// The promoted suite members (internal/workload) pin seeds with an
// effectively unbounded count so timing runs never exhaust the program.
func GenerateIters(seed, iters uint64) *prog.Program {
	g := &gen{r: xrand.New(seed), b: prog.NewBuilder(fmt.Sprintf("fuzz-%#016x", seed))}

	constVals := make([]uint64, 8)
	for i := range constVals {
		constVals[i] = g.r.Uint64()
	}
	constArea := g.b.AllocWords(len(constVals), constVals...)
	arena := g.b.Alloc(arenaSize, 8)

	for i := 0; i < 1+g.r.Intn(3); i++ {
		g.leaves = append(g.leaves, g.b.NewLabel())
	}

	// Init: random pool values, constants, bases, loop bound.
	for r := isa.X0; r < isa.X0+poolSize; r++ {
		g.b.MovImm(r, g.r.Uint64())
	}
	for r := isa.X18; r <= isa.X21; r++ {
		g.b.MovImm(r, g.r.Uint64())
	}
	g.b.MovImm(regDiv, uint64(1+g.r.Intn(7)))
	g.b.MovAddr(regConst, constArea)
	g.b.MovAddr(regArena, arena)
	outer := uint64(4 + g.r.Intn(9))
	if iters != 0 {
		outer = iters
	}
	g.b.MovImm(regOuter, outer)

	top := g.b.Here()
	g.b.MovAddr(regWalk, arena+arenaMid)
	g.drift = 0
	for i, n := 0, 8+g.r.Intn(13); i < n; i++ {
		g.block()
	}
	g.b.SubsI(regOuter, regOuter, 1)
	g.b.BCond(isa.NE, top)
	g.b.Halt()

	// Leaf functions live after HALT; they end in RET and contain no calls.
	for _, l := range g.leaves {
		g.b.Bind(l)
		for i, n := 0, 2+g.r.Intn(4); i < n; i++ {
			g.alu()
		}
		g.b.Ret()
	}
	return g.b.Build()
}

// gp picks a random pool register.
func (g *gen) gp() isa.Reg { return isa.Reg(g.r.Intn(poolSize)) }

// src picks a source register: usually from the pool, occasionally one of
// the fixed random constants in X18..X21.
func (g *gen) src() isa.Reg {
	if g.r.OneIn(6) {
		return isa.Reg(int(isa.X18) + g.r.Intn(4))
	}
	return g.gp()
}

// cond picks a random condition code, excluding AL (whose inverse is
// undefined, and which makes conditional constructs degenerate).
func (g *gen) cond() isa.Cond { return isa.Cond(g.r.Intn(int(isa.AL))) }

func (g *gen) size() uint8 { return []uint8{1, 2, 4, 8}[g.r.Intn(4)] }

// block emits one random construct.
func (g *gen) block() {
	switch g.r.Intn(13) {
	case 0, 1:
		g.alu()
	case 2:
		g.widthMix()
	case 3:
		g.nzcvSelect()
	case 4:
		g.fwdBranch()
	case 5:
		g.innerLoop()
	case 6:
		g.call()
	case 7:
		g.jumpTable()
	case 8, 9:
		g.mem()
	case 10:
		g.constLoad()
	case 11:
		g.spsrIdiom()
	case 12:
		g.fp()
	}
}

// alu emits one random arithmetic/logic/shift/multiply/divide/move
// instruction over the pool, in a random width.
func (g *gen) alu() {
	w := g.r.OneIn(2)
	rd, rn, rm := g.gp(), g.src(), g.src()
	switch g.r.Intn(8) {
	case 0: // three-register ALU
		ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.ORR, isa.EOR, isa.BIC, isa.MUL}
		g.b.Emit(isa.Inst{Op: ops[g.r.Intn(len(ops))], Rd: rd, Rn: rn, Rm: rm, W: w})
	case 1: // immediate ALU
		ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.ORR, isa.EOR}
		imm := int64(g.r.Intn(2048)) - 1024
		g.b.Emit(isa.Inst{Op: ops[g.r.Intn(len(ops))], Rd: rd, Rn: rn, Imm: imm, UseImm: true, W: w})
	case 2: // shift by immediate or register (emu masks register amounts)
		ops := []isa.Op{isa.LSL, isa.LSR, isa.ASR}
		op := ops[g.r.Intn(len(ops))]
		if g.r.OneIn(2) {
			g.b.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Imm: int64(g.r.Intn(64)), UseImm: true, W: w})
		} else if op != isa.ASR {
			g.b.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm, W: w})
		} else {
			g.b.AsrI(rd, rn, int64(g.r.Intn(64)))
		}
	case 3: // bitfield extract / bit reverse
		if g.r.OneIn(2) {
			immr := int64(g.r.Intn(33))
			g.b.Ubfm(rd, rn, immr, immr+int64(g.r.Intn(31)))
		} else {
			g.b.Rbit(rd, rn)
		}
	case 4: // division: small known divisor or an arbitrary (possibly
		// zero) pool value — ARMv8 defines division by zero as zero.
		den := regDiv
		if g.r.OneIn(3) {
			den = rm
		}
		op := isa.UDIV
		if g.r.OneIn(2) {
			op = isa.SDIV
		}
		g.b.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: den, W: w})
	case 5: // immediate move sequences
		switch g.r.Intn(3) {
		case 0:
			g.b.MovImm(rd, g.r.Uint64())
		case 1:
			g.b.Movz(rd, uint16(g.r.Uint32()), int64(g.r.Intn(4)))
			g.b.Movk(rd, uint16(g.r.Uint32()), int64(g.r.Intn(4)))
		case 2:
			g.b.Emit(isa.Inst{Op: isa.MOVN, Rd: rd, Imm: int64(uint16(g.r.Uint32())), Imm2: int64(g.r.Intn(4)), W: w})
		}
	case 6: // register move (ME-eligible)
		if g.r.OneIn(2) {
			g.b.Mov(rd, rn)
		} else {
			g.b.MovW(rd, rn)
		}
	case 7: // flag-setting arithmetic with a dead or live result
		ops := []isa.Op{isa.ADDS, isa.SUBS, isa.ANDS}
		dst := rd
		if g.r.OneIn(3) {
			dst = isa.XZR
		}
		g.b.Emit(isa.Inst{Op: ops[g.r.Intn(len(ops))], Rd: dst, Rn: rn, Rm: rm, W: w})
	}
}

// widthMix writes a W-form result and consumes it in X form (and vice
// versa), exercising the 32-bit zero-extension contract end to end.
func (g *gen) widthMix() {
	rd, r2 := g.gp(), g.gp()
	g.b.Emit(isa.Inst{Op: isa.ADD, Rd: rd, Rn: g.gp(), Rm: g.gp(), W: true})
	g.b.Emit(isa.Inst{Op: isa.SUB, Rd: r2, Rn: rd, Rm: g.gp()})
	g.b.Emit(isa.Inst{Op: isa.EOR, Rd: g.gp(), Rn: r2, Rm: rd, W: true})
}

// nzcvSelect sets NZCV with a compare/test idiom and consumes it with a
// conditional select — the paper's Table 1 bread and butter.
func (g *gen) nzcvSelect() {
	switch g.r.Intn(4) {
	case 0:
		g.b.Cmp(g.gp(), g.gp())
	case 1:
		g.b.CmpI(g.gp(), int64(g.r.Intn(512))-256)
	case 2:
		g.b.Tst(g.gp(), g.gp())
	case 3:
		g.b.TstI(g.gp(), int64(g.r.Intn(256)))
	}
	c := g.cond()
	switch g.r.Intn(4) {
	case 0:
		g.b.Csel(g.gp(), g.gp(), g.gp(), c)
	case 1:
		g.b.Csinc(g.gp(), g.gp(), g.gp(), c)
	case 2:
		g.b.Csneg(g.gp(), g.gp(), g.gp(), c)
	case 3:
		g.b.Cset(g.gp(), c) // the canonical MVP-predictable boolean producer
	}
}

// fwdBranch emits a conditional forward skip over a short straight-line
// body.
func (g *gen) fwdBranch() {
	skip := g.b.NewLabel()
	switch g.r.Intn(5) {
	case 0:
		g.b.CmpI(g.gp(), int64(g.r.Intn(64)))
		g.b.BCond(g.cond(), skip)
	case 1:
		g.b.Cbz(g.gp(), skip)
	case 2:
		g.b.Cbnz(g.gp(), skip)
	case 3:
		g.b.Tbz(g.gp(), int64(g.r.Intn(64)), skip)
	case 4:
		g.b.Tbnz(g.gp(), int64(g.r.Intn(64)), skip)
	}
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.alu()
	}
	g.b.Bind(skip)
}

// innerLoop emits a bounded counted loop of straight-line ALU work.
func (g *gen) innerLoop() {
	g.b.MovImm(regInner, uint64(1+g.r.Intn(6)))
	l := g.b.Here()
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.alu()
	}
	g.b.SubsI(regInner, regInner, 1)
	g.b.BCond(isa.NE, l)
}

// call emits a BL to one of the leaf functions (bound after HALT).
func (g *gen) call() {
	g.b.Bl(g.leaves[g.r.Intn(len(g.leaves))])
}

// jumpTable emits a four-way computed goto: an indirect branch through a
// table of label PCs, indexed by two random bits of a pool register.
func (g *gen) jumpTable() {
	jt := g.b.AllocWords(4)
	var arms [4]prog.Label
	join := g.b.NewLabel()
	for i := range arms {
		arms[i] = g.b.NewLabel()
		g.b.SetWordLabel(jt+uint64(i)*8, arms[i])
	}
	g.b.AndI(regTmp, g.gp(), 3)
	g.b.MovAddr(regTbl, jt)
	g.b.LdrR(regJump, regTbl, regTmp, 3, 8)
	g.b.Br(regJump)
	for i := range arms {
		g.b.Bind(arms[i])
		g.alu()
		g.b.B(join)
	}
	g.b.Bind(join)
}

// mem emits loads/stores against the arena in one of the four addressing
// modes, with effective addresses kept in bounds by construction.
func (g *gen) mem() {
	size := g.size()
	switch g.r.Intn(3) {
	case 0: // immediate offset
		off := int64(g.r.Intn(arenaSize/8)) * 8
		if off > arenaSize-8 {
			off = arenaSize - 8
		}
		if g.r.OneIn(2) {
			g.b.Str(g.gp(), regArena, off, size)
		}
		g.b.Ldr(g.gp(), regArena, off, size)
	case 1: // masked register offset (scaled by the access size's shift)
		g.b.AndI(regTmp, g.gp(), 0x3f)
		if g.r.OneIn(2) {
			g.b.StrR(g.gp(), regArena, regTmp, 3, size)
		}
		g.b.LdrR(g.gp(), regArena, regTmp, 3, size)
	case 2: // walking pointer, pre/post-index (cracks into two µops)
		imm := int64(8 * (1 + g.r.Intn(2)))
		if g.r.OneIn(2) {
			imm = -imm
		}
		if d := g.drift + imm; d > maxDrift || d < -maxDrift {
			imm = -imm
		}
		g.drift += imm
		switch g.r.Intn(4) {
		case 0:
			g.b.LdrPost(g.gp(), regWalk, imm, size)
		case 1:
			g.b.StrPost(g.gp(), regWalk, imm, size)
		case 2:
			g.b.LdrPre(g.gp(), regWalk, imm, size)
		case 3:
			g.b.StrPre(g.gp(), regWalk, imm, size)
		}
	}
}

// constLoad reads from the read-only constant area: the loaded value never
// changes, making these the most value-predictable instructions in the
// program.
func (g *gen) constLoad() {
	off := int64(g.r.Intn(8)) * 8
	g.b.Ldr(g.gp(), regConst, off, g.size())
}

// spsrIdiom emits shapes from the paper's Table 1 whose results become
// statically known under speculative strength reduction: zero idioms,
// moves in arithmetic clothing, multiplies by 0/1, and compares of a
// register against itself.
func (g *gen) spsrIdiom() {
	rd, rn := g.gp(), g.gp()
	switch g.r.Intn(7) {
	case 0:
		g.b.Zero(rd) // eor rd, rd, rd
	case 1:
		g.b.Sub(rd, rn, rn) // always zero
	case 2:
		g.b.And(rd, rn, isa.XZR) // always zero
	case 3: // mul by a fresh 0 or 1 immediately ahead of it
		g.b.MovImm(regTmp, uint64(g.r.Intn(2)))
		g.b.Mul(rd, rn, regTmp)
	case 4:
		g.b.AddI(rd, rn, 0) // move in arithmetic clothing
	case 5:
		g.b.OrrI(rd, rn, 0) // move
	case 6:
		g.b.Cmp(rn, rn) // Z=1 always
		g.b.Cset(rd, isa.EQ)
	}
}

// fp emits a floating point cluster built from small integer-derived
// values, so conversions stay in ranges where FP→int truncation is fully
// defined. Divisors come from regDiv (always 1..7).
func (g *gen) fp() {
	g.b.AndI(regTmp, g.gp(), 0xff)
	g.b.Scvtf(0, regTmp)
	g.b.Scvtf(1, regDiv)
	g.b.Fadd(2, 0, 1)
	switch g.r.Intn(4) {
	case 0:
		g.b.Fmul(3, 2, 1)
	case 1:
		g.b.Fdiv(3, 2, 1) // denominator ≥ 1
	case 2:
		g.b.Fmadd(3, 2, 1, 0)
	case 3:
		g.b.Fsub(3, 0, 2)
	}
	if g.r.OneIn(2) {
		g.b.Emit(isa.Inst{Op: isa.FNEG, Rd: 4, Rn: 3})
		g.b.Emit(isa.Inst{Op: isa.FABS, Rd: 3, Rn: 4})
	}
	g.b.Fcmp(3, 2)
	g.b.Cset(g.gp(), g.cond())
	if g.r.OneIn(2) {
		off := int64(g.r.Intn(16)) * 8
		g.b.Fstr(3, regArena, off)
		g.b.Fldr(5, regArena, off)
		g.b.Fmov(6, 5)
	}
	g.b.Fcvtzs(g.gp(), 3) // |value| ≤ ~262*7: conversion exact
}

// Listing renders a reproducible human-readable program dump: index, PC,
// and disassembly per instruction plus the data segment map. Divergence
// reports embed it so a failure can be replayed and inspected without
// rerunning the generator.
func Listing(p *prog.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s: %d instructions\n", p.Name, len(p.Code))
	for i := range p.Code {
		fmt.Fprintf(&sb, "%5d  %#08x  %s\n", i, prog.PC(i), p.Code[i].String())
	}
	for _, s := range p.Data {
		fmt.Fprintf(&sb, "data   %#08x  %d bytes\n", s.Base, len(s.Bytes))
	}
	return sb.String()
}
