package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIPCAndRatios(t *testing.T) {
	s := Sim{Cycles: 1000, ArchInsts: 2500, UOps: 2750}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.UopsPerInst(); got != 1.1 {
		t.Errorf("UopsPerInst = %v", got)
	}
	var z Sim
	if z.IPC() != 0 || z.UopsPerInst() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestVPMetrics(t *testing.T) {
	s := Sim{VPEligible: 1000, VPCorrectUsed: 100, VPIncorrectUsed: 1}
	if got := s.VPCoverage(); got != 0.1 {
		t.Errorf("coverage = %v", got)
	}
	if got := s.VPAccuracy(); math.Abs(got-100.0/101) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	var z Sim
	if z.VPAccuracy() != 1 {
		t.Error("accuracy with no used predictions is vacuously 1")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := GeomeanSpeedup([]float64{0, 0, 0}); g != 0 {
		t.Errorf("geomean speedup of zeros = %v", g)
	}
	// +100% and -50% cancel geometrically.
	if g := GeomeanSpeedup([]float64{100, -50}); math.Abs(g) > 1e-9 {
		t.Errorf("geomean speedup = %v, want 0", g)
	}
}

func TestHMeanAMean(t *testing.T) {
	if h := HMean([]float64{1, 1}); h != 1 {
		t.Errorf("hmean = %v", h)
	}
	if h := HMean([]float64{2, 6}); math.Abs(h-3) > 1e-12 {
		t.Errorf("hmean(2,6) = %v, want 3", h)
	}
	if a := AMean([]float64{2, 6}); a != 4 {
		t.Errorf("amean = %v", a)
	}
}

func TestSubFieldwise(t *testing.T) {
	a := Sim{Cycles: 100, ArchInsts: 50, SpSRElim: 7, L3Misses: 3}
	b := Sim{Cycles: 40, ArchInsts: 20, SpSRElim: 2, L3Misses: 1}
	d := Sub(&a, &b)
	if d.Cycles != 60 || d.ArchInsts != 30 || d.SpSRElim != 5 || d.L3Misses != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestSubProperty(t *testing.T) {
	// Sub(a, zero) == a and Sub(a, a) == zero for arbitrary counter sets.
	f := func(c, i, u, e uint64) bool {
		a := Sim{Cycles: c, ArchInsts: i, UOps: u, VPEligible: e}
		var zero Sim
		if Sub(&a, &zero) != a {
			return false
		}
		return Sub(&a, &a) == zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	base := Sim{Cycles: 100, ArchInsts: 100}
	fast := Sim{Cycles: 80, ArchInsts: 100}
	if got := Speedup(&fast, &base); math.Abs(got-25) > 1e-9 {
		t.Errorf("speedup = %v, want 25", got)
	}
}

func TestMPKI(t *testing.T) {
	s := Sim{ArchInsts: 10000, BranchMispredicts: 50, L1DMisses: 120}
	if got := s.BranchMPKI(); got != 5 {
		t.Errorf("MPKI = %v", got)
	}
	if got := s.L1DMPKI(); got != 12 {
		t.Errorf("L1D MPKI = %v", got)
	}
}
