package rename

import (
	"fmt"

	"repro/internal/isa"
)

// Operand is a renamed source operand: its name plus whatever the renamer
// knows about its value at rename time.
type Operand struct {
	// Name is the physical name the operand maps to (possibly a value
	// name or a hardwired register).
	Name Name
	// Known reports whether the value is known at rename (inlined,
	// hardwired, or the architectural zero register).
	Known bool
	// Value is the known 64-bit register content (valid when Known).
	Value int64
	// Wide reports whether the producing definition was 64-bit. For
	// known values the flag is informational; the value itself governs.
	Wide bool
	// Spec reports whether the knowledge is speculative, i.e. derives
	// (possibly through a chain of reductions) from a value prediction.
	// Reductions consuming speculative operands are SpSR; reductions
	// consuming only architectural knowledge are dynamic strength
	// reduction.
	Spec bool
}

type mapping struct {
	name Name
	wide bool
	spec bool
}

// Renamer is the integer+FP renaming state: speculative RAT, committed
// CRAT, free lists, reference counts for move elimination, and the
// frontend NZCV register used by SpSR.
type Renamer struct {
	rat  [isa.NumRegs]mapping
	crat [isa.NumRegs]mapping

	fpRAT  [32]Name
	fpCRAT [32]Name

	freeInt []Name
	freeFP  []Name
	rc      []int32 // reference counts, indexed by physical name
	fpRC    []int32

	nPhysInt, nPhysFP int

	// Frontend NZCV tracking (§4.2): valid between an SpSR'd flag writer
	// and the next renamed non-reduced flag writer.
	nzcvKnown bool
	nzcvSpec  bool
	nzcv      isa.Flags
}

// NewRenamer builds a renamer with the given physical register file
// sizes. Architectural integer registers X0..X30 start mapped to physical
// registers 2..32 (0 and 1 being hardwired); XZR maps to HardZero. FP
// registers map to FP physical 0..31.
func NewRenamer(nPhysInt, nPhysFP int) *Renamer {
	r := &Renamer{
		nPhysInt: nPhysInt,
		nPhysFP:  nPhysFP,
		rc:       make([]int32, nPhysInt),
		fpRC:     make([]int32, nPhysFP),
	}
	// Hardwired registers are permanently live.
	r.rc[HardZero] = 1
	r.rc[HardOne] = 1
	next := Name(2)
	for a := 0; a < isa.NumRegs-1; a++ {
		r.rat[a] = mapping{name: next, wide: true}
		r.crat[a] = r.rat[a]
		r.rc[next] = 1
		next++
	}
	r.rat[isa.XZR] = mapping{name: HardZero, wide: true}
	r.crat[isa.XZR] = r.rat[isa.XZR]
	for p := int(next); p < nPhysInt; p++ {
		r.freeInt = append(r.freeInt, Name(p))
	}
	for a := 0; a < 32; a++ {
		r.fpRAT[a] = Name(a)
		r.fpCRAT[a] = Name(a)
		r.fpRC[a] = 1
	}
	for p := 32; p < nPhysFP; p++ {
		r.freeFP = append(r.freeFP, Name(p))
	}
	return r
}

// FreeInt returns the number of free integer physical registers.
func (r *Renamer) FreeInt() int { return len(r.freeInt) }

// FreeFP returns the number of free FP physical registers.
func (r *Renamer) FreeFP() int { return len(r.freeFP) }

// SrcInt renames an integer source operand. The value extraction is
// open-coded rather than going through Name.Known/Name.Value: the RAT
// never holds Invalid, so ValueBit alone identifies an inlined value and
// names <= HardOne are the hardwired constants — and dropping the panic
// path keeps SrcInt within the inlining budget of its rename-stage
// callers (two calls per µop).
func (r *Renamer) SrcInt(reg isa.Reg) Operand {
	if reg == isa.XZR {
		return Operand{Name: HardZero, Known: true, Value: 0, Wide: true}
	}
	m := r.rat[reg]
	op := Operand{Name: m.name, Wide: m.wide, Spec: m.spec}
	if m.name&ValueBit != 0 {
		op.Known = true
		op.Value = int64(int16(m.name<<7)) >> 7 // sign-extend the low 9 bits
	} else if m.name <= HardOne {
		op.Known = true
		op.Value = int64(m.name)
	}
	return op
}

// SrcFP renames an FP source operand.
func (r *Renamer) SrcFP(reg isa.Reg) Name { return r.fpRAT[reg&31] }

// AllocInt pops a free integer physical register (reference count 1).
// Callers must check FreeInt first; it panics when empty.
func (r *Renamer) AllocInt() Name {
	if len(r.freeInt) == 0 {
		panic("rename: integer free list empty")
	}
	n := r.freeInt[len(r.freeInt)-1]
	r.freeInt = r.freeInt[:len(r.freeInt)-1]
	if r.rc[n] != 0 {
		panic(fmt.Sprintf("rename: allocating live register %v (rc=%d)", n, r.rc[n]))
	}
	r.rc[n] = 1
	return n
}

// AllocFP pops a free FP physical register.
func (r *Renamer) AllocFP() Name {
	if len(r.freeFP) == 0 {
		panic("rename: FP free list empty")
	}
	n := r.freeFP[len(r.freeFP)-1]
	r.freeFP = r.freeFP[:len(r.freeFP)-1]
	if r.fpRC[n] != 0 {
		panic(fmt.Sprintf("rename: allocating live FP register %v", n))
	}
	r.fpRC[n] = 1
	return n
}

// DefInt installs a new speculative mapping for an integer architectural
// destination. For a freshly allocated name the reference count is
// already 1; for a shared mapping (move elimination, hardwired or value
// names) use DefIntShared instead. Defining XZR is a no-op.
func (r *Renamer) DefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// DefIntShared installs a mapping that shares an existing name (move
// elimination maps the destination onto the source's physical register;
// idiom elimination maps onto a hardwired or value name). Physical names
// gain a reference.
func (r *Renamer) DefIntShared(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	if n.IsPhys() && !n.IsHardwired() {
		r.rc[n]++
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// DefFP installs a new FP mapping.
func (r *Renamer) DefFP(arch isa.Reg, n Name) { r.fpRAT[arch&31] = n }

// Release drops one reference to an integer physical name, returning it
// to the free list when dead. Hardwired and value names are no-ops. Every
// squashed in-flight definition and every committed overwritten CRAT
// mapping releases exactly once.
func (r *Renamer) Release(n Name) {
	if !n.IsPhys() || n.IsHardwired() {
		return
	}
	r.rc[n]--
	switch {
	case r.rc[n] == 0:
		r.freeInt = append(r.freeInt, n)
	case r.rc[n] < 0:
		panic(fmt.Sprintf("rename: double release of %v", n))
	}
}

// ReleaseFP drops one reference to an FP physical name.
func (r *Renamer) ReleaseFP(n Name) {
	if n == Invalid {
		return
	}
	r.fpRC[n]--
	switch {
	case r.fpRC[n] == 0:
		r.freeFP = append(r.freeFP, n)
	case r.fpRC[n] < 0:
		panic(fmt.Sprintf("rename: double release of FP %v", n))
	}
}

// CommitDefInt retires an integer definition: the overwritten committed
// mapping is released (§3.2.1 register reclamation — a value name in the
// CRAT is simply not put on the free list, which Release handles) and the
// CRAT takes the new mapping.
func (r *Renamer) CommitDefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.Release(r.crat[arch].name)
	r.crat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// CommitDefFP retires an FP definition.
func (r *Renamer) CommitDefFP(arch isa.Reg, n Name) {
	a := arch & 31
	r.ReleaseFP(r.fpCRAT[a])
	r.fpCRAT[a] = n
}

// RestoreFromCRAT copies the committed state into the speculative RAT
// (the first step of the paper's flush recovery: "copying the CRAT to the
// RAT and iteratively re-applying mappings from an in-order queue"). The
// pipeline then replays surviving in-flight definitions with ReplayDef.
// The frontend NZCV is conservatively invalidated.
func (r *Renamer) RestoreFromCRAT() {
	r.rat = r.crat
	r.fpRAT = r.fpCRAT
	r.nzcvKnown = false
}

// ReplayDefInt re-applies a surviving in-flight integer definition during
// flush recovery (no reference count changes: the in-flight reference is
// still held by the ROB entry).
func (r *Renamer) ReplayDefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// ReplayDefFP re-applies a surviving FP definition during flush recovery.
func (r *Renamer) ReplayDefFP(arch isa.Reg, n Name) { r.fpRAT[arch&31] = n }

// NZCV returns the frontend condition flags if an SpSR'd flag writer made
// them known and no later flag writer invalidated them, plus whether that
// knowledge is speculative.
func (r *Renamer) NZCV() (f isa.Flags, spec, known bool) {
	return r.nzcv, r.nzcvSpec, r.nzcvKnown
}

// SetNZCV records frontend-known condition flags produced by an SpSR'd
// (or otherwise rename-resolved) flag writer.
func (r *Renamer) SetNZCV(f isa.Flags, spec bool) {
	r.nzcv, r.nzcvSpec, r.nzcvKnown = f, spec, true
}

// InvalidateNZCV forgets the frontend flags; called when a non-reduced
// flag writer renames (§4.2: "invalidated as soon as the next condition
// flag writer is renamed").
func (r *Renamer) InvalidateNZCV() { r.nzcvKnown = false }

// LiveInt returns the number of live (non-free, non-hardwired) integer
// physical registers; used by invariants tests.
func (r *Renamer) LiveInt() int {
	live := 0
	for p := 2; p < r.nPhysInt; p++ {
		if r.rc[p] > 0 {
			live++
		}
	}
	return live
}
