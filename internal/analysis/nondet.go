package analysis

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// NondetConfig scopes the nondet analyzer.
type NondetConfig struct {
	// CorePrefixes are import-path prefixes of simulator-core packages
	// (production: "repro/internal/"). Only code under these prefixes is
	// checked.
	CorePrefixes []string
	// AllowPkgs are exact import paths exempt from the check
	// (production: internal/xrand, the sanctioned deterministic PRNG,
	// and internal/analysis itself).
	AllowPkgs []string
	// AllowFiles are file basenames exempt within core packages
	// (production: heartbeat.go, whose whole purpose is wall-clock
	// progress reporting on stderr).
	AllowFiles []string
}

// timeFuncs are the wall-clock entry points; reading them inside the
// simulator core couples simulated behavior to host timing.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// envFuncs leak host environment into simulated state.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true}

// NewNondet builds the nondet analyzer: simulator-core packages may not
// read wall clocks (time.Now/Since/Until), the global or seeded
// math/rand generators (whose sequences are not pinned across Go
// releases — use internal/xrand), or process environment
// (os.Getenv & co.). Any of these makes a run's outputs depend on the
// host instead of the configuration, breaking the bit-identical-output
// guarantee and silently invalidating simcache hits.
//
// The same guarantee extends to _test.go files of core packages: test
// program generators and helpers must draw randomness from seeded xrand
// so every failure reproduces from its seed. Test files are parsed
// syntax-only, so that leg of the check resolves time/os/math-rand
// references through the file's import table instead of type information.
func NewNondet(cfg NondetConfig) *Analyzer {
	a := &Analyzer{
		Name: "nondet",
		Doc:  "forbid wall clocks, math/rand, and environment reads inside simulator-core packages",
	}
	a.Run = func(pass *Pass) error {
		if !hasAnyPrefix(pass.Pkg.Path, cfg.CorePrefixes) {
			return nil
		}
		for _, p := range cfg.AllowPkgs {
			if pass.Pkg.Path == p {
				return nil
			}
		}
		for _, file := range pass.Pkg.Files {
			base := filepath.Base(pass.Fset.Position(file.Package).Filename)
			if contains(cfg.AllowFiles, base) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Pkg.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if timeFuncs[obj.Name()] {
						pass.Reportf(id.Pos(), "wall clock time.%s in simulator-core package %s: outputs must depend only on the configuration (allowlist: obs/heartbeat.go)", obj.Name(), pass.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(id.Pos(), "math/rand (%s) in simulator-core package %s: sequences are not pinned across Go releases; use internal/xrand", obj.Name(), pass.Pkg.Path)
				case "os":
					if envFuncs[obj.Name()] {
						pass.Reportf(id.Pos(), "environment read os.%s in simulator-core package %s: host environment must not influence simulated state", obj.Name(), pass.Pkg.Path)
					}
				}
				return true
			})
		}
		for _, file := range pass.Pkg.TestFiles {
			base := filepath.Base(pass.Fset.Position(file.Package).Filename)
			if contains(cfg.AllowFiles, base) {
				continue
			}
			checkTestFile(pass, file)
		}
		return nil
	}
	return a
}

// checkTestFile applies the nondet rules to one syntactically parsed
// _test.go file. Without type information, package references are
// resolved through the import table: an import of math/rand is flagged at
// the import site, and selector expressions are matched against the local
// names the time and os packages were imported under.
func checkTestFile(pass *Pass, file *ast.File) {
	local := map[string]string{} // local name → import path, for the packages of interest
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "math/rand", "math/rand/v2":
			pass.Reportf(imp.Pos(), "math/rand imported in test file of simulator-core package %s: test generators must reproduce from a seed; use internal/xrand", pass.Pkg.Path)
			continue
		case "time", "os":
		default:
			continue
		}
		name := filepath.Base(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		local[name] = path
	}
	if len(local) == 0 {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch local[id.Name] {
		case "time":
			if timeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "wall clock time.%s in test file of simulator-core package %s: seeded tests must not depend on host timing", sel.Sel.Name, pass.Pkg.Path)
			}
		case "os":
			if envFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "environment read os.%s in test file of simulator-core package %s: host environment must not influence test behavior", sel.Sel.Name, pass.Pkg.Path)
			}
		}
		return true
	})
}

func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
