package verify_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/fuzzgen"
	"repro/internal/isa"
	"repro/internal/isa/tvpb"
	"repro/internal/isa/verify"
)

// fuzzFuel bounds the functional execution per fuzz input. The
// verifier's termination guarantee is structural (every feasible cycle
// has an exit edge), not a step bound, so the harness checks soundness
// over a bounded window rather than running to HALT.
const fuzzFuel = 200_000

func memFootprint(in *isa.Inst) uint8 {
	switch in.Op {
	case isa.LDR, isa.STR:
		return in.Size
	case isa.FLDR, isa.FSTR:
		return 8 // FP accesses are always doubleword
	}
	return 0
}

// FuzzVerify fuzzes the verifier's soundness contract end to end:
// arbitrary container bytes must either fail to decode, be rejected
// with diagnostics, or — if admitted — execute on the emulator without
// panicking and without any memory access escaping the windows the
// Result reports. The seed corpus is the encoded fuzzgen programs, so
// mutations explore the boundary around programs the verifier accepts.
func FuzzVerify(f *testing.F) {
	for seed := uint64(1); seed <= 12; seed++ {
		f.Add(tvpb.EncodeProgram(fuzzgen.Generate(seed)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound decode+verify cost per input
		}
		p, res := verify.Binary(data, verify.Options{})
		if p == nil || !res.OK() {
			return // rejection is always a safe outcome
		}
		e := emu.New(p)
		e.Run(fuzzFuel, func(d *emu.DynInst) {
			if size := memFootprint(d.Inst); size > 0 && !res.Allows(d.EA, size) {
				t.Fatalf("unsound accept: inst %d (%s) accessed %#x size %d outside the verified windows",
					d.Index, d.Inst.String(), d.EA, size)
			}
		})
	})
}
