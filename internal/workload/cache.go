package workload

import (
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/simcache"
)

// Workload programs are deterministic per name and immutable once built
// (the emulator copies data segments into its own memory and nothing
// mutates Code), so one built program can back any number of concurrent
// simulations. Building is not free — the suite's generators emit tens of
// thousands of instructions and initialize multi-megabyte arenas — and
// the experiment harness builds the same 28 programs hundreds of times
// across E1–E14, so both the programs and the post-warmup architectural
// checkpoints derived from them are memoized process-wide.
var (
	programs    = simcache.New[string, *prog.Program]()
	checkpoints = simcache.New[checkpointKey, *emu.Snapshot]()
)

type checkpointKey struct {
	name string
	skip uint64
}

// Program returns the named workload's built program, building it at most
// once per process. Concurrent callers share one build.
func Program(name string) (*prog.Program, error) {
	return programs.Do(name, func() (*prog.Program, error) {
		spec, err := Get(name)
		if err != nil {
			return nil, err
		}
		return spec.Build(), nil
	})
}

// Checkpoint returns an architectural-state snapshot of the named
// workload after skip functionally executed instructions, computing it at
// most once per (name, skip) pair. The snapshot is immutable and safe to
// Restore concurrently, so N timing configurations over one workload can
// resume from a single shared post-warmup checkpoint instead of
// re-executing the warmup N times.
func Checkpoint(name string, skip uint64) (*emu.Snapshot, error) {
	return checkpoints.Do(checkpointKey{name, skip}, func() (*emu.Snapshot, error) {
		p, err := Program(name)
		if err != nil {
			return nil, err
		}
		e := emu.New(p)
		if skip > 0 { // emu.Run treats max <= 0 as "run to HALT"
			e.Run(skip, nil)
		}
		return e.Snapshot(), nil
	})
}
