package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/simcache"
	"repro/internal/store"
)

// TestCoalescingExactlyOneSimulation: N concurrent requests for the
// identical point must run exactly one simulation — one leader computes,
// every other request joins its in-flight result. The test hook holds
// the leader open between the store probe and the simulation submit so
// all joiners are provably lined up before the computation runs.
func TestCoalescingExactlyOneSimulation(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, st)

	release := make(chan struct{})
	s.testHookBeforeSimulate = func(simcache.RunKey) { <-release }

	var wg sync.WaitGroup
	sources := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/run", runBody(testWorkload(t, 0), 20000))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
			sources <- resp.Header.Get("X-Tvpd-Source")
			readBody(t, resp)
		}()
	}

	// Wait until all n requests are resolving (leader blocked in the
	// hook, joiners parked on its singleflight entry), then let the one
	// simulation run.
	for i := 0; s.Inflight() < n; i++ {
		if i > 10000 {
			t.Fatalf("only %d of %d requests in flight", s.Inflight(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(sources)

	bySource := map[string]int{}
	for src := range sources {
		bySource[src]++
	}
	if bySource[SourceComputed] != 1 || bySource[SourceCoalesced] != n-1 {
		t.Fatalf("sources = %v, want 1 %s + %d %s", bySource, SourceComputed, n-1, SourceCoalesced)
	}
	c := s.Counters()
	if c.Simulated != 1 {
		t.Fatalf("simulated = %d, want exactly 1", c.Simulated)
	}
	if c.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", c.Coalesced, n-1)
	}
	if sc := st.Counters(); sc.Puts != 1 {
		t.Fatalf("store writes = %d, want exactly 1", sc.Puts)
	}
}

// TestDistinctPointsSaturatePool: more concurrent distinct points than
// workers + queue slots must all complete — pool admission blocks with
// backpressure instead of rejecting or deadlocking — and each distinct
// point simulates exactly once.
func TestDistinctPointsSaturatePool(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, nil) // Workers: 2, Queue: 4 < n

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct insts → distinct RunKeys: nothing coalesces.
			body := fmt.Sprintf(`{"workload":%q,"vp":"off","insts":%d}`, testWorkload(t, 0), 10000+i)
			resp := postJSON(t, ts.URL+"/v1/run", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("point %d: status = %d", i, resp.StatusCode)
			}
			readBody(t, resp)
		}(i)
	}
	wg.Wait()

	c := s.Counters()
	if c.Simulated != n || c.Coalesced != 0 || c.Failed != 0 {
		t.Fatalf("counters = %+v, want %d simulated", c, n)
	}
	if s.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", s.Inflight())
	}
}
