package pipeline

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/memdep"
	"repro/internal/prefetch"
	"repro/internal/prog"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/vp"
)

const (
	// redirectPenalty is the fixed pipe-restart bubble after a branch
	// resolves against its prediction or a flush redirects fetch; the
	// refill of the frontend stages provides the rest of the penalty
	// naturally.
	redirectPenalty = 2
	// neverReady marks an unproduced physical register.
	neverReady = ^uint64(0)
	// deadlockWindow is a debugging aid: the core panics if no µop
	// commits for this many cycles, which always indicates a model bug.
	deadlockWindow = 200000
)

// fqEntry is a fetched architectural instruction waiting for decode.
type fqEntry struct {
	dyn        *emu.DynInst
	fetchCycle uint64
}

// dqEntry is a decoded µop waiting for rename.
type dqEntry struct {
	dyn         *emu.DynInst
	kind        isa.UOpKind
	class       isa.Class
	last        bool
	decodeCycle uint64
}

// predInfo caches fetch-time predictor state per dynamic instruction, so
// a refetch after a flush reuses the original structural predictions
// while re-evaluating use-time policy (e.g. VP silencing).
type predInfo struct {
	seqPlus1  uint64 // seq+1; 0 = invalid
	bpMispred bool
	btbMiss   bool
	vpValid   bool
	vpConf    bool
	vpValue   uint64
	vpLookup  vp.Lookup
}

// Core is one simulated out-of-order core attached to a dynamic
// instruction stream.
type Core struct {
	cfg    *config.Machine
	stream *emu.Stream
	st     stats.Sim

	// Predictors and memory system.
	tage   *bp.TAGE
	btb    *bp.BTB
	ras    *bp.RAS
	ind    *bp.Indirect
	vpred  *vp.Predictor
	ssets  *memdep.StoreSets
	mem    *cache.Hierarchy
	tlbs   *tlb.Hierarchy
	ren    *rename.Renamer
	engine rename.Engine

	cycle   uint64
	uSeqCtr uint64
	skipOK  bool   // event-driven cycle skipping enabled (cached off cfg)
	skipped uint64 // cycles advanced by trySkip (diagnostic, not a stat)

	// Frontend state.
	fetchQ          queue[fqEntry]
	decodeQ         queue[dqEntry]
	fetchStallUntil uint64
	waitBranchSeq   uint64 // fetch stalled until this branch resolves (+1); 0 = none
	curFetchLine    uint64
	lineReadyAt     uint64
	haltSeen        bool
	predRing        []predInfo
	crack           []crackStatic // per static instruction, precomputed at build

	// Backend state. The scheduler-side structures hold ROB slot indices
	// (int32) instead of *uop pointers: the issue/wakeup scans then walk
	// dense index arrays plus the ROB ring itself, which halves their
	// footprint and keeps appends free of GC write barriers.
	rob []uop // ring buffer
	// robReady is the struct-of-arrays split of the µops' ready cycles
	// (indexed by ROB slot, lockstep with rob): the complete/commit/skip
	// scans poll only this dense uint64 array instead of dragging each
	// 128-byte uop line through the cache to read one field.
	robReady     []uint64
	robHead      int
	robTail      int
	robCnt       int
	dispPtr      int // ring index of the next µop to dispatch
	dispCnt      int // µops renamed but not yet dispatched
	iq           []int32
	iqWake       []uint64 // per-iq-entry issue lower bound (lockstep with iq); 0 = recheck every cycle
	lq           queue[int32]
	sq           queue[int32]
	execL        []int32
	intReadyAt   []uint64
	fpReadyAt    []uint64
	predictedReg []int32 // GVP: ROB slot of the in-flight wide prediction per physical reg; noIdx = none
	lastFlagWIdx int32   // ROB slot of the youngest renamed flag writer; noIdx = none
	lastFlagWSeq uint64

	fus              fuState
	flushedThisCycle bool
	tracer           Tracer
	probe            Probe
	hooks            Probe // probe's event hooks, armed at the warmup boundary

	// Top-down CPI-stack accounting (cpistack.go). acct is nil until the
	// warmup boundary of a run with accounting requested (EnableCPIStack
	// or an attached CPIProbe), so the detached hot path pays one
	// nil-check per cycle. redirectCause is maintained unconditionally
	// (flush paths are cold) and read only by the classifier.
	cpiOn         bool
	acct          *cpiAcct
	cpiProbe      CPIProbe // probe's CPI extension, if it has one
	cpiHooks      CPIProbe // armed alongside acct at the warmup boundary
	redirectCause uint8

	committed   uint64 // committed architectural instructions (total)
	lastCommitC uint64 // cycle of the last commit (deadlock detection)

	// Differential validation (config.Machine.CrossCheck) and its fault
	// injector (crosscheck.go). xcheck is nil when disabled.
	xcheck      *crossCheck
	bugArmed    bool
	bugMask     uint64
	bugSeqPlus1 uint64 // seq+1 of the injected corruption; 0 = none yet
}

// New builds a core for the given machine over the given program.
func New(cfg *config.Machine, p *prog.Program) *Core {
	return NewFromEmulator(cfg, emu.New(p))
}

// NewFromEmulator builds a core over an existing emulator, which may be
// mid-program — typically one restored from a warmup checkpoint
// (emu.Snapshot.Restore), so several timing configurations can share a
// single functional warmup. Sequence numbering continues from the
// emulator's position.
func NewFromEmulator(cfg *config.Machine, e *emu.Emulator) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		cfg:    cfg,
		stream: emu.NewStream(e, 0),
	}
	c.tage = bp.NewTAGE(bp.TAGEConfig{
		BaseLog2:   cfg.BPBaseLog2,
		TaggedLog2: cfg.BPTaggedLog2,
		Tables:     cfg.BPTables,
		TagBits:    cfg.BPTagBits,
		MinHist:    cfg.BPMinHist,
		MaxHist:    cfg.BPMaxHist,
	})
	c.btb = bp.NewBTB(cfg.BTBEntries, cfg.BTBAssoc)
	c.ras = bp.NewRAS(cfg.RASEntries)
	c.ind = bp.NewIndirect(cfg.IndirectEntries)
	if cfg.VP.Mode != config.VPOff {
		c.vpred = vp.New(cfg.VP)
	}
	c.ssets = memdep.New(cfg.SSITEntries, cfg.LFSTEntries)
	var l1dPF, l2PF cache.Prefetcher
	if cfg.StridePrefetch {
		l1dPF = prefetch.NewStride(256, cfg.StrideDegree, cfg.L1D.LineBytes)
	}
	if cfg.AMPMPrefetch {
		l2PF = prefetch.NewAMPM(128, 2, cfg.L2.LineBytes)
	}
	c.mem = cache.NewHierarchy(cfg, l1dPF, l2PF)
	c.tlbs = tlb.NewHierarchy(cfg)
	c.ren = rename.NewRenamer(cfg.IntPRF, cfg.FPPRF)
	c.engine = rename.Engine{
		ZeroOneIdiom: cfg.ZeroOneIdiom,
		MoveElim:     cfg.MoveElim,
		NineBit:      cfg.NineBitIdiom,
		SpSR:         cfg.SpSR,
		Inline:       cfg.VP.Mode == config.TVP || cfg.VP.Mode == config.GVP,
	}
	c.rob = make([]uop, cfg.ROBSize)
	c.robReady = make([]uint64, cfg.ROBSize)
	c.iq = make([]int32, 0, cfg.IQSize)
	c.iqWake = make([]uint64, 0, cfg.IQSize)
	// execL holds issued-but-incomplete µops, bounded by the ROB;
	// preallocating keeps doIssue's append off the heap (hotpathalloc).
	c.execL = make([]int32, 0, cfg.ROBSize)
	c.lq.buf = make([]int32, 0, cfg.LQSize)
	c.sq.buf = make([]int32, 0, cfg.SQSize)
	c.intReadyAt = make([]uint64, cfg.IntPRF)
	c.fpReadyAt = make([]uint64, cfg.FPPRF)
	c.predictedReg = make([]int32, cfg.IntPRF)
	for i := range c.predictedReg {
		c.predictedReg[i] = noIdx
	}
	c.lastFlagWIdx = noIdx
	// Cracking depends only on the static instruction, so the decode
	// stage's per-µop switch work is hoisted here, once per text entry.
	c.crack = make([]crackStatic, len(e.Prog.Code))
	for i := range e.Prog.Code {
		in := &e.Prog.Code[i]
		c.crack[i] = crackStatic{class: isa.OpClass(in.Op), two: isa.CrackCount(in) == 2}
	}
	c.predRing = make([]predInfo, emu.DefaultStreamCapacity)
	c.curFetchLine = ^uint64(0)
	c.skipOK = !cfg.DisableCycleSkip
	if cfg.CrossCheck {
		// Snapshot before the stream's first Peek advances the emulator,
		// so the shadow starts from exactly the state retirement replays.
		c.xcheck = &crossCheck{shadow: e.Snapshot().Restore()}
	}
	return c
}

// Result is the outcome of a simulation run.
type Result struct {
	Stats     stats.Sim
	Cycles    uint64 // total cycles including warmup
	Committed uint64 // total committed architectural instructions
	Halted    bool   // the program ran to completion
	// CPI is the post-warmup commit-slot attribution (zero unless
	// EnableCPIStack was called or a CPIProbe was attached). Invariant:
	// CPI.Total() == Stats.Cycles × CommitWidth, exactly.
	CPI stats.CPIStack
}

// Run simulates until maxInsts architectural instructions have committed
// (post-warmup instructions count toward stats), or until the program
// halts. warmup instructions commit before stats collection begins.
func (c *Core) Run(warmup, maxInsts uint64) Result {
	var warmSnap stats.Sim
	warmed := warmup == 0
	// Interval sampling (telemetry): probeNext is the committed-
	// instruction count of the next sample, 0 while sampling is off, so
	// the probe-less hot loop pays a single always-false comparison.
	var probeEvery, probeNext uint64
	if warmed {
		probeEvery, probeNext = c.armObservers()
	}
	for {
		if !warmed && c.committed >= warmup {
			c.syncMemStats()
			warmSnap = c.st
			warmed = true
			probeEvery, probeNext = c.armObservers()
		}
		if probeNext != 0 && c.committed >= probeNext {
			c.syncMemStats()
			c.cpiSample()
			c.probe.Sample(c.committed, c.cycle, &c.st)
			probeNext = c.committed + probeEvery
		}
		if c.committed >= warmup+maxInsts {
			break
		}
		if c.haltSeen && c.robCnt == 0 && c.dispCnt == 0 {
			break
		}
		c.step()
	}
	if !warmed {
		warmSnap = stats.Sim{} // program shorter than warmup: count it all
	}
	c.syncMemStats()
	c.cpiSample() // tail CPI snapshot, before the tail counter sample
	if c.probe != nil {
		c.probe.Sample(c.committed, c.cycle, &c.st) // tail sample
	}
	res := Result{
		Cycles:    c.cycle,
		Committed: c.committed,
		Halted:    c.haltSeen && c.robCnt == 0,
	}
	if c.acct != nil {
		res.CPI = c.acct.st
	}
	if c.xcheck != nil && res.Halted {
		c.xcheck.finish()
	}
	res.Stats = stats.Sub(&c.st, &warmSnap)
	return res
}

// step advances the machine by one cycle — or, when every stage is
// provably idle, first jumps the cycle counter to the next wake event
// (skip.go) and runs the stages there.
//tvp:hotpath
func (c *Core) step() {
	if c.skipOK {
		c.trySkip()
	}
	if c.acct != nil {
		c.cpiBegin()
	}
	c.complete()
	c.commit()
	c.issue()
	c.dispatch()
	c.renameStage()
	c.decode()
	c.fetch()
	if c.acct != nil {
		c.cpiAccount()
	}
	c.cycle++
	c.st.Cycles++
	if c.cycle-c.lastCommitC > deadlockWindow {
		panic(fmt.Sprintf("pipeline: no commit for %d cycles at cycle %d (rob=%d iq=%d head-state=%v)",
			uint64(deadlockWindow), c.cycle, c.robCnt, len(c.iq), c.headState()))
	}
}

func (c *Core) headState() string {
	if c.robCnt == 0 {
		return "empty"
	}
	u := &c.rob[c.robHead]
	s := fmt.Sprintf("seq=%d op=%v kind=%d state=%d ready=%d", u.seq, u.dyn.Inst.Op, u.kind, u.state, c.robReady[c.robHead])
	for i := 0; i < int(u.nsrc); i++ {
		src := u.srcs[i]
		if src.fp {
			s += fmt.Sprintf(" fp%v@%d", src.name, c.fpReadyAt[src.name])
		} else {
			s += fmt.Sprintf(" %v@%d", src.name, c.intReadyAt[src.name])
		}
	}
	if u.memDepSeq != 0 {
		s += fmt.Sprintf(" memdep=%d pending=%v", u.memDepSeq-1, c.storePending(u.memDepSeq-1))
	}
	if u.flagR && u.flagSrcIdx != noIdx {
		if fs := &c.rob[u.flagSrcIdx]; fs.uSeq == u.flagSrcUSeq {
			s += fmt.Sprintf(" flagdep=%d@%d", fs.seq, c.robReady[u.flagSrcIdx])
		}
	}
	return s
}

// pred returns the fetch-time predictor record for seq; fresh reports
// whether this is the first fetch of this dynamic instance (predictors
// must only be queried and trained once per instance).
//tvp:hotpath
func (c *Core) pred(seq uint64) (p *predInfo, fresh bool) {
	p = &c.predRing[seq&(emu.DefaultStreamCapacity-1)]
	if p.seqPlus1 != seq+1 {
		// Reset fields individually rather than `*p = predInfo{...}`: the
		// embedded vp.Lookup dominates the struct and every read of it is
		// gated on vpValid, so clearing it per instruction is pure memclr
		// cost on the fetch path.
		p.seqPlus1 = seq + 1
		p.bpMispred = false
		p.btbMiss = false
		p.vpValid = false
		p.vpConf = false
		p.vpValue = 0
		return p, true
	}
	return p, false
}

// Stats exposes the accumulated counters (primarily for tests).
func (c *Core) Stats() *stats.Sim { return &c.st }

// MemHierarchy exposes the cache hierarchy (for tests and diagnostics).
func (c *Core) MemHierarchy() *cache.Hierarchy { return c.mem }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// SkippedCycles returns the number of cycles the event-driven scheduler
// advanced over without simulating (0 with DisableCycleSkip). Purely
// diagnostic: skipped cycles are fully accounted in Cycles and stats.
func (c *Core) SkippedCycles() uint64 { return c.skipped }
