package emu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// run executes a builder-made program to HALT and returns the final
// emulator state.
func run(t *testing.T, build func(b *prog.Builder)) *Emulator {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	e := New(b.Build())
	if n := e.Run(100000, nil); n >= 100000 {
		t.Fatal("program did not halt")
	}
	return e
}

func TestALUBasics(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 100)
		b.MovImm(isa.X2, 7)
		b.Add(isa.X3, isa.X1, isa.X2)   // 107
		b.Sub(isa.X4, isa.X1, isa.X2)   // 93
		b.And(isa.X5, isa.X1, isa.X2)   // 4
		b.Orr(isa.X6, isa.X1, isa.X2)   // 103
		b.Eor(isa.X7, isa.X1, isa.X2)   // 99
		b.Bic(isa.X8, isa.X1, isa.X2)   // 96
		b.Mul(isa.X9, isa.X1, isa.X2)   // 700
		b.Sdiv(isa.X10, isa.X1, isa.X2) // 14
		b.Udiv(isa.X11, isa.X1, isa.X2) // 14
		b.LslI(isa.X12, isa.X1, 3)      // 800
		b.LsrI(isa.X13, isa.X1, 2)      // 25
	})
	want := map[isa.Reg]uint64{
		isa.X3: 107, isa.X4: 93, isa.X5: 4, isa.X6: 103, isa.X7: 99,
		isa.X8: 96, isa.X9: 700, isa.X10: 14, isa.X11: 14, isa.X12: 800, isa.X13: 25,
	}
	for r, v := range want {
		if e.X[r] != v {
			t.Errorf("%v = %d, want %d", r, e.X[r], v)
		}
	}
}

func TestZeroRegister(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 42)
		b.Add(isa.XZR, isa.X1, isa.X1) // write discarded
		b.Add(isa.X2, isa.XZR, isa.X1) // read as zero
	})
	if e.X[isa.XZR] != 0 {
		t.Error("XZR must stay zero")
	}
	if e.X[isa.X2] != 42 {
		t.Errorf("x2 = %d, want 42", e.X[isa.X2])
	}
}

func TestDivideByZero(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 42)
		b.Zero(isa.X2)
		b.Sdiv(isa.X3, isa.X1, isa.X2)
		b.Udiv(isa.X4, isa.X1, isa.X2)
	})
	if e.X[isa.X3] != 0 || e.X[isa.X4] != 0 {
		t.Error("division by zero must yield 0 (ARMv8 semantics)")
	}
}

func TestMovSequence(t *testing.T) {
	const v = 0x1234_5678_9abc_def0
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, v)
		b.Emit(isa.Inst{Op: isa.MOVN, Rd: isa.X2, Imm: 5}) // ^5
	})
	if e.X[isa.X1] != v {
		t.Errorf("MovImm = %#x, want %#x", e.X[isa.X1], uint64(v))
	}
	if e.X[isa.X2] != ^uint64(5) {
		t.Errorf("movn = %#x", e.X[isa.X2])
	}
}

func TestWForm(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 0xffff_ffff_ffff_fff0)
		b.Emit(isa.Inst{Op: isa.ADD, Rd: isa.X2, Rn: isa.X1, Imm: 0x20, UseImm: true, W: true})
	})
	// 32-bit add: 0xfffffff0 + 0x20 = 0x10 with zero-extended result.
	if e.X[isa.X2] != 0x10 {
		t.Errorf("W-form add = %#x, want 0x10", e.X[isa.X2])
	}
}

func TestFlagsAddSub(t *testing.T) {
	for _, tc := range []struct {
		a, b                       uint64
		sub                        bool
		wantN, wantZ, wantC, wantV bool
	}{
		{0, 0, true, false, true, true, false},               // 0-0: Z C
		{0, 1, true, true, false, false, false},              // 0-1: N
		{1, 0, true, false, false, true, false},              // 1-0: C
		{1 << 63, 1, true, false, false, true, true},         // min - 1: overflow
		{math.MaxUint64, 1, false, false, true, true, false}, // -1 + 1 = 0: Z C
		{1<<63 - 1, 1, false, true, false, false, true},      // max + 1: N V
	} {
		op := isa.ADDS
		if tc.sub {
			op = isa.SUBS
		}
		e := run(t, func(b *prog.Builder) {
			b.MovImm(isa.X1, tc.a)
			b.MovImm(isa.X2, tc.b)
			b.Emit(isa.Inst{Op: op, Rd: isa.X3, Rn: isa.X1, Rm: isa.X2})
		})
		f := e.Flags
		if f.N() != tc.wantN || f.Z() != tc.wantZ || f.C() != tc.wantC || f.V() != tc.wantV {
			t.Errorf("%v %#x,%#x: flags %v", op, tc.a, tc.b, f)
		}
	}
}

func TestFlagsSubsProperty(t *testing.T) {
	// SUBS flags must agree with an arbitrary-precision reference.
	f := func(a, b uint64) bool {
		e := run(t, func(bb *prog.Builder) {
			bb.MovImm(isa.X1, a)
			bb.MovImm(isa.X2, b)
			bb.Subs(isa.X3, isa.X1, isa.X2)
		})
		d := a - b
		wantN := int64(d) < 0
		wantZ := d == 0
		wantC := a >= b
		wantV := (int64(a) >= 0) != (int64(b) >= 0) && (int64(d) >= 0) != (int64(a) >= 0)
		fl := e.Flags
		return fl.N() == wantN && fl.Z() == wantZ && fl.C() == wantC && fl.V() == wantV && e.X[isa.X3] == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConditionalSelects(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 10)
		b.MovImm(isa.X2, 20)
		b.CmpI(isa.X1, 10)                      // Z=1
		b.Csel(isa.X3, isa.X1, isa.X2, isa.EQ)  // 10
		b.Csel(isa.X4, isa.X1, isa.X2, isa.NE)  // 20
		b.Csinc(isa.X5, isa.X1, isa.X2, isa.NE) // 21
		b.Csneg(isa.X6, isa.X1, isa.X2, isa.NE) // -20
		b.Cset(isa.X7, isa.EQ)                  // 1
		b.Cset(isa.X8, isa.NE)                  // 0
	})
	if e.X[isa.X3] != 10 || e.X[isa.X4] != 20 || e.X[isa.X5] != 21 ||
		e.X[isa.X6] != uint64(^uint64(20)+1) || e.X[isa.X7] != 1 || e.X[isa.X8] != 0 {
		t.Errorf("csel family: %d %d %d %#x %d %d",
			e.X[isa.X3], e.X[isa.X4], e.X[isa.X5], e.X[isa.X6], e.X[isa.X7], e.X[isa.X8])
	}
}

func TestUbfmRbit(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 0xabcd)
		b.Ubfm(isa.X2, isa.X1, 4, 7) // (0xabcd>>4) & 0xff = 0xbc
		b.MovImm(isa.X3, 1)
		b.Rbit(isa.X4, isa.X3) // 1<<63
	})
	if e.X[isa.X2] != 0xbc {
		t.Errorf("ubfm = %#x, want 0xbc", e.X[isa.X2])
	}
	if e.X[isa.X4] != 1<<63 {
		t.Errorf("rbit = %#x, want 1<<63", e.X[isa.X4])
	}
}

func TestMemorySizes(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		buf := b.Alloc(64, 8)
		b.MovAddr(isa.X1, buf)
		b.MovImm(isa.X2, 0x1122334455667788)
		b.Str(isa.X2, isa.X1, 0, 8)
		b.Ldr(isa.X3, isa.X1, 0, 1) // 0x88
		b.Ldr(isa.X4, isa.X1, 0, 2) // 0x7788
		b.Ldr(isa.X5, isa.X1, 0, 4) // 0x55667788
		b.Ldr(isa.X6, isa.X1, 0, 8)
		b.Str(isa.X2, isa.X1, 8, 2) // store low 16 bits
		b.Ldr(isa.X7, isa.X1, 8, 8)
	})
	if e.X[isa.X3] != 0x88 || e.X[isa.X4] != 0x7788 || e.X[isa.X5] != 0x55667788 ||
		e.X[isa.X6] != 0x1122334455667788 || e.X[isa.X7] != 0x7788 {
		t.Errorf("sized loads: %#x %#x %#x %#x %#x",
			e.X[isa.X3], e.X[isa.X4], e.X[isa.X5], e.X[isa.X6], e.X[isa.X7])
	}
}

func TestAddressingModes(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		buf := b.AllocWords(8, 10, 20, 30, 40)
		b.MovAddr(isa.X1, buf)
		b.LdrPost(isa.X2, isa.X1, 8, 8) // x2=10, x1+=8
		b.LdrPost(isa.X3, isa.X1, 8, 8) // x3=20
		b.LdrPre(isa.X4, isa.X1, 8, 8)  // x1+=8 first → x4=buf[3]=40
		b.MovImm(isa.X5, 2)
		b.MovAddr(isa.X6, buf)
		b.LdrR(isa.X7, isa.X6, isa.X5, 3, 8) // buf[2]=30
	})
	if e.X[isa.X2] != 10 || e.X[isa.X3] != 20 || e.X[isa.X4] != 40 || e.X[isa.X7] != 30 {
		t.Errorf("addressing: %d %d %d %d", e.X[isa.X2], e.X[isa.X3], e.X[isa.X4], e.X[isa.X7])
	}
}

func TestBranchesAndCalls(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		over := b.NewLabel()
		fn := b.NewLabel()
		b.B(over)
		b.Bind(fn)
		b.AddI(isa.X1, isa.X1, 5)
		b.Ret()
		b.Bind(over)
		b.Bl(fn)
		b.Bl(fn)
		// Counted loop: x2 = 10 iterations.
		b.MovImm(isa.X2, 10)
		top := b.Here()
		b.AddI(isa.X3, isa.X3, 1)
		b.SubsI(isa.X2, isa.X2, 1)
		b.BCond(isa.NE, top)
		// cbz/cbnz/tbz.
		skip := b.NewLabel()
		b.Cbz(isa.X3, skip) // not taken (x3=10)
		b.AddI(isa.X4, isa.X4, 1)
		b.Bind(skip)
		skip2 := b.NewLabel()
		b.Tbz(isa.X3, 1, skip2) // bit1 of 10 is 1 → not taken
		b.AddI(isa.X5, isa.X5, 1)
		b.Bind(skip2)
	})
	if e.X[isa.X1] != 10 {
		t.Errorf("two calls should add 10, got %d", e.X[isa.X1])
	}
	if e.X[isa.X3] != 10 {
		t.Errorf("loop ran %d times", e.X[isa.X3])
	}
	if e.X[isa.X4] != 1 || e.X[isa.X5] != 1 {
		t.Errorf("conditional skips wrong: %d %d", e.X[isa.X4], e.X[isa.X5])
	}
}

func TestIndirectBranch(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		tbl := b.Alloc(16, 8)
		tgt := b.NewLabel()
		over := b.NewLabel()
		b.SetWordLabel(tbl, tgt)
		b.MovAddr(isa.X1, tbl)
		b.Ldr(isa.X2, isa.X1, 0, 8)
		b.Br(isa.X2)
		b.AddI(isa.X3, isa.X3, 100) // skipped
		b.Bind(tgt)
		b.AddI(isa.X3, isa.X3, 1)
		b.B(over)
		b.Bind(over)
	})
	if e.X[isa.X3] != 1 {
		t.Errorf("indirect branch executed wrong path: x3=%d", e.X[isa.X3])
	}
}

func TestFPOps(t *testing.T) {
	e := run(t, func(b *prog.Builder) {
		b.MovImm(isa.X1, 3)
		b.MovImm(isa.X2, 4)
		b.Scvtf(0, isa.X1)  // d0 = 3.0
		b.Scvtf(1, isa.X2)  // d1 = 4.0
		b.Fadd(2, 0, 1)     // 7
		b.Fmul(3, 0, 1)     // 12
		b.Fdiv(4, 1, 0)     // 4/3
		b.Fmadd(5, 0, 1, 2) // 3*4+7 = 19
		b.Fsub(6, 0, 1)     // -1
		b.Fcvtzs(isa.X3, 3) // 12
		b.Fcmp(0, 1)        // 3 < 4 → N
		b.Cset(isa.X4, isa.MI)
	})
	get := func(r isa.Reg) float64 { return math.Float64frombits(e.D[r]) }
	if get(2) != 7 || get(3) != 12 || get(5) != 19 || get(6) != -1 {
		t.Errorf("fp: %v %v %v %v", get(2), get(3), get(5), get(6))
	}
	if math.Abs(get(4)-4.0/3.0) > 1e-15 {
		t.Errorf("fdiv = %v", get(4))
	}
	if e.X[isa.X3] != 12 {
		t.Errorf("fcvtzs = %d", e.X[isa.X3])
	}
	if e.X[isa.X4] != 1 {
		t.Error("fcmp should set N for 3 < 4")
	}
}

func TestDynInstRecords(t *testing.T) {
	b := prog.NewBuilder("d")
	buf := b.AllocWords(1, 0x55)
	b.MovAddr(isa.X1, buf)
	b.Ldr(isa.X2, isa.X1, 0, 8)
	b.StrPost(isa.X2, isa.X1, 8, 8)
	b.Halt()
	e := New(b.Build())
	var recs []DynInst
	var d DynInst
	for e.Step(&d) {
		recs = append(recs, d)
	}
	ld := recs[len(recs)-3]
	st := recs[len(recs)-2]
	if ld.Inst.Op != isa.LDR || ld.Result != 0x55 || ld.EA != buf {
		t.Errorf("load record: %+v", ld)
	}
	if st.Inst.Op != isa.STR || st.StoreData != 0x55 || st.EA != buf || st.BaseResult != buf+8 {
		t.Errorf("store record: %+v", st)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("seq %d at index %d", r.Seq, i)
		}
	}
}

func TestMemoryLittleEndianProperty(t *testing.T) {
	f := func(addr uint32, v uint64) bool {
		m := NewMemory()
		a := uint64(addr)
		m.Write(a, v, 8)
		if m.Read(a, 8) != v {
			return false
		}
		// Byte-wise agreement.
		for i := uint64(0); i < 8; i++ {
			if uint64(m.LoadByte(a+i)) != v>>(8*i)&0xff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemoryStraddlesPages(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("straddling read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("straddling write mapped %d pages, want 2", m.PageCount())
	}
}

func TestStreamRewind(t *testing.T) {
	b := prog.NewBuilder("s")
	for i := 0; i < 50; i++ {
		b.AddI(isa.X1, isa.X1, 1)
	}
	b.Halt()
	s := NewStream(New(b.Build()), 64)
	var seqs []uint64
	for i := 0; i < 20; i++ {
		seqs = append(seqs, s.Next().Seq)
	}
	s.Rewind(5)
	if got := s.Next().Seq; got != 5 {
		t.Fatalf("after rewind got seq %d, want 5", got)
	}
	// Re-delivered records must be identical objects in content.
	for i := 6; i < 20; i++ {
		if got := s.Next().Seq; got != uint64(i) {
			t.Fatalf("replay seq %d, want %d", got, i)
		}
	}
	_ = seqs
	// Drain to end.
	n := 0
	for s.Next() != nil {
		n++
	}
	if !s.Done() {
		t.Error("stream should be done")
	}
}

func TestStreamRewindTooFarPanics(t *testing.T) {
	b := prog.NewBuilder("s")
	for i := 0; i < 300; i++ {
		b.Nop()
	}
	b.Halt()
	s := NewStream(New(b.Build()), 16)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rewind past ring capacity must panic")
		}
	}()
	s.Rewind(2)
}
