// Package pipeline implements the cycle-level out-of-order core of the
// paper's Table 2: an 11-stage, 8-wide machine with a 315-entry ROB,
// 92-entry IQ, 74/53-entry load/store queues, 292+292 physical registers,
// TAGE branch prediction, optional MVP/TVP/GVP value prediction with
// in-place validation at the functional units, baseline move and 0/1-idiom
// elimination, optional 9-bit idiom elimination and speculative strength
// reduction at rename, Store Sets memory dependence prediction, and the
// Table 2 cache/TLB/prefetcher hierarchy.
//
// The core is trace-fed: a functional emulator (internal/emu) runs ahead
// and the pipeline consumes its correct-path dynamic stream. Branch
// mispredictions stall fetch until the branch resolves; value
// mispredictions and memory order violations flush by rewinding the
// stream (see DESIGN.md for the fidelity argument).
package pipeline

import (
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/vp"
)

// uopState tracks a µop's progress through the backend.
type uopState uint8

const (
	// stRenamed: in the ROB, waiting for dispatch.
	stRenamed uopState = iota
	// stDispatched: in the IQ (and LQ/SQ if memory), waiting to issue.
	stDispatched
	// stIssued: executing on a functional unit.
	stIssued
	// stDone: executed (or rename-eliminated); awaiting commit.
	stDone
)

// srcOperand is one renamed source of a µop.
type srcOperand struct {
	name rename.Name
	fp   bool
}

// uop is an in-flight micro-operation. µops live in the ROB ring; pointers
// to them are valid from rename until commit or squash.
type uop struct {
	dyn   *emu.DynInst
	seq   uint64 // architectural dynamic sequence number (dyn.Seq)
	kind  isa.UOpKind
	class isa.Class
	last  bool // last µop of its architectural instruction

	state       uopState
	renameCycle uint64
	readyCycle  uint64 // cycle the result becomes available once issued
	fu          int    // functional unit index while issued

	// Renamed operands.
	srcs        [4]srcOperand
	nsrc        int
	flagW       bool // writes NZCV at execute
	flagR       bool // reads NZCV at execute
	flagSrc     *uop // producing flag writer still in flight at rename
	flagSrcUSeq uint64

	// Destination.
	hasDst   bool
	dstFP    bool
	dstArch  isa.Reg
	dst      rename.Name
	dstWide  bool
	dstSpec  bool
	freshDst bool // dst came from the free list (vs shared/hardwired/value)

	// Unique µop sequence for flag dependences and ordering.
	uSeq uint64

	// Rename-time elimination.
	eliminated  bool
	elim        rename.Decision
	moveBlocked bool

	// Value prediction.
	vpHasLookup bool      // a prediction was made for this instruction
	vpLookup    vp.Lookup // training metadata (FIFO entry)
	vpUsed      bool      // the prediction was consumed by renaming the dest
	vpWide      bool      // GVP: prediction written to the PRF (not inlined)
	vpConsumed  bool      // GVP: a dependent read the predicted register

	// Branch state (main µop of branch instructions).
	isBranch      bool
	resolvedEarly bool // SpSR resolved the branch at rename

	// Memory state.
	isLoad, isStore bool
	ea              uint64
	memSize         uint8
	memDepSeq       uint64 // store (dyn) seq this op must wait for; 0 = none
	executedMem     bool   // address generated / access performed
	storePC         uint64 // PC for store-set training
}

// overlaps reports whether two accesses [a, a+as) and [b, b+bs) intersect.
func overlaps(a uint64, as uint8, b uint64, bs uint8) bool {
	return a < b+uint64(bs) && b < a+uint64(as)
}

// contains reports whether [b, b+bs) fully contains [a, a+as).
func contains(a uint64, as uint8, b uint64, bs uint8) bool {
	return b <= a && a+uint64(as) <= b+uint64(bs)
}
