// Package emu implements the functional emulator for the micro-ISA: a
// sparse paged memory, architectural register state, and an interpreter
// that executes programs and produces the dynamic instruction stream the
// timing model consumes. Functional execution is exact — every value a
// value predictor sees, predicts, and validates in the timing model is the
// architecturally computed one.
package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, paged, little-endian byte-addressable memory.
// Unmapped reads return zero; writes allocate pages on demand.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns the little-endian unsigned value of the given size (1, 2, 4
// or 8 bytes) at addr. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	if addr&pageMask <= pageSize-uint64(size) {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		off := addr & pageMask
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, v uint64, size uint8) {
	if addr&pageMask <= pageSize-uint64(size) {
		p := m.page(addr, true)
		off := addr & pageMask
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := uint8(0); i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadSegment copies bytes into memory starting at base.
func (m *Memory) LoadSegment(base uint64, data []byte) {
	for i, b := range data {
		m.StoreByte(base+uint64(i), b)
	}
}

// PageCount returns the number of mapped 4KB pages (the resident footprint).
func (m *Memory) PageCount() int { return len(m.pages) }
