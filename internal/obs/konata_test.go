package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceProgram is a small deterministic kernel exercising loads, stores,
// ALU ops, an eliminable zero idiom and a loop branch — enough to put
// committed, eliminated and squashed µops into the trace.
func traceProgram(iters int64) *prog.Program {
	b := prog.NewBuilder("konata-loop")
	buf := b.Alloc(4096, 8)

	b.MovImm(isa.X0, uint64(iters))
	b.MovAddr(isa.X1, buf)
	b.Zero(isa.X2)
	b.Zero(isa.X3)

	top := b.Here()
	b.LdrR(isa.X4, isa.X1, isa.X3, 3, 8)
	b.Add(isa.X2, isa.X2, isa.X4)
	b.StrR(isa.X2, isa.X1, isa.X3, 3, 8)
	b.AddI(isa.X3, isa.X3, 1)
	b.AndI(isa.X3, isa.X3, 7)
	b.SubsI(isa.X0, isa.X0, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	return b.Build()
}

// runKonata simulates the trace program with a Konata tracer attached
// and returns the log.
func runKonata(t *testing.T, limit int) []byte {
	t.Helper()
	var buf bytes.Buffer
	k := NewKonata(&buf, limit)
	core := pipeline.New(config.Default(), traceProgram(40))
	core.SetTracer(k)
	core.Run(0, 1<<62)
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKonataGolden locks the exact Kanata output for a short
// deterministic workload (regenerate with `go test ./internal/obs
// -run Golden -update`).
func TestKonataGolden(t *testing.T) {
	got := runKonata(t, 64)
	golden := filepath.Join("testdata", "konata_loop.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Kanata output differs from golden (%d vs %d bytes); rerun with -update if the change is intended",
			len(got), len(want))
	}
}

// TestKonataFormatInvariants checks the structural rules any Kanata
// consumer relies on: version header first, a cycle origin before stage
// commands, every opened instruction retired exactly once, and
// stage starts/ends balanced per instruction.
func TestKonataFormatInvariants(t *testing.T) {
	out := string(runKonata(t, 0))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Kanata\t0004" {
		t.Fatalf("first line %q, want Kanata\\t0004", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C=\t") {
		t.Fatalf("second line %q, want cycle origin C=", lines[1])
	}
	opened := map[string]bool{}
	retired := map[string]int{}
	open := map[string]string{} // id -> open stage
	for i, ln := range lines[2:] {
		f := strings.Split(ln, "\t")
		switch f[0] {
		case "C":
			if len(f) != 2 {
				t.Fatalf("line %d: malformed cycle step %q", i+3, ln)
			}
		case "I":
			if opened[f[1]] {
				t.Fatalf("line %d: instruction id %s opened twice", i+3, f[1])
			}
			opened[f[1]] = true
		case "L":
			if !opened[f[1]] {
				t.Fatalf("line %d: label for unopened id %s", i+3, f[1])
			}
		case "S":
			if open[f[1]] != "" {
				t.Fatalf("line %d: id %s starts stage %s with %s still open", i+3, f[1], f[3], open[f[1]])
			}
			open[f[1]] = f[3]
		case "E":
			if open[f[1]] != f[3] {
				t.Fatalf("line %d: id %s ends stage %s but %q is open", i+3, f[1], f[3], open[f[1]])
			}
			open[f[1]] = ""
		case "R":
			retired[f[1]]++
			if open[f[1]] != "" {
				t.Fatalf("line %d: id %s retired with stage %s open", i+3, f[1], open[f[1]])
			}
		default:
			t.Fatalf("line %d: unknown command %q", i+3, ln)
		}
	}
	if len(opened) == 0 {
		t.Fatal("no instructions in trace")
	}
	for id := range opened {
		if retired[id] != 1 {
			t.Errorf("id %s retired %d times, want exactly 1", id, retired[id])
		}
	}
}

// TestKonataLimit caps the number of µops admitted to the log.
func TestKonataLimit(t *testing.T) {
	out := string(runKonata(t, 10))
	n := 0
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "I\t") {
			n++
		}
	}
	if n != 10 {
		t.Errorf("opened %d µops, want 10", n)
	}
}
