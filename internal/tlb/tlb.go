// Package tlb models the two-level TLB hierarchy of Table 2: direct-mapped
// 256-entry L1 I/D TLBs with zero added latency, backed by a 12-way
// 3072-entry L2 TLB (4 cycles) and a fixed-cost page table walk. Since the
// simulator's workloads run in a flat address space, the TLB affects
// timing only (there is no translation to perform), which is exactly its
// role in the paper's evaluation.
package tlb

import "repro/internal/config"

const pageShift = 12

// TLB is a set-associative translation buffer.
type TLB struct {
	sets    [][]entry
	setMask uint64
	clock   uint64
	// Stats.
	Accesses uint64
	Misses   uint64
}

type entry struct {
	valid bool
	vpn   uint64
	lru   uint64
}

// New builds a TLB from the configuration.
func New(cfg config.TLBConfig) *TLB {
	assoc := cfg.Assoc
	if assoc <= 0 {
		assoc = 1
	}
	nsets := cfg.Entries / assoc
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	if nsets == 0 {
		nsets = 1
	}
	t := &TLB{setMask: uint64(nsets - 1)}
	backing := make([]entry, nsets*assoc)
	t.sets = make([][]entry, nsets)
	for i := range t.sets {
		t.sets[i] = backing[i*assoc : (i+1)*assoc : (i+1)*assoc]
	}
	return t
}

// Lookup probes the TLB for the page of addr, inserting on miss, and
// reports whether it hit.
//tvp:hotpath
func (t *TLB) Lookup(addr uint64) bool {
	vpn := addr >> pageShift
	set := t.sets[vpn&t.setMask]
	t.clock++
	t.Accesses++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lru = t.clock
			return true
		}
	}
	t.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{valid: true, vpn: vpn, lru: t.clock}
	return false
}

// Hierarchy is a two-level TLB with a fixed page-walk cost.
type Hierarchy struct {
	L1I, L1D *TLB
	L2       *TLB
	l2Lat    uint64
	walkLat  uint64
}

// NewHierarchy builds the Table 2 TLB hierarchy.
func NewHierarchy(m *config.Machine) *Hierarchy {
	return &Hierarchy{
		L1I:     New(m.L1ITLB),
		L1D:     New(m.L1DTLB),
		L2:      New(m.L2TLB),
		l2Lat:   uint64(m.L2TLB.Latency),
		walkLat: uint64(m.PageWalkLat),
	}
}

// Translate returns the extra cycles a data (instr=false) or instruction
// (instr=true) access pays for translation: 0 on an L1 TLB hit (Table 2:
// "L1 TLB latency is accounted for in the L1 caches load to use"), the L2
// TLB latency on an L1 miss, plus the walk cost on an L2 miss.
//tvp:hotpath
func (h *Hierarchy) Translate(addr uint64, instr bool) uint64 {
	l1 := h.L1D
	if instr {
		l1 = h.L1I
	}
	if l1.Lookup(addr) {
		return 0
	}
	if h.L2.Lookup(addr) {
		return h.l2Lat
	}
	return h.l2Lat + h.walkLat
}
