package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// testWorkload is a real suite workload, so served records are genuine
// simulation results.
func testWorkload(t *testing.T, i int) string {
	t.Helper()
	names := workload.Names()
	if len(names) <= i {
		t.Fatalf("suite has only %d workloads", len(names))
	}
	return names[i]
}

// newTestServer builds a Server (memory-only unless st is non-nil) and
// an httptest front for it, torn down with the test.
func newTestServer(t *testing.T, st *store.Store) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, Queue: 4, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runBody(workload string, insts uint64) string {
	return fmt.Sprintf(`{"workload":%q,"vp":"tvp","spsr":true,"warmup":1000,"insts":%d}`, workload, insts)
}

func decodeError(t *testing.T, data []byte) apiError {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q not JSON: %v", data, err)
	}
	if e.Schema != ErrorSchema {
		t.Fatalf("error schema = %q, want %s", e.Schema, ErrorSchema)
	}
	if e.Error == "" {
		t.Fatal("error body has empty message")
	}
	return e
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	wl := testWorkload(t, 0)

	resp := postJSON(t, ts.URL+"/v1/run", runBody(wl, 20000))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Tvpd-Source"); got != SourceComputed {
		t.Fatalf("first request source = %q, want %s", got, SourceComputed)
	}
	first := readBody(t, resp)

	// Golden round-trip: the served bytes must decode through the
	// canonical RunRecord decoder and carry real results.
	rec, err := obs.DecodeRunRecord(first)
	if err != nil {
		t.Fatalf("DecodeRunRecord(served bytes): %v", err)
	}
	if rec.Schema != obs.RunSchema {
		t.Fatalf("schema = %q, want %s", rec.Schema, obs.RunSchema)
	}
	if rec.Workload != wl || rec.Insts != 20000 || rec.Warmup != 1000 {
		t.Fatalf("record meta = %s/%d/%d", rec.Workload, rec.Warmup, rec.Insts)
	}
	if rec.ConfigFP == "" || rec.VPMode != "Tar. VP" || !rec.SpSR {
		t.Fatalf("record config identity = %q/%q/%v", rec.ConfigFP, rec.VPMode, rec.SpSR)
	}
	if rec.Totals.Cycles == 0 || rec.Totals.ArchInsts < 19000 || rec.Summary.IPC <= 0 {
		t.Fatalf("record totals empty: cycles=%d insts=%d ipc=%v",
			rec.Totals.Cycles, rec.Totals.ArchInsts, rec.Summary.IPC)
	}
	if rec.Cached {
		t.Fatal("served record marked Cached; provenance belongs in the header")
	}

	// Second identical request: memory tier, byte-identical record.
	resp = postJSON(t, ts.URL+"/v1/run", runBody(wl, 20000))
	if got := resp.Header.Get("X-Tvpd-Source"); got != SourceMemory {
		t.Fatalf("second request source = %q, want %s", got, SourceMemory)
	}
	if second := readBody(t, resp); !bytes.Equal(first, second) {
		t.Fatalf("cached record bytes differ from computed:\n%s\n%s", first, second)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/run", `{"workload":"no-such-kernel","insts":1000}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	e := decodeError(t, readBody(t, resp))
	if e.Workload != "no-such-kernel" || !strings.Contains(e.Error, "unknown workload") {
		t.Fatalf("error = %+v", e)
	}
}

func TestRunMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	wl := testWorkload(t, 0)
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"workload":`},
		{"unknown field", `{"workload":"` + wl + `","insts":1000,"bogus":1}`},
		{"bad vp mode", `{"workload":"` + wl + `","vp":"evp","insts":1000}`},
		{"zero insts", `{"workload":"` + wl + `","vp":"tvp"}`},
		// MVP + 9-bit idiom elimination is rejected by
		// config.Machine.Validate: the idiom path needs TVP/GVP inlining.
		{"invalid config", `{"workload":"` + wl + `","vp":"mvp","nine_bit_idiom":true,"insts":1000}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/run", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, readBody(t, resp))
			}
			decodeError(t, readBody(t, resp))
		})
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)
	w0, w1 := testWorkload(t, 0), testWorkload(t, 1)
	body := fmt.Sprintf(`{"workloads":[%q,%q],"vp_modes":["off","tvp"],"warmup":1000,"insts":20000}`, w0, w1)
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	defer resp.Body.Close()

	// NDJSON framing: one complete RunRecord per line, in grid order.
	want := []struct{ wl, mode string }{
		{w0, "Baseline"}, {w0, "Tar. VP"}, {w1, "Baseline"}, {w1, "Tar. VP"},
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var got int
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatal("blank NDJSON line")
		}
		rec, err := obs.DecodeRunRecord(line)
		if err != nil {
			t.Fatalf("line %d: %v", got, err)
		}
		if got >= len(want) {
			t.Fatalf("more than %d lines", len(want))
		}
		if rec.Workload != want[got].wl || rec.VPMode != want[got].mode {
			t.Fatalf("line %d = %s/%s, want %s/%s", got, rec.Workload, rec.VPMode, want[got].wl, want[got].mode)
		}
		got++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("%d NDJSON lines, want %d", got, len(want))
	}
	if c := s.Counters(); c.Simulated != 4 {
		t.Fatalf("simulated = %d, want 4", c.Simulated)
	}
}

func TestSweepRejectsBadGrid(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"workloads":["no-such-kernel"],"insts":1000}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload in grid: status = %d, want 404", resp.StatusCode)
	}
	decodeError(t, readBody(t, resp))

	resp = postJSON(t, ts.URL+"/v1/sweep", `{"vp_modes":["tvp"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero insts: status = %d, want 400", resp.StatusCode)
	}
	decodeError(t, readBody(t, resp))
}

func TestStatusEndpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, st)
	wl := testWorkload(t, 0)

	// One computed point, then a memory hit on the same point.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/run", runBody(wl, 20000))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
		readBody(t, resp)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rec StatusRecord
	if err := json.Unmarshal(readBody(t, resp), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Schema != StatusSchema || !rec.Healthy {
		t.Fatalf("status record = %+v", rec)
	}
	if rec.Workers != 2 || rec.QueueCap != 4 || rec.Inflight != 0 {
		t.Fatalf("pool shape = workers %d queue %d inflight %d", rec.Workers, rec.QueueCap, rec.Inflight)
	}
	if rec.Requests.Simulated != 1 || rec.Requests.MemHits != 1 || rec.Requests.Failed != 0 {
		t.Fatalf("request counters = %+v", rec.Requests)
	}
	if rec.Cache.Len != 1 {
		t.Fatalf("cache len = %d", rec.Cache.Len)
	}
	if rec.Store == nil || rec.Store.Dir != dir || rec.Store.Puts != 1 || rec.Store.Records != 1 {
		t.Fatalf("store status = %+v", rec.Store)
	}

	// Memory-only server omits the store section.
	_, ts2 := newTestServer(t, nil)
	resp, err = http.Get(ts2.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var rec2 StatusRecord
	if err := json.Unmarshal(readBody(t, resp), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.Store != nil {
		t.Fatalf("memory-only status reports a store: %+v", rec2.Store)
	}
}

func TestRunTimeoutThenRetry(t *testing.T) {
	s, ts := newTestServer(t, nil)
	wl := testWorkload(t, 0)

	// A 1ms deadline on a multi-hundred-ms run must abort from inside
	// the cycle loop and return 504.
	long := fmt.Sprintf(`{"workload":%q,"vp":"tvp","insts":1000000,"timeout_ms":1}`, wl)
	resp := postJSON(t, ts.URL+"/v1/run", long)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, readBody(t, resp))
	}
	decodeError(t, readBody(t, resp))
	if c := s.Counters(); c.Failed != 1 {
		t.Fatalf("failed = %d, want 1", c.Failed)
	}

	// The timeout error must not poison the key: an identical point
	// (same RunKey) at a smaller scale proves nothing here, so re-ask
	// the exact same point without a deadline and expect a real record.
	retry := fmt.Sprintf(`{"workload":%q,"vp":"tvp","insts":1000000}`, wl)
	resp = postJSON(t, ts.URL+"/v1/run", retry)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d (body %s)", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Tvpd-Source"); got != SourceComputed {
		t.Fatalf("retry source = %q, want %s (cancellation was memoized)", got, SourceComputed)
	}
	rec, err := obs.DecodeRunRecord(readBody(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Totals.ArchInsts < 950000 {
		t.Fatalf("retry simulated %d insts", rec.Totals.ArchInsts)
	}
}
