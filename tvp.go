// Package tvp is the public API of the reproduction of "Leveraging
// Targeted Value Prediction to Unlock New Hardware Strength Reduction
// Potential" (Arthur Perais, MICRO 2021).
//
// It exposes the simulated machine (an aggressive 8-wide out-of-order
// core per the paper's Table 2), the three value prediction flavors the
// paper studies — Minimal (MVP), Targeted (TVP) and Generic (GVP) — the
// Speculative Strength Reduction (SpSR) rename optimization, and the
// synthetic SPEC CPU2017-speed-like workload suite the evaluation runs on.
//
// Quick start:
//
//	res, err := tvp.Run(tvp.Options{Workload: "602_gcc_s_1", VP: tvp.TVP, SpSR: true})
//	fmt.Printf("IPC %.3f, coverage %.1f%%\n", res.Stats.IPC(), 100*res.Stats.VPCoverage())
//
// See cmd/tvpreport for the harness that regenerates every table and
// figure of the paper, and EXPERIMENTS.md for the measured results.
package tvp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/workload"
)

// VPMode selects the value prediction flavor.
type VPMode = config.VPMode

// Value prediction flavors (§3, §6.1 of the paper).
const (
	// VPOff disables value prediction (the baseline machine still
	// performs move elimination and 0/1-idiom elimination, §5).
	VPOff = config.VPOff
	// MVP predicts only 0x0 and 0x1 through hardwired physical
	// registers (§3.1). Predictor footprint ≈ 7.9 KB.
	MVP = config.MVP
	// TVP predicts 9-bit signed values through physical register name
	// inlining, and enables 9-bit idiom elimination (§3.2). ≈ 13.9 KB.
	TVP = config.TVP
	// GVP predicts arbitrary 64-bit values (§6.1). ≈ 55.2 KB.
	GVP = config.GVP
)

// Machine is the full machine configuration (paper Table 2 by default).
type Machine = config.Machine

// Stats is the set of counters a run produces.
type Stats = stats.Sim

// DefaultConfig returns the paper's Table 2 machine with value prediction
// off and SpSR off (the evaluation baseline).
func DefaultConfig() *Machine { return config.Default() }

// Options configures a single simulation run.
type Options struct {
	// Workload names a suite entry (see Benchmarks) — required unless
	// Program is set.
	Workload string
	// Program overrides Workload with a custom program.
	Program *prog.Program
	// VP selects the value prediction flavor (default VPOff).
	VP VPMode
	// SpSR enables speculative strength reduction at rename (§4).
	SpSR bool
	// Warmup is the number of instructions committed before statistics
	// collection begins (default 50,000).
	Warmup uint64
	// MaxInsts is the number of post-warmup instructions to simulate
	// (default 300,000).
	MaxInsts uint64
	// Config overrides the base machine configuration (before the VP
	// and SpSR options are applied). Leave nil for Table 2.
	Config *Machine
	// CrossCheck arms the shadow-emulator retire checker
	// (config.Machine.CrossCheck): the run panics with a
	// *pipeline.Divergence if retired architectural state ever departs
	// from the functional oracle. Timing and statistics are unaffected.
	CrossCheck bool
}

// Result is the outcome of one run.
type Result struct {
	// Workload is the workload name.
	Workload string
	// Stats holds the post-warmup counters.
	Stats Stats
	// TotalCycles and TotalInsts include warmup.
	TotalCycles, TotalInsts uint64
}

func (o *Options) defaults() {
	if o.Warmup == 0 {
		o.Warmup = 50_000
	}
	if o.MaxInsts == 0 {
		o.MaxInsts = 300_000
	}
}

// Run executes one simulation.
func Run(o Options) (Result, error) {
	o.defaults()
	p := o.Program
	name := o.Workload
	if p == nil {
		// Programs are immutable once built, so the memoized build is
		// shared freely across concurrent runs (see internal/workload).
		var err error
		p, err = workload.Program(o.Workload)
		if err != nil {
			return Result{}, err
		}
	} else if name == "" {
		name = p.Name
	}
	cfg := o.Config
	if cfg == nil {
		cfg = config.Default()
	}
	cfg = cfg.WithVP(o.VP).WithSpSR(o.SpSR) // clones: the mutation below stays local
	if o.CrossCheck {
		cfg.CrossCheck = true
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("tvp: %w", err)
	}
	core := pipeline.New(cfg, p)
	res := core.Run(o.Warmup, o.MaxInsts)
	return Result{
		Workload:    name,
		Stats:       res.Stats,
		TotalCycles: res.Cycles,
		TotalInsts:  res.Committed,
	}, nil
}

// Benchmarks returns the workload names in the paper's figure order.
func Benchmarks() []string { return workload.Names() }

// RunMany executes the given runs concurrently (bounded by GOMAXPROCS)
// and returns results in input order. The first error aborts nothing —
// failed slots carry their error.
func RunMany(opts []Options) ([]Result, []error) {
	results := make([]Result, len(opts))
	errs := make([]error, len(opts))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(opts[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}
