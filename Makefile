# Development gates for the TVP reproduction.
#
#   make check   # what CI runs: vet, build, race on the concurrency-
#                # sensitive packages, then the full test suite
#   make bench   # the E1–E14 benchmark sweep + simulator throughput
#   make report  # regenerate the full EXPERIMENTS.md report

GO ?= go

.PHONY: check vet build test race bench report

check: vet build race test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The run cache and the report fan-out are the concurrency hot spots:
# keep them race-clean at the short test length.
race:
	$(GO) test -race ./internal/simcache ./internal/report

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

report:
	$(GO) run ./cmd/tvpreport -cachestats
