package memdep

import "testing"

func TestColdPredictorPredictsNothing(t *testing.T) {
	s := New(64, 64)
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Error("untrained load should have no dependence")
	}
	if _, ok := s.RenameStore(0x2000, 5); ok {
		t.Error("untrained store should have no dependence")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := New(64, 64)
	loadPC, storePC := uint64(0x1000), uint64(0x2000)
	s.Violation(loadPC, storePC)
	// The store registers in the LFST at rename...
	if _, ok := s.RenameStore(storePC, 100); ok {
		t.Error("first store in a fresh set has no predecessor")
	}
	// ...and the load now depends on it.
	seq, ok := s.RenameLoad(loadPC)
	if !ok || seq != 100 {
		t.Fatalf("load dependence = %d,%v want 100", seq, ok)
	}
	// After the store executes, the dependence clears.
	s.StoreExecuted(storePC, 100)
	if _, ok := s.RenameLoad(loadPC); ok {
		t.Error("dependence should clear once the store executed")
	}
}

func TestStoreStoreOrdering(t *testing.T) {
	s := New(64, 64)
	s.Violation(0x1000, 0x2000)
	s.RenameStore(0x2000, 100)
	prev, ok := s.RenameStore(0x2000, 200)
	if !ok || prev != 100 {
		t.Errorf("second store should order after the first: %d,%v", prev, ok)
	}
}

func TestSetMerging(t *testing.T) {
	s := New(64, 64)
	// Two independent violations, then a violation joining them.
	s.Violation(0x1000, 0x2000)
	s.Violation(0x3000, 0x4000)
	s.Violation(0x1000, 0x4000) // merge
	// Now a store at 0x4000 must gate the load at 0x1000.
	s.RenameStore(0x4000, 300)
	seq, ok := s.RenameLoad(0x1000)
	if !ok || seq != 300 {
		t.Errorf("merged set dependence = %d,%v want 300", seq, ok)
	}
	if s.Violations != 3 {
		t.Errorf("violations = %d", s.Violations)
	}
}

func TestStaleStoreExecutedIgnored(t *testing.T) {
	s := New(64, 64)
	s.Violation(0x1000, 0x2000)
	s.RenameStore(0x2000, 100)
	s.RenameStore(0x2000, 200)   // newer instance
	s.StoreExecuted(0x2000, 100) // stale clear: must not remove seq 200
	seq, ok := s.RenameLoad(0x1000)
	if !ok || seq != 200 {
		t.Errorf("stale StoreExecuted cleared live entry: %d,%v", seq, ok)
	}
}
