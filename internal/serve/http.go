package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workload"
)

// API schema versions for the records this package emits itself
// (RunRecords reuse obs.RunSchema unchanged).
const (
	ErrorSchema  = "tvp.serve.error/v1"
	StatusSchema = "tvp.serve.status/v1"
)

// errUnknownWorkload marks a well-formed request naming a workload the
// suite does not define: 404, not 400.
var errUnknownWorkload = errors.New("unknown workload")

// RunRequest asks for one simulation point. The machine configuration
// is the paper's default machine with the request's VP flavor applied
// (config.Default().WithVP(...).WithSpSR(...)), the same knobs the
// figure sweeps turn.
type RunRequest struct {
	Workload string `json:"workload"`
	// VP names the value-prediction flavor: off|mvp|tvp|gvp.
	VP   string `json:"vp"`
	SpSR bool   `json:"spsr"`
	// NineBitIdiom overrides the 9-bit idiom-elimination default implied
	// by the VP mode (ablation knob; the combination must still pass
	// config.Machine.Validate).
	NineBitIdiom *bool  `json:"nine_bit_idiom,omitempty"`
	Warmup       uint64 `json:"warmup"`
	Insts        uint64 `json:"insts"`
	FastWarmup   bool   `json:"fast_warmup,omitempty"`
	// TimeoutMS bounds the request; on expiry the run is stopped from
	// inside the cycle loop and 504 is returned.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepRequest asks for a grid of points, streamed back as NDJSON (one
// RunRecord per line, in workloads × vp_modes order).
type SweepRequest struct {
	// Workloads defaults to the full suite when empty.
	Workloads []string `json:"workloads,omitempty"`
	// VPModes defaults to off,mvp,tvp,gvp when empty.
	VPModes    []string `json:"vp_modes,omitempty"`
	SpSR       bool     `json:"spsr"`
	Warmup     uint64   `json:"warmup"`
	Insts      uint64   `json:"insts"`
	FastWarmup bool     `json:"fast_warmup,omitempty"`
	TimeoutMS  int64    `json:"timeout_ms,omitempty"`
}

// apiError is the structured error body (and, during a sweep, the
// per-point error line).
type apiError struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Error    string `json:"error"`
}

// StatusRecord is the /v1/status response.
type StatusRecord struct {
	Schema        string       `json:"schema"`
	Healthy       bool         `json:"healthy"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       int          `json:"workers"`
	QueueDepth    int          `json:"queue_depth"`
	QueueCap      int          `json:"queue_cap"`
	Inflight      int          `json:"inflight"`
	Requests      Counters     `json:"requests"`
	Cache         CacheStatus  `json:"cache"`
	Store         *StoreStatus `json:"store,omitempty"`
}

// CacheStatus reports the in-memory tier.
type CacheStatus struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Len    int    `json:"len"`
}

// StoreStatus reports the persistent tier (absent when memory-only).
type StoreStatus struct {
	Dir            string `json:"dir"`
	Records        int    `json:"records"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	Quarantined    uint64 `json:"quarantined"`
	StaleEvictions uint64 `json:"stale_evictions"`
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func parseVP(s string) (config.VPMode, error) {
	switch strings.ToLower(s) {
	case "", "off", "none", "baseline":
		return config.VPOff, nil
	case "mvp", "min":
		return config.MVP, nil
	case "tvp", "tar":
		return config.TVP, nil
	case "gvp", "gen":
		return config.GVP, nil
	}
	return config.VPOff, fmt.Errorf("unknown VP mode %q (want off|mvp|tvp|gvp)", s)
}

func knownWorkload(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// point validates the request and assembles the simulation point.
func (r RunRequest) point() (report.Point, error) {
	if r.Workload == "" {
		return report.Point{}, fmt.Errorf("missing workload")
	}
	if !knownWorkload(r.Workload) {
		return report.Point{}, fmt.Errorf("%w %q", errUnknownWorkload, r.Workload)
	}
	if r.Insts == 0 {
		return report.Point{}, fmt.Errorf("insts must be positive")
	}
	mode, err := parseVP(r.VP)
	if err != nil {
		return report.Point{}, err
	}
	cfg := config.Default().WithVP(mode).WithSpSR(r.SpSR)
	if r.NineBitIdiom != nil {
		cfg.NineBitIdiom = *r.NineBitIdiom
	}
	if err := cfg.Validate(); err != nil {
		return report.Point{}, err
	}
	return report.Point{
		Workload:   r.Workload,
		Cfg:        cfg,
		Warmup:     r.Warmup,
		Insts:      r.Insts,
		FastWarmup: r.FastWarmup,
	}, nil
}

// points expands the sweep grid in deterministic workloads-major order.
func (r SweepRequest) points() ([]report.Point, error) {
	names := r.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	modes := r.VPModes
	if len(modes) == 0 {
		modes = []string{"off", "mvp", "tvp", "gvp"}
	}
	pts := make([]report.Point, 0, len(names)*len(modes))
	for _, w := range names {
		for _, m := range modes {
			p, err := RunRequest{
				Workload:   w,
				VP:         m,
				SpSR:       r.SpSR,
				Warmup:     r.Warmup,
				Insts:      r.Insts,
				FastWarmup: r.FastWarmup,
			}.point()
			if err != nil {
				return nil, err
			}
			pts = append(pts, p)
		}
	}
	return pts, nil
}

func writeError(w http.ResponseWriter, code int, wl, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(apiError{Schema: ErrorSchema, Workload: wl, Error: fmt.Sprintf(format, args...)})
}

// errorStatus maps a resolution error to an HTTP status code.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable // client went away or server draining
	case errors.Is(err, report.ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// requestCtx derives the resolution context: the HTTP request context
// (canceled when the client disconnects or the server shuts down),
// tightened by the request's own timeout if it set one.
func requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// recordBytes renders a RunRecord exactly as every tier must serve it:
// compact JSON plus a trailing newline. Byte identity across memory,
// disk and freshly-computed answers is asserted by the persistence
// integration test.
func recordBytes(rec *obs.RunRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "malformed request: %v", err)
		return
	}
	p, err := req.point()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errUnknownWorkload) {
			code = http.StatusNotFound
		}
		writeError(w, code, req.Workload, "%v", err)
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	st, source, err := s.Resolve(ctx, p)
	if err != nil {
		writeError(w, errorStatus(err), req.Workload, "%v", err)
		return
	}
	rec := obs.NewRunRecord(obs.RunMeta{
		Workload:   p.Workload,
		Cfg:        p.Cfg,
		Warmup:     p.Warmup,
		Insts:      p.Insts,
		FastWarmup: p.FastWarmup,
	}, st)
	b, err := recordBytes(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, req.Workload, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tvpd-Source", source)
	w.Write(b)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "malformed request: %v", err)
		return
	}
	if req.Insts == 0 {
		writeError(w, http.StatusBadRequest, "", "insts must be positive")
		return
	}
	pts, err := req.points()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errUnknownWorkload) {
			code = http.StatusNotFound
		}
		writeError(w, code, "", "%v", err)
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()

	// Resolve every point concurrently (the pool bounds real simulation
	// work) but stream strictly in grid order, flushing per line, so
	// clients read a deterministic NDJSON sequence.
	lines := make([]chan []byte, len(pts))
	for i := range pts {
		lines[i] = make(chan []byte, 1)
		go func(i int, p report.Point) {
			st, _, err := s.Resolve(ctx, p)
			if err != nil {
				b, _ := json.Marshal(apiError{Schema: ErrorSchema, Workload: p.Workload, Error: err.Error()})
				lines[i] <- append(b, '\n')
				return
			}
			rec := obs.NewRunRecord(obs.RunMeta{
				Workload:   p.Workload,
				Cfg:        p.Cfg,
				Warmup:     p.Warmup,
				Insts:      p.Insts,
				FastWarmup: p.FastWarmup,
			}, st)
			b, err := recordBytes(rec)
			if err != nil {
				b2, _ := json.Marshal(apiError{Schema: ErrorSchema, Workload: p.Workload, Error: err.Error()})
				b = append(b2, '\n')
			}
			lines[i] <- b
		}(i, pts[i])
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i := range lines {
		w.Write(<-lines[i])
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Counters()
	depth, capacity := s.pool.QueueDepth()
	rec := StatusRecord{
		Schema:        StatusSchema,
		Healthy:       true,
		UptimeSeconds: sinceSeconds(s.start),
		Workers:       s.pool.Workers(),
		QueueDepth:    depth,
		QueueCap:      capacity,
		Inflight:      s.Inflight(),
		Requests:      s.Counters(),
		Cache:         CacheStatus{Hits: hits, Misses: misses, Len: s.cache.Len()},
	}
	if s.store != nil {
		c := s.store.Counters()
		rec.Store = &StoreStatus{
			Dir:            s.store.Dir(),
			Records:        s.store.Len(),
			Hits:           c.Hits,
			Misses:         c.Misses,
			Puts:           c.Puts,
			Quarantined:    c.Quarantined,
			StaleEvictions: c.StaleEvictions,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "", "%v", err)
		return
	}
	w.Write(append(b, '\n'))
}
