package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathMarker is the annotation that opts a function into the
// hotpathalloc check. It goes in the doc comment:
//
//	// fetch advances the frontend by one cycle.
//	//
//	//tvp:hotpath
//	func (c *Core) fetch() { ... }
//
// Annotated functions run once per simulated cycle or per instruction;
// a single heap allocation there multiplies into millions per run and
// blows the bench-guard ceiling.
const HotpathMarker = "//tvp:hotpath"

// HotstructMarker is the companion annotation for hot arena entry types.
// It goes in the type's doc comment:
//
//	// uop is one in-flight µop, recycled in place in the ROB ring.
//	//
//	//tvp:hotstruct
//	type uop struct { ... }
//
// Annotated structs live in large preallocated arrays that are rewritten
// every cycle; a pointer-bearing field (pointer, slice, map, string,
// chan, func, interface — at any nesting depth) makes the garbage
// collector scan the whole arena and puts a write barrier on every
// rewrite, so the check forbids them outright. Store int32 indices into
// side tables instead.
const HotstructMarker = "//tvp:hotstruct"

// NewHotpathAlloc builds the hotpathalloc analyzer: functions annotated
// //tvp:hotpath may not contain heap-allocating or boxing constructs —
// fmt calls (which box every argument), escaping composite literals
// (&T{...}, map/slice literals), make/new, capacity-growing append,
// escaping closures, go statements, defer inside loops, or implicit
// conversions of concrete values to interface types. Arguments of
// panic(...) calls are exempt (cold assertion paths), as are in-place
// compaction appends (append(x[:i], x[j:]...)) and closures bound to
// local variables, none of which allocate. Type declarations annotated
// //tvp:hotstruct may not contain pointer-bearing fields at any nesting
// depth (see HotstructMarker); both checks report under the same
// analyzer name, so one //tvplint:ignore hotpathalloc escape hatch
// covers either.
func NewHotpathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbid heap allocation and interface boxing in //tvp:hotpath functions and pointer fields in //tvp:hotstruct types",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body != nil && hasMarker(d.Doc, HotpathMarker) {
						checkHotpathFunc(pass, d)
					}
				case *ast.GenDecl:
					if d.Tok == token.TYPE {
						checkHotstructDecl(pass, d)
					}
				}
			}
		}
		return nil
	}
	return a
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text := strings.TrimSpace(c.Text); text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// checkHotstructDecl enforces the hotstruct invariant on every marked
// type in the declaration group (the marker may sit on the group's doc
// comment or on an individual TypeSpec). Diagnostics anchor at the
// offending field, so a suppression can be scoped to one field while the
// rest of the struct stays guarded.
func checkHotstructDecl(pass *Pass, gd *ast.GenDecl) {
	groupMarked := hasMarker(gd.Doc, HotstructMarker)
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || (!groupMarked && !hasMarker(ts.Doc, HotstructMarker)) {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			obj := pass.Pkg.Info.Defs[ts.Name]
			if obj != nil {
				if why := pointerBearing(obj.Type(), nil); why != "" {
					pass.Reportf(ts.Pos(), "%s is //tvp:hotstruct but is %s; hot arena entries must be GC-invisible", ts.Name.Name, why)
				}
			}
			continue
		}
		for _, fld := range st.Fields.List {
			for _, name := range fld.Names {
				obj, ok := pass.Pkg.Info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				if why := pointerBearing(obj.Type(), nil); why != "" {
					pass.Reportf(name.Pos(), "%s is //tvp:hotstruct: field %s is %s; the GC would scan the whole arena — store an index into a side table instead", ts.Name.Name, name.Name, why)
				}
			}
			// Embedded field: no Names; the type expression carries the def.
			if len(fld.Names) == 0 {
				if t := pass.Pkg.Info.Types[fld.Type].Type; t != nil {
					if why := pointerBearing(t, nil); why != "" {
						pass.Reportf(fld.Pos(), "%s is //tvp:hotstruct: embedded %s is %s; the GC would scan the whole arena", ts.Name.Name, types.ExprString(fld.Type), why)
					}
				}
			}
		}
	}
}

// pointerBearing reports why t would make the GC scan a value of t ("" if
// it would not), recursing through named types, structs and arrays. seen
// guards against recursive type definitions (which necessarily go
// through a pointer and are reported at that pointer).
func pointerBearing(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.String, types.UntypedString:
			return "a string (pointer + length header)"
		case types.UnsafePointer:
			return "an unsafe.Pointer"
		}
		return ""
	case *types.Pointer:
		return "a pointer"
	case *types.Slice:
		return "a slice (pointer-bearing header)"
	case *types.Map:
		return "a map (pointer under the hood)"
	case *types.Chan:
		return "a channel (pointer under the hood)"
	case *types.Signature:
		return "a func value (pointer under the hood)"
	case *types.Interface:
		return "an interface (two-word pointer pair)"
	case *types.Struct:
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		for i := 0; i < u.NumFields(); i++ {
			if why := pointerBearing(u.Field(i).Type(), seen); why != "" {
				return "a struct whose field " + u.Field(i).Name() + " is " + why
			}
		}
		return ""
	case *types.Array:
		if why := pointerBearing(u.Elem(), seen); why != "" {
			return "an array of " + why
		}
		return ""
	}
	// Anything unrecognized (type parameters, etc.) is conservatively
	// treated as pointer-bearing: the arena must prove cleanliness.
	return "of unanalyzable kind " + t.String()
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Closures bound to a local variable (f := func(...){...}) are
	// non-escaping helpers the compiler keeps on the stack; anything
	// else (argument position, struct field, return value) escapes.
	localLits := map[*ast.FuncLit]bool{}
	addrLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok && i < len(n.Lhs) {
					if _, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						localLits[fl] = true
					}
				}
			}
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				addrLits[cl] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") {
				return false // cold assertion path: arguments never run per-cycle
			}
			checkHotpathCall(pass, n, name)
		case *ast.FuncLit:
			if !localLits[n] {
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: escaping closure allocates; hoist it or bind it to a local variable", name)
			}
		case *ast.CompositeLit:
			t := pass.Pkg.Info.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: map literal %s allocates", name, types.ExprString(n.Type))
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s is //tvp:hotpath: slice literal allocates", name)
			default:
				if addrLits[n] {
					pass.Reportf(n.Pos(), "%s is //tvp:hotpath: &composite literal escapes to the heap", name)
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //tvp:hotpath: go statement allocates a goroutine per invocation", name)
		case *ast.ForStmt:
			checkLoopDefers(pass, n.Body, name)
		case *ast.RangeStmt:
			checkLoopDefers(pass, n.Body, name)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkLoopDefers(pass *Pass, body *ast.BlockStmt, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			pass.Reportf(ds.Pos(), "%s is //tvp:hotpath: defer inside a loop heap-allocates its frame every iteration", name)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr, name string) {
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if argT := pass.Pkg.Info.Types[call.Args[0]].Type; argT != nil && !isInterfaceOrNil(argT) {
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: conversion of %s to interface %s boxes on the heap", name, argT, tv.Type)
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: make allocates; preallocate in the constructor", name)
			case "new":
				pass.Reportf(call.Pos(), "%s is //tvp:hotpath: new allocates; preallocate in the constructor", name)
			case "append":
				if !isCompactionAppend(call) {
					pass.Reportf(call.Pos(), "%s is //tvp:hotpath: append may grow the backing array; preallocate capacity (or //tvplint:ignore hotpathalloc <reason>)", name)
				}
			}
			return
		}
	}
	fn := calleeFunc(pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //tvp:hotpath: fmt.%s boxes its arguments and allocates", name, fn.Name())
		return
	}
	// Implicit interface boxing: a concrete argument passed to an
	// interface parameter allocates unless the value is already an
	// interface (or nil).
	sig := calleeSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pass.Pkg.Info.Types[arg].Type
		if argT == nil || isInterfaceOrNil(argT) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is //tvp:hotpath: passing concrete %s as interface parameter %s boxes on the heap", name, argT, pt)
	}
}

func isBuiltinCall(pass *Pass, call *ast.CallExpr, builtin string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != builtin {
		return false
	}
	_, ok = pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// isCompactionAppend recognizes append(x[:i], x[j:]...) — removing an
// element in place. The result length never exceeds the original, so
// the backing array is reused and nothing allocates.
func isCompactionAppend(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return types.ExprString(dst.X) == types.ExprString(src.X)
}

func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the static type of parameter i, unrolling the
// variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isInterfaceOrNil(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}
