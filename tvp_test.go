package tvp

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Options{Workload: "648_exchange2_s", Warmup: 5000, MaxInsts: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "648_exchange2_s" {
		t.Errorf("workload name = %q", res.Workload)
	}
	if res.Stats.IPC() <= 0 {
		t.Error("no progress")
	}
	if res.TotalInsts < 35000 {
		t.Errorf("total committed %d < warmup+measured", res.TotalInsts)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Options{Workload: "no_such_thing"}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestRunCustomProgram(t *testing.T) {
	b := prog.NewBuilder("custom")
	b.MovImm(isa.X1, 50000)
	top := b.Here()
	b.AddI(isa.X2, isa.X2, 3)
	b.SubsI(isa.X1, isa.X1, 1)
	b.BCond(isa.NE, top)
	b.Halt()
	res, err := Run(Options{Program: b.Build(), Warmup: 1000, MaxInsts: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "custom" {
		t.Errorf("custom program name = %q", res.Workload)
	}
}

func TestRunAllVPModes(t *testing.T) {
	for _, m := range []VPMode{VPOff, MVP, TVP, GVP} {
		res, err := Run(Options{Workload: "641_leela_s", VP: m, SpSR: m != VPOff, Warmup: 2000, MaxInsts: 20000})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Stats.IPC() <= 0 {
			t.Errorf("%v made no progress", m)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 31 { // 28 paper points + 3 promoted fuzzgen members
		t.Fatalf("suite size %d", len(bs))
	}
	if bs[0] != "600_perlbench_s_1" {
		t.Errorf("first = %s; the list must follow the paper's figure order", bs[0])
	}
	if bs[28] != "901_fuzz_dispatch_s" {
		t.Errorf("bs[28] = %s; promoted members must follow the paper prefix", bs[28])
	}
}

func TestRunMany(t *testing.T) {
	opts := []Options{
		{Workload: "648_exchange2_s", Warmup: 1000, MaxInsts: 10000},
		{Workload: "does_not_exist"},
		{Workload: "641_leela_s", VP: GVP, Warmup: 1000, MaxInsts: 10000},
	}
	results, errs := RunMany(opts)
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("valid runs errored: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Error("invalid run must carry an error")
	}
	if results[0].Stats.IPC() <= 0 || results[2].Stats.IPC() <= 0 {
		t.Error("results missing")
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
