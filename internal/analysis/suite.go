package analysis

// Suite returns the production tvplint analyzer set, configured for this
// module's layout. cmd/tvplint runs it over the whole module; the
// analysistest goldens exercise each analyzer against synthetic
// packages with test-local configurations.
func Suite(modulePath string) []*Analyzer {
	internal := modulePath + "/internal/"
	return []*Analyzer{
		NewFingerprintSafe(internal+"config", "Machine"),
		NewHotpathAlloc(),
		NewDetmap(DetmapConfig{
			SinkPrefixes: []string{
				internal + "report",
				internal + "obs",
				modulePath + "/cmd/",
				modulePath + "/examples/",
			},
		}),
		NewStatsComplete(internal+"stats", internal+"obs"),
		NewNondet(NondetConfig{
			CorePrefixes: []string{internal},
			AllowPkgs: []string{
				internal + "xrand",    // the sanctioned deterministic PRNG wrapper
				internal + "analysis", // the lint suite itself is tooling, not simulator
			},
			AllowFiles: []string{
				"heartbeat.go", // throttled stderr progress: wall clock is its purpose
				"wallclock.go", // serve's uptime reads, confined to one file by design
			},
		}),
	}
}
