package verify_test

import (
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/isa/verify"
	"repro/internal/workload"
)

// TestVerifyAcceptsSuite is the core acceptance gate: the verifier must
// pass every built-in workload with zero Error-severity findings —
// anything else is a false reject that would block legitimate binaries
// at the -load gate.
func TestVerifyAcceptsSuite(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := workload.Program(name)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res := verify.Program(p, verify.Options{})
			for _, d := range res.Errors() {
				t.Errorf("false reject: %s", d)
			}
			if t.Failed() {
				t.Logf("memory fixpoint took %d rounds", res.MemIters)
			}
		})
	}
}

// TestVerifyAcceptsFuzzgen requires the verifier to accept every
// constrained-random program the generator can emit (they are all safe
// by construction; FuzzVerify extends this over the native fuzzer).
func TestVerifyAcceptsFuzzgen(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		p := fuzzgen.Generate(seed)
		res := verify.Program(p, verify.Options{})
		for _, d := range res.Errors() {
			t.Errorf("seed %d: false reject: %s", seed, d)
		}
	}
}
