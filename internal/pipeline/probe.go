package pipeline

import (
	"repro/internal/isa"
	"repro/internal/stats"
)

// Probe observes simulation progress and event attribution for the
// telemetry layer (internal/obs). It is the counters-side companion of
// Tracer: a Tracer sees every per-µop pipeline event, a Probe sees
// run-level sampling points and the rare events worth attributing to
// static PCs (value-misprediction flushes, branch mispredictions, L1D
// demand misses).
//
// Every call site is nil-guarded, so a detached probe costs at most one
// predictable branch on the hot path. An attached probe must not change
// simulated timing: probes only read state, and the core never consults
// them for decisions.
type Probe interface {
	// SampleEvery returns the interval-sampling period in committed
	// architectural instructions (0 disables interval sampling).
	SampleEvery() uint64
	// Sample is called with the live counter block (memory-hierarchy
	// counters synced) at the measurement start (the warmup boundary, or
	// run start when warmup is 0), after every SampleEvery committed
	// instructions thereafter, and once more when the run ends.
	// committed and cycle are run-absolute (warmup included). The callee
	// must copy st if it retains it; the block stays owned by the core.
	Sample(committed, cycle uint64, st *stats.Sim)
	// VPFlush attributes one value-misprediction pipeline flush to the
	// mispredicted instruction's static PC.
	VPFlush(pc uint64, in *isa.Inst)
	// BranchMispredict attributes one branch misprediction (conditional
	// direction, return-address or indirect-target) to the branch PC.
	BranchMispredict(pc uint64, in *isa.Inst)
	// L1DMiss attributes one L1D demand miss to the accessing load or
	// store PC.
	L1DMiss(pc uint64, in *isa.Inst)
}

// CPIProbe is the optional extension of Probe for top-down CPI-stack
// accounting (cpistack.go). A probe that implements it additionally
// receives the accumulated commit-slot attribution at every sampling
// point and a per-blocking-instruction stall event stream; attaching one
// also arms the accounting itself (no separate EnableCPIStack needed).
// Probes that don't implement it keep working unchanged.
type CPIProbe interface {
	Probe
	// CPISample delivers the live post-warmup CPI stack, immediately
	// before every Sample call (same cadence, same committed/cycle
	// coordinates). The callee must copy cs if it retains it.
	CPISample(committed, cycle uint64, cs *stats.CPIStack)
	// CommitStall attributes a cycle's idle commit slots (or a skipped
	// span's slots) to the instruction blocking the ROB head. Only
	// called when the ROB is non-empty; empty-ROB cycles have no
	// blocking instruction to charge.
	CommitStall(pc uint64, in *isa.Inst, slots uint64)
}

// SetProbe attaches a telemetry probe to the core (nil detaches). Probing
// has no effect on simulated timing. Attribution events (hooks) stay
// disarmed until the warmup boundary so the tables line up with the
// post-warmup counter totals; interval sampling is driven by Run.
func (c *Core) SetProbe(p Probe) {
	c.probe = p
	c.cpiProbe, _ = p.(CPIProbe)
	if p == nil {
		c.hooks = nil
		c.cpiHooks = nil
	}
}

// l1dAccess performs one demand L1D access, attributing a miss to the
// µop's PC when the probe's event hooks are armed. The hook-less path is
// kept free of counter reads.
func (c *Core) l1dAccess(u *uop, cycle uint64, write bool) uint64 {
	if c.hooks == nil {
		return c.mem.L1D.Access(u.ea, cycle, write, false)
	}
	m0 := c.mem.L1D.Misses
	ready := c.mem.L1D.Access(u.ea, cycle, write, false)
	if c.mem.L1D.Misses != m0 {
		c.hooks.L1DMiss(c.crack[u.sIdx].pc, c.instOf(u))
	}
	return ready
}
