package rename

import (
	"fmt"

	"repro/internal/isa"
)

// Operand is a renamed source operand: its name plus whatever the renamer
// knows about its value at rename time.
type Operand struct {
	// Name is the physical name the operand maps to (possibly a value
	// name or a hardwired register).
	Name Name
	// Known reports whether the value is known at rename (inlined,
	// hardwired, or the architectural zero register).
	Known bool
	// Value is the known 64-bit register content (valid when Known).
	Value int64
	// Wide reports whether the producing definition was 64-bit. For
	// known values the flag is informational; the value itself governs.
	Wide bool
	// Spec reports whether the knowledge is speculative, i.e. derives
	// (possibly through a chain of reductions) from a value prediction.
	// Reductions consuming speculative operands are SpSR; reductions
	// consuming only architectural knowledge are dynamic strength
	// reduction.
	Spec bool
}

type mapping struct {
	name Name
	wide bool
	spec bool
}

// Renamer is the integer+FP renaming state: speculative RAT, committed
// CRAT, free lists, reference counts for move elimination, and the
// frontend NZCV register used by SpSR.
type Renamer struct {
	rat  [isa.NumRegs]mapping
	crat [isa.NumRegs]mapping

	fpRAT  [32]Name
	fpCRAT [32]Name

	freeInt  []Name // fixed backing store; the live stack is freeInt[:nFreeInt]
	freeFP   []Name
	nFreeInt int
	nFreeFP  int
	rc       []int32 // reference counts, indexed by physical name
	fpRC     []int32

	nPhysInt, nPhysFP int

	// Frontend NZCV tracking (§4.2): valid between an SpSR'd flag writer
	// and the next renamed non-reduced flag writer.
	nzcvKnown bool
	nzcvSpec  bool
	nzcv      isa.Flags
}

// NewRenamer builds a renamer with the given physical register file
// sizes. Architectural integer registers X0..X30 start mapped to physical
// registers 2..32 (0 and 1 being hardwired); XZR maps to HardZero. FP
// registers map to FP physical 0..31.
func NewRenamer(nPhysInt, nPhysFP int) *Renamer {
	r := &Renamer{
		nPhysInt: nPhysInt,
		nPhysFP:  nPhysFP,
		rc:       make([]int32, nPhysInt),
		fpRC:     make([]int32, nPhysFP),
	}
	// Hardwired registers are permanently live.
	r.rc[HardZero] = 1
	r.rc[HardOne] = 1
	next := Name(2)
	for a := 0; a < isa.NumRegs-1; a++ {
		r.rat[a] = mapping{name: next, wide: true}
		r.crat[a] = r.rat[a]
		r.rc[next] = 1
		next++
	}
	r.rat[isa.XZR] = mapping{name: HardZero, wide: true}
	r.crat[isa.XZR] = r.rat[isa.XZR]
	r.freeInt = make([]Name, nPhysInt)
	for p := int(next); p < nPhysInt; p++ {
		r.freeInt[r.nFreeInt] = Name(p)
		r.nFreeInt++
	}
	for a := 0; a < 32; a++ {
		r.fpRAT[a] = Name(a)
		r.fpCRAT[a] = Name(a)
		r.fpRC[a] = 1
	}
	r.freeFP = make([]Name, nPhysFP)
	for p := 32; p < nPhysFP; p++ {
		r.freeFP[r.nFreeFP] = Name(p)
		r.nFreeFP++
	}
	return r
}

// FreeInt returns the number of free integer physical registers.
func (r *Renamer) FreeInt() int { return r.nFreeInt }

// FreeFP returns the number of free FP physical registers.
func (r *Renamer) FreeFP() int { return r.nFreeFP }

// SrcInt renames an integer source operand. The value extraction is
// open-coded rather than going through Name.Known/Name.Value: the RAT
// never holds Invalid, so ValueBit alone identifies an inlined value and
// names <= HardOne are the hardwired constants — and dropping the panic
// path keeps SrcInt within the inlining budget of its rename-stage
// callers (two calls per µop). XZR needs no special case: rat[XZR] is
// initialized to HardZero and every Def* path ignores XZR writes, so the
// table lookup itself yields {HardZero, known 0, wide}. The &31 mask
// encodes the NumRegs == 32 bound (checked at encode time) so the lookup
// compiles without a bounds check.
func (r *Renamer) SrcInt(reg isa.Reg) Operand {
	var o Operand
	r.SrcIntInto(&o, reg)
	return o
}

// SrcIntInto is SrcInt writing through an out pointer. The rename stage
// keeps its two source Operands on its own frame and passes them by
// pointer from here on; materializing the 24-byte struct exactly once
// avoids the build-then-copy the by-value form compiles to, whose
// narrow stores followed by wide copy loads defeat store-to-load
// forwarding in the hottest path of the whole simulator.
func (r *Renamer) SrcIntInto(o *Operand, reg isa.Reg) {
	m := r.rat[reg&31]
	// Branchless: the 9-bit sign-extension that decodes value names also
	// yields the hardwired constants (names 0 and 1 sign-extend to values
	// 0 and 1), so one expression covers every Known case and the two
	// data-dependent branches of the obvious formulation — unpredictable
	// on reduction-heavy code — disappear. Value is contractually valid
	// only when Known; for plain physical names it holds decoded garbage.
	o.Name = m.name
	o.Known = m.name&ValueBit != 0 || m.name <= HardOne
	o.Value = int64(int16(m.name<<7)) >> 7 // sign-extend the low 9 bits
	o.Wide = m.wide
	o.Spec = m.spec
}

// SrcFP renames an FP source operand.
func (r *Renamer) SrcFP(reg isa.Reg) Name { return r.fpRAT[reg&31] }

// AllocInt pops a free integer physical register (reference count 1).
// Callers must check FreeInt first; it panics when empty.
func (r *Renamer) AllocInt() Name {
	if r.nFreeInt == 0 {
		panic("rename: integer free list empty")
	}
	r.nFreeInt--
	n := r.freeInt[r.nFreeInt]
	if r.rc[n] != 0 {
		panic(fmt.Sprintf("rename: allocating live register %v (rc=%d)", n, r.rc[n]))
	}
	r.rc[n] = 1
	return n
}

// AllocFP pops a free FP physical register.
func (r *Renamer) AllocFP() Name {
	if r.nFreeFP == 0 {
		panic("rename: FP free list empty")
	}
	r.nFreeFP--
	n := r.freeFP[r.nFreeFP]
	if r.fpRC[n] != 0 {
		panic(fmt.Sprintf("rename: allocating live FP register %v", n))
	}
	r.fpRC[n] = 1
	return n
}

// DefInt installs a new speculative mapping for an integer architectural
// destination. For a freshly allocated name the reference count is
// already 1; for a shared mapping (move elimination, hardwired or value
// names) use DefIntShared instead. Defining XZR is a no-op.
func (r *Renamer) DefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// DefIntShared installs a mapping that shares an existing name (move
// elimination maps the destination onto the source's physical register;
// idiom elimination maps onto a hardwired or value name). Physical names
// gain a reference.
func (r *Renamer) DefIntShared(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	if n.IsPhys() && !n.IsHardwired() {
		r.rc[n]++
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// DefFP installs a new FP mapping.
func (r *Renamer) DefFP(arch isa.Reg, n Name) { r.fpRAT[arch&31] = n }

// Release drops one reference to an integer physical name, returning it
// to the free list when dead. Hardwired and value names are no-ops. Every
// squashed in-flight definition and every committed overwritten CRAT
// mapping releases exactly once.
func (r *Renamer) Release(n Name) {
	if !n.IsPhys() || n.IsHardwired() {
		return
	}
	r.rc[n]--
	switch {
	case r.rc[n] == 0:
		r.freeInt[r.nFreeInt] = n
		r.nFreeInt++
	case r.rc[n] < 0:
		panic(fmt.Sprintf("rename: double release of %v", n))
	}
}

// ReleaseFP drops one reference to an FP physical name.
func (r *Renamer) ReleaseFP(n Name) {
	if n == Invalid {
		return
	}
	r.fpRC[n]--
	switch {
	case r.fpRC[n] == 0:
		r.freeFP[r.nFreeFP] = n
		r.nFreeFP++
	case r.fpRC[n] < 0:
		panic(fmt.Sprintf("rename: double release of FP %v", n))
	}
}

// CommitDefInt retires an integer definition: the overwritten committed
// mapping is released (§3.2.1 register reclamation — a value name in the
// CRAT is simply not put on the free list, which Release handles) and the
// CRAT takes the new mapping.
func (r *Renamer) CommitDefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.Release(r.crat[arch].name)
	r.crat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// CommitDefFP retires an FP definition.
func (r *Renamer) CommitDefFP(arch isa.Reg, n Name) {
	a := arch & 31
	r.ReleaseFP(r.fpCRAT[a])
	r.fpCRAT[a] = n
}

// RestoreFromCRAT copies the committed state into the speculative RAT
// (the first step of the paper's flush recovery: "copying the CRAT to the
// RAT and iteratively re-applying mappings from an in-order queue"). The
// pipeline then replays surviving in-flight definitions with ReplayDef.
// The frontend NZCV is conservatively invalidated.
func (r *Renamer) RestoreFromCRAT() {
	r.rat = r.crat
	r.fpRAT = r.fpCRAT
	r.nzcvKnown = false
}

// ReplayDefInt re-applies a surviving in-flight integer definition during
// flush recovery (no reference count changes: the in-flight reference is
// still held by the ROB entry).
func (r *Renamer) ReplayDefInt(arch isa.Reg, n Name, wide, spec bool) {
	if arch == isa.XZR {
		return
	}
	r.rat[arch] = mapping{name: n, wide: wide, spec: spec}
}

// ReplayDefFP re-applies a surviving FP definition during flush recovery.
func (r *Renamer) ReplayDefFP(arch isa.Reg, n Name) { r.fpRAT[arch&31] = n }

// NZCV returns the frontend condition flags if an SpSR'd flag writer made
// them known and no later flag writer invalidated them, plus whether that
// knowledge is speculative.
func (r *Renamer) NZCV() (f isa.Flags, spec, known bool) {
	return r.nzcv, r.nzcvSpec, r.nzcvKnown
}

// SetNZCV records frontend-known condition flags produced by an SpSR'd
// (or otherwise rename-resolved) flag writer.
func (r *Renamer) SetNZCV(f isa.Flags, spec bool) {
	r.nzcv, r.nzcvSpec, r.nzcvKnown = f, spec, true
}

// InvalidateNZCV forgets the frontend flags; called when a non-reduced
// flag writer renames (§4.2: "invalidated as soon as the next condition
// flag writer is renamed").
func (r *Renamer) InvalidateNZCV() { r.nzcvKnown = false }

// LiveInt returns the number of live (non-free, non-hardwired) integer
// physical registers; used by invariants tests.
func (r *Renamer) LiveInt() int {
	live := 0
	for p := 2; p < r.nPhysInt; p++ {
		if r.rc[p] > 0 {
			live++
		}
	}
	return live
}
