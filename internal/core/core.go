// Package core assembles the paper's contribution into runnable machines.
//
// The contribution itself is spread across three mechanism packages —
// deliberately, because that is where the paper places the hardware:
//
//   - internal/vp: the VTAGE value predictor with the MVP/TVP/GVP
//     targeting policies, FPC confidence, and misprediction silencing
//     (§3.1–§3.4).
//   - internal/rename: hardwired 0/1 registers, 9-bit register-name
//     inlining, the committed/speculative RAT machinery, and the
//     Speculative Strength Reduction decision engine of Table 1 (§3.2,
//     §4).
//   - internal/pipeline: prediction use at rename, in-place validation at
//     the functional units, flush-including-the-predicted-instruction
//     recovery, and the VP-tracking FIFO training at retire (§3.3–§3.5).
//
// This package provides the canonical configurations the evaluation uses
// and is the programmatic entry point examples build on (the root package
// tvp wraps it for end users).
package core

import (
	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// Baseline returns the paper's evaluation baseline: Table 2 with move
// elimination and 0/1-idiom elimination, no value prediction, no SpSR.
func Baseline() *config.Machine { return config.Default() }

// Machine returns a Table 2 machine configured with the given value
// prediction flavor and SpSR setting. TVP and GVP imply 9-bit signed
// idiom elimination, which shares the register inlining hardware.
func Machine(mode config.VPMode, spsr bool) *config.Machine {
	return config.Default().WithVP(mode).WithSpSR(spsr)
}

// EvaluationConfigs returns the six non-baseline configurations of the
// paper's Fig. 6 in figure order.
func EvaluationConfigs() []*config.Machine {
	return []*config.Machine{
		Machine(config.MVP, false),
		Machine(config.MVP, true),
		Machine(config.TVP, false),
		Machine(config.TVP, true),
		Machine(config.GVP, false),
		Machine(config.GVP, true),
	}
}

// NewCore instantiates a simulated core running the program under the
// machine configuration.
func NewCore(m *config.Machine, p *prog.Program) *pipeline.Core {
	return pipeline.New(m, p)
}
