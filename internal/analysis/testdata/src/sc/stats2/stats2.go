// Package stats2 is the statscomplete golden for a missing delta path:
// clean counters but no Sub function.
package stats2

// Sim has no Sub: warmup exclusion silently breaks.
type Sim struct { // want "delta function Sub missing"
	Cycles uint64
	UOps   uint64
}
