package prefetch

import "testing"

func TestStrideDetects(t *testing.T) {
	s := NewStride(64, 4, 64)
	pc := uint64(0x400100)
	var got []uint64
	addr := uint64(0x10000)
	for i := 0; i < 6; i++ {
		got = s.Observe(addr, pc, false)
		addr += 256
	}
	if len(got) != 4 {
		t.Fatalf("degree-4 prefetcher issued %d addresses", len(got))
	}
	// The last observation was at addr-256; prefetches continue the
	// stride from there.
	base := addr - 256
	for i, a := range got {
		want := base + uint64(i+1)*256
		if a != want {
			t.Errorf("prefetch %d = %#x, want %#x", i, a, want)
		}
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	s := NewStride(64, 4, 64)
	pc := uint64(0x400200)
	seed := uint64(99)
	issued := 0
	for i := 0; i < 200; i++ {
		seed = seed*6364136223846793005 + 1
		issued += len(s.Observe(seed%(1<<30), pc, false))
	}
	if issued > 40 {
		t.Errorf("random stream triggered %d prefetches", issued)
	}
}

func TestStrideNoPCFallsBackToRegion(t *testing.T) {
	s := NewStride(64, 2, 64)
	addr := uint64(0x20000)
	var got []uint64
	for i := 0; i < 5; i++ {
		got = s.Observe(addr, 0, false)
		addr += 64
	}
	if len(got) == 0 {
		t.Error("region-keyed stride detection failed")
	}
}

func TestAMPMDetectsForwardStride(t *testing.T) {
	a := NewAMPM(64, 2, 64)
	base := uint64(0x100000)
	var got []uint64
	for i := 0; i < 8; i++ {
		got = a.Observe(base+uint64(i)*64, 0, false)
	}
	if len(got) == 0 {
		t.Fatal("AMPM found no candidates in a unit-stride stream")
	}
	// The +1-stride candidate is the next line.
	if got[0] != base+8*64 {
		t.Errorf("first AMPM prefetch = %#x, want %#x", got[0], base+8*64)
	}
}

func TestAMPMZoneIsolation(t *testing.T) {
	a := NewAMPM(64, 2, 64)
	// Accesses in a fresh zone must not inherit another zone's map.
	for i := 0; i < 8; i++ {
		a.Observe(0x100000+uint64(i)*64, 0, false)
	}
	got := a.Observe(0x900000, 0, false)
	if len(got) != 0 {
		t.Errorf("fresh zone prefetched %v", got)
	}
}

func TestAMPMRespectsDegree(t *testing.T) {
	a := NewAMPM(64, 1, 64)
	var got []uint64
	for i := 0; i < 16; i++ {
		got = a.Observe(0x200000+uint64(i)*64, 0, false)
	}
	if len(got) > 1 {
		t.Errorf("degree-1 AMPM issued %d", len(got))
	}
}
