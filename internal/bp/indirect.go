package bp

// Indirect is a tagged, path-history-hashed indirect branch target cache
// (Table 2: "1k-entry Indirect Branch Target Cache"). It is indexed by a
// hash of the branch PC and a short path history of recent indirect
// targets, in the style of the classic cascaded indirect predictors.
type Indirect struct {
	entries []indEntry
	mask    uint64
	path    uint64 // path history of recent taken-branch targets
}

type indEntry struct {
	valid  bool
	tag    uint16
	target uint64
}

// NewIndirect returns a predictor with n entries (rounded down to a power
// of two).
func NewIndirect(n int) *Indirect {
	for n&(n-1) != 0 {
		n &= n - 1
	}
	if n == 0 {
		n = 1
	}
	return &Indirect{entries: make([]indEntry, n), mask: uint64(n - 1)}
}

func (p *Indirect) slot(pc uint64) (*indEntry, uint16) {
	h := pc>>2 ^ p.path*0x9e3779b97f4a7c15>>48
	idx := h & p.mask
	tag := uint16(pc >> 2 * 0x9e37 >> 4)
	return &p.entries[idx], tag
}

// Lookup predicts the target of the indirect branch at pc.
func (p *Indirect) Lookup(pc uint64) (target uint64, ok bool) {
	e, tag := p.slot(pc)
	if e.valid && e.tag == tag {
		return e.target, true
	}
	return 0, false
}

// Update records the actual target and folds it into the path history.
func (p *Indirect) Update(pc, target uint64) {
	e, tag := p.slot(pc)
	e.valid = true
	e.tag = tag
	e.target = target
	p.PushPath(target)
}

// PushPath folds a taken-branch target into the path history. The
// pipeline calls this for taken branches that are not indirect so the
// hash captures global control flow.
func (p *Indirect) PushPath(target uint64) {
	p.path = p.path<<3 ^ target>>2
}
