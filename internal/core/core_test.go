package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func TestEvaluationConfigs(t *testing.T) {
	cfgs := EvaluationConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("%d configs, want Fig. 6's six", len(cfgs))
	}
	wantModes := []config.VPMode{config.MVP, config.MVP, config.TVP, config.TVP, config.GVP, config.GVP}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
		if c.VP.Mode != wantModes[i] {
			t.Errorf("config %d mode %v, want %v", i, c.VP.Mode, wantModes[i])
		}
		if c.SpSR != (i%2 == 1) {
			t.Errorf("config %d SpSR %v", i, c.SpSR)
		}
	}
}

func TestNewCoreRuns(t *testing.T) {
	s, err := workload.Get("648_exchange2_s")
	if err != nil {
		t.Fatal(err)
	}
	res := NewCore(Machine(config.TVP, true), s.Build()).Run(1000, 15000)
	if res.Stats.IPC() <= 0 {
		t.Fatal("no progress")
	}
}

func TestBaselineHasNoVP(t *testing.T) {
	b := Baseline()
	if b.VP.Mode != config.VPOff || b.SpSR || b.NineBitIdiom {
		t.Error("baseline must have VP and SpSR off")
	}
	if !b.MoveElim || !b.ZeroOneIdiom {
		t.Error("baseline must keep move and 0/1-idiom elimination (§5)")
	}
}
